// Package analysis is a dependency-free miniature of
// golang.org/x/tools/go/analysis: just enough surface (Analyzer, Pass,
// Diagnostic) to write type-aware checkers for this repository without
// pulling x/tools into the build. The container this repo grows in has
// no module proxy access, so the linter suite is built on the standard
// library's go/ast, go/types and go/importer instead.
//
// The API deliberately mirrors the upstream names; if x/tools ever
// becomes available the analyzers port over by changing one import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"efdedup/lint/internal/cfg"
	"efdedup/lint/internal/summary"
	"efdedup/lint/internal/wire"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass is the unit of work handed to an Analyzer: one type-checked
// package plus a sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Summaries is the module-wide interprocedural fact store: call
	// graph plus per-function summaries over every loaded package (the
	// whole universe, not just this pass's package). Built once per
	// lint run by the driver; nil only if the driver opts out.
	Summaries *summary.Set

	// CFGs memoizes per-function control-flow graphs across analyzers
	// and passes: the path-sensitive checkers (resleak, durafirst,
	// ctxcancel) ask it for the same function bodies, and the graph is
	// built once per lint run. Nil only if the driver opts out.
	CFGs *cfg.Store

	// Wire is the module-wide RPC surface and symbolic codec layouts
	// (registrations, call sites, extracted field layouts) built once
	// per lint run over the universe. The wire-protocol analyzers
	// (rpcpair, codecpair, lenguard, wirelock) consume it; nil only if
	// the driver opts out.
	Wire *wire.Index

	// Report delivers one diagnostic. Filled in by the driver.
	Report func(Diagnostic)
}

// InFiles reports whether pos falls inside one of this pass's files —
// interprocedural analyzers use it to claim a module-wide finding for
// exactly one package, so a cycle spanning packages is reported once.
func (p *Pass) InFiles(pos token.Pos) bool {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return true
		}
	}
	return false
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// ObjectOf resolves the object denoted by an identifier, consulting
// both Uses and Defs.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return p.TypesInfo.Defs[id]
}

// CalleeObject resolves the called function or method of a call
// expression, or nil if the callee is not a named function (e.g. a
// call of a function-typed variable or a type conversion).
func (p *Pass) CalleeObject(call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if o, ok := p.ObjectOf(fn).(*types.Func); ok {
			return o
		}
		// Type conversions resolve to *types.TypeName; builtins to
		// *types.Builtin. Neither is a callee we analyze.
		return nil
	case *ast.SelectorExpr:
		if sel, ok := p.TypesInfo.Selections[fn]; ok {
			return sel.Obj()
		}
		// Package-qualified call: fmt.Errorf, rand.Intn, ...
		if o, ok := p.ObjectOf(fn.Sel).(*types.Func); ok {
			return o
		}
	}
	return nil
}

// IsPkgFunc reports whether call invokes the package-scope function
// pkgPath.name (not a method).
func (p *Pass) IsPkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	obj := p.CalleeObject(call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if fn, ok := obj.(*types.Func); ok && fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// ImportedPackage walks the import graph from pkg and returns the
// loaded *types.Package with the given path, or nil.
func ImportedPackage(pkg *types.Package, path string) *types.Package {
	seen := map[*types.Package]bool{}
	var walk func(p *types.Package) *types.Package
	walk = func(p *types.Package) *types.Package {
		if p == nil || seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == path {
			return p
		}
		for _, imp := range p.Imports() {
			if got := walk(imp); got != nil {
				return got
			}
		}
		return nil
	}
	if pkg.Path() == path {
		return pkg
	}
	return walk(pkg)
}
