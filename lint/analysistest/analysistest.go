// Package analysistest runs an analyzer over fixture packages under
// testdata/src and checks reported diagnostics against `// want`
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line carrying an expectation looks like:
//
//	conn.Write(b) // want `held across`
//
// where the backquoted (or double-quoted) fragment is a regexp that
// must match the message of a diagnostic reported on that line.
// Multiple fragments mean multiple diagnostics. Lines without a want
// comment must stay silent; unmatched expectations fail the test.
//
// Fixture packages may import each other (directory layout under
// testdata/src mirrors import paths) and the standard library; stdlib
// export data is obtained from `go list -export`.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"efdedup/lint/analysis"
	"efdedup/lint/internal/checker"
	"efdedup/lint/internal/load"
)

// fixture is one package under testdata/src.
type fixture struct {
	path    string // import path (relative dir under testdata/src)
	dir     string
	files   []*ast.File
	imports []string // fixture-internal imports only
}

// Run checks analyzer a against the fixture packages pkgPaths rooted
// at testdata/src relative to the test's working directory.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	fixtures, externals, err := discover(fset, root, pkgPaths)
	if err != nil {
		t.Fatal(err)
	}
	exports, err := load.StdlibExports(".", externals)
	if err != nil {
		t.Fatalf("listing stdlib export data: %v", err)
	}
	imp := load.NewExportImporter(fset, exports)
	imp.Overlay = make(map[string]*types.Package)

	pkgs := make(map[string]*load.Package)
	var typecheck func(path string) error
	typecheck = func(path string) error {
		if _, done := imp.Overlay[path]; done {
			return nil
		}
		fx := fixtures[path]
		for _, dep := range fx.imports {
			if err := typecheck(dep); err != nil {
				return err
			}
		}
		info := load.NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(fx.path, fset, fx.files, info)
		if err != nil {
			return fmt.Errorf("type-checking fixture %s: %v", fx.path, err)
		}
		imp.Overlay[path] = tpkg
		pkgs[path] = &load.Package{PkgPath: fx.path, Dir: fx.dir, Files: fx.files, Types: tpkg, Info: info}
		return nil
	}
	for path := range fixtures {
		if err := typecheck(path); err != nil {
			t.Fatal(err)
		}
	}

	// The universe spans every discovered fixture package (in
	// deterministic order) so interprocedural summaries see callees in
	// dependency packages even when wants are only checked on the
	// requested targets.
	universePaths := make([]string, 0, len(pkgs))
	for path := range pkgs {
		universePaths = append(universePaths, path)
	}
	sort.Strings(universePaths)
	universe := make([]*load.Package, 0, len(universePaths))
	for _, path := range universePaths {
		universe = append(universe, pkgs[path])
	}

	for _, path := range pkgPaths {
		pkg := pkgs[path]
		wants := collectWants(t, fset, pkg.Files)
		diags, err := checker.RunScoped([]*analysis.Analyzer{a}, []*load.Package{pkg}, universe, fset)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		match(t, path, wants, diags)
	}
}

// discover parses the requested fixture packages plus any fixture
// packages they import (transitively), returning them along with the
// sorted set of external (standard library) imports.
func discover(fset *token.FileSet, root string, roots []string) (map[string]*fixture, []string, error) {
	fixtures := make(map[string]*fixture)
	externalSet := make(map[string]bool)
	var visit func(path string) error
	visit = func(path string) error {
		if _, ok := fixtures[path]; ok {
			return nil
		}
		dir := filepath.Join(root, filepath.FromSlash(path))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("fixture package %s: %v", path, err)
		}
		fx := &fixture{path: path, dir: dir}
		fixtures[path] = fx
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return fmt.Errorf("parsing fixture %s/%s: %v", path, e.Name(), err)
			}
			fx.files = append(fx.files, f)
			for _, spec := range f.Imports {
				imp, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					return err
				}
				if _, statErr := os.Stat(filepath.Join(root, filepath.FromSlash(imp))); statErr == nil {
					fx.imports = append(fx.imports, imp)
					if err := visit(imp); err != nil {
						return err
					}
				} else {
					externalSet[imp] = true
				}
			}
		}
		if len(fx.files) == 0 {
			return fmt.Errorf("fixture package %s: no Go files", path)
		}
		return nil
	}
	for _, path := range roots {
		if err := visit(path); err != nil {
			return nil, nil, err
		}
	}
	externals := make([]string, 0, len(externalSet))
	for imp := range externalSet {
		externals = append(externals, imp)
	}
	return fixtures, externals, nil
}

// expectation is one `// want` fragment waiting for a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantFragment = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// collectWants extracts want expectations from fixture comments.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(text, "want ")
				frags := wantFragment.FindAllStringSubmatch(rest, -1)
				if len(frags) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range frags {
					lit := m[1]
					if m[2] != "" {
						lit = m[2]
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, lit, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// match pairs diagnostics with expectations 1:1 per line.
func match(t *testing.T, pkg string, wants []*expectation, diags []checker.Diagnostic) {
	t.Helper()
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Position.Filename && w.line == d.Position.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s: %s",
				pkg, d.Position.Filename, d.Position.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", pkg, w.file, w.line, w.re)
		}
	}
}
