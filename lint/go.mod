module efdedup/lint

go 1.23
