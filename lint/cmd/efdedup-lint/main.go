// Command efdedup-lint is the repository's invariant checker: a
// multichecker running the custom analyzers that encode what the
// compiler, go vet and -race cannot see — locks never held across
// network I/O (lockedio), errors classifiable at transport boundaries
// (errclass), a bit-deterministic model/sim/estimate/partition core
// (nodeterm), bounded constant metric names (metricname), contexts in
// first position (ctxfirst) and joinable goroutines (goleak).
//
// Usage:
//
//	efdedup-lint [-run name[,name]] [-list] [packages]
//
// Packages default to ./... relative to the working directory. The
// exit status is 0 when no diagnostics fire, 1 when any do, 2 on
// loading failure. Suppress a finding with a reasoned directive:
//
//	//lint:ignore lockedio held lock is test-only
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"

	"efdedup/lint/analysis"
	"efdedup/lint/analyzers/ctxfirst"
	"efdedup/lint/analyzers/errclass"
	"efdedup/lint/analyzers/goleak"
	"efdedup/lint/analyzers/lockedio"
	"efdedup/lint/analyzers/metricname"
	"efdedup/lint/analyzers/nodeterm"
	"efdedup/lint/internal/checker"
	"efdedup/lint/internal/load"
)

var all = []*analysis.Analyzer{
	ctxfirst.Analyzer,
	errclass.Analyzer,
	goleak.Analyzer,
	lockedio.Analyzer,
	metricname.Analyzer,
	nodeterm.Analyzer,
}

func main() {
	runList := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *runList != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "efdedup-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "efdedup-lint: %v\n", err)
		os.Exit(2)
	}
	fset := token.NewFileSet()
	pkgs, err := load.Load(fset, cwd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "efdedup-lint: %v\n", err)
		os.Exit(2)
	}
	diags, err := checker.Run(analyzers, pkgs, fset)
	if err != nil {
		fmt.Fprintf(os.Stderr, "efdedup-lint: %v\n", err)
		os.Exit(2)
	}
	checker.Print(os.Stdout, cwd, diags)
	if len(diags) > 0 {
		os.Exit(1)
	}
}
