// Command efdedup-lint is the repository's invariant checker: a
// multichecker running the custom analyzers that encode what the
// compiler, go vet and -race cannot see — locks never held across
// network I/O, directly (lockedio) or through any call chain
// (lockedio2), no mutex acquisition-order cycles anywhere in the module
// (lockorder), errors classifiable at transport boundaries (errclass)
// and never silently lost when they carry quorum sentinels (errlost), a
// bit-deterministic model/sim/estimate/partition core (nodeterm),
// bounded constant metric names (metricname), contexts in first
// position (ctxfirst), joinable goroutines (goleak), no per-chunk
// allocations on the dedup pipeline hot path (hotalloc), and atomic
// file installs fsynced before their rename (fsyncrename).
//
// Four analyzers are path-sensitive, built on the CFG + dataflow layer
// (lint/internal/cfg, lint/internal/dataflow): resources must reach
// Close on every path (resleak), context cancel funcs must be called
// on every path (ctxcancel), store handlers must make state durable
// before mutating memory on success paths (durafirst), and
// pipeline-reachable channels must carry explicit capacity
// (chanbound).
//
// Usage:
//
//	efdedup-lint [-run name[,name]] [-list] [-json] [-sarif file] [-v] [packages]
//
// Packages default to ./... relative to the working directory. The
// exit status is 0 when no diagnostics fire, 1 when any do, 2 on
// loading failure. -json renders findings as a JSON array instead of
// file:line:col text; -sarif additionally writes a SARIF 2.1.0 log to
// the given file (use "-" for stdout) for code-scanning upload; -v
// reports load/analyze wall time plus per-analyzer wall time on
// stderr. Suppress a finding with a reasoned directive:
//
//	//lint:ignore lockedio held lock is test-only
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"
	"time"

	"efdedup/lint/analysis"
	"efdedup/lint/analyzers/chanbound"
	"efdedup/lint/analyzers/ctxcancel"
	"efdedup/lint/analyzers/ctxfirst"
	"efdedup/lint/analyzers/durafirst"
	"efdedup/lint/analyzers/errclass"
	"efdedup/lint/analyzers/errlost"
	"efdedup/lint/analyzers/fsyncrename"
	"efdedup/lint/analyzers/goleak"
	"efdedup/lint/analyzers/hotalloc"
	"efdedup/lint/analyzers/lockedio"
	"efdedup/lint/analyzers/lockedio2"
	"efdedup/lint/analyzers/lockorder"
	"efdedup/lint/analyzers/metricname"
	"efdedup/lint/analyzers/nodeterm"
	"efdedup/lint/analyzers/resleak"
	"efdedup/lint/internal/checker"
	"efdedup/lint/internal/load"
)

var all = []*analysis.Analyzer{
	chanbound.Analyzer,
	ctxcancel.Analyzer,
	ctxfirst.Analyzer,
	durafirst.Analyzer,
	errclass.Analyzer,
	errlost.Analyzer,
	fsyncrename.Analyzer,
	goleak.Analyzer,
	hotalloc.Analyzer,
	lockedio.Analyzer,
	lockedio2.Analyzer,
	lockorder.Analyzer,
	metricname.Analyzer,
	nodeterm.Analyzer,
	resleak.Analyzer,
}

func main() {
	runList := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "render diagnostics as a JSON array")
	sarifOut := flag.String("sarif", "", "also write a SARIF 2.1.0 log to this file (\"-\" for stdout)")
	verbose := flag.Bool("v", false, "report load/analyze wall time and per-analyzer wall time on stderr")
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *runList != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "efdedup-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "efdedup-lint: %v\n", err)
		os.Exit(2)
	}
	fset := token.NewFileSet()
	pkgs, stats, err := load.LoadStats(fset, cwd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "efdedup-lint: %v\n", err)
		os.Exit(2)
	}
	analyzeStart := time.Now()
	diags, timings, err := checker.RunScopedTimed(analyzers, pkgs, pkgs, fset)
	if err != nil {
		fmt.Fprintf(os.Stderr, "efdedup-lint: %v\n", err)
		os.Exit(2)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "efdedup-lint: %d packages: list %v, typecheck %v, analyze %v\n",
			stats.Packages, stats.ListTime.Round(time.Millisecond),
			stats.CheckTime.Round(time.Millisecond),
			time.Since(analyzeStart).Round(time.Millisecond))
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "efdedup-lint:   %-12s %v\n", tm.Analyzer, tm.Elapsed.Round(time.Millisecond))
		}
	}
	if *sarifOut != "" {
		w := os.Stdout
		if *sarifOut != "-" {
			f, err := os.Create(*sarifOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "efdedup-lint: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			w = f
		}
		if err := checker.PrintSARIF(w, cwd, analyzers, diags); err != nil {
			fmt.Fprintf(os.Stderr, "efdedup-lint: %v\n", err)
			os.Exit(2)
		}
	}
	if *jsonOut {
		if err := checker.PrintJSON(os.Stdout, cwd, diags); err != nil {
			fmt.Fprintf(os.Stderr, "efdedup-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		checker.Print(os.Stdout, cwd, diags)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
