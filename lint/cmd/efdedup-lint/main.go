// Command efdedup-lint is the repository's invariant checker: a
// multichecker running the custom analyzers that encode what the
// compiler, go vet and -race cannot see — locks never held across
// network I/O, directly (lockedio) or through any call chain
// (lockedio2), no mutex acquisition-order cycles anywhere in the module
// (lockorder), errors classifiable at transport boundaries (errclass)
// and never silently lost when they carry quorum sentinels (errlost), a
// bit-deterministic model/sim/estimate/partition core (nodeterm),
// bounded constant metric names (metricname), contexts in first
// position (ctxfirst), joinable goroutines (goleak), no per-chunk
// allocations on the dedup pipeline hot path (hotalloc), and atomic
// file installs fsynced before their rename (fsyncrename).
//
// Five analyzers are path-sensitive, built on the CFG + dataflow layer
// (lint/internal/cfg, lint/internal/dataflow): resources must reach
// Close on every path (resleak), context cancel funcs must be called
// on every path (ctxcancel), store handlers must make state durable
// before mutating memory on success paths (durafirst),
// pipeline-reachable channels must carry explicit capacity
// (chanbound), and wire-decoder reads must be guarded by 64-bit
// remaining-length checks (lenguard).
//
// Four analyzers check wire-protocol conformance on the shared
// lint/internal/wire index of RPC sites and symbolically extracted
// codec layouts: every constant Client.Call method must be registered
// by exactly one Server.Handle and vice versa (rpcpair), each
// encodeX/decodeX pair must agree field-for-field (codecpair), decoder
// bounds must hold on every path (lenguard), and the whole surface
// must match the checked-in lint/wire.lock schema lockfile (wirelock;
// regenerate with -write-wire-lock or `make wire-lock`).
//
// Usage:
//
//	efdedup-lint [-run name[,name]] [-list] [-json] [-sarif file] [-v]
//	             [-write-wire-lock file] [packages]
//
// Packages default to ./... relative to the working directory. The
// exit status is 0 when no diagnostics fire, 1 when any do, 2 on
// loading failure. -json renders findings as a JSON array instead of
// file:line:col text; -sarif additionally writes a SARIF 2.1.0 log to
// the given file (use "-" for stdout) for code-scanning upload; -v
// reports load/analyze wall time plus per-analyzer wall time on
// stderr; -write-wire-lock regenerates the schema lockfile from the
// loaded packages and exits without running analyzers. Suppress a
// finding with a reasoned directive:
//
//	//lint:ignore lockedio held lock is test-only
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"
	"time"

	"efdedup/lint/analysis"
	"efdedup/lint/analyzers/chanbound"
	"efdedup/lint/analyzers/codecpair"
	"efdedup/lint/analyzers/ctxcancel"
	"efdedup/lint/analyzers/ctxfirst"
	"efdedup/lint/analyzers/durafirst"
	"efdedup/lint/analyzers/errclass"
	"efdedup/lint/analyzers/errlost"
	"efdedup/lint/analyzers/fsyncrename"
	"efdedup/lint/analyzers/goleak"
	"efdedup/lint/analyzers/hotalloc"
	"efdedup/lint/analyzers/lenguard"
	"efdedup/lint/analyzers/lockedio"
	"efdedup/lint/analyzers/lockedio2"
	"efdedup/lint/analyzers/lockorder"
	"efdedup/lint/analyzers/metricname"
	"efdedup/lint/analyzers/nodeterm"
	"efdedup/lint/analyzers/resleak"
	"efdedup/lint/analyzers/rpcpair"
	"efdedup/lint/analyzers/wirelock"
	"efdedup/lint/internal/checker"
	"efdedup/lint/internal/load"
	"efdedup/lint/internal/wire"
)

var all = []*analysis.Analyzer{
	chanbound.Analyzer,
	codecpair.Analyzer,
	ctxcancel.Analyzer,
	ctxfirst.Analyzer,
	durafirst.Analyzer,
	errclass.Analyzer,
	errlost.Analyzer,
	fsyncrename.Analyzer,
	goleak.Analyzer,
	hotalloc.Analyzer,
	lenguard.Analyzer,
	lockedio.Analyzer,
	lockedio2.Analyzer,
	lockorder.Analyzer,
	metricname.Analyzer,
	nodeterm.Analyzer,
	resleak.Analyzer,
	rpcpair.Analyzer,
	wirelock.Analyzer,
}

func main() {
	runList := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "render diagnostics as a JSON array")
	sarifOut := flag.String("sarif", "", "also write a SARIF 2.1.0 log to this file (\"-\" for stdout)")
	verbose := flag.Bool("v", false, "report load/analyze wall time and per-analyzer wall time on stderr")
	writeWireLock := flag.String("write-wire-lock", "", "regenerate the wire-protocol schema lockfile at this path and exit (\"-\" for stdout)")
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *runList != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "efdedup-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "efdedup-lint: %v\n", err)
		os.Exit(2)
	}
	fset := token.NewFileSet()
	pkgs, stats, err := load.LoadStats(fset, cwd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "efdedup-lint: %v\n", err)
		os.Exit(2)
	}
	if *writeWireLock != "" {
		ix := wire.BuildIndex(fset, pkgs)
		lock := wire.NewLock(ix, wirelock.LintModulePrefix)
		data := lock.Format()
		if *writeWireLock == "-" {
			os.Stdout.Write(data)
			return
		}
		if err := os.WriteFile(*writeWireLock, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "efdedup-lint: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "efdedup-lint: wrote %s (%d methods, %d layouts)\n",
			*writeWireLock, len(lock.Methods), len(lock.Layouts))
		return
	}
	analyzeStart := time.Now()
	diags, timings, err := checker.RunScopedTimed(analyzers, pkgs, pkgs, fset)
	if err != nil {
		fmt.Fprintf(os.Stderr, "efdedup-lint: %v\n", err)
		os.Exit(2)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "efdedup-lint: %d packages: list %v, typecheck %v, analyze %v\n",
			stats.Packages, stats.ListTime.Round(time.Millisecond),
			stats.CheckTime.Round(time.Millisecond),
			time.Since(analyzeStart).Round(time.Millisecond))
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "efdedup-lint:   %-12s %v\n", tm.Analyzer, tm.Elapsed.Round(time.Millisecond))
		}
	}
	if *sarifOut != "" {
		w := os.Stdout
		if *sarifOut != "-" {
			f, err := os.Create(*sarifOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "efdedup-lint: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			w = f
		}
		if err := checker.PrintSARIF(w, cwd, analyzers, diags); err != nil {
			fmt.Fprintf(os.Stderr, "efdedup-lint: %v\n", err)
			os.Exit(2)
		}
	}
	if *jsonOut {
		if err := checker.PrintJSON(os.Stdout, cwd, diags); err != nil {
			fmt.Fprintf(os.Stderr, "efdedup-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		checker.Print(os.Stdout, cwd, diags)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
