// Package checker runs analyzers over loaded packages, honours
// //lint:ignore suppression directives and renders diagnostics.
package checker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"efdedup/lint/analysis"
	"efdedup/lint/internal/cfg"
	"efdedup/lint/internal/load"
	"efdedup/lint/internal/summary"
	"efdedup/lint/internal/wire"
)

// Diagnostic is a rendered finding.
type Diagnostic struct {
	Position token.Position
	Analyzer string
	Message  string
}

// Run applies every analyzer to every package and returns the
// surviving (non-suppressed) diagnostics sorted by position.
func Run(analyzers []*analysis.Analyzer, pkgs []*load.Package, fset *token.FileSet) ([]Diagnostic, error) {
	return RunScoped(analyzers, pkgs, pkgs, fset)
}

// Timing is one analyzer's wall time summed over every target package,
// for `efdedup-lint -v` — slow analyzers should be visible, not felt.
type Timing struct {
	Analyzer string
	Elapsed  time.Duration
}

// RunScoped applies every analyzer to the target packages while
// building the interprocedural summary store over the (usually larger)
// universe, so cross-package facts — callee summaries, lock-order
// edges, reachability — are visible even when diagnostics are only
// wanted for a subset. Suppression directives are honoured wherever
// the diagnostic lands, including files of non-target universe
// packages (a module-wide finding may be anchored in a dependency).
func RunScoped(analyzers []*analysis.Analyzer, targets, universe []*load.Package, fset *token.FileSet) ([]Diagnostic, error) {
	diags, _, err := RunScopedTimed(analyzers, targets, universe, fset)
	return diags, err
}

// RunScopedTimed is RunScoped plus per-analyzer wall time, ordered
// slowest first.
func RunScopedTimed(analyzers []*analysis.Analyzer, targets, universe []*load.Package, fset *token.FileSet) ([]Diagnostic, []Timing, error) {
	sums := summary.Build(fset, universe)
	cfgs := cfg.NewStore()
	wireIx := wire.BuildIndex(fset, universe)
	var allFiles []*ast.File
	for _, pkg := range universe {
		allFiles = append(allFiles, pkg.Files...)
	}
	ignores := collectIgnores(fset, allFiles)
	elapsed := make(map[string]time.Duration, len(analyzers))
	var out []Diagnostic
	for _, pkg := range targets {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Summaries: sums,
				CFGs:      cfgs,
				Wire:      wireIx,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := fset.Position(d.Pos)
				if ignores.suppressed(a.Name, pos) {
					return
				}
				out = append(out, Diagnostic{Position: pos, Analyzer: a.Name, Message: d.Message})
			}
			start := time.Now()
			err := a.Run(pass)
			elapsed[a.Name] += time.Since(start)
			if err != nil {
				return nil, nil, fmt.Errorf("%s: %s: %v", pkg.PkgPath, a.Name, err)
			}
		}
	}
	timings := make([]Timing, 0, len(elapsed))
	for _, a := range analyzers {
		timings = append(timings, Timing{Analyzer: a.Name, Elapsed: elapsed[a.Name]})
	}
	sort.Slice(timings, func(i, j int) bool { return timings[i].Elapsed > timings[j].Elapsed })
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, timings, nil
}

// Print writes diagnostics in file:line:col form, with paths relative
// to dir when possible.
func Print(w io.Writer, dir string, diags []Diagnostic) {
	for _, d := range diags {
		name := d.Position.Filename
		if rel, err := filepath.Rel(dir, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", name, d.Position.Line, d.Position.Column, d.Analyzer, d.Message)
	}
}

// PrintJSON writes diagnostics as a JSON array of findings, one object
// per diagnostic, for machine consumers (editor integrations, the CI
// problem matcher's JSON mode). Paths are relative to dir when
// possible, matching the text renderer.
func PrintJSON(w io.Writer, dir string, diags []Diagnostic) error {
	type finding struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	out := make([]finding, 0, len(diags))
	for _, d := range diags {
		name := d.Position.Filename
		if rel, err := filepath.Rel(dir, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		out = append(out, finding{
			File: name, Line: d.Position.Line, Column: d.Position.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ignoreIndex maps filename → line → analyzer names suppressed there.
type ignoreIndex map[string]map[int][]string

// collectIgnores scans file comments for //lint:ignore directives.
//
// Syntax (staticcheck-compatible):
//
//	//lint:ignore analyzer1[,analyzer2] reason text
//
// The directive suppresses matching diagnostics reported on its own
// line (trailing comment) or on the line immediately below (comment on
// its own line above the offending statement). When the annotated
// statement spans multiple lines — a multi-line composite literal, a
// wrapped call — the directive covers the statement's whole extent, so
// a diagnostic anchored three lines into the literal is still
// suppressed. "all" matches every analyzer. A directive without a
// reason is ignored — the reason is the point.
func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreIndex {
	idx := make(ignoreIndex)
	for _, f := range files {
		fileIdx := make(map[int][]string)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "lint:ignore ") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore "))
				if len(fields) < 2 {
					continue // no reason given: directive not honoured
				}
				pos := fset.Position(c.Pos())
				fileIdx[pos.Line] = append(fileIdx[pos.Line], strings.Split(fields[0], ",")...)
			}
		}
		if len(fileIdx) == 0 {
			continue
		}
		extendToStatements(fset, f, fileIdx)
		idx[fset.Position(f.Pos()).Filename] = fileIdx
	}
	return idx
}

// extendToStatements widens directive coverage over multi-line
// statements: a directive whose own line (trailing form) or next line
// (line-above form) starts a statement or declaration spec covers
// every line of that node. Only statements and var/const specs extend
// — never whole function declarations, so a stray directive above a
// func cannot silence its body.
func extendToStatements(fset *token.FileSet, f *ast.File, fileIdx map[int][]string) {
	// Snapshot the directive lines: extension must key off the raw
	// directives, not off lines added by other extensions.
	raw := make(map[int][]string, len(fileIdx))
	for line, names := range fileIdx {
		raw[line] = names
	}
	extend := func(n ast.Node) {
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		if end <= start {
			return
		}
		var names []string
		names = append(names, raw[start]...)   // trailing directive on the first line
		names = append(names, raw[start-1]...) // directive on its own line above
		if len(names) == 0 {
			return
		}
		for line := start + 1; line <= end; line++ {
			fileIdx[line] = append(fileIdx[line], names...)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		// Only statements without nested blocks extend: a directive
		// above an if/for would otherwise silence an arbitrarily large
		// body. Multi-line composite literals, wrapped calls and var
		// specs are the shapes the directive legitimately annotates.
		case *ast.AssignStmt, *ast.ExprStmt, *ast.ReturnStmt, *ast.DeclStmt,
			*ast.GoStmt, *ast.DeferStmt, *ast.SendStmt, *ast.ValueSpec:
			extend(n)
		}
		return true
	})
}

// suppressed reports whether a diagnostic from analyzer at pos is
// covered by a directive on its line or the line above.
func (idx ignoreIndex) suppressed(analyzer string, pos token.Position) bool {
	m := idx[pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range m[line] {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}
