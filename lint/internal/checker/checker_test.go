package checker

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"efdedup/lint/analysis"
)

func parseIgnores(t *testing.T, src string) (*token.FileSet, ignoreIndex) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, collectIgnores(fset, []*ast.File{f})
}

// A directive above a multi-line statement covers every line of the
// statement, so diagnostics anchored on continuation lines are
// suppressed too.
func TestIgnoreCoversMultiLineStatement(t *testing.T) {
	_, idx := parseIgnores(t, `package p

func f() []string {
	var out []string
	//lint:ignore hotalloc formatted per batch by design
	out = append(out,
		g(1),
		g(2),
	)
	return out
}

func g(int) string { return "" }
`)
	// The statement spans lines 6-9; the directive sits on line 5.
	for line := 6; line <= 9; line++ {
		if !idx.suppressed("hotalloc", token.Position{Filename: "x.go", Line: line}) {
			t.Errorf("line %d not covered by the directive", line)
		}
	}
	if idx.suppressed("hotalloc", token.Position{Filename: "x.go", Line: 11}) {
		t.Error("line after the statement should not be covered")
	}
	if idx.suppressed("resleak", token.Position{Filename: "x.go", Line: 7}) {
		t.Error("a different analyzer should not be suppressed")
	}
}

// A trailing directive on the first line of a multi-line statement
// extends the same way.
func TestIgnoreTrailingFormExtends(t *testing.T) {
	_, idx := parseIgnores(t, `package p

func f() []string {
	var out []string
	out = append(out, //lint:ignore hotalloc one-shot formatting
		g(1),
	)
	return out
}

func g(int) string { return "" }
`)
	for line := 5; line <= 7; line++ {
		if !idx.suppressed("hotalloc", token.Position{Filename: "x.go", Line: line}) {
			t.Errorf("line %d not covered by the trailing directive", line)
		}
	}
}

// A directive above a block-carrying statement must NOT silence the
// whole body: only simple statements extend.
func TestIgnoreDoesNotExtendOverBlocks(t *testing.T) {
	_, idx := parseIgnores(t, `package p

func f(xs []int) {
	//lint:ignore hotalloc should not cover the loop body
	for range xs {
		g(1)
	}
}

func g(int) string { return "" }
`)
	// Line 5 (the for header) is the directive's next line: covered by
	// the ordinary line-above rule. The body must stay uncovered.
	if idx.suppressed("hotalloc", token.Position{Filename: "x.go", Line: 6}) {
		t.Error("loop body must not inherit the directive")
	}
}

func TestPrintSARIF(t *testing.T) {
	a := &analysis.Analyzer{Name: "resleak", Doc: "resources must reach Close"}
	diags := []Diagnostic{{
		Position: token.Position{Filename: "/repo/pkg/file.go", Line: 7, Column: 3},
		Analyzer: "resleak",
		Message:  "os.Open result is not closed on every path",
	}}
	var buf strings.Builder
	if err := PrintSARIF(&buf, "/repo", []*analysis.Analyzer{a}, diags); err != nil {
		t.Fatalf("PrintSARIF: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`"version": "2.1.0"`,
		`"id": "resleak"`,
		`"ruleId": "resleak"`,
		`"uri": "pkg/file.go"`,
		`"startLine": 7`,
		`"text": "os.Open result is not closed on every path"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SARIF output missing %s\n%s", want, out)
		}
	}
}
