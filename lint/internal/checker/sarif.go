package checker

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"

	"efdedup/lint/analysis"
)

// SARIF 2.1.0 skeleton — only the fields code-scanning consumers
// actually read: tool.driver.rules for the analyzer catalogue and one
// result per diagnostic with a physical location. URIs are relative to
// dir (the repo root in CI) so the upload maps onto the source tree.
type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// PrintSARIF writes the diagnostics as a SARIF 2.1.0 log. Every
// analyzer in the run appears as a rule even when it found nothing, so
// code scanning can show the invariant set that was enforced, not just
// the ones that fired.
func PrintSARIF(w io.Writer, dir string, analyzers []*analysis.Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.Position.Filename
		if rel, err := filepath.Rel(dir, uri); err == nil && !strings.HasPrefix(rel, "..") {
			uri = rel
		}
		uri = filepath.ToSlash(uri)
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: uri},
					Region: sarifRegion{
						StartLine:   d.Position.Line,
						StartColumn: d.Position.Column,
					},
				},
			}},
		})
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "efdedup-lint",
				Rules: rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
