package wire

import (
	"go/ast"
	"go/constant"
	"go/types"

	"efdedup/lint/internal/load"
)

// Extractor lowers codec function bodies into abstract layouts, with
// memoization so helper splices (encodeEntry calling appendBytes,
// decodeScan calling decodeEntry) are extracted once.
type Extractor struct {
	funcs   map[string]*funcSrc
	layouts map[extractKey]*Layout
	inwork  map[extractKey]bool
}

type funcSrc struct {
	decl *ast.FuncDecl
	pkg  *load.Package
	fn   *types.Func
}

type extractKey struct {
	fid string
	dir Dir
}

// NewExtractor indexes every declared function in pkgs for extraction
// and helper-splice resolution.
func NewExtractor(pkgs []*load.Package) *Extractor {
	ex := &Extractor{
		funcs:   make(map[string]*funcSrc),
		layouts: make(map[extractKey]*Layout),
		inwork:  make(map[extractKey]bool),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fid := obj.FullName()
				if _, dup := ex.funcs[fid]; !dup {
					ex.funcs[fid] = &funcSrc{decl: fd, pkg: pkg, fn: obj}
				}
			}
		}
	}
	return ex
}

// Layout extracts (or returns the memoized) layout of the function with
// the given FuncID in the given direction. Returns nil when the
// function is unknown or structurally not a codec (no builder found, no
// []byte input).
func (ex *Extractor) Layout(fid string, dir Dir) *Layout {
	key := extractKey{fid, dir}
	if l, ok := ex.layouts[key]; ok {
		return l
	}
	src, ok := ex.funcs[fid]
	if !ok || ex.inwork[key] {
		return nil
	}
	ex.inwork[key] = true
	var l *Layout
	if dir == Encode {
		l = extractEncode(ex, src)
	} else {
		l = extractDecode(ex, src)
	}
	delete(ex.inwork, key)
	ex.layouts[key] = l
	return l
}

// ---------------------------------------------------------------------
// Shared expression helpers
// ---------------------------------------------------------------------

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// isConversion reports whether the call is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// binaryWidth maps an encoding/binary function name to a fixed-width
// kind; varints map to KVarint.
func binaryWidth(name string) (Kind, bool) {
	switch name {
	case "Uint16", "AppendUint16", "PutUint16":
		return KU16, true
	case "Uint32", "AppendUint32", "PutUint32":
		return KU32, true
	case "Uint64", "AppendUint64", "PutUint64":
		return KU64, true
	case "Uvarint", "AppendUvarint", "PutUvarint", "Varint", "AppendVarint", "PutVarint":
		return KVarint, true
	}
	return KInvalid, false
}

// binaryCall classifies calls into the encoding/binary package (either
// package functions or ByteOrder methods on binary.BigEndian /
// binary.LittleEndian).
func binaryCall(info *types.Info, call *ast.CallExpr) (name string, kind Kind, ok bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" {
		return "", KInvalid, false
	}
	k, ok := binaryWidth(fn.Name())
	if !ok {
		return "", KInvalid, false
	}
	return fn.Name(), k, true
}

func kindBytes(k Kind) int {
	switch k {
	case KU8:
		return 1
	case KU16:
		return 2
	case KU32:
		return 4
	case KU64:
		return 8
	}
	return 0
}

func intConst(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}

func byteArrayLen(t types.Type) (int, bool) {
	a, ok := t.Underlying().(*types.Array)
	if !ok {
		return 0, false
	}
	b, ok := a.Elem().Underlying().(*types.Basic)
	if !ok || (b.Kind() != types.Byte && b.Kind() != types.Uint8) {
		return 0, false
	}
	return int(a.Len()), true
}

func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// mentions reports whether node references obj.
func mentions(info *types.Info, node ast.Node, obj types.Object) bool {
	if obj == nil || node == nil {
		return false
	}
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if info.Uses[id] == obj || info.Defs[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// peelConversions strips nested type conversions: int(uint32(x)) → x.
func peelConversions(info *types.Info, e ast.Expr) ast.Expr {
	for {
		e = ast.Unparen(e)
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 || !isConversion(info, call) {
			return e
		}
		e = call.Args[0]
	}
}

// lenOperand decodes (a conversion of) len(E), returning E.
func lenOperand(info *types.Info, e ast.Expr) (ast.Expr, bool) {
	e = peelConversions(info, e)
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 || !isBuiltin(info, call, "len") {
		return nil, false
	}
	return call.Args[0], true
}

// canon is the canonical spelling of an expression, used to match a
// length-prefix write with the blob append that follows it.
func canon(e ast.Expr) string { return types.ExprString(ast.Unparen(e)) }

// allReturns reports whether every statement in the block is a return —
// the shape of a validation guard body.
func allReturns(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	for _, s := range body.List {
		if _, ok := s.(*ast.ReturnStmt); !ok {
			return false
		}
	}
	return true
}

// firstByteSliceParam returns the object of the first []byte parameter.
func firstByteSliceParam(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && isByteSlice(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}
