package wire

import (
	"go/token"
	"sort"
	"testing"

	"efdedup/lint/internal/load"
)

// TestProductionLayouts extracts the real module's codecs and pins the
// layouts the lockfile will carry. A failure here means either a wire
// format change (update the expectations and `make wire-lock`) or an
// extractor regression.
func TestProductionLayouts(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := load.Load(fset, "../../..", []string{"efdedup/..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	ix := BuildIndex(fset, pkgs)

	want := map[string]string{
		LayoutKey(Encode, "efdedup/internal/kvstore.appendBytes"):   "bytes32",
		LayoutKey(Decode, "efdedup/internal/kvstore.readBytes"):     "bytes32 ; rest",
		LayoutKey(Encode, "efdedup/internal/kvstore.encodeEntry"):   "bytes32 | u64 | bytes32",
		LayoutKey(Decode, "efdedup/internal/kvstore.decodeEntry"):   "bytes32 | u64 | bytes32 ; rest",
		LayoutKey(Encode, "efdedup/internal/kvstore.encodeKeyList"): "list32<bytes32>",
		LayoutKey(Decode, "efdedup/internal/kvstore.decodeKeyList"): "list32<bytes32>",
		LayoutKey(Decode, "efdedup/internal/kvstore.readBytesList"): "list32<bytes32> ; rest",
		LayoutKey(Encode, "efdedup/internal/transport.encodeRequest"): "u8 | u64 | bytes8 | tail",
		LayoutKey(Decode, "efdedup/internal/transport.decodeRequest"): "u8 | u64 | bytes8 ; rest",
	}
	got := make(map[string]string)
	for fid, l := range ix.Encodes {
		got[LayoutKey(Encode, fid)] = l.String()
	}
	for fid, l := range ix.Decodes {
		got[LayoutKey(Decode, fid)] = l.String()
	}
	for k, w := range want {
		if g, ok := got[k]; !ok {
			t.Errorf("%s: not extracted", k)
		} else if g != w {
			t.Errorf("%s = %q, want %q", k, g, w)
		}
	}

	methods := ix.Methods()
	if len(methods) < 22 {
		t.Errorf("only %d RPC methods indexed: %v", len(methods), methods)
	}

	// Dump the full surface when verbose, for lockfile review.
	if testing.Verbose() {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			t.Logf("%s = %s", k, got[k])
		}
		t.Logf("methods: %v", methods)
	}
}
