package wire

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"efdedup/lint/internal/load"
)

// SiteKind distinguishes the two halves of the RPC surface.
type SiteKind int

const (
	// Registration is a Server.Handle(method, handler) reached with a
	// constant method name (directly or through wrappers).
	Registration SiteKind = iota
	// Call is a Client.Call(ctx, method, body) reached with a constant
	// method name.
	Call
)

// Site is one resolved RPC surface point.
type Site struct {
	Kind   SiteKind
	Method string
	// Pos is the outermost constant-method call (the wrapper call in
	// n.handle("kv.get", ...), not the transport primitive inside it).
	Pos token.Pos
	// FuncID is the enclosing function (types.Func.FullName), "" at
	// package scope.
	FuncID string
	// PkgPath is the package containing the site.
	PkgPath string
	// HandlerID names the handler for Registration sites when it is
	// resolvable: the handler function/method itself, or the enclosing
	// function for a func-literal handler (whose calls the literal's
	// body contributes in the call graph). "" when dynamic.
	HandlerID string
}

// Index is the module-wide wire surface: every RPC registration and
// call site plus extracted codec layouts, built once per lint run and
// shared by the rpcpair/codecpair/lenguard/wirelock analyzers.
type Index struct {
	Sites []Site

	// Encodes and Decodes hold the eagerly-extracted layouts of every
	// codec-named function (encode*/append* and decode*/read*/parse*)
	// that yielded any structure, keyed by FuncID.
	Encodes map[string]*Layout
	Decodes map[string]*Layout

	ex *Extractor
}

// Layout extracts (or returns the memoized) layout for any function in
// the loaded universe, codec-named or not — codecpair uses it to chase
// pairs the eager sweep skipped.
func (ix *Index) Layout(fid string, dir Dir) *Layout { return ix.ex.Layout(fid, dir) }

// Methods returns every distinct method name appearing at any site,
// sorted.
func (ix *Index) Methods() []string {
	seen := make(map[string]bool)
	for _, s := range ix.Sites {
		seen[s.Method] = true
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// AnchorPkg is the deterministic home for module-wide wirelock
// diagnostics: the lexically first package containing a wire entity.
func (ix *Index) AnchorPkg() string {
	anchor := ""
	consider := func(p string) {
		if p != "" && (anchor == "" || p < anchor) {
			anchor = p
		}
	}
	for _, s := range ix.Sites {
		consider(s.PkgPath)
	}
	for fid := range ix.Encodes {
		consider(layoutPkg(fid))
	}
	for fid := range ix.Decodes {
		consider(layoutPkg(fid))
	}
	return anchor
}

// layoutPkg recovers the package path from a FuncID:
// "efdedup/internal/kvstore.readBytes" and
// "(*efdedup/internal/kvstore.Cluster).call" both map to
// "efdedup/internal/kvstore".
func layoutPkg(fid string) string {
	s := strings.TrimPrefix(fid, "(")
	s = strings.TrimPrefix(s, "*")
	if i := strings.LastIndex(s, "/"); i >= 0 {
		if j := strings.Index(s[i:], "."); j >= 0 {
			return s[:i+j]
		}
	} else if j := strings.Index(s, "."); j >= 0 {
		return s[:j]
	}
	return ""
}

// sink is a function known to forward one of its string parameters as
// an RPC method name into the transport layer.
type sink struct {
	kind     SiteKind
	paramIdx int
}

// BuildIndex scans the universe for the RPC surface and codec layouts.
//
// The transport primitives are recognized structurally — a method named
// Handle on a type named Server, and Call on Client, declared in a
// package named transport — so fixtures can stub the real package.
// Wrapper functions that pass their own string parameter through to a
// primitive (kvstore's (*Node).handle, cloudstore's (*Server).handle,
// (*Cluster).call → callAttempt → Client.Call) are discovered by
// fixpoint, and sites are recorded at the outermost call carrying a
// constant method name.
func BuildIndex(fset *token.FileSet, pkgs []*load.Package) *Index {
	ix := &Index{
		Encodes: make(map[string]*Layout),
		Decodes: make(map[string]*Layout),
		ex:      NewExtractor(pkgs),
	}

	// Fixpoint: grow the sink set until no new wrappers appear.
	sinks := make(map[string]map[SiteKind]sink)
	addSink := func(fid string, s sink) bool {
		if sinks[fid] == nil {
			sinks[fid] = make(map[SiteKind]sink)
		}
		if _, ok := sinks[fid][s.kind]; ok {
			return false
		}
		sinks[fid][s.kind] = s
		return true
	}
	for changed := true; changed; {
		changed = false
		for _, src := range ix.ex.funcs {
			params := stringParams(src.pkg.Info, src.decl)
			if len(params) == 0 {
				continue
			}
			fid := src.fn.FullName()
			ast.Inspect(src.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				kind, argIdx, ok := sinkCall(src.pkg.Info, call, sinks)
				if !ok || argIdx >= len(call.Args) {
					return true
				}
				obj := identObj(src.pkg.Info, call.Args[argIdx])
				if obj == nil {
					return true
				}
				if pi, isParam := params[obj]; isParam {
					if addSink(fid, sink{kind: kind, paramIdx: pi}) {
						changed = true
					}
				}
				return true
			})
		}
	}

	// Site sweep: record every sink call carrying a constant method.
	// A call inside a wrapper that merely forwards its parameter is not
	// a site; the wrapper's own callers are.
	for _, src := range ix.ex.funcs {
		info := src.pkg.Info
		fid := src.fn.FullName()
		ast.Inspect(src.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, argIdx, ok := sinkCall(info, call, sinks)
			if !ok || argIdx >= len(call.Args) {
				return true
			}
			method, isConst := stringConst(info, call.Args[argIdx])
			if !isConst {
				return true
			}
			site := Site{
				Kind:    kind,
				Method:  method,
				Pos:     call.Pos(),
				FuncID:  fid,
				PkgPath: src.pkg.PkgPath,
			}
			if kind == Registration {
				site.HandlerID = handlerID(info, call, fid)
			}
			ix.Sites = append(ix.Sites, site)
			return true
		})
	}
	sort.Slice(ix.Sites, func(i, j int) bool {
		a, b := ix.Sites[i], ix.Sites[j]
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Pos < b.Pos
	})

	// Codec sweep: extract every codec-named function eagerly so the
	// lockfile covers the full surface even when nothing calls it.
	for fid, src := range ix.ex.funcs {
		name := strings.ToLower(src.fn.Name())
		if hasAnyPrefix(name, "encode", "append", "marshal") {
			if l := ix.ex.Layout(fid, Encode); l != nil && len(l.Fields) > 0 {
				ix.Encodes[fid] = l
			}
		}
		if hasAnyPrefix(name, "decode", "read", "parse", "unmarshal") {
			if l := ix.ex.Layout(fid, Decode); l != nil && len(l.Fields) > 0 {
				ix.Decodes[fid] = l
			}
		}
	}
	return ix
}

func hasAnyPrefix(s string, prefixes ...string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	return false
}

// stringParams maps each string-typed parameter object of fd to its
// index in the flattened parameter list.
func stringParams(info *types.Info, fd *ast.FuncDecl) map[types.Object]int {
	out := make(map[types.Object]int)
	if fd.Type.Params == nil {
		return out
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		names := field.Names
		if len(names) == 0 {
			idx++
			continue
		}
		for _, name := range names {
			obj := info.Defs[name]
			if obj != nil && isString(obj.Type()) {
				out[obj] = idx
			}
			idx++
		}
	}
	return out
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// sinkCall classifies a call as an RPC sink — a transport primitive or
// a discovered wrapper — returning which argument carries the method
// name.
func sinkCall(info *types.Info, call *ast.CallExpr, sinks map[string]map[SiteKind]sink) (SiteKind, int, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return 0, 0, false
	}
	if kind, idx, ok := transportPrimitive(fn); ok {
		return kind, idx, true
	}
	for kind, s := range sinks[fn.FullName()] {
		return kind, s.paramIdx, true
	}
	return 0, 0, false
}

// transportPrimitive recognizes the base Server.Handle / Client.Call
// methods structurally, so test fixtures can declare their own
// transport package.
func transportPrimitive(fn *types.Func) (SiteKind, int, bool) {
	if fn.Pkg() == nil || fn.Pkg().Name() != "transport" {
		return 0, 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return 0, 0, false
	}
	recv := sig.Recv().Type()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return 0, 0, false
	}
	var kind SiteKind
	switch {
	case fn.Name() == "Handle" && named.Obj().Name() == "Server":
		kind = Registration
	case fn.Name() == "Call" && named.Obj().Name() == "Client":
		kind = Call
	default:
		return 0, 0, false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isString(sig.Params().At(i).Type()) {
			return kind, i, true
		}
	}
	return 0, 0, false
}

// stringConst evaluates a constant string expression.
func stringConst(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// handlerID resolves the handler argument of a registration call: the
// argument after the method name that names a function or method, or
// the enclosing function for a literal.
func handlerID(info *types.Info, call *ast.CallExpr, enclosing string) string {
	for _, arg := range call.Args {
		switch a := ast.Unparen(arg).(type) {
		case *ast.FuncLit:
			return enclosing
		case *ast.Ident, *ast.SelectorExpr:
			obj := identObj(info, arg)
			if obj == nil {
				if sel, ok := a.(*ast.SelectorExpr); ok {
					if s, found := info.Selections[sel]; found {
						obj = s.Obj()
					} else {
						obj = info.Uses[sel.Sel]
					}
				}
			}
			if fn, ok := obj.(*types.Func); ok {
				return fn.FullName()
			}
		}
	}
	return ""
}
