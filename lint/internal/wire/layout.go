// Package wire extracts symbolic wire layouts from the module's
// hand-rolled codec functions and indexes the RPC surface (method
// registrations and call sites). It is the substrate of the
// protocol-conformance analyzers (rpcpair, codecpair, lenguard,
// wirelock): the store's collaborative index only works if every edge
// agent, KV node and the cloud store agree byte-for-byte on the frame
// format, and nothing in the type system checks that — encode and
// decode are two independent pieces of straight-line byte shuffling.
//
// The extractor walks encode/decode function bodies as a small abstract
// interpreter and lowers the sequence of fixed-width writes
// (binary.BigEndian.AppendUint32/PutUint64/...), varints,
// length-prefixed blobs and count-prefixed lists into an abstract
// field-layout per function. Extraction is best-effort by design: the
// first construct the interpreter does not recognize marks the layout
// opaque from that point, and consumers compare only the trusted
// prefix — an unrecognized codec produces silence, never a false
// mismatch.
package wire

import (
	"fmt"
	"strings"
)

// Kind classifies one abstract wire field.
type Kind int

const (
	// KInvalid is the zero Kind; no extracted field carries it.
	KInvalid Kind = iota
	// KU8..KU64 are big-endian fixed-width unsigned integers.
	KU8
	KU16
	KU32
	KU64
	// KVarint is an unsigned LEB128 varint (binary.AppendUvarint).
	KVarint
	// KBytes is a length-prefixed blob; Field.Prefix holds the width of
	// the length prefix.
	KBytes
	// KArray is a fixed-size byte array (Field.Size bytes), e.g. a
	// 32-byte content hash.
	KArray
	// KList is a count-prefixed repetition of Field.Elem; Field.Prefix
	// holds the width of the count prefix.
	KList
	// KTail is the unprefixed remainder of the payload.
	KTail
)

func (k Kind) String() string {
	switch k {
	case KU8:
		return "u8"
	case KU16:
		return "u16"
	case KU32:
		return "u32"
	case KU64:
		return "u64"
	case KVarint:
		return "varint"
	case KBytes:
		return "bytes"
	case KArray:
		return "array"
	case KList:
		return "list"
	case KTail:
		return "tail"
	}
	return "invalid"
}

// prefixDigits renders the width of a bytes/list prefix for layout
// strings: bytes8/bytes16/bytes32/bytes64 or bytesv (varint).
func prefixDigits(k Kind) string {
	switch k {
	case KU8:
		return "8"
	case KU16:
		return "16"
	case KU32:
		return "32"
	case KU64:
		return "64"
	case KVarint:
		return "v"
	}
	return "?"
}

// Field is one abstract wire field.
type Field struct {
	Kind Kind
	// Prefix is the width of the length/count prefix (KBytes, KList).
	Prefix Kind
	// Size is the byte size of a KArray field.
	Size int
	// Elem is the element layout of a KList field.
	Elem []Field
}

// String renders the canonical single-token form used in layout strings
// and in wire.lock: u8 u16 u32 u64 varint bytes32 array16 tail
// list32<u64 | bytes32>.
func (f Field) String() string {
	switch f.Kind {
	case KBytes:
		return "bytes" + prefixDigits(f.Prefix)
	case KArray:
		return fmt.Sprintf("array%d", f.Size)
	case KList:
		elems := make([]string, len(f.Elem))
		for i, e := range f.Elem {
			elems[i] = e.String()
		}
		return "list" + prefixDigits(f.Prefix) + "<" + strings.Join(elems, " | ") + ">"
	}
	return f.Kind.String()
}

// Equal reports structural equality (order, width, prefix kind, element
// layout).
func (f Field) Equal(g Field) bool {
	if f.Kind != g.Kind || f.Prefix != g.Prefix || f.Size != g.Size || len(f.Elem) != len(g.Elem) {
		return false
	}
	for i := range f.Elem {
		if !f.Elem[i].Equal(g.Elem[i]) {
			return false
		}
	}
	return true
}

// Dir distinguishes the two interpreter modes.
type Dir int

const (
	// Encode layouts come from functions that build a []byte.
	Encode Dir = iota
	// Decode layouts come from functions that consume a []byte.
	Decode
)

func (d Dir) String() string {
	if d == Encode {
		return "encode"
	}
	return "decode"
}

// Layout is the extracted abstract layout of one codec function.
type Layout struct {
	// FuncID is the stable cross-package key (types.Func.FullName).
	FuncID string
	Dir    Dir
	// Fields is the trusted extracted prefix of the wire format.
	Fields []Field
	// Opaque marks extraction that stopped before the end of the
	// function: Fields is a prefix, and everything after it is unknown.
	Opaque bool
	// OpaqueReason says what stopped extraction (diagnostics only).
	OpaqueReason string
	// RestResult is the index of the decode function's result that
	// returns the unconsumed remainder of the input for the caller to
	// keep parsing (-1 when the function consumes the whole payload).
	// A rest result matches either a trailing KTail on the encode side
	// (the remainder is a payload field) or nothing (the decoder is a
	// splice helper).
	RestResult int
}

// String renders the layout: "u32 | list32<bytes32> | tail", with a
// trailing "?" marking an opaque suffix and "; rest" marking a
// rest-returning decoder.
func (l *Layout) String() string {
	parts := make([]string, 0, len(l.Fields)+1)
	for _, f := range l.Fields {
		parts = append(parts, f.String())
	}
	if l.Opaque {
		parts = append(parts, "?")
	}
	s := strings.Join(parts, " | ")
	if s == "" {
		s = "empty"
	}
	if l.RestResult >= 0 {
		s += " ; rest"
	}
	return s
}

// Compare checks two layouts of one encode/decode pair field-for-field
// over the prefix both sides extracted. It returns a human-readable
// description of the first disagreement, or "" when the layouts are
// consistent. A decoder's rest result absorbs a trailing KTail on the
// encode side (the encoder's unprefixed remainder is exactly what the
// decoder hands back).
func Compare(enc, dec *Layout) string {
	ef, df := enc.Fields, dec.Fields
	// A trailing encode-side tail pairs with the decoder returning the
	// remainder instead of materializing a field.
	if dec.RestResult >= 0 && len(ef) == len(df)+1 && ef[len(ef)-1].Kind == KTail {
		ef = ef[:len(ef)-1]
	}
	n := min(len(ef), len(df))
	for i := 0; i < n; i++ {
		if !ef[i].Equal(df[i]) {
			return fmt.Sprintf("field %d: encoder writes %s, decoder reads %s", i+1, ef[i], df[i])
		}
	}
	// Length disagreement only counts when the shorter side is fully
	// extracted — an opaque suffix can hide any number of fields.
	if len(ef) > n && !dec.Opaque {
		return fmt.Sprintf("encoder writes %d field(s) the decoder never reads (first extra: %s)", len(ef)-n, ef[n])
	}
	if len(df) > n && !enc.Opaque {
		return fmt.Sprintf("decoder reads %d field(s) the encoder never writes (first extra: %s)", len(df)-n, df[n])
	}
	return ""
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
