package wire

import (
	"go/ast"
	"go/types"

	"efdedup/lint/internal/load"
)

// extractEncode interprets a builder-style encoder: a function that
// grows a []byte with append / binary.BigEndian.AppendUintN /
// binary.AppendUvarint / helper splices, or fills a fixed make([]byte,
// N) with sequential binary.PutUintN writes.
func extractEncode(ex *Extractor, src *funcSrc) *Layout {
	sc := &encScope{ex: ex, pkg: src.pkg}
	sc.run(src.decl.Body.List)
	sc.flushPending()
	if sc.builder == nil && !sc.putMode && len(sc.fields) == 0 {
		return nil // no byte-building found: not an encoder
	}
	return &Layout{
		FuncID:       src.fn.FullName(),
		Dir:          Encode,
		Fields:       sc.fields,
		Opaque:       sc.opaque != "",
		OpaqueReason: sc.opaque,
		RestResult:   -1,
	}
}

// pendingInt is an integer write not yet committed: it may turn out to
// be the length prefix of the blob appended next, or the count prefix
// of the loop that follows.
type pendingInt struct {
	kind Kind
	// lenOf is the canonical operand of len(...) when the written value
	// is a blob length, "" otherwise.
	lenOf string
}

type encScope struct {
	ex      *Extractor
	pkg     *load.Package
	builder types.Object
	fields  []Field
	pending *pendingInt
	opaque  string
	done    bool

	// putMode handles make([]byte, N) + sequential PutUintN writes.
	putMode bool
	putOff  int
}

func (sc *encScope) info() *types.Info { return sc.pkg.Info }

func (sc *encScope) fail(reason string) {
	if sc.opaque == "" {
		sc.opaque = reason
	}
	sc.done = true
}

func (sc *encScope) flushPending() {
	if sc.pending != nil {
		sc.fields = append(sc.fields, Field{Kind: sc.pending.kind})
		sc.pending = nil
	}
}

func (sc *encScope) emit(f Field) {
	sc.flushPending()
	sc.fields = append(sc.fields, f)
}

func (sc *encScope) run(stmts []ast.Stmt) {
	for _, s := range stmts {
		if sc.done {
			return
		}
		sc.stmt(s)
	}
}

func (sc *encScope) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		sc.assign(st)
	case *ast.ReturnStmt:
		sc.ret(st)
	case *ast.IfStmt:
		// Validation guards (and any other branch) that never touch the
		// builder are not part of the wire format.
		if !mentions(sc.info(), st, sc.builder) {
			return
		}
		sc.fail("conditional layout")
	case *ast.ForStmt:
		sc.loop(st, st.Body)
	case *ast.RangeStmt:
		sc.loop(st, st.Body)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && sc.putMode {
			if sc.putCall(call) {
				return
			}
		}
		if mentions(sc.info(), st, sc.builder) {
			sc.fail("unrecognized builder use")
		}
	default:
		if mentions(sc.info(), s, sc.builder) {
			sc.fail("unrecognized statement")
		}
	}
}

func (sc *encScope) assign(st *ast.AssignStmt) {
	if len(st.Lhs) == 1 && len(st.Rhs) == 1 {
		lhs := identObj(sc.info(), st.Lhs[0])
		rhs := ast.Unparen(st.Rhs[0])
		if call, ok := rhs.(*ast.CallExpr); ok {
			// make([]byte, 0, cap) starts an append builder;
			// make([]byte, N) starts a PutUintN builder.
			if isBuiltin(sc.info(), call, "make") && len(call.Args) >= 2 && lhs != nil &&
				sc.builder == nil && isByteSlice(lhs.Type()) {
				if n, ok := intConst(sc.info(), call.Args[1]); ok && n == 0 {
					sc.builder = lhs
					return
				}
				if len(call.Args) == 2 {
					sc.builder = lhs
					sc.putMode = true
					return
				}
			}
			if sc.builderOp(lhs, call) {
				return
			}
		}
	}
	if mentions(sc.info(), st, sc.builder) {
		sc.fail("unrecognized builder assignment")
	}
}

// builderOp interprets builder = <op>(builder, ...) chains. Returns
// false when the call is not a recognized builder operation.
func (sc *encScope) builderOp(lhs types.Object, call *ast.CallExpr) bool {
	root, ok := sc.evalChain(call)
	if !ok {
		return false
	}
	if sc.done {
		return true
	}
	// Establish or check the builder identity.
	switch {
	case sc.builder == nil:
		if lhs == nil {
			sc.fail("builder result discarded")
			return true
		}
		if root != nil && root != lhs {
			sc.fail("builder root/assignee mismatch")
			return true
		}
		sc.builder = lhs
	case lhs != sc.builder || (root != nil && root != sc.builder):
		sc.fail("second byte builder")
	}
	return true
}

// evalChain evaluates a (possibly nested) builder call, emitting its
// fields, and returns the root object the chain started from (nil for
// literal-nil roots). ok=false means the expression is not a builder
// operation at all.
func (sc *encScope) evalChain(e ast.Expr) (types.Object, bool) {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		if id.Name == "nil" {
			return nil, true
		}
		return identObj(sc.info(), e), true
	}
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	info := sc.info()
	switch {
	case isBuiltin(info, call, "append"):
		root, ok := sc.evalChain(call.Args[0])
		if !ok {
			return nil, false
		}
		sc.appendArgs(call)
		return root, true
	default:
		name, kind, isBin := binaryCall(info, call)
		if isBin && len(call.Args) == 2 {
			switch name {
			case "AppendUint16", "AppendUint32", "AppendUint64", "AppendUvarint", "AppendVarint":
				root, ok := sc.evalChain(call.Args[0])
				if !ok {
					return nil, false
				}
				sc.intWrite(kind, call.Args[1])
				return root, true
			}
		}
		// Helper splice: a loaded function taking the builder first and
		// returning the grown slice (appendBytes), or a sibling encoder
		// producing a fresh prefix (encodePullReq → encodeDigestReq).
		fn := calleeFunc(info, call)
		if fn == nil {
			return nil, false
		}
		sub := sc.ex.Layout(fn.FullName(), Encode)
		if sub == nil {
			return nil, false
		}
		sc.splice(sub)
		// Only a dst-style helper (first parameter []byte) continues the
		// caller's builder chain; other helpers start a fresh slice.
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Params().Len() > 0 && isByteSlice(sig.Params().At(0).Type()) {
			root, ok := sc.evalChain(call.Args[0])
			if !ok {
				sc.fail("unrecognized helper builder argument")
				return nil, true
			}
			return root, true
		}
		return nil, true
	}
}

// splice inlines a helper's extracted fields.
func (sc *encScope) splice(sub *Layout) {
	sc.flushPending()
	sc.fields = append(sc.fields, sub.Fields...)
	if sub.Opaque {
		sc.fail("opaque helper: " + sub.OpaqueReason)
	}
}

// intWrite handles one fixed-width (or varint) integer write.
func (sc *encScope) intWrite(kind Kind, arg ast.Expr) {
	sc.flushPending()
	p := &pendingInt{kind: kind}
	if op, ok := lenOperand(sc.info(), arg); ok {
		p.lenOf = canon(op)
	}
	sc.pending = p
}

// appendArgs interprets the value arguments of append(builder, ...).
func (sc *encScope) appendArgs(call *ast.CallExpr) {
	info := sc.info()
	args := call.Args[1:]
	if call.Ellipsis.IsValid() {
		// append(b, data...): a blob. With a matching pending length
		// prefix it is length-prefixed bytes; a fixed-size array slice
		// is a fixed field; anything else is the unprefixed tail.
		if len(args) != 1 {
			sc.fail("unrecognized variadic append")
			return
		}
		data := ast.Unparen(args[0])
		if sl, ok := data.(*ast.SliceExpr); ok && sl.Low == nil && sl.High == nil {
			if n, isArr := byteArrayLen(typeOf(info, sl.X)); isArr {
				sc.emit(Field{Kind: KArray, Size: n})
				return
			}
		}
		if sc.pending != nil && sc.pending.lenOf != "" && sc.pending.lenOf == canonData(info, data) {
			k := sc.pending.kind
			sc.pending = nil
			sc.fields = append(sc.fields, Field{Kind: KBytes, Prefix: k})
			return
		}
		sc.emit(Field{Kind: KTail})
		return
	}
	// Byte-at-a-time appends.
	for _, a := range args {
		if op, ok := lenOperand(info, a); ok {
			sc.flushPending()
			sc.pending = &pendingInt{kind: KU8, lenOf: canon(op)}
			continue
		}
		sc.emit(Field{Kind: KU8})
	}
}

// canonData canonicalizes a blob operand, looking through []byte(x)
// style conversions so `append(out, []byte(m)...)` matches the
// `uint32(len(m))` prefix written before it.
func canonData(info *types.Info, e ast.Expr) string {
	return canon(peelConversions(info, e))
}

// loop extracts a repeated element and folds it into the pending count
// prefix.
func (sc *encScope) loop(stmt ast.Stmt, body *ast.BlockStmt) {
	if !mentions(sc.info(), stmt, sc.builder) {
		return // computational loop, not part of the layout
	}
	sub := &encScope{ex: sc.ex, pkg: sc.pkg, builder: sc.builder}
	sub.run(body.List)
	sub.flushPending()
	if sub.opaque != "" {
		sc.fail("loop body: " + sub.opaque)
		return
	}
	if len(sub.fields) == 0 {
		return
	}
	if sc.pending == nil {
		sc.fail("repeated fields without a count prefix")
		return
	}
	k := sc.pending.kind
	sc.pending = nil
	sc.fields = append(sc.fields, Field{Kind: KList, Prefix: k, Elem: sub.fields})
}

// putCall interprets binary.BigEndian.PutUintN(builder[off:...], v)
// writes against a make([]byte, N) builder.
func (sc *encScope) putCall(call *ast.CallExpr) bool {
	info := sc.info()
	name, kind, ok := binaryCall(info, call)
	if !ok || len(call.Args) != 2 {
		return false
	}
	switch name {
	case "PutUint16", "PutUint32", "PutUint64":
	default:
		return false
	}
	dst := ast.Unparen(call.Args[0])
	off := 0
	switch d := dst.(type) {
	case *ast.Ident:
		if identObj(info, d) != sc.builder {
			return false
		}
	case *ast.SliceExpr:
		if identObj(info, d.X) != sc.builder {
			return false
		}
		if d.Low != nil {
			n, isConst := intConst(info, d.Low)
			if !isConst {
				sc.fail("non-constant PutUint offset")
				return true
			}
			off = int(n)
		}
	default:
		return false
	}
	if off != sc.putOff {
		sc.fail("non-sequential PutUint offsets")
		return true
	}
	sc.emit(Field{Kind: kind})
	sc.putOff += kindBytes(kind)
	return true
}

func (sc *encScope) ret(st *ast.ReturnStmt) {
	for _, res := range st.Results {
		res = ast.Unparen(res)
		if obj := identObj(sc.info(), res); obj != nil && obj == sc.builder {
			continue
		}
		if call, ok := res.(*ast.CallExpr); ok {
			if root, handled := sc.evalChain(call); handled {
				if sc.builder != nil && root != nil && root != sc.builder {
					sc.fail("returned a different builder")
					return
				}
				continue
			}
		}
		if mentions(sc.info(), res, sc.builder) {
			sc.fail("unrecognized builder return")
			return
		}
	}
	sc.flushPending()
	sc.done = true
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
