package wire

import (
	"go/ast"
	"go/types"
	"sort"

	"efdedup/lint/internal/load"
)

// extractDecode interprets a decoder: a function consuming its first
// []byte parameter through fixed-width reads
// (binary.BigEndian.UintN(src[a:])), indexed bytes (src[c]), varints,
// length-var-bounded slices (src[4:4+n]), helper splices and
// count-bounded loops. Validation guards — `if len(src) < k { return
// err }` — are skipped, but reads inside their conditions (magic-byte
// checks like p[0] != frameRequest) still count as consumed fields.
func extractDecode(ex *Extractor, src *funcSrc) *Layout {
	stream := firstByteSliceParam(src.pkg.Info, src.decl)
	if stream == nil {
		return nil // no []byte input: not a decoder
	}
	sc := &decScope{
		ex: ex, pkg: src.pkg,
		stream:      stream,
		exp:         zeroOffset(),
		lens:        make(map[types.Object]Kind),
		lenFieldIdx: make(map[types.Object]int),
		widthVars:   make(map[types.Object]bool),
		rest:        -1,
	}
	sc.run(src.decl.Body.List)
	if len(sc.fields) == 0 && sc.rest < 0 && sc.opaque == "" {
		return nil // never touched the input: not a decoder
	}
	return &Layout{
		FuncID:       src.fn.FullName(),
		Dir:          Decode,
		Fields:       sc.fields,
		Opaque:       sc.opaque != "",
		OpaqueReason: sc.opaque,
		RestResult:   sc.rest,
	}
}

// offset is a symbolic stream position: a constant plus a multiset of
// length variables consumed since the last rebase.
type offset struct {
	c    int
	vars map[types.Object]int
}

func zeroOffset() offset { return offset{vars: make(map[types.Object]int)} }

func (o offset) clone() offset {
	out := offset{c: o.c, vars: make(map[types.Object]int, len(o.vars))}
	for k, v := range o.vars {
		out.vars[k] = v
	}
	return out
}

func (o offset) addConst(c int) offset {
	out := o.clone()
	out.c += c
	return out
}

func (o offset) addVar(v types.Object) offset {
	out := o.clone()
	out.vars[v]++
	return out
}

func (o offset) nonZeroVars() int {
	n := 0
	for _, v := range o.vars {
		if v != 0 {
			n++
		}
	}
	return n
}

func (o offset) equal(p offset) bool {
	if o.c != p.c || o.nonZeroVars() != p.nonZeroVars() {
		return false
	}
	for k, v := range o.vars {
		if v != 0 && p.vars[k] != v {
			return false
		}
	}
	return true
}

func (o offset) isZero() bool { return o.c == 0 && o.nonZeroVars() == 0 }

// subsetOf reports whether every variable in o occurs in p at least as
// often (a partial order used to sort reads found in one statement).
func (o offset) subsetOf(p offset) bool {
	for k, v := range o.vars {
		if v > p.vars[k] {
			return false
		}
	}
	return true
}

// parseOffset decomposes an additive index expression (10+ml, 4+n) into
// a symbolic offset. ok=false for anything the model cannot represent
// (products of variables, calls, ...).
func parseOffset(info *types.Info, e ast.Expr) (offset, bool) {
	if e == nil {
		return zeroOffset(), true
	}
	if c, ok := intConst(info, e); ok {
		o := zeroOffset()
		o.c = int(c)
		return o, true
	}
	e = peelConversions(info, e)
	if bin, ok := e.(*ast.BinaryExpr); ok && bin.Op.String() == "+" {
		a, okA := parseOffset(info, bin.X)
		b, okB := parseOffset(info, bin.Y)
		if !okA || !okB {
			return offset{}, false
		}
		out := a.clone()
		out.c += b.c
		for k, v := range b.vars {
			out.vars[k] += v
		}
		return out, true
	}
	if obj := identObj(info, e); obj != nil {
		o := zeroOffset()
		o.vars[obj] = 1
		return o, true
	}
	return offset{}, false
}

// read is one extracted consumption of stream bytes.
type read struct {
	off    offset
	field  Field
	lenVar types.Object // KBytes: the variable bounding the blob
	width  int          // fixed widths; 0 for var-width fields
	// openResult marks an unbounded S[a:] appearing directly as a
	// return result: the unconsumed remainder handed to the caller.
	openResult int // result index, -1 otherwise
}

type decScope struct {
	ex     *Extractor
	pkg    *load.Package
	stream types.Object
	exp    offset
	// lens tracks integer variables assigned from a single prefix read,
	// lenFieldIdx the index of the field that read emitted — when the
	// bounded slice follows immediately, prefix and blob fuse into one
	// KBytes field (mirroring the encode side's pending mechanism).
	lens        map[types.Object]Kind
	lenFieldIdx map[types.Object]int
	// widthVars holds the byte-width results of binary.Uvarint, the only
	// legal reslice amounts while needRebase is set.
	widthVars map[types.Object]bool
	fields    []Field
	rest      int
	opaque    string
	done      bool
	// needRebase is set after a var-width varint read: the position is
	// unknowable until the code reslices past it.
	needRebase bool
}

func (sc *decScope) info() *types.Info { return sc.pkg.Info }

func (sc *decScope) fail(reason string) {
	if sc.opaque == "" {
		sc.opaque = reason
	}
	sc.done = true
}

func (sc *decScope) rebaseTo(v types.Object) {
	sc.stream = v
	sc.exp = zeroOffset()
	sc.needRebase = false
}

func (sc *decScope) run(stmts []ast.Stmt) {
	for _, s := range stmts {
		if sc.done {
			return
		}
		sc.stmt(s)
	}
}

func (sc *decScope) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		sc.assign(st)
	case *ast.ReturnStmt:
		sc.ret(st)
	case *ast.IfStmt:
		sc.ifStmt(st)
	case *ast.SwitchStmt:
		// The tag read (switch p[9]) is part of the format; the clause
		// bodies diverge, so the layout is opaque from there on.
		if st.Tag != nil {
			sc.applyReads(st.Tag, nil)
		}
		sc.fail("branchy layout (switch)")
	case *ast.ForStmt:
		sc.loop(st, st.Body, nil)
	case *ast.RangeStmt:
		sc.loop(st, st.Body, st.X)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && sc.copyStmt(call) {
			return
		}
		if mentions(sc.info(), st, sc.stream) {
			sc.fail("unrecognized stream use")
		}
	case *ast.DeclStmt:
		if mentions(sc.info(), st, sc.stream) {
			sc.fail("unrecognized stream declaration")
		}
	default:
		if mentions(sc.info(), s, sc.stream) {
			sc.fail("unrecognized statement")
		}
	}
}

// ifStmt skips validation guards (all-return bodies), consuming any
// stream reads in the condition, and fails on real branching.
func (sc *decScope) ifStmt(st *ast.IfStmt) {
	if st.Init != nil {
		sc.stmt(st.Init)
		if sc.done {
			return
		}
	}
	if st.Else == nil && allReturns(st.Body) {
		if sc.applyReads(st.Cond, nil) {
			return
		}
		sc.fail("unrecognized guard condition")
		return
	}
	if mentions(sc.info(), st, sc.stream) {
		sc.fail("conditional layout")
	}
}

func (sc *decScope) assign(st *ast.AssignStmt) {
	info := sc.info()
	// Rebase / stream aliasing: src = src[k:], src := body[4:], src = rest.
	if len(st.Lhs) == 1 && len(st.Rhs) == 1 {
		lhs := identObj(info, st.Lhs[0])
		rhs := ast.Unparen(st.Rhs[0])
		if lhs != nil && isByteSlice(lhs.Type()) {
			if sl, ok := rhs.(*ast.SliceExpr); ok && sl.High == nil && sl.Max == nil &&
				identObj(info, sl.X) == sc.stream {
				if sc.needRebase {
					// src = src[w:] after a varint: w must be the width
					// result of binary.Uvarint.
					if v := identObj(info, peelConversions(info, sl.Low)); v != nil && sc.widthVars[v] {
						sc.rebaseTo(lhs)
						return
					}
					sc.fail("varint width not resliced")
					return
				}
				off, okOff := parseOffset(info, sl.Low)
				if !okOff {
					sc.fail("unparseable reslice offset")
					return
				}
				if !off.equal(sc.exp) {
					sc.fail("reslice past unread bytes")
					return
				}
				sc.rebaseTo(lhs)
				return
			}
			if rid := identObj(info, rhs); rid != nil && rid == sc.stream && sc.exp.isZero() {
				sc.rebaseTo(lhs)
				return
			}
		}
	}
	if len(st.Rhs) == 1 {
		if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
			// v, w := binary.Uvarint(src): a varint read whose byte width
			// lands in w.
			if len(st.Lhs) == 2 {
				if name, _, okBin := binaryCall(info, call); okBin &&
					(name == "Uvarint" || name == "Varint") && len(call.Args) == 1 {
					off, okArg := sc.streamArg(call.Args[0])
					if !okArg || !off.equal(sc.exp) {
						sc.fail("varint read at unexpected offset")
						return
					}
					sc.fields = append(sc.fields, Field{Kind: KVarint})
					if v := identObj(info, st.Lhs[0]); v != nil {
						sc.lens[v] = KVarint
						sc.lenFieldIdx[v] = len(sc.fields) - 1
					}
					if w := identObj(info, st.Lhs[1]); w != nil {
						sc.widthVars[w] = true
					}
					sc.needRebase = true
					return
				}
			}
			// Helper splice: v, rest, err := decodeHelper(src).
			if sc.spliceCall(st, call) {
				return
			}
		}
	}
	// Generic field reads, registering single-integer length variables.
	var lenTarget types.Object
	if len(st.Lhs) == 1 {
		lenTarget = identObj(info, st.Lhs[0])
	}
	before := len(sc.fields)
	handled := true
	for _, rhs := range st.Rhs {
		if !sc.applyReads(rhs, nil) {
			handled = false
			break
		}
	}
	if handled {
		if lenTarget != nil && len(sc.fields) == before+1 {
			switch sc.fields[before].Kind {
			case KU8, KU16, KU32, KU64:
				sc.lens[lenTarget] = sc.fields[before].Kind
				sc.lenFieldIdx[lenTarget] = before
			}
		}
		return
	}
	if mentions(info, st, sc.stream) {
		sc.fail("unrecognized stream assignment")
	}
}

// spliceCall handles multi-result helper decoders:
//
//	key, src, err = readBytes(src)
//	req, rest, err := decodeDigestReq(src)
//
// The helper's fields splice in and the stream rebases to the variable
// holding the helper's rest result.
func (sc *decScope) spliceCall(st *ast.AssignStmt, call *ast.CallExpr) bool {
	info := sc.info()
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
		return false
	}
	// The first argument must be the stream; check that first so a
	// non-stream call falls through to the generic read path.
	arg := ast.Unparen(call.Args[0])
	var argOff offset
	switch a := arg.(type) {
	case *ast.Ident:
		if identObj(info, arg) != sc.stream {
			return false
		}
		argOff = zeroOffset()
	case *ast.SliceExpr:
		if identObj(info, a.X) != sc.stream || a.High != nil {
			return false
		}
		off, ok := parseOffset(info, a.Low)
		if !ok {
			return false
		}
		argOff = off
	default:
		return false
	}
	sub := sc.ex.Layout(fn.FullName(), Decode)
	if sub == nil {
		return false
	}
	if !argOff.equal(sc.exp) {
		sc.fail("helper consumes unread prefix")
		return true
	}
	if sub.Opaque {
		sc.fail("opaque helper: " + sub.OpaqueReason)
		return true
	}
	sc.fields = append(sc.fields, sub.Fields...)
	if sub.RestResult >= 0 && sub.RestResult < len(st.Lhs) && len(st.Lhs) == resultCount(fn) {
		if rest := identObj(info, st.Lhs[sub.RestResult]); rest != nil {
			sc.rebaseTo(rest)
			return true
		}
	}
	// Helper consumed the remainder (or its rest result is dropped):
	// the stream position is no longer tracked.
	sc.stream = nil
	sc.exp = zeroOffset()
	return true
}

func resultCount(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return 0
	}
	return sig.Results().Len()
}

// loop extracts a count-bounded repetition, fusing it with the integer
// count field read just before it.
func (sc *decScope) loop(stmt ast.Stmt, body *ast.BlockStmt, rangeX ast.Expr) {
	if !mentions(sc.info(), stmt, sc.stream) {
		return // computational loop, not part of the layout
	}
	if rangeX != nil && identObj(sc.info(), rangeX) == sc.stream {
		sc.fail("unstructured byte loop")
		return
	}
	if !sc.exp.isZero() {
		sc.fail("loop over partially-read stream")
		return
	}
	sub := &decScope{
		ex: sc.ex, pkg: sc.pkg,
		stream:      sc.stream,
		exp:         zeroOffset(),
		lens:        sc.lens,
		lenFieldIdx: sc.lenFieldIdx,
		widthVars:   sc.widthVars,
		rest:        -1,
	}
	sub.run(body.List)
	if sub.opaque != "" {
		sc.fail("loop body: " + sub.opaque)
		return
	}
	if len(sub.fields) == 0 {
		return
	}
	if len(sc.fields) == 0 {
		sc.fail("repeated fields without a count prefix")
		return
	}
	last := sc.fields[len(sc.fields)-1]
	switch last.Kind {
	case KU8, KU16, KU32, KU64, KVarint:
	default:
		sc.fail("repeated fields without a count prefix")
		return
	}
	sc.fields[len(sc.fields)-1] = Field{Kind: KList, Prefix: last.Kind, Elem: sub.fields}
	// The loop consumed a variable amount; the body's final stream
	// binding carries on at position zero.
	sc.stream = sub.stream
	sc.exp = zeroOffset()
}

// copyStmt handles copy(dst[:], stream) and copy(dst[:], stream[a:b])
// fixed-array consumption. The dst array's size bounds the copy, so a
// bounded source must cover at least that many bytes for the model to
// know exactly n came off the stream.
func (sc *decScope) copyStmt(call *ast.CallExpr) bool {
	info := sc.info()
	if !isBuiltin(info, call, "copy") || len(call.Args) != 2 {
		return false
	}
	dst, src := ast.Unparen(call.Args[0]), ast.Unparen(call.Args[1])
	sl, ok := dst.(*ast.SliceExpr)
	if !ok || sl.Low != nil || sl.High != nil {
		return false
	}
	n, ok := byteArrayLen(typeOf(info, sl.X))
	if !ok {
		return false
	}
	off, ok := sc.streamArg(src)
	if !ok || !off.equal(sc.exp) {
		return false
	}
	if ssl, isSlice := src.(*ast.SliceExpr); isSlice && ssl.High != nil {
		high, okH := parseOffset(info, ssl.High)
		if !okH {
			return false
		}
		length := high.clone()
		length.c -= off.c
		for k, v := range off.vars {
			length.vars[k] -= v
		}
		if length.nonZeroVars() != 0 || length.c < n {
			return false
		}
	}
	sc.fields = append(sc.fields, Field{Kind: KArray, Size: n})
	sc.exp = sc.exp.addConst(n)
	return true
}

func (sc *decScope) ret(st *ast.ReturnStmt) {
	for i, res := range st.Results {
		// A bare stream result is the unconsumed remainder.
		if obj := identObj(sc.info(), res); obj != nil && obj == sc.stream {
			if sc.exp.isZero() {
				sc.rest = i
				continue
			}
			sc.fail("stream returned mid-field")
			return
		}
		idx := i
		if !sc.applyReads(res, &idx) {
			sc.fail("unrecognized stream return")
			return
		}
	}
	sc.done = true
}

// applyReads collects every stream read inside e (in offset order),
// checks contiguity against the expected position and emits fields.
// resultIdx, when non-nil, marks e as the resultIdx-th return result so
// an unbounded remainder slice becomes the rest result instead of a
// field. Returns false when e contains stream uses the read model
// cannot represent.
func (sc *decScope) applyReads(e ast.Expr, resultIdx *int) bool {
	if sc.needRebase && mentions(sc.info(), e, sc.stream) {
		return false
	}
	reads, ok := sc.collect(e, resultIdx)
	if !ok {
		return false
	}
	sort.SliceStable(reads, func(i, j int) bool {
		a, b := reads[i].off, reads[j].off
		if a.subsetOf(b) && !b.subsetOf(a) {
			return true
		}
		if b.subsetOf(a) && !a.subsetOf(b) {
			return false
		}
		return a.c < b.c
	})
	for _, r := range reads {
		if r.openResult >= 0 {
			if r.off.equal(sc.exp) {
				sc.rest = r.openResult
				continue
			}
			return false
		}
		// Re-reads of already-consumed bytes (validation re-checks) are
		// fine; only genuinely new territory must be contiguous.
		if r.width > 0 {
			end := r.off.addConst(r.width)
			if end.subsetOf(sc.exp) && end.c <= sc.exp.c && !r.off.equal(sc.exp) {
				continue
			}
		}
		if !r.off.equal(sc.exp) {
			return false
		}
		if r.field.Kind == KBytes && r.lenVar != nil && len(sc.fields) > 0 &&
			sc.lenFieldIdx[r.lenVar] == len(sc.fields)-1 {
			// The length prefix read just before fuses with its blob:
			// n := Uint32(src); ... src[4:4+n] → one bytes32 field.
			sc.fields[len(sc.fields)-1] = r.field
		} else {
			sc.fields = append(sc.fields, r.field)
		}
		switch {
		case r.field.Kind == KVarint:
			sc.needRebase = true
		case r.lenVar != nil:
			sc.exp = sc.exp.addVar(r.lenVar)
		default:
			sc.exp = sc.exp.addConst(r.width)
		}
	}
	return true
}

// collect gathers stream reads from an expression tree without
// double-counting nested operands.
func (sc *decScope) collect(e ast.Expr, resultIdx *int) ([]read, bool) {
	info := sc.info()
	var reads []read
	bad := false
	topLevel := ast.Unparen(e)

	var walk func(x ast.Expr)
	walk = func(x ast.Expr) {
		if bad || x == nil {
			return
		}
		x = ast.Unparen(x)
		switch n := x.(type) {
		case *ast.CallExpr:
			if _, kind, ok := binaryCall(info, n); ok && len(n.Args) >= 1 {
				if r, ok := sc.streamArg(n.Args[0]); ok {
					if kind == KVarint {
						reads = append(reads, read{off: r, field: Field{Kind: KVarint}, openResult: -1})
					} else {
						reads = append(reads, read{off: r, field: Field{Kind: kind}, width: kindBytes(kind), openResult: -1})
					}
					return
				}
			}
			if isBuiltin(info, n, "len") || isBuiltin(info, n, "cap") {
				return // length checks are not data reads
			}
			if isConversion(info, n) && len(n.Args) == 1 {
				// string(p[10:10+ml]), int(p[9]), string(body), ...
				arg := ast.Unparen(n.Args[0])
				if id := identObj(info, arg); id != nil && id == sc.stream {
					// Whole-stream conversion: the unprefixed tail.
					reads = append(reads, read{off: zeroOffset(), field: Field{Kind: KTail}, openResult: -1})
					return
				}
				walk(n.Args[0])
				return
			}
			// Any other call taking the raw stream is beyond the model.
			for _, a := range n.Args {
				if id := identObj(info, ast.Unparen(a)); id != nil && id == sc.stream {
					bad = true
					return
				}
				walk(a)
			}
		case *ast.IndexExpr:
			if identObj(info, n.X) == sc.stream {
				off, ok := parseOffset(info, n.Index)
				if !ok {
					bad = true
					return
				}
				reads = append(reads, read{off: off, field: Field{Kind: KU8}, width: 1, openResult: -1})
				return
			}
			walk(n.X)
			walk(n.Index)
		case *ast.SliceExpr:
			if identObj(info, n.X) == sc.stream {
				r, ok := sc.sliceRead(n, resultIdx, topLevel)
				if !ok {
					bad = true
					return
				}
				reads = append(reads, r)
				return
			}
			walk(n.X)
			walk(n.Low)
			walk(n.High)
		case *ast.Ident:
			if identObj(info, n) == sc.stream {
				bad = true // raw stream use in an unmodeled context
			}
		case *ast.BinaryExpr:
			walk(n.X)
			walk(n.Y)
		case *ast.UnaryExpr:
			walk(n.X)
		case *ast.StarExpr:
			walk(n.X)
		case *ast.SelectorExpr:
			walk(n.X)
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					walk(kv.Value)
				} else {
					walk(el)
				}
			}
		case *ast.KeyValueExpr:
			walk(n.Value)
		default:
			if mentions(info, x, sc.stream) {
				bad = true
			}
		}
	}
	walk(e)
	return reads, !bad
}

// streamArg decodes a read argument over the stream — S, S[a:], S[a:b]
// — returning the read offset.
func (sc *decScope) streamArg(e ast.Expr) (offset, bool) {
	info := sc.info()
	e = ast.Unparen(e)
	if id := identObj(info, e); id != nil && id == sc.stream {
		return zeroOffset(), true
	}
	if sl, ok := e.(*ast.SliceExpr); ok && identObj(info, sl.X) == sc.stream {
		return parseOffset(info, sl.Low)
	}
	return offset{}, false
}

// sliceRead classifies a bounded slice of the stream into a
// bytes/array/rest read.
func (sc *decScope) sliceRead(sl *ast.SliceExpr, resultIdx *int, topLevel ast.Expr) (read, bool) {
	info := sc.info()
	low, ok := parseOffset(info, sl.Low)
	if !ok {
		return read{}, false
	}
	if sl.High == nil {
		// Unbounded remainder: only meaningful directly as a return
		// result (the decoder handing back the rest).
		if resultIdx != nil && topLevel == sl {
			return read{off: low, openResult: *resultIdx}, true
		}
		return read{}, false
	}
	high, ok := parseOffset(info, sl.High)
	if !ok {
		return read{}, false
	}
	// Length = high − low.
	length := high.clone()
	length.c -= low.c
	for k, v := range low.vars {
		length.vars[k] -= v
	}
	switch {
	case length.nonZeroVars() == 0 && length.c >= 0:
		return read{off: low, field: Field{Kind: KArray, Size: length.c}, width: length.c, openResult: -1}, true
	case length.nonZeroVars() == 1 && length.c == 0:
		var lv types.Object
		for k, v := range length.vars {
			if v == 0 {
				continue
			}
			if v != 1 {
				return read{}, false
			}
			lv = k
		}
		kind, tracked := sc.lens[lv]
		if !tracked {
			return read{}, false
		}
		return read{off: low, field: Field{Kind: KBytes, Prefix: kind}, lenVar: lv, openResult: -1}, true
	}
	return read{}, false
}
