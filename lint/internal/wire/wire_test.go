package wire

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"efdedup/lint/internal/load"
)

// buildPkg type-checks one synthetic package (stdlib imports allowed)
// and returns it wrapped for extraction.
func buildPkg(t *testing.T, src string) (*token.FileSet, *load.Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var imports []string
	for _, im := range f.Imports {
		imports = append(imports, im.Path.Value[1:len(im.Path.Value)-1])
	}
	exports, err := load.StdlibExports(".", imports)
	if err != nil {
		t.Fatalf("listing stdlib exports: %v", err)
	}
	info := load.NewInfo()
	conf := types.Config{Importer: load.NewExportImporter(fset, exports)}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, &load.Package{PkgPath: "p", Files: []*ast.File{f}, Types: tpkg, Info: info}
}

// layoutString extracts fn in the given direction and renders it.
func layoutString(t *testing.T, pkg *load.Package, fn string, dir Dir) string {
	t.Helper()
	ex := NewExtractor([]*load.Package{pkg})
	l := ex.Layout("p."+fn, dir)
	if l == nil {
		return "<nil>"
	}
	return l.String()
}

const fixedSrc = `package p

import "encoding/binary"

func encodeFixed(a uint32, b uint64, c uint16) []byte {
	out := make([]byte, 0, 14)
	out = binary.BigEndian.AppendUint32(out, a)
	out = binary.BigEndian.AppendUint64(out, b)
	return binary.BigEndian.AppendUint16(out, c)
}

func decodeFixed(src []byte) (uint32, uint64, uint16, error) {
	if len(src) < 14 {
		return 0, 0, 0, nil
	}
	a := binary.BigEndian.Uint32(src)
	b := binary.BigEndian.Uint64(src[4:])
	c := binary.BigEndian.Uint16(src[12:])
	return a, b, c, nil
}

func encodePut(a uint64, b uint32) []byte {
	out := make([]byte, 12)
	binary.BigEndian.PutUint64(out, a)
	binary.BigEndian.PutUint32(out[8:], b)
	return out
}
`

func TestFixedWidthLayouts(t *testing.T) {
	_, pkg := buildPkg(t, fixedSrc)
	if got := layoutString(t, pkg, "encodeFixed", Encode); got != "u32 | u64 | u16" {
		t.Errorf("encodeFixed = %q", got)
	}
	if got := layoutString(t, pkg, "decodeFixed", Decode); got != "u32 | u64 | u16" {
		t.Errorf("decodeFixed = %q", got)
	}
	if got := layoutString(t, pkg, "encodePut", Encode); got != "u64 | u32" {
		t.Errorf("encodePut = %q", got)
	}
}

const varintSrc = `package p

import "encoding/binary"

func encodeBlob(data []byte) []byte {
	out := make([]byte, 0, 10+len(data))
	out = binary.AppendUvarint(out, uint64(len(data)))
	return append(out, data...)
}

func decodeBlob(src []byte) ([]byte, error) {
	n, w := binary.Uvarint(src)
	if w <= 0 {
		return nil, nil
	}
	src = src[w:]
	if uint64(len(src)) < n {
		return nil, nil
	}
	return src[:n], nil
}
`

func TestVarintLayouts(t *testing.T) {
	_, pkg := buildPkg(t, varintSrc)
	if got := layoutString(t, pkg, "encodeBlob", Encode); got != "bytesv" {
		t.Errorf("encodeBlob = %q", got)
	}
	if got := layoutString(t, pkg, "decodeBlob", Decode); got != "bytesv" {
		t.Errorf("decodeBlob = %q", got)
	}
}

const nestedSrc = `package p

import "encoding/binary"

func appendB(dst, b []byte) []byte {
	dst = append(dst, byte(len(b)))
	return append(dst, b...)
}

func readB(src []byte) ([]byte, []byte, error) {
	if len(src) < 1 {
		return nil, nil, nil
	}
	n := src[0]
	if int(n) > len(src)-1 {
		return nil, nil, nil
	}
	return src[1 : 1+n], src[1+n:], nil
}

func encodeNested(groups [][]string) []byte {
	out := binary.BigEndian.AppendUint32(nil, uint32(len(groups)))
	for _, g := range groups {
		out = binary.BigEndian.AppendUint16(out, uint16(len(g)))
		for _, s := range g {
			out = appendB(out, []byte(s))
		}
	}
	return out
}

func decodeNested(src []byte) ([][]string, error) {
	count := binary.BigEndian.Uint32(src)
	src = src[4:]
	out := make([][]string, 0, count)
	for i := uint32(0); i < count; i++ {
		inner := binary.BigEndian.Uint16(src)
		src = src[2:]
		var g []string
		for j := uint16(0); j < inner; j++ {
			b, rest, err := readB(src)
			if err != nil {
				return nil, err
			}
			g = append(g, string(b))
			src = rest
		}
		out = append(out, g)
	}
	return out, nil
}
`

func TestNestedListLayouts(t *testing.T) {
	_, pkg := buildPkg(t, nestedSrc)
	if got := layoutString(t, pkg, "appendB", Encode); got != "bytes8" {
		t.Errorf("appendB = %q", got)
	}
	if got := layoutString(t, pkg, "readB", Decode); got != "bytes8 ; rest" {
		t.Errorf("readB = %q", got)
	}
	want := "list32<list16<bytes8>>"
	if got := layoutString(t, pkg, "encodeNested", Encode); got != want {
		t.Errorf("encodeNested = %q, want %q", got, want)
	}
	if got := layoutString(t, pkg, "decodeNested", Decode); got != want {
		t.Errorf("decodeNested = %q, want %q", got, want)
	}
}

const asymSrc = `package p

import "encoding/binary"

func encodeAsym(a uint32, b uint64) []byte {
	out := binary.BigEndian.AppendUint32(nil, a)
	return binary.BigEndian.AppendUint64(out, b)
}

func decodeAsym(src []byte) (uint32, uint32) {
	a := binary.BigEndian.Uint32(src)
	b := binary.BigEndian.Uint32(src[4:])
	return a, b
}
`

// TestAsymmetricPairDiagnostic pins the exact Compare text codecpair
// prints for a width mismatch.
func TestAsymmetricPairDiagnostic(t *testing.T) {
	_, pkg := buildPkg(t, asymSrc)
	ex := NewExtractor([]*load.Package{pkg})
	enc := ex.Layout("p.encodeAsym", Encode)
	dec := ex.Layout("p.decodeAsym", Decode)
	if enc == nil || dec == nil {
		t.Fatalf("extraction failed: enc=%v dec=%v", enc, dec)
	}
	want := "field 2: encoder writes u64, decoder reads u32"
	if got := Compare(enc, dec); got != want {
		t.Errorf("Compare = %q, want %q", got, want)
	}
}

const tailSrc = `package p

import "encoding/binary"

const frameReq = 0x01

func encodeReq(id uint64, method string, body []byte) ([]byte, error) {
	b := make([]byte, 0, 10+len(method)+len(body))
	b = append(b, frameReq)
	b = binary.BigEndian.AppendUint64(b, id)
	b = append(b, byte(len(method)))
	b = append(b, method...)
	b = append(b, body...)
	return b, nil
}

func decodeReq(p []byte) (uint64, string, []byte, error) {
	if len(p) < 10 || p[0] != frameReq {
		return 0, "", nil, nil
	}
	id := binary.BigEndian.Uint64(p[1:9])
	ml := int(p[9])
	if len(p) < 10+ml {
		return 0, "", nil, nil
	}
	return id, string(p[10 : 10+ml]), p[10+ml:], nil
}

func encodeArr(h [32]byte, extra []byte) []byte {
	out := binary.BigEndian.AppendUint32(nil, uint32(len(extra)))
	out = append(out, extra...)
	return append(out, h[:]...)
}

func decodeArr(src []byte) ([32]byte, []byte, error) {
	var h [32]byte
	n := binary.BigEndian.Uint32(src)
	if uint32(len(src)-4) < n {
		return h, nil, nil
	}
	extra := src[4 : 4+n]
	src = src[4+n:]
	if len(src) != len(h) {
		return h, nil, nil
	}
	copy(h[:], src)
	return h, extra, nil
}
`

func TestTailAndArrayLayouts(t *testing.T) {
	_, pkg := buildPkg(t, tailSrc)
	if got := layoutString(t, pkg, "encodeReq", Encode); got != "u8 | u64 | bytes8 | tail" {
		t.Errorf("encodeReq = %q", got)
	}
	if got := layoutString(t, pkg, "decodeReq", Decode); got != "u8 | u64 | bytes8 ; rest" {
		t.Errorf("decodeReq = %q", got)
	}
	ex := NewExtractor([]*load.Package{pkg})
	enc := ex.Layout("p.encodeReq", Encode)
	dec := ex.Layout("p.decodeReq", Decode)
	if msg := Compare(enc, dec); msg != "" {
		t.Errorf("encodeReq/decodeReq should pair: %s", msg)
	}
	if got := layoutString(t, pkg, "encodeArr", Encode); got != "bytes32 | array32" {
		t.Errorf("encodeArr = %q", got)
	}
	if got := layoutString(t, pkg, "decodeArr", Decode); got != "bytes32 | array32" {
		t.Errorf("decodeArr = %q", got)
	}
}

const rpcSrc = `package p

import "p/transport"

const (
	methodGet  = "p.get"
	methodPut  = "p.put"
	methodDead = "p.dead"
)

type Node struct{ srv *transport.Server }

func (n *Node) handle(method string, h transport.Handler) {
	n.srv.Handle(method, h)
}

func (n *Node) register() {
	n.handle(methodGet, nil)
	n.handle(methodPut, nil)
	n.srv.Handle(methodDead, nil)
}

type Cluster struct{ cl *transport.Client }

func (c *Cluster) call(method string, body []byte) ([]byte, error) {
	return c.callAttempt(method, body)
}

func (c *Cluster) callAttempt(method string, body []byte) ([]byte, error) {
	return c.cl.Call(method, body)
}

func (c *Cluster) Get(k []byte) ([]byte, error) { return c.call(methodGet, k) }
func (c *Cluster) Put(k []byte) ([]byte, error) { return c.call(methodPut, k) }
`

const rpcTransportSrc = `package transport

type Handler func([]byte) ([]byte, error)

type Server struct{}

func (s *Server) Handle(method string, h Handler) {}

type Client struct{}

func (c *Client) Call(method string, body []byte) ([]byte, error) { return nil, nil }
`

// TestRPCIndex pins wrapper-fixpoint site resolution: constant methods
// flowing through two levels of wrappers resolve, the wrappers' own
// forwarding calls do not count as sites, and registrations record
// their package.
func TestRPCIndex(t *testing.T) {
	fset := token.NewFileSet()
	parse := func(name, src string) *ast.File {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	tf := parse("t.go", rpcTransportSrc)
	info1 := load.NewInfo()
	conf := types.Config{}
	tpkg, err := conf.Check("p/transport", fset, []*ast.File{tf}, info1)
	if err != nil {
		t.Fatal(err)
	}
	imp := &overlayImporter{pkgs: map[string]*types.Package{"p/transport": tpkg}}
	pf := parse("p.go", rpcSrc)
	info2 := load.NewInfo()
	conf2 := types.Config{Importer: imp}
	ppkg, err := conf2.Check("p", fset, []*ast.File{pf}, info2)
	if err != nil {
		t.Fatal(err)
	}
	pkgs := []*load.Package{
		{PkgPath: "p/transport", Files: []*ast.File{tf}, Types: tpkg, Info: info1},
		{PkgPath: "p", Files: []*ast.File{pf}, Types: ppkg, Info: info2},
	}
	ix := BuildIndex(fset, pkgs)

	count := make(map[string]map[SiteKind]int)
	for _, s := range ix.Sites {
		if count[s.Method] == nil {
			count[s.Method] = make(map[SiteKind]int)
		}
		count[s.Method][s.Kind]++
	}
	for _, tc := range []struct {
		method string
		kind   SiteKind
		want   int
	}{
		{"p.get", Registration, 1},
		{"p.get", Call, 1},
		{"p.put", Registration, 1},
		{"p.put", Call, 1},
		{"p.dead", Registration, 1},
		{"p.dead", Call, 0},
	} {
		if got := count[tc.method][tc.kind]; got != tc.want {
			t.Errorf("method %s kind %d: %d sites, want %d (all: %+v)", tc.method, tc.kind, got, tc.want, ix.Sites)
		}
	}
}

type overlayImporter struct{ pkgs map[string]*types.Package }

func (o *overlayImporter) Import(path string) (*types.Package, error) {
	if p, ok := o.pkgs[path]; ok {
		return p, nil
	}
	return nil, nil
}

// TestLockRoundTrip pins the lockfile serialization.
func TestLockRoundTrip(t *testing.T) {
	l := &Lock{
		Methods: map[string]string{"kv.get": "efdedup/internal/kvstore"},
		Layouts: map[string]string{
			LayoutKey(Encode, "efdedup/internal/kvstore.encodeEntry"): "bytes32 | u64 | bytes32",
		},
	}
	parsed, err := ParseLock(l.Format())
	if err != nil {
		t.Fatal(err)
	}
	if diff := l.Diff(parsed); len(diff) != 0 {
		t.Errorf("round-trip diff: %v", diff)
	}
	parsed.Layouts[LayoutKey(Encode, "efdedup/internal/kvstore.encodeEntry")] = "bytes32 | u32 | bytes32"
	diff := l.Diff(parsed)
	if len(diff) != 1 {
		t.Fatalf("want one diff line, got %v", diff)
	}
}
