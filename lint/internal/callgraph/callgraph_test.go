package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"efdedup/lint/internal/load"
)

// buildGraph type-checks one synthetic package (no imports) and builds
// its call graph.
func buildGraph(t *testing.T, src string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := load.NewInfo()
	conf := types.Config{}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &load.Package{PkgPath: "p", Files: []*ast.File{f}, Types: tpkg, Info: info}
	return Build(fset, []*load.Package{pkg})
}

// edges returns caller's outgoing edges keyed by callee ID.
func edges(t *testing.T, g *Graph, caller string) map[string][]*Edge {
	t.Helper()
	n := g.Nodes[caller]
	if n == nil {
		t.Fatalf("no node %q; have %v", caller, ids(g))
	}
	out := make(map[string][]*Edge)
	for _, e := range n.Out {
		out[e.Callee.ID] = append(out[e.Callee.ID], e)
	}
	return out
}

func ids(g *Graph) []string {
	var out []string
	for _, n := range g.SortedNodes() {
		out = append(out, n.ID)
	}
	return out
}

// TestInterfaceFallback pins the conservative interface-call
// resolution: a call through an interface produces one labelled edge
// per universe type implementing it — value receivers and pointer
// receivers both — and none to non-implementers.
func TestInterfaceFallback(t *testing.T) {
	g := buildGraph(t, `package p

type Doer interface{ Do() }

type A struct{}

func (A) Do() {}

type B struct{}

func (*B) Do() {}

// C has a Do with the wrong shape: not an implementation.
type C struct{}

func (C) Do(int) {}

func run(d Doer) { d.Do() }
`)
	out := edges(t, g, "p.run")
	for _, want := range []string{"(p.A).Do", "(*p.B).Do"} {
		es := out[want]
		if len(es) != 1 {
			t.Fatalf("edges run→%s = %d, want 1 (have %v)", want, len(es), out)
		}
		if es[0].Interface != "Doer.Do" {
			t.Errorf("run→%s Interface label = %q, want %q", want, es[0].Interface, "Doer.Do")
		}
		if es[0].Ref || es[0].Async {
			t.Errorf("run→%s flags = ref:%v async:%v, want call edge", want, es[0].Ref, es[0].Async)
		}
	}
	if es := out["(p.C).Do"]; len(es) != 0 {
		t.Errorf("run→(p.C).Do exists; C does not implement Doer")
	}
}

// TestInterfaceFallbackViaEmbedding pins resolution when the
// implementation's method is promoted from an embedded type. The
// interface needs two methods, each supplied by a different embedded
// part, so only the embedder implements it — the edge must land on the
// embedded type's method, the body that actually runs.
func TestInterfaceFallbackViaEmbedding(t *testing.T) {
	g := buildGraph(t, `package p

type Doer interface {
	Do()
	Undo()
}

type base struct{}

func (*base) Do() {}

type undoer struct{}

func (undoer) Undo() {}

// E implements Doer only through its embedded parts.
type E struct {
	*base
	undoer
}

func run(d Doer) { d.Do() }
`)
	out := edges(t, g, "p.run")
	es := out["(*p.base).Do"]
	if len(es) != 1 {
		t.Fatalf("edges run→(*p.base).Do = %d, want 1 (have %v)", len(es), out)
	}
	if es[0].Interface != "Doer.Do" {
		t.Errorf("Interface label = %q, want %q", es[0].Interface, "Doer.Do")
	}
	if es[0].Ref || es[0].Async {
		t.Errorf("flags = ref:%v async:%v, want plain call edge", es[0].Ref, es[0].Async)
	}
}

// TestStaticAsyncRefEdges pins the three non-interface edge flavours:
// a plain static call, a call under a go statement (async, including
// inside the spawned literal), and a function value reference.
func TestStaticAsyncRefEdges(t *testing.T) {
	g := buildGraph(t, `package p

func helper() {}

func worker() {}

func takes(f func()) { f() }

func direct() { helper() }

func spawns() {
	go func() {
		worker()
	}()
}

func refs() { takes(worker) }
`)
	if es := edges(t, g, "p.direct")["p.helper"]; len(es) != 1 || es[0].Async || es[0].Ref {
		t.Errorf("direct→helper = %+v, want one sync call edge", es)
	}
	if es := edges(t, g, "p.spawns")["p.worker"]; len(es) != 1 || !es[0].Async {
		t.Errorf("spawns→worker = %+v, want one async edge", es)
	}
	if es := edges(t, g, "p.refs")["p.worker"]; len(es) != 1 || !es[0].Ref {
		t.Errorf("refs→worker = %+v, want one ref edge", es)
	}
	if es := edges(t, g, "p.refs")["p.takes"]; len(es) != 1 || es[0].Ref {
		t.Errorf("refs→takes = %+v, want one plain call edge", es)
	}
}
