// Package callgraph builds a module-wide static call graph over the
// packages a lint run loaded. It is the substrate of the
// interprocedural analyzers (lockorder, lockedio2, errlost, hotalloc):
// purely intra-procedural sweeps cannot see a deadlock whose two lock
// acquisitions live in different functions, or a per-chunk allocation
// three calls below the pipeline root.
//
// Resolution strategy, in decreasing precision:
//
//   - Static calls (package functions, concrete methods) resolve to
//     their one callee.
//   - Interface method calls resolve through a conservative fallback:
//     every named type in the loaded universe whose method set
//     implements the interface contributes its concrete method as a
//     possible callee. A call through an interface nobody in the
//     universe implements contributes no edges (the callee is outside
//     the analyzed world; analyzers treat it as unknown).
//   - Function values referenced without being called (`Split(r,
//     p.add)`) produce Ref edges: the receiver may invoke them, so
//     reachability analyses that care about "may eventually run on
//     this path" (hotalloc) follow them, while happens-while-holding
//     analyses (lockedio2, lockorder) do not.
//
// Calls anywhere under a `go` statement — including inside the spawned
// function literal's body — are marked Async: they do not block the
// caller, so a lock the caller holds is not held across them. Function
// literal bodies outside `go` statements are attributed to the
// enclosing declaration (a closure handed to a retrier or sort.Slice
// runs synchronously in the common case; this is the conservative
// choice for reachability).
//
// Nodes are keyed by types.Func full names rather than object identity
// because the same function is represented by different *types.Func
// objects depending on whether its package was type-checked from
// source or imported from export data.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"efdedup/lint/internal/load"
)

// Graph is a module-wide call graph.
type Graph struct {
	// Nodes maps function IDs (see FuncID) to nodes. Only functions
	// whose source was loaded have nodes; calls into export-data-only
	// packages (stdlib, dependencies) contribute no edges.
	Nodes map[string]*Node
}

// Node is one function or method with source.
type Node struct {
	// ID is the stable cross-package key (FuncID of Func).
	ID string
	// Func is the declared function object (from its defining
	// package's own type-check).
	Func *types.Func
	// Decl is the declaration; Body may be nil for bodyless decls.
	Decl *ast.FuncDecl
	// Pkg is the package the function was loaded from.
	Pkg *load.Package
	// Out and In are the outgoing and incoming edges.
	Out []*Edge
	In  []*Edge
}

// Edge is one possible caller→callee relationship.
type Edge struct {
	Caller *Node
	Callee *Node
	// Pos is the call (or reference) position in the caller.
	Pos token.Pos
	// Async marks calls under a `go` statement: they do not run on the
	// caller's stack, so the caller's locks are not held across them.
	Async bool
	// Ref marks a function value reference rather than a call: the
	// function escapes to whoever receives the value and may run later.
	Ref bool
	// Interface holds the interface method name ("Chunker.Split") when
	// the edge came from the conservative interface-call fallback.
	Interface string
}

// FuncID returns the stable identity of fn across source- and
// export-data-backed type checks, e.g.
// "(*efdedup/internal/kvstore.Cluster).BatchHas" or
// "efdedup/internal/chunk.Sum".
func FuncID(fn *types.Func) string { return fn.FullName() }

// Build constructs the graph over every function declared in pkgs.
func Build(fset *token.FileSet, pkgs []*load.Package) *Graph {
	g := &Graph{Nodes: make(map[string]*Node)}

	// Pass 1: one node per declared function.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				id := FuncID(obj)
				if _, dup := g.Nodes[id]; dup {
					continue // e.g. identical decl re-listed; keep the first
				}
				g.Nodes[id] = &Node{ID: id, Func: obj, Decl: fd, Pkg: pkg}
			}
		}
	}

	impls := newImplIndex(pkgs)

	// Pass 2: edges.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				caller := g.Nodes[FuncID(obj)]
				if caller == nil {
					continue
				}
				b := &edgeBuilder{g: g, pkg: pkg, caller: caller, impls: impls}
				b.walk(fd.Body, false)
			}
		}
	}

	// Deterministic edge order (builders walk files in listed order, but
	// sorting hardens every downstream traversal).
	for _, n := range g.Nodes {
		sort.SliceStable(n.Out, func(i, j int) bool { return n.Out[i].Pos < n.Out[j].Pos })
	}
	return g
}

// Node returns the node for fn, or nil when fn has no loaded source.
func (g *Graph) Node(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.Nodes[FuncID(fn)]
}

// SortedNodes returns every node ordered by ID, for deterministic
// module-wide sweeps.
func (g *Graph) SortedNodes() []*Node {
	out := make([]*Node, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// edgeBuilder accumulates one caller's outgoing edges.
type edgeBuilder struct {
	g      *Graph
	pkg    *load.Package
	caller *Node
	impls  *implIndex
}

func (b *edgeBuilder) walk(n ast.Node, async bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch node := m.(type) {
		case *ast.GoStmt:
			// Everything below the go statement is detached from the
			// caller's stack. (Argument expressions do evaluate
			// synchronously; treating them as async only loses edges for
			// happens-while-holding analyses, which is the safe
			// direction for a linter.)
			b.walk(node.Call, true)
			return false
		case *ast.CallExpr:
			b.call(node, async)
			// Recurse manually so the Fun identifier is not re-visited
			// as a value reference.
			b.walkCallChildren(node, async)
			return false
		case *ast.Ident:
			b.ref(node, node, async)
			return false
		case *ast.SelectorExpr:
			b.ref(node, node.Sel, async)
			// The receiver expression may itself contain calls.
			b.walk(node.X, async)
			return false
		}
		return true
	})
}

// walkCallChildren walks a call's operand subtrees, skipping the part
// of Fun that names the callee (already handled as a call).
func (b *edgeBuilder) walkCallChildren(call *ast.CallExpr, async bool) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		// Nothing below.
	case *ast.SelectorExpr:
		b.walk(fn.X, async)
	default:
		// FuncLit called immediately, call returning a function, ...
		b.walk(fn, async)
	}
	for _, arg := range call.Args {
		b.walk(arg, async)
	}
}

// call resolves one call expression to zero or more callees.
func (b *edgeBuilder) call(call *ast.CallExpr, async bool) {
	info := b.pkg.Info
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := objectOf(info, fn).(*types.Func); ok {
			b.addEdge(obj, call.Pos(), async, false, "")
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			callee, _ := sel.Obj().(*types.Func)
			if callee == nil {
				return // field of function type: unresolvable statically
			}
			if recvIsInterface(callee) {
				b.interfaceCall(sel.Recv(), callee, call.Pos(), async)
				return
			}
			b.addEdge(callee, call.Pos(), async, false, "")
			return
		}
		// Package-qualified call (pkg.Func).
		if obj, ok := objectOf(info, fn.Sel).(*types.Func); ok {
			b.addEdge(obj, call.Pos(), async, false, "")
		}
	}
}

// ref records a function value used outside call position.
func (b *edgeBuilder) ref(expr ast.Expr, id *ast.Ident, async bool) {
	fn, ok := objectOf(b.pkg.Info, id).(*types.Func)
	if !ok {
		return
	}
	if recvIsInterface(fn) {
		// Method value through an interface: fall back like a call.
		if sel, isSel := expr.(*ast.SelectorExpr); isSel {
			if s, okSel := b.pkg.Info.Selections[sel]; okSel {
				b.interfaceRef(s.Recv(), fn, expr.Pos(), async)
			}
		}
		return
	}
	b.addEdge(fn, expr.Pos(), async, true, "")
}

// interfaceCall adds fallback edges for a call through an interface.
func (b *edgeBuilder) interfaceCall(recv types.Type, method *types.Func, pos token.Pos, async bool) {
	label := interfaceLabel(recv, method)
	for _, impl := range b.impls.resolve(recv, method.Name()) {
		b.addEdge(impl, pos, async, false, label)
	}
}

// interfaceRef is the Ref-edge variant of interfaceCall.
func (b *edgeBuilder) interfaceRef(recv types.Type, method *types.Func, pos token.Pos, async bool) {
	label := interfaceLabel(recv, method)
	for _, impl := range b.impls.resolve(recv, method.Name()) {
		b.addEdge(impl, pos, async, true, label)
	}
}

func interfaceLabel(recv types.Type, method *types.Func) string {
	name := "interface"
	if named, ok := deref(recv).(*types.Named); ok {
		name = named.Obj().Name()
	}
	return name + "." + method.Name()
}

// addEdge links caller→callee when the callee has loaded source.
func (b *edgeBuilder) addEdge(callee *types.Func, pos token.Pos, async, ref bool, iface string) {
	target := b.g.Node(callee)
	if target == nil {
		return
	}
	e := &Edge{Caller: b.caller, Callee: target, Pos: pos, Async: async, Ref: ref, Interface: iface}
	b.caller.Out = append(b.caller.Out, e)
	target.In = append(target.In, e)
}

// implIndex resolves interface calls to concrete methods declared in
// the universe.
type implIndex struct {
	// named lists every named (non-interface) type with methods.
	named []*types.Named
}

func newImplIndex(pkgs []*load.Package) *implIndex {
	idx := &implIndex{}
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				continue
			}
			// NumMethods counts declared methods only; a type whose
			// whole method set is promoted from embedded fields still
			// implements interfaces, so index by the method set.
			if types.NewMethodSet(types.NewPointer(named)).Len() == 0 {
				continue
			}
			key := tn.Pkg().Path() + "." + tn.Name()
			if seen[key] {
				continue
			}
			seen[key] = true
			idx.named = append(idx.named, named)
		}
	}
	sort.Slice(idx.named, func(i, j int) bool {
		a, b := idx.named[i].Obj(), idx.named[j].Obj()
		return a.Pkg().Path()+"."+a.Name() < b.Pkg().Path()+"."+b.Name()
	})
	return idx
}

// resolve returns the concrete methods named method on every universe
// type implementing the interface type recv.
func (idx *implIndex) resolve(recv types.Type, method string) []*types.Func {
	iface, ok := deref(recv).Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, named := range idx.named {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), method)
		if fn, okFn := obj.(*types.Func); okFn {
			out = append(out, fn)
		}
	}
	return out
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

func recvIsInterface(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
