// Package summary computes per-function facts over the whole loaded
// universe and answers the transitive questions interprocedural
// analyzers ask: which mutexes can this call chain acquire, does this
// helper eventually touch the network, can this callee's error carry a
// quorum sentinel, which functions are reachable from the dedup
// pipeline roots. Facts are extracted once per lint run; transitive
// queries are memoized on the Set.
//
// A summary is deliberately positional, mirroring the intra-procedural
// lockedio sweep: Lock()/RLock() opens a held region, Unlock()/RUnlock()
// closes it, a deferred unlock keeps it open to the end of the body.
// Branch-sensitive lock flows (lock in one arm, unlock in another) are
// outside its precision, exactly as they are for lockedio.
package summary

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"efdedup/lint/internal/callgraph"
	"efdedup/lint/internal/load"
)

// Sentinel errors whose loss at a call site the errlost analyzer
// reports. Matched by (package-path suffix, name); PartialWriteError is
// a type, the rest are variables.
var trackedSentinels = []struct {
	pkgSuffix string
	name      string
	isType    bool
}{
	{"internal/kvstore", "ErrNoQuorum", false},
	{"internal/kvstore", "PartialWriteError", true},
}

// LockSite is one mutex acquisition inside a function.
type LockSite struct {
	// Key is the module-wide lock identity: "(pkg.Type).field" for
	// struct-field mutexes, "pkg.var" for package-level mutexes, and ""
	// for locks without a stable module-wide identity (locals,
	// parameters) — those participate in held-region tracking but not
	// in the global acquisition-order graph.
	Key string
	// Expr is the receiver expression as written ("c.mu"), for
	// diagnostics.
	Expr string
	Pos  token.Pos
	// Async marks acquisitions under a `go` statement.
	Async bool
}

// LockEdge records "Inner was acquired while Outer was held", both with
// module-wide identities.
type LockEdge struct {
	Outer, Inner string
	Pos          token.Pos // acquisition site of Inner
}

// CallUnderLock records a synchronous call made while a mutex is held.
type CallUnderLock struct {
	// LockKey / LockExpr identify the held mutex (LockKey may be "").
	LockKey  string
	LockExpr string
	LockPos  token.Pos
	// CalleeID is the callgraph.FuncID of the callee; empty when the
	// callee has no loaded source.
	CalleeID string
	// CalleeName is the callee as written at the call site.
	CalleeName string
	Pos        token.Pos
}

// IOSite is one direct network-I/O call.
type IOSite struct {
	Desc string
	Pos  token.Pos
}

// WrapSite is one place a tracked sentinel is wrapped into (or returned
// as) an error.
type WrapSite struct {
	Sentinel string // short name, e.g. "kvstore.ErrNoQuorum"
	Pos      token.Pos
}

// FuncSummary is the per-function fact sheet.
type FuncSummary struct {
	ID   string
	Node *callgraph.Node

	Locks          []LockSite
	LockEdges      []LockEdge
	CallsUnderLock []CallUnderLock
	IO             []IOSite
	Wraps          []WrapSite
	// ErrEscapes lists callee IDs whose error results can flow into
	// this function's own return values.
	ErrEscapes []string
	// ReturnsError reports whether the signature includes an error
	// result.
	ReturnsError bool
}

// Set is the module-wide summary store plus memoized transitive
// queries. Analyzers reach it through Pass.Summaries.
type Set struct {
	Fset  *token.FileSet
	Graph *callgraph.Graph
	Funcs map[string]*FuncSummary

	reachesIO map[string]*IOPath
	locksOf   map[string]map[string]token.Pos
	sentinels map[string]map[string]*WrapChain
	lockGraph *LockGraph
}

// Build extracts summaries for every function in the universe.
func Build(fset *token.FileSet, pkgs []*load.Package) *Set {
	g := callgraph.Build(fset, pkgs)
	s := &Set{
		Fset:      fset,
		Graph:     g,
		Funcs:     make(map[string]*FuncSummary, len(g.Nodes)),
		reachesIO: make(map[string]*IOPath),
		locksOf:   make(map[string]map[string]token.Pos),
		sentinels: make(map[string]map[string]*WrapChain),
	}
	for _, node := range g.SortedNodes() {
		s.Funcs[node.ID] = summarize(node)
	}
	return s
}

// ForFunc returns the summary for a declared function object, or nil.
func (s *Set) ForFunc(fn *types.Func) *FuncSummary {
	if fn == nil {
		return nil
	}
	return s.Funcs[callgraph.FuncID(fn)]
}

// ---------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------

func summarize(node *callgraph.Node) *FuncSummary {
	fs := &FuncSummary{ID: node.ID, Node: node}
	sig, _ := node.Func.Type().(*types.Signature)
	if sig != nil {
		fs.ReturnsError = signatureReturnsError(sig)
	}
	if node.Decl == nil || node.Decl.Body == nil {
		return fs
	}
	info := node.Pkg.Info
	conn := netConnInterface(node.Pkg.Types)

	sweepLocks(fs, node, conn)
	collectWrapsAndEscapes(fs, node, info)
	return fs
}

// event mirrors the lockedio positional sweep, extended with call
// events so held regions can be joined with the call graph.
type event struct {
	pos  token.Pos
	kind int
	// lock/unlock: identity + expression. call: callee id + name.
	key, expr string
	// io: description.
	desc string
}

const (
	evLock = iota
	evUnlock
	evDeferUnlock
	evIO
	evCall
)

// sweepLocks fills Locks, LockEdges, CallsUnderLock and IO. Each
// function-literal body is swept as part of the enclosing declaration
// but with its own held-region state (a closure's lock region does not
// leak into the enclosing function and vice versa), matching lockedio.
func sweepLocks(fs *FuncSummary, node *callgraph.Node, conn *types.Interface) {
	type body struct {
		block *ast.BlockStmt
		async bool
	}
	bodies := []body{{node.Decl.Body, false}}
	var findLits func(n ast.Node, async bool)
	findLits = func(n ast.Node, async bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch lit := m.(type) {
			case *ast.GoStmt:
				findLits(lit.Call, true)
				return false
			case *ast.FuncLit:
				bodies = append(bodies, body{lit.Body, async})
				findLits(lit.Body, async)
				return false
			}
			return true
		})
	}
	findLits(node.Decl.Body, false)

	for _, b := range bodies {
		sweepBody(fs, node, b.block, b.async, conn)
	}
}

// sweepBody runs the positional sweep over one body, skipping nested
// literals (they are swept separately) and go-statement subtrees (their
// calls do not run under the caller's locks; their lock acquisitions
// are still recorded via the async body sweep above).
func sweepBody(fs *FuncSummary, node *callgraph.Node, block *ast.BlockStmt, async bool, conn *types.Interface) {
	info := node.Pkg.Info
	var events []event
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch nn := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				return false
			case *ast.DeferStmt:
				walk(nn.Call, true)
				return false
			case *ast.CallExpr:
				if ev, ok := classify(info, node, nn, conn, inDefer); ok {
					events = append(events, ev)
				}
			}
			return true
		})
	}
	walk(block, false)
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	type heldLock struct {
		key, expr string
		pos       token.Pos
	}
	var held []heldLock
	sticky := make(map[string]bool) // expr -> deferred unlock
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			fs.Locks = append(fs.Locks, LockSite{Key: ev.key, Expr: ev.expr, Pos: ev.pos, Async: async})
			for _, h := range held {
				if h.key != "" && ev.key != "" {
					fs.LockEdges = append(fs.LockEdges, LockEdge{Outer: h.key, Inner: ev.key, Pos: ev.pos})
				}
				if h.expr == ev.expr {
					// Re-acquiring a held sync mutex is an immediate
					// self-deadlock; surface it as a self-edge.
					key := ev.key
					if key == "" {
						key = ev.expr
					}
					fs.LockEdges = append(fs.LockEdges, LockEdge{Outer: key, Inner: key, Pos: ev.pos})
				}
			}
			held = append(held, heldLock{key: ev.key, expr: ev.expr, pos: ev.pos})
		case evUnlock:
			if sticky[ev.expr] {
				break
			}
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].expr == ev.expr {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		case evDeferUnlock:
			sticky[ev.expr] = true
		case evIO:
			if !async {
				fs.IO = append(fs.IO, IOSite{Desc: ev.desc, Pos: ev.pos})
			}
		case evCall:
			if async || len(held) == 0 {
				break
			}
			h := held[0] // deterministic: oldest held lock
			fs.CallsUnderLock = append(fs.CallsUnderLock, CallUnderLock{
				LockKey: h.key, LockExpr: h.expr, LockPos: h.pos,
				CalleeID: ev.key, CalleeName: ev.expr, Pos: ev.pos,
			})
		}
	}
}

// classify turns a call into a sweep event.
func classify(info *types.Info, node *callgraph.Node, call *ast.CallExpr, conn *types.Interface, inDefer bool) (event, bool) {
	if expr, name, ok := mutexOp(info, call); ok {
		key := lockIdentity(info, call)
		switch name {
		case "Lock", "RLock":
			if inDefer {
				return event{}, false
			}
			return event{pos: call.Pos(), kind: evLock, key: key, expr: expr}, true
		case "Unlock", "RUnlock":
			kind := evUnlock
			if inDefer {
				kind = evDeferUnlock
			}
			return event{pos: call.Pos(), kind: kind, key: key, expr: expr}, true
		}
		return event{}, false
	}
	if desc, ok := IODesc(info, call, conn); ok {
		return event{pos: call.Pos(), kind: evIO, desc: desc}, true
	}
	if callee := calleeFunc(info, call); callee != nil {
		id := ""
		if !types.IsInterface(recvType(callee)) {
			id = callgraph.FuncID(callee)
		}
		return event{pos: call.Pos(), kind: evCall, key: id, expr: calleeDisplay(call, callee)}, true
	}
	return event{}, false
}

// collectWrapsAndEscapes fills Wraps and ErrEscapes.
func collectWrapsAndEscapes(fs *FuncSummary, node *callgraph.Node, info *types.Info) {
	if !fs.ReturnsError {
		return
	}
	body := node.Decl.Body

	// Identifiers that appear inside return statements (plus named
	// error results, which return statements may name implicitly).
	returned := make(map[types.Object]bool)
	if sig, ok := node.Func.Type().(*types.Signature); ok {
		res := sig.Results()
		for i := 0; i < res.Len(); i++ {
			if v := res.At(i); v.Name() != "" && isErrorType(v.Type()) {
				returned[v] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(m ast.Node) bool {
				if id, okID := m.(*ast.Ident); okID {
					if obj := info.Uses[id]; obj != nil {
						returned[obj] = true
					}
				}
				return true
			})
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.CallExpr:
			// Sentinel wrapped with %w via fmt.Errorf.
			if isPkgCall(info, nn, "fmt", "Errorf") && len(nn.Args) > 1 {
				if tv, ok := info.Types[nn.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String &&
					strings.Contains(constant.StringVal(tv.Value), "%w") {
					for _, arg := range nn.Args[1:] {
						if name, ok := sentinelRef(info, arg); ok {
							fs.Wraps = append(fs.Wraps, WrapSite{Sentinel: name, Pos: nn.Pos()})
						}
					}
				}
			}
			// Callee error escaping through a return statement or an
			// assignment to a returned variable.
			if callee := calleeFunc(info, nn); callee != nil && calleeReturnsError(callee) {
				if !types.IsInterface(recvType(callee)) {
					if escapes(info, body, nn, returned) {
						fs.ErrEscapes = append(fs.ErrEscapes, callgraph.FuncID(callee))
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range nn.Results {
				if name, ok := sentinelRef(info, res); ok {
					fs.Wraps = append(fs.Wraps, WrapSite{Sentinel: name, Pos: nn.Pos()})
				}
			}
		case *ast.CompositeLit:
			if name, ok := sentinelType(info, nn); ok {
				fs.Wraps = append(fs.Wraps, WrapSite{Sentinel: name, Pos: nn.Pos()})
			}
		}
		return true
	})
	fs.ErrEscapes = dedupe(fs.ErrEscapes)
}

// escapes reports whether the error result of call can flow into the
// enclosing function's return values: the call sits inside a return
// statement, or its error result is assigned to a variable that some
// return statement mentions.
func escapes(info *types.Info, body *ast.BlockStmt, call *ast.CallExpr, returned map[types.Object]bool) bool {
	found := false
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if found {
			return false
		}
		switch nn := n.(type) {
		case *ast.ReturnStmt:
			if containsNode(nn, call) {
				found = true
				return false
			}
		case *ast.AssignStmt:
			for _, rhs := range nn.Rhs {
				if !containsNode(rhs, call) {
					continue
				}
				for _, lhs := range nn.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj != nil && isErrorType(obj.Type()) && returned[obj] {
						found = true
						return false
					}
				}
			}
		}
		return true
	}
	ast.Inspect(body, visit)
	return found
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// ---------------------------------------------------------------------
// Type helpers
// ---------------------------------------------------------------------

// mutexOp matches sync.Mutex / sync.RWMutex Lock/Unlock/RLock/RUnlock
// calls, returning the receiver expression and method name.
func mutexOp(info *types.Info, call *ast.CallExpr) (expr, name string, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	fn, okFn := calleeObject(info, call).(*types.Func)
	if !okFn {
		return "", "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", false
	}
	named, okNamed := deref(recv.Type()).(*types.Named)
	if !okNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", "", false
	}
	if tn := named.Obj().Name(); tn != "Mutex" && tn != "RWMutex" {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

// lockIdentity derives the module-wide identity of the mutex a
// Lock/Unlock call operates on, or "" when it has none (locals).
func lockIdentity(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		// Field mutex: identity is (owner type).field.
		fieldSel, okSel := info.Selections[x]
		if !okSel {
			// Package-qualified var: pkg.Mu. Must render identically to
			// the in-package `Mu` spelling below or cross-package edges
			// never join.
			if obj := info.Uses[x.Sel]; obj != nil && isPackageLevel(obj) {
				return shortPkg(obj.Pkg().Path()) + "." + obj.Name()
			}
			return ""
		}
		owner, okOwner := deref(fieldSel.Recv()).(*types.Named)
		if !okOwner || owner.Obj().Pkg() == nil {
			return ""
		}
		return "(" + shortPkg(owner.Obj().Pkg().Path()) + "." + owner.Obj().Name() + ")." + x.Sel.Name
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			return ""
		}
		if isPackageLevel(obj) {
			return shortPkg(obj.Pkg().Path()) + "." + obj.Name()
		}
		return ""
	}
	return ""
}

// shortPkg trims the module prefix for readable lock names: the full
// import path stays unambiguous within one module but is noisy in a
// diagnostic.
func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

func isPackageLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// IODesc reports whether the call performs network I/O directly,
// mirroring the lockedio analyzer's classification: calls into package
// net, methods on net.Conn implementations, Dial/DialContext methods,
// transport.Client Call/Close, and helpers taking a net.Conn argument.
func IODesc(info *types.Info, call *ast.CallExpr, conn *types.Interface) (string, bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := objectOf(info, id); obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
				return "", false
			}
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return "", false
	}
	obj := calleeObject(info, call)
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			rt := recv.Type()
			if conn != nil && (types.Implements(rt, conn) || implementsPtr(rt, conn)) {
				return "net.Conn." + fn.Name(), true
			}
			if fn.Name() == "Dial" || fn.Name() == "DialContext" {
				return fn.Name(), true
			}
			if named, okNamed := deref(rt).(*types.Named); okNamed {
				tobj := named.Obj()
				if tobj.Pkg() != nil && strings.HasSuffix(tobj.Pkg().Path(), "internal/transport") &&
					tobj.Name() == "Client" && (fn.Name() == "Call" || fn.Name() == "Close") {
					return "transport.Client." + fn.Name(), true
				}
			}
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "net" {
			return "net." + fn.Name(), true
		}
	}
	if fn, ok := obj.(*types.Func); ok && strings.HasPrefix(fn.Name(), "New") {
		return "", false
	}
	if conn != nil {
		for _, arg := range call.Args {
			if tv, ok := info.Types[arg]; ok && tv.Type != nil {
				if types.Implements(tv.Type, conn) || implementsPtr(tv.Type, conn) {
					return "call passing net.Conn", true
				}
			}
		}
	}
	return "", false
}

// calleeObject resolves the called function or method, like
// analysis.Pass.CalleeObject (duplicated here to keep the import graph
// acyclic: analysis imports summary).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if o, ok := objectOf(info, fn).(*types.Func); ok {
			return o
		}
		return nil
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		if o, ok := objectOf(info, fn.Sel).(*types.Func); ok {
			return o
		}
	}
	return nil
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fn, _ := calleeObject(info, call).(*types.Func)
	return fn
}

// calleeDisplay renders the callee as written at the call site.
func calleeDisplay(call *ast.CallExpr, fn *types.Func) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return types.ExprString(sel)
	}
	return fn.Name()
}

func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return types.Typ[types.Invalid]
	}
	return sig.Recv().Type()
}

func calleeReturnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	return signatureReturnsError(sig)
}

func signatureReturnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// sentinelRef reports whether expr references a tracked sentinel
// variable (possibly wrapped in unary/paren expressions).
func sentinelRef(info *types.Info, expr ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	obj := info.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return "", false
	}
	for _, s := range trackedSentinels {
		if !s.isType && obj.Name() == s.name && strings.HasSuffix(obj.Pkg().Path(), s.pkgSuffix) {
			return shortPkg(obj.Pkg().Path()) + "." + s.name, true
		}
	}
	return "", false
}

// sentinelType reports whether lit constructs a tracked sentinel error
// type (e.g. &PartialWriteError{...} — the & is the enclosing node).
func sentinelType(info *types.Info, lit *ast.CompositeLit) (string, bool) {
	tv, ok := info.Types[lit]
	if !ok {
		return "", false
	}
	named, ok := deref(tv.Type).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	for _, s := range trackedSentinels {
		if s.isType && named.Obj().Name() == s.name && strings.HasSuffix(named.Obj().Pkg().Path(), s.pkgSuffix) {
			return shortPkg(named.Obj().Pkg().Path()) + "." + s.name, true
		}
	}
	return "", false
}

func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := calleeObject(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if fn, ok := obj.(*types.Func); !ok || fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

func implementsPtr(t types.Type, iface *types.Interface) bool {
	if _, ok := t.(*types.Pointer); ok {
		return false
	}
	return types.Implements(types.NewPointer(t), iface)
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// netConnInterface digs net.Conn out of the package's import graph.
func netConnInterface(pkg *types.Package) *types.Interface {
	seen := map[*types.Package]bool{}
	var find func(p *types.Package) *types.Package
	find = func(p *types.Package) *types.Package {
		if p == nil || seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == "net" {
			return p
		}
		for _, imp := range p.Imports() {
			if got := find(imp); got != nil {
				return got
			}
		}
		return nil
	}
	netPkg := find(pkg)
	if netPkg == nil {
		return nil
	}
	obj := netPkg.Scope().Lookup("Conn")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

func dedupe(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// FmtPos renders a position as base file name plus line, compact
// enough to embed in multi-step diagnostics.
func (s *Set) FmtPos(pos token.Pos) string {
	p := s.Fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}
