package summary

import (
	"go/token"
	"sort"
	"strings"
)

// ---------------------------------------------------------------------
// Transitive I/O (lockedio2)
// ---------------------------------------------------------------------

// IOPath describes how a function transitively reaches network I/O.
type IOPath struct {
	// Chain lists function display names from the queried function down
	// to (and including) the one performing the I/O.
	Chain []string
	// Desc is the I/O classification at the end of the chain.
	Desc string
	// Pos is the I/O site.
	Pos token.Pos
}

// ReachesIO reports whether the function with the given ID performs
// network I/O itself or through any chain of synchronous calls.
// Interface fallback edges are followed (any implementation that dials
// counts); async (go-spawned) and ref edges are not — they do not run
// on the caller's stack, so a held lock is not held across them.
func (s *Set) ReachesIO(id string) *IOPath {
	if p, done := s.reachesIO[id]; done {
		return p
	}
	s.reachesIO[id] = nil // cycle guard: a cycle cannot introduce new I/O
	fs := s.Funcs[id]
	if fs == nil {
		return nil
	}
	if len(fs.IO) > 0 {
		p := &IOPath{Chain: []string{displayName(id)}, Desc: fs.IO[0].Desc, Pos: fs.IO[0].Pos}
		s.reachesIO[id] = p
		return p
	}
	if fs.Node != nil {
		for _, e := range fs.Node.Out {
			if e.Async || e.Ref {
				continue
			}
			if sub := s.ReachesIO(e.Callee.ID); sub != nil {
				p := &IOPath{
					Chain: append([]string{displayName(id)}, sub.Chain...),
					Desc:  sub.Desc,
					Pos:   sub.Pos,
				}
				s.reachesIO[id] = p
				return p
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Transitive lock acquisition (lockorder)
// ---------------------------------------------------------------------

// TransitiveLocks returns every module-wide lock identity the function
// (or any synchronous callee, to any depth) may acquire, mapped to a
// representative acquisition site.
func (s *Set) TransitiveLocks(id string) map[string]token.Pos {
	if m, done := s.locksOf[id]; done {
		return m
	}
	s.locksOf[id] = nil // cycle guard
	fs := s.Funcs[id]
	if fs == nil {
		return nil
	}
	out := make(map[string]token.Pos)
	for _, l := range fs.Locks {
		if l.Key != "" {
			if _, ok := out[l.Key]; !ok {
				out[l.Key] = l.Pos
			}
		}
	}
	if fs.Node != nil {
		for _, e := range fs.Node.Out {
			if e.Async || e.Ref {
				continue
			}
			for key, pos := range s.TransitiveLocks(e.Callee.ID) {
				if _, ok := out[key]; !ok {
					out[key] = pos
				}
			}
		}
	}
	if len(out) == 0 {
		out = nil
	}
	s.locksOf[id] = out
	return out
}

// LockGraph is the module-wide mutex acquisition-order graph: an edge
// A→B means some execution path acquires B while holding A.
type LockGraph struct {
	// Edges maps outer lock -> inner lock -> representative site.
	Edges map[string]map[string]LockOrderSite
}

// LockOrderSite documents one acquired-while-held observation.
type LockOrderSite struct {
	// Pos is where the inner acquisition (or the call leading to it)
	// happens while the outer lock is held.
	Pos token.Pos
	// Func is the function containing the observation.
	Func string
	// Via names the callee chain when the inner acquisition is
	// interprocedural ("" for a direct nested Lock).
	Via string
}

// LockOrder builds (and memoizes) the module-wide acquisition-order
// graph from every function's direct nesting edges plus its
// calls-under-lock joined with callees' transitive lock sets.
func (s *Set) LockOrder() *LockGraph {
	if s.lockGraph != nil {
		return s.lockGraph
	}
	g := &LockGraph{Edges: make(map[string]map[string]LockOrderSite)}
	add := func(outer, inner string, site LockOrderSite) {
		m := g.Edges[outer]
		if m == nil {
			m = make(map[string]LockOrderSite)
			g.Edges[outer] = m
		}
		if old, ok := m[inner]; !ok || site.Pos < old.Pos {
			m[inner] = site
		}
	}
	for _, id := range s.sortedFuncIDs() {
		fs := s.Funcs[id]
		for _, e := range fs.LockEdges {
			add(e.Outer, e.Inner, LockOrderSite{Pos: e.Pos, Func: displayName(id)})
		}
		for _, cul := range fs.CallsUnderLock {
			if cul.LockKey == "" || cul.CalleeID == "" {
				continue
			}
			for inner := range s.TransitiveLocks(cul.CalleeID) {
				if inner == cul.LockKey {
					// Re-acquisition through a call is a real deadlock
					// too, but distinguishing reentrancy from a handoff
					// needs may-alias reasoning; the direct self-edge
					// case is covered intra-procedurally.
					continue
				}
				add(cul.LockKey, inner, LockOrderSite{
					Pos: cul.Pos, Func: displayName(id), Via: cul.CalleeName,
				})
			}
		}
	}
	s.lockGraph = g
	return g
}

// Cycle is one lock-order cycle: Locks[0] → Locks[1] → … → Locks[0].
type Cycle struct {
	// Locks lists the cycle's lock identities in order; the last edge
	// returns to Locks[0]. A single-element cycle is a self-deadlock.
	Locks []string
	// Sites documents each edge Locks[i] → Locks[(i+1)%len].
	Sites []LockOrderSite
}

// Cycles enumerates lock-order cycles deterministically: for every
// strongly connected component of the acquisition graph one canonical
// cycle is reported, rotated to start at its lexicographically smallest
// lock. Self-edges (relock while held) are single-element cycles.
func (g *LockGraph) Cycles() []Cycle {
	// Collect nodes.
	nodeSet := make(map[string]bool)
	for outer, inners := range g.Edges {
		nodeSet[outer] = true
		for inner := range inners {
			nodeSet[inner] = true
		}
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	// Tarjan SCC, iterative enough for lock graphs (tiny).
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0
	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		targets := sortedKeys(g.Edges[v])
		for _, w := range targets {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}

	var out []Cycle
	// A self-edge is an immediate self-deadlock whatever SCC the lock
	// belongs to; report it first and keep multi-lock cycle search free
	// of self-loops.
	for _, v := range nodes {
		if site, ok := g.Edges[v][v]; ok {
			out = append(out, Cycle{Locks: []string{v}, Sites: []LockOrderSite{site}})
		}
	}
	for _, scc := range sccs {
		if len(scc) == 1 {
			continue
		}
		// Find one canonical cycle through the smallest lock via BFS
		// back to the start inside the SCC.
		inSCC := make(map[string]bool, len(scc))
		for _, v := range scc {
			inSCC[v] = true
		}
		start := scc[0]
		path := shortestCycle(g, start, inSCC)
		if len(path) == 0 {
			continue
		}
		cyc := Cycle{Locks: path}
		for i := range path {
			from, to := path[i], path[(i+1)%len(path)]
			cyc.Sites = append(cyc.Sites, g.Edges[from][to])
		}
		out = append(out, cyc)
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].Locks, "→") < strings.Join(out[j].Locks, "→")
	})
	return out
}

// shortestCycle finds a minimal cycle from start back to start using
// only SCC-internal edges, breaking ties lexicographically.
func shortestCycle(g *LockGraph, start string, inSCC map[string]bool) []string {
	type qitem struct {
		node string
		path []string
	}
	queue := []qitem{{start, []string{start}}}
	visited := map[string]bool{start: true}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, w := range sortedKeys(g.Edges[it.node]) {
			if !inSCC[w] || w == it.node {
				continue
			}
			if w == start {
				return it.path
			}
			if !visited[w] {
				visited[w] = true
				next := make([]string, len(it.path), len(it.path)+1)
				copy(next, it.path)
				queue = append(queue, qitem{w, append(next, w)})
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Sentinel wrap chains (errlost)
// ---------------------------------------------------------------------

// WrapChain explains how a callee's error can carry a tracked sentinel.
type WrapChain struct {
	// Sentinel is the short sentinel name ("kvstore.ErrNoQuorum").
	Sentinel string
	// Chain lists display names from the queried function down to the
	// one that wraps the sentinel.
	Chain []string
}

// Sentinels returns, per tracked sentinel, how the function's returned
// error can carry it — directly or through callees whose errors escape
// into its return values. Nil when the function cannot produce one.
func (s *Set) Sentinels(id string) map[string]*WrapChain {
	if m, done := s.sentinels[id]; done {
		return m
	}
	s.sentinels[id] = nil // cycle guard
	fs := s.Funcs[id]
	if fs == nil {
		return nil
	}
	out := make(map[string]*WrapChain)
	for _, w := range fs.Wraps {
		if _, ok := out[w.Sentinel]; !ok {
			out[w.Sentinel] = &WrapChain{Sentinel: w.Sentinel, Chain: []string{displayName(id)}}
		}
	}
	for _, calleeID := range fs.ErrEscapes {
		for name, sub := range s.Sentinels(calleeID) {
			if _, ok := out[name]; !ok {
				out[name] = &WrapChain{
					Sentinel: name,
					Chain:    append([]string{displayName(id)}, sub.Chain...),
				}
			}
		}
	}
	if len(out) == 0 {
		out = nil
	}
	s.sentinels[id] = out
	return out
}

// ---------------------------------------------------------------------
// Root reachability (hotalloc)
// ---------------------------------------------------------------------

// ReachOptions tunes a reachability sweep.
type ReachOptions struct {
	// FollowAsync follows go-spawned calls (the spawned work is still
	// part of the pipeline's throughput budget).
	FollowAsync bool
	// FollowRefs follows function value references (callbacks handed to
	// other components that may invoke them per item).
	FollowRefs bool
}

// Reach holds the result of a reachability sweep: for every reachable
// function ID, the call path (display names) from the nearest root.
type Reach struct {
	paths map[string][]string
}

// Path returns the root→function display chain, or nil when the
// function is not reachable.
func (r *Reach) Path(id string) []string { return r.paths[id] }

// ReachableFrom runs a BFS from the given root IDs over the call graph.
func (s *Set) ReachableFrom(rootIDs []string, opt ReachOptions) *Reach {
	r := &Reach{paths: make(map[string][]string)}
	sorted := append([]string(nil), rootIDs...)
	sort.Strings(sorted)
	var queue []string
	for _, id := range sorted {
		if _, ok := s.Funcs[id]; !ok {
			continue
		}
		if _, seen := r.paths[id]; seen {
			continue
		}
		r.paths[id] = []string{displayName(id)}
		queue = append(queue, id)
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		fs := s.Funcs[id]
		if fs == nil || fs.Node == nil {
			continue
		}
		for _, e := range fs.Node.Out {
			if e.Async && !opt.FollowAsync {
				continue
			}
			if e.Ref && !opt.FollowRefs {
				continue
			}
			if _, seen := r.paths[e.Callee.ID]; seen {
				continue
			}
			base := r.paths[id]
			path := make([]string, len(base), len(base)+1)
			copy(path, base)
			r.paths[e.Callee.ID] = append(path, displayName(e.Callee.ID))
			queue = append(queue, e.Callee.ID)
		}
	}
	return r
}

// ---------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------

// displayName compresses a FuncID for diagnostics:
// "(*efdedup/internal/kvstore.Cluster).Get" → "(*kvstore.Cluster).Get",
// "efdedup/internal/chunk.Sum" → "chunk.Sum".
func displayName(id string) string {
	out := id
	for {
		i := strings.Index(out, "/")
		if i < 0 {
			return out
		}
		// Trim back to the start of the path segment chain.
		j := i
		for j > 0 && isPathRune(out[j-1]) {
			j--
		}
		out = out[:j] + out[i+1:]
	}
}

func isPathRune(b byte) bool {
	return b == '.' || b == '-' || b == '_' || b == '~' ||
		('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') || ('0' <= b && b <= '9')
}

func sortedKeys(m map[string]LockOrderSite) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (s *Set) sortedFuncIDs() []string {
	out := make([]string, 0, len(s.Funcs))
	for id := range s.Funcs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
