package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// build parses src (a file fragment containing one function named f)
// and returns its CFG plus the fileset.
func build(t *testing.T, src string) (*CFG, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return New(fd), fset
		}
	}
	t.Fatal("no func f in source")
	return nil, nil
}

// nodeLines renders a block's nodes as their source line numbers.
func nodeLines(fset *token.FileSet, b *Block) []int {
	var out []int
	for _, n := range b.Nodes {
		out = append(out, fset.Position(n.Pos()).Line)
	}
	return out
}

// reachable walks forward from the entry block.
func reachable(g *CFG) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, e := range b.Succs {
			walk(e.To)
		}
	}
	if len(g.Blocks) > 0 {
		walk(g.Blocks[0])
	}
	return seen
}

func TestIfElseCondEdges(t *testing.T) {
	g, _ := build(t, `
func f(x int) int {
	if x > 0 {
		x++
	} else {
		x--
	}
	return x
}`)
	head := g.Blocks[0]
	if len(head.Succs) != 2 {
		t.Fatalf("entry has %d succs, want 2", len(head.Succs))
	}
	var sawTrue, sawFalse bool
	for _, e := range head.Succs {
		if e.Cond == nil {
			t.Fatalf("if edge lost its condition")
		}
		if e.Negate {
			sawFalse = true
		} else {
			sawTrue = true
		}
	}
	if !sawTrue || !sawFalse {
		t.Fatalf("want one true and one negated edge, got true=%v false=%v", sawTrue, sawFalse)
	}
	if len(g.Exit.Preds) != 1 {
		t.Fatalf("exit preds = %d, want 1 (single return through the join)", len(g.Exit.Preds))
	}
}

func TestIfNoElseFalseEdgeToJoin(t *testing.T) {
	g, _ := build(t, `
func f(x int) int {
	if x > 0 {
		x++
	}
	return x
}`)
	head := g.Blocks[0]
	var neg *Edge
	for _, e := range head.Succs {
		if e.Negate {
			neg = e
		}
	}
	if neg == nil {
		t.Fatal("missing negated fall-through edge")
	}
	// The negated edge must reach the return without passing the body.
	if len(neg.To.Succs) != 1 || neg.To.Succs[0].To != g.Exit {
		t.Fatalf("false edge does not lead to the return block")
	}
}

// The load-bearing defer property: a return before the registration
// exits without the defer block, a return after it exits through it.
func TestPerReturnDeferChains(t *testing.T) {
	g, _ := build(t, `
func f(ok bool) error {
	r := open()
	if !ok {
		return errFail
	}
	defer r.Close()
	use(r)
	return nil
}`)
	if len(g.Exit.Preds) != 2 {
		t.Fatalf("exit preds = %d, want 2", len(g.Exit.Preds))
	}
	var deferChains, plain int
	for _, e := range g.Exit.Preds {
		if e.From.Kind == KindDefer {
			deferChains++
		} else {
			plain++
		}
	}
	if deferChains != 1 || plain != 1 {
		t.Fatalf("want exactly one return through the defer chain and one without; got %d defer, %d plain", deferChains, plain)
	}
}

func TestDeferChainOrderLIFO(t *testing.T) {
	g, _ := build(t, `
func f() {
	defer first()
	defer second()
}`)
	// Implicit return: body -> defer(second) -> defer(first) -> exit.
	if len(g.Exit.Preds) != 1 {
		t.Fatalf("exit preds = %d, want 1", len(g.Exit.Preds))
	}
	last := g.Exit.Preds[0].From
	if last.Kind != KindDefer {
		t.Fatalf("block before exit is %v, want defer block", last.Kind)
	}
	call := last.Nodes[0].(*ast.CallExpr)
	if name := call.Fun.(*ast.Ident).Name; name != "first" {
		t.Fatalf("outermost defer executed last should be first(), got %s()", name)
	}
	prev := last.Preds[0].From
	if prev.Kind != KindDefer {
		t.Fatalf("expected a second defer block, got %v", prev.Kind)
	}
	if name := prev.Nodes[0].(*ast.CallExpr).Fun.(*ast.Ident).Name; name != "second" {
		t.Fatalf("innermost defer should run first, got %s()", name)
	}
}

func TestForLoopShape(t *testing.T) {
	g, fset := build(t, `
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`)
	// Find the header: the block whose node list ends with the i<n cond
	// and that has a negated edge (loop exit) plus a plain edge (body).
	var header *Block
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.Cond != nil && e.Negate {
				header = b
			}
		}
	}
	if header == nil {
		t.Fatal("no loop header with a negated exit edge")
	}
	// The body must flow through the post block back into the header.
	found := false
	for _, e := range header.Preds {
		if lines := nodeLines(fset, e.From); len(lines) == 1 && containsIncDec(e.From) {
			found = true
		}
	}
	if !found {
		t.Fatal("no back edge through the post (i++) block")
	}
}

func containsIncDec(b *Block) bool {
	for _, n := range b.Nodes {
		if _, ok := n.(*ast.IncDecStmt); ok {
			return true
		}
	}
	return false
}

func TestRangeBreakContinue(t *testing.T) {
	g, _ := build(t, `
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		if x < 0 {
			continue
		}
		if x > 100 {
			break
		}
		s += x
	}
	return s
}`)
	seen := reachable(g)
	if !seen[g.Exit] {
		t.Fatal("exit unreachable")
	}
	// Every reachable non-exit block must reach the exit (no stuck paths).
	for b := range seen {
		if b == g.Exit {
			continue
		}
		sub := map[*Block]bool{}
		var walk func(x *Block)
		walk = func(x *Block) {
			if sub[x] {
				return
			}
			sub[x] = true
			for _, e := range x.Succs {
				walk(e.To)
			}
		}
		walk(b)
		if !sub[g.Exit] {
			t.Fatalf("block %d cannot reach exit", b.Index)
		}
	}
}

func TestSwitchFallthroughAndDefault(t *testing.T) {
	g, _ := build(t, `
func f(x int) int {
	switch x {
	case 1:
		x++
		fallthrough
	case 2:
		x += 2
	default:
		x = 0
	}
	return x
}`)
	// With a default present the header must NOT have a direct edge to
	// the join: some clause always runs.
	head := g.Blocks[0]
	for _, e := range head.Succs {
		for _, e2 := range e.To.Succs {
			_ = e2
		}
	}
	if len(head.Succs) != 3 {
		t.Fatalf("switch header fans out to %d clauses, want 3", len(head.Succs))
	}
	// fallthrough: the case-1 block must have an edge into the case-2
	// block, not only into the join.
	var case1 *Block
	for _, e := range head.Succs {
		for _, n := range e.To.Nodes {
			if lit, ok := n.(*ast.BasicLit); ok && lit.Value == "1" {
				case1 = e.To
			}
		}
	}
	if case1 == nil {
		t.Fatal("case 1 block not found")
	}
	fallsInto := false
	for _, e := range case1.Succs {
		for _, n := range e.To.Nodes {
			if lit, ok := n.(*ast.BasicLit); ok && lit.Value == "2" {
				fallsInto = true
			}
		}
	}
	if !fallsInto {
		t.Fatal("fallthrough edge into the next clause is missing")
	}
}

func TestSwitchWithoutDefaultSkipsClauses(t *testing.T) {
	g, _ := build(t, `
func f(x int) int {
	switch x {
	case 1:
		return 10
	}
	return x
}`)
	// No default: the header needs a direct edge to the join (x != 1).
	head := g.Blocks[0]
	direct := false
	for _, e := range head.Succs {
		if len(e.To.Nodes) == 0 || !isCaseExprBlock(e.To) {
			direct = true
		}
	}
	if !direct {
		t.Fatal("missing header→join edge for the no-case-matched path")
	}
	if len(g.Exit.Preds) != 2 {
		t.Fatalf("exit preds = %d, want 2 (case return + trailing return)", len(g.Exit.Preds))
	}
}

func isCaseExprBlock(b *Block) bool {
	for _, n := range b.Nodes {
		if _, ok := n.(*ast.BasicLit); ok {
			return true
		}
	}
	return false
}

func TestSelectBlocksAndJoins(t *testing.T) {
	g, _ := build(t, `
func f(a, b chan int) int {
	select {
	case x := <-a:
		return x
	case <-b:
	}
	return 0
}`)
	head := g.Blocks[0]
	if len(head.Succs) != 2 {
		t.Fatalf("select fans out to %d comm clauses, want 2", len(head.Succs))
	}
	if len(g.Exit.Preds) != 2 {
		t.Fatalf("exit preds = %d, want 2", len(g.Exit.Preds))
	}
}

func TestGotoForwardAndBackward(t *testing.T) {
	g, _ := build(t, `
func f(x int) int {
loop:
	x--
	if x > 0 {
		goto loop
	}
	if x < -10 {
		goto done
	}
	x = 0
done:
	return x
}`)
	seen := reachable(g)
	if !seen[g.Exit] {
		t.Fatal("exit unreachable through labels")
	}
	// The backward goto must create a cycle: some reachable block has a
	// successor with a smaller index (the back edge).
	back := false
	for b := range seen {
		for _, e := range b.Succs {
			if e.To.Index < b.Index && e.To.Kind == KindBody {
				back = true
			}
		}
	}
	if !back {
		t.Fatal("no back edge for `goto loop`")
	}
}

func TestLabeledBreak(t *testing.T) {
	g, _ := build(t, `
func f(m [][]int) int {
outer:
	for _, row := range m {
		for _, v := range row {
			if v == 0 {
				break outer
			}
		}
	}
	return 1
}`)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestPanicAndExitTerminatePaths(t *testing.T) {
	g, _ := build(t, `
func f(x int) int {
	if x < 0 {
		panic("neg")
	}
	if x == 0 {
		os.Exit(1)
	}
	return x
}`)
	// Only the normal return reaches the exit block: panics and
	// os.Exit are not charged against all-paths invariants.
	if len(g.Exit.Preds) != 1 {
		t.Fatalf("exit preds = %d, want 1", len(g.Exit.Preds))
	}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						if len(b.Succs) != 0 {
							t.Fatalf("panic block has %d succs, want 0", len(b.Succs))
						}
					}
				}
			}
		}
	}
}

func TestInfiniteLoopNoExitEdge(t *testing.T) {
	g, _ := build(t, `
func f(c chan int) {
	for {
		<-c
	}
}`)
	if len(g.Exit.Preds) != 0 {
		t.Fatalf("exit preds = %d, want 0 for an infinite loop", len(g.Exit.Preds))
	}
}

func TestFuncLitNotInlined(t *testing.T) {
	g, _ := build(t, `
func f() {
	go func() {
		return
	}()
	done()
}`)
	// The literal's return must not add an exit edge to the outer CFG.
	if len(g.Exit.Preds) != 1 {
		t.Fatalf("exit preds = %d, want 1 (the literal's return is separate)", len(g.Exit.Preds))
	}
}

func TestStoreMemoizes(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", "package p\nfunc f() {}\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	s := NewStore()
	if a, b := s.For(fd), s.For(fd); a != b {
		t.Fatal("Store.For rebuilt the CFG for the same function node")
	}
}

func TestTerminatesSpellings(t *testing.T) {
	for _, src := range []string{"panic(1)", "os.Exit(2)", "log.Fatalf(\"x\")", "runtime.Goexit()", "t.Fatal(\"y\")"} {
		file, err := parser.ParseFile(token.NewFileSet(), "x.go", "package p\nfunc f() { "+src+" }\n", 0)
		if err != nil {
			t.Fatal(err)
		}
		call := file.Decls[0].(*ast.FuncDecl).Body.List[0].(*ast.ExprStmt).X.(*ast.CallExpr)
		if !terminates(call) {
			t.Errorf("terminates(%s) = false, want true", src)
		}
	}
	file, _ := parser.ParseFile(token.NewFileSet(), "x.go", "package p\nfunc f() { fmt.Println(1) }\n", 0)
	call := file.Decls[0].(*ast.FuncDecl).Body.List[0].(*ast.ExprStmt).X.(*ast.CallExpr)
	if terminates(call) {
		t.Error("terminates(fmt.Println) = true, want false")
	}
}
