package cfg

import (
	"go/ast"
	"sync"
)

// Store memoizes per-function CFGs for the life of one lint run. The
// driver hands one Store to every pass (analysis.Pass.CFGs), so four
// path-sensitive analyzers visiting the same function body pay for one
// graph construction, not four.
type Store struct {
	mu   sync.Mutex
	cfgs map[ast.Node]*CFG
}

// NewStore allocates an empty store.
func NewStore() *Store {
	return &Store{cfgs: make(map[ast.Node]*CFG)}
}

// For returns the (possibly cached) CFG of fn, an *ast.FuncDecl or
// *ast.FuncLit.
func (s *Store) For(fn ast.Node) *CFG {
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.cfgs[fn]; ok {
		return g
	}
	g := New(fn)
	s.cfgs[fn] = g
	return g
}
