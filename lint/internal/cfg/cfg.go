// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies, without x/tools. Each CFG is a list of basic blocks
// holding the statements (and branch-condition expressions) that
// execute straight-line, connected by edges that optionally carry the
// governing branch condition — an edge out of `if err != nil` knows
// both the condition expression and whether it was taken on the true
// or false arm, which lets dataflow clients refine facts per branch
// (kill a "file is open" fact on the open-failed arm).
//
// Structured control flow is covered in full: if/else, for (all three
// clauses), range, switch (with fallthrough), type switch, select,
// labeled break/continue, goto, and defer/return/panic. Returns do not
// share one exit: every return (and the implicit fall-off-the-end
// return) gets its own chain of synthetic defer blocks replaying the
// defers registered on paths reaching it, last-in first-out, so a
// `defer f.Close()` kills a leak only on returns the registration
// precedes — the early `return err` before the defer still sees the
// file open. Defer registration at a join is the union of the incoming
// paths' registrations (a may-approximation: a defer registered on
// only one arm appears on the joined exit chain; this can mask — never
// invent — a missing-cleanup finding and is the standard trade against
// false positives).
//
// Terminating statements — panic, os.Exit, log.Fatal*, runtime.Goexit,
// and testing's t.Fatal* — end their path without an exit edge:
// "on all paths" invariants (close/cancel before returning) follow the
// x/tools lostcancel convention of not charging abnormal exits.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// BlockKind distinguishes synthetic blocks from source blocks.
type BlockKind int

const (
	// KindBody blocks hold source statements.
	KindBody BlockKind = iota
	// KindDefer blocks model the execution of one registered defer on
	// the way out of the function; Block.Defer names the registration.
	KindDefer
	// KindExit is the single synthetic exit block (normal returns only).
	KindExit
)

// Block is one basic block.
type Block struct {
	Index int
	Kind  BlockKind
	// Nodes are the statements and branch-condition expressions that
	// execute unconditionally once the block is entered, in order.
	// Condition expressions of if/for/switch headers appear as the
	// block's last node; a RangeStmt or SelectStmt comm case appears as
	// a node so clients can see its receives and definitions. Function
	// literal bodies are NOT inlined — they get their own CFGs.
	Nodes []ast.Node
	Succs []*Edge
	Preds []*Edge
	// Defer is the registration this KindDefer block replays.
	Defer *ast.DeferStmt
}

// Edge connects two blocks, optionally refined by a branch condition:
// the edge is taken when Cond evaluates to !Negate. Cond is nil for
// unconditional edges and for switch/select dispatch.
type Edge struct {
	From, To *Block
	Cond     ast.Expr
	Negate   bool
}

// CFG is the control-flow graph of one function body. Blocks[0] is the
// entry block; Exit is the synthetic normal-return block.
type CFG struct {
	Blocks []*Block
	Exit   *Block
}

// New builds the CFG of fn, which must be an *ast.FuncDecl or
// *ast.FuncLit. A nil body (declaration without definition) yields a
// two-block entry→exit graph.
func New(fn ast.Node) *CFG {
	var body *ast.BlockStmt
	switch f := fn.(type) {
	case *ast.FuncDecl:
		body = f.Body
	case *ast.FuncLit:
		body = f.Body
	default:
		panic(fmt.Sprintf("cfg.New: not a function node: %T", fn))
	}
	b := &builder{
		cfg:    &CFG{},
		labels: make(map[string]*Block),
	}
	entry := b.newBlock(KindBody)
	b.cfg.Exit = b.newBlock(KindExit)
	b.cur = entry
	if body != nil {
		b.stmtList(body.List)
	}
	// Fall off the end: the implicit return.
	b.ret()
	return b.cfg
}

// builder carries the in-progress graph plus the flow state: the block
// under construction, the defers registered on the current path, and
// the targets break/continue/goto resolve against.
type builder struct {
	cfg *CFG
	// cur is the block receiving statements; nil after a terminator
	// (the next statement is unreachable and opens a fresh orphan
	// block so labels inside dead code still resolve).
	cur    *Block
	defers []*ast.DeferStmt

	breaks    []*Block // innermost-last break targets (loops, switch, select)
	continues []*Block // innermost-last continue targets (loops only)
	labels    map[string]*Block
	// labeledBreak / labeledContinue resolve `break L` / `continue L`.
	labeledBreak    map[string]*Block
	labeledContinue map[string]*Block
	// pendingLabel is set while processing the statement a label names,
	// so the loop/switch it labels can register labeled targets.
	pendingLabel string
}

func (b *builder) newBlock(kind BlockKind) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block, cond ast.Expr, negate bool) {
	e := &Edge{From: from, To: to, Cond: cond, Negate: negate}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// ensure makes sure statements have a block to land in; statements
// after a terminator open an orphan (unreachable) block.
func (b *builder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock(KindBody)
	}
	return b.cur
}

func (b *builder) add(n ast.Node) { b.ensure().Nodes = append(b.cur.Nodes, n) }

// ret terminates the current path through a fresh defer chain into the
// exit block. Each return site owns its chain, so only the defers
// registered before it apply.
func (b *builder) ret() {
	if b.cur == nil {
		return
	}
	for i := len(b.defers) - 1; i >= 0; i-- {
		d := b.newBlock(KindDefer)
		d.Defer = b.defers[i]
		d.Nodes = []ast.Node{b.defers[i].Call}
		b.edge(b.cur, d, nil, false)
		b.cur = d
	}
	b.edge(b.cur, b.cfg.Exit, nil, false)
	b.cur = nil
}

// mergeDefers unions defer registrations flowing into a join, keeping
// first-seen order for deterministic chains.
func mergeDefers(paths ...[]*ast.DeferStmt) []*ast.DeferStmt {
	var out []*ast.DeferStmt
	seen := make(map[*ast.DeferStmt]bool)
	for _, p := range paths {
		for _, d := range p {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	return out
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label block is the target of `goto L` (possibly created
		// by a forward goto) and of `continue L` on loops.
		lb, ok := b.labels[s.Label.Name]
		if !ok {
			lb = b.newBlock(KindBody)
			b.labels[s.Label.Name] = lb
		}
		if b.cur != nil {
			b.edge(b.cur, lb, nil, false)
		}
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.ret()

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.DeferStmt:
		b.add(s)
		b.defers = append(b.defers, s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		b.switchStmt(s)

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && terminates(call) {
			b.cur = nil // abnormal exit: no edge, facts are not charged
		}

	default:
		// Assignments, declarations, go, send, inc/dec, empty: plain
		// nodes with no control effect at this level.
		b.add(s)
	}
}

// branch handles break/continue/goto; fallthrough is consumed by
// switchStmt and is a no-op here.
func (b *builder) branch(s *ast.BranchStmt) {
	target := func(labeled map[string]*Block, stack []*Block) *Block {
		if s.Label != nil {
			return labeled[s.Label.Name]
		}
		if len(stack) > 0 {
			return stack[len(stack)-1]
		}
		return nil
	}
	switch s.Tok {
	case token.BREAK:
		if t := target(b.labeledBreak, b.breaks); t != nil && b.cur != nil {
			b.add(s)
			b.edge(b.cur, t, nil, false)
		}
		b.cur = nil
	case token.CONTINUE:
		if t := target(b.labeledContinue, b.continues); t != nil && b.cur != nil {
			b.add(s)
			b.edge(b.cur, t, nil, false)
		}
		b.cur = nil
	case token.GOTO:
		lb, ok := b.labels[s.Label.Name]
		if !ok {
			lb = b.newBlock(KindBody) // forward goto: label not seen yet
			b.labels[s.Label.Name] = lb
		}
		if b.cur != nil {
			b.add(s)
			b.edge(b.cur, lb, nil, false)
		}
		b.cur = nil
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	head := b.ensure()
	before := b.defers

	thenB := b.newBlock(KindBody)
	b.edge(head, thenB, s.Cond, false)
	b.cur, b.defers = thenB, before
	b.stmtList(s.Body.List)
	thenEnd, thenDefers := b.cur, b.defers

	var elseEnd *Block
	elseDefers := before
	if s.Else != nil {
		elseB := b.newBlock(KindBody)
		b.edge(head, elseB, s.Cond, true)
		b.cur, b.defers = elseB, before
		b.stmt(s.Else)
		elseEnd, elseDefers = b.cur, b.defers
	}

	join := b.newBlock(KindBody)
	if s.Else == nil {
		b.edge(head, join, s.Cond, true)
	} else if elseEnd != nil {
		b.edge(elseEnd, join, nil, false)
	}
	if thenEnd != nil {
		b.edge(thenEnd, join, nil, false)
	}
	b.cur = join
	b.defers = mergeDefers(thenDefers, elseDefers)
	if s.Else != nil && thenEnd == nil && elseEnd == nil {
		b.cur = nil // both arms terminated; join is dead
	}
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	if s.Init != nil {
		b.add(s.Init)
	}
	header := b.newBlock(KindBody)
	if b.cur != nil {
		b.edge(b.cur, header, nil, false)
	}
	after := b.newBlock(KindBody)

	body := b.newBlock(KindBody)
	if s.Cond != nil {
		header.Nodes = append(header.Nodes, s.Cond)
		b.edge(header, body, s.Cond, false)
		b.edge(header, after, s.Cond, true)
	} else {
		b.edge(header, body, nil, false)
	}

	// continue goes to the post statement when there is one.
	contTarget := header
	var post *Block
	if s.Post != nil {
		post = b.newBlock(KindBody)
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, header, nil, false)
		contTarget = post
	}

	before := b.defers
	b.pushLoop(label, after, contTarget)
	b.cur, b.defers = body, before
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, contTarget, nil, false)
	}
	bodyDefers := b.defers
	b.popLoop(label)

	b.cur = after
	if len(after.Preds) == 0 {
		b.cur = nil // `for { ... }` with no break: code after is dead
	}
	b.defers = mergeDefers(before, bodyDefers)
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	header := b.newBlock(KindBody)
	// The header holds the ranged expression and the key/value
	// definitions — never the RangeStmt itself, whose subtree would
	// drag the whole loop body into the header for any client that
	// inspects block nodes recursively.
	header.Nodes = append(header.Nodes, s.X)
	if s.Key != nil {
		header.Nodes = append(header.Nodes, s.Key)
	}
	if s.Value != nil {
		header.Nodes = append(header.Nodes, s.Value)
	}
	if b.cur != nil {
		b.edge(b.cur, header, nil, false)
	}
	after := b.newBlock(KindBody)
	body := b.newBlock(KindBody)
	b.edge(header, body, nil, false)
	b.edge(header, after, nil, false)

	before := b.defers
	b.pushLoop(label, after, header)
	b.cur, b.defers = body, before
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, header, nil, false)
	}
	bodyDefers := b.defers
	b.popLoop(label)

	b.cur = after
	b.defers = mergeDefers(before, bodyDefers)
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.ensure()
	join := b.newBlock(KindBody)
	b.pushSwitch(label, join)
	before := b.defers

	// Build every clause block first so fallthrough can reach forward.
	var clauses []*ast.CaseClause
	var bodies []*Block
	hasDefault := false
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		clauses = append(clauses, cc)
		blk := b.newBlock(KindBody)
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		b.edge(head, blk, nil, false)
		bodies = append(bodies, blk)
		if cc.List == nil {
			hasDefault = true
		}
	}
	deferPaths := [][]*ast.DeferStmt{}
	if !hasDefault {
		b.edge(head, join, nil, false)
		deferPaths = append(deferPaths, before)
	}
	for i, cc := range clauses {
		b.cur, b.defers = bodies[i], before
		// A trailing fallthrough transfers to the next clause body.
		body := cc.Body
		fall := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				body, fall = body[:n-1], true
			}
		}
		b.stmtList(body)
		if b.cur != nil {
			if fall && i+1 < len(bodies) {
				b.edge(b.cur, bodies[i+1], nil, false)
			} else {
				b.edge(b.cur, join, nil, false)
				deferPaths = append(deferPaths, b.defers)
			}
		}
	}
	b.popSwitch(label)
	b.cur = join
	b.defers = mergeDefers(deferPaths...)
	if len(join.Preds) == 0 {
		b.cur = nil // every clause terminated and a default exists
	}
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	head := b.ensure()
	join := b.newBlock(KindBody)
	b.pushSwitch(label, join)
	before := b.defers

	hasDefault := false
	deferPaths := [][]*ast.DeferStmt{}
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock(KindBody)
		b.edge(head, blk, nil, false)
		b.cur, b.defers = blk, before
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, join, nil, false)
			deferPaths = append(deferPaths, b.defers)
		}
	}
	if !hasDefault {
		b.edge(head, join, nil, false)
		deferPaths = append(deferPaths, before)
	}
	b.popSwitch(label)
	b.cur = join
	b.defers = mergeDefers(deferPaths...)
	if len(join.Preds) == 0 {
		b.cur = nil
	}
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	head := b.ensure()
	join := b.newBlock(KindBody)
	b.pushSwitch(label, join)
	before := b.defers

	deferPaths := [][]*ast.DeferStmt{}
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		blk := b.newBlock(KindBody)
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		b.edge(head, blk, nil, false)
		b.cur, b.defers = blk, before
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, join, nil, false)
			deferPaths = append(deferPaths, b.defers)
		}
	}
	b.popSwitch(label)
	b.cur = join
	b.defers = mergeDefers(deferPaths...)
	if len(s.Body.List) == 0 || len(join.Preds) == 0 {
		b.cur = nil // select{} blocks forever; or every case terminated
	}
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if label != "" {
		if b.labeledBreak == nil {
			b.labeledBreak = make(map[string]*Block)
			b.labeledContinue = make(map[string]*Block)
		}
		b.labeledBreak[label] = brk
		b.labeledContinue[label] = cont
	}
}

func (b *builder) popLoop(label string) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	if label != "" {
		delete(b.labeledBreak, label)
		delete(b.labeledContinue, label)
	}
}

func (b *builder) pushSwitch(label string, brk *Block) {
	b.breaks = append(b.breaks, brk)
	if label != "" {
		if b.labeledBreak == nil {
			b.labeledBreak = make(map[string]*Block)
			b.labeledContinue = make(map[string]*Block)
		}
		b.labeledBreak[label] = brk
	}
}

func (b *builder) popSwitch(label string) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	if label != "" {
		delete(b.labeledBreak, label)
	}
}

// terminates matches calls that never return normally. The check is
// syntactic (panic is a builtin identifier; os.Exit/log.Fatal* are
// selector spellings) — shadowing these names would defeat it, which
// this codebase never does.
func terminates(call *ast.CallExpr) bool {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		x, ok := ast.Unparen(fn.X).(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case x.Name == "os" && fn.Sel.Name == "Exit":
			return true
		case x.Name == "log" && strings.HasPrefix(fn.Sel.Name, "Fatal"):
			return true
		case x.Name == "runtime" && fn.Sel.Name == "Goexit":
			return true
		case (x.Name == "t" || x.Name == "b") && (strings.HasPrefix(fn.Sel.Name, "Fatal") || fn.Sel.Name == "Skip" || fn.Sel.Name == "SkipNow" || fn.Sel.Name == "Skipf"):
			return true
		}
	}
	return false
}
