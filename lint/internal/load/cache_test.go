package load

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// resetListCache empties the in-process memo so a second goListCached
// call must consult the disk layer, as a separate process would.
func resetListCache() {
	listMu.Lock()
	defer listMu.Unlock()
	listCache = make(map[string]*listResult)
}

// The disk cache replays a listing across processes: the first call
// writes it, and a fresh process (simulated by clearing the in-memory
// memo) hits it without re-running `go list`.
func TestDiskListCacheRoundTrip(t *testing.T) {
	cacheDir := t.TempDir()
	t.Setenv(CacheEnv, cacheDir)
	resetListCache()
	defer resetListCache()

	moduleDir, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	patterns := []string{"./internal/load"}

	exports1, targets1, hit, err := goListCached(moduleDir, patterns)
	if err != nil {
		t.Fatalf("first listing: %v", err)
	}
	if hit {
		t.Fatal("first listing reported a cache hit")
	}
	entries, err := os.ReadDir(cacheDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache file written (entries=%v, err=%v)", entries, err)
	}

	resetListCache()
	exports2, targets2, hit, err := goListCached(moduleDir, patterns)
	if err != nil {
		t.Fatalf("second listing: %v", err)
	}
	if !hit {
		t.Fatal("second listing missed the disk cache")
	}
	if len(exports2) != len(exports1) || len(targets2) != len(targets1) {
		t.Fatalf("replayed listing differs: %d/%d exports, %d/%d targets",
			len(exports2), len(exports1), len(targets2), len(targets1))
	}
	for _, lp := range targets2 {
		if !strings.HasSuffix(lp.ImportPath, "internal/load") {
			t.Errorf("unexpected target %q", lp.ImportPath)
		}
	}
}

// A source edit changes the content-hashed key, so the stale entry is
// simply never consulted again.
func TestDiskListCacheKeyTracksContent(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module x\n\ngo 1.23\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(dir, "x.go")
	if err := os.WriteFile(src, []byte("package x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	k1, err := listCacheKey(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(src, []byte("package x // edited\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	k2, err := listCacheKey(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("key unchanged after a source edit")
	}
	k3, err := listCacheKey(dir, []string{"./x"})
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k2 {
		t.Fatal("key unchanged across different patterns")
	}
}

// A cached listing whose export-data files vanished (build cache
// trimmed) is rejected, falling back to a fresh `go list`.
func TestDiskListCacheRejectsStaleExports(t *testing.T) {
	path := filepath.Join(t.TempDir(), "entry.json")
	gone := filepath.Join(t.TempDir(), "no-such-export.a")
	writeListCache(path, &listResult{
		exports: map[string]string{"fmt": gone},
		targets: []*listedPackage{{ImportPath: "x"}},
	})
	if _, err := readListCache(path); err == nil {
		t.Fatal("stale entry accepted")
	}
}
