// Package load type-checks Go packages for the linter without
// golang.org/x/tools. It shells out to `go list -export -deps -json`
// to obtain source file lists plus compiled export data for every
// dependency (standard library included), then parses the target
// packages with go/parser and type-checks them with go/types using the
// gc export-data importer from the standard library. This is the same
// strategy go/packages uses, minus the x/tools dependency.
package load

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Package is one type-checked target package.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage mirrors the `go list -json` fields we consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *listError
	DepsErrors []*listError
}

type listError struct {
	Pos string
	Err string
}

func (e *listError) String() string {
	if e.Pos != "" {
		return e.Pos + ": " + e.Err
	}
	return e.Err
}

// Stats records where a Load spent its time, for `efdedup-lint -v`.
type Stats struct {
	// ListTime is the `go list -export` wall time (zero on cache hit).
	ListTime time.Duration
	// CheckTime covers parsing plus type-checking the target packages.
	CheckTime time.Duration
	// Packages is the number of type-checked target packages.
	Packages int
	// CacheHit reports whether the listing came from the in-process
	// cache rather than a fresh `go list` invocation.
	CacheHit bool
}

// Load lists the packages matching patterns relative to dir,
// type-checks every non-dependency match and returns them sorted by
// import path. The returned FileSet is shared by all packages.
func Load(fset *token.FileSet, dir string, patterns []string) ([]*Package, error) {
	pkgs, _, err := LoadStats(fset, dir, patterns)
	return pkgs, err
}

// LoadStats is Load plus timing information.
func LoadStats(fset *token.FileSet, dir string, patterns []string) ([]*Package, *Stats, error) {
	stats := &Stats{}
	start := time.Now()
	exports, targets, hit, err := goListCached(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	stats.ListTime, stats.CacheHit = time.Since(start), hit
	if hit {
		stats.ListTime = 0
	}
	start = time.Now()
	imp := NewExportImporter(fset, exports)
	var out []*Package
	for _, lp := range targets {
		pkg, err := typecheck(fset, imp, lp)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, pkg)
	}
	stats.CheckTime, stats.Packages = time.Since(start), len(out)
	return out, stats, nil
}

// listResult is one memoized `go list` invocation. A single lint run
// (and a single analyzer test binary) may load the same pattern set
// many times — once per analysistest fixture, or once per stdlib
// export probe — and the listing is by far the slowest step, so it is
// cached for the life of the process. Export-data files referenced by
// the listing live in the build cache and outlive the process, so
// reuse is safe as long as the source tree is not edited mid-run.
type listResult struct {
	exports map[string]string
	targets []*listedPackage
}

var (
	listMu    sync.Mutex
	listCache = make(map[string]*listResult)
)

// CacheEnv names the environment variable that, when set to a
// directory, persists `go list -export` listings across processes. CI
// sets it so the analyzer-test step and the self-lint step (and every
// fixture-loading test binary in between) share one listing per
// pattern set instead of re-running the slowest part of a lint pass.
const CacheEnv = "EFDEDUP_LINT_LISTCACHE"

func goListCached(dir string, patterns []string) (map[string]string, []*listedPackage, bool, error) {
	key := dir + "\x00" + strings.Join(patterns, "\x00")
	listMu.Lock()
	defer listMu.Unlock()
	if r, ok := listCache[key]; ok {
		return r.exports, r.targets, true, nil
	}
	var diskPath string
	if cacheDir := os.Getenv(CacheEnv); cacheDir != "" {
		if k, err := listCacheKey(dir, patterns); err == nil {
			diskPath = filepath.Join(cacheDir, k+".json")
			if r, err := readListCache(diskPath); err == nil {
				listCache[key] = r
				return r.exports, r.targets, true, nil
			}
		}
	}
	exports, targets, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, false, err
	}
	r := &listResult{exports: exports, targets: targets}
	listCache[key] = r
	if diskPath != "" {
		writeListCache(diskPath, r) // best effort: a miss next run is safe
	}
	return exports, targets, false, nil
}

// listCacheKey hashes everything a listing depends on: the toolchain,
// the request, and the content of every source/module file under dir
// (go list ignores testdata, but hashing it too only invalidates more
// eagerly, never stales). Content hashes rather than mtimes, so a
// fresh CI checkout still hits a restored cache.
func listCacheKey(dir string, patterns []string) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "v1\x00%s\x00%s\x00%s\x00", runtime.Version(), dir, strings.Join(patterns, "\x00"))
	var files []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != dir && strings.HasPrefix(d.Name(), ".") {
				return filepath.SkipDir
			}
			return nil
		}
		switch name := d.Name(); {
		case strings.HasSuffix(name, ".go"),
			name == "go.mod", name == "go.sum", name == "go.work", name == "go.work.sum":
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	sort.Strings(files)
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return "", err
		}
		rel, _ := filepath.Rel(dir, path)
		fmt.Fprintf(h, "%s\x00%d\x00", filepath.ToSlash(rel), len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// readListCache loads a persisted listing, verifying every export-data
// file it references still exists (they live in the Go build cache,
// which can be trimmed independently of ours).
func readListCache(path string) (*listResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, err
	}
	for _, file := range e.Exports {
		if _, err := os.Stat(file); err != nil {
			return nil, fmt.Errorf("stale export data %s: %w", file, err)
		}
	}
	return &listResult{exports: e.Exports, targets: e.Targets}, nil
}

func writeListCache(path string, r *listResult) {
	data, err := json.Marshal(cacheEntry{Exports: r.exports, Targets: r.targets})
	if err != nil {
		return
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	//lint:ignore fsyncrename cache entry: a torn install fails JSON decoding and reads as a miss
	os.Rename(tmp, path)
}

// cacheEntry is the on-disk form of one listing.
type cacheEntry struct {
	Exports map[string]string
	Targets []*listedPackage
}

// goList runs `go list -export -deps -json` and splits the result into
// an importpath→export-file map (all packages) and the target set.
func goList(dir string, patterns []string) (map[string]string, []*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	exports := make(map[string]string)
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(stdout))
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if lp.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}
	return exports, targets, nil
}

// typecheck parses and type-checks one listed package from source.
func typecheck(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{PkgPath: lp.ImportPath, Dir: lp.Dir, Files: files, Types: tpkg, Info: info}, nil
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// ExportImporter resolves imports from compiled export data files, with
// an optional overlay of already type-checked packages (used by
// analysistest for fixture sibling packages).
type ExportImporter struct {
	gc      types.Importer
	Overlay map[string]*types.Package
}

// NewExportImporter builds an importer over an importpath→export-file
// map produced by `go list -export`.
func NewExportImporter(fset *token.FileSet, exports map[string]string) *ExportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &ExportImporter{gc: importer.ForCompiler(fset, "gc", lookup)}
}

// Import implements types.Importer.
func (e *ExportImporter) Import(path string) (*types.Package, error) {
	if p, ok := e.Overlay[path]; ok {
		return p, nil
	}
	return e.gc.Import(path)
}

// StdlibExports lists export data for the given standard-library
// packages and their dependencies. dir is any directory inside a Go
// module (go list needs one). Results are memoized per process, so a
// test binary running many fixtures with the same import set pays for
// one `go list`.
func StdlibExports(dir string, pkgs []string) (map[string]string, error) {
	if len(pkgs) == 0 {
		return map[string]string{}, nil
	}
	sorted := append([]string(nil), pkgs...)
	sort.Strings(sorted)
	exports, _, _, err := goListCached(dir, sorted)
	return exports, err
}
