package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"efdedup/lint/internal/cfg"
)

func buildCFG(t *testing.T, src string) *cfg.CFG {
	t.Helper()
	file, err := parser.ParseFile(token.NewFileSet(), "x.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return cfg.New(fd)
		}
	}
	t.Fatal("no func f")
	return nil
}

// facts is a tiny set lattice keyed by string.
type facts map[string]bool

func setLattice() (func() facts, func(a, b facts) facts, func(a, b facts) bool) {
	bottom := func() facts { return facts{} }
	join := func(a, b facts) facts {
		out := facts{}
		for k := range a {
			out[k] = true
		}
		for k := range b {
			out[k] = true
		}
		return out
	}
	equal := func(a, b facts) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	return bottom, join, equal
}

// assigned returns the names assigned (with :=) in a block.
func assigned(b *cfg.Block) []string {
	var out []string
	for _, n := range b.Nodes {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					out = append(out, id.Name)
				}
			}
		}
	}
	return out
}

// TestForwardMayReachesJoin: a fact generated on one arm of a branch
// must survive (may-analysis) into the join and the exit.
func TestForwardMayReachesJoin(t *testing.T) {
	g := buildCFG(t, `
func f(ok bool) {
	if ok {
		x := 1
		_ = x
	}
	done()
}`)
	bottom, join, equal := setLattice()
	res := Solve(g, Analysis[facts]{
		Dir:    Forward,
		Bottom: bottom, Join: join, Equal: equal,
		Transfer: func(b *cfg.Block, in facts) facts {
			out := join(in, facts{})
			for _, name := range assigned(b) {
				out[name] = true
			}
			return out
		},
	})
	if !res.In[g.Exit]["x"] {
		t.Fatal("fact from the taken arm did not reach the exit (join lost it)")
	}
}

// TestEdgeRefinementKillsFact: FlowEdge drops the fact on the negated
// arm, so it must be absent there but present on the other arm.
func TestEdgeRefinementKillsFact(t *testing.T) {
	g := buildCFG(t, `
func f(err error) {
	x := 1
	if err != nil {
		a()
	} else {
		b()
	}
	done()
}`)
	bottom, join, equal := setLattice()
	res := Solve(g, Analysis[facts]{
		Dir:    Forward,
		Bottom: bottom, Join: join, Equal: equal,
		Transfer: func(b *cfg.Block, in facts) facts {
			out := join(in, facts{})
			for _, name := range assigned(b) {
				out[name] = true
			}
			return out
		},
		FlowEdge: func(e *cfg.Edge, f facts) facts {
			// Kill every fact on the true arm of the condition.
			if e.Cond != nil && !e.Negate {
				return facts{}
			}
			return f
		},
	})
	// Find the two branch targets.
	head := g.Blocks[0]
	var onTrue, onFalse *cfg.Block
	for _, e := range head.Succs {
		if e.Cond == nil {
			continue
		}
		if e.Negate {
			onFalse = e.To
		} else {
			onTrue = e.To
		}
	}
	if onTrue == nil || onFalse == nil {
		t.Fatal("branch edges not found")
	}
	if res.In[onTrue]["x"] {
		t.Fatal("fact survived the killing edge")
	}
	if !res.In[onFalse]["x"] {
		t.Fatal("fact lost on the non-killing edge")
	}
	// The join unions both arms: the fact flows around through the
	// false arm and must be live at exit.
	if !res.In[g.Exit]["x"] {
		t.Fatal("fact missing at exit")
	}
}

// TestLoopFixpoint: facts generated in a loop body must stabilise and
// be visible after the loop (the back edge feeds the header).
func TestLoopFixpoint(t *testing.T) {
	g := buildCFG(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		y := i
		_ = y
	}
	done()
}`)
	bottom, join, equal := setLattice()
	res := Solve(g, Analysis[facts]{
		Dir:    Forward,
		Bottom: bottom, Join: join, Equal: equal,
		Transfer: func(b *cfg.Block, in facts) facts {
			out := join(in, facts{})
			for _, name := range assigned(b) {
				out[name] = true
			}
			return out
		},
	})
	if !res.In[g.Exit]["y"] {
		t.Fatal("loop-generated fact did not flow around the back edge to the exit")
	}
	if !res.In[g.Exit]["i"] {
		t.Fatal("init fact lost")
	}
}

// TestBackwardUse: a backward may-analysis propagating "name is used
// later" — the entry block must see uses from the last block.
func TestBackwardUse(t *testing.T) {
	g := buildCFG(t, `
func f(a int) {
	b := a
	_ = b
	sink(a)
}`)
	bottom, join, equal := setLattice()
	res := Solve(g, Analysis[facts]{
		Dir:    Backward,
		Bottom: bottom, Join: join, Equal: equal,
		Transfer: func(b *cfg.Block, out facts) facts {
			in := join(out, facts{})
			for _, n := range b.Nodes {
				ast.Inspect(n, func(x ast.Node) bool {
					if call, ok := x.(*ast.CallExpr); ok {
						for _, arg := range call.Args {
							if id, ok := arg.(*ast.Ident); ok {
								in[id.Name] = true
							}
						}
					}
					return true
				})
			}
			return in
		},
	})
	entry := g.Blocks[0]
	if !res.In[entry]["a"] {
		t.Fatal("backward analysis did not carry the use of `a` to the entry")
	}
}

// TestUnreachableStaysBottom: code after a return keeps the bottom
// fact — the solver must not invent facts for dead blocks.
func TestUnreachableStaysBottom(t *testing.T) {
	g := buildCFG(t, `
func f() {
	x := 1
	_ = x
	return
	y := 2
	_ = y
}`)
	bottom, join, equal := setLattice()
	res := Solve(g, Analysis[facts]{
		Dir:    Forward,
		Bottom: bottom, Join: join, Equal: equal,
		Transfer: func(b *cfg.Block, in facts) facts {
			out := join(in, facts{})
			for _, name := range assigned(b) {
				out[name] = true
			}
			return out
		},
	})
	if res.In[g.Exit]["y"] {
		t.Fatal("fact from unreachable code leaked into the exit")
	}
	if !res.In[g.Exit]["x"] {
		t.Fatal("reachable fact lost")
	}
}
