// Package dataflow is a small fixed-point solver over cfg graphs: a
// worklist iteration of a client-supplied transfer function until the
// per-block facts stabilise. The fact type is a type parameter; the
// client supplies the lattice (bottom, join, equality) as funcs, which
// keeps map-valued and struct-valued fact domains equally cheap to
// plug in. May-analyses join with set union, must-analyses with
// intersection — the solver does not care, it only iterates.
//
// Facts can be refined per edge: when Analysis.FlowEdge is non-nil it
// runs on every edge before the join, with the edge's branch condition
// available (cfg.Edge.Cond/Negate). That is the path-sensitivity hook:
// resleak kills a "file open" fact on the err != nil arm of the open,
// ctxcancel kills a "cancel outstanding" fact on the cancel == nil
// arm, durafirst treats the wal == nil arm as durability-exempt.
package dataflow

import (
	"efdedup/lint/internal/cfg"
)

// Direction orients the analysis.
type Direction int

const (
	Forward Direction = iota
	Backward
)

// Analysis describes one dataflow problem over a CFG.
type Analysis[S any] struct {
	Dir Direction
	// Bottom is the no-information value every block starts from; Join
	// must treat it as an identity element.
	Bottom func() S
	Join   func(a, b S) S
	Equal  func(a, b S) bool
	// Boundary seeds the entry block (Forward) or exit block
	// (Backward). The zero S is used when nil.
	Boundary func() S
	// Transfer maps a block's incoming fact to its outgoing fact
	// (Forward: In→Out; Backward: Out→In). It must not mutate in.
	Transfer func(b *cfg.Block, in S) S
	// FlowEdge optionally refines the fact crossing an edge; nil means
	// identity. It must not mutate the fact it is given.
	FlowEdge func(e *cfg.Edge, fact S) S
}

// Result holds the fixed point: the fact at block entry and exit, in
// execution order regardless of analysis direction.
type Result[S any] struct {
	In, Out map[*cfg.Block]S
}

// Solve iterates to a fixed point and returns the per-block facts.
// Blocks unreachable from the boundary keep Bottom.
func Solve[S any](g *cfg.CFG, a Analysis[S]) *Result[S] {
	res := &Result[S]{
		In:  make(map[*cfg.Block]S, len(g.Blocks)),
		Out: make(map[*cfg.Block]S, len(g.Blocks)),
	}
	for _, b := range g.Blocks {
		res.In[b] = a.Bottom()
		res.Out[b] = a.Bottom()
	}
	boundary := a.Bottom
	if a.Boundary != nil {
		boundary = a.Boundary
	}

	// inEdges / outFacts select the direction: for Backward the roles
	// of In/Out and Preds/Succs swap and iteration runs in reverse.
	var seed *cfg.Block
	if a.Dir == Forward {
		if len(g.Blocks) == 0 {
			return res
		}
		seed = g.Blocks[0]
		res.In[seed] = boundary()
	} else {
		seed = g.Exit
		if seed == nil {
			return res
		}
		res.Out[seed] = boundary()
	}

	work := make([]*cfg.Block, 0, len(g.Blocks))
	inWork := make(map[*cfg.Block]bool, len(g.Blocks))
	push := func(b *cfg.Block) {
		if !inWork[b] {
			inWork[b] = true
			work = append(work, b)
		}
	}
	// Seed only blocks reachable from the boundary (following Succs
	// forward, Preds backward): dead code must not generate facts — a
	// statement after an unconditional return cannot leak a fact into
	// the exit.
	var seedReach func(b *cfg.Block)
	seen := make(map[*cfg.Block]bool, len(g.Blocks))
	seedReach = func(b *cfg.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		push(b)
		if a.Dir == Forward {
			for _, e := range b.Succs {
				seedReach(e.To)
			}
		} else {
			for _, e := range b.Preds {
				seedReach(e.From)
			}
		}
	}
	seedReach(seed)

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false

		if a.Dir == Forward {
			in := res.In[b]
			if b != seed || len(b.Preds) > 0 {
				acc := a.Bottom()
				if b == seed {
					acc = a.Join(acc, boundary())
				}
				for _, e := range b.Preds {
					f := res.Out[e.From]
					if a.FlowEdge != nil {
						f = a.FlowEdge(e, f)
					}
					acc = a.Join(acc, f)
				}
				in = acc
				res.In[b] = in
			}
			out := a.Transfer(b, in)
			if !a.Equal(out, res.Out[b]) {
				res.Out[b] = out
				for _, e := range b.Succs {
					push(e.To)
				}
			}
		} else {
			out := res.Out[b]
			if b != seed || len(b.Succs) > 0 {
				acc := a.Bottom()
				if b == seed {
					acc = a.Join(acc, boundary())
				}
				for _, e := range b.Succs {
					f := res.In[e.To]
					if a.FlowEdge != nil {
						f = a.FlowEdge(e, f)
					}
					acc = a.Join(acc, f)
				}
				out = acc
				res.Out[b] = out
			}
			in := a.Transfer(b, out)
			if !a.Equal(in, res.In[b]) {
				res.In[b] = in
				for _, e := range b.Preds {
					push(e.From)
				}
			}
		}
	}
	return res
}
