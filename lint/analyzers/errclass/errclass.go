// Package errclass enforces the error-classification invariant at
// transport boundaries.
//
// The retry/breaker layer (internal/retrypolicy) decides whether to
// re-dial, back off or trip a breaker by classifying errors with
// errors.Is: ErrNoQuorum means try another replica, a protocol error
// means the peer is speaking garbage and retrying is harmful, a config
// error means the caller is wrong. That only works if every error
// born in a transport-facing package is classifiable — i.e. wraps a
// package-level sentinel or an underlying cause with %w. A bare
// fmt.Errorf("...") or an errors.New inside a function produces an
// anonymous error that defeats errors.Is everywhere downstream.
//
// In the packages listed in TransportPackages the analyzer reports:
//
//   - fmt.Errorf calls whose format string lacks %w (or is not a
//     compile-time constant — dynamic formats cannot be audited);
//   - errors.New calls inside function bodies (package-level sentinel
//     declarations are exactly the right use and stay allowed).
package errclass

import (
	"go/ast"
	"go/constant"
	"strings"

	"efdedup/lint/analysis"
)

// TransportPackages are the import-path suffixes whose errors cross a
// transport boundary and must stay classifiable.
var TransportPackages = []string{
	"internal/kvstore",
	"internal/cloudstore",
	"internal/agent",
	"internal/transport",
	"internal/gossip",
}

// Analyzer is the errclass pass.
var Analyzer = &analysis.Analyzer{
	Name: "errclass",
	Doc:  "reports unclassifiable errors (fmt.Errorf without %w, in-function errors.New) in transport-boundary packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !transportBoundary(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				check(pass, call)
				return true
			})
		}
	}
	return nil
}

func check(pass *analysis.Pass, call *ast.CallExpr) {
	switch {
	case pass.IsPkgFunc(call, "errors", "New"):
		pass.Reportf(call.Pos(),
			"errors.New inside a function at a transport boundary; declare a package-level sentinel and wrap it with fmt.Errorf(\"...: %%w\", Err...)")
	case pass.IsPkgFunc(call, "fmt", "Errorf") && len(call.Args) > 0:
		tv, ok := pass.TypesInfo.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			pass.Reportf(call.Pos(),
				"fmt.Errorf with a non-constant format string at a transport boundary; errors must be auditable and classifiable")
			return
		}
		if !strings.Contains(constant.StringVal(tv.Value), "%w") {
			pass.Reportf(call.Pos(),
				"fmt.Errorf without %%w at a transport boundary; wrap a package sentinel or the underlying error so errors.Is/retrypolicy can classify it")
		}
	}
}

func transportBoundary(path string) bool {
	for _, suffix := range TransportPackages {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}
