// Fixture proving errclass only fires inside transport-boundary
// packages: identical patterns here must stay silent.
package other

import (
	"errors"
	"fmt"
)

func decode(b []byte) error {
	if len(b) < 4 {
		return errors.New("other: truncated")
	}
	return fmt.Errorf("other: bad tag %d", b[0])
}
