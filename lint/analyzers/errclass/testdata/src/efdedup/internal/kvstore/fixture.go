// Fixture for the errclass analyzer: this package path ends in
// internal/kvstore, so it is a transport boundary.
package kvstore

import (
	"errors"
	"fmt"
)

// Package-level sentinels are the classification mechanism — allowed.
var (
	ErrNotFound = errors.New("kvstore: key not found")
	ErrProto    = errors.New("kvstore: protocol error")
)

func decode(b []byte) error {
	if len(b) < 4 {
		return errors.New("kvstore: truncated frame") // want `errors\.New inside a function`
	}
	if b[0] == 0 {
		return fmt.Errorf("kvstore: zero tag at offset %d", 0) // want `fmt\.Errorf without %w`
	}
	if b[1] == 0 {
		return fmt.Errorf("kvstore: bad tag %d: %w", b[1], ErrProto) // classified: ok
	}
	return nil
}

func get(key string) error {
	if key == "" {
		return ErrNotFound // sentinel return: ok
	}
	return fmt.Errorf("kvstore: get %q: %w", key, ErrNotFound) // ok
}

func dynamic(format string, err error) error {
	return fmt.Errorf(format, err) // want `non-constant format string`
}

func ignored() error {
	//lint:ignore errclass validation error that never crosses the wire
	return errors.New("kvstore: odd key length")
}
