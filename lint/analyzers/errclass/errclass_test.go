package errclass_test

import (
	"testing"

	"efdedup/lint/analysistest"
	"efdedup/lint/analyzers/errclass"
)

func TestErrClass(t *testing.T) {
	analysistest.Run(t, errclass.Analyzer, "efdedup/internal/kvstore", "other")
}
