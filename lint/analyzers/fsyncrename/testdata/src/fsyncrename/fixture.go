// Fixture for the fsyncrename analyzer: renames installing freshly
// written files must be preceded by a File.Sync; pure moves and properly
// synced installs must stay silent.
package fsyncrename

import (
	"bufio"
	"os"
)

// badWriteRename: classic unsynced atomic install.
func badWriteRename(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	f.Write(data)
	f.Close()
	return os.Rename(path+".tmp", path) // want `os\.Rename after os\.File\.Write .* without a File\.Sync`
}

// goodWriteSyncRename: the idiom done right.
func goodWriteSyncRename(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	f.Write(data)
	if err := f.Sync(); err != nil {
		return err
	}
	f.Close()
	return os.Rename(path+".tmp", path)
}

// goodMoveOnly: renaming a file this function never wrote is a move, not
// an install.
func goodMoveOnly(from, to string) error {
	return os.Rename(from, to)
}

// badWriteFileRename: os.WriteFile offers no fsync hook, so installing
// its output via rename is always unsynced.
func badWriteFileRename(path string, data []byte) error {
	if err := os.WriteFile(path+".tmp", data, 0o644); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path) // want `os\.Rename after os\.WriteFile .* without a File\.Sync`
}

// badBufferedFlushRename: a bufio Flush moves bytes into the page cache,
// not onto disk; it does not substitute for Sync.
func badBufferedFlushRename(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	w.Write(data)
	w.Flush()
	f.Close()
	return os.Rename(path+".tmp", path) // want `os\.Rename after bufio\.Writer\.Flush .* without a File\.Sync`
}

// goodBufferedSyncRename: flush the buffer, then fsync, then rename.
func goodBufferedSyncRename(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	w.Write(data)
	w.Flush()
	if err := f.Sync(); err != nil {
		return err
	}
	f.Close()
	return os.Rename(path+".tmp", path)
}

// badSyncThenWrite: a Sync before the final write covers nothing.
func badSyncThenWrite(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	f.Write(data)
	f.Sync()
	f.WriteString("trailer")
	f.Close()
	return os.Rename(path+".tmp", path) // want `os\.Rename after os\.File\.WriteString .* without a File\.Sync`
}

// badDeferredSync: a deferred Sync runs after the rename — too late.
func badDeferredSync(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	defer f.Sync()
	f.Write(data)
	return os.Rename(path+".tmp", path) // want `os\.Rename after os\.File\.Write .* without a File\.Sync`
}

// goodLiteralScopes: a write inside a nested function literal does not
// taint the outer rename (separate sweeps).
func goodLiteralScopes(path string, data []byte) error {
	write := func(p string) {
		f, _ := os.Create(p)
		f.Write(data)
		f.Sync()
		f.Close()
	}
	write(path + ".tmp")
	return os.Rename(path+".tmp", path)
}

// badTruncateRename: Truncate rewrites file state just like a write.
func badTruncateRename(path string) error {
	f, err := os.OpenFile(path+".tmp", os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	f.Truncate(0)
	f.Close()
	return os.Rename(path+".tmp", path) // want `os\.Rename after os\.File\.Truncate .* without a File\.Sync`
}
