// Fixture for the fsyncrename analyzer: renames installing freshly
// written files must be preceded by a File.Sync (rule 1) and followed by
// a parent-directory fsync (rule 2); pure moves and fully synced
// installs must stay silent.
package fsyncrename

import (
	"bufio"
	"os"
	"path/filepath"
)

// syncParent is the dir-sync helper idiom: package-level, contains a
// direct File.Sync. Calls to it after a rename satisfy rule 2.
func syncParent(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// badWriteRename: classic unsynced atomic install.
func badWriteRename(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	f.Write(data)
	f.Close()
	return os.Rename(path+".tmp", path) // want `os\.Rename after os\.File\.Write .* without a File\.Sync`
}

// goodWriteSyncRename: the idiom done right end to end — file sync
// before the rename, directory sync after it.
func goodWriteSyncRename(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	f.Write(data)
	if err := f.Sync(); err != nil {
		return err
	}
	f.Close()
	if err := os.Rename(path+".tmp", path); err != nil {
		return err
	}
	return syncParent(filepath.Dir(path))
}

// goodMoveOnly: renaming a file this function never wrote is a move, not
// an install.
func goodMoveOnly(from, to string) error {
	return os.Rename(from, to)
}

// badWriteFileRename: os.WriteFile offers no fsync hook, so installing
// its output via rename is always unsynced.
func badWriteFileRename(path string, data []byte) error {
	if err := os.WriteFile(path+".tmp", data, 0o644); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path) // want `os\.Rename after os\.WriteFile .* without a File\.Sync`
}

// badBufferedFlushRename: a bufio Flush moves bytes into the page cache,
// not onto disk; it does not substitute for Sync.
func badBufferedFlushRename(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	w.Write(data)
	w.Flush()
	f.Close()
	return os.Rename(path+".tmp", path) // want `os\.Rename after bufio\.Writer\.Flush .* without a File\.Sync`
}

// goodBufferedSyncRename: flush the buffer, fsync the file, rename, then
// fsync the directory.
func goodBufferedSyncRename(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	w.Write(data)
	w.Flush()
	if err := f.Sync(); err != nil {
		return err
	}
	f.Close()
	if err := os.Rename(path+".tmp", path); err != nil {
		return err
	}
	return syncParent(filepath.Dir(path))
}

// badSyncThenWrite: a Sync before the final write covers nothing.
func badSyncThenWrite(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	f.Write(data)
	f.Sync()
	f.WriteString("trailer")
	f.Close()
	return os.Rename(path+".tmp", path) // want `os\.Rename after os\.File\.WriteString .* without a File\.Sync`
}

// badDeferredSync: a deferred Sync runs after the rename — too late.
func badDeferredSync(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	defer f.Sync()
	f.Write(data)
	return os.Rename(path+".tmp", path) // want `os\.Rename after os\.File\.Write .* without a File\.Sync`
}

// goodLiteralScopes: a write inside a nested function literal does not
// taint the outer rename (separate sweeps).
func goodLiteralScopes(path string, data []byte) error {
	write := func(p string) {
		f, _ := os.Create(p)
		f.Write(data)
		f.Sync()
		f.Close()
	}
	write(path + ".tmp")
	return os.Rename(path+".tmp", path)
}

// badTruncateRename: Truncate rewrites file state just like a write.
func badTruncateRename(path string) error {
	f, err := os.OpenFile(path+".tmp", os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	f.Truncate(0)
	f.Close()
	return os.Rename(path+".tmp", path) // want `os\.Rename after os\.File\.Truncate .* without a File\.Sync`
}

// badMissingDirSync: the file itself is synced, but nothing fsyncs the
// parent directory after the rename — a crash can forget the install.
func badMissingDirSync(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	f.Write(data)
	if err := f.Sync(); err != nil {
		return err
	}
	f.Close()
	return os.Rename(path+".tmp", path) // want `os\.Rename installs a synced file but no directory fsync follows`
}

// goodInlineDirSync: the directory fsync written out longhand instead of
// through a helper.
func goodInlineDirSync(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	f.Write(data)
	if err := f.Sync(); err != nil {
		return err
	}
	f.Close()
	if err := os.Rename(path+".tmp", path); err != nil {
		return err
	}
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// goodDeferredDirSync: a deferred directory Sync runs at return, after
// the rename — a legitimate rule-2 discharge even though the defer is
// written above the rename.
func goodDeferredDirSync(dir, path string, data []byte) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Sync()
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	f.Write(data)
	if err := f.Sync(); err != nil {
		return err
	}
	f.Close()
	return os.Rename(path+".tmp", path)
}

// badTwoInstallsOneDirSync: the first rename is followed by a dir sync,
// the second is not — only the second is reported.
func badTwoInstallsOneDirSync(a, b string, data []byte) error {
	f, err := os.Create(a + ".tmp")
	if err != nil {
		return err
	}
	f.Write(data)
	f.Sync()
	f.Close()
	if err := os.Rename(a+".tmp", a); err != nil {
		return err
	}
	if err := syncParent(filepath.Dir(a)); err != nil {
		return err
	}
	g, err := os.Create(b + ".tmp")
	if err != nil {
		return err
	}
	g.Write(data)
	g.Sync()
	g.Close()
	return os.Rename(b+".tmp", b) // want `os\.Rename installs a synced file but no directory fsync follows`
}
