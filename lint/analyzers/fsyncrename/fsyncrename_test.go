package fsyncrename_test

import (
	"testing"

	"efdedup/lint/analysistest"
	"efdedup/lint/analyzers/fsyncrename"
)

func TestFsyncRename(t *testing.T) {
	analysistest.Run(t, fsyncrename.Analyzer, "fsyncrename")
}
