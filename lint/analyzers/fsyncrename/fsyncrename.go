// Package fsyncrename flags two holes in the write-temp → rename
// atomic-install idiom (WAL snapshots, cloud chunk/container files):
//
//  1. os.Rename of a file written in the same function without an
//     intervening (*os.File).Sync. Rename only orders the *directory*
//     update — the data blocks behind it are still in the page cache
//     unless they were fsynced first. A crash after an unsynced rename
//     can leave the destination as an empty or truncated file, which for
//     durable state (a snapshot the WAL was truncated against) is silent
//     data loss.
//
//  2. A correctly synced install whose rename is not followed by a
//     directory fsync. The rename lives in the parent directory's
//     entries, and those are cached too: without fsyncing the directory
//     a crash can forget the rename entirely, losing a file the caller
//     was told is durable (a chunk the dedup index already points at).
//     The dir fsync is either a literal (*os.File).Sync after the rename
//     (open the dir, sync it) or a call to a same-package helper whose
//     body contains a File.Sync (the `syncDir(dir)` idiom).
//
// The crash-recovery tests fake kills above the filesystem, so only this
// analyzer sees the missing fsyncs.
//
// Detection is a per-function positional sweep, like lockedio: file
// writes ((*os.File) Write/WriteString/WriteAt/ReadFrom/Truncate,
// os.WriteFile, and (*bufio.Writer) writes and Flush), (*os.File).Sync
// calls, dir-sync helper calls and os.Rename calls are collected in
// source order. A rename with a write after the last Sync violates rule
// 1; a synced install with no sync or helper event after the rename
// violates rule 2. Renames in functions that wrote nothing (pure moves)
// are fine. Nested function literals are swept separately, and deferred
// calls are ignored — a deferred Sync runs after the rename, too late to
// order it (but fine as a dir sync, which must come after).
package fsyncrename

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"efdedup/lint/analysis"
)

// Analyzer is the fsyncrename pass.
var Analyzer = &analysis.Analyzer{
	Name: "fsyncrename",
	Doc:  "reports os.Rename of a freshly written file without a preceding File.Sync, and synced installs missing the parent-directory fsync after the rename",
	Run:  run,
}

// event is one durability-relevant occurrence inside a function body.
type event struct {
	pos  token.Pos
	kind int
	desc string
}

const (
	evWrite = iota
	evSync
	evHelperSync // call of a package-level helper that fsyncs (dir-sync idiom)
	evRename
)

func run(pass *analysis.Pass) error {
	helpers := dirSyncHelpers(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					sweep(pass, fn.Body, helpers)
				}
			case *ast.FuncLit:
				sweep(pass, fn.Body, helpers)
			}
			return true
		})
	}
	return nil
}

// dirSyncHelpers collects package-level functions whose body contains a
// direct (*os.File).Sync call — the `syncDir` idiom. A call to one of
// these after a rename counts as the parent-directory fsync. They do NOT
// count as syncing the written file itself (rule 1): the helper syncs a
// directory handle, not the temp file.
func dirSyncHelpers(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv != nil {
				continue
			}
			syncs := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isFileMethod(pass, call, "Sync") {
					syncs = true
				}
				return !syncs
			})
			if syncs {
				if obj := pass.ObjectOf(fd.Name); obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

// sweep collects events in source order (skipping nested function
// literals; deferred calls are skipped except as dir syncs, which
// legitimately run after the rename) and reports both rule violations.
func sweep(pass *analysis.Pass, body *ast.BlockStmt, helpers map[types.Object]bool) {
	var events []event
	var collect func(n ast.Node) bool
	deferred := false
	collect = func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			return false // separate sweep; run visits every literal
		case *ast.DeferStmt:
			// Deferred calls run at return — after any rename in the
			// body, so they cannot order a rename (rule 1) but they can
			// still serve as the trailing dir fsync (rule 2).
			deferred = true
			ast.Inspect(node.Call, collect)
			deferred = false
			return false
		case *ast.CallExpr:
			if ev, ok := classify(pass, node, helpers); ok {
				switch {
				case !deferred:
					events = append(events, ev)
				case ev.kind == evSync || ev.kind == evHelperSync:
					// A deferred sync runs at return: it cannot order a
					// rename (rule 1) but does serve as the trailing dir
					// fsync (rule 2), effective at the function's end.
					ev.kind = evHelperSync
					ev.pos = body.End()
					events = append(events, ev)
				}
			}
		}
		return true
	}
	ast.Inspect(body, collect)

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	var lastWrite, lastSync token.Pos
	var lastDesc string
	var pendingDirSync []token.Pos // synced renames awaiting a dir fsync
	for _, ev := range events {
		switch ev.kind {
		case evWrite:
			lastWrite = ev.pos
			lastDesc = ev.desc
		case evSync:
			lastSync = ev.pos
			pendingDirSync = nil
		case evHelperSync:
			pendingDirSync = nil
		case evRename:
			if lastWrite != token.NoPos && lastWrite > lastSync {
				pass.Reportf(ev.pos, "os.Rename after %s (line %d) without a File.Sync in between; fsync before renaming or a crash can install an empty file",
					lastDesc, pass.Fset.Position(lastWrite).Line)
			} else if lastWrite != token.NoPos {
				pendingDirSync = append(pendingDirSync, ev.pos)
			}
		}
	}
	for _, pos := range pendingDirSync {
		pass.Reportf(pos, "os.Rename installs a synced file but no directory fsync follows; fsync the parent directory (or call a syncDir-style helper) or a crash can forget the rename")
	}
}

// classify decides whether a call writes file data, syncs it, renames,
// or invokes a dir-sync helper.
func classify(pass *analysis.Pass, call *ast.CallExpr, helpers map[types.Object]bool) (event, bool) {
	if pass.IsPkgFunc(call, "os", "Rename") {
		return event{pos: call.Pos(), kind: evRename}, true
	}
	if pass.IsPkgFunc(call, "os", "WriteFile") {
		return event{pos: call.Pos(), kind: evWrite, desc: "os.WriteFile"}, true
	}
	if obj := pass.CalleeObject(call); obj != nil && helpers[obj] {
		return event{pos: call.Pos(), kind: evHelperSync}, true
	}
	fn, ok := pass.CalleeObject(call).(*types.Func)
	if !ok {
		return event{}, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return event{}, false
	}
	named, ok := deref(recv.Type()).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return event{}, false
	}
	switch {
	case named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File":
		switch fn.Name() {
		case "Sync":
			return event{pos: call.Pos(), kind: evSync}, true
		case "Write", "WriteString", "WriteAt", "ReadFrom", "Truncate":
			return event{pos: call.Pos(), kind: evWrite, desc: "os.File." + fn.Name()}, true
		}
	case named.Obj().Pkg().Path() == "bufio" && named.Obj().Name() == "Writer":
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "ReadFrom", "Flush":
			return event{pos: call.Pos(), kind: evWrite, desc: "bufio.Writer." + fn.Name()}, true
		}
	}
	return event{}, false
}

// isFileMethod reports whether call is (*os.File).<name>.
func isFileMethod(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	fn, ok := pass.CalleeObject(call).(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	named, ok := deref(recv.Type()).(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File"
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
