// Package fsyncrename flags os.Rename calls that install a file written
// in the same function without an intervening (*os.File).Sync.
//
// Write-temp → rename is this repository's atomic-install idiom (WAL
// snapshots, cloud chunk files): the rename makes the new file visible
// in one step. But rename only orders the *directory* update — the data
// blocks behind it are still in the page cache unless they were fsynced
// first. A crash after an unsynced rename can leave the destination as
// an empty or truncated file, which for durable state (a snapshot the
// WAL was truncated against) is silent data loss. The crash-recovery
// tests fake kills above the filesystem, so only this analyzer sees the
// missing fsync.
//
// Detection is a per-function positional sweep, like lockedio: file
// writes ((*os.File) Write/WriteString/WriteAt/ReadFrom/Truncate,
// os.WriteFile, and (*bufio.Writer) writes and Flush) and
// (*os.File).Sync calls are collected in source order; an os.Rename
// with a write after the last Sync is reported. Renames in functions
// that wrote nothing (pure moves) are fine. Nested function literals
// are swept separately, and deferred calls are ignored — a deferred
// Sync runs after the rename, too late to order it.
package fsyncrename

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"efdedup/lint/analysis"
)

// Analyzer is the fsyncrename pass.
var Analyzer = &analysis.Analyzer{
	Name: "fsyncrename",
	Doc:  "reports os.Rename of a file written in the same function without a preceding File.Sync (unsynced atomic install)",
	Run:  run,
}

// event is one durability-relevant occurrence inside a function body.
type event struct {
	pos  token.Pos
	kind int
	desc string
}

const (
	evWrite = iota
	evSync
	evRename
)

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					sweep(pass, fn.Body)
				}
			case *ast.FuncLit:
				sweep(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// sweep collects write/sync/rename events in source order (skipping
// nested function literals and deferred calls) and reports renames whose
// last write is not covered by a Sync.
func sweep(pass *analysis.Pass, body *ast.BlockStmt) {
	var events []event
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			return false // separate sweep; run visits every literal
		case *ast.DeferStmt:
			// Deferred calls run at return — after any rename in the body.
			return false
		case *ast.CallExpr:
			if ev, ok := classify(pass, node); ok {
				events = append(events, ev)
			}
		}
		return true
	})

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	var lastWrite, lastSync token.Pos
	var lastDesc string
	for _, ev := range events {
		switch ev.kind {
		case evWrite:
			lastWrite = ev.pos
			lastDesc = ev.desc
		case evSync:
			lastSync = ev.pos
		case evRename:
			if lastWrite != token.NoPos && lastWrite > lastSync {
				pass.Reportf(ev.pos, "os.Rename after %s (line %d) without a File.Sync in between; fsync before renaming or a crash can install an empty file",
					lastDesc, pass.Fset.Position(lastWrite).Line)
			}
		}
	}
}

// classify decides whether a call writes file data, syncs it, or renames.
func classify(pass *analysis.Pass, call *ast.CallExpr) (event, bool) {
	if pass.IsPkgFunc(call, "os", "Rename") {
		return event{pos: call.Pos(), kind: evRename}, true
	}
	if pass.IsPkgFunc(call, "os", "WriteFile") {
		return event{pos: call.Pos(), kind: evWrite, desc: "os.WriteFile"}, true
	}
	fn, ok := pass.CalleeObject(call).(*types.Func)
	if !ok {
		return event{}, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return event{}, false
	}
	named, ok := deref(recv.Type()).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return event{}, false
	}
	switch {
	case named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File":
		switch fn.Name() {
		case "Sync":
			return event{pos: call.Pos(), kind: evSync}, true
		case "Write", "WriteString", "WriteAt", "ReadFrom", "Truncate":
			return event{pos: call.Pos(), kind: evWrite, desc: "os.File." + fn.Name()}, true
		}
	case named.Obj().Pkg().Path() == "bufio" && named.Obj().Name() == "Writer":
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "ReadFrom", "Flush":
			return event{pos: call.Pos(), kind: evWrite, desc: "bufio.Writer." + fn.Name()}, true
		}
	}
	return event{}, false
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
