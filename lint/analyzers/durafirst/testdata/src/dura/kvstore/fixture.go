// Fixtures for the durafirst analyzer: in handler methods, the
// mutex-guarded receiver mutation must be dominated by the durable
// call on every path that acks success.
package kvstore

import (
	"errors"
	"sync"
)

var errRejected = errors.New("rejected")

// WAL and DiskStore mirror the real durability facilities by name —
// the analyzer matches (*WAL).Append and (*DiskStore).Put*.
type WAL struct{}

func (w *WAL) Append(rec []byte) error { return nil }

type DiskStore struct{}

func (d *DiskStore) PutChunk(id string, b []byte) error { return nil }

type nodeStats struct{ puts int }

type Node struct {
	mu      sync.Mutex
	wal     *WAL
	disk    *DiskStore
	table   map[string][]byte
	puts    int
	scratch []byte
	stats   nodeStats
}

func (n *Node) applyPut(k string, v []byte) {
	n.mu.Lock()
	n.table[k] = v
	n.mu.Unlock()
}

func (n *Node) persist(v []byte) error { return n.wal.Append(v) }

// --- positives -------------------------------------------------------

// The PR6 bug shape: apply to the table, then log. A crash between the
// two acks state the WAL never saw.
func (n *Node) handleDirty(k string, v []byte) ([]byte, error) {
	n.mu.Lock()
	n.table[k] = v // want `mutated before the durable write`
	n.mu.Unlock()
	if err := n.wal.Append(v); err != nil {
		return nil, err
	}
	return v, nil
}

// Only the fast arm forgets the ordering.
func (n *Node) handleOneArm(k string, v []byte, fast bool) ([]byte, error) {
	if fast {
		n.mu.Lock()
		n.table[k] = v // want `mutated before the durable write`
		n.mu.Unlock()
		return v, nil
	}
	if err := n.wal.Append(v); err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.table[k] = v
	n.mu.Unlock()
	return v, nil
}

// The mutation hides one call level down; the callee summary surfaces
// it at the call site.
func (n *Node) handleViaApply(k string, v []byte) ([]byte, error) {
	n.applyPut(k, v) // want `mutated before the durable write`
	if err := n.wal.Append(v); err != nil {
		return nil, err
	}
	return v, nil
}

// Deferred unlock holds the mutex to function end; the mutation is
// still guarded, and there is no durable call at all.
func (n *Node) handleDeferDirty(k string, v []byte) ([]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.table[k] = v // want `mutated before the durable write`
	return v, nil
}

// --- negatives -------------------------------------------------------

// Correct order: log first, then apply.
func (n *Node) handleClean(k string, v []byte) ([]byte, error) {
	if err := n.wal.Append(v); err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.table[k] = v
	n.puts++
	n.mu.Unlock()
	return v, nil
}

// In-memory-only configuration: the nil-guard arm has no facility to
// order against, so both arms are clean.
func (n *Node) handleNilGuard(k string, v []byte) ([]byte, error) {
	if n.wal != nil {
		if err := n.wal.Append(v); err != nil {
			return nil, err
		}
	}
	n.mu.Lock()
	n.table[k] = v
	n.mu.Unlock()
	return v, nil
}

// The durable call hides one level down too.
func (n *Node) handleViaPersist(k string, v []byte) ([]byte, error) {
	if err := n.persist(v); err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.table[k] = v
	n.mu.Unlock()
	return v, nil
}

// A path that never acks success owes no durability ordering.
func (n *Node) handleReject(k string) ([]byte, error) {
	n.mu.Lock()
	delete(n.table, k)
	n.mu.Unlock()
	return nil, errRejected
}

// Unguarded writes are a different analyzer's concern.
func (n *Node) handleUnlocked(k string, v []byte) ([]byte, error) {
	n.scratch = v
	return v, nil
}

// Observability counters are not ack-promised state: updating them
// before the durable write is exempt.
func (n *Node) handleStatsFirst(k string, v []byte) ([]byte, error) {
	n.mu.Lock()
	n.stats.puts++
	n.mu.Unlock()
	if err := n.wal.Append(v); err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.table[k] = v
	n.mu.Unlock()
	return v, nil
}

// Suppression: the reasoned directive silences the finding.
func (n *Node) handleSuppressed(k string, v []byte) ([]byte, error) {
	n.mu.Lock()
	//lint:ignore durafirst replay path; durability handled by the caller
	n.table[k] = v
	n.mu.Unlock()
	_ = n.wal.Append(v)
	return v, nil
}
