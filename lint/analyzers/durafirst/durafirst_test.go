package durafirst_test

import (
	"testing"

	"efdedup/lint/analysistest"
	"efdedup/lint/analyzers/durafirst"
)

func TestDuraFirst(t *testing.T) {
	analysistest.Run(t, durafirst.Analyzer, "dura/kvstore")
}
