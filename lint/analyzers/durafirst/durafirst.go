// Package durafirst enforces durable-write-before-memory-mutation in
// kvstore/cloudstore handler methods — the bug class PRs 6 and 7 each
// shipped and then fixed by hand (handlePutNX applying to the table
// before the WAL append landed; handlePutManifest registering the
// manifest before the disk write). The invariant comes straight from
// the paper's collaborative index: once a handler acks success, a
// crash must not forget state the ack promised, and the index must
// never reference chunks the durable store lacks. So on every path
// that acks success, the mutex-guarded mutation of receiver state must
// be dominated by the durable call.
//
// The check is a forward may-analysis of a three-state machine per
// path over the function CFG:
//
//	clean   --durable-->  durable      (WAL/disk write landed)
//	clean   --mutation->  dirty        (memory changed first: the bug)
//	durable --mutation->  durable      (correct order)
//
// A success-acking return (its final result is a literal nil error)
// reached while some path is dirty reports at the offending mutation.
// Durable calls are wal.Append / disk.Put* / writeAtomic, directly or
// one call level down (pass.Summaries resolves the callee body, so
// `n.applyPut(...)` style helpers contribute their mutations and
// `storeChunk` style helpers their durable-then-mutate sequences at
// the call site). Mutations are writes to receiver-rooted fields,
// map entries and slices inside a mutex-held region — unlocked writes
// are a different analyzer's problem.
//
// Edge refinement keeps the in-memory-only configuration clean: on
// the arm where the durability facility is known nil (`n.wal == nil`,
// `s.disk == nil`) there is nothing to order against, and the path is
// exempt (the state machine jumps straight to durable).
package durafirst

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"efdedup/lint/analysis"
	"efdedup/lint/internal/cfg"
	"efdedup/lint/internal/dataflow"
)

// Analyzer is the durafirst pass.
var Analyzer = &analysis.Analyzer{
	Name: "durafirst",
	Doc:  "in kvstore/cloudstore handlers, mutex-guarded receiver mutations must be preceded by the durable call (wal.Append/disk.Put*/writeAtomic) on every success-acking path",
	Run:  run,
}

const (
	cleanBit   = 1 << iota // no mutation, no durable write yet
	durableBit             // durable write landed (or facility exempt)
	dirtyBit               // memory mutated before any durable write
)

// state is the may-set of per-path machine states plus the first
// mutation that dirtied some path.
type state struct {
	mask     uint8
	dirtyPos token.Pos
}

func bottom() state { return state{} }

func join(a, b state) state {
	out := state{mask: a.mask | b.mask, dirtyPos: a.dirtyPos}
	if out.dirtyPos == token.NoPos || (b.dirtyPos != token.NoPos && b.dirtyPos < out.dirtyPos) {
		out.dirtyPos = b.dirtyPos
	}
	return out
}

func equal(a, b state) bool { return a == b }

// event is one durability-relevant step, in source order.
type event struct {
	pos     token.Pos
	durable bool // else: guarded mutation
}

func run(pass *analysis.Pass) error {
	if pass.CFGs == nil || !scopedPkg(pass.Pkg.Path()) {
		return nil
	}
	calleeCache := map[*types.Func][]event{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			if !strings.HasPrefix(strings.ToLower(fd.Name.Name), "handle") {
				continue
			}
			check(pass, fd, calleeCache)
		}
	}
	return nil
}

func scopedPkg(path string) bool {
	short := shortPkg(path)
	return short == "kvstore" || short == "cloudstore"
}

func check(pass *analysis.Pass, fd *ast.FuncDecl, calleeCache map[*types.Func][]event) {
	recv := recvObj(pass.TypesInfo, fd)
	if recv == nil {
		return
	}
	g := pass.CFGs.For(fd)
	locked := lockIntervals(pass.TypesInfo, fd.Body, recv)

	apply := func(s state, n ast.Node) state {
		for _, ev := range nodeEvents(pass, n, recv, locked, calleeCache) {
			if ev.durable {
				if s.mask&cleanBit != 0 {
					s.mask = (s.mask &^ cleanBit) | durableBit
				}
			} else {
				if s.mask&cleanBit != 0 {
					s.mask = (s.mask &^ cleanBit) | dirtyBit
					if s.dirtyPos == token.NoPos || ev.pos < s.dirtyPos {
						s.dirtyPos = ev.pos
					}
				}
			}
		}
		return s
	}

	res := dataflow.Solve(g, dataflow.Analysis[state]{
		Dir:    dataflow.Forward,
		Bottom: bottom, Join: join, Equal: equal,
		Boundary: func() state { return state{mask: cleanBit} },
		Transfer: func(b *cfg.Block, in state) state {
			s := in
			for _, n := range b.Nodes {
				s = apply(s, n)
			}
			return s
		},
		FlowEdge: func(e *cfg.Edge, f state) state {
			return refine(pass, e, f, recv)
		},
	})

	// Walk each block replaying the transfer to catch success-acking
	// returns mid-block with a dirty path behind them.
	reported := map[token.Pos]bool{}
	for _, b := range g.Blocks {
		s, ok := res.In[b]
		if !ok {
			continue
		}
		for _, n := range b.Nodes {
			if ret, isRet := n.(*ast.ReturnStmt); isRet && acksSuccess(ret) && s.mask&dirtyBit != 0 {
				pos := s.dirtyPos
				if pos == token.NoPos {
					pos = ret.Pos()
				}
				if !reported[pos] {
					reported[pos] = true
					pass.Reportf(pos, "receiver state is mutated before the durable write on a path acking success (return on line %d); append to the WAL / write to disk first, then mutate memory",
						pass.Fset.Position(ret.Pos()).Line)
				}
			}
			s = apply(s, n)
		}
	}
}

// nodeEvents lists the durability events this node contributes: direct
// durable calls, direct guarded mutations, and — one level down —
// the positional events of same-module callee bodies.
func nodeEvents(pass *analysis.Pass, n ast.Node, recv types.Object, locked []interval, calleeCache map[*types.Func][]event) []event {
	var out []event
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false // separate function, separate invariant
		case *ast.CallExpr:
			if isDurableCall(pass.TypesInfo, x) {
				out = append(out, event{pos: x.Pos(), durable: true})
				return true
			}
			if isDelete(pass.TypesInfo, x) && len(x.Args) > 0 && rootedAt(pass.TypesInfo, x.Args[0], recv) {
				if inLocked(locked, x.Pos()) {
					out = append(out, event{pos: x.Pos()})
				}
				return true
			}
			// One level of callees: replay the callee's own events at
			// the call site (applyPut-style mutation helpers,
			// storeChunk-style durable-then-mutate helpers).
			for _, ev := range calleeEvents(pass, x, calleeCache) {
				out = append(out, event{pos: x.Pos(), durable: ev.durable})
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if rootedAt(pass.TypesInfo, lhs, recv) && !observability(lhs) && inLocked(locked, x.Pos()) {
					out = append(out, event{pos: x.Pos()})
					break
				}
			}
		case *ast.IncDecStmt:
			if rootedAt(pass.TypesInfo, x.X, recv) && !observability(x.X) && inLocked(locked, x.Pos()) {
				out = append(out, event{pos: x.Pos()})
			}
		}
		return true
	})
	return out
}

// calleeEvents computes (memoized) the positional durable/mutation
// events of a same-module callee body — the one-level interprocedural
// composition with Pass.Summaries.
func calleeEvents(pass *analysis.Pass, call *ast.CallExpr, cache map[*types.Func][]event) []event {
	fn, ok := pass.CalleeObject(call).(*types.Func)
	if !ok || pass.Summaries == nil {
		return nil
	}
	if evs, done := cache[fn]; done {
		return evs
	}
	cache[fn] = nil // cut recursion: one level only
	fs := pass.Summaries.ForFunc(fn)
	if fs == nil || fs.Node == nil || fs.Node.Decl == nil || fs.Node.Decl.Body == nil {
		return nil
	}
	decl, info := fs.Node.Decl, fs.Node.Pkg.Info
	crecv := recvObj(info, decl)
	var out []event
	var locked []interval
	if crecv != nil {
		locked = lockIntervals(info, decl.Body, crecv)
	}
	ast.Inspect(decl.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isDurableCall(info, x) {
				out = append(out, event{pos: x.Pos(), durable: true})
			} else if crecv != nil && isDelete(info, x) && len(x.Args) > 0 && rootedAt(info, x.Args[0], crecv) && inLocked(locked, x.Pos()) {
				out = append(out, event{pos: x.Pos()})
			}
		case *ast.AssignStmt:
			if crecv == nil {
				return true
			}
			for _, lhs := range x.Lhs {
				if rootedAt(info, lhs, crecv) && !observability(lhs) && inLocked(locked, x.Pos()) {
					out = append(out, event{pos: x.Pos()})
					break
				}
			}
		case *ast.IncDecStmt:
			if crecv != nil && rootedAt(info, x.X, crecv) && !observability(x.X) && inLocked(locked, x.Pos()) {
				out = append(out, event{pos: x.Pos()})
			}
		}
		return true
	})
	cache[fn] = out
	return out
}

// refine exempts the arm where the durability facility is known nil:
// `if n.wal == nil` / `if s.disk != nil`'s false arm — nothing to
// order against, the path jumps to durable.
func refine(pass *analysis.Pass, e *cfg.Edge, f state, recv types.Object) state {
	if e.Cond == nil {
		return f
	}
	bin, ok := ast.Unparen(e.Cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return f
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	xNil, yNil := isNilIdent(x), isNilIdent(y)
	if xNil == yNil {
		return f
	}
	other := x
	if xNil {
		other = y
	}
	if !isFacility(pass.TypesInfo, other, recv) {
		return f
	}
	eq := bin.Op == token.EQL
	assertsNil := (eq && !e.Negate) || (!eq && e.Negate)
	if !assertsNil {
		return f
	}
	if f.mask&cleanBit != 0 {
		f.mask = (f.mask &^ cleanBit) | durableBit
	}
	return f
}

// isFacility matches a receiver-rooted durability facility selector:
// a field whose type is named WAL/DiskStore or whose name is wal/disk.
func isFacility(info *types.Info, e ast.Expr, recv types.Object) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || !rootedAt(info, sel.X, recv) {
		return false
	}
	if name := sel.Sel.Name; name == "wal" || name == "disk" {
		return true
	}
	if tv, ok := info.Types[e]; ok {
		if named, ok := deref(tv.Type).(*types.Named); ok {
			if n := named.Obj().Name(); n == "WAL" || n == "DiskStore" {
				return true
			}
		}
	}
	return false
}

// isDurableCall matches the durable sinks: (*WAL).Append, any
// (*DiskStore).Put*, and the writeAtomic helper.
func isDurableCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "writeAtomic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		tv, ok := info.Types[fun.X]
		if !ok {
			return false
		}
		named, ok := deref(tv.Type).(*types.Named)
		if !ok {
			return false
		}
		switch named.Obj().Name() {
		case "WAL":
			return name == "Append"
		case "DiskStore":
			return strings.HasPrefix(name, "Put")
		}
	}
	return false
}

// interval is one mutex-held region, positionally.
type interval struct{ lo, hi token.Pos }

func inLocked(ivs []interval, pos token.Pos) bool {
	for _, iv := range ivs {
		if iv.lo <= pos && pos <= iv.hi {
			return true
		}
	}
	return false
}

// lockIntervals sweeps the body for receiver-rooted mutex Lock/RLock
// calls and pairs each with the next Unlock/RUnlock (or the body end;
// a deferred unlock holds to the end by construction).
func lockIntervals(info *types.Info, body *ast.BlockStmt, recv types.Object) []interval {
	type op struct {
		pos    token.Pos
		lock   bool
		defers bool
	}
	var ops []op
	deferred := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			deferred = true
			ast.Inspect(x.Call, walk)
			deferred = false
			return false
		case *ast.CallExpr:
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok || !rootedAt(info, sel.X, recv) {
				return true
			}
			switch sel.Sel.Name {
			case "Lock", "RLock":
				ops = append(ops, op{pos: x.Pos(), lock: true, defers: deferred})
			case "Unlock", "RUnlock":
				ops = append(ops, op{pos: x.Pos(), defers: deferred})
			}
		}
		return true
	}
	ast.Inspect(body, walk)

	var out []interval
	for i, o := range ops {
		if !o.lock {
			continue
		}
		hi := body.End()
		for _, u := range ops[i+1:] {
			if !u.lock && !u.defers {
				hi = u.pos
				break
			}
		}
		out = append(out, interval{lo: o.pos, hi: hi})
	}
	return out
}

// observability reports whether the lvalue goes through a stats or
// metrics field. Counters are not state the ack promises — a crash
// losing an in-memory metric is not the durability bug class — so
// their updates are exempt from the ordering.
func observability(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if n := strings.ToLower(x.Sel.Name); n == "stats" || n == "metrics" {
				return true
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// rootedAt reports whether the lvalue/selector chain bottoms out at
// the receiver object.
func rootedAt(info *types.Info, e ast.Expr, recv types.Object) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := info.Uses[x]; o != nil {
				return o == recv
			}
			return info.Defs[x] == recv
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

func recvObj(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[fd.Recv.List[0].Names[0]]
}

func isDelete(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "delete" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// acksSuccess matches returns whose final result is the literal nil —
// the handler telling its caller the operation succeeded.
func acksSuccess(ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return false
	}
	id, ok := ast.Unparen(ret.Results[len(ret.Results)-1]).(*ast.Ident)
	return ok && id.Name == "nil"
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
