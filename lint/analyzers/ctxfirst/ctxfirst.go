// Package ctxfirst enforces the Go convention that context.Context is
// the first parameter of any function that takes one.
//
// The daemons thread cancellation from shutdown handlers through the
// cluster fan-out down to individual dials; a context buried mid-
// signature is the kind that gets forgotten at a call site (passed
// context.Background() "temporarily") and silently detaches a whole
// subtree from shutdown. Position-zero makes the plumbing mechanical
// and greppable.
//
// The analyzer inspects every function signature in the package —
// declarations, literals, interface methods and function types — and
// reports signatures where a context.Context parameter is not first.
package ctxfirst

import (
	"go/ast"
	"go/types"

	"efdedup/lint/analysis"
)

// Analyzer is the ctxfirst pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc:  "reports function signatures where context.Context is not the first parameter",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ft, ok := n.(*ast.FuncType)
			if !ok || ft.Params == nil {
				return true
			}
			// Flatten the parameter list: one entry per declared name
			// (or per anonymous type).
			argIndex := 0
			for _, field := range ft.Params.List {
				width := len(field.Names)
				if width == 0 {
					width = 1
				}
				if isContext(pass, field.Type) && argIndex > 0 {
					pass.Reportf(field.Pos(), "context.Context should be the first parameter of a function")
				}
				argIndex += width
			}
			return true
		})
	}
	return nil
}

func isContext(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
