// Fixture for the ctxfirst analyzer.
package ctxuse

import "context"

func good(ctx context.Context, addr string) error { return nil }

func goodOnly(ctx context.Context) {}

func goodNone(addr string, n int) {}

func bad(addr string, ctx context.Context) error { return nil } // want `context\.Context should be the first parameter`

type dialer interface {
	DialGood(ctx context.Context, addr string) error
	DialBad(addr string, ctx context.Context) error // want `context\.Context should be the first parameter`
}

var goodLit = func(ctx context.Context, n int) {}

var badLit = func(n int, ctx context.Context) {} // want `context\.Context should be the first parameter`

var badType func(n int, ctx context.Context) // want `context\.Context should be the first parameter`

var _ = good
var _ = goodOnly
var _ = goodNone
var _ = bad
var _ = goodLit
var _ = badLit
var _ = badType
