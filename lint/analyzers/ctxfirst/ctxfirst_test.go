package ctxfirst_test

import (
	"testing"

	"efdedup/lint/analysistest"
	"efdedup/lint/analyzers/ctxfirst"
)

func TestCtxFirst(t *testing.T) {
	analysistest.Run(t, ctxfirst.Analyzer, "ctxuse")
}
