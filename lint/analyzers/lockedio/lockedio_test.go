package lockedio_test

import (
	"testing"

	"efdedup/lint/analysistest"
	"efdedup/lint/analyzers/lockedio"
)

func TestLockedIO(t *testing.T) {
	analysistest.Run(t, lockedio.Analyzer, "lockedio")
}
