// Package lockedio flags network I/O performed while a sync.Mutex or
// sync.RWMutex is held.
//
// The kvstore, cloudstore, gossip and agent layers all follow the same
// discipline: take the lock to read or mutate connection tables, RELEASE
// it, then dial or issue the RPC. Holding a mutex across a Dial or a
// conn Read/Write serializes the whole D2-ring fan-out behind one slow
// peer and is how distributed stores deadlock under partitions — the
// chaos tests (internal/faultnet) stall connections for seconds on
// purpose, so a lock held across I/O turns a single injected stall
// into a node-wide freeze.
//
// Detection is a per-function positional sweep: Lock()/RLock() events
// open a held region, Unlock()/RUnlock() close it, deferred unlocks
// keep it open to the end of the function, and any I/O call inside a
// held region is reported. I/O calls are recognized by type
// information: calls into package net, method calls on values
// implementing net.Conn, calls passing a net.Conn argument, Dial/
// DialContext methods on any dialer interface, and Call/Close on the
// frame transport client. Nested function literals are swept
// separately — a goroutine body does not inherit the parent's lock
// region.
package lockedio

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"efdedup/lint/analysis"
)

// Analyzer is the lockedio pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockedio",
	Doc:  "reports network I/O (dials, conn reads/writes, transport RPCs) performed while a sync mutex is held",
	Run:  run,
}

// event is one lock-relevant occurrence inside a function body.
type event struct {
	pos  token.Pos
	kind int    // lock, unlock, deferUnlock, io
	key  string // mutex expression (lock/unlock) or I/O description
}

const (
	evLock = iota
	evUnlock
	evDeferUnlock
	evIO
)

func run(pass *analysis.Pass) error {
	conn := netConnInterface(pass.Pkg)
	for _, file := range pass.Files {
		for body := range functionBodies(file) {
			sweep(pass, body, conn)
		}
	}
	return nil
}

// functionBodies yields every function body in the file: declarations
// and literals. Each is swept independently.
func functionBodies(file *ast.File) map[*ast.BlockStmt]bool {
	bodies := make(map[*ast.BlockStmt]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				bodies[fn.Body] = true
			}
		case *ast.FuncLit:
			bodies[fn.Body] = true
		}
		return true
	})
	return bodies
}

// sweep collects lock and I/O events in source order (skipping nested
// function literals) and reports I/O that happens while any mutex is
// held.
func sweep(pass *analysis.Pass, body *ast.BlockStmt, conn *types.Interface) {
	var events []event
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch node := m.(type) {
			case *ast.FuncLit:
				return false // separate sweep
			case *ast.DeferStmt:
				walk(node.Call, true)
				return false
			case *ast.GoStmt:
				// The spawned call does not block the lock holder;
				// only its argument expressions evaluate synchronously.
				for _, arg := range node.Call.Args {
					walk(arg, false)
				}
				return false
			case *ast.CallExpr:
				if ev, ok := classify(pass, node, conn, inDefer); ok {
					events = append(events, ev)
				}
			}
			return true
		})
	}
	walk(body, false)

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	held := make(map[string]token.Pos) // mutex expr -> Lock pos
	sticky := make(map[string]bool)    // deferred unlock: held to return
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			held[ev.key] = ev.pos
		case evUnlock:
			if !sticky[ev.key] {
				delete(held, ev.key)
			}
		case evDeferUnlock:
			sticky[ev.key] = true
		case evIO:
			if mu := firstHeld(held); mu != "" {
				pass.Reportf(ev.pos, "%s while %s is held (locked at line %d); release the lock before network I/O",
					ev.key, mu, pass.Fset.Position(held[mu]).Line)
			}
		}
	}
}

// classify decides whether a call is a lock transition or network I/O.
func classify(pass *analysis.Pass, call *ast.CallExpr, conn *types.Interface, inDefer bool) (event, bool) {
	if key, name, ok := mutexOp(pass, call); ok {
		switch name {
		case "Lock", "RLock":
			if inDefer {
				return event{}, false
			}
			return event{pos: call.Pos(), kind: evLock, key: key}, true
		case "Unlock", "RUnlock":
			kind := evUnlock
			if inDefer {
				kind = evDeferUnlock
			}
			return event{pos: call.Pos(), kind: kind, key: key}, true
		}
		return event{}, false
	}
	if desc, ok := ioCall(pass, call, conn); ok {
		return event{pos: call.Pos(), kind: evIO, key: desc}, true
	}
	return event{}, false
}

// mutexOp matches (*sync.Mutex)/(*sync.RWMutex) Lock/Unlock/RLock/
// RUnlock calls, returning the receiver expression as the mutex key.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (key, name string, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	obj := pass.CalleeObject(call)
	fn, okFn := obj.(*types.Func)
	if !okFn {
		return "", "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", false
	}
	rt := recv.Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, okNamed := rt.(*types.Named)
	if !okNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", "", false
	}
	if tn := named.Obj().Name(); tn != "Mutex" && tn != "RWMutex" {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

// ioCall reports whether the call performs network I/O, with a short
// description for the diagnostic.
func ioCall(pass *analysis.Pass, call *ast.CallExpr, conn *types.Interface) (string, bool) {
	// Builtins (delete, append, ...) and type conversions never do
	// I/O even when a conn flows through them.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin {
			return "", false
		}
	}
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return "", false
	}
	obj := pass.CalleeObject(call)
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			rt := recv.Type()
			// Method on a net.Conn implementation or the interface
			// itself (Read/Write/Close/SetDeadline...).
			if conn != nil && (types.Implements(rt, conn) || implementsPtr(rt, conn)) {
				return "net.Conn." + fn.Name(), true
			}
			// Dialer-shaped interface methods (transport.Network,
			// kvstore/cloudstore dialer fields).
			if fn.Name() == "Dial" || fn.Name() == "DialContext" {
				return fn.Name(), true
			}
			// Frame transport client: Call blocks on a full RPC round
			// trip, Close tears down the underlying conn.
			if named, ok := deref(rt).(*types.Named); ok {
				tobj := named.Obj()
				if tobj.Pkg() != nil && strings.HasSuffix(tobj.Pkg().Path(), "internal/transport") &&
					tobj.Name() == "Client" && (fn.Name() == "Call" || fn.Name() == "Close") {
					return "transport.Client." + fn.Name(), true
				}
			}
		}
		// Anything else from package net: Dial, DialTimeout, Listen,
		// (*net.Dialer).DialContext, ...
		if fn.Pkg() != nil && fn.Pkg().Path() == "net" {
			return "net." + fn.Name(), true
		}
	}
	// A helper taking a net.Conn argument does the I/O on our behalf —
	// except constructors (New*), which only wrap the conn.
	if fn, ok := obj.(*types.Func); ok && strings.HasPrefix(fn.Name(), "New") {
		return "", false
	}
	if conn != nil {
		for _, arg := range call.Args {
			if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Type != nil {
				if types.Implements(tv.Type, conn) || implementsPtr(tv.Type, conn) {
					return "call passing net.Conn", true
				}
			}
		}
	}
	return "", false
}

// firstHeld picks the lexically smallest held mutex so diagnostics are
// deterministic when several locks are held at once.
func firstHeld(held map[string]token.Pos) string {
	best := ""
	for mu := range held {
		if best == "" || mu < best {
			best = mu
		}
	}
	return best
}

func implementsPtr(t types.Type, iface *types.Interface) bool {
	if _, ok := t.(*types.Pointer); ok {
		return false
	}
	return types.Implements(types.NewPointer(t), iface)
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// netConnInterface digs the net.Conn interface type out of the
// package's import graph; nil when net is not imported anywhere.
func netConnInterface(pkg *types.Package) *types.Interface {
	netPkg := analysis.ImportedPackage(pkg, "net")
	if netPkg == nil {
		return nil
	}
	obj := netPkg.Scope().Lookup("Conn")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}
