// Package transport is a fixture stub mirroring the shape of the real
// efdedup/internal/transport frame client.
package transport

import (
	"context"
	"net"
)

// Client is a framed RPC client over one conn.
type Client struct{ conn net.Conn }

// NewClient wraps a conn; it performs no I/O itself.
func NewClient(conn net.Conn) *Client { return &Client{conn: conn} }

// Call performs a full RPC round trip.
func (c *Client) Call(ctx context.Context, method string, body []byte) ([]byte, error) {
	return nil, nil
}

// Close tears down the underlying conn.
func (c *Client) Close() error { return c.conn.Close() }
