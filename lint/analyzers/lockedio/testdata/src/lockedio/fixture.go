// Fixture for the lockedio analyzer: network I/O under held mutexes
// must be reported; lock-release-before-dial must stay silent.
package lockedio

import (
	"context"
	"net"
	"sync"

	"efdedup/internal/transport"
)

type node struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	conn    net.Conn
	clients map[string]*transport.Client
}

func (n *node) badWrite(b []byte) {
	n.mu.Lock()
	n.conn.Write(b) // want `net\.Conn\.Write while n\.mu is held`
	n.mu.Unlock()
}

func (n *node) badDeferDial(ctx context.Context) (net.Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var d net.Dialer
	return d.DialContext(ctx, "tcp", "peer:1") // want `DialContext while n\.mu is held`
}

func (n *node) badRLockRead(b []byte) {
	n.rw.RLock()
	defer n.rw.RUnlock()
	n.conn.Read(b) // want `net\.Conn\.Read while n\.rw is held`
}

func (n *node) badHelper(b []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	writeAll(n.conn, b) // want `call passing net\.Conn while n\.mu is held`
}

func (n *node) badRPC(ctx context.Context, cl *transport.Client) {
	n.mu.Lock()
	cl.Call(ctx, "kv.get", nil) // want `transport\.Client\.Call while n\.mu is held`
	n.mu.Unlock()
}

func (n *node) badCloseUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for addr, cl := range n.clients {
		cl.Close() // want `transport\.Client\.Close while n\.mu is held`
		delete(n.clients, addr)
	}
}

// goodReleaseBeforeDial is the discipline the analyzer enforces: the
// lock guards only the table; the dial happens after release.
func (n *node) goodReleaseBeforeDial(ctx context.Context) (net.Conn, error) {
	n.mu.Lock()
	cached := n.conn
	n.mu.Unlock()
	if cached != nil {
		return cached, nil
	}
	return net.Dial("tcp", "peer:1")
}

// goodWrapUnderLock stores a client constructed from an already-dialed
// conn; NewClient only wraps and is not I/O.
func (n *node) goodWrapUnderLock(conn net.Conn) {
	n.mu.Lock()
	n.clients["peer"] = transport.NewClient(conn)
	n.mu.Unlock()
}

// goodRelock: a second critical section after the I/O is fine.
func (n *node) goodRelock(ctx context.Context) error {
	n.mu.Lock()
	n.conn = nil
	n.mu.Unlock()
	conn, err := net.Dial("tcp", "peer:1")
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.conn = conn
	n.mu.Unlock()
	return nil
}

// goodGoroutine: the literal's body is a separate sweep — it runs on
// its own stack and does not inherit the parent's lock region.
func (n *node) goodGoroutine(b []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	go func() {
		n.conn.Write(b)
	}()
}

// goodAsyncClose: a call spawned with go does not block the lock
// holder, so it is not held-across I/O.
func (n *node) goodAsyncClose(cl *transport.Client) {
	n.mu.Lock()
	defer n.mu.Unlock()
	go cl.Close()
}

// goodBuiltins: builtin calls and conversions moving a conn around a
// table are bookkeeping, not I/O.
func (n *node) goodBuiltins(conns map[net.Conn]bool, c net.Conn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(conns, c)
	_ = net.Conn(c)
}

// goodIgnored shows the reasoned escape hatch.
func (n *node) goodIgnored(b []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	//lint:ignore lockedio test-only shim, conn is an in-memory pipe
	n.conn.Write(b)
}

func writeAll(c net.Conn, b []byte) {
	c.Write(b)
}
