package ctxcancel_test

import (
	"testing"

	"efdedup/lint/analysistest"
	"efdedup/lint/analyzers/ctxcancel"
)

func TestCtxCancel(t *testing.T) {
	analysistest.Run(t, ctxcancel.Analyzer, "ctxcancel")
}
