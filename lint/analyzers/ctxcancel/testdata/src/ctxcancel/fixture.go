// Fixtures for the ctxcancel analyzer: every cancel func must be
// called on every path, with escape and nil-guard exemptions.
package ctxcancel

import (
	"context"
	"errors"
	"time"
)

var errBad = errors.New("bad")

func work(ctx context.Context) error { return ctx.Err() }

// --- positives -------------------------------------------------------

// No cancel call at all.
func leakPlain(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx) // want `cancel function from context\.WithCancel is not called on every path`
	_ = cancel
	return work(ctx)
}

// The early error return misses the cancel registered after it.
func leakBeforeDefer(ctx context.Context, ok bool) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second) // want `cancel function from context\.WithTimeout is not called on every path`
	if !ok {
		return errBad // cancel not yet deferred
	}
	defer cancel()
	return work(ctx)
}

// One arm cancels, the other forgets.
func leakOneArm(ctx context.Context, ok bool) error {
	ctx, cancel := context.WithDeadline(ctx, time.Now()) // want `cancel function from context\.WithDeadline is not called on every path`
	if ok {
		cancel()
		return nil
	}
	return work(ctx)
}

// Discarding the cancel func is an immediate, unconditional leak.
func leakDiscarded(ctx context.Context) error {
	cctx, _ := context.WithCancel(ctx) // want `cancel function from context\.WithCancel is discarded`
	return work(cctx)
}

// --- negatives -------------------------------------------------------

// The idiom: defer cancel right after acquiring.
func cleanDefer(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return work(ctx)
}

// Explicit cancel on every arm.
func cleanBothArms(ctx context.Context, ok bool) error {
	ctx, cancel := context.WithCancel(ctx)
	if ok {
		cancel()
		return nil
	}
	err := work(ctx)
	cancel()
	return err
}

// The conditional-timeout idiom from the retry loop: the nil guard
// proves there is nothing to cancel on the no-timeout arm.
func cleanConditionalTimeout(ctx context.Context, timeout time.Duration) error {
	actx := ctx
	var cancel context.CancelFunc
	if timeout > 0 {
		actx, cancel = context.WithTimeout(ctx, timeout)
	}
	err := work(actx)
	if cancel != nil {
		cancel()
	}
	return err
}

// Returning the cancel transfers the obligation to the caller.
func cleanEscapeReturn(ctx context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(ctx)
	return ctx, cancel
}

// A goroutine capturing the cancel owns it now.
func cleanEscapeGoroutine(ctx context.Context, done chan struct{}) error {
	ctx, cancel := context.WithCancel(ctx)
	go func() {
		<-done
		cancel()
	}()
	return work(ctx)
}

// Suppression: the reasoned directive silences the finding.
func suppressed(ctx context.Context) error {
	//lint:ignore ctxcancel process-lifetime context, cancelled by exit
	ctx, cancel := context.WithCancel(ctx)
	_ = cancel
	return work(ctx)
}
