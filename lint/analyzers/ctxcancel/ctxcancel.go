// Package ctxcancel reports context cancel functions that are not
// called on every path. context.WithCancel/WithTimeout/WithDeadline
// each return a cancel func that releases the context's timer and
// subtree registration; a path that returns without calling it leaks
// those until the parent context ends — in a daemon whose parent is
// Background, forever. The retry/gossip/cluster hot paths create one
// context per attempt, so a missed cancel is a per-RPC leak, which is
// why the invariant is worth a path-sensitive check rather than a
// code-review habit.
//
// The analysis is the resleak shape over the same CFGs: the
// acquisition generates a "cancel outstanding" fact, killed by calling
// the cancel (inline or through a per-return defer chain), by its
// escape (returned, stored, passed, captured — ownership transfers),
// and by edge refinement on `cancel == nil` / `cancel != nil` guards,
// which keeps the conditional-timeout idiom
//
//	var cancel context.CancelFunc
//	if timeout > 0 { ctx, cancel = context.WithTimeout(ctx, timeout) }
//	...
//	if cancel != nil { cancel() }
//
// clean: on the nil arm there is nothing to call. Assigning the cancel
// to the blank identifier is reported immediately — the func is
// irrecoverable from there.
package ctxcancel

import (
	"go/ast"
	"go/token"
	"go/types"

	"efdedup/lint/analysis"
	"efdedup/lint/internal/cfg"
	"efdedup/lint/internal/dataflow"
)

// Analyzer is the ctxcancel pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxcancel",
	Doc:  "cancel funcs from context.WithCancel/WithTimeout/WithDeadline must be called on every path",
	Run:  run,
}

var withFuncs = []string{"WithCancel", "WithTimeout", "WithDeadline"}

func run(pass *analysis.Pass) error {
	if pass.CFGs == nil {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					check(pass, fn)
				}
			case *ast.FuncLit:
				check(pass, fn)
			}
			return true
		})
	}
	return nil
}

// acq is one cancel-func-producing assignment.
type acq struct {
	cancel types.Object
	pos    token.Pos
	what   string // "context.WithCancel" etc.
}

type facts map[*acq]bool

func bottom() facts { return facts{} }

func join(a, b facts) facts {
	out := facts{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func equal(a, b facts) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func check(pass *analysis.Pass, fn ast.Node) {
	g := pass.CFGs.For(fn)
	var acqs []*acq
	byCancel := map[types.Object]*acq{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			as, what, ok := withAssign(pass, n)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(as.Lhs[1]).(*ast.Ident)
			if !ok {
				continue
			}
			if id.Name == "_" {
				pass.Reportf(as.Pos(), "the cancel function from %s is discarded; it must be called to release the context (defer cancel())", what)
				continue
			}
			obj := pass.ObjectOf(id)
			if obj == nil {
				continue
			}
			a := &acq{cancel: obj, pos: as.Pos(), what: what}
			acqs = append(acqs, a)
			byCancel[obj] = a
		}
	}
	if len(acqs) == 0 {
		return
	}

	res := dataflow.Solve(g, dataflow.Analysis[facts]{
		Dir:    dataflow.Forward,
		Bottom: bottom, Join: join, Equal: equal,
		Transfer: func(b *cfg.Block, in facts) facts {
			out := join(in, facts{})
			for _, n := range b.Nodes {
				applyNode(pass, n, byCancel, out)
			}
			return out
		},
		FlowEdge: func(e *cfg.Edge, f facts) facts {
			return refine(pass, e, f, byCancel)
		},
	})

	reported := map[*acq]bool{}
	for _, e := range g.Exit.Preds {
		f := res.Out[e.From]
		for _, a := range acqs {
			if !f[a] || reported[a] {
				continue
			}
			reported[a] = true
			retLine := pass.Fset.Position(returnSite(e.From)).Line
			pass.Reportf(a.pos, "the cancel function from %s is not called on every path (context leak): the return on line %d misses it; defer cancel() after the error check",
				a.what, retLine)
		}
	}
}

// withAssign matches `ctx, cancel := context.WithX(...)` (:= or =).
func withAssign(pass *analysis.Pass, n ast.Node) (*ast.AssignStmt, string, bool) {
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 2 || len(as.Rhs) != 1 {
		return nil, "", false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil, "", false
	}
	for _, name := range withFuncs {
		if pass.IsPkgFunc(call, "context", name) {
			return as, "context." + name, true
		}
	}
	return nil, "", false
}

// applyNode kills facts for cancels called or escaping in this node,
// and regenerates on a fresh WithX assignment.
func applyNode(pass *analysis.Pass, n ast.Node, byCancel map[types.Object]*acq, s facts) {
	if as, _, ok := withAssign(pass, n); ok {
		if id, ok := ast.Unparen(as.Lhs[1]).(*ast.Ident); ok && id.Name != "_" {
			if a := byCancel[pass.ObjectOf(id)]; a != nil {
				s[a] = true
				return
			}
		}
	}
	kill := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if a := byCancel[pass.ObjectOf(id)]; a != nil {
				delete(s, a)
			}
		}
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			// A literal capturing the cancel owns it now (the
			// goroutine-scoped cancel idiom).
			ast.Inspect(x.Body, func(y ast.Node) bool {
				if id, ok := y.(*ast.Ident); ok {
					kill(id)
				}
				return true
			})
			return false
		case *ast.CallExpr:
			kill(x.Fun) // cancel() itself
			for _, arg := range x.Args {
				kill(arg)
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				kill(r)
			}
		case *ast.SendStmt:
			kill(x.Value)
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					kill(kv.Value)
				} else {
					kill(el)
				}
			}
		case *ast.AssignStmt:
			// `_ = cancel` silences the compiler, not the leak: a
			// blank assignment transfers nothing.
			if allBlank(x.Lhs) {
				return true
			}
			for _, rhs := range x.Rhs {
				if _, isCall := ast.Unparen(rhs).(*ast.CallExpr); isCall {
					continue
				}
				kill(rhs) // aliased/stored away
			}
		}
		return true
	})
}

// refine kills the fact on arms where the cancel variable is known
// nil — the conditional-timeout idiom's clean arm.
func refine(pass *analysis.Pass, e *cfg.Edge, f facts, byCancel map[types.Object]*acq) facts {
	if e.Cond == nil {
		return f
	}
	bin, ok := ast.Unparen(e.Cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return f
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	xNil := isNil(x)
	yNil := isNil(y)
	if xNil == yNil {
		return f
	}
	other := x
	if xNil {
		other = y
	}
	id, ok := other.(*ast.Ident)
	if !ok {
		return f
	}
	a := byCancel[pass.ObjectOf(id)]
	if a == nil {
		return f
	}
	eq := bin.Op == token.EQL
	assertsNil := (eq && !e.Negate) || (!eq && e.Negate)
	if !assertsNil {
		return f
	}
	out := join(f, facts{})
	delete(out, a)
	return out
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// returnSite walks back through defer blocks to the path's last source
// statement.
func returnSite(b *cfg.Block) token.Pos {
	for b.Kind == cfg.KindDefer && len(b.Preds) == 1 {
		b = b.Preds[0].From
	}
	if n := len(b.Nodes); n > 0 {
		return b.Nodes[n-1].Pos()
	}
	return token.NoPos
}
