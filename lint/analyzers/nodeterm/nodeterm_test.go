package nodeterm_test

import (
	"testing"

	"efdedup/lint/analysistest"
	"efdedup/lint/analyzers/nodeterm"
)

func TestNoDeterm(t *testing.T) {
	analysistest.Run(t, nodeterm.Analyzer, "efdedup/internal/model")
}
