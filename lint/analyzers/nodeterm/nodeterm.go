// Package nodeterm keeps the analytical core of the reproduction
// bit-deterministic.
//
// Theorem 1's dedup-factor estimator, Algorithm 1's grid-search refit
// and the SNOD2 partition solvers are validated by comparing runs: the
// same inputs and the same seed must reproduce the same figures, or a
// refit cannot be distinguished from a regression. Wall-clock reads
// (time.Now/Since/Until) and the process-global math/rand source both
// break that: results change run to run and under `go test -count=2`.
// Randomness must arrive as an injected, seeded *rand.Rand and time as
// an injected clock or an explicit parameter.
//
// In the packages listed in DeterministicPackages the analyzer reports
// any use of time.Now/Since/Until and of math/rand (v1 or v2)
// package-level functions. Constructors (rand.New, rand.NewSource,
// rand.NewZipf, rand.NewPCG, rand.NewChaCha8) stay allowed — they are
// how a seeded generator is built.
package nodeterm

import (
	"go/ast"
	"go/types"
	"strings"

	"efdedup/lint/analysis"
)

// DeterministicPackages are the import-path suffixes that must stay
// reproducible given fixed inputs and seeds.
var DeterministicPackages = []string{
	"internal/model",
	"internal/sim",
	"internal/estimate",
	"internal/partition",
}

// Analyzer is the nodeterm pass.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterm",
	Doc:  "reports wall-clock reads and global math/rand use in deterministic (model/sim/estimate/partition) packages",
	Run:  run,
}

// allowedRandConstructors build seeded generators and are fine.
var allowedRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

var bannedTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) error {
	if !deterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are the fix, not the bug
			}
			switch fn.Pkg().Path() {
			case "time":
				if bannedTimeFuncs[fn.Name()] {
					pass.Reportf(id.Pos(), "time.%s in a deterministic package; inject a clock (func() time.Time) or pass timestamps in", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !allowedRandConstructors[fn.Name()] {
					pass.Reportf(id.Pos(), "global %s.%s in a deterministic package; inject a seeded *rand.Rand instead", pathBase(fn.Pkg().Path()), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

func deterministic(path string) bool {
	for _, suffix := range DeterministicPackages {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

func pathBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		// math/rand/v2 reads better as rand/v2.
		if strings.HasSuffix(path, "/v2") {
			return "rand/v2"
		}
		return path[i+1:]
	}
	return path
}
