// Fixture for the nodeterm analyzer: this package path ends in
// internal/model, part of the deterministic analytical core.
package model

import (
	"math/rand"
	"time"
)

func jitter() float64 {
	return rand.Float64() // want `global rand\.Float64`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand\.Shuffle`
}

func stamp() time.Time {
	return time.Now() // want `time\.Now`
}

func age(t time.Time) time.Duration {
	return time.Since(t) // want `time\.Since`
}

// seeded construction and injected generators are the approved shape.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func draw(rng *rand.Rand) float64 {
	return rng.Float64()
}

// durations and explicit timestamps stay fine — only clock reads vary.
func span(start, end time.Time) time.Duration {
	return end.Sub(start)
}

func ignored() time.Time {
	//lint:ignore nodeterm diagnostic log stamp, not part of model output
	return time.Now()
}
