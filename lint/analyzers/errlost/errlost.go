// Package errlost finds errors that are silently lost:
//
//  1. A call whose callee (per its interprocedural summary) can return
//     an error carrying kvstore.ErrNoQuorum or kvstore.PartialWriteError
//     — the sentinels the whole retry/accounting machinery classifies on
//     — discarded with a blank identifier, dropped as a bare statement,
//     or lost behind go/defer. Losing one of these turns a partial
//     quorum write into silent data-loss exposure.
//  2. In transport-boundary packages (the same set errclass guards),
//     any module-internal callee's error discarded with `_`.
//  3. An error variable overwritten by a second assignment before any
//     use — the first error was never checked.
//
// Rules 1 and 2 are interprocedural (they need callee summaries); rule
// 3 is local flow analysis within one block.
package errlost

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"efdedup/lint/analysis"
	"efdedup/lint/analyzers/errclass"
	"efdedup/lint/internal/callgraph"
	"efdedup/lint/internal/summary"
)

var Analyzer = &analysis.Analyzer{
	Name: "errlost",
	Doc:  "no discarded errors that may carry quorum/partial-write sentinels; no error overwritten before use",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	boundary := false
	for _, suffix := range errclass.TransportPackages {
		if strings.HasSuffix(pass.Pkg.Path(), suffix) {
			boundary = true
			break
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.AssignStmt:
				checkBlankAssign(pass, boundary, nn)
			case *ast.ExprStmt:
				if call, ok := nn.X.(*ast.CallExpr); ok {
					checkDroppedCall(pass, call, "dropped")
				}
			case *ast.GoStmt:
				checkDroppedCall(pass, nn.Call, "lost in go statement")
			case *ast.DeferStmt:
				checkDroppedCall(pass, nn.Call, "lost in deferred call")
			case *ast.BlockStmt:
				checkOverwrites(pass, nn)
			}
			return true
		})
	}
	return nil
}

// sentinelChains returns the sentinel wrap chains the call's callee can
// produce, or nil.
func sentinelChains(pass *analysis.Pass, call *ast.CallExpr) map[string]*summary.WrapChain {
	if pass.Summaries == nil {
		return nil
	}
	fn, ok := pass.CalleeObject(call).(*types.Func)
	if !ok {
		return nil
	}
	return pass.Summaries.Sentinels(callgraph.FuncID(fn))
}

// calleeSummary returns the interprocedural summary of the call's
// callee when it is a function defined in this module, else nil.
func calleeSummary(pass *analysis.Pass, call *ast.CallExpr) *summary.FuncSummary {
	if pass.Summaries == nil {
		return nil
	}
	fn, ok := pass.CalleeObject(call).(*types.Func)
	if !ok {
		return nil
	}
	return pass.Summaries.ForFunc(fn)
}

// checkBlankAssign flags `_ = f()` / `v, _ := f()` where a blank in an
// error result position loses a sentinel-carrying error (anywhere) or
// any module-internal error (in transport-boundary packages).
func checkBlankAssign(pass *analysis.Pass, boundary bool, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return
	}
	blankErr := false
	switch res := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < res.Len() && i < len(as.Lhs); i++ {
			if isBlank(as.Lhs[i]) && isErrorType(res.At(i).Type()) {
				blankErr = true
			}
		}
	default:
		if len(as.Lhs) == 1 && isBlank(as.Lhs[0]) && isErrorType(tv.Type) {
			blankErr = true
		}
	}
	if !blankErr {
		return
	}
	if chains := sentinelChains(pass, call); chains != nil {
		reportSentinel(pass, as.Pos(), "discarded", chains)
		return
	}
	if boundary {
		if fs := calleeSummary(pass, call); fs != nil && fs.ReturnsError {
			pass.Reportf(as.Pos(),
				"error from %s discarded with _ in a transport-boundary package; handle it or annotate //lint:ignore errlost <reason>",
				calleeName(call))
		}
	}
}

// checkDroppedCall flags statements that throw away every result of a
// sentinel-carrying callee.
func checkDroppedCall(pass *analysis.Pass, call *ast.CallExpr, how string) {
	chains := sentinelChains(pass, call)
	if chains == nil {
		return
	}
	fs := calleeSummary(pass, call)
	if fs == nil || !fs.ReturnsError {
		return
	}
	reportSentinel(pass, call.Pos(), how, chains)
}

func reportSentinel(pass *analysis.Pass, pos token.Pos, how string, chains map[string]*summary.WrapChain) {
	names := make([]string, 0, len(chains))
	for name := range chains {
		names = append(names, name)
	}
	// Deterministic order for stable diagnostics.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	chain := chains[names[0]]
	pass.Reportf(pos, "error %s may carry %s (wrapped in %s); classify with errors.Is before dropping",
		how, strings.Join(names, ", "), strings.Join(chain.Chain, " → "))
}

// checkOverwrites reports error variables assigned and then reassigned
// in the same block with no intervening use — the first error is never
// checked. Any mention of the variable between the two assignments
// (including a conditional write in a nested block) counts as a use.
func checkOverwrites(pass *analysis.Pass, block *ast.BlockStmt) {
	info := pass.TypesInfo
	pending := make(map[types.Object]token.Pos)
	for _, stmt := range block.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok {
			// Any appearance of a pending variable — a check, a use, a
			// conditional reassignment — clears it.
			clearUses(info, stmt, pending)
			continue
		}
		for _, rhs := range as.Rhs {
			clearUses(info, rhs, pending)
		}
		for _, lhs := range as.Lhs {
			id, okID := lhs.(*ast.Ident)
			if !okID || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil || !isErrorType(obj.Type()) {
				continue
			}
			if prev, live := pending[obj]; live {
				pass.Reportf(id.Pos(), "%s overwritten before use: error assigned at line %d was never checked",
					id.Name, pass.Fset.Position(prev).Line)
			}
			pending[obj] = id.Pos()
		}
	}
}

func clearUses(info *types.Info, n ast.Node, pending map[types.Object]token.Pos) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				delete(pending, obj)
			}
		}
		return true
	})
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func calleeName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return types.ExprString(sel)
	}
	return types.ExprString(call.Fun)
}
