package errlost_test

import (
	"testing"

	"efdedup/lint/analysistest"
	"efdedup/lint/analyzers/errlost"
)

func TestErrLost(t *testing.T) {
	analysistest.Run(t, errlost.Analyzer, "efdedup/internal/kvstore", "other")
}
