// Package kvstore mirrors the real index package's sentinel surface:
// ErrNoQuorum and PartialWriteError are the two tracked sentinels, and
// this import-path suffix is a transport boundary.
package kvstore

import (
	"errors"
	"fmt"
)

// ErrNoQuorum is the tracked quorum sentinel.
var ErrNoQuorum = errors.New("kvstore: no quorum")

// PartialWriteError is the tracked partial-write sentinel type.
type PartialWriteError struct{ Failed int }

func (e *PartialWriteError) Error() string { return "kvstore: partial write" }

// QuorumWrite wraps ErrNoQuorum with %w.
func QuorumWrite() error {
	return fmt.Errorf("write: %w", ErrNoQuorum)
}

// Partial constructs the sentinel type directly.
func Partial() error {
	return &PartialWriteError{Failed: 1}
}

// Outer forwards QuorumWrite's error, so the sentinel propagates
// through its summary.
func Outer() error {
	if err := QuorumWrite(); err != nil {
		return err
	}
	return nil
}

// Plain returns an error that carries no sentinel.
func Plain() error {
	return errors.New("plain")
}

func discardDirect() {
	_ = QuorumWrite() // want `error discarded may carry kvstore\.ErrNoQuorum \(wrapped in kvstore\.QuorumWrite\)`
}

func discardTransitive() {
	_ = Outer() // want `error discarded may carry kvstore\.ErrNoQuorum \(wrapped in kvstore\.Outer → kvstore\.QuorumWrite\)`
}

func discardPartial() {
	_ = Partial() // want `error discarded may carry kvstore\.PartialWriteError`
}

func dropStatement() {
	QuorumWrite() // want `error dropped may carry kvstore\.ErrNoQuorum`
}

func loseInGo() {
	go QuorumWrite() // want `error lost in go statement may carry kvstore\.ErrNoQuorum`
}

func loseInDefer() {
	defer QuorumWrite() // want `error lost in deferred call may carry kvstore\.ErrNoQuorum`
}

// In a transport-boundary package even a sentinel-free internal error
// must not be blanked away.
func discardPlain() {
	_ = Plain() // want `error from Plain discarded with _ in a transport-boundary package`
}

// Lookup returns a value plus a sentinel-carrying error.
func Lookup() (int, error) {
	return 0, fmt.Errorf("lookup: %w", ErrNoQuorum)
}

func discardSecondResult() {
	v, _ := Lookup() // want `error discarded may carry kvstore\.ErrNoQuorum`
	_ = v
}

func overwritten() error {
	err := Plain()
	err = QuorumWrite() // want `err overwritten before use: error assigned at line \d+ was never checked`
	return err
}

// checkedBetween uses the first error before reassigning: silent.
func checkedBetween() error {
	err := Plain()
	if err != nil {
		return err
	}
	err = QuorumWrite()
	return err
}

// handled errors are silent everywhere.
func handled() error {
	if err := QuorumWrite(); err != nil {
		return fmt.Errorf("flush: %w", err)
	}
	return nil
}

// A reasoned directive on the discard line suppresses the finding.
func ignored() {
	//lint:ignore errlost best-effort cache warm-up; a miss only costs a future re-upload
	_ = QuorumWrite()
}
