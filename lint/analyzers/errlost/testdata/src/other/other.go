// Package other is not a transport boundary: only sentinel-carrying
// discards are reported here.
package other

import "efdedup/internal/kvstore"

func use() {
	_ = kvstore.QuorumWrite() // want `error discarded may carry kvstore\.ErrNoQuorum`
	_ = kvstore.Partial()     // want `error discarded may carry kvstore\.PartialWriteError`
	_ = localPlain()          // silent: no sentinel, not a boundary package
}

func localPlain() error { return nil }
