// Package lockorder detects potential deadlocks: it builds the
// module-wide mutex acquisition-order graph from the interprocedural
// summaries (lock B acquired while lock A is held, directly or through
// any chain of synchronous calls) and reports every cycle with its full
// acquisition chain. A cycle means two executions can acquire the same
// mutexes in opposite orders and block each other forever — the classic
// distributed-index deadlock the D2-ring KV store and gossip membership
// must never reintroduce.
//
// Only mutexes with a stable module-wide identity participate:
// struct-field mutexes ("(kvstore.Cluster).mu") and package-level
// mutexes ("transport.connMu"). Function-local mutexes cannot deadlock
// across call chains and are ignored. A self-edge — re-acquiring a
// mutex already held — is reported as an immediate self-deadlock.
//
// Each cycle is reported once for the whole module, anchored at its
// lexically smallest acquisition site.
package lockorder

import (
	"fmt"
	"strings"

	"efdedup/lint/analysis"
	"efdedup/lint/internal/summary"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "report mutex acquisition-order cycles (potential deadlocks) across the whole module",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	sums := pass.Summaries
	if sums == nil {
		return nil
	}
	for _, cyc := range sums.LockOrder().Cycles() {
		// Anchor the module-wide cycle at its lexically smallest edge
		// site and report it only from the pass that owns that file, so
		// a cycle spanning packages appears exactly once.
		anchor := cyc.Sites[0]
		for _, site := range cyc.Sites[1:] {
			if site.Pos < anchor.Pos {
				anchor = site
			}
		}
		if !pass.InFiles(anchor.Pos) {
			continue
		}
		if len(cyc.Locks) == 1 {
			pass.Reportf(anchor.Pos, "self-deadlock: %s acquired while already held in %s",
				cyc.Locks[0], anchor.Func)
			continue
		}
		pass.Reportf(anchor.Pos, "potential deadlock: lock-order cycle %s → %s; %s",
			strings.Join(cyc.Locks, " → "), cyc.Locks[0], chain(sums, cyc))
	}
	return nil
}

// chain renders every edge of the cycle with its acquisition site:
// "(a.T).mu held when (b.U).mu acquired in F [via g] (f.go:12); ...".
func chain(sums *summary.Set, cyc summary.Cycle) string {
	parts := make([]string, 0, len(cyc.Sites))
	for i, site := range cyc.Sites {
		outer := cyc.Locks[i]
		inner := cyc.Locks[(i+1)%len(cyc.Locks)]
		via := ""
		if site.Via != "" {
			via = fmt.Sprintf(" via call to %s", site.Via)
		}
		parts = append(parts, fmt.Sprintf("%s held when %s acquired in %s%s (%s)",
			outer, inner, site.Func, via, sums.FmtPos(site.Pos)))
	}
	return strings.Join(parts, "; ")
}
