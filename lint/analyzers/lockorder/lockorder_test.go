package lockorder_test

import (
	"testing"

	"efdedup/lint/analysistest"
	"efdedup/lint/analyzers/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "locks")
}

// TestCrossPackage proves a cycle spanning two packages is found via
// cross-package summaries and reported exactly once, in the package
// holding the lexically smallest acquisition site.
func TestCrossPackage(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "cyc/a", "cyc/b")
}
