// Package locks exercises the module-wide lock-order cycle detection.
package locks

import "sync"

// Registry and Journal are locked in opposite orders by flush and
// record: a two-lock cycle.
type Registry struct {
	mu      sync.Mutex
	entries map[string]int
}

type Journal struct {
	mu   sync.Mutex
	rows []string
}

var (
	reg Registry
	jrn Journal
)

func flush() {
	reg.mu.Lock()
	jrn.mu.Lock() // want `potential deadlock: lock-order cycle \(locks\.Journal\)\.mu → \(locks\.Registry\)\.mu → \(locks\.Journal\)\.mu`
	jrn.rows = nil
	jrn.mu.Unlock()
	reg.mu.Unlock()
}

func record() {
	jrn.mu.Lock()
	reg.mu.Lock()
	reg.entries = nil
	reg.mu.Unlock()
	jrn.mu.Unlock()
}

// Three-mutex cycle, one edge per function, with the closing edge
// acquired through a callee: L1 → L2 → L3 → L1.
type L1 struct{ mu sync.Mutex }

type L2 struct{ mu sync.Mutex }

type L3 struct{ mu sync.Mutex }

var (
	l1 L1
	l2 L2
	l3 L3
)

func step12() {
	l1.mu.Lock()
	defer l1.mu.Unlock()
	l2.mu.Lock() // want `potential deadlock: lock-order cycle \(locks\.L1\)\.mu → \(locks\.L2\)\.mu → \(locks\.L3\)\.mu → \(locks\.L1\)\.mu; \(locks\.L1\)\.mu held when \(locks\.L2\)\.mu acquired in locks\.step12 .*; \(locks\.L2\)\.mu held when \(locks\.L3\)\.mu acquired in locks\.step23 .*; \(locks\.L3\)\.mu held when \(locks\.L1\)\.mu acquired in locks\.step31 via call to lockL1`
	defer l2.mu.Unlock()
}

func step23() {
	l2.mu.Lock()
	defer l2.mu.Unlock()
	l3.mu.Lock()
	defer l3.mu.Unlock()
}

// step31 closes the cycle interprocedurally: L1 is acquired inside a
// callee while L3 is held.
func step31() {
	l3.mu.Lock()
	defer l3.mu.Unlock()
	lockL1()
}

func lockL1() {
	l1.mu.Lock()
	defer l1.mu.Unlock()
}

// Re-acquiring a held mutex is an immediate self-deadlock.
func relock() {
	reg.mu.Lock()
	reg.mu.Lock() // want `self-deadlock: \(locks\.Registry\)\.mu acquired while already held in locks\.relock`
	reg.mu.Unlock()
	reg.mu.Unlock()
}

// Consistent ordering is fine: Hierarchy always takes outer before
// inner, in every function.
type Hierarchy struct {
	outer sync.Mutex
	inner sync.Mutex
}

var h Hierarchy

func consistentA() {
	h.outer.Lock()
	h.inner.Lock()
	h.inner.Unlock()
	h.outer.Unlock()
}

func consistentB() {
	h.outer.Lock()
	defer h.outer.Unlock()
	h.inner.Lock()
	defer h.inner.Unlock()
}

// Sequential (non-nested) acquisition in any order is fine.
func sequential() {
	jrn.mu.Lock()
	jrn.mu.Unlock()
	reg.mu.Lock()
	reg.mu.Unlock()
}

// Local mutexes have no module-wide identity and never form cycles.
func locals() {
	var a, b sync.Mutex
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
	b.Lock()
	a.Lock()
	a.Unlock()
	b.Unlock()
}
