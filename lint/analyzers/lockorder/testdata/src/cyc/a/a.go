// Package a closes a lock-order cycle whose locks live in two
// packages: the edge to b.Mu goes through a callee defined in package
// b, so detecting it needs cross-package summaries.
package a

import (
	"sync"

	"cyc/b"
)

type Front struct{ mu sync.Mutex }

var f Front

// AcquireBoth holds Front's mutex while a callee in package b acquires
// b.Mu: edge (a.Front).mu → b.Mu.
func AcquireBoth() {
	f.mu.Lock()
	b.LockMu() // want `potential deadlock: lock-order cycle \(a\.Front\)\.mu → b\.Mu → \(a\.Front\)\.mu; \(a\.Front\)\.mu held when b\.Mu acquired in a\.AcquireBoth via call to b\.LockMu .*; b\.Mu held when \(a\.Front\)\.mu acquired in a\.AcquireReverse`
	f.mu.Unlock()
}

// AcquireReverse holds b.Mu while taking Front's mutex: the reverse
// edge b.Mu → (a.Front).mu.
func AcquireReverse() {
	b.Mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	b.Mu.Unlock()
}
