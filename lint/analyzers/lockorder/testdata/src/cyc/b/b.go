// Package b owns one lock of a cross-package lock-order cycle. The
// cycle's anchor site lives in package a, so this package must stay
// free of diagnostics.
package b

import "sync"

// Mu is a package-level mutex; its module-wide identity is "b.Mu".
var Mu sync.Mutex

// LockMu acquires and releases Mu; callers holding other locks create
// acquisition-order edges through this function's summary.
func LockMu() {
	Mu.Lock()
	defer Mu.Unlock()
}
