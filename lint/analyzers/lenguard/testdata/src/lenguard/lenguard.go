// Fixtures for the lenguard analyzer: handler-reachable decoders must
// bounds-check before fixed-width reads, must not narrow length
// comparisons below 64 bits against wire-controlled values, and must
// surface malformed input as an error.
package lenguard

import (
	"encoding/binary"
	"errors"

	"transport"
)

var errProto = errors.New("proto")

var table = map[uint64]bool{}

func register(s *transport.Server) {
	s.Handle("len.naked", handleNaked)
	s.Handle("len.guarded", handleGuarded)
	s.Handle("len.shifted", handleShifted)
	s.Handle("len.narrow", handleNarrow)
	s.Handle("len.merge", handleMerge)
	s.Handle("len.loop", handleLoop)
	s.Handle("len.exact", handleExact)
}

// --- positives -------------------------------------------------------

// The plain panic: no length check at all before an 8-byte read.
func handleNaked(body []byte) ([]byte, error) {
	v := binary.BigEndian.Uint64(body) // want `needs at least 8 byte\(s\) but only 0 are guaranteed`
	table[v] = true
	return nil, nil
}

// A reslice consumes the guarantee: 8 checked, 4 consumed, 8 more read.
func handleShifted(body []byte) ([]byte, error) {
	if len(body) < 8 {
		return nil, errProto
	}
	a := binary.BigEndian.Uint32(body)
	body = body[4:]
	b := binary.BigEndian.Uint64(body) // want `needs at least 8 byte\(s\) but only 4 are guaranteed`
	_ = a
	table[b] = true
	return nil, nil
}

// Narrow guard arithmetic wraps: uint32(len)+n overflows for hostile n.
func handleNarrow(body []byte) ([]byte, error) {
	return nil, decodeNarrow(body)
}

func decodeNarrow(src []byte) error {
	if len(src) < 4 {
		return errProto
	}
	n := binary.BigEndian.Uint32(src)
	if uint32(len(src)) < n+4 { // want `32-bit uint\(len\(\.\.\.\)\) against a value from the wire`
		return errProto
	}
	_ = src[4:]
	return nil
}

// No error result: truncated input is silently swallowed.
func handleMerge(body []byte) ([]byte, error) {
	mergeTable(body)
	return nil, nil
}

func mergeTable(src []byte) {
	if len(src) < 8 { // want `mergeTable drops malformed input silently`
		return
	}
	table[binary.BigEndian.Uint64(src)] = true
}

// --- negatives -------------------------------------------------------

// Fully guarded fixed reads.
func handleGuarded(body []byte) ([]byte, error) {
	if len(body) < 12 {
		return nil, errProto
	}
	a := binary.BigEndian.Uint32(body)
	b := binary.BigEndian.Uint64(body[4:])
	table[uint64(a)] = true
	table[b] = true
	return nil, nil
}

// A per-iteration guard re-establishes the guarantee after each
// variable-length consume; 64-bit comparison vs a wire value is fine.
func handleLoop(body []byte) ([]byte, error) {
	if len(body) < 4 {
		return nil, errProto
	}
	count := binary.BigEndian.Uint32(body)
	body = body[4:]
	for i := uint32(0); i < count; i++ {
		if len(body) < 12 {
			return nil, errProto
		}
		n := binary.BigEndian.Uint32(body)
		if uint64(len(body)) < 12+uint64(n) {
			return nil, errProto
		}
		table[binary.BigEndian.Uint64(body[4:])] = true
		body = body[12:]
		body = body[n:]
	}
	return nil, nil
}

// Equality pins the exact size.
func handleExact(body []byte) ([]byte, error) {
	if len(body) != 8 {
		return nil, errProto
	}
	table[binary.BigEndian.Uint64(body)] = true
	return nil, nil
}

// Not reachable from any registered handler: out of scope even though
// the name and signature match.
func decodeUnreachable(src []byte) uint64 {
	return binary.BigEndian.Uint64(src)
}
