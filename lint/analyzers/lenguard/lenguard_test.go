package lenguard_test

import (
	"testing"

	"efdedup/lint/analysistest"
	"efdedup/lint/analyzers/lenguard"
)

func TestLenguard(t *testing.T) {
	analysistest.Run(t, lenguard.Analyzer, "lenguard")
}
