// Package lenguard hardens the decode side of the wire protocol: any
// function that parses a []byte reachable from a transport handler must
// never trust the input's length. Three classes of finding:
//
//   - Unguarded reads (path-sensitive, via the dataflow solver): a
//     fixed-width read of the input — src[i], src[:k],
//     binary.BigEndian.UintN(src) — must be dominated on every path by
//     a remaining-length check guaranteeing that many bytes. A
//     reslice src = src[k:] consumes k bytes of the guarantee; a path
//     that joins a weaker guarantee keeps only the minimum. Malformed
//     input must surface as an error, not an index-out-of-range panic.
//
//   - Overflowing length comparisons: guarding with sub-64-bit
//     arithmetic (uint32(len(src)) < n+8) wraps around on adversarial
//     values, letting a hostile length through the guard and into a
//     panicking slice expression. Compare in 64 bits.
//
//   - Silent truncation: a decoder with no error result that bails out
//     of a length guard with a bare return swallows malformed input
//     entirely — the caller can't distinguish "applied" from
//     "dropped". Decoders must return an error wrapping ErrProto.
//
// Scope: functions with a []byte parameter whose name marks them as
// protocol surface (decode*/read*/parse*/unmarshal*/merge*/handle*)
// and that are reachable from a registered RPC handler per the call
// graph, plus everything in the transport package itself. Helpers only
// ever fed trusted, locally-built buffers stay out of scope.
package lenguard

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"efdedup/lint/analysis"
	"efdedup/lint/internal/cfg"
	"efdedup/lint/internal/dataflow"
	"efdedup/lint/internal/summary"
	"efdedup/lint/internal/wire"
)

// Analyzer detects decoder reads not dominated by length checks.
var Analyzer = &analysis.Analyzer{
	Name: "lenguard",
	Doc:  "handler-reachable decoders must bounds-check before reading and must error on malformed input",
	Run:  run,
}

var scopePrefixes = []string{"decode", "read", "parse", "unmarshal", "merge", "handle"}

func run(pass *analysis.Pass) error {
	ix := pass.Wire
	if ix == nil || pass.Summaries == nil || pass.CFGs == nil {
		return nil
	}
	var roots []string
	seen := make(map[string]bool)
	for _, s := range ix.Sites {
		if s.Kind == wire.Registration && s.HandlerID != "" && !seen[s.HandlerID] {
			seen[s.HandlerID] = true
			roots = append(roots, s.HandlerID)
		}
	}
	reach := pass.Summaries.ReachableFrom(roots, summary.ReachOptions{FollowAsync: true, FollowRefs: true})
	inTransport := pass.Pkg.Name() == "transport"
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !nameInScope(fd.Name.Name) {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			param := byteSliceParam(pass, fd)
			if param == nil {
				continue
			}
			if !inTransport && reach.Path(fn.FullName()) == nil {
				continue
			}
			checkOverflow(pass, fd)
			checkSilentDrop(pass, fd, fn)
			checkBounds(pass, fd, param)
		}
	}
	return nil
}

func nameInScope(name string) bool {
	lower := strings.ToLower(name)
	for _, p := range scopePrefixes {
		if strings.HasPrefix(lower, p) {
			return true
		}
	}
	return false
}

// byteSliceParam returns the object of the first []byte parameter.
func byteSliceParam(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && isByteSlice(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// ---------------------------------------------------------------------
// Overflowing length comparisons
// ---------------------------------------------------------------------

// checkOverflow flags comparisons where len() of a byte slice is
// narrowed below 64 bits against a non-constant bound: the narrowing
// (or the narrow arithmetic it forces on the other side) wraps on
// adversarial input, defeating the guard.
func checkOverflow(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || !isComparison(be.Op) {
			return true
		}
		for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
			lenSide, other := pair[0], pair[1]
			bits := narrowLenConversion(pass, lenSide)
			if bits == 0 {
				continue
			}
			if tv, ok := pass.TypesInfo.Types[other]; ok && tv.Value != nil {
				continue // constant bound: wrong only for >4GiB inputs, not attacker-controlled
			}
			pass.Reportf(be.Pos(), "length guard compares %d-bit uint(len(...)) against a value from the wire: the narrow arithmetic wraps on adversarial input; compare with uint64 and return an error wrapping ErrProto", bits)
			return true
		}
		return true
	})
}

func isComparison(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

// narrowLenConversion reports the width of a sub-64-bit unsigned
// conversion whose operand involves len() of a byte slice, or 0.
func narrowLenConversion(pass *analysis.Pass, e ast.Expr) int {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return 0
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return 0
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return 0
	}
	var bits int
	switch b.Kind() {
	case types.Uint8:
		bits = 8
	case types.Uint16:
		bits = 16
	case types.Uint32:
		bits = 32
	default:
		return 0
	}
	if !mentionsByteLen(pass, call.Args[0]) {
		return 0
	}
	return bits
}

// mentionsByteLen reports whether e contains len(<byte slice>).
func mentionsByteLen(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "len" {
			if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin {
				if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && isByteSlice(tv.Type) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// ---------------------------------------------------------------------
// Silent truncation
// ---------------------------------------------------------------------

// checkSilentDrop flags length guards that bail out of an error-less
// decoder with a bare return: the malformed input vanishes.
func checkSilentDrop(pass *analysis.Pass, fd *ast.FuncDecl, fn *types.Func) {
	if returnsError(fn) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if !isLenComparison(pass, ifs.Cond) {
			return true
		}
		for _, s := range ifs.Body.List {
			if _, isRet := s.(*ast.ReturnStmt); isRet {
				pass.Reportf(ifs.Pos(), "%s drops malformed input silently: this length guard returns without an error and the function has no error result; return an error wrapping ErrProto so callers see the truncation", fd.Name.Name)
				return true
			}
		}
		return true
	})
}

func returnsError(fn *types.Func) bool {
	res := fn.Type().(*types.Signature).Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return true
		}
	}
	return false
}

// isLenComparison reports whether cond (possibly under !/&&/||)
// compares len of a byte slice against something.
func isLenComparison(pass *analysis.Pass, cond ast.Expr) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return isLenComparison(pass, e.X)
		}
	case *ast.BinaryExpr:
		if e.Op == token.LAND || e.Op == token.LOR {
			return isLenComparison(pass, e.X) || isLenComparison(pass, e.Y)
		}
		switch e.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			return mentionsByteLen(pass, e.X) || mentionsByteLen(pass, e.Y)
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Path-sensitive bounds checking
// ---------------------------------------------------------------------

// state is the dataflow fact: the guaranteed minimum of len(param) on
// this path. tracked goes false when the parameter is reassigned to
// something other than a reslice of itself — past that point reads are
// not the original input and stay unchecked.
type state struct {
	reached bool
	tracked bool
	bound   int64
}

func checkBounds(pass *analysis.Pass, fd *ast.FuncDecl, param types.Object) {
	g := pass.CFGs.For(fd)
	c := &boundsChecker{pass: pass, param: param}
	res := dataflow.Solve(g, dataflow.Analysis[state]{
		Dir:      dataflow.Forward,
		Bottom:   func() state { return state{} },
		Boundary: func() state { return state{reached: true, tracked: true} },
		Join: func(a, b state) state {
			if !a.reached {
				return b
			}
			if !b.reached {
				return a
			}
			bound := a.bound
			if b.bound < bound {
				bound = b.bound
			}
			return state{reached: true, tracked: a.tracked && b.tracked, bound: bound}
		},
		Equal: func(a, b state) bool { return a == b },
		Transfer: func(b *cfg.Block, in state) state {
			return c.transfer(b, in, false)
		},
		FlowEdge: c.refine,
	})
	// Replay each block from its fixed-point entry fact, this time
	// reporting reads that outrun the guarantee.
	c.reported = make(map[token.Pos]bool)
	for _, b := range g.Blocks {
		c.transfer(b, res.In[b], true)
	}
}

type boundsChecker struct {
	pass     *analysis.Pass
	param    types.Object
	reported map[token.Pos]bool
}

// transfer interprets one block. With report set it also flags reads
// whose requirement exceeds the current guarantee.
func (c *boundsChecker) transfer(b *cfg.Block, in state, report bool) state {
	st := in
	if !st.reached {
		return st
	}
	for _, n := range b.Nodes {
		if st.tracked && report {
			c.checkReads(n, st.bound)
		}
		st = c.effect(n, st)
	}
	return st
}

// effect applies a node's change to the guarantee.
func (c *boundsChecker) effect(n ast.Node, st state) state {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return st
	}
	for i, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || c.pass.ObjectOf(id) != c.param {
			continue
		}
		// param = param[k:] consumes k bytes of the guarantee; any
		// other assignment makes the variable something else.
		if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if sl, ok := ast.Unparen(as.Rhs[0]).(*ast.SliceExpr); ok && c.isParam(sl.X) && sl.High == nil && sl.Slice3 == false {
				if k, ok := c.intConst(sl.Low); ok {
					st.bound -= k
					if st.bound < 0 {
						st.bound = 0
					}
				} else {
					st.bound = 0
				}
				return st
			}
		}
		_ = i
		st.tracked = false
		st.bound = 0
	}
	return st
}

// checkReads flags fixed-requirement reads of param exceeding bound.
// Short-circuit operators refine the bound mid-expression: in
// `len(p) < 10 || p[0] != x` the index read only executes once the
// length check has passed.
func (c *boundsChecker) checkReads(n ast.Node, bound int64) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.BinaryExpr:
			if e.Op == token.LAND || e.Op == token.LOR {
				c.checkReads(e.X, bound)
				c.checkReads(e.Y, c.refineCond(e.X, e.Op == token.LAND, bound))
				return false
			}
		case *ast.CallExpr:
			// Skip len(param)/cap(param) — not reads.
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if _, isBuiltin := c.pass.ObjectOf(id).(*types.Builtin); isBuiltin {
					return false
				}
			}
			if need, pos, ok := c.binaryReadNeed(e); ok {
				c.flag(pos, need, bound)
				return false
			}
		case *ast.IndexExpr:
			if c.isParam(e.X) {
				if i, ok := c.intConst(e.Index); ok {
					c.flag(e.Pos(), i+1, bound)
				}
			}
		case *ast.SliceExpr:
			if c.isParam(e.X) {
				if e.High != nil {
					if hi, ok := c.intConst(e.High); ok {
						c.flag(e.Pos(), hi, bound)
						return true
					}
				}
				if e.Low != nil {
					if lo, ok := c.intConst(e.Low); ok {
						c.flag(e.Pos(), lo, bound)
					}
				}
			}
		}
		return true
	})
}

// binaryReadNeed recognizes binary.BigEndian/LittleEndian.UintN(param)
// and UintN(param[lo:]) reads, returning the byte requirement.
func (c *boundsChecker) binaryReadNeed(call *ast.CallExpr) (int64, token.Pos, bool) {
	fn, ok := c.pass.CalleeObject(call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" || len(call.Args) == 0 {
		return 0, token.NoPos, false
	}
	var width int64
	switch fn.Name() {
	case "Uint16":
		width = 2
	case "Uint32":
		width = 4
	case "Uint64":
		width = 8
	default:
		return 0, token.NoPos, false
	}
	arg := ast.Unparen(call.Args[0])
	if c.isParam(arg) {
		return width, call.Pos(), true
	}
	if sl, ok := arg.(*ast.SliceExpr); ok && c.isParam(sl.X) && sl.High == nil {
		if sl.Low == nil {
			return width, call.Pos(), true
		}
		if lo, ok := c.intConst(sl.Low); ok {
			return lo + width, call.Pos(), true
		}
	}
	return 0, token.NoPos, false
}

func (c *boundsChecker) flag(pos token.Pos, need, bound int64) {
	if need <= bound || c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, "read of %s needs at least %d byte(s) but only %d are guaranteed by length checks on this path; guard the remaining length and return an error wrapping ErrProto", c.param.Name(), need, bound)
}

func (c *boundsChecker) isParam(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && c.pass.ObjectOf(id) == c.param
}

func (c *boundsChecker) intConst(e ast.Expr) (int64, bool) {
	if e == nil {
		return 0, false
	}
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(v)
}

// refine tightens the guarantee across a branch edge using the branch
// condition: the false arm of `if len(src) < 8` guarantees 8 bytes.
func (c *boundsChecker) refine(e *cfg.Edge, f state) state {
	if !f.reached || e.Cond == nil {
		return f
	}
	f.bound = c.refineCond(e.Cond, !e.Negate, f.bound)
	return f
}

func (c *boundsChecker) refineCond(cond ast.Expr, taken bool, bound int64) int64 {
	switch e := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return c.refineCond(e.X, !taken, bound)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if taken { // both conjuncts hold
				return c.refineCond(e.Y, true, c.refineCond(e.X, true, bound))
			}
		case token.LOR:
			if !taken { // both disjuncts fail
				return c.refineCond(e.Y, false, c.refineCond(e.X, false, bound))
			}
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			if lower, ok := c.lowerBoundFrom(e, taken); ok && lower > bound {
				return lower
			}
		}
	}
	return bound
}

// lowerBoundFrom extracts a lower bound on len(param) from a
// comparison known to be true (taken) or false.
func (c *boundsChecker) lowerBoundFrom(e *ast.BinaryExpr, taken bool) (int64, bool) {
	op := e.Op
	lenC, lhsIsLen := c.lenTerm(e.X)
	other := e.Y
	if !lhsIsLen {
		lenC, lhsIsLen = c.lenTerm(e.Y)
		if !lhsIsLen {
			return 0, false
		}
		other = e.X
		// Mirror: K op len → len (reverse op) K.
		switch op {
		case token.LSS:
			op = token.GTR
		case token.LEQ:
			op = token.GEQ
		case token.GTR:
			op = token.LSS
		case token.GEQ:
			op = token.LEQ
		}
	}
	k, ok := c.intConst(other)
	if !ok {
		return 0, false
	}
	// The comparison is (len(param) + lenC) op k. Normalize the known
	// outcome to a lower bound on len(param).
	if !taken {
		switch op {
		case token.LSS:
			op, taken = token.GEQ, true
		case token.LEQ:
			op, taken = token.GTR, true
		case token.GTR:
			op, taken = token.LEQ, true
		case token.GEQ:
			op, taken = token.LSS, true
		case token.EQL:
			op, taken = token.NEQ, true
		case token.NEQ:
			op, taken = token.EQL, true
		}
	}
	switch op {
	case token.GEQ: // len + c >= k
		return k - lenC, true
	case token.GTR: // len + c > k
		return k - lenC + 1, true
	case token.EQL: // len + c == k
		return k - lenC, true
	case token.NEQ: // len + c != k: only useful against zero
		if k-lenC == 0 {
			return 1, true
		}
	}
	return 0, false
}

// lenTerm recognizes len(param) possibly offset by a constant and
// wrapped in integer conversions: len(p), uint32(len(p)),
// uint64(len(p)-4), len(p)+8. Returns the constant offset c such that
// the term equals len(param)+c.
func (c *boundsChecker) lenTerm(e ast.Expr) (int64, bool) {
	e = ast.Unparen(e)
	// Peel conversions.
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return c.lenTerm(call.Args[0])
		}
	}
	if be, ok := e.(*ast.BinaryExpr); ok && (be.Op == token.ADD || be.Op == token.SUB) {
		if off, ok := c.lenTermBase(be.X); ok {
			if k, kok := c.intConst(be.Y); kok {
				if be.Op == token.SUB {
					k = -k
				}
				return off + k, true
			}
			return 0, false
		}
		if be.Op == token.ADD {
			if off, ok := c.lenTermBase(be.Y); ok {
				if k, kok := c.intConst(be.X); kok {
					return off + k, true
				}
			}
		}
		return 0, false
	}
	return c.lenTermBase(e)
}

// lenTermBase recognizes a bare (possibly converted) len(param) call.
func (c *boundsChecker) lenTermBase(e ast.Expr) (int64, bool) {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return c.lenTermBase(call.Args[0])
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "len" {
			if _, isBuiltin := c.pass.ObjectOf(id).(*types.Builtin); isBuiltin && c.isParam(call.Args[0]) {
				return 0, true
			}
		}
	}
	return 0, false
}
