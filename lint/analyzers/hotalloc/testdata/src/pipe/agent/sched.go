// sched.go pins the shared-scheduler dispatch shape: popping jobs off
// per-stream queues is on the per-chunk budget (every hashed chunk
// passes through it), so building per-job labels, state maps, or
// regrowing an unsized backlog inside the dispatch loop is exactly the
// churn the analyzer exists to catch.
package agent

import "fmt"

type schedJob struct{ payload []byte }

type schedSlot struct {
	queue []schedJob
	name  string
}

type sched struct {
	ready   []*schedSlot
	backlog []schedJob
}

// dispatch is reachable from the ProcessStream root; its loop runs once
// per queued chunk.
func (a *Agent) dispatch(s *sched) {
	for len(s.ready) > 0 {
		slot := s.ready[0]
		s.ready = s.ready[1:]
		job := slot.queue[0]
		slot.queue = slot.queue[1:]
		tag := fmt.Sprintf("%s-%d", slot.name, len(slot.queue)) // want `fmt\.Sprintf allocates per iteration`
		state := map[string]bool{tag: true}                     // want `map literal allocated per iteration`
		_ = state
		s.backlog = append(s.backlog, job)
		if len(slot.queue) > 0 {
			s.ready = append(s.ready, slot)
		}
	}
}

// drain shows the approved shape for the same work: identity tags are
// integers, per-job state lives in reused fields, and the ready list is
// recycled in place — nothing allocates per iteration.
func (a *Agent) drain(s *sched) {
	for len(s.ready) > 0 {
		slot := s.ready[0]
		s.ready[0] = nil
		s.ready = s.ready[1:]
		job := slot.queue[0]
		slot.queue = slot.queue[1:]
		_ = job
		if len(slot.queue) > 0 {
			s.ready = append(s.ready, slot)
		}
	}
}
