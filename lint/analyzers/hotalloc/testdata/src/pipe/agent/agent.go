// Package agent exercises hot-path allocation detection: ProcessStream
// is a pipeline root, and everything it reaches — synchronously, via
// goroutines, or not at all — bounds where loop allocations matter.
package agent

import "fmt"

type Agent struct {
	names []string
	seen  map[string]bool
}

// ProcessStream is a pipeline root.
func (a *Agent) ProcessStream(data [][]byte) {
	a.register(data)
	a.index(data)
	a.sized(data)
	_ = a.label(0)
	go a.flush(data)
}

func (a *Agent) register(batches [][]byte) {
	for _, b := range batches {
		key := string(b) // want `string\(\[\]byte\) conversion copies per iteration`
		a.seen[key] = true
	}
}

// flush runs in a goroutine but still burns per-chunk budget: async
// edges are followed.
func (a *Agent) flush(batches [][]byte) {
	for i := range batches {
		a.names = append(a.names, fmt.Sprintf("batch-%d", i)) // want `fmt\.Sprintf allocates per iteration`
	}
}

func (a *Agent) index(batches [][]byte) {
	var ids []string
	for _, b := range batches {
		m := make(map[string]int) // want `map allocated per iteration`
		m["n"] = len(b)
		ids = append(ids, "x") // want `append grows an unsized slice per iteration`
	}
	_ = ids
}

// sized shows the approved shapes: preallocated capacity, and slices
// scoped to one iteration.
func (a *Agent) sized(batches [][]byte) {
	out := make([]string, 0, len(batches))
	for range batches {
		tmp := []int{}
		tmp = append(tmp, 1)
		out = append(out, "x")
		_ = tmp
	}
	_ = out
}

// label allocates, but outside any loop: silent even on the hot path.
func (a *Agent) label(i int) string {
	return fmt.Sprintf("agent-%d", i)
}

// orphan is unreachable from every pipeline root: its loop may
// allocate freely.
func orphan(batches [][]byte) {
	for _, b := range batches {
		_ = fmt.Sprintf("%d", len(b))
		_ = string(b)
	}
}
