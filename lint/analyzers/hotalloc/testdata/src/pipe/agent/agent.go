// Package agent exercises hot-path allocation detection: ProcessStream
// is a pipeline root, and everything it reaches — synchronously, via
// goroutines, or not at all — bounds where loop allocations matter.
package agent

import "fmt"

type Agent struct {
	names []string
	seen  map[string]bool
}

// ProcessStream is a pipeline root.
func (a *Agent) ProcessStream(data [][]byte) {
	a.register(data)
	a.index(data)
	a.sized(data)
	_ = a.label(0)
	go a.flush(data)
	a.trace(data)
	a.viaInterface(data)
	a.dispatch(&sched{})
	a.drain(&sched{})
}

type flusher interface {
	flushAll([][]byte)
	resetAll()
}

type baseFlusher struct{ lines []string }

func (b *baseFlusher) flushAll(batches [][]byte) {
	for i := range batches {
		b.lines = append(b.lines, fmt.Sprintf("flush-%d", i)) // want `fmt\.Sprintf allocates per iteration`
	}
}

type resetter struct{}

func (resetter) resetAll() {}

// embedFlusher implements flusher only through its embedded parts, so
// reaching flushAll requires the interface fallback to follow promoted
// methods.
type embedFlusher struct {
	*baseFlusher
	resetter
}

func (a *Agent) viaInterface(batches [][]byte) {
	var f flusher = embedFlusher{baseFlusher: &baseFlusher{}}
	f.flushAll(batches)
}

// trace: the directive above a multi-line statement covers every line
// of it, including the Sprintf on the continuation line.
func (a *Agent) trace(batches [][]byte) {
	for i := range batches {
		//lint:ignore hotalloc trace lines are formatted per batch by design
		a.names = append(a.names,
			fmt.Sprintf("trace-%d", i),
		)
	}
}

func (a *Agent) register(batches [][]byte) {
	for _, b := range batches {
		key := string(b) // want `string\(\[\]byte\) conversion copies per iteration`
		a.seen[key] = true
	}
}

// flush runs in a goroutine but still burns per-chunk budget: async
// edges are followed.
func (a *Agent) flush(batches [][]byte) {
	for i := range batches {
		a.names = append(a.names, fmt.Sprintf("batch-%d", i)) // want `fmt\.Sprintf allocates per iteration`
	}
}

func (a *Agent) index(batches [][]byte) {
	var ids []string
	for _, b := range batches {
		m := make(map[string]int) // want `map allocated per iteration`
		m["n"] = len(b)
		ids = append(ids, "x") // want `append grows an unsized slice per iteration`
	}
	_ = ids
}

// sized shows the approved shapes: preallocated capacity, and slices
// scoped to one iteration.
func (a *Agent) sized(batches [][]byte) {
	out := make([]string, 0, len(batches))
	for range batches {
		tmp := []int{}
		tmp = append(tmp, 1)
		out = append(out, "x")
		_ = tmp
	}
	_ = out
}

// label allocates, but outside any loop: silent even on the hot path.
func (a *Agent) label(i int) string {
	return fmt.Sprintf("agent-%d", i)
}

// orphan is unreachable from every pipeline root: its loop may
// allocate freely.
func orphan(batches [][]byte) {
	for _, b := range batches {
		_ = fmt.Sprintf("%d", len(b))
		_ = string(b)
	}
}
