// pool.go exercises the sync.Pool Get/Put pairing rule: a Get in a
// root-reachable loop is only fine when some root-reachable function —
// anywhere in the pipeline — Puts back into the same pool.
package agent

import "sync"

var (
	// leakyPool: Get in a hot loop, no Put anywhere. Every Get is an
	// allocation through New in disguise.
	leakyPool = sync.Pool{New: func() any { return new([64]byte) }}
	// cycledPool: Get in the producer, Put in a helper the pipeline
	// reaches — the canonical recycle shape, silent.
	cycledPool = sync.Pool{New: func() any { return new([64]byte) }}
	// strandedPool: a Put exists, but only in a function no pipeline
	// root reaches, so the hot-loop Get still leaks.
	strandedPool = sync.Pool{New: func() any { return new([64]byte) }}
	// classedPool: an indexed pool array (size-classed arena); element
	// accesses share the array's identity.
	classedPool [4]sync.Pool
)

// ProcessBytes is a pipeline root.
func (a *Agent) ProcessBytes(batches [][]byte) {
	a.leak(batches)
	a.recycle(batches)
	a.strand(batches)
	a.classed(batches)
	_ = grab()
}

func (a *Agent) leak(batches [][]byte) {
	for range batches {
		buf := leakyPool.Get().(*[64]byte) // want `sync\.Pool Get of agent\.leakyPool per iteration but no Put`
		_ = buf
	}
}

func (a *Agent) recycle(batches [][]byte) {
	for range batches {
		buf := cycledPool.Get().(*[64]byte)
		a.release(buf)
	}
}

func (a *Agent) release(buf *[64]byte) { cycledPool.Put(buf) }

func (a *Agent) strand(batches [][]byte) {
	for range batches {
		_ = strandedPool.Get() // want `sync\.Pool Get of agent\.strandedPool per iteration but no Put`
	}
}

// classed Gets from one size class and Puts into another; identity is
// the backing array, so the pair still matches.
func (a *Agent) classed(batches [][]byte) {
	for i := range batches {
		v := classedPool[i%4].Get()
		classedPool[(i+1)%4].Put(v)
	}
}

// grab allocates from the leaky pool outside any loop: one-shot, silent.
func grab() any { return leakyPool.Get() }

// unreachedRelease would balance strandedPool, but nothing on the
// pipeline reaches it.
func unreachedRelease(v any) { strandedPool.Put(v) }
