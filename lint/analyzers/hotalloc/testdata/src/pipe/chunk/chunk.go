// Package chunk exercises the Split pipeline root and reachability
// through function-value references (emit-callback style).
package chunk

type Splitter struct{ out []string }

// Split is a pipeline root; it hands accumulate to forEach as a
// function value, so accumulate is reachable via a ref edge.
func (s *Splitter) Split(data [][]byte) {
	forEach(data, s.accumulate)
	forEach(data, s.scan)
}

func forEach(data [][]byte, f func([]byte)) {
	for _, b := range data {
		f(b)
	}
}

func (s *Splitter) accumulate(b []byte) {
	for i := 0; i < len(b); i++ {
		s.out = append(s.out, string(b[i:])) // want `string\(\[\]byte\) conversion copies per iteration`
	}
}
