// scan.go pins the vectorized-scanner shape: a word-at-a-time gear
// loop does unsafe-free byte loads, shifts and table lookups — none of
// which allocate — so the analyzer must stay silent on it even though
// it is the hottest loop any pipeline root reaches.
package chunk

import "encoding/binary"

var gearTable [256]uint64

// scanWords is the SeqCDC-style inner loop: one 8-byte load per
// iteration, eight unrolled shift-add steps, boundary tests on the
// rolled hash. Reachable from Split via the emit-callback chain.
func scanWords(seg []byte, hash uint64, mask uint64) (int, uint64) {
	i := 0
	for ; i+8 <= len(seg); i += 8 {
		w := binary.LittleEndian.Uint64(seg[i:])
		hash = hash<<1 + gearTable[w&0xff]
		if hash&mask == 0 {
			return i + 1, hash
		}
		hash = hash<<1 + gearTable[w>>8&0xff]
		if hash&mask == 0 {
			return i + 2, hash
		}
		hash = hash<<1 + gearTable[w>>16&0xff]
		if hash&mask == 0 {
			return i + 3, hash
		}
		hash = hash<<1 + gearTable[w>>24&0xff]
		if hash&mask == 0 {
			return i + 4, hash
		}
		hash = hash<<1 + gearTable[w>>32&0xff]
		if hash&mask == 0 {
			return i + 5, hash
		}
		hash = hash<<1 + gearTable[w>>40&0xff]
		if hash&mask == 0 {
			return i + 6, hash
		}
		hash = hash<<1 + gearTable[w>>48&0xff]
		if hash&mask == 0 {
			return i + 7, hash
		}
		hash = hash<<1 + gearTable[w>>56]
		if hash&mask == 0 {
			return i + 8, hash
		}
	}
	// Byte tail: same rolls without the word load. Still allocation-free.
	for ; i < len(seg); i++ {
		hash = hash<<1 + gearTable[seg[i]]
		if hash&mask == 0 {
			return i + 1, hash
		}
	}
	return -1, hash
}

// scan wires scanWords into the Split-reachable callback chain.
func (s *Splitter) scan(b []byte) {
	cut, _ := scanWords(b, 0, 0x1fff)
	_ = cut
}
