package hotalloc_test

import (
	"testing"

	"efdedup/lint/analysistest"
	"efdedup/lint/analyzers/hotalloc"
)

func TestHotAllocAgent(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "pipe/agent")
}

// TestHotAllocChunk covers the Split root and ref-edge reachability of
// emit callbacks.
func TestHotAllocChunk(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "pipe/chunk")
}
