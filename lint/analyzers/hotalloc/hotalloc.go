// Package hotalloc flags per-iteration allocations inside loops of
// functions reachable from the dedup pipeline roots — the code every
// single chunk flows through. Vectorized-chunking literature
// (Udayashankar & Al-Kiswany; Gregoriadis et al.) puts per-chunk
// allocation overhead squarely between wire-speed and CPU-bound dedup,
// so the hot path must not allocate per chunk when it can hoist.
//
// Roots are the agent pipeline entry points — Agent.ProcessStream /
// Agent.ProcessBytes in the agent package and chunker Split methods in
// the chunk package (this codebase's equivalents of the issue's
// processFile/Next naming). Reachability follows synchronous calls,
// go-spawned work (still on the per-chunk budget) and function-value
// references (emit callbacks invoked once per chunk).
//
// Inside loop bodies of reachable functions the analyzer reports:
//
//   - fmt.Sprintf / Sprint / Sprintln (allocates + reflects)
//   - []byte(string) and string([]byte) conversions (copy per iteration)
//   - append to a slice declared unsized outside the loop (repeated
//     growth; preallocate with make(len/cap))
//   - maps allocated inside the loop (make or literal — churn)
//   - sync.Pool Get with no Put for the same pool reachable from the
//     pipeline roots (a pool nothing returns to is a slow allocator:
//     every Get falls through to New and the "recycled" objects just
//     feed the GC)
//
// The pool rule matches Get and Put by module-wide pool identity —
// "pkg.var" for package-level pools, "(pkg.Type).field" for struct
// fields — so a Put in a different stage of the pipeline (the usual
// shape: producer Gets, consumer Puts) clears the Get. Pools without a
// stable identity (locals, parameters) are skipped.
//
// Each diagnostic carries the call path from the pipeline root so the
// reader can judge how hot the loop really is.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"efdedup/lint/analysis"
	"efdedup/lint/internal/callgraph"
	"efdedup/lint/internal/summary"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "no per-iteration allocations in loops reachable from the agent pipeline roots",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	sums := pass.Summaries
	if sums == nil {
		return nil
	}
	reach := sums.ReachableFrom(rootIDs(sums), summary.ReachOptions{FollowAsync: true, FollowRefs: true})
	pooled := reachablePoolPuts(sums, reach)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			path := reach.Path(callgraph.FuncID(fn))
			if path == nil {
				continue
			}
			checkFunc(pass, fd, pooled, strings.Join(path, " → "))
		}
	}
	return nil
}

// reachablePoolPuts collects the module-wide identities of every
// sync.Pool that some root-reachable function Puts into. The sweep
// covers the whole loaded universe, not just the package under
// analysis: the canonical pipeline shape Gets in one stage and Puts in
// another, possibly across package boundaries.
func reachablePoolPuts(sums *summary.Set, reach *summary.Reach) map[string]bool {
	out := make(map[string]bool)
	for id, fs := range sums.Funcs {
		if reach.Path(id) == nil || fs.Node == nil || fs.Node.Decl == nil || fs.Node.Decl.Body == nil {
			continue
		}
		info := fs.Node.Pkg.Info
		ast.Inspect(fs.Node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if ident, name, okOp := poolOp(info, call); okOp && name == "Put" && ident != "" {
				out[ident] = true
			}
			return true
		})
	}
	return out
}

// rootIDs finds the pipeline entry points in the loaded universe.
func rootIDs(sums *summary.Set) []string {
	var roots []string
	for id, fs := range sums.Funcs {
		fn := fs.Node.Func
		if fn.Pkg() == nil {
			continue
		}
		name, pkg := fn.Name(), fn.Pkg().Path()
		switch {
		case (name == "ProcessStream" || name == "ProcessBytes") && pkgIs(pkg, "agent"):
			roots = append(roots, id)
		case name == "Split" && pkgIs(pkg, "chunk"):
			roots = append(roots, id)
		}
	}
	return roots
}

func pkgIs(path, base string) bool {
	return path == base || strings.HasSuffix(path, "/"+base)
}

// checkFunc scans every loop in the function (including loops inside
// nested function literals) for per-iteration allocations.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, pooled map[string]bool, hotPath string) {
	unsized := unsizedSlices(pass.TypesInfo, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		var loopPos, loopEnd token.Pos
		switch loop := n.(type) {
		case *ast.ForStmt:
			body, loopPos, loopEnd = loop.Body, loop.Pos(), loop.End()
		case *ast.RangeStmt:
			body, loopPos, loopEnd = loop.Body, loop.Pos(), loop.End()
		default:
			return true
		}
		checkLoopBody(pass, body, loopPos, loopEnd, unsized, pooled, hotPath)
		return true
	})
}

func checkLoopBody(pass *analysis.Pass, body *ast.BlockStmt, loopPos, loopEnd token.Pos, unsized map[types.Object]token.Pos, pooled map[string]bool, hotPath string) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.CallExpr:
			if name, ok := fmtAlloc(pass, nn); ok {
				pass.Reportf(nn.Pos(), "fmt.%s allocates per iteration; hot path: %s", name, hotPath)
				return true
			}
			if ident, name, ok := poolOp(info, nn); ok && name == "Get" && ident != "" && !pooled[ident] {
				pass.Reportf(nn.Pos(), "sync.Pool Get of %s per iteration but no Put for it is reachable from the pipeline roots — every Get allocates via New and the object leaks to GC; hot path: %s", ident, hotPath)
				return true
			}
			if desc, ok := byteStringConversion(info, nn); ok {
				pass.Reportf(nn.Pos(), "%s conversion copies per iteration; hoist it out of the loop; hot path: %s", desc, hotPath)
				return true
			}
			if ok := appendToUnsized(info, nn, unsized, loopPos, loopEnd); ok {
				pass.Reportf(nn.Pos(), "append grows an unsized slice per iteration; preallocate with make(..., 0, n); hot path: %s", hotPath)
				return true
			}
			if isMakeMap(info, nn) {
				pass.Reportf(nn.Pos(), "map allocated per iteration; hoist and clear, or preallocate; hot path: %s", hotPath)
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[nn]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(nn.Pos(), "map literal allocated per iteration; hoist and clear, or preallocate; hot path: %s", hotPath)
				}
			}
		}
		return true
	})
}

// fmtAlloc matches the fmt formatters that allocate a fresh string per
// call. fmt.Errorf is deliberately absent: inside a loop it sits on the
// failure path, where wrapping is mandatory (errclass) and throughput
// is already lost.
func fmtAlloc(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	for _, name := range []string{"Sprintf", "Sprint", "Sprintln"} {
		if pass.IsPkgFunc(call, "fmt", name) {
			return name, true
		}
	}
	return "", false
}

// byteStringConversion matches []byte(s) and string(b) conversions.
func byteStringConversion(info *types.Info, call *ast.CallExpr) (string, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return "", false
	}
	argTV, ok := info.Types[call.Args[0]]
	if !ok || argTV.Type == nil {
		return "", false
	}
	to, from := tv.Type.Underlying(), argTV.Type.Underlying()
	if isByteSlice(to) && isString(from) {
		return "[]byte(string)", true
	}
	if isString(to) && isByteSlice(from) {
		return "string([]byte)", true
	}
	return "", false
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// appendToUnsized matches append(x, ...) where x was declared with no
// size outside the loop — the append grows across iterations.
func appendToUnsized(info *types.Info, call *ast.CallExpr, unsized map[types.Object]token.Pos, loopPos, loopEnd token.Pos) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	dest, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[dest]
	declPos, isUnsized := unsized[obj]
	if !isUnsized {
		return false
	}
	// A slice declared inside the loop restarts each iteration — its
	// growth is bounded by one iteration's work, not the whole stream.
	return declPos < loopPos || declPos > loopEnd
}

// unsizedSlices collects slice variables declared with no length or
// capacity: `var x []T`, `x := []T{}`, or `x := make([]T, 0)`.
func unsizedSlices(info *types.Info, body *ast.BlockStmt) map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos)
	record := func(id *ast.Ident) {
		if obj := info.Defs[id]; obj != nil {
			if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
				out[obj] = id.Pos()
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.ValueSpec:
			if len(nn.Values) == 0 {
				for _, id := range nn.Names {
					record(id)
				}
			}
		case *ast.AssignStmt:
			if nn.Tok != token.DEFINE {
				return true
			}
			for i, rhs := range nn.Rhs {
				if i >= len(nn.Lhs) {
					break
				}
				id, ok := nn.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				switch v := ast.Unparen(rhs).(type) {
				case *ast.CompositeLit:
					if len(v.Elts) == 0 {
						record(id)
					}
				case *ast.CallExpr:
					if fn, okFn := ast.Unparen(v.Fun).(*ast.Ident); okFn && fn.Name == "make" {
						if _, isBuiltin := info.Uses[fn].(*types.Builtin); isBuiltin &&
							len(v.Args) == 2 && isZeroLiteral(v.Args[1]) {
							record(id)
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// isMakeMap matches make(map[...]...) calls.
func isMakeMap(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "make" || len(call.Args) == 0 {
		return false
	}
	if _, isBuiltin := info.Uses[fn].(*types.Builtin); !isBuiltin {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func isZeroLiteral(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "0"
}

// poolOp matches (*sync.Pool).Get / Put calls, returning the pool's
// module-wide identity (or "" when it has none) and the method name.
func poolOp(info *types.Info, call *ast.CallExpr) (ident, name string, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	fn, okFn := calleeFunc(info, call)
	if !okFn {
		return "", "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", false
	}
	named, okNamed := derefType(recv.Type()).(*types.Named)
	if !okNamed || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != "sync" || named.Obj().Name() != "Pool" {
		return "", "", false
	}
	if n := fn.Name(); n != "Get" && n != "Put" {
		return "", "", false
	}
	return poolIdentity(info, sel.X), fn.Name(), true
}

// poolIdentity derives a module-wide identity for the pool receiver
// expression, mirroring the lock identities the interprocedural
// analyzers use: "pkg.var" for package-level pools (including elements
// of package-level pool arrays, which share one identity), and
// "(pkg.Type).field" for struct-field pools. Locals and parameters
// yield "".
func poolIdentity(info *types.Info, x ast.Expr) string {
	switch e := ast.Unparen(x).(type) {
	case *ast.IndexExpr:
		// bufPools[c].Get(): the size-classed arena — identify by the
		// backing array.
		return poolIdentity(info, e.X)
	case *ast.SelectorExpr:
		if fieldSel, okSel := info.Selections[e]; okSel {
			owner, okOwner := derefType(fieldSel.Recv()).(*types.Named)
			if !okOwner || owner.Obj().Pkg() == nil {
				return ""
			}
			return "(" + shortPkg(owner.Obj().Pkg().Path()) + "." + owner.Obj().Name() + ")." + e.Sel.Name
		}
		// Package-qualified var: pkg.Pool.
		if obj := info.Uses[e.Sel]; obj != nil && isPackageLevel(obj) {
			return shortPkg(obj.Pkg().Path()) + "." + obj.Name()
		}
		return ""
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil && isPackageLevel(obj) {
			return shortPkg(obj.Pkg().Path()) + "." + obj.Name()
		}
		return ""
	}
	return ""
}

// calleeFunc resolves the called function or method object.
func calleeFunc(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, ok := info.Uses[fun].(*types.Func)
		return fn, ok
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, okFn := sel.Obj().(*types.Func)
			return fn, okFn
		}
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		return fn, ok
	}
	return nil, false
}

func isPackageLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
