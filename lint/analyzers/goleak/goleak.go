// Package goleak checks that goroutines spawned by the daemons have a
// shutdown path.
//
// Every long-lived goroutine in the system — gossip rounds, WAL
// flushers, hint replayers, metric servers — follows the same shape: an
// infinite loop that selects on work and on a stop/done channel (or
// ctx.Done()), returning when asked. A goroutine whose infinite loop
// has no return, no break and no stop-signal reference can never be
// joined: Stop() hangs or leaks the goroutine, and the race detector
// in CI reports spurious ownership changes long after a test finished.
//
// For each `go` statement spawning a function literal (or a function
// declared in the same package), the analyzer looks for unconditional
// `for {}` loops in its body and reports loops containing neither a
// return statement, nor a break, nor any reference to a stop-ish
// signal (stop/done/quit/exit/shut/close/closed/cancel/ctx — which
// covers <-ctx.Done() and <-n.stop selects).
package goleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"efdedup/lint/analysis"
)

// Analyzer is the goleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc:  "reports spawned goroutines whose infinite loops have no return, break, or stop-channel shutdown path",
	Run:  run,
}

var stopish = regexp.MustCompile(`(?i)stop|done|quit|exit|shut|close|cancel|ctx`)

func run(pass *analysis.Pass) error {
	decls := declIndex(pass)
	reported := make(map[token.Pos]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := spawnedBody(pass, g, decls)
			if body == nil {
				return true
			}
			for _, loop := range infiniteLoops(body) {
				if reported[loop.Pos()] || hasShutdownPath(loop) {
					continue
				}
				reported[loop.Pos()] = true
				pass.Reportf(loop.Pos(), "infinite loop in a spawned goroutine has no shutdown path (no return, break, or stop/ctx signal); the goroutine can never be joined")
			}
			return true
		})
	}
	return nil
}

// declIndex maps function objects to their declarations so `go n.loop()`
// can be followed within the package.
func declIndex(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	idx := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					idx[fn] = fd
				}
			}
		}
	}
	return idx
}

// spawnedBody resolves the body of the function a go statement runs:
// a literal, or a same-package declaration.
func spawnedBody(pass *analysis.Pass, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) *ast.BlockStmt {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn, ok := pass.CalleeObject(g.Call).(*types.Func); ok {
		if fd := decls[fn]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// infiniteLoops finds unconditional for-loops in body, not nested
// inside further function literals.
func infiniteLoops(body *ast.BlockStmt) []*ast.ForStmt {
	var loops []*ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if f, ok := n.(*ast.ForStmt); ok && f.Init == nil && f.Cond == nil && f.Post == nil {
			loops = append(loops, f)
		}
		return true
	})
	return loops
}

// hasShutdownPath reports whether the loop body contains a return, a
// break, or any stop-ish identifier reference.
func hasShutdownPath(loop *ast.ForStmt) bool {
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch node := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if node.Tok == token.BREAK || node.Tok == token.GOTO {
				found = true
			}
		case *ast.Ident:
			if stopish.MatchString(node.Name) {
				found = true
			}
		}
		return !found
	})
	return found
}
