// Fixture for the goleak analyzer.
package goroutine

import (
	"context"
	"time"
)

type daemon struct {
	stopc chan struct{}
	work  chan int
}

func (d *daemon) badLiteral() {
	go func() {
		for { // want `no shutdown path`
			time.Sleep(time.Millisecond)
		}
	}()
}

func (d *daemon) badNamed() {
	go d.spin()
}

// spin never checks any signal and can never be joined.
func (d *daemon) spin() {
	for { // want `no shutdown path`
		v := <-d.work
		_ = v
	}
}

func (d *daemon) goodSelect() {
	go func() {
		for {
			select {
			case v := <-d.work:
				_ = v
			case <-d.stopc:
				return
			}
		}
	}()
}

func (d *daemon) goodCtx(ctx context.Context) {
	go func() {
		for {
			if ctx.Err() != nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
}

func (d *daemon) goodNamed() {
	go d.loop()
}

func (d *daemon) loop() {
	for {
		select {
		case v := <-d.work:
			_ = v
		case <-d.stopc:
			return
		}
	}
}

// goodBounded: loops with a condition terminate on their own and are
// not the analyzer's business.
func (d *daemon) goodBounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
			_ = <-d.work
		}
	}()
}

func (d *daemon) goodIgnored() {
	go func() {
		//lint:ignore goleak process-lifetime sampler, dies with the process
		for {
			time.Sleep(time.Second)
		}
	}()
}
