package goleak_test

import (
	"testing"

	"efdedup/lint/analysistest"
	"efdedup/lint/analyzers/goleak"
)

func TestGoLeak(t *testing.T) {
	analysistest.Run(t, goleak.Analyzer, "goroutine")
}
