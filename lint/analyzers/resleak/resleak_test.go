package resleak_test

import (
	"testing"

	"efdedup/lint/analysistest"
	"efdedup/lint/analyzers/resleak"
)

func TestResleak(t *testing.T) {
	analysistest.Run(t, resleak.Analyzer, "resleak")
}
