// Fixtures for the resleak analyzer: acquisitions must reach Close on
// every path; returning/storing/passing the value transfers the
// obligation; the err != nil arm of the acquisition is exempt.
package resleak

import (
	"errors"
	"net"
	"os"
)

var errBad = errors.New("bad")

func work() error { return nil }

func consume(f *os.File) {}

// --- positives -------------------------------------------------------

// The plain leak: no Close anywhere.
func leakPlain() error {
	f, err := os.Open("data") // want `os\.Open result is not closed on every path`
	if err != nil {
		return err
	}
	_ = f.Name()
	return nil
}

// The PR-bug shape: an early error return between the acquisition and
// the defer registration leaks — the defer only covers returns after
// it.
func leakOnEarlyReturn(ok bool) error {
	f, err := os.Open("data") // want `os\.Open result is not closed on every path`
	if err != nil {
		return err
	}
	if !ok {
		return errBad // leaves f open: the defer below is not registered yet
	}
	defer f.Close()
	return work()
}

// One arm closes, the other forgets.
func leakOneArm(ok bool) error {
	c, err := net.Dial("tcp", "edge:7070") // want `net\.Dial result is not closed on every path`
	if err != nil {
		return err
	}
	if ok {
		c.Close()
		return nil
	}
	return errBad
}

// A Dial method on a module type (the transport.Network shape) is
// tracked like net.Dial.
type network struct{}

type conn struct{}

func (*conn) Close() error { return nil }

func (network) Dial(addr string) (*conn, error) { return &conn{}, nil }

func (*conn) ping() {}

func leakCustomDial(n network) error {
	c, err := n.Dial("edge:7070") // want `resleak\.Dial result is not closed on every path`
	if err != nil {
		return err
	}
	c.ping()
	return work()
}

// WAL-open shape.
type wal struct{}

func (*wal) Close() error { return nil }
func (*wal) replay()      {}

func OpenWAL(path string) (*wal, error) { return &wal{}, nil }

func leakWAL(path string) error {
	w, err := OpenWAL(path) // want `resleak\.OpenWAL result is not closed on every path`
	if err != nil {
		return err
	}
	w.replay()
	return nil
}

// A leak inside a function literal is charged to the literal.
func leakInsideFuncLit() func() error {
	return func() error {
		f, err := os.Open("data") // want `os\.Open result is not closed on every path`
		if err != nil {
			return err
		}
		_ = f.Name()
		return work()
	}
}

// --- negatives -------------------------------------------------------

// The idiomatic shape: err check, then defer Close.
func closedByDefer() error {
	f, err := os.Open("data")
	if err != nil {
		return err
	}
	defer f.Close()
	if err := work(); err != nil {
		return err
	}
	return nil
}

// Explicit Close on every arm.
func closedOnBothArms(ok bool) error {
	f, err := os.Open("data")
	if err != nil {
		return err
	}
	if ok {
		f.Close()
		return nil
	}
	f.Close()
	return errBad
}

// Returning the resource transfers the obligation to the caller.
func escapeReturn() (*os.File, error) {
	f, err := os.Open("data")
	return f, err
}

// Storing the resource into a field transfers ownership.
type holder struct{ f *os.File }

func escapeStore(h *holder) error {
	f, err := os.Open("data")
	if err != nil {
		return err
	}
	h.f = f
	return nil
}

// Passing the resource to a call transfers ownership.
func escapeArg() error {
	f, err := os.Open("data")
	if err != nil {
		return err
	}
	consume(f)
	return nil
}

// Capture by a goroutine's literal transfers ownership.
func escapeGoroutine() error {
	f, err := os.Open("data")
	if err != nil {
		return err
	}
	go func() {
		f.Close()
	}()
	return nil
}

// The res == nil arm has nothing to close.
func nilGuard() {
	c, _ := net.Dial("tcp", "edge:7070")
	if c == nil {
		return
	}
	c.Close()
}

// Reusing the err variable for a later, untracked call must not let
// the later nil-check absolve the earlier resource — but closing on
// that arm keeps this one clean.
func errReuseClosed(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	err = work()
	if err != nil {
		f.Close()
		return err
	}
	f.Close()
	return nil
}

// os.IsNotExist(err) is only true for a non-nil error, so the early
// return on that arm has no live file to close.
func notExistGuard(path string) (*os.File, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return f, nil
}

// errors.Is on the bound error proves the same thing.
func errorsIsGuard(path string) (*os.File, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Suppression: the reasoned directive silences the finding.
func suppressed() error {
	//lint:ignore resleak fd is handed to the kernel for the process lifetime
	f, err := os.Open("data")
	if err != nil {
		return err
	}
	_ = f.Name()
	return nil
}
