// Package resleak reports resources acquired but not released on every
// path out of the function: files (os.Open/Create/OpenFile/CreateTemp),
// connections (net.Dial*, any Dial/DialContext/DialWithPolicy method or
// function whose first result is a Closer), WALs (OpenWAL/
// OpenWALOptions) and the module's node/cluster/server constructors —
// the exact shapes PRs 3-7 kept leaking on early-return error paths
// (daemon gets its node, the listen fails, the error return skips the
// Close and the WAL flusher goroutine lives forever).
//
// The check is a forward may-analysis over the function's CFG: the
// acquisition generates an "open" fact bound to the assigned variable,
// and the fact is killed by
//
//   - a Close call on the variable, inline or through a defer chain
//     (the per-return defer blocks make `defer f.Close()` count only
//     for returns after the registration — the early `return err`
//     before the defer still leaks);
//   - failure refinement: on the true arm of `err != nil` (or the
//     false arm of `err == nil`) for the err assigned alongside the
//     resource, the resource is nil and there is nothing to close —
//     likewise on the `res == nil` arm;
//   - escape: the invariant transfers with ownership when the value is
//     returned, passed to a call, stored into a field/element/map,
//     sent on a channel, aliased, address-taken or captured by a
//     function literal. Escape is positional: paths that leak before
//     the escape still report.
//
// A fact alive entering the exit block is a leak, reported at the
// acquisition with the offending return's line. Panic/os.Exit paths
// are not charged (the CFG ends them without an exit edge).
package resleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"efdedup/lint/analysis"
	"efdedup/lint/internal/cfg"
	"efdedup/lint/internal/dataflow"
)

// Analyzer is the resleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "resleak",
	Doc:  "acquired files/connections/WALs/nodes must reach Close on every path (defer-aware; returning, storing or passing the value transfers the obligation)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.CFGs == nil {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					check(pass, fn)
				}
			case *ast.FuncLit:
				check(pass, fn)
			}
			return true
		})
	}
	return nil
}

// acquisition is one tracked resource-producing assignment.
type acquisition struct {
	res  types.Object // the variable holding the resource
	err  types.Object // the error assigned alongside, or nil
	pos  token.Pos
	desc string // what was acquired, e.g. "os.Open" or "kvstore.NewNode"
}

// state is the dataflow fact: which acquisitions may still be open,
// and which resource each live error variable currently guards.
type state struct {
	open map[*acquisition]bool
	// errBind maps an error variable to the acquisition it was
	// assigned with. Flow-sensitive: a later reassignment of the same
	// err variable (the idiomatic `l, err := listen(...)` reuse) drops
	// the binding, so the nil-check of the NEW error cannot absolve
	// the OLD resource.
	errBind map[types.Object]*acquisition
}

func bottom() state {
	return state{open: map[*acquisition]bool{}, errBind: map[types.Object]*acquisition{}}
}

func clone(s state) state {
	out := bottom()
	for k := range s.open {
		out.open[k] = true
	}
	for k, v := range s.errBind {
		out.errBind[k] = v
	}
	return out
}

func join(a, b state) state {
	out := clone(a)
	for k := range b.open {
		out.open[k] = true
	}
	for k, v := range b.errBind {
		if cur, ok := out.errBind[k]; ok && cur != v {
			// Two paths bind the same err to different acquisitions:
			// the nil-check downstream cannot tell which one failed.
			delete(out.errBind, k)
			continue
		}
		out.errBind[k] = v
	}
	return out
}

func equal(a, b state) bool {
	if len(a.open) != len(b.open) || len(a.errBind) != len(b.errBind) {
		return false
	}
	for k := range a.open {
		if !b.open[k] {
			return false
		}
	}
	for k, v := range a.errBind {
		if b.errBind[k] != v {
			return false
		}
	}
	return true
}

func check(pass *analysis.Pass, fn ast.Node) {
	g := pass.CFGs.For(fn)
	acqs := collectAcquisitions(pass, g)
	if len(acqs) == 0 {
		return
	}
	byRes := make(map[types.Object]*acquisition, len(acqs))
	for _, a := range acqs {
		byRes[a.res] = a
	}

	res := dataflow.Solve(g, dataflow.Analysis[state]{
		Dir:    dataflow.Forward,
		Bottom: bottom, Join: join, Equal: equal,
		Transfer: func(b *cfg.Block, in state) state {
			out := clone(in)
			for _, n := range b.Nodes {
				applyNode(pass, n, acqs, byRes, &out)
			}
			return out
		},
		FlowEdge: func(e *cfg.Edge, f state) state {
			return refine(pass, e, f, byRes)
		},
	})

	// A fact alive entering the exit leaked on some return. Name the
	// return: walk each exit predecessor back through its defer chain
	// to the block holding the return statement.
	reported := map[*acquisition]bool{}
	for _, e := range g.Exit.Preds {
		f := res.Out[e.From]
		for _, a := range acqs {
			if !f.open[a] || reported[a] {
				continue
			}
			reported[a] = true
			retLine := pass.Fset.Position(returnSite(e.From)).Line
			pass.Reportf(a.pos, "%s result is not closed on every path: the return on line %d leaks it; close it before returning (or defer Close earlier)",
				a.desc, retLine)
		}
	}
}

// returnSite walks back through synthetic defer blocks to the source
// block that ended the path, returning its last node's position.
func returnSite(b *cfg.Block) token.Pos {
	for b.Kind == cfg.KindDefer && len(b.Preds) == 1 {
		b = b.Preds[0].From
	}
	if n := len(b.Nodes); n > 0 {
		return b.Nodes[n-1].Pos()
	}
	return token.NoPos
}

// collectAcquisitions scans every block for tracked assignments.
func collectAcquisitions(pass *analysis.Pass, g *cfg.CFG) []*acquisition {
	var out []*acquisition
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				continue
			}
			desc, ok := trackedAcquisition(pass, call)
			if !ok {
				continue
			}
			resID, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
			if !ok || resID.Name == "_" {
				continue
			}
			resObj := pass.ObjectOf(resID)
			if resObj == nil {
				continue
			}
			a := &acquisition{res: resObj, pos: as.Pos(), desc: desc}
			if len(as.Lhs) == 2 {
				if errID, ok := ast.Unparen(as.Lhs[1]).(*ast.Ident); ok && errID.Name != "_" {
					if obj := pass.ObjectOf(errID); obj != nil && isErrorType(obj.Type()) {
						a.err = obj
					}
				}
			}
			out = append(out, a)
		}
	}
	return out
}

// applyNode interprets one CFG node's effect on the fact state:
// acquisitions generate, Close calls and escapes kill.
func applyNode(pass *analysis.Pass, n ast.Node, acqs []*acquisition, byRes map[types.Object]*acquisition, s *state) {
	// Acquisition assignments regenerate the fact and (re)bind err.
	if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if _, tracked := trackedAcquisition(pass, call); tracked {
				if resID, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok && resID.Name != "_" {
					if a := byRes[pass.ObjectOf(resID)]; a != nil {
						// Arguments escape first (dialing with a parent
						// resource as arg hands it off), then generate.
						killEscapes(pass, n, byRes, s, a)
						s.open[a] = true
						if a.err != nil {
							s.errBind[a.err] = a
						}
						return
					}
				}
			}
		}
	}
	// Any other write to a bound err variable drops its binding.
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj := pass.ObjectOf(id); obj != nil {
					delete(s.errBind, obj)
				}
			}
		}
	}
	killCloses(pass, n, byRes, s)
	killEscapes(pass, n, byRes, s, nil)
}

// killCloses clears facts for resources receiving a Close (or Stop)
// call anywhere inside the node, including inside a defer-chain call.
func killCloses(pass *analysis.Pass, n ast.Node, byRes map[types.Object]*acquisition, s *state) {
	ast.Inspect(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Stop") {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if a := byRes[pass.ObjectOf(id)]; a != nil {
				delete(s.open, a)
			}
		}
		return true
	})
}

// killEscapes clears facts for resources whose ownership leaves the
// function through this node: returned, passed as a call argument,
// stored into a non-local lvalue, aliased to another variable, sent on
// a channel, placed in a composite literal, address-taken or captured
// by a nested function literal. skip (when non-nil) exempts the
// acquisition being generated by this very node.
func killEscapes(pass *analysis.Pass, n ast.Node, byRes map[types.Object]*acquisition, s *state, skip *acquisition) {
	kill := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if a := byRes[pass.ObjectOf(id)]; a != nil && a != skip {
				delete(s.open, a)
			}
		}
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			// Captured resources escape into the literal's lifetime.
			ast.Inspect(x.Body, func(y ast.Node) bool {
				if id, ok := y.(*ast.Ident); ok {
					kill(id)
				}
				return true
			})
			return false
		case *ast.CallExpr:
			for _, arg := range x.Args {
				kill(arg)
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				kill(r)
			}
		case *ast.SendStmt:
			kill(x.Value)
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					kill(kv.Value)
				} else {
					kill(el)
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				kill(x.X)
			}
		case *ast.AssignStmt:
			// res on the RHS aliases or stores it away — ownership
			// transfers. `_ = res` transfers nothing: assigning to
			// blank silences the compiler, not the leak.
			if allBlank(x.Lhs) {
				return true
			}
			for _, rhs := range x.Rhs {
				if _, isCall := ast.Unparen(rhs).(*ast.CallExpr); isCall {
					continue // call args handled by the CallExpr case
				}
				kill(rhs)
			}
		}
		return true
	})
}

// refine implements the branch-condition facts: on the arm where the
// acquisition's error is non-nil — or the resource itself is nil —
// there is nothing to close.
func refine(pass *analysis.Pass, e *cfg.Edge, f state, byRes map[types.Object]*acquisition) state {
	if e.Cond == nil {
		return f
	}
	// `if os.IsNotExist(err)` (and friends) on the true arm implies
	// err != nil — the predicates are always false for a nil error —
	// so the bound acquisition failed and there is nothing to close.
	if dead := errPredicateKill(pass, e, f); dead != nil {
		out := clone(f)
		delete(out.open, dead)
		return out
	}
	bin, ok := ast.Unparen(e.Cond).(*ast.BinaryExpr)
	if !ok {
		return f
	}
	id, isNilCmp, eq := nilComparison(bin)
	if !isNilCmp {
		return f
	}
	obj := pass.ObjectOf(id)
	if obj == nil {
		return f
	}
	// This edge asserts "obj is nil" on the true arm of obj == nil or
	// the false arm of obj != nil; it asserts "obj is non-nil" on the
	// two opposite arms.
	assertsNil := (eq && !e.Negate) || (!eq && e.Negate)
	var dead *acquisition
	if assertsNil {
		// The resource itself is nil: nothing to close on this arm.
		dead = byRes[obj]
	} else if a, ok := f.errBind[obj]; ok {
		// The bound error is non-nil: the acquisition failed and the
		// resource never materialised.
		dead = a
	}
	if dead == nil {
		return f
	}
	out := clone(f)
	delete(out.open, dead)
	return out
}

// errPredicateKill decodes conditions of the form os.IsNotExist(err),
// os.IsExist(err), os.IsPermission(err), os.IsTimeout(err) or
// errors.Is(err, sentinel): on the arm where the predicate holds the
// error is necessarily non-nil, so an acquisition bound to that error
// never produced a live resource. Returns the dead acquisition, or nil
// when the edge proves nothing.
func errPredicateKill(pass *analysis.Pass, e *cfg.Edge, f state) *acquisition {
	if e.Negate {
		return nil // predicate false tells us nothing about err
	}
	call, ok := ast.Unparen(e.Cond).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	matched := pass.IsPkgFunc(call, "errors", "Is")
	for _, name := range []string{"IsNotExist", "IsExist", "IsPermission", "IsTimeout"} {
		matched = matched || pass.IsPkgFunc(call, "os", name)
	}
	if !matched {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.ObjectOf(id)
	if obj == nil {
		return nil
	}
	return f.errBind[obj]
}

// nilComparison decodes `x == nil` / `x != nil` (either operand
// order), returning the non-nil identifier and whether the operator
// is ==.
func nilComparison(bin *ast.BinaryExpr) (*ast.Ident, bool, bool) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return nil, false, false
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	xNil, yNil := isNilIdent(x), isNilIdent(y)
	if xNil == yNil {
		return nil, false, false
	}
	other := x
	if xNil {
		other = y
	}
	id, ok := other.(*ast.Ident)
	if !ok {
		return nil, false, false
	}
	return id, true, bin.Op == token.EQL
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// trackedAcquisition classifies resource-producing calls. The callee
// must be a named function whose first result carries a Close method;
// within that, the tracked names are the stdlib openers and dialers,
// any Dial-family callee (interface methods included — the transport
// Network.Dial), the WAL openers, and the module's kvstore/cloudstore
// constructors.
func trackedAcquisition(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn, ok := pass.CalleeObject(call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 || !hasClose(sig.Results().At(0).Type()) {
		return "", false
	}
	name, pkg := fn.Name(), fn.Pkg().Path()
	qualified := shortPkg(pkg) + "." + name
	switch {
	case pkg == "os" && (name == "Open" || name == "OpenFile" || name == "Create" || name == "CreateTemp"):
		return qualified, true
	case pkg == "net" && strings.HasPrefix(name, "Dial"):
		return qualified, true
	case name == "Dial" || name == "DialContext" || name == "DialTimeout" || name == "DialWithPolicy":
		return qualified, true
	case name == "OpenWAL" || name == "OpenWALOptions":
		return qualified, true
	case (name == "NewNode" || name == "NewCluster" || name == "NewServer") &&
		(shortPkg(pkg) == "kvstore" || shortPkg(pkg) == "cloudstore"):
		return qualified, true
	}
	return "", false
}

// hasClose reports whether t (or *t) has a Close method in its method
// set.
func hasClose(t types.Type) bool {
	if _, isPtr := t.(*types.Pointer); !isPtr {
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			t = types.NewPointer(t)
		}
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Close")
	_, ok := obj.(*types.Func)
	return ok
}

func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
