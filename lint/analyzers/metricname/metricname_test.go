package metricname_test

import (
	"testing"

	"efdedup/lint/analysistest"
	"efdedup/lint/analyzers/metricname"
)

func TestMetricName(t *testing.T) {
	analysistest.Run(t, metricname.Analyzer, "metricuse")
}
