// Package metrics is a fixture stub mirroring the registration surface
// of the real efdedup/internal/metrics registry.
package metrics

type Counter struct{}

type Gauge struct{}

type Histogram struct{}

type Span struct{}

// Registry keys series by name + label pairs.
type Registry struct{}

// Default returns the process registry.
func Default() *Registry { return &Registry{} }

// Counter registers a counter.
func (r *Registry) Counter(name string, labels ...string) *Counter { return &Counter{} }

// Gauge registers a gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge { return &Gauge{} }

// GaugeFunc registers a computed gauge.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {}

// Histogram registers a histogram.
func (r *Registry) Histogram(name string, labels ...string) *Histogram { return &Histogram{} }

// DurationHistogram registers a nanosecond histogram.
func (r *Registry) DurationHistogram(name string, labels ...string) *Histogram { return &Histogram{} }

// StartSpan times a region into a histogram.
func (r *Registry) StartSpan(name string, labels ...string) Span { return Span{} }
