// Fixture for the metricname analyzer.
package metricuse

import (
	"fmt"

	"efdedup/internal/metrics"
)

func register(addr string, shard int) {
	reg := metrics.Default()

	// Constant snake names with dynamic label VALUES are the approved
	// shape: cardinality is bounded by cluster membership.
	reg.Counter("kvstore_rpc_failures_total", "addr", addr)
	reg.GaugeFunc("queue_depth", func() float64 { return 0 }, "addr", addr)
	reg.DurationHistogram("agent_chunk_seconds")
	reg.StartSpan("agent_upload_seconds", "addr", addr)

	reg.Counter(fmt.Sprintf("shard_%d_total", shard)) // want `metric name must be a constant string`
	reg.Gauge("BreakerState")                         // want `metric name "BreakerState" is not lowercase_snake`
	reg.Histogram("rpc.seconds")                      // want `metric name "rpc\.seconds" is not lowercase_snake`
	reg.Counter("retries_total", addr, "peer")        // want `label key must be a constant string`
	reg.Gauge("hints_pending", "Addr", addr)          // want `label key "Addr" is not lowercase_snake`

	// Splatted labels cannot be audited statically; the registry
	// validates at runtime instead.
	pairs := []string{"addr", addr}
	reg.Counter("gossip_rounds_total", pairs...)
}
