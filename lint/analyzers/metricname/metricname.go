// Package metricname audits metric registrations against the
// internal/metrics naming contract.
//
// The registry keys series by name plus label pairs and exports them
// as Prometheus text. Two failure modes motivate the check. First,
// a non-constant metric name (or label key) means series are minted at
// runtime — the classic unbounded-cardinality leak: one series per
// request address or per chunk ID will grow the registry without
// bound and blow up every scrape. Second, names outside
// lowercase_snake (Prometheus conventions) silently fork dashboards
// ("kvstore_rpc_seconds" vs "kvstoreRPCSeconds").
//
// The analyzer inspects every call to a registration method on
// internal/metrics.Registry (Counter, Gauge, GaugeFunc, Histogram,
// DurationHistogram, StartSpan) and requires: a constant
// lowercase_snake name, and constant lowercase_snake label KEYS (label
// values may be dynamic — they are bounded by cluster membership, not
// by request volume).
package metricname

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"efdedup/lint/analysis"
)

// Analyzer is the metricname pass.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "reports non-constant or non-lowercase_snake metric names and label keys registered with internal/metrics",
	Run:  run,
}

// registration methods → index of the name argument and of the first
// label argument.
var registrationMethods = map[string]struct{ nameArg, labelStart int }{
	"Counter":           {0, 1},
	"Gauge":             {0, 1},
	"GaugeFunc":         {0, 2},
	"Histogram":         {0, 1},
	"DurationHistogram": {0, 1},
	"StartSpan":         {0, 1},
}

var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			spec, ok := registration(pass, call)
			if !ok {
				return true
			}
			if len(call.Args) <= spec.nameArg {
				return true
			}
			checkConstSnake(pass, call.Args[spec.nameArg], "metric name")
			if call.Ellipsis.IsValid() {
				return true // labels splatted from a slice: keys not statically visible
			}
			for i := spec.labelStart; i < len(call.Args); i += 2 {
				checkConstSnake(pass, call.Args[i], "label key")
			}
			return true
		})
	}
	return nil
}

// registration matches method calls on internal/metrics.Registry.
func registration(pass *analysis.Pass, call *ast.CallExpr) (struct{ nameArg, labelStart int }, bool) {
	var zero struct{ nameArg, labelStart int }
	fn, ok := pass.CalleeObject(call).(*types.Func)
	if !ok {
		return zero, false
	}
	spec, ok := registrationMethods[fn.Name()]
	if !ok {
		return zero, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return zero, false
	}
	rt := recv.Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return zero, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/metrics") || obj.Name() != "Registry" {
		return zero, false
	}
	return spec, true
}

func checkConstSnake(pass *analysis.Pass, arg ast.Expr, what string) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(), "%s must be a constant string; dynamic names mint unbounded metric cardinality", what)
		return
	}
	if name := constant.StringVal(tv.Value); !snakeCase.MatchString(name) {
		pass.Reportf(arg.Pos(), "%s %q is not lowercase_snake ([a-z][a-z0-9_]*)", what, name)
	}
}
