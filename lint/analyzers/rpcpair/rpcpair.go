// Package rpcpair checks the two halves of the RPC surface against
// each other, module-wide: every Client.Call with a constant method
// name must resolve to exactly one production Server.Handle
// registration, and every registration must have at least one caller.
// A call with no registration is a guaranteed runtime "unknown method"
// error; a duplicate registration makes dispatch order-dependent; a
// registration nobody calls is dead protocol surface that still has to
// be kept wire-compatible.
//
// Sites are resolved through wrapper functions ((*Node).handle,
// (*Cluster).call, ...) by the wire index, and only production code is
// loaded, so a method exercised solely by tests is still dead surface.
package rpcpair

import (
	"efdedup/lint/analysis"
	"efdedup/lint/internal/wire"
)

// Analyzer detects unpaired RPC registrations and calls.
var Analyzer = &analysis.Analyzer{
	Name: "rpcpair",
	Doc:  "RPC calls must pair with exactly one registration, and registrations must have callers",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	ix := pass.Wire
	if ix == nil {
		return nil
	}
	regs := make(map[string]int)
	calls := make(map[string]int)
	for _, s := range ix.Sites {
		switch s.Kind {
		case wire.Registration:
			regs[s.Method]++
		case wire.Call:
			calls[s.Method]++
		}
	}
	// Each site is claimed by the pass owning its file, so module-wide
	// facts are reported exactly once per site.
	for _, s := range ix.Sites {
		if !pass.InFiles(s.Pos) {
			continue
		}
		switch s.Kind {
		case wire.Call:
			if regs[s.Method] == 0 {
				pass.Reportf(s.Pos, "RPC method %q is called here but never registered with any transport Server.Handle: dispatch will fail at runtime", s.Method)
			}
		case wire.Registration:
			if n := regs[s.Method]; n > 1 {
				pass.Reportf(s.Pos, "RPC method %q is registered %d times across the module; dispatch must resolve to exactly one handler", s.Method, n)
			}
			if calls[s.Method] == 0 {
				pass.Reportf(s.Pos, "RPC method %q is registered but never called from production code: dead protocol surface (remove the handler or wire up the client)", s.Method)
			}
		}
	}
	return nil
}
