// Package transport is a structural stub of the real transport layer:
// the wire index recognizes Server.Handle / Client.Call by shape (a
// method on a type of that name in a package named transport), so
// fixtures can exercise the RPC analyzers without the real module.
package transport

// Handler serves one request body.
type Handler func(body []byte) ([]byte, error)

// Server is the dispatch side.
type Server struct{}

// Handle registers h for method.
func (s *Server) Handle(method string, h Handler) {}

// Client is the calling side.
type Client struct{}

// Call invokes method remotely.
func (c *Client) Call(method string, body []byte) ([]byte, error) { return nil, nil }
