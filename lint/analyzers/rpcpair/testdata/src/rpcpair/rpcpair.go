// Fixtures for the rpcpair analyzer: calls must resolve to exactly one
// registration, registrations must have callers, and sites flow through
// wrapper functions.
package rpcpair

import "transport"

type app struct {
	srv *transport.Server
	cl  *transport.Client
}

// handle is a wrapper: the wire index discovers by fixpoint that its
// first string parameter is a method name, so the constant-method calls
// below count as registration sites while this forwarding call does
// not.
func (a *app) handle(method string, h transport.Handler) {
	a.srv.Handle(method, h)
}

// call is the client-side wrapper.
func (a *app) call(method string, body []byte) ([]byte, error) {
	return a.cl.Call(method, body)
}

func echo(body []byte) ([]byte, error) { return body, nil }

// --- positives -------------------------------------------------------

func register(a *app) {
	a.handle("rpc.get", echo)
	a.handle("rpc.dead", echo) // want `registered but never called`
	a.handle("rpc.dup", echo)  // want `registered 2 times`
	a.srv.Handle("rpc.dup", echo) // want `registered 2 times`
}

func invoke(a *app) {
	_, _ = a.call("rpc.get", nil)
	_, _ = a.call("rpc.missing", nil) // want `never registered`
	_, _ = a.cl.Call("rpc.dup", nil)
}

// --- negatives -------------------------------------------------------

// A dynamic method name is not a site: no constant to pair.
func dynamic(a *app, m string) {
	_, _ = a.call(m, nil)
}
