package rpcpair_test

import (
	"testing"

	"efdedup/lint/analysistest"
	"efdedup/lint/analyzers/rpcpair"
)

func TestRPCPair(t *testing.T) {
	analysistest.Run(t, rpcpair.Analyzer, "rpcpair")
}
