package wirelock_test

import (
	"testing"

	"efdedup/lint/analysistest"
	"efdedup/lint/analyzers/wirelock"
)

func TestWirelockStale(t *testing.T) {
	analysistest.Run(t, wirelock.Analyzer, "wirelockstale")
}

func TestWirelockClean(t *testing.T) {
	analysistest.Run(t, wirelock.Analyzer, "wirelockclean")
}
