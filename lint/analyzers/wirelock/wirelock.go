// Package wirelock pins the module's wire protocol to a checked-in
// schema lockfile. The wire index's view of the RPC surface — every
// method name with its registration package, every extracted codec
// layout — is compared against lint/wire.lock; any drift is reported
// line by line until the file is regenerated with `make wire-lock`.
// That turns every wire-format change into an explicit, reviewable
// diff: a renamed method, a widened field or a new codec cannot land
// silently.
//
// The comparison is module-wide, so it runs once per lint invocation:
// only the pass owning the anchor package (the lexically first package
// containing wire entities) performs it. The lockfile is found by
// walking up from the anchor package's directory, looking for
// wire.lock or lint/wire.lock at each level; EFDEDUP_WIRE_LOCK
// overrides the search (used by fixtures and CI staleness checks).
package wirelock

import (
	"os"
	"path/filepath"

	"efdedup/lint/analysis"
	"efdedup/lint/internal/wire"
)

// LintModulePrefix marks the lint module's own packages: its helpers
// are excluded from the lock so linting the linter never perturbs the
// protocol fingerprint.
const LintModulePrefix = "efdedup/lint"

// Analyzer checks the wire surface against the schema lockfile.
var Analyzer = &analysis.Analyzer{
	Name: "wirelock",
	Doc:  "the RPC surface and codec layouts must match the checked-in wire.lock",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	ix := pass.Wire
	if ix == nil || len(pass.Files) == 0 {
		return nil
	}
	if anchor := ix.AnchorPkg(); anchor == "" || pass.Pkg.Path() != anchor {
		return nil
	}
	got := wire.NewLock(ix, LintModulePrefix)
	if len(got.Methods) == 0 && len(got.Layouts) == 0 {
		return nil
	}
	pos := pass.Files[0].Name.Pos()
	path := lockPath(pass)
	if path == "" {
		pass.Reportf(pos, "module has %d RPC method(s) and %d codec layout(s) but no wire.lock; generate one with `make wire-lock`",
			len(got.Methods), len(got.Layouts))
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		pass.Reportf(pos, "wire.lock unreadable: %v (regenerate with `make wire-lock`)", err)
		return nil
	}
	want, err := wire.ParseLock(data)
	if err != nil {
		pass.Reportf(pos, "%v (regenerate with `make wire-lock`)", err)
		return nil
	}
	for _, line := range want.Diff(got) {
		pass.Reportf(pos, "wire.lock is stale: %s (review the change, then run `make wire-lock`)", line)
	}
	return nil
}

// lockPath locates the lockfile for the package under analysis.
func lockPath(pass *analysis.Pass) string {
	if p := os.Getenv("EFDEDUP_WIRE_LOCK"); p != "" {
		return p
	}
	dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	for {
		for _, cand := range []string{filepath.Join(dir, "wire.lock"), filepath.Join(dir, "lint", "wire.lock")} {
			if st, err := os.Stat(cand); err == nil && !st.IsDir() {
				return cand
			}
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}
