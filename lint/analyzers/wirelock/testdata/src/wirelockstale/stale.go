// Fixture for the wirelock analyzer: the wire.lock beside this file is
// deliberately stale — it locks a method the code no longer has, an
// outdated layout for encodeItem, and misses encodeExtra entirely.
package wirelockstale // want `wire\.lock is stale: method stale\.gone \(pkg=wirelockstale\) is locked but no longer appears in the code` `wire\.lock is stale: layout encode wirelockstale\.encodeItem changed: lock has "u32", code has "u64"` `wire\.lock is stale: layout encode wirelockstale\.encodeExtra \("u32 \| u32"\) is new and not in wire\.lock`

import (
	"encoding/binary"
	"errors"

	"transport"
)

var errProto = errors.New("proto")

func register(s *transport.Server) {
	s.Handle("stale.get", func(b []byte) ([]byte, error) { return b, nil })
}

func invoke(c *transport.Client) {
	_, _ = c.Call("stale.get", nil)
}

func encodeItem(dst []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, v)
}

func decodeItem(src []byte) (uint64, error) {
	if len(src) < 8 {
		return 0, errProto
	}
	return binary.BigEndian.Uint64(src), nil
}

func encodeExtra(dst []byte, a, b uint32) []byte {
	dst = binary.BigEndian.AppendUint32(dst, a)
	dst = binary.BigEndian.AppendUint32(dst, b)
	return dst
}
