// Fixture for the wirelock analyzer: the wire.lock beside this file
// matches the code exactly, so the analyzer stays silent.
package wirelockclean

import (
	"encoding/binary"
	"errors"

	"transport"
)

var errProto = errors.New("proto")

func register(s *transport.Server) {
	s.Handle("clean.put", func(b []byte) ([]byte, error) { return b, nil })
}

func invoke(c *transport.Client) {
	_, _ = c.Call("clean.put", nil)
}

func encodeItem(dst []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, v)
}

func decodeItem(src []byte) (uint64, error) {
	if len(src) < 8 {
		return 0, errProto
	}
	return binary.BigEndian.Uint64(src), nil
}
