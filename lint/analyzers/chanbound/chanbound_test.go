package chanbound_test

import (
	"testing"

	"efdedup/lint/analysistest"
	"efdedup/lint/analyzers/chanbound"
)

func TestChanBound(t *testing.T) {
	analysistest.Run(t, chanbound.Analyzer, "pipe2/agent")
}
