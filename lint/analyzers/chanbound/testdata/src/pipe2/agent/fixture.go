// Fixtures for the chanbound analyzer: channels in pipeline-reachable
// code need explicit capacity; close-only struct{} signals are exempt.
package agent

type Agent struct {
	stop chan struct{} // close-only: exempt
	ping chan struct{} // sent to below: a handoff, flagged at make
}

// ProcessStream is a pipeline root.
func (a *Agent) ProcessStream(data []byte) error {
	// Unbuffered data channel feeding the stage goroutine.
	jobs := make(chan []byte) // want `unbuffered chan \[\]byte in pipeline-reachable code`

	// Close-only local signal with a deferred close: exempt.
	done := make(chan struct{})
	defer close(done)

	// Bounded stage queue: fine.
	out := make(chan []byte, 8)

	go func() {
		for j := range jobs {
			out <- j
		}
	}()

	// Field channels: stop is only ever closed (exempt), ping is sent
	// to in notify (flagged as a handoff).
	a.stop = make(chan struct{})
	a.ping = make(chan struct{}) // want `unbuffered chan struct\{\} is sent to`

	jobs <- data
	close(jobs)
	select {
	case <-out:
	case <-done:
	}
	return nil
}

// ProcessBytes is the other root; the reasoned directive suppresses.
func (a *Agent) ProcessBytes(data []byte) error {
	//lint:ignore chanbound rendezvous handoff: sender must observe receipt
	sync := make(chan []byte)
	go func() { <-sync }()
	sync <- data
	return a.drain()
}

// drain is reachable one call down from the root.
func (a *Agent) drain() error {
	acks := make(chan int) // want `unbuffered chan int in pipeline-reachable code`
	go func() { acks <- 1 }()
	<-acks
	return nil
}

func (a *Agent) notify() {
	a.ping <- struct{}{}
}

func (a *Agent) shutdown() {
	close(a.stop)
}

// offline is not reachable from any pipeline root: out of scope even
// with an unbuffered data channel.
func offline() {
	ch := make(chan int)
	go func() { ch <- 1 }()
	<-ch
}
