// Package chanbound flags unbuffered channels created in
// pipeline-reachable code. The dedup pipeline is a chain of staged
// queues (hash → lookup → route → upload); an unbuffered channel in
// that chain gives a stage zero slack, so one slow consumer
// head-of-line-blocks every stage upstream of it — the exact failure
// the paper's staged design exists to avoid. Data channels must carry
// an explicit capacity chosen for the stage's burst tolerance.
//
// Scope is the pipeline's packages: agent and kvstore, plus transport
// — the wire between them, where the unbuffered-accept backpressure
// bug actually lived (an in-memory listener whose accept channel had
// no backlog, so Dial blocked until the server got around to Accept).
// Reachability starts from the pipeline entry points of each leg
// (agent ProcessStream/ProcessBytes, chunker Split, store Serve,
// transport Listen/Dial) and follows synchronous calls, go-spawned
// stages, and function-value references via Pass.Summaries.
//
// Close-only signal channels are exempt: `make(chan struct{})` whose
// owning variable or field is never the target of a send anywhere in
// the package is a pure close-broadcast (stop/done), and buffering one
// would change nothing. A chan struct{} that IS sent to is a handoff
// and gets flagged like any data channel. The scan is package-wide,
// not module-wide — all such fields here are unexported, so sends
// cannot hide in another package.
package chanbound

import (
	"go/ast"
	"go/types"
	"strings"

	"efdedup/lint/analysis"
	"efdedup/lint/internal/callgraph"
	"efdedup/lint/internal/summary"
)

// Analyzer is the chanbound pass.
var Analyzer = &analysis.Analyzer{
	Name: "chanbound",
	Doc:  "channels in pipeline-reachable code must have explicit capacity; close-only struct{} signals exempt",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Summaries == nil || !scopedPkg(pass.Pkg.Path()) {
		return nil
	}
	reach := pass.Summaries.ReachableFrom(rootIDs(pass.Summaries),
		summary.ReachOptions{FollowAsync: true, FollowRefs: true})
	sent := sentObjects(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			path := reach.Path(callgraph.FuncID(fn))
			if path == nil {
				continue
			}
			checkFunc(pass, fd, sent, strings.Join(path, " → "))
		}
	}
	return nil
}

func scopedPkg(path string) bool {
	switch shortPkg(path) {
	case "agent", "kvstore", "transport":
		return true
	}
	return false
}

// rootIDs finds the pipeline entry points of each leg in the loaded
// universe.
func rootIDs(sums *summary.Set) []string {
	var roots []string
	for id, fs := range sums.Funcs {
		fn := fs.Node.Func
		if fn.Pkg() == nil {
			continue
		}
		name, pkg := fn.Name(), fn.Pkg().Path()
		switch {
		case (name == "ProcessStream" || name == "ProcessBytes") && pkgIs(pkg, "agent"):
			roots = append(roots, id)
		case name == "Split" && pkgIs(pkg, "chunk"):
			roots = append(roots, id)
		case name == "Serve" && (pkgIs(pkg, "kvstore") || pkgIs(pkg, "cloudstore")):
			roots = append(roots, id)
		case (name == "Listen" || name == "Dial") && pkgIs(pkg, "transport"):
			roots = append(roots, id)
		}
	}
	return roots
}

func pkgIs(path, base string) bool {
	return path == base || strings.HasSuffix(path, "/"+base)
}

// checkFunc reports capacity-less make(chan T) in the function body,
// including inside its function literals (a stage goroutine is as
// reachable as its spawner).
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, sent map[types.Object]bool, hotPath string) {
	info := pass.TypesInfo
	handled := map[*ast.CallExpr]bool{}
	decide := func(call *ast.CallExpr, ch *types.Chan, owner types.Object) {
		if isEmptyStruct(ch.Elem()) {
			if owner == nil || !sent[owner] {
				return // close-only signal: buffering changes nothing
			}
			pass.Reportf(call.Pos(), "unbuffered chan struct%s is sent to — it is a handoff, not a close-only signal; give it a capacity (reachable via %s)", "{}", hotPath)
			return
		}
		pass.Reportf(call.Pos(), "unbuffered %s in pipeline-reachable code: a slow consumer stalls every stage upstream; size it explicitly with make(..., n) (reachable via %s)",
			types.TypeString(ch, types.RelativeTo(pass.Pkg)), hotPath)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, rhs := range x.Rhs {
				call, ch, hasCap := makeChan(info, rhs)
				if call == nil || hasCap {
					continue
				}
				handled[call] = true
				decide(call, ch, lhsObject(info, x.Lhs[i]))
			}
		case *ast.ValueSpec:
			for i, v := range x.Values {
				call, ch, hasCap := makeChan(info, v)
				if call == nil || hasCap || i >= len(x.Names) {
					continue
				}
				handled[call] = true
				decide(call, ch, info.Defs[x.Names[i]])
			}
		case *ast.KeyValueExpr:
			call, ch, hasCap := makeChan(info, x.Value)
			if call == nil || hasCap {
				return true
			}
			handled[call] = true
			var owner types.Object
			if key, ok := x.Key.(*ast.Ident); ok {
				owner = info.Uses[key]
			}
			decide(call, ch, owner)
		case *ast.CallExpr:
			call, ch, hasCap := makeChan(info, x)
			if call == nil || hasCap || handled[call] {
				return true
			}
			// No owner to track: a struct{} rendezvous stays exempt,
			// anything else is an unbounded data channel.
			decide(call, ch, nil)
		}
		return true
	})
}

// sentObjects collects every variable or field that is the target of a
// channel send anywhere in the package under analysis.
func sentObjects(pass *analysis.Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok {
				return true
			}
			if obj := chanObject(pass.TypesInfo, send.Chan); obj != nil {
				out[obj] = true
			}
			return true
		})
	}
	return out
}

// chanObject resolves the variable or field a channel expression names.
func chanObject(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := info.Uses[x]; o != nil {
			return o
		}
		return info.Defs[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	}
	return nil
}

func lhsObject(info *types.Info, e ast.Expr) types.Object {
	return chanObject(info, e)
}

// makeChan matches make(chan T[, cap]) and reports whether a capacity
// argument is present.
func makeChan(info *types.Info, e ast.Expr) (*ast.CallExpr, *types.Chan, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, nil, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return nil, nil, false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil, nil, false
	}
	if len(call.Args) == 0 {
		return nil, nil, false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || !tv.IsType() {
		return nil, nil, false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return nil, nil, false
	}
	return call, ch, len(call.Args) >= 2
}

func isEmptyStruct(t types.Type) bool {
	st, ok := t.Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
