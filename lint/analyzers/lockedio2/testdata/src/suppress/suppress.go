// Package suppress pins where //lint:ignore takes effect for an
// interprocedural diagnostic: at the call site that is reported — not
// at the callee whose summary merely carries the I/O fact.
package suppress

import (
	"net"
	"sync"
)

type Pool struct {
	mu   sync.Mutex
	conn net.Conn
}

// ping is the I/O-reaching callee. The directive inside it is useless:
// the diagnostic is anchored at the call site, so a callee-side ignore
// suppresses nothing.
func (p *Pool) ping() error {
	//lint:ignore lockedio2 misplaced: this is the callee, not the reported call site
	_, err := p.conn.Write(nil)
	return err
}

// CalleeAnnotated shows the callee-side directive failing to suppress:
// the call-site diagnostic still fires.
func (p *Pool) CalleeAnnotated() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ping() // want `held across call to p\.ping`
}

// SiteAnnotated carries the directive on the reported line, which is
// where suppression belongs — no diagnostic.
func (p *Pool) SiteAnnotated() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	//lint:ignore lockedio2 protocol requires the ping inside the critical section
	return p.ping()
}
