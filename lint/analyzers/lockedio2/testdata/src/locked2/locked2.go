// Package locked2 exercises interprocedural held-lock I/O detection.
package locked2

import (
	"net"
	"sync"
)

type Store struct {
	mu   sync.Mutex
	conn net.Conn
	seq  int
}

// send performs direct net.Conn I/O — one hop from any caller.
func (s *Store) send(b []byte) error {
	_, err := s.conn.Write(b)
	return err
}

// relay reaches I/O two hops deep.
func (s *Store) relay(b []byte) error {
	return s.send(b)
}

// bump touches only memory.
func (s *Store) bump() {
	s.seq++
}

// Flush calls a directly-dialing helper while holding the mutex.
func (s *Store) Flush(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.send(b) // want `mutex s\.mu \(locked at locked2\.go:\d+\) held across call to s\.send, which reaches net\.Conn\.Write via \(\*locked2\.Store\)\.send`
}

// Forward reaches the conn through a two-call chain; the diagnostic
// names the whole chain.
func (s *Store) Forward(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.relay(b) // want `held across call to s\.relay, which reaches net\.Conn\.Write via \(\*locked2\.Store\)\.relay → \(\*locked2\.Store\)\.send`
}

// Bump only calls memory-bound helpers: silent.
func (s *Store) Bump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bump()
}

// AfterUnlock calls the I/O helper after releasing the lock: silent.
func (s *Store) AfterUnlock(b []byte) error {
	s.mu.Lock()
	s.seq++
	s.mu.Unlock()
	return s.send(b)
}

// Async spawns the I/O helper in a goroutine: it does not run under
// the caller's lock, so lockedio2 stays silent (goleak territory).
func (s *Store) Async(b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go s.send(b)
}

// Direct I/O under a lock is lockedio's finding, not lockedio2's; the
// summary classifies the call site as I/O, not a call, so lockedio2
// must stay silent here.
func (s *Store) Direct(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.conn.Write(b)
	return err
}
