package lockedio2_test

import (
	"testing"

	"efdedup/lint/analysistest"
	"efdedup/lint/analyzers/lockedio2"
)

func TestLockedIO2(t *testing.T) {
	analysistest.Run(t, lockedio2.Analyzer, "locked2")
}

// TestSuppression pins the //lint:ignore placement semantics for
// interprocedural diagnostics: call-site directives suppress, callee
// directives do not.
func TestSuppression(t *testing.T) {
	analysistest.Run(t, lockedio2.Analyzer, "suppress")
}
