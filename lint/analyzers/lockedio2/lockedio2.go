// Package lockedio2 extends lockedio across function boundaries: a
// function that calls a helper while holding a mutex is flagged when
// the helper's interprocedural summary transitively reaches network
// I/O — net.Conn reads/writes, dials, or transport.Client Call/Close.
// lockedio sees only I/O performed in the locked function itself; on an
// edge link a blocked remote call inside a helper still stalls every
// goroutine contending for the lock, which is exactly how a slow WAN
// peer freezes a whole D2-ring index node.
//
// Direct I/O under a lock is lockedio's finding and is not re-reported
// here: the summary classifies each call site as either I/O (lockedio
// territory) or an ordinary call (this analyzer's), never both. Only
// synchronous call chains count — I/O behind a `go` statement does not
// run under the caller's lock.
package lockedio2

import (
	"go/ast"
	"go/types"
	"strings"

	"efdedup/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockedio2",
	Doc:  "no mutex held across a call chain that reaches network I/O (interprocedural lockedio)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	sums := pass.Summaries
	if sums == nil {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fs := sums.ForFunc(fn)
			if fs == nil {
				continue
			}
			for _, cul := range fs.CallsUnderLock {
				if cul.CalleeID == "" {
					continue
				}
				path := sums.ReachesIO(cul.CalleeID)
				if path == nil {
					continue
				}
				pass.Reportf(cul.Pos,
					"mutex %s (locked at %s) held across call to %s, which reaches %s via %s",
					cul.LockExpr, sums.FmtPos(cul.LockPos), cul.CalleeName,
					path.Desc, strings.Join(path.Chain, " → "))
			}
		}
	}
	return nil
}
