package codecpair_test

import (
	"testing"

	"efdedup/lint/analysistest"
	"efdedup/lint/analyzers/codecpair"
)

func TestCodecPair(t *testing.T) {
	analysistest.Run(t, codecpair.Analyzer, "codecpair")
}
