// Fixtures for the codecpair analyzer: encode/decode pairs sharing a
// name suffix must agree on the extracted wire layout.
package codecpair

import (
	"encoding/binary"
	"errors"
)

var errProto = errors.New("proto")

// --- positive: width mismatch on field 2 -----------------------------

func encodeRec(dst []byte, a uint32, b uint64) []byte {
	dst = binary.BigEndian.AppendUint32(dst, a)
	dst = binary.BigEndian.AppendUint64(dst, b)
	return dst
}

func decodeRec(src []byte) (uint32, uint32, error) { // want `wire layout mismatch between encodeRec and decodeRec: field 2: encoder writes u64, decoder reads u32 \(encoder layout: u32 \| u64; decoder layout: u32 \| u32\)`
	if len(src) < 8 {
		return 0, 0, errProto
	}
	a := binary.BigEndian.Uint32(src)
	b := binary.BigEndian.Uint32(src[4:])
	return a, b, nil
}

// --- positive: encoder writes a field the decoder never reads --------

func encodePair(dst []byte, a, b uint32) []byte {
	dst = binary.BigEndian.AppendUint32(dst, a)
	dst = binary.BigEndian.AppendUint32(dst, b)
	return dst
}

func decodePair(src []byte) (uint32, error) { // want `encoder writes 1 field\(s\) the decoder never reads`
	if len(src) < 4 {
		return 0, errProto
	}
	return binary.BigEndian.Uint32(src), nil
}

// --- negatives -------------------------------------------------------

// A symmetric pair: length-prefixed bytes then a fixed word.
func encodeBlob(dst, blob []byte, n uint64) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(blob)))
	dst = append(dst, blob...)
	dst = binary.BigEndian.AppendUint64(dst, n)
	return dst
}

func decodeBlob(src []byte) ([]byte, uint64, error) {
	if len(src) < 4 {
		return nil, 0, errProto
	}
	n := binary.BigEndian.Uint32(src)
	src = src[4:]
	if uint64(len(src)) < uint64(n)+8 {
		return nil, 0, errProto
	}
	blob := src[:n]
	v := binary.BigEndian.Uint64(src[n:])
	return blob, v, nil
}

// A decoder with no encode counterpart in the package: nothing to pair.
func decodeOrphan(src []byte) (uint32, error) {
	if len(src) < 4 {
		return 0, errProto
	}
	return binary.BigEndian.Uint32(src), nil
}

// An opaque suffix hides any number of fields: the shared prefix
// matches, so the pair stays silent.
func transform(b []byte) []byte { return b }

func encodeOpaque(dst []byte, a uint32, rest []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, a)
	dst = append(dst, transform(rest)...)
	return dst
}

func decodeOpaque(src []byte) (uint32, []byte, error) {
	if len(src) < 4 {
		return 0, nil, errProto
	}
	a := binary.BigEndian.Uint32(src)
	rest := transform(src[4:])
	return a, rest, nil
}
