// Package codecpair checks encode/decode function pairs field-for-field
// against each other using the symbolic wire layouts extracted by
// lint/internal/wire. A pair is two functions in one package whose
// names share a suffix under the codec prefixes (encode/append/marshal
// vs decode/read/parse/unmarshal): encodeEntry pairs with decodeEntry,
// appendBytes with readBytes, (*Node).encodeTable with decodeTable.
//
// When both sides extract to a structured layout, any field-level
// disagreement — width, prefix size, list element shape, extra or
// missing fields — is reported with both layouts printed, so the
// diagnostic shows the wire formats side by side instead of making the
// reader re-derive them. Functions the extractor cannot fully follow
// stay opaque past the extracted prefix and are compared only over the
// prefix both sides agree on, so unrecognized code is silence, never a
// false mismatch.
package codecpair

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"efdedup/lint/analysis"
	"efdedup/lint/internal/wire"
)

// Analyzer detects asymmetric encode/decode pairs.
var Analyzer = &analysis.Analyzer{
	Name: "codecpair",
	Doc:  "encode/decode pairs must agree on the wire layout field-for-field",
	Run:  run,
}

var (
	encPrefixes = []string{"encode", "append", "marshal"}
	decPrefixes = []string{"decode", "read", "parse", "unmarshal"}
)

// candidate is one codec-named function declared in this pass.
type candidate struct {
	fid  string
	name string
	pos  token.Pos
}

func run(pass *analysis.Pass) error {
	ix := pass.Wire
	if ix == nil {
		return nil
	}
	encs := make(map[string][]candidate)
	decs := make(map[string][]candidate)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c := candidate{fid: fn.FullName(), name: fd.Name.Name, pos: fd.Name.Pos()}
			if suf, ok := trimAnyPrefix(fd.Name.Name, encPrefixes); ok {
				encs[suf] = append(encs[suf], c)
			}
			if suf, ok := trimAnyPrefix(fd.Name.Name, decPrefixes); ok {
				decs[suf] = append(decs[suf], c)
			}
		}
	}
	for suf, ds := range decs {
		es := encs[suf]
		// Ambiguous suffixes (two encoders named encodeX and appendX)
		// have no well-defined pairing; stay silent.
		if len(es) != 1 || len(ds) != 1 {
			continue
		}
		enc := ix.Layout(es[0].fid, wire.Encode)
		dec := ix.Layout(ds[0].fid, wire.Decode)
		if enc == nil || dec == nil || len(enc.Fields) == 0 || len(dec.Fields) == 0 {
			continue
		}
		if msg := wire.Compare(enc, dec); msg != "" {
			pass.Reportf(ds[0].pos, "wire layout mismatch between %s and %s: %s (encoder layout: %s; decoder layout: %s)",
				es[0].name, ds[0].name, msg, enc, dec)
		}
	}
	return nil
}

// trimAnyPrefix strips the first matching codec prefix, returning the
// lowercased remainder. A bare prefix name ("read") is not a codec.
func trimAnyPrefix(name string, prefixes []string) (string, bool) {
	lower := strings.ToLower(name)
	for _, p := range prefixes {
		if strings.HasPrefix(lower, p) && len(name) > len(p) {
			return lower[len(p):], true
		}
	}
	return "", false
}
