package efdedup

import (
	"efdedup/internal/chunk"
	"efdedup/internal/cloudstore"
	"efdedup/internal/erasure"
	"efdedup/internal/estimate"
)

// This file exposes the library's implementations of the paper's
// future-work directions (Sec. VII): erasure-coded chunk storage and
// MinHash/LSH similarity estimation. (Variable-size chunking, the third
// direction, is NewContentDefinedChunker in runtime.go.)

// Erasure coding (paper: "apply erasure code to store data replicas").
type (
	// ErasureCodec Reed-Solomon-encodes chunks into k data + m parity
	// shards; any k shards reconstruct.
	ErasureCodec = erasure.Codec
	// ShardedChunkStore spreads erasure-coded chunks over virtual disks
	// with failure injection and repair.
	ShardedChunkStore = cloudstore.ShardedStore
)

// NewErasureCodec builds an RS(k, m) codec.
func NewErasureCodec(dataShards, parityShards int) (*ErasureCodec, error) {
	return erasure.New(dataShards, parityShards)
}

// NewShardedChunkStore builds an erasure-coded chunk store over
// dataShards+parityShards virtual disks.
func NewShardedChunkStore(dataShards, parityShards int) (*ShardedChunkStore, error) {
	return cloudstore.NewShardedStore(dataShards, parityShards)
}

// MinHash similarity (paper: "improve ... estimation through techniques
// like locality sensitive hashing").
type (
	// MinHashSignature sketches a chunk set in k slots; matching-slot
	// fraction estimates Jaccard similarity.
	MinHashSignature = estimate.Signature
)

// DefaultMinHashSize is the default sketch size (standard error ≈ 1/√k).
const DefaultMinHashSize = estimate.DefaultSignatureSize

// SketchChunks sketches a chunk-ID set.
func SketchChunks(ids []ChunkID, k int) (*MinHashSignature, error) {
	converted := make([]chunk.ID, len(ids))
	copy(converted, ids)
	return estimate.NewSignature(converted, k)
}

// SketchStream chunks data and sketches its chunk-ID set.
func SketchStream(data []byte, chunker Chunker, k int) (*MinHashSignature, error) {
	return estimate.SketchStream(data, chunker, k)
}

// SimilarityMatrix computes pairwise estimated Jaccard similarity of the
// sampled sources in one pass per source — the cheap alternative to
// Algorithm 1's exponential subset measurement for large edge fleets.
// It returns the sorted source IDs and the matrix indexed by them.
func SimilarityMatrix(samples map[int][][]byte, chunker Chunker, k int) ([]int, [][]float64, error) {
	return estimate.SimilarityMatrix(samples, chunker, k)
}
