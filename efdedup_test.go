package efdedup_test

import (
	"context"
	"testing"
	"time"

	"efdedup"
)

// TestPublicAPIPipeline exercises the whole public surface: model →
// partition → testbed run, the way a downstream user would.
func TestPublicAPIPipeline(t *testing.T) {
	// A 4-node system with two content groups and two sites.
	sys := &efdedup.System{
		PoolSizes: []float64{500, 500},
		Sources: []efdedup.Source{
			{ID: 0, Rate: 50, Probs: []float64{0.9, 0}},
			{ID: 1, Rate: 50, Probs: []float64{0, 0.9}},
			{ID: 2, Rate: 50, Probs: []float64{0.9, 0}},
			{ID: 3, Rate: 50, Probs: []float64{0, 0.9}},
		},
		T: 1, Gamma: 2, Alpha: 0.1,
		NetCost: [][]float64{
			{0, 1, 5, 5},
			{1, 0, 5, 5},
			{5, 5, 0, 1},
			{5, 5, 1, 0},
		},
	}
	rings, cost, err := efdedup.Partition(efdedup.SMART, sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Aggregate <= 0 {
		t.Fatal("non-positive cost")
	}

	// Deploy an in-process testbed and run a pool-model workload.
	tb, err := efdedup.NewTestbed(efdedup.TestbedConfig{
		Nodes: []efdedup.TestbedNode{
			{Name: "e0", Site: "a"}, {Name: "e1", Site: "a"},
			{Name: "e2", Site: "b"}, {Name: "e3", Site: "b"},
		},
		ChunkSize: 1024,
		EdgeLink:  efdedup.Link{Delay: time.Millisecond, Bandwidth: 1e8},
		WANLink:   efdedup.Link{Delay: 5 * time.Millisecond, Bandwidth: 1e7},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	ds, err := efdedup.NewPoolDataset(sys, 1024, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.ApplyPartition(rings, efdedup.ModeRing); err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(context.Background(), ds.File, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.DedupRatio() <= 1 {
		t.Fatalf("no dedup achieved: %v", res.DedupRatio())
	}
	if res.AggregateThroughput() <= 0 {
		t.Fatal("no throughput measured")
	}
}

// TestPublicAPIPlanning exercises NewPlan (Algorithm 1 + SMART).
func TestPublicAPIPlanning(t *testing.T) {
	sys := &efdedup.System{
		PoolSizes: []float64{300},
		Sources: []efdedup.Source{
			{ID: 0, Rate: 1, Probs: []float64{0.9}},
			{ID: 1, Rate: 1, Probs: []float64{0.9}},
		},
		T: 1, Gamma: 1,
	}
	ds, err := efdedup.NewPoolDataset(sys, 512, 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	samples := map[int][][]byte{
		0: {ds.File(0, 0), ds.File(0, 1)},
		1: {ds.File(1, 0), ds.File(1, 1)},
	}
	chunker, err := efdedup.NewFixedChunker(512)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := efdedup.NewPlan(efdedup.PlanInput{
		Samples: samples,
		Chunker: chunker,
		Rates:   []float64{10, 10},
		NetCost: [][]float64{{0, 1}, {1, 0}},
		T:       10, Gamma: 1, Alpha: 0.01,
		Rings: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Rings) == 0 {
		t.Fatal("empty plan")
	}
	if plan.Estimate.MeanRelativeError(plan.GroundTruth) > 0.10 {
		t.Fatalf("poor fit: %.1f%%", plan.Estimate.MeanRelativeError(plan.GroundTruth)*100)
	}
}

// TestPublicChunkers covers both chunker constructors.
func TestPublicChunkers(t *testing.T) {
	if _, err := efdedup.NewFixedChunker(0); err == nil {
		t.Error("bad fixed size accepted")
	}
	cdc, err := efdedup.NewContentDefinedChunker(512, 2048, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if cdc == nil {
		t.Fatal("nil chunker")
	}
}

// TestExperimentIDs checks the experiment registry is exposed.
func TestExperimentIDs(t *testing.T) {
	ids := efdedup.ExperimentIDs()
	if len(ids) != 13 {
		t.Fatalf("got %d experiment IDs, want 13", len(ids))
	}
	if ids[0] != "fig2" || ids[len(ids)-1] != "ext-ingest" {
		t.Fatalf("unexpected IDs: %v", ids)
	}
}

// TestSimFacade runs a small simulation through the facade.
func TestSimFacade(t *testing.T) {
	sys, err := efdedup.BuildSimSystem(efdedup.NewSimScenario(20, 0.001, 1))
	if err != nil {
		t.Fatal(err)
	}
	costs, err := efdedup.CompareOnSystem(sys, []efdedup.Partitioner{
		efdedup.SMART, efdedup.NetworkOnly, efdedup.DedupOnly,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 3 {
		t.Fatalf("got %d results", len(costs))
	}
	if costs[0].Cost.Aggregate > costs[1].Cost.Aggregate*1.01 ||
		costs[0].Cost.Aggregate > costs[2].Cost.Aggregate*1.01 {
		t.Error("SMART worse than a baseline on the facade path")
	}
}
