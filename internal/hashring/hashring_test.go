package hashring

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func newRing(t *testing.T, nodes ...string) *Ring {
	t.Helper()
	r, err := New(DefaultVirtualNodes)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

func TestNewRejectsBadVnodes(t *testing.T) {
	for _, v := range []int{0, -5} {
		if _, err := New(v); err == nil {
			t.Errorf("New(%d) accepted", v)
		}
	}
}

func TestEmptyRingLookup(t *testing.T) {
	r := newRing(t)
	if got := r.Lookup([]byte("k"), 2); got != nil {
		t.Fatalf("Lookup on empty ring = %v, want nil", got)
	}
	if got := r.Owner([]byte("k")); got != "" {
		t.Fatalf("Owner on empty ring = %q, want empty", got)
	}
}

func TestLookupDistinctReplicas(t *testing.T) {
	r := newRing(t, "a", "b", "c", "d")
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		got := r.Lookup(key, 3)
		if len(got) != 3 {
			t.Fatalf("Lookup returned %d nodes, want 3", len(got))
		}
		seen := map[string]bool{}
		for _, n := range got {
			if seen[n] {
				t.Fatalf("replica list %v contains duplicates", got)
			}
			seen[n] = true
		}
	}
}

func TestLookupClampsToMembership(t *testing.T) {
	r := newRing(t, "a", "b")
	got := r.Lookup([]byte("k"), 5)
	if len(got) != 2 {
		t.Fatalf("Lookup(5) on 2-node ring returned %d nodes, want 2", len(got))
	}
	if got := r.Lookup([]byte("k"), 0); got != nil {
		t.Fatalf("Lookup(0) = %v, want nil", got)
	}
}

func TestAddRemoveIdempotent(t *testing.T) {
	r := newRing(t, "a")
	r.Add("a")
	if r.Len() != 1 {
		t.Fatalf("Len = %d after double add, want 1", r.Len())
	}
	r.Remove("missing")
	if r.Len() != 1 {
		t.Fatalf("Len = %d after removing unknown node, want 1", r.Len())
	}
	r.Remove("a")
	if r.Len() != 0 {
		t.Fatalf("Len = %d after remove, want 0", r.Len())
	}
	if got := r.Lookup([]byte("k"), 1); got != nil {
		t.Fatalf("Lookup after removing all = %v", got)
	}
}

func TestDeterministicPlacement(t *testing.T) {
	r1 := newRing(t, "a", "b", "c")
	r2 := newRing(t, "c", "a", "b") // insertion order must not matter
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		g1 := r1.Lookup(key, 2)
		g2 := r2.Lookup(key, 2)
		if len(g1) != len(g2) {
			t.Fatalf("lookup lengths differ: %v vs %v", g1, g2)
		}
		for j := range g1 {
			if g1[j] != g2[j] {
				t.Fatalf("placement depends on insertion order: %v vs %v", g1, g2)
			}
		}
	}
}

func TestLoadBalance(t *testing.T) {
	r := newRing(t, "a", "b", "c", "d", "e")
	counts := map[string]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.Owner([]byte(fmt.Sprintf("key-%d", i)))]++
	}
	want := keys / 5
	for node, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("node %s owns %d keys, want within [%d,%d]", node, c, want/2, want*2)
		}
	}
}

// TestMinimalMovement verifies the consistent-hashing contract: removing
// one of N nodes relocates roughly 1/N of the keys and never moves a key
// whose owner survives.
func TestMinimalMovement(t *testing.T) {
	nodes := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	r := newRing(t, nodes...)
	const keys = 5000
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Owner([]byte(fmt.Sprintf("key-%d", i)))
	}
	r.Remove("c")
	moved := 0
	for i := range before {
		after := r.Owner([]byte(fmt.Sprintf("key-%d", i)))
		if after != before[i] {
			if before[i] != "c" {
				t.Fatalf("key %d moved from surviving node %s to %s", i, before[i], after)
			}
			moved++
		}
	}
	frac := float64(moved) / keys
	if frac < 0.03 || frac > 0.25 {
		t.Errorf("removal moved %.1f%% of keys, want ≈10%%", frac*100)
	}
}

// TestPropertyLookupStableUnderUnrelatedChanges: adding a node never
// changes the relative order of surviving replicas for a key.
func TestPropertyPrimaryStaysWithinReplicaSet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, err := New(64)
		if err != nil {
			return false
		}
		n := 3 + rng.Intn(6)
		for i := 0; i < n; i++ {
			r.Add(fmt.Sprintf("node-%d", i))
		}
		key := make([]byte, 16)
		rng.Read(key)
		primaryBefore := r.Owner(key)
		replicas := r.Lookup(key, 3)
		// Add an unrelated node; the old primary must remain inside the
		// new top-3 replica set or be displaced only by the new node.
		r.Add("newcomer")
		after := r.Lookup(key, 3)
		found := false
		for _, x := range after {
			if x == primaryBefore || x == "newcomer" {
				found = true
			}
		}
		_ = replicas
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := newRing(t, "a", "b", "c")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			r.Add(fmt.Sprintf("n%d", i%7))
			r.Remove(fmt.Sprintf("n%d", (i+3)%7))
		}
	}()
	for i := 0; i < 500; i++ {
		r.Lookup([]byte(fmt.Sprintf("key-%d", i)), 2)
		r.Nodes()
	}
	<-done
}
