package hashring

import (
	"fmt"
	"testing"
)

func benchRing(b *testing.B, nodes, vnodes int) *Ring {
	b.Helper()
	r, err := New(vnodes)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("node-%02d", i))
	}
	return r
}

func BenchmarkLookup(b *testing.B) {
	r := benchRing(b, 20, DefaultVirtualNodes)
	key := []byte("some-chunk-hash-0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(key, 2)
	}
}

func BenchmarkAddRemove(b *testing.B) {
	r := benchRing(b, 20, DefaultVirtualNodes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Add("churner")
		r.Remove("churner")
	}
}

// BenchmarkVnodeBalanceAblation reports load imbalance (max/mean keys per
// node) for different virtual-node counts — the knob trading memory for
// placement smoothness.
func BenchmarkVnodeBalanceAblation(b *testing.B) {
	for _, vn := range []int{8, 32, 128, 512} {
		b.Run(fmt.Sprintf("vnodes=%d", vn), func(b *testing.B) {
			var imbalance float64
			for i := 0; i < b.N; i++ {
				r := benchRing(b, 10, vn)
				counts := map[string]int{}
				const keys = 10000
				for k := 0; k < keys; k++ {
					counts[r.Owner([]byte(fmt.Sprintf("key-%d", k)))]++
				}
				max := 0
				for _, c := range counts {
					if c > max {
						max = c
					}
				}
				imbalance = float64(max) / (keys / 10.0)
			}
			b.ReportMetric(imbalance, "max/mean")
		})
	}
}
