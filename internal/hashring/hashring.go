// Package hashring implements consistent hashing with virtual nodes: the
// partitioner of the distributed key-value store that holds each D2-ring's
// deduplication index (the paper's Cassandra "random partitioning
// strategy").
//
// Every physical node contributes a configurable number of virtual points
// on a 64-bit hash circle. A key is owned by the first point clockwise from
// the key's hash; replicas live on the next distinct physical nodes.
// Virtual nodes smooth the load distribution and keep data movement
// proportional to 1/N when membership changes.
package hashring

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// DefaultVirtualNodes is the default number of points per physical node.
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring. It is safe for concurrent use. The zero
// value is not usable; construct with New.
type Ring struct {
	vnodes int

	mu     sync.RWMutex
	points []point         // sorted by hash
	nodes  map[string]bool // physical node membership
}

type point struct {
	hash uint64
	node string
}

// New returns an empty ring with the given number of virtual points per
// node. vnodes must be positive.
func New(vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		return nil, fmt.Errorf("hashring: virtual node count %d must be positive", vnodes)
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]bool)}, nil
}

// hash64 maps arbitrary bytes onto the circle via SHA-256 (truncated),
// which is uniform and stable across platforms.
func hash64(data []byte) uint64 {
	sum := sha256.Sum256(data)
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a physical node. Adding an existing node is a no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		h := hash64(fmt.Appendf(nil, "%s#%d", node, i))
		r.points = append(r.points, point{hash: h, node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a physical node and all its points. Removing an unknown
// node is a no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len returns the number of physical nodes.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Nodes returns the physical node names in unspecified order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	return out
}

// Lookup returns up to n distinct physical nodes responsible for key, in
// preference order (primary first, then successive replicas clockwise).
// It returns fewer nodes when the ring has fewer than n members and nil
// when the ring is empty.
func (r *Ring) Lookup(key []byte, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(idx+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	return out
}

// Owner returns the primary node for key, or "" on an empty ring.
func (r *Ring) Owner(key []byte) string {
	owners := r.Lookup(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}
