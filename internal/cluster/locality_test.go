package cluster

import (
	"context"
	"math"
	"testing"

	"efdedup/internal/agent"
)

// TestRemoteLookupFractionMatchesModel validates the V(P) model term
// empirically: with hashes spread uniformly over a ring of size |P| at
// replication factor γ, the measured remote-lookup fraction must track
// 1 - γ/|P|.
func TestRemoteLookupFractionMatchesModel(t *testing.T) {
	d := testDataset(t)
	for _, tc := range []struct {
		name  string
		rings [][]int
		size  float64
	}{
		{"size-2", [][]int{{0, 2}, {1, 3}}, 2},
		{"size-4", [][]int{{0, 1, 2, 3}}, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := smallCluster(t) // RF = 2 by default
			if err := c.ApplyPartition(tc.rings, agent.ModeRing); err != nil {
				t.Fatal(err)
			}
			res, err := c.Run(context.Background(), d.File, 2)
			if err != nil {
				t.Fatal(err)
			}
			want := 1 - 2.0/tc.size // γ=2
			got := res.RemoteLookupFraction()
			if math.Abs(got-want) > 0.15 {
				t.Errorf("remote lookup fraction %.3f, model predicts %.3f (|P|=%v, γ=2)",
					got, want, tc.size)
			}
			if res.LocalLookups+res.RemoteLookups == 0 {
				t.Error("no lookups counted")
			}
		})
	}
}

// TestRemoteLookupFractionZeroSafe covers the no-lookup path.
func TestRemoteLookupFractionZeroSafe(t *testing.T) {
	var r RunResult
	if r.RemoteLookupFraction() != 0 {
		t.Fatal("zero lookups produced non-zero fraction")
	}
}
