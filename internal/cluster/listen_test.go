package cluster

import (
	"testing"

	"efdedup/internal/transport"
)

type closeRecorder struct{ closed bool }

func (c *closeRecorder) Close() error { c.closed = true; return nil }

// A service whose bind fails during New is not yet tracked by the
// Cluster, so listenOrClose must release it on the spot.
func TestListenOrCloseReleasesOwnerOnFailure(t *testing.T) {
	m := transport.NewMemNetwork()
	if _, err := m.Listen("busy"); err != nil {
		t.Fatalf("pre-occupy address: %v", err)
	}
	rec := &closeRecorder{}
	if _, err := listenOrClose(m, "busy", rec); err == nil {
		t.Fatal("expected an error listening on an occupied address")
	}
	if !rec.closed {
		t.Fatal("owner was not closed after the listen failure")
	}

	ok := &closeRecorder{}
	l, err := listenOrClose(m, "free", ok)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer l.Close()
	if ok.closed {
		t.Fatal("owner was closed on a successful listen")
	}
}
