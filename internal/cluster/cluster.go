// Package cluster assembles a complete in-process EF-dedup deployment:
// per-edge-node KV storage daemons, a central cloud store, netem-shaped
// links between sites, and a Dedup Agent per edge node — the stand-in for
// the paper's 20-VM OpenStack edge plus 4-VM EC2 cloud testbed.
//
// A Cluster is built once from a node/site layout, then ApplyPartition
// instantiates one distributed index per D2-ring and one agent per node
// (in ring, cloud-assisted or cloud-only mode), and Run drives a dataset
// through every agent in parallel, returning the measured throughput,
// WAN traffic and dedup ratios the paper's figures report.
package cluster

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"efdedup/internal/agent"
	"efdedup/internal/chunk"
	"efdedup/internal/cloudstore"
	"efdedup/internal/kvstore"
	"efdedup/internal/netem"
	"efdedup/internal/transport"
)

// CloudSite is the site name reserved for the central cloud.
const CloudSite = "cloud"

// cloudAddr is the cloud store's listen address on the fabric.
const cloudAddr = "cloud-store"

// Paper testbed defaults (Sec. V): measured edge↔edge 1.726 Gbps at
// 0.85 ms, edge↔cloud 0.377 Gbps at 12.2 ms.
var (
	DefaultEdgeLink = netem.Link{
		Delay:     850 * time.Microsecond,
		Bandwidth: 1.726e9 / 8,
	}
	DefaultWANLink = netem.Link{
		Delay:     12200 * time.Microsecond,
		Bandwidth: 0.377e9 / 8,
	}
)

// NodeSpec places one edge node at a site.
type NodeSpec struct {
	// Name is the node identifier (unique).
	Name string
	// Site is the edge-cloud the node lives in.
	Site string
}

// Config lays out a deployment.
type Config struct {
	// Nodes lists the edge nodes.
	Nodes []NodeSpec
	// EdgeLink shapes intra-edge (site-to-site among edge clouds)
	// traffic; defaults to DefaultEdgeLink.
	EdgeLink netem.Link
	// WANLink shapes edge↔cloud traffic; defaults to DefaultWANLink.
	WANLink netem.Link
	// IntraSiteLink shapes traffic between nodes of the same site;
	// zero means unshaped (same host/rack).
	IntraSiteLink netem.Link
	// ChunkSize configures every agent's fixed chunker; defaults to
	// chunk.DefaultFixedSize.
	ChunkSize int
	// ReplicationFactor is the index replication γ; defaults to 2 (the
	// paper's setting).
	ReplicationFactor int
	// LookupBatch/UploadBatch tune the agent pipeline.
	LookupBatch int
	UploadBatch int
	// HashWorkers/LookupInflight tune the agents' pipeline concurrency:
	// SHA-256 workers behind the chunker and overlapped index-lookup
	// batches. Zero takes the agent defaults (GOMAXPROCS-capped workers,
	// agent.DefaultLookupInflight).
	HashWorkers    int
	LookupInflight int
	// MaxStreams/ArenaBudgetBytes bound each agent's multi-stream
	// admission: concurrent streams and pooled chunk-payload bytes.
	// Zero takes the agent defaults; negative disables the bound.
	MaxStreams       int
	ArenaBudgetBytes int64
	// StartStagger delays node i's processing by i×StartStagger during
	// Run. Real data flows are not synchronized; without jitter,
	// correlated nodes race each other's index inserts and upload the
	// same chunks concurrently, hiding the cross-node dedup a ring
	// provides. The stagger head is included in the measured wall time.
	StartStagger time.Duration
}

// Cluster is a running deployment.
type Cluster struct {
	cfg   Config
	inner *transport.MemNetwork
	topo  *netem.Topology

	cloud *cloudstore.Server

	kvNodes []*kvstore.Node
	kvAddrs []string

	mu      sync.Mutex
	agents  []*agent.Agent
	indexes []*kvstore.Cluster
	clients []*cloudstore.Client
	rings   [][]int
}

// listenOrClose binds addr on the given network view, closing owner
// when the bind fails — the service being wired up is not yet tracked
// by the Cluster, so no other path would release it.
func listenOrClose(network transport.Network, addr string, owner io.Closer) (net.Listener, error) {
	l, err := network.Listen(addr)
	if err != nil {
		owner.Close()
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	return l, nil
}

// New builds and starts the deployment's always-on services (KV daemons
// and the cloud store). Call ApplyPartition before Run.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	seen := make(map[string]bool, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		if n.Name == "" || n.Site == "" {
			return nil, fmt.Errorf("cluster: node %+v needs name and site", n)
		}
		if n.Site == CloudSite {
			return nil, fmt.Errorf("cluster: site %q is reserved for the cloud", CloudSite)
		}
		if seen[n.Name] {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
	}
	if cfg.EdgeLink == (netem.Link{}) {
		cfg.EdgeLink = DefaultEdgeLink
	}
	if cfg.WANLink == (netem.Link{}) {
		cfg.WANLink = DefaultWANLink
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = chunk.DefaultFixedSize
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 2
	}

	c := &Cluster{
		cfg:   cfg,
		inner: transport.NewMemNetwork(),
		topo:  netem.NewTopology(cfg.EdgeLink),
	}

	// Wire site-pair links: edge→edge default comes from the topology
	// fallback (EdgeLink); edge↔cloud and intra-site are explicit.
	sites := make(map[string]bool)
	for _, n := range cfg.Nodes {
		sites[n.Site] = true
	}
	for s := range sites {
		c.topo.SetSymmetricLink(s, CloudSite, cfg.WANLink)
		if cfg.IntraSiteLink != (netem.Link{}) {
			c.topo.SetLink(s, s, cfg.IntraSiteLink)
		}
	}

	// Cloud store.
	chunker, err := chunk.NewFixedChunker(cfg.ChunkSize)
	if err != nil {
		return nil, err
	}
	cloud, err := cloudstore.NewServer(cloudstore.Config{Chunker: chunker})
	if err != nil {
		return nil, err
	}
	cl, err := listenOrClose(c.topo.NetworkFor(CloudSite, c.inner), cloudAddr, cloud)
	if err != nil {
		return nil, err
	}
	cloud.Serve(cl)
	c.cloud = cloud

	// One KV daemon per edge node, listening through its site's view.
	for _, n := range cfg.Nodes {
		node, err := kvstore.NewNode(kvstore.NodeConfig{})
		if err != nil {
			c.Close()
			return nil, err
		}
		addr := "kv-" + n.Name
		// node is not in c.kvNodes yet, so c.Close() cannot reach it;
		// a failed bind must release it here.
		l, err := listenOrClose(c.topo.NetworkFor(n.Site, c.inner), addr, node)
		if err != nil {
			c.Close()
			return nil, err
		}
		node.Serve(l)
		c.kvNodes = append(c.kvNodes, node)
		c.kvAddrs = append(c.kvAddrs, addr)
	}
	return c, nil
}

// Topology exposes the netem topology (for latency sweeps and byte
// counters).
func (c *Cluster) Topology() *netem.Topology { return c.topo }

// CloudStats returns the cloud store's counters.
func (c *Cluster) CloudStats() cloudstore.Stats { return c.cloud.Stats() }

// NodeCount returns the number of edge nodes.
func (c *Cluster) NodeCount() int { return len(c.cfg.Nodes) }

// Sites returns each node's site, indexed like Config.Nodes.
func (c *Cluster) Sites() []string {
	out := make([]string, len(c.cfg.Nodes))
	for i, n := range c.cfg.Nodes {
		out[i] = n.Site
	}
	return out
}

// KillNode stops a node's KV daemon (failure injection). The node's agent
// keeps running; its ring index survives via replication.
func (c *Cluster) KillNode(i int) error {
	if i < 0 || i >= len(c.kvNodes) {
		return fmt.Errorf("cluster: node %d out of range", i)
	}
	return c.kvNodes[i].Close()
}

// detachAgentsLocked removes the current agent generation from the
// cluster and returns it so the caller can close it after releasing
// c.mu — index and cloud clients close network connections, which must
// not happen under the testbed mutex (lockedio2).
func (c *Cluster) detachAgentsLocked() (indexes []*kvstore.Cluster, clients []*cloudstore.Client) {
	indexes, clients = c.indexes, c.clients
	c.indexes = nil
	c.clients = nil
	c.agents = nil
	return indexes, clients
}

// closeAgents tears down one detached agent generation.
func closeAgents(indexes []*kvstore.Cluster, clients []*cloudstore.Client) {
	for _, idx := range indexes {
		idx.Close()
	}
	for _, cl := range clients {
		cl.Close()
	}
}

// ApplyPartition instantiates agents for the given D2-rings and mode. For
// ring mode, each ring gets an independent distributed index spanning its
// members' KV daemons; other modes ignore rings. The new generation is
// dialed without holding c.mu and installed atomically at the end;
// concurrent ApplyPartition calls are not supported (the testbed drives
// partition changes sequentially).
func (c *Cluster) ApplyPartition(rings [][]int, mode agent.Mode) error {
	c.mu.Lock()
	oldIndexes, oldClients := c.detachAgentsLocked()
	c.rings = rings
	c.mu.Unlock()
	closeAgents(oldIndexes, oldClients)

	chunker, err := chunk.NewFixedChunker(c.cfg.ChunkSize)
	if err != nil {
		return err
	}

	ringOf := make(map[int][]string)
	if mode == agent.ModeRing {
		covered := make(map[int]bool)
		for _, ring := range rings {
			members := make([]string, 0, len(ring))
			for _, idx := range ring {
				if idx < 0 || idx >= len(c.cfg.Nodes) {
					return fmt.Errorf("cluster: ring references node %d out of range", idx)
				}
				if covered[idx] {
					return fmt.Errorf("cluster: node %d in more than one ring", idx)
				}
				covered[idx] = true
				members = append(members, c.kvAddrs[idx])
			}
			for _, idx := range ring {
				ringOf[idx] = members
			}
		}
		if len(covered) != len(c.cfg.Nodes) {
			return fmt.Errorf("cluster: partition covers %d of %d nodes", len(covered), len(c.cfg.Nodes))
		}
	}

	var indexes []*kvstore.Cluster
	var clients []*cloudstore.Client
	agents := make([]*agent.Agent, len(c.cfg.Nodes))
	for i, n := range c.cfg.Nodes {
		view := c.topo.NetworkFor(n.Site, c.inner)
		cloudClient, err := cloudstore.Dial(context.Background(), view, cloudAddr)
		if err != nil {
			closeAgents(indexes, clients)
			return fmt.Errorf("cluster: node %s dial cloud: %w", n.Name, err)
		}
		clients = append(clients, cloudClient)

		cfg := agent.Config{
			Name:             n.Name,
			Mode:             mode,
			Chunker:          chunker,
			Cloud:            cloudClient,
			LookupBatch:      c.cfg.LookupBatch,
			UploadBatch:      c.cfg.UploadBatch,
			HashWorkers:      c.cfg.HashWorkers,
			LookupInflight:   c.cfg.LookupInflight,
			MaxStreams:       c.cfg.MaxStreams,
			ArenaBudgetBytes: c.cfg.ArenaBudgetBytes,
		}
		if mode == agent.ModeRing {
			idx, err := kvstore.NewCluster(kvstore.ClusterConfig{
				Members:           ringOf[i],
				ReplicationFactor: c.cfg.ReplicationFactor,
				LocalAddr:         c.kvAddrs[i],
				Network:           view,
			})
			if err != nil {
				closeAgents(indexes, clients)
				return fmt.Errorf("cluster: node %s index: %w", n.Name, err)
			}
			indexes = append(indexes, idx)
			cfg.Index = idx
		}
		a, err := agent.New(cfg)
		if err != nil {
			closeAgents(indexes, clients)
			return fmt.Errorf("cluster: node %s agent: %w", n.Name, err)
		}
		agents[i] = a
	}
	c.mu.Lock()
	c.agents = agents
	c.indexes = indexes
	c.clients = clients
	c.mu.Unlock()
	return nil
}

// RunResult aggregates one workload run.
type RunResult struct {
	// Mode the agents ran in.
	Mode agent.Mode
	// PerNode reports, indexed like Config.Nodes.
	PerNode []agent.Report
	// InputBytes is the total pre-dedup data volume.
	InputBytes int64
	// UploadedBytes is the chunk payload volume that crossed the WAN.
	UploadedBytes int64
	// Wall is the wall-clock time of the parallel run.
	Wall time.Duration
	// InterSiteBytes is the netem-observed traffic between different
	// sites (index lookups + uploads), the measurable network cost.
	InterSiteBytes int64
	// CloudUniqueBytes is what the content-addressed cloud actually
	// stores after the run.
	CloudUniqueBytes int64
	// LocalLookups and RemoteLookups count index membership probes that
	// stayed on the issuing node vs crossed the network (ring mode only)
	// — the measured form of the model's 1-γ/|P| remote fraction.
	LocalLookups, RemoteLookups int64
}

// RemoteLookupFraction is the measured probability that an index lookup
// left the issuing node. The model predicts 1-γ/|P| for a ring of size
// |P| with replication factor γ.
func (r RunResult) RemoteLookupFraction() float64 {
	total := r.LocalLookups + r.RemoteLookups
	if total == 0 {
		return 0
	}
	return float64(r.RemoteLookups) / float64(total)
}

// AggregateThroughput is the paper's Fig. 5(a) metric: total input data
// deduplicated per second across all nodes running in parallel.
func (r RunResult) AggregateThroughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.InputBytes) / r.Wall.Seconds()
}

// PerNodeThroughput is mean input bytes/second per edge node.
func (r RunResult) PerNodeThroughput() float64 {
	if len(r.PerNode) == 0 {
		return 0
	}
	return r.AggregateThroughput() / float64(len(r.PerNode))
}

// DedupRatio is input bytes over stored bytes. Ring and cloud-assisted
// agents ship exactly what will be stored; cloud-only ships everything and
// the cloud deduplicates, so the stored volume is the cloud's unique
// bytes.
func (r RunResult) DedupRatio() float64 {
	stored := r.UploadedBytes
	if r.Mode == agent.ModeCloudOnly {
		stored = r.CloudUniqueBytes
	}
	if stored <= 0 {
		return 1
	}
	return float64(r.InputBytes) / float64(stored)
}

// FileFunc returns the content of the index-th file for a node; the
// workload.Dataset interface satisfies it via closure.
type FileFunc func(node, index int) []byte

// Run drives filesPerNode files from the dataset through every agent in
// parallel and collects measurements. Byte counters are reset at the
// start of the run.
func (c *Cluster) Run(ctx context.Context, file FileFunc, filesPerNode int) (RunResult, error) {
	c.mu.Lock()
	agents := c.agents
	mode := agent.ModeRing
	if len(agents) > 0 {
		mode = agents[0].Mode()
	}
	c.mu.Unlock()
	if len(agents) == 0 {
		return RunResult{}, fmt.Errorf("cluster: ApplyPartition before Run")
	}

	baseUnique := c.cloud.Stats().UniqueBytes
	c.topo.ResetCounters()

	res := RunResult{Mode: mode, PerNode: make([]agent.Report, len(agents))}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, len(agents))
	for i, a := range agents {
		wg.Add(1)
		go func(i int, a *agent.Agent) {
			defer wg.Done()
			if c.cfg.StartStagger > 0 && i > 0 {
				select {
				case <-time.After(time.Duration(i) * c.cfg.StartStagger):
				case <-ctx.Done():
					errs[i] = ctx.Err()
					return
				}
			}
			var nodeTotal agent.Report
			for f := 0; f < filesPerNode; f++ {
				name := fmt.Sprintf("%s/file-%d", c.cfg.Nodes[i].Name, f)
				rep, err := a.ProcessBytes(ctx, name, file(i, f))
				if err != nil {
					errs[i] = err
					return
				}
				nodeTotal.InputBytes += rep.InputBytes
				nodeTotal.InputChunks += rep.InputChunks
				nodeTotal.DuplicateChunks += rep.DuplicateChunks
				nodeTotal.UploadedChunks += rep.UploadedChunks
				nodeTotal.UploadedBytes += rep.UploadedBytes
				nodeTotal.Duration += rep.Duration
			}
			res.PerNode[i] = nodeTotal
		}(i, a)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return res, fmt.Errorf("cluster: node %s: %w", c.cfg.Nodes[i].Name, err)
		}
	}
	res.Wall = time.Since(start)
	for _, rep := range res.PerNode {
		res.InputBytes += rep.InputBytes
		res.UploadedBytes += rep.UploadedBytes
	}
	res.InterSiteBytes = c.topo.TotalInterSiteBytes()
	res.CloudUniqueBytes = c.cloud.Stats().UniqueBytes - baseUnique
	c.mu.Lock()
	for _, idx := range c.indexes {
		local, remote := idx.LookupStats()
		res.LocalLookups += local
		res.RemoteLookups += remote
	}
	c.mu.Unlock()
	return res, nil
}

// Close tears down every service. The agent generation is detached
// under c.mu and closed outside it; kvNodes and cloud are set once at
// construction and need no lock (matching their unlocked reads in Run).
func (c *Cluster) Close() {
	c.mu.Lock()
	indexes, clients := c.detachAgentsLocked()
	c.mu.Unlock()
	closeAgents(indexes, clients)
	for _, n := range c.kvNodes {
		n.Close()
	}
	if c.cloud != nil {
		c.cloud.Close()
	}
}
