package cluster

import (
	"context"
	"testing"

	"efdedup/internal/agent"
)

// TestFailedReapplyDetachesOldGeneration pins the ApplyPartition
// teardown order: the old agent generation is detached and closed
// before the new one is built, so a reapply that fails validation
// leaves the cluster agent-less (Run refuses) instead of routing work
// through agents whose index and cloud connections were torn down.
func TestFailedReapplyDetachesOldGeneration(t *testing.T) {
	c := smallCluster(t)
	d := testDataset(t)
	if err := c.ApplyPartition([][]int{{0, 1}, {2, 3}}, agent.ModeRing); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background(), d.File, 1); err != nil {
		t.Fatal(err)
	}

	// Ring covers only half the nodes: rejected after the old
	// generation was already detached.
	if err := c.ApplyPartition([][]int{{0, 1}}, agent.ModeRing); err == nil {
		t.Fatal("partial cover accepted")
	}
	if _, err := c.Run(context.Background(), d.File, 1); err == nil {
		t.Fatal("Run succeeded against a detached agent generation")
	}

	// A subsequent valid partition fully recovers the cluster.
	if err := c.ApplyPartition(nil, agent.ModeCloudAssisted); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background(), d.File, 1); err != nil {
		t.Fatal(err)
	}
}
