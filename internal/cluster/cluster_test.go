package cluster

import (
	"context"
	"testing"
	"time"

	"efdedup/internal/agent"
	"efdedup/internal/netem"
	"efdedup/internal/workload"
)

// fastLinks keeps unit tests quick: small but non-zero delays.
func fastLinks(cfg *Config) {
	cfg.EdgeLink = netem.Link{Delay: 200 * time.Microsecond, Bandwidth: 1e9}
	cfg.WANLink = netem.Link{Delay: 2 * time.Millisecond, Bandwidth: 2e8}
}

// smallCluster builds a 4-node, 2-site cluster.
func smallCluster(t *testing.T) *Cluster {
	t.Helper()
	cfg := Config{
		Nodes: []NodeSpec{
			{Name: "e0", Site: "siteA"},
			{Name: "e1", Site: "siteA"},
			{Name: "e2", Site: "siteB"},
			{Name: "e3", Site: "siteB"},
		},
		ChunkSize: 2048,
	}
	fastLinks(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// testDataset: video-like, strong cross-node redundancy.
func testDataset(t *testing.T) workload.Dataset {
	t.Helper()
	d := workload.DefaultVideoDataset(7)
	d.Cameras = 4
	d.SitesShared = 2
	d.FrameBlocks = 16
	d.BlockSize = 2048
	d.FramesPerFile = 4
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Nodes: []NodeSpec{{Name: "a", Site: CloudSite}}}); err == nil {
		t.Error("reserved cloud site accepted")
	}
	if _, err := New(Config{Nodes: []NodeSpec{{Name: "a", Site: "s"}, {Name: "a", Site: "s"}}}); err == nil {
		t.Error("duplicate node names accepted")
	}
	if _, err := New(Config{Nodes: []NodeSpec{{Name: "", Site: "s"}}}); err == nil {
		t.Error("empty node name accepted")
	}
}

func TestRunRequiresPartition(t *testing.T) {
	c := smallCluster(t)
	if _, err := c.Run(context.Background(), func(int, int) []byte { return nil }, 1); err == nil {
		t.Fatal("Run before ApplyPartition succeeded")
	}
}

func TestApplyPartitionValidation(t *testing.T) {
	c := smallCluster(t)
	if err := c.ApplyPartition([][]int{{0, 1}}, agent.ModeRing); err == nil {
		t.Error("partial cover accepted")
	}
	if err := c.ApplyPartition([][]int{{0, 1, 2, 3}, {0}}, agent.ModeRing); err == nil {
		t.Error("overlapping rings accepted")
	}
	if err := c.ApplyPartition([][]int{{0, 1, 2, 9}}, agent.ModeRing); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestRingModeEndToEnd(t *testing.T) {
	c := smallCluster(t)
	d := testDataset(t)
	if err := c.ApplyPartition([][]int{{0, 1}, {2, 3}}, agent.ModeRing); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), d.File, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.InputBytes == 0 || res.UploadedBytes == 0 {
		t.Fatalf("empty run: %+v", res)
	}
	if res.UploadedBytes >= res.InputBytes {
		t.Errorf("no dedup: uploaded %d >= input %d", res.UploadedBytes, res.InputBytes)
	}
	if res.DedupRatio() <= 1.5 {
		t.Errorf("dedup ratio %.2f, want > 1.5 on video-like data", res.DedupRatio())
	}
	if res.AggregateThroughput() <= 0 || res.PerNodeThroughput() <= 0 {
		t.Error("throughput not measured")
	}
	if res.InterSiteBytes == 0 {
		t.Error("no inter-site traffic counted (uploads must cross the WAN)")
	}
}

func TestCloudOnlyVsRingUploadVolume(t *testing.T) {
	d := testDataset(t)
	runMode := func(mode agent.Mode, rings [][]int) RunResult {
		c := smallCluster(t)
		if err := c.ApplyPartition(rings, mode); err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(context.Background(), d.File, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ring := runMode(agent.ModeRing, [][]int{{0, 1}, {2, 3}})
	cloudOnly := runMode(agent.ModeCloudOnly, nil)

	if ring.UploadedBytes >= cloudOnly.UploadedBytes {
		t.Errorf("ring mode shipped %d bytes, cloud-only %d: edge dedup must reduce WAN volume",
			ring.UploadedBytes, cloudOnly.UploadedBytes)
	}
	// Cloud-only's server-side dedup can use the global view: its stored
	// bytes are a lower bound for any partitioned edge dedup.
	if cloudOnly.CloudUniqueBytes > ring.UploadedBytes {
		t.Errorf("cloud-only stored %d > ring uploaded %d: global dedup should win on ratio",
			cloudOnly.CloudUniqueBytes, ring.UploadedBytes)
	}
}

// TestRingCountAffectsDedupRatio reproduces Fig. 5(c)'s mechanism: fewer,
// larger rings find more duplicates.
func TestRingCountAffectsDedupRatio(t *testing.T) {
	d := testDataset(t)
	ratioFor := func(rings [][]int) float64 {
		c := smallCluster(t)
		if err := c.ApplyPartition(rings, agent.ModeRing); err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(context.Background(), d.File, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res.DedupRatio()
	}
	// Cameras 0,2 share a scene and 1,3 share a scene. Content-aware
	// pairing finds cross-node duplicates; per-site pairing does not.
	oneRing := ratioFor([][]int{{0, 1, 2, 3}})
	contentPairs := ratioFor([][]int{{0, 2}, {1, 3}})
	sitePairs := ratioFor([][]int{{0, 1}, {2, 3}})
	singletons := ratioFor([][]int{{0}, {1}, {2}, {3}})

	if oneRing < contentPairs-0.01 {
		t.Errorf("one ring ratio %.2f below content pairs %.2f", oneRing, contentPairs)
	}
	if contentPairs <= sitePairs {
		t.Errorf("content pairing %.2f not better than site pairing %.2f", contentPairs, sitePairs)
	}
	if sitePairs < singletons-0.01 {
		t.Errorf("site pairs %.2f below singletons %.2f", sitePairs, singletons)
	}
}

// TestIndexSurvivesNodeFailure: with RF=2, killing one KV daemon must not
// break dedup for the surviving ring members.
func TestIndexSurvivesNodeFailure(t *testing.T) {
	c := smallCluster(t)
	d := testDataset(t)
	if err := c.ApplyPartition([][]int{{0, 1, 2, 3}}, agent.ModeRing); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background(), d.File, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode(3); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), func(n, i int) []byte { return d.File(n, i+1) }, 1)
	if err != nil {
		t.Fatalf("run after node failure: %v", err)
	}
	if res.DedupRatio() <= 1 {
		t.Errorf("no dedup after failure: ratio %.2f", res.DedupRatio())
	}
}

// TestWANLatencyHurtsCloudAssisted reproduces the Fig. 5(b) mechanism:
// raising edge↔cloud delay slows cloud-assisted far more than ring mode.
func TestWANLatencyHurtsCloudAssisted(t *testing.T) {
	d := testDataset(t)
	throughput := func(mode agent.Mode, wanDelay time.Duration) float64 {
		cfg := Config{
			Nodes: []NodeSpec{
				{Name: "e0", Site: "siteA"},
				{Name: "e1", Site: "siteA"},
			},
			ChunkSize: 2048,
			// Small lookup batches put many index round trips on the
			// critical path, which is what distinguishes the modes here.
			LookupBatch: 4,
			EdgeLink:    netem.Link{Delay: 200 * time.Microsecond, Bandwidth: 1e9},
			WANLink:     netem.Link{Delay: wanDelay, Bandwidth: 2e8},
		}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		rings := [][]int{{0, 1}}
		if err := c.ApplyPartition(rings, mode); err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(context.Background(), d.File, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res.AggregateThroughput()
	}

	const low, high = 2 * time.Millisecond, 40 * time.Millisecond
	ringDrop := throughput(agent.ModeRing, low) / throughput(agent.ModeRing, high)
	assistedDrop := throughput(agent.ModeCloudAssisted, low) / throughput(agent.ModeCloudAssisted, high)
	if assistedDrop <= ringDrop {
		t.Errorf("WAN latency x20: cloud-assisted slowed %.2fx vs ring %.2fx — ring should be more resilient",
			assistedDrop, ringDrop)
	}
}
