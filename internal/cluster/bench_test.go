package cluster

import (
	"context"
	"testing"
	"time"

	"efdedup/internal/agent"
	"efdedup/internal/netem"
	"efdedup/internal/workload"
)

// BenchmarkEndToEndDedup measures the full testbed path: chunk → ring
// lookup → index insert → cloud upload, for a 4-node 2-ring deployment,
// reporting effective MB/s of input processed.
func BenchmarkEndToEndDedup(b *testing.B) {
	d := workload.DefaultVideoDataset(7)
	d.Cameras = 4
	d.SitesShared = 2
	d.FrameBlocks = 16
	d.BlockSize = 2048
	d.FramesPerFile = 4

	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := New(Config{
			Nodes: []NodeSpec{
				{Name: "e0", Site: "a"}, {Name: "e1", Site: "a"},
				{Name: "e2", Site: "b"}, {Name: "e3", Site: "b"},
			},
			ChunkSize: 2048,
			EdgeLink:  netem.Link{Delay: 500 * time.Microsecond, Bandwidth: 1e9},
			WANLink:   netem.Link{Delay: 2 * time.Millisecond, Bandwidth: 1e8},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.ApplyPartition([][]int{{0, 2}, {1, 3}}, agent.ModeRing); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := c.Run(context.Background(), d.File, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.SetBytes(res.InputBytes)
		c.Close()
		b.StartTimer()
	}
}
