package cluster

import (
	"context"
	"testing"

	"efdedup/internal/agent"
)

func TestClusterAccessors(t *testing.T) {
	c := smallCluster(t)
	if got := c.NodeCount(); got != 4 {
		t.Errorf("NodeCount = %d, want 4", got)
	}
	sites := c.Sites()
	if len(sites) != 4 || sites[0] != "siteA" || sites[3] != "siteB" {
		t.Errorf("Sites = %v", sites)
	}
	if c.Topology() == nil {
		t.Error("Topology() returned nil")
	}
	if st := c.CloudStats(); st.UniqueChunks != 0 {
		t.Errorf("fresh cloud has %d chunks", st.UniqueChunks)
	}
	if err := c.KillNode(-1); err == nil {
		t.Error("KillNode(-1) accepted")
	}
	if err := c.KillNode(99); err == nil {
		t.Error("KillNode(99) accepted")
	}
}

// TestRunResultMetricsZeroSafe covers the divide-by-zero guards.
func TestRunResultMetricsZeroSafe(t *testing.T) {
	var r RunResult
	if r.AggregateThroughput() != 0 || r.PerNodeThroughput() != 0 {
		t.Error("zero result produced non-zero throughput")
	}
	if r.DedupRatio() != 1 {
		t.Errorf("zero result DedupRatio = %v, want 1", r.DedupRatio())
	}
	r.Mode = agent.ModeCloudOnly
	r.InputBytes = 10
	if r.DedupRatio() != 1 {
		t.Errorf("cloud-only with zero stored DedupRatio = %v, want 1", r.DedupRatio())
	}
}

// TestReapplyPartitionReplacesAgents: ApplyPartition can be called again
// with a different mode on a live cluster.
func TestReapplyPartitionReplacesAgents(t *testing.T) {
	c := smallCluster(t)
	d := testDataset(t)
	if err := c.ApplyPartition([][]int{{0, 1}, {2, 3}}, agent.ModeRing); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background(), d.File, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyPartition(nil, agent.ModeCloudAssisted); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), func(n, i int) []byte { return d.File(n, i+1) }, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != agent.ModeCloudAssisted {
		t.Fatalf("Mode = %v after reapply", res.Mode)
	}
}
