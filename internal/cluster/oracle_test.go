package cluster

import (
	"context"
	"testing"

	"efdedup/internal/agent"
	"efdedup/internal/chunk"
)

// oracleUniqueChunks computes the exact unique chunk set of a workload in
// process — the ground truth any correct dedup deployment must converge
// to at the content-addressed cloud.
func oracleUniqueChunks(t *testing.T, file FileFunc, nodes, files, chunkSize int) (int64, int64) {
	t.Helper()
	chunker, err := chunk.NewFixedChunker(chunkSize)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[chunk.ID]int)
	var bytes int64
	for n := 0; n < nodes; n++ {
		for f := 0; f < files; f++ {
			chunks, err := chunk.SplitBytes(chunker, file(n, f))
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range chunks {
				if seen[c.ID] == 0 {
					bytes += int64(len(c.Data))
				}
				seen[c.ID]++
			}
		}
	}
	return int64(len(seen)), bytes
}

// TestCloudConvergesToOracleAcrossModes: whatever the strategy and
// whatever races occur between concurrent agents, the content-addressed
// cloud must end up with exactly the oracle's unique chunk set.
func TestCloudConvergesToOracleAcrossModes(t *testing.T) {
	d := testDataset(t)
	const files = 2
	wantChunks, wantBytes := oracleUniqueChunks(t, d.File, 4, files, 2048)

	for _, tc := range []struct {
		name  string
		mode  agent.Mode
		rings [][]int
	}{
		{"ring-pairs", agent.ModeRing, [][]int{{0, 2}, {1, 3}}},
		{"ring-single", agent.ModeRing, [][]int{{0, 1, 2, 3}}},
		{"ring-singletons", agent.ModeRing, [][]int{{0}, {1}, {2}, {3}}},
		{"cloud-assisted", agent.ModeCloudAssisted, nil},
		{"cloud-only", agent.ModeCloudOnly, nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := smallCluster(t)
			if err := c.ApplyPartition(tc.rings, tc.mode); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Run(context.Background(), d.File, files); err != nil {
				t.Fatal(err)
			}
			st := c.CloudStats()
			if st.UniqueChunks != wantChunks {
				t.Errorf("cloud has %d unique chunks, oracle says %d", st.UniqueChunks, wantChunks)
			}
			if st.UniqueBytes != wantBytes {
				t.Errorf("cloud has %d unique bytes, oracle says %d", st.UniqueBytes, wantBytes)
			}
		})
	}
}
