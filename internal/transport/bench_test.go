package transport

import (
	"context"
	"sync"
	"testing"
)

func benchServer(b *testing.B) (*Client, func()) {
	b.Helper()
	nw := NewMemNetwork()
	s := NewServer()
	s.Handle("echo", func(body []byte) ([]byte, error) { return body, nil })
	l, err := nw.Listen("srv")
	if err != nil {
		b.Fatal(err)
	}
	go s.Serve(l) //nolint:errcheck
	conn, err := nw.Dial(context.Background(), "srv")
	if err != nil {
		b.Fatal(err)
	}
	c := NewClient(conn)
	return c, func() { c.Close(); s.Close() }
}

func BenchmarkCallRoundTrip(b *testing.B) {
	c, cleanup := benchServer(b)
	defer cleanup()
	body := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(context.Background(), "echo", body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCallPipelined(b *testing.B) {
	c, cleanup := benchServer(b)
	defer cleanup()
	body := make([]byte, 64)
	const inflight = 16
	b.ResetTimer()
	var wg sync.WaitGroup
	sem := make(chan struct{}, inflight)
	for i := 0; i < b.N; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := c.Call(context.Background(), "echo", body); err != nil {
				b.Error(err)
			}
		}()
	}
	wg.Wait()
}

func BenchmarkCallLargePayload(b *testing.B) {
	c, cleanup := benchServer(b)
	defer cleanup()
	body := make([]byte, 256*1024)
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(context.Background(), "echo", body); err != nil {
			b.Fatal(err)
		}
	}
}
