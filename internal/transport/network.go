package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
)

// Network abstracts how services listen and dial, so the same cluster code
// runs over real TCP, an in-memory fabric, or a netem-shaped wrapper of
// either.
type Network interface {
	// Listen binds the given address and returns a listener.
	Listen(addr string) (net.Listener, error)
	// Dial connects to a previously bound address.
	Dial(ctx context.Context, addr string) (net.Conn, error)
}

// TCPNetwork is the real thing. Addresses are host:port; "host:0" asks the
// kernel for a free port (read it back from Listener.Addr).
type TCPNetwork struct{}

var _ Network = TCPNetwork{}

// Listen implements Network.
func (TCPNetwork) Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// Dial implements Network.
func (TCPNetwork) Dial(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// MemNetwork is an in-process fabric: listeners register under arbitrary
// string addresses and dials are wired through synchronous pipes. It lets
// a whole edge deployment (agents, KV rings, cloud) run inside one test.
type MemNetwork struct {
	mu        sync.Mutex
	listeners map[string]*memListener
}

var _ Network = (*MemNetwork)(nil)

// NewMemNetwork returns an empty fabric.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{listeners: make(map[string]*memListener)}
}

// Listen implements Network.
func (m *MemNetwork) Listen(addr string) (net.Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.listeners[addr]; ok {
		return nil, fmt.Errorf("%w: %q", ErrAddrInUse, addr)
	}
	l := &memListener{
		net:    m,
		addr:   memAddr(addr),
		accept: make(chan net.Conn, acceptBacklog),
		closed: make(chan struct{}),
	}
	m.listeners[addr] = l
	return l, nil
}

// Dial implements Network.
func (m *MemNetwork) Dial(ctx context.Context, addr string) (net.Conn, error) {
	m.mu.Lock()
	l := m.listeners[addr]
	m.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("%w: dial %q", ErrRefused, addr)
	}
	client, server := net.Pipe()
	select {
	case l.accept <- server:
		// When close raced the enqueue, the select above may have
		// picked the send even though closed was also ready — and the
		// Close-side drain may already have run, stranding the conn in
		// the backlog with no reader. Re-check and refuse.
		select {
		case <-l.closed:
			client.Close()
			server.Close()
			return nil, fmt.Errorf("%w: dial %q", ErrRefused, addr)
		default:
			return client, nil
		}
	case <-l.closed:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("%w: dial %q", ErrRefused, addr)
	case <-ctx.Done():
		client.Close()
		server.Close()
		return nil, ctx.Err()
	}
}

func (m *MemNetwork) remove(addr string) {
	m.mu.Lock()
	delete(m.listeners, addr)
	m.mu.Unlock()
}

// acceptBacklog is the pending-connection queue depth, the fabric's
// equivalent of the kernel's listen(2) backlog. Without it every Dial
// blocked until the server got around to Accept, so a busy accept loop
// head-of-line-blocked all of its dialers.
const acceptBacklog = 16

type memAddr string

func (memAddr) Network() string  { return "mem" }
func (a memAddr) String() string { return string(a) }

type memListener struct {
	net       *MemNetwork
	addr      memAddr
	accept    chan net.Conn
	closeOnce sync.Once
	closed    chan struct{}
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.closed)
		l.net.remove(string(l.addr))
		// Drain connections parked in the backlog so their peers see
		// a closed pipe instead of hanging on a conn nobody accepts.
		for {
			select {
			case c := <-l.accept:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}

func (l *memListener) Addr() net.Addr { return l.addr }
