// Package transport is the RPC substrate shared by the EF-dedup services
// (distributed KV store, central cloud store, dedup agents).
//
// It provides:
//
//   - a length-prefixed binary frame protocol with request multiplexing,
//     so many in-flight requests share one connection (essential when
//     per-link latency is emulated);
//   - Server, dispatching frames to registered method handlers;
//   - Client, a connection with concurrent Call support;
//   - Network, an abstraction over how bytes move: real TCP
//     (TCPNetwork) or an in-process memory fabric (MemNetwork) so whole
//     clusters can run inside one test binary.
package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// aLongTimeAgo unblocks an in-flight Write when its context fires.
var aLongTimeAgo = time.Unix(1, 0)

// MaxFrameSize bounds a single frame (1 GiB) to catch protocol corruption
// before it turns into an enormous allocation.
const MaxFrameSize = 1 << 30

// frame types.
const (
	frameRequest  = 1
	frameResponse = 2
)

// status codes carried on response frames.
const (
	statusOK    = 0
	statusError = 1
)

// ErrClientClosed is returned by Call after Close.
var ErrClientClosed = errors.New("transport: client closed")

// ErrProto marks malformed, truncated or over-limit frames: the peer is
// speaking a different protocol (or corrupting data), so retrying the
// same bytes cannot help and must not burn retry budget.
var ErrProto = errors.New("transport: protocol error")

// ErrRefused marks dials to an address nobody is listening on. It is
// retryable: the peer may simply not have bound yet.
var ErrRefused = errors.New("transport: connection refused")

// ErrAddrInUse marks an attempt to bind an already-bound address.
var ErrAddrInUse = errors.New("transport: address already in use")

// RemoteError is an application error returned by the remote handler, as
// opposed to a transport failure.
type RemoteError struct {
	Method string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote %s: %s", e.Method, e.Msg)
}

// IsRemoteError reports whether err is (or wraps) an application-level
// RemoteError. Retry layers use this to classify failures: a remote error
// proves the transport worked and must not be retried or counted against
// a peer's circuit breaker.
func IsRemoteError(err error) bool {
	var remote *RemoteError
	return errors.As(err, &remote)
}

// Retryable is the standard retry classifier for transport calls:
// everything except an application-level RemoteError (dial failures,
// resets, timeouts, lost connections) is worth retrying.
func Retryable(err error) bool { return !IsRemoteError(err) }

// writeFrame writes one length-prefixed frame. Callers must serialize.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrProto, len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrProto, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// request payload layout:
//
//	u8  frameRequest
//	u64 request id
//	u8  method length
//	... method bytes
//	... body
//
// response payload layout:
//
//	u8  frameResponse
//	u64 request id
//	u8  status
//	u32 error length (when status != OK)
//	... error bytes
//	... body
func encodeRequest(id uint64, method string, body []byte) ([]byte, error) {
	if len(method) > 255 {
		return nil, fmt.Errorf("%w: method name %q too long", ErrProto, method)
	}
	buf := make([]byte, 0, 10+len(method)+len(body))
	buf = append(buf, frameRequest)
	buf = binary.BigEndian.AppendUint64(buf, id)
	buf = append(buf, byte(len(method)))
	buf = append(buf, method...)
	buf = append(buf, body...)
	return buf, nil
}

func decodeRequest(p []byte) (id uint64, method string, body []byte, err error) {
	if len(p) < 10 || p[0] != frameRequest {
		return 0, "", nil, fmt.Errorf("%w: malformed request frame", ErrProto)
	}
	id = binary.BigEndian.Uint64(p[1:9])
	ml := int(p[9])
	if len(p) < 10+ml {
		return 0, "", nil, fmt.Errorf("%w: truncated request frame", ErrProto)
	}
	return id, string(p[10 : 10+ml]), p[10+ml:], nil
}

func encodeResponse(id uint64, body []byte, remoteErr string) []byte {
	buf := make([]byte, 0, 14+len(remoteErr)+len(body))
	buf = append(buf, frameResponse)
	buf = binary.BigEndian.AppendUint64(buf, id)
	if remoteErr != "" {
		buf = append(buf, statusError)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(remoteErr)))
		buf = append(buf, remoteErr...)
		return buf
	}
	buf = append(buf, statusOK)
	buf = append(buf, body...)
	return buf
}

func decodeResponse(p []byte) (id uint64, body []byte, remoteErr string, err error) {
	if len(p) < 10 || p[0] != frameResponse {
		return 0, nil, "", fmt.Errorf("%w: malformed response frame", ErrProto)
	}
	id = binary.BigEndian.Uint64(p[1:9])
	switch p[9] {
	case statusOK:
		return id, p[10:], "", nil
	case statusError:
		if len(p) < 14 {
			return 0, nil, "", fmt.Errorf("%w: truncated error frame", ErrProto)
		}
		el := int(binary.BigEndian.Uint32(p[10:14]))
		if len(p) < 14+el {
			return 0, nil, "", fmt.Errorf("%w: truncated error frame", ErrProto)
		}
		return id, nil, string(p[14 : 14+el]), nil
	default:
		return 0, nil, "", fmt.Errorf("%w: unknown status %d", ErrProto, p[9])
	}
}

// HandlerFunc processes one request body and returns a response body.
type HandlerFunc func(body []byte) ([]byte, error)

// Server dispatches framed requests to registered handlers.
type Server struct {
	mu       sync.Mutex
	handlers map[string]HandlerFunc
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a Server with no handlers registered.
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]HandlerFunc),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Handle registers fn for the given method name. Registration must happen
// before Serve; later registrations are still picked up but not synchronized
// with in-flight dispatches of the same name.
func (s *Server) Handle(method string, fn HandlerFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = fn
}

// Serve accepts connections from l until Close is called. It always returns
// a non-nil error; after Close it returns net.ErrClosed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		// Close ran before this listener was registered, so it could
		// not close it; do so here or conns already sitting in the
		// accept backlog would stay open (and unread) forever.
		l.Close()
		return net.ErrClosed
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var writeMu sync.Mutex
	var pending sync.WaitGroup
	defer pending.Wait()
	for {
		payload, err := readFrame(conn)
		if err != nil {
			return
		}
		id, method, body, err := decodeRequest(payload)
		if err != nil {
			return
		}
		s.mu.Lock()
		fn := s.handlers[method]
		s.mu.Unlock()
		pending.Add(1)
		go func() {
			defer pending.Done()
			var respBody []byte
			var errMsg string
			if fn == nil {
				errMsg = fmt.Sprintf("unknown method %q", method)
			} else if resp, herr := dispatch(fn, body); herr != nil {
				errMsg = herr.Error()
			} else {
				respBody = resp
			}
			writeMu.Lock()
			defer writeMu.Unlock()
			// A write failure means the peer is gone; the read loop
			// will terminate on its own.
			//lint:ignore lockedio,errlost writeMu exists to serialize response frames on this conn; a failed response write means the peer is gone and the read loop exits on its own
			_ = writeFrame(conn, encodeResponse(id, respBody, errMsg))
		}()
	}
}

// dispatch invokes a handler, converting a panic into an error so one
// malformed request cannot take down the process: the panic travels
// back to the caller as a statusError response wrapping ErrProto (a
// handler panic on hostile bytes is a protocol violation the decoder
// failed to reject) and the connection keeps serving.
func dispatch(fn HandlerFunc, body []byte) (resp []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp = nil
			err = fmt.Errorf("%w: handler panic: %v", ErrProto, r)
		}
	}()
	return fn(body)
}

// Close stops accepting, closes every connection and waits for in-flight
// handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// Client issues concurrent framed requests over a single connection.
type Client struct {
	conn    net.Conn
	writeMu sync.Mutex

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan response
	err     error // terminal error, set once the read loop dies
	done    chan struct{}
}

type response struct {
	body      []byte
	remoteErr string
}

// NewClient wraps an established connection. The client owns the
// connection and closes it on Close.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]chan response),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	var err error
	for {
		var payload []byte
		payload, err = readFrame(c.conn)
		if err != nil {
			break
		}
		id, body, remoteErr, decErr := decodeResponse(payload)
		if decErr != nil {
			err = decErr
			break
		}
		c.mu.Lock()
		ch := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ch != nil {
			ch <- response{body: body, remoteErr: remoteErr}
		}
	}
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	c.mu.Unlock()
	close(c.done)
}

// Call sends one request and waits for its response, the context, or
// connection failure — whichever comes first. It is safe for concurrent
// use.
func (c *Client) Call(ctx context.Context, method string, body []byte) ([]byte, error) {
	ch := make(chan response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	req, err := encodeRequest(id, method, body)
	if err != nil {
		c.abandon(id)
		return nil, err
	}
	c.writeMu.Lock()
	// The send itself must honor ctx: a peer that stopped reading (full
	// TCP send buffer, or an in-memory conn still in the accept
	// backlog) blocks Write indefinitely, and the select below only
	// covers the response wait. Clear first in case a previous
	// interrupted call left the poisoned deadline behind.
	//lint:ignore lockedio setting a deadline is local conn state, not blocking wire I/O
	c.conn.SetWriteDeadline(time.Time{})
	stop := context.AfterFunc(ctx, func() {
		c.conn.SetWriteDeadline(aLongTimeAgo)
	})
	//lint:ignore lockedio writeMu exists to serialize request frames on this conn; it guards the write itself
	err = writeFrame(c.conn, req)
	stop()
	c.writeMu.Unlock()
	if err != nil {
		c.abandon(id)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("transport: send %s: %w", method, err)
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			if err == nil {
				err = ErrClientClosed
			}
			return nil, fmt.Errorf("transport: %s: connection lost: %w", method, err)
		}
		if resp.remoteErr != "" {
			return nil, &RemoteError{Method: method, Msg: resp.remoteErr}
		}
		return resp.body, nil
	case <-ctx.Done():
		c.abandon(id)
		return nil, ctx.Err()
	}
}

// abandon forgets a pending request (response, if any, is dropped).
func (c *Client) abandon(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Close tears down the connection and fails all pending calls.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.err == nil {
		c.err = ErrClientClosed
	}
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}
