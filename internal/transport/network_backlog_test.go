package transport

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// Dial must not block waiting for the server's Accept: the listener
// carries a backlog, like a kernel listen queue. Before the backlog
// existed, every one of these dials hung until the context expired.
func TestMemNetworkDialBacklog(t *testing.T) {
	m := NewMemNetwork()
	l, err := m.Listen("svc")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	const pending = 4
	for i := 0; i < pending; i++ {
		c, err := m.Dial(ctx, "svc")
		if err != nil {
			t.Fatalf("dial %d with no Accept running: %v", i, err)
		}
		defer c.Close()
	}
	// The queued connections are then accepted in dial order.
	for i := 0; i < pending; i++ {
		c, err := l.Accept()
		if err != nil {
			t.Fatalf("accept %d: %v", i, err)
		}
		c.Close()
	}
}

// Closing the listener drains the backlog and closes the queued server
// halves, so their dialers see a dead pipe instead of hanging forever.
func TestMemListenerCloseDrainsBacklog(t *testing.T) {
	m := NewMemNetwork()
	l, err := m.Listen("svc")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	c, err := m.Dial(ctx, "svc")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := l.Close(); err != nil {
		t.Fatalf("close listener: %v", err)
	}
	// The drain closed the server half, so the client reads EOF
	// immediately instead of hanging on a conn nobody will accept.
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err != io.EOF {
		t.Fatalf("read from drained conn: got %v, want io.EOF", err)
	}
}

// A Call whose conn is stuck in the backlog (nobody accepting, so the
// pipe has no reader) must still honor its context: the send used to
// block forever because only the response wait watched ctx.
func TestCallContextInterruptsBlockedWrite(t *testing.T) {
	m := NewMemNetwork()
	l, err := m.Listen("svc")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer l.Close()
	conn, err := m.Dial(context.Background(), "svc")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	cl := NewClient(conn)
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cl.Call(ctx, "ping", []byte("x"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Call on an unread conn: err = %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Call took %v to honor a 100ms context", d)
	}
}

// Server.Close racing ahead of Serve used to strand backlogged conns:
// Close had no listener to close yet, and Serve returned without
// draining. Serve must close the listener itself in that case.
func TestServeAfterCloseDrainsBacklog(t *testing.T) {
	m := NewMemNetwork()
	l, err := m.Listen("svc")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	c, err := m.Dial(context.Background(), "svc")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	srv := NewServer()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := srv.Serve(l); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Serve after Close: err = %v, want net.ErrClosed", err)
	}
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err != io.EOF {
		t.Fatalf("read from stranded conn: got %v, want io.EOF", err)
	}
}
