package transport

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestHandlerPanicRecovered injects a panicking handler and checks that
// the panic comes back to the caller as a statusError response naming
// ErrProto, and that the same connection keeps serving afterwards.
func TestHandlerPanicRecovered(t *testing.T) {
	for name, nw := range networks(t) {
		t.Run(name, func(t *testing.T) {
			s := NewServer()
			s.Handle("echo", func(body []byte) ([]byte, error) { return body, nil })
			s.Handle("explode", func(body []byte) ([]byte, error) {
				var p []byte
				_ = p[7] // index out of range: the classic unguarded decoder read
				return nil, nil
			})
			l, err := nw.Listen("srv")
			if err != nil {
				l, err = nw.Listen("127.0.0.1:0")
				if err != nil {
					t.Fatalf("listen: %v", err)
				}
			}
			go s.Serve(l) //nolint:errcheck // returns on Close
			t.Cleanup(func() { s.Close() })

			c := dial(t, nw, l.Addr().String())
			ctx := context.Background()

			_, err = c.Call(ctx, "explode", []byte("hostile"))
			if err == nil {
				t.Fatal("call to panicking handler succeeded")
			}
			var remote *RemoteError
			if !errors.As(err, &remote) {
				t.Fatalf("want RemoteError, got %T: %v", err, err)
			}
			if !strings.Contains(remote.Msg, "handler panic") || !strings.Contains(remote.Msg, ErrProto.Error()) {
				t.Fatalf("panic error does not carry ErrProto context: %q", remote.Msg)
			}

			// The connection must survive the panic.
			resp, err := c.Call(ctx, "echo", []byte("still alive"))
			if err != nil {
				t.Fatalf("echo after panic: %v", err)
			}
			if string(resp) != "still alive" {
				t.Fatalf("echo after panic returned %q", resp)
			}
		})
	}
}
