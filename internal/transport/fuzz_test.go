package transport

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest: arbitrary bytes must never panic the request decoder,
// and anything that decodes must re-encode to an equivalent request.
func FuzzDecodeRequest(f *testing.F) {
	seed, _ := encodeRequest(42, "kv.get", []byte("payload"))
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{frameRequest})
	f.Add([]byte{frameRequest, 0, 0, 0, 0, 0, 0, 0, 1, 200}) // absurd method length
	f.Fuzz(func(t *testing.T, data []byte) {
		id, method, body, err := decodeRequest(data)
		if err != nil {
			return
		}
		if len(method) > 255 {
			t.Fatalf("decoded method longer than encodable: %d", len(method))
		}
		re, err := encodeRequest(id, method, body)
		if err != nil {
			t.Fatalf("re-encode of decoded request failed: %v", err)
		}
		id2, m2, b2, err := decodeRequest(re)
		if err != nil || id2 != id || m2 != method || !bytes.Equal(b2, body) {
			t.Fatalf("decode/encode not idempotent")
		}
	})
}

// FuzzDecodeResponse: the response decoder must be panic-free and
// idempotent through a re-encode.
func FuzzDecodeResponse(f *testing.F) {
	f.Add(encodeResponse(7, []byte("ok"), ""))
	f.Add(encodeResponse(8, nil, "remote failure"))
	f.Add([]byte{frameResponse, 0, 0, 0, 0, 0, 0, 0, 1, statusError, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, body, remoteErr, err := decodeResponse(data)
		if err != nil {
			return
		}
		re := encodeResponse(id, body, remoteErr)
		id2, b2, e2, err := decodeResponse(re)
		if err != nil || id2 != id || e2 != remoteErr {
			t.Fatalf("decode/encode not idempotent")
		}
		if remoteErr == "" && !bytes.Equal(b2, body) {
			t.Fatalf("body corrupted through re-encode")
		}
	})
}
