package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// startEcho spins up a server with an "echo" and a "fail" method on the
// given network and returns its address plus a cleanup func.
func startEcho(t *testing.T, nw Network) (string, *Server) {
	t.Helper()
	s := NewServer()
	s.Handle("echo", func(body []byte) ([]byte, error) {
		return body, nil
	})
	s.Handle("fail", func(body []byte) ([]byte, error) {
		return nil, fmt.Errorf("boom: %s", body)
	})
	s.Handle("slow", func(body []byte) ([]byte, error) {
		time.Sleep(200 * time.Millisecond)
		return body, nil
	})
	l, err := nw.Listen("srv")
	if err != nil {
		// TCP networks need a port spec instead of a name.
		l, err = nw.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
	}
	go s.Serve(l) //nolint:errcheck // returns on Close
	t.Cleanup(func() { s.Close() })
	return l.Addr().String(), s
}

func dial(t *testing.T, nw Network, addr string) *Client {
	t.Helper()
	conn, err := nw.Dial(context.Background(), addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c := NewClient(conn)
	t.Cleanup(func() { c.Close() })
	return c
}

func networks(t *testing.T) map[string]Network {
	return map[string]Network{
		"mem": NewMemNetwork(),
		"tcp": TCPNetwork{},
	}
}

func TestCallRoundTrip(t *testing.T) {
	for name, nw := range networks(t) {
		t.Run(name, func(t *testing.T) {
			addr, _ := startEcho(t, nw)
			c := dial(t, nw, addr)
			got, err := c.Call(context.Background(), "echo", []byte("payload"))
			if err != nil {
				t.Fatalf("Call: %v", err)
			}
			if string(got) != "payload" {
				t.Fatalf("Call = %q, want %q", got, "payload")
			}
		})
	}
}

func TestCallRemoteError(t *testing.T) {
	nw := NewMemNetwork()
	addr, _ := startEcho(t, nw)
	c := dial(t, nw, addr)
	_, err := c.Call(context.Background(), "fail", []byte("reason"))
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("Call error = %v, want RemoteError", err)
	}
	if re.Method != "fail" || re.Msg != "boom: reason" {
		t.Fatalf("RemoteError = %+v", re)
	}
}

func TestCallUnknownMethod(t *testing.T) {
	nw := NewMemNetwork()
	addr, _ := startEcho(t, nw)
	c := dial(t, nw, addr)
	_, err := c.Call(context.Background(), "nope", nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("unknown method error = %v, want RemoteError", err)
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	nw := NewMemNetwork()
	addr, _ := startEcho(t, nw)
	c := dial(t, nw, addr)
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("msg-%d", i)
			got, err := c.Call(context.Background(), "echo", []byte(want))
			if err != nil {
				errs <- err
				return
			}
			if string(got) != want {
				errs <- fmt.Errorf("cross-talk: got %q want %q", got, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestCallContextCancel(t *testing.T) {
	nw := NewMemNetwork()
	addr, _ := startEcho(t, nw)
	c := dial(t, nw, addr)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Call(ctx, "slow", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Call error = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 150*time.Millisecond {
		t.Fatal("Call did not return promptly on cancellation")
	}
}

func TestCallAfterServerClose(t *testing.T) {
	nw := NewMemNetwork()
	addr, srv := startEcho(t, nw)
	c := dial(t, nw, addr)
	if _, err := c.Call(context.Background(), "echo", nil); err != nil {
		t.Fatalf("warm-up call: %v", err)
	}
	srv.Close()
	if _, err := c.Call(context.Background(), "echo", nil); err == nil {
		t.Fatal("call after server close succeeded")
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	nw := NewMemNetwork()
	addr, _ := startEcho(t, nw)
	conn, err := nw.Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), "slow", nil)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("pending call succeeded after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call hung after Close")
	}
	if _, err := c.Call(context.Background(), "echo", nil); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("call after close = %v, want ErrClientClosed", err)
	}
}

func TestMemNetworkDialUnknownAddr(t *testing.T) {
	nw := NewMemNetwork()
	if _, err := nw.Dial(context.Background(), "missing"); err == nil {
		t.Fatal("dial to unknown address succeeded")
	}
}

func TestMemNetworkDuplicateListen(t *testing.T) {
	nw := NewMemNetwork()
	l, err := nw.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Listen("a"); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
	l.Close()
	// Address is reusable after close.
	l2, err := nw.Listen("a")
	if err != nil {
		t.Fatalf("re-listen after close: %v", err)
	}
	l2.Close()
}

func TestMemListenerCloseUnblocksAccept(t *testing.T) {
	nw := NewMemNetwork()
	l, err := nw.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("Accept after close = %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept hung after Close")
	}
}

func TestFrameCodecProperty(t *testing.T) {
	f := func(id uint64, method string, body []byte) bool {
		if len(method) > 255 || len(method) == 0 {
			return true // skip inputs the encoder rejects by design
		}
		req, err := encodeRequest(id, method, body)
		if err != nil {
			return false
		}
		gid, gm, gb, err := decodeRequest(req)
		if err != nil {
			return false
		}
		return gid == id && gm == method && bytes.Equal(gb, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResponseCodecProperty(t *testing.T) {
	f := func(id uint64, body []byte, errMsg string) bool {
		enc := encodeResponse(id, body, errMsg)
		gid, gb, gerr, err := decodeResponse(enc)
		if err != nil {
			return false
		}
		if gid != id || gerr != errMsg {
			return false
		}
		if errMsg == "" && !bytes.Equal(gb, body) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, _, err := decodeRequest([]byte{9, 9}); err == nil {
		t.Error("garbage request decoded")
	}
	if _, _, _, err := decodeResponse([]byte{1, 2, 3}); err == nil {
		t.Error("garbage response decoded")
	}
	// Truncated method.
	req, _ := encodeRequest(1, "abcdef", nil)
	if _, _, _, err := decodeRequest(req[:11]); err == nil {
		t.Error("truncated request decoded")
	}
}

func TestLargePayload(t *testing.T) {
	nw := NewMemNetwork()
	addr, _ := startEcho(t, nw)
	c := dial(t, nw, addr)
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}
	got, err := c.Call(context.Background(), "echo", big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("large payload corrupted in transit")
	}
}
