package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRingStateMatchesDirectEvaluation grows a ring node by node and checks
// every incremental quantity against the direct System computations.
func TestRingStateMatchesDirectEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sys := randomSystem(rng, 8)
	ring := NewRingState(sys)
	var set []int
	for i := 0; i < 8; i++ {
		// AddDelta must equal cost(set+{i}) - cost(set).
		before := sys.RingCost(set)
		after := sys.RingCost(append(append([]int{}, set...), i))
		delta := ring.AddDelta(i)
		if math.Abs(delta-(after-before)) > 1e-6*(1+math.Abs(after)) {
			t.Fatalf("step %d: AddDelta = %v, want %v", i, delta, after-before)
		}
		ring.Add(i)
		set = append(set, i)

		if got, want := ring.Storage(), sys.UniqueChunks(set); math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("step %d: Storage = %v, want %v", i, got, want)
		}
		if got, want := ring.Network(), sys.NetworkCost(set); math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("step %d: Network = %v, want %v", i, got, want)
		}
		if got, want := ring.DedupRatio(), sys.DedupRatio(set); math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("step %d: DedupRatio = %v, want %v", i, got, want)
		}
		if ring.Len() != len(set) {
			t.Fatalf("step %d: Len = %d, want %d", i, ring.Len(), len(set))
		}
	}
}

func TestRingStateCloneIsIndependent(t *testing.T) {
	sys := twoPoolSystem()
	ring := NewRingState(sys)
	ring.Add(0)
	clone := ring.Clone()
	clone.Add(1)
	if ring.Len() != 1 {
		t.Fatalf("original ring mutated by clone: Len = %d", ring.Len())
	}
	if clone.Len() != 2 {
		t.Fatalf("clone Len = %d, want 2", clone.Len())
	}
	if got, want := ring.Storage(), sys.UniqueChunks([]int{0}); math.Abs(got-want) > 1e-9 {
		t.Fatalf("original Storage changed: %v want %v", got, want)
	}
}

func TestRingStateMergeEqualsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sys := randomSystem(rng, 6)
	a, b := NewRingState(sys), NewRingState(sys)
	for i := 0; i < 3; i++ {
		a.Add(i)
	}
	for i := 3; i < 6; i++ {
		b.Add(i)
	}
	m := a.Merge(b)
	union := []int{0, 1, 2, 3, 4, 5}
	if got, want := m.Cost(), sys.RingCost(union); math.Abs(got-want) > 1e-6*(1+want) {
		t.Fatalf("Merge cost = %v, want %v", got, want)
	}
	// Merge must not mutate inputs.
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("Merge mutated inputs: %d, %d", a.Len(), b.Len())
	}
}

func TestRingStateMembersCopy(t *testing.T) {
	sys := twoPoolSystem()
	ring := NewRingState(sys)
	ring.Add(0)
	mem := ring.Members()
	mem[0] = 99
	if ring.Members()[0] != 0 {
		t.Fatal("Members() exposed internal slice")
	}
}

// TestPropertyRingStateConsistency fuzzes random add sequences.
func TestPropertyRingStateConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(7)
		sys := randomSystem(r, n)
		ring := NewRingState(sys)
		perm := r.Perm(n)
		take := 1 + r.Intn(n)
		var set []int
		for _, idx := range perm[:take] {
			ring.Add(idx)
			set = append(set, idx)
		}
		want := sys.RingCost(set)
		got := ring.Cost()
		return math.Abs(got-want) <= 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
