package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoPoolSystem builds a small two-source system used across tests.
func twoPoolSystem() *System {
	return &System{
		PoolSizes: []float64{1000, 500},
		Sources: []Source{
			{ID: 0, Rate: 10, Probs: []float64{0.6, 0.4}},
			{ID: 1, Rate: 20, Probs: []float64{0.5, 0.3}},
		},
		T:     100,
		Gamma: 1,
		Alpha: 0.1,
		NetCost: [][]float64{
			{0, 2},
			{2, 0},
		},
	}
}

func TestValidateAcceptsGoodSystem(t *testing.T) {
	if err := twoPoolSystem().Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*System)
	}{
		{"no sources", func(s *System) { s.Sources = nil }},
		{"zero window", func(s *System) { s.T = 0 }},
		{"negative gamma", func(s *System) { s.Gamma = -1 }},
		{"negative alpha", func(s *System) { s.Alpha = -0.5 }},
		{"zero pool", func(s *System) { s.PoolSizes[0] = 0 }},
		{"negative rate", func(s *System) { s.Sources[0].Rate = -3 }},
		{"probs length mismatch", func(s *System) { s.Sources[0].Probs = []float64{1} }},
		{"prob above one", func(s *System) { s.Sources[0].Probs[0] = 1.5 }},
		{"prob below zero", func(s *System) { s.Sources[0].Probs[0] = -0.1 }},
		{"probs sum above one", func(s *System) {
			s.Sources[0].Probs = []float64{0.9, 0.9}
		}},
		{"duplicate IDs", func(s *System) { s.Sources[1].ID = 0 }},
		{"ID outside matrix", func(s *System) { s.Sources[1].ID = 7 }},
		{"ragged matrix", func(s *System) { s.NetCost[0] = []float64{0} }},
		{"negative cost", func(s *System) { s.NetCost[0][1] = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sys := twoPoolSystem()
			tt.mutate(sys)
			if err := sys.Validate(); err == nil {
				t.Fatalf("Validate() accepted invalid system")
			}
		})
	}
}

func TestValidateNilSystem(t *testing.T) {
	var sys *System
	if err := sys.Validate(); err == nil {
		t.Fatal("Validate() accepted nil system")
	}
}

// TestUniqueChunksSingleSourceClosedForm checks the direct Theorem 1
// expectation for one source against an independent computation.
func TestUniqueChunksSingleSourceClosedForm(t *testing.T) {
	sys := twoPoolSystem()
	got := sys.UniqueChunks([]int{0})

	src := sys.Sources[0]
	want := 0.0
	for k, s := range sys.PoolSizes {
		g := math.Pow(1-src.Probs[k]/s, src.Rate*sys.T)
		want += s * (1 - g)
	}
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("UniqueChunks = %v, want %v", got, want)
	}
}

// TestUniqueChunksMonteCarlo validates Theorem 1 against a direct
// simulation of the generative process.
func TestUniqueChunksMonteCarlo(t *testing.T) {
	sys := &System{
		PoolSizes: []float64{200, 100},
		Sources: []Source{
			{ID: 0, Rate: 3, Probs: []float64{0.7, 0.3}},
			{ID: 1, Rate: 5, Probs: []float64{0.2, 0.8}},
		},
		T:     50,
		Gamma: 1,
	}
	want := sys.UniqueChunks([]int{0, 1})

	rng := rand.New(rand.NewSource(42))
	const trials = 400
	total := 0.0
	for trial := 0; trial < trials; trial++ {
		seen := make(map[[2]int]bool)
		for _, src := range sys.Sources {
			n := int(src.Rate * sys.T)
			for c := 0; c < n; c++ {
				u := rng.Float64()
				pool := -1
				acc := 0.0
				for k, p := range src.Probs {
					acc += p
					if u < acc {
						pool = k
						break
					}
				}
				if pool < 0 {
					continue // unique-noise mass (none here)
				}
				chunk := rng.Intn(int(sys.PoolSizes[pool]))
				seen[[2]int{pool, chunk}] = true
			}
		}
		total += float64(len(seen))
	}
	got := total / trials
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("Monte Carlo unique chunks = %v, model says %v (>2%% apart)", got, want)
	}
}

func TestDedupRatioEdgeCases(t *testing.T) {
	sys := twoPoolSystem()
	if got := sys.DedupRatio(nil); got != 1 {
		t.Errorf("DedupRatio(empty) = %v, want 1", got)
	}
	if got := sys.DedupRatio([]int{0}); got < 1 {
		t.Errorf("DedupRatio(single) = %v, want >= 1", got)
	}
}

// TestDedupRatioImprovesWithCorrelatedSources checks that clustering two
// identical-distribution sources yields a strictly better ratio than each
// alone, while independent pools do not help.
func TestDedupRatioImprovesWithCorrelatedSources(t *testing.T) {
	sys := &System{
		PoolSizes: []float64{100, 100},
		Sources: []Source{
			{ID: 0, Rate: 10, Probs: []float64{1, 0}},
			{ID: 1, Rate: 10, Probs: []float64{1, 0}},
			{ID: 2, Rate: 10, Probs: []float64{0, 1}},
		},
		T:     100,
		Gamma: 1,
	}
	solo := sys.DedupRatio([]int{0})
	pair := sys.DedupRatio([]int{0, 1})
	if pair <= solo {
		t.Errorf("correlated pair ratio %v not better than solo %v", pair, solo)
	}
	// Sources 0 and 2 share nothing: the combined unique chunks must be
	// (nearly) the sum of individual unique chunks.
	sum := sys.UniqueChunks([]int{0}) + sys.UniqueChunks([]int{2})
	joint := sys.UniqueChunks([]int{0, 2})
	if math.Abs(sum-joint) > 1e-9*sum {
		t.Errorf("disjoint-pool union = %v, want %v", joint, sum)
	}
}

func TestNetworkCostProperties(t *testing.T) {
	sys := twoPoolSystem()
	if got := sys.NetworkCost([]int{0}); got != 0 {
		t.Errorf("NetworkCost(singleton) = %v, want 0", got)
	}
	// γ = ring size → every lookup is local.
	sys.Gamma = 2
	if got := sys.NetworkCost([]int{0, 1}); got != 0 {
		t.Errorf("NetworkCost with γ=|P| = %v, want 0", got)
	}
	// γ exceeding ring size must clamp, not go negative.
	sys.Gamma = 5
	if got := sys.NetworkCost([]int{0, 1}); got != 0 {
		t.Errorf("NetworkCost with γ>|P| = %v, want 0", got)
	}
	sys.Gamma = 1
	// Hand-computed: remote = 1-1/2 = 0.5, each of the two members pays
	// R_i·T·0.5·ν/1.
	want := 10*100*0.5*2.0 + 20*100*0.5*2.0
	if got := sys.NetworkCost([]int{0, 1}); math.Abs(got-want) > 1e-9 {
		t.Errorf("NetworkCost = %v, want %v", got, want)
	}
}

func TestCostAggregatesRings(t *testing.T) {
	sys := twoPoolSystem()
	c := sys.Cost([][]int{{0}, {1}, {}})
	wantStorage := sys.UniqueChunks([]int{0}) + sys.UniqueChunks([]int{1})
	if math.Abs(c.Storage-wantStorage) > 1e-9 {
		t.Errorf("Storage = %v, want %v", c.Storage, wantStorage)
	}
	if c.Network != 0 {
		t.Errorf("Network = %v, want 0 for singleton rings", c.Network)
	}
	if math.Abs(c.Aggregate-(c.Storage+sys.Alpha*c.Network)) > 1e-9 {
		t.Errorf("Aggregate = %v, want Storage+α·Network", c.Aggregate)
	}
}

func TestValidatePartition(t *testing.T) {
	sys := twoPoolSystem()
	if err := sys.ValidatePartition([][]int{{0}, {1}}); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
	if err := sys.ValidatePartition([][]int{{0}}); err == nil {
		t.Error("partition missing a source accepted")
	}
	if err := sys.ValidatePartition([][]int{{0, 1}, {1}}); err == nil {
		t.Error("overlapping partition accepted")
	}
	if err := sys.ValidatePartition([][]int{{0, 5}}); err == nil {
		t.Error("out-of-range index accepted")
	}
}

// TestLogSpaceStability exercises pool sizes and windows where the naive
// product would underflow to 0 and the naive power would round to 1.
func TestLogSpaceStability(t *testing.T) {
	sys := &System{
		PoolSizes: []float64{1e9},
		Sources: []Source{
			{ID: 0, Rate: 1e6, Probs: []float64{1}},
		},
		T:     1e4,
		Gamma: 1,
	}
	// R·T = 1e10 draws over a pool of 1e9: essentially all chunks seen.
	u := sys.UniqueChunks([]int{0})
	if u < 0.99e9 || u > 1e9 {
		t.Fatalf("UniqueChunks = %v, want ≈ 1e9 (pool exhausted)", u)
	}

	// Tiny draw probability: naive (1-p/s)^RT is fine, but make sure the
	// log-space result matches expectation u ≈ R·T for RT << s.
	sys2 := &System{
		PoolSizes: []float64{1e15},
		Sources:   []Source{{ID: 0, Rate: 10, Probs: []float64{1}}},
		T:         10,
		Gamma:     1,
	}
	u2 := sys2.UniqueChunks([]int{0})
	if math.Abs(u2-100) > 0.01 {
		t.Fatalf("UniqueChunks tiny-draw = %v, want ≈ 100", u2)
	}
}

func TestUniqueProbContributesLinearly(t *testing.T) {
	sys := &System{
		PoolSizes: []float64{100},
		Sources: []Source{
			{ID: 0, Rate: 10, Probs: []float64{0.5}}, // deficit 0.5 → unique
		},
		T:     10,
		Gamma: 1,
	}
	u := sys.UniqueChunks([]int{0})
	// 50 unique-noise chunks plus pool expectation.
	pool := 100 * (1 - math.Pow(1-0.5/100, 100))
	if math.Abs(u-(50+pool)) > 1e-9 {
		t.Fatalf("UniqueChunks = %v, want %v", u, 50+pool)
	}
}

// randomSystem builds a randomized but valid system for property tests.
func randomSystem(rng *rand.Rand, n int) *System {
	k := 1 + rng.Intn(4)
	pools := make([]float64, k)
	for i := range pools {
		pools[i] = 100 + rng.Float64()*10000
	}
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i != j {
				cost[i][j] = rng.Float64() * 10
			}
		}
	}
	srcs := make([]Source, n)
	for i := range srcs {
		probs := make([]float64, k)
		rem := 1.0
		for p := range probs {
			probs[p] = rem * rng.Float64()
			rem -= probs[p]
		}
		srcs[i] = Source{ID: i, Rate: 1 + rng.Float64()*50, Probs: probs}
	}
	return &System{
		PoolSizes: pools,
		Sources:   srcs,
		T:         1 + rng.Float64()*100,
		Gamma:     float64(1 + rng.Intn(3)),
		Alpha:     rng.Float64(),
		NetCost:   cost,
	}
}

// TestPropertyUniqueChunksSubadditive: merging two rings never stores more
// than the two rings separately, and never less than the larger of the two.
func TestPropertyUniqueChunksSubadditive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(6)
		sys := randomSystem(r, n)
		cut := 1 + r.Intn(n-1)
		a := make([]int, 0, cut)
		b := make([]int, 0, n-cut)
		for i := 0; i < n; i++ {
			if i < cut {
				a = append(a, i)
			} else {
				b = append(b, i)
			}
		}
		all := append(append([]int{}, a...), b...)
		ua, ub, uall := sys.UniqueChunks(a), sys.UniqueChunks(b), sys.UniqueChunks(all)
		return uall <= ua+ub+1e-6 && uall >= math.Max(ua, ub)-1e-6
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDedupRatioAtLeastOne: Ω ≥ 1 always.
func TestPropertyDedupRatioAtLeastOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		sys := randomSystem(r, n)
		set := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				set = append(set, i)
			}
		}
		return sys.DedupRatio(set) >= 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNetworkCostScalesWithAlphaFreeTerms: V is non-negative and
// grows when every pairwise cost doubles.
func TestPropertyNetworkCostMonotoneInCosts(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(6)
		sys := randomSystem(r, n)
		set := make([]int, n)
		for i := range set {
			set[i] = i
		}
		v1 := sys.NetworkCost(set)
		if v1 < 0 {
			return false
		}
		for i := range sys.NetCost {
			for j := range sys.NetCost[i] {
				sys.NetCost[i][j] *= 2
			}
		}
		v2 := sys.NetworkCost(set)
		return v2 >= v1-1e-9 && math.Abs(v2-2*v1) < 1e-6*(1+v1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
