package model

import "math"

// RingState incrementally tracks the cost terms of one D2-ring so that
// greedy partitioners can evaluate U(P ∪ {v}) + α·V(P ∪ {v}) in O(K + |P|)
// instead of recomputing the whole ring in O(K·|P| + |P|²).
//
// A RingState is bound to the System it was created from and must not be
// used after the System's sources, pools or cost matrix change.
type RingState struct {
	sys     *System
	members []int // indices into sys.Sources

	// logMissSum[k] = Σ_{i∈P} log g_ik.
	logMissSum []float64
	// uniquePrivate = Σ_{i∈P} uniqueProb_i·R_i·T.
	uniquePrivate float64
	// pairSum = Σ_{i∈P} R_i·T · Σ_{j∈P, j≠i} ν_ij.
	pairSum float64
	// rateT = Σ R_i·T, cached for dedup-ratio queries.
	rateT float64
}

// NewRingState returns an empty ring bound to sys.
func NewRingState(sys *System) *RingState {
	return &RingState{
		sys:        sys,
		logMissSum: make([]float64, len(sys.PoolSizes)),
	}
}

// Len returns the number of member sources.
func (r *RingState) Len() int { return len(r.members) }

// Members returns a copy of the member index list.
func (r *RingState) Members() []int {
	out := make([]int, len(r.members))
	copy(out, r.members)
	return out
}

// Clone returns an independent copy of the ring state.
func (r *RingState) Clone() *RingState {
	c := &RingState{
		sys:           r.sys,
		members:       append([]int(nil), r.members...),
		logMissSum:    append([]float64(nil), r.logMissSum...),
		uniquePrivate: r.uniquePrivate,
		pairSum:       r.pairSum,
		rateT:         r.rateT,
	}
	return c
}

// Storage returns U(P) for the current membership.
func (r *RingState) Storage() float64 {
	u := r.uniquePrivate
	for k, ls := range r.logMissSum {
		u += r.sys.PoolSizes[k] * (-math.Expm1(ls))
	}
	return u
}

// Network returns V(P) for the current membership.
func (r *RingState) Network() float64 {
	n := len(r.members)
	if n < 2 {
		return 0
	}
	remote := r.sys.remoteFraction(n)
	if remote == 0 {
		return 0
	}
	return remote * r.pairSum / float64(n-1)
}

// Cost returns U(P) + α·V(P).
func (r *RingState) Cost() float64 {
	return r.Storage() + r.sys.Alpha*r.Network()
}

// DedupRatio returns Ω(P) of the current membership (1 when empty).
func (r *RingState) DedupRatio() float64 {
	if len(r.members) == 0 {
		return 1
	}
	u := r.Storage()
	if u <= 0 {
		return 1
	}
	return r.rateT / u
}

// AddDelta returns Cost(P ∪ {idx}) - Cost(P) without mutating the ring.
func (r *RingState) AddDelta(idx int) float64 {
	dU, dV := r.DeltaParts(idx)
	return dU + r.sys.Alpha*dV
}

// DeltaParts returns the separate storage and network cost increments of
// adding source idx, without mutating the ring. Partition variants that
// ignore one term (the paper's Network-only and Dedup-only baselines)
// combine these with their own weights.
func (r *RingState) DeltaParts(idx int) (dStorage, dNetwork float64) {
	u, v := r.costPartsWith(idx)
	return u - r.Storage(), v - r.Network()
}

// costPartsWith returns U(P ∪ {idx}) and V(P ∪ {idx}) without mutating
// the ring.
func (r *RingState) costPartsWith(idx int) (u, v float64) {
	sys := r.sys
	src := sys.Sources[idx]

	u = r.uniquePrivate + src.UniqueProb()*src.Rate*sys.T
	for k, ls := range r.logMissSum {
		u += sys.PoolSizes[k] * (-math.Expm1(ls + sys.logMiss(src, k)))
	}

	n := len(r.members) + 1
	if n >= 2 && sys.NetCost != nil {
		pair := r.pairSum
		for _, j := range r.members {
			peer := sys.Sources[j]
			pair += src.Rate*sys.T*sys.NetCost[src.ID][peer.ID] +
				peer.Rate*sys.T*sys.NetCost[peer.ID][src.ID]
		}
		if remote := sys.remoteFraction(n); remote > 0 {
			v = remote * pair / float64(n-1)
		}
	}
	return u, v
}

// Add places source idx into the ring.
func (r *RingState) Add(idx int) {
	sys := r.sys
	src := sys.Sources[idx]
	for k := range r.logMissSum {
		r.logMissSum[k] += sys.logMiss(src, k)
	}
	r.uniquePrivate += src.UniqueProb() * src.Rate * sys.T
	if sys.NetCost != nil {
		for _, j := range r.members {
			peer := sys.Sources[j]
			r.pairSum += src.Rate*sys.T*sys.NetCost[src.ID][peer.ID] +
				peer.Rate*sys.T*sys.NetCost[peer.ID][src.ID]
		}
	}
	r.rateT += src.Rate * sys.T
	r.members = append(r.members, idx)
}

// Remove takes source idx out of the ring. It reports whether the source
// was a member. Removal inverts the incremental sums exactly (they are
// plain additions), so long move sequences stay numerically consistent.
func (r *RingState) Remove(idx int) bool {
	pos := -1
	for i, m := range r.members {
		if m == idx {
			pos = i
			break
		}
	}
	if pos < 0 {
		return false
	}
	sys := r.sys
	src := sys.Sources[idx]
	r.members[pos] = r.members[len(r.members)-1]
	r.members = r.members[:len(r.members)-1]
	for k := range r.logMissSum {
		r.logMissSum[k] -= sys.logMiss(src, k)
	}
	r.uniquePrivate -= src.UniqueProb() * src.Rate * sys.T
	if sys.NetCost != nil {
		for _, j := range r.members {
			peer := sys.Sources[j]
			r.pairSum -= src.Rate*sys.T*sys.NetCost[src.ID][peer.ID] +
				peer.Rate*sys.T*sys.NetCost[peer.ID][src.ID]
		}
	}
	r.rateT -= src.Rate * sys.T
	if len(r.members) == 0 {
		// Snap accumulated floating error back to a clean empty state.
		for k := range r.logMissSum {
			r.logMissSum[k] = 0
		}
		r.uniquePrivate, r.pairSum, r.rateT = 0, 0, 0
	}
	return true
}

// Merge returns a new ring state representing the union of r and other.
// Both inputs are left unchanged. Membership must be disjoint.
func (r *RingState) Merge(other *RingState) *RingState {
	m := r.Clone()
	for _, idx := range other.members {
		m.Add(idx)
	}
	return m
}
