package model

import (
	"math"
	"math/rand"
	"testing"
)

func benchSystem(n int) *System {
	rng := rand.New(rand.NewSource(1))
	return randomSystem(rng, n)
}

func BenchmarkUniqueChunksDirect(b *testing.B) {
	sys := benchSystem(50)
	set := make([]int, 50)
	for i := range set {
		set[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.UniqueChunks(set)
	}
}

func BenchmarkRingStateIncrementalAdd(b *testing.B) {
	sys := benchSystem(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ring := NewRingState(sys)
		for v := 0; v < 50; v++ {
			ring.Add(v)
		}
	}
}

// BenchmarkGreedyDeltaAblation compares the O(K) incremental AddDelta
// against recomputing the ring cost from scratch — the design choice that
// makes the SMART greedy O(N²·M·K) instead of O(N³·M·K).
func BenchmarkGreedyDeltaAblation(b *testing.B) {
	sys := benchSystem(40)
	ring := NewRingState(sys)
	for v := 0; v < 20; v++ {
		ring.Add(v)
	}
	members := ring.Members()
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ring.AddDelta(25)
		}
	})
	b.Run("recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			with := append(append([]int{}, members...), 25)
			_ = sys.RingCost(with) - sys.RingCost(members)
		}
	})
}

// BenchmarkLogSpaceAblation compares the numerically-stable Expm1/Log1p
// evaluation against the naive product form, and reports the naive form's
// relative error on a large-pool instance (where it collapses to zero
// precision).
func BenchmarkLogSpaceAblation(b *testing.B) {
	sys := &System{
		PoolSizes: []float64{1e12},
		Sources:   []Source{{ID: 0, Rate: 100, Probs: []float64{1}}},
		T:         10,
		Gamma:     1,
	}
	set := []int{0}
	naive := func() float64 {
		src := sys.Sources[0]
		g := math.Pow(1-src.Probs[0]/sys.PoolSizes[0], src.Rate*sys.T)
		return sys.PoolSizes[0] * (1 - g)
	}
	b.Run("stable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys.UniqueChunks(set)
		}
	})
	b.Run("naive", func(b *testing.B) {
		var got float64
		for i := 0; i < b.N; i++ {
			got = naive()
		}
		want := sys.UniqueChunks(set)
		if want > 0 {
			b.ReportMetric(math.Abs(got-want)/want*100, "rel-err-%")
		}
	})
}
