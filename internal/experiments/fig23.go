package experiments

import (
	"fmt"

	"efdedup/internal/chunk"
	"efdedup/internal/estimate"
)

// Fig2 reproduces the model-validation experiment of Sec. III-A: sample 6
// files from each of two accelerometer sources, measure the real dedup
// ratio of all 36 combinations, fit a K=3 chunk-pool model (Algorithm 1),
// and compare estimated against measured ratios. The paper reports
// MSE < 0.3 and mean error < 4%.
func Fig2(cfg Config) (*Figure, error) {
	d := cfg.accelDataset()
	files := 6
	if cfg.Quick {
		files = 3
	}
	chunker, err := chunk.NewFixedChunker(d.SegmentBytes)
	if err != nil {
		return nil, err
	}
	// Sources 1 and 2 = participants 0 and 1; the paper samples the
	// 0th, 2nd, ..., 10th files of each.
	var filesA, filesB [][]byte
	for f := 0; f < files; f++ {
		filesA = append(filesA, d.File(0, 2*f))
		filesB = append(filesB, d.File(1, 2*f))
	}
	cfg.logf("fig2: measuring %dx%d combination grid", files, files)
	gt, err := estimate.MeasurePairs(filesA, filesB, chunker)
	if err != nil {
		return nil, err
	}
	est, err := estimate.FitPairs(gt, estimate.Config{K: 3}, nil)
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID:     "fig2",
		Title:  "Real vs estimated dedup ratio over file combinations (Algorithm 1, K=3)",
		XLabel: "combination#",
		YLabel: "dedup ratio",
	}
	real := Series{Name: "measured"}
	pred := Series{Name: "estimated"}
	for i, combo := range gt.Combos {
		real.X = append(real.X, float64(i))
		real.Y = append(real.Y, combo.Ratio)
		pred.X = append(pred.X, float64(i))
		pred.Y = append(pred.Y, est.PredictRatio(combo))
	}
	fig.Series = []Series{real, pred}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("MSE = %.4f (paper: < 0.3)", est.MSE),
		fmt.Sprintf("mean relative error = %.2f%% (paper: < 4%%)", est.MeanRelativeError(gt)*100),
		fmt.Sprintf("fit sweeps = %d", est.Iterations),
	)
	return fig, nil
}

// Fig3 reproduces the time-varying estimation experiment: fit successive
// sample batches, warm-starting each fit with the previous estimate. The
// paper observes errors stay below 4% and refits converge much faster.
func Fig3(cfg Config) (*Figure, error) {
	d := cfg.accelDataset()
	timePoints := 4
	files := 4
	if cfg.Quick {
		timePoints, files = 2, 2
	}
	chunker, err := chunk.NewFixedChunker(d.SegmentBytes)
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID:     "fig3",
		Title:  "Estimation error and convergence across time points (warm start)",
		XLabel: "time point",
		YLabel: "mean relative error (%)",
	}
	errSeries := Series{Name: "error%"}
	sweepSeries := Series{Name: "fit sweeps"}
	var warm *estimate.PairEstimate
	for t := 0; t < timePoints; t++ {
		var filesA, filesB [][]byte
		for f := 0; f < files; f++ {
			filesA = append(filesA, d.File(0, t*files+f))
			filesB = append(filesB, d.File(1, t*files+f))
		}
		gt, err := estimate.MeasurePairs(filesA, filesB, chunker)
		if err != nil {
			return nil, err
		}
		fitCfg := estimate.Config{K: 3}
		if warm != nil {
			// Per the paper, refits stop as soon as the model is again
			// acceptably close, which is what makes them fast.
			fitCfg.MSEThreshold = warm.MSE * 1.25
		}
		est, err := estimate.FitPairs(gt, fitCfg, warm)
		if err != nil {
			return nil, err
		}
		cfg.logf("fig3: t=%d error=%.2f%% sweeps=%d", t+1, est.MeanRelativeError(gt)*100, est.Iterations)
		errSeries.X = append(errSeries.X, float64(t+1))
		errSeries.Y = append(errSeries.Y, est.MeanRelativeError(gt)*100)
		sweepSeries.X = append(sweepSeries.X, float64(t+1))
		sweepSeries.Y = append(sweepSeries.Y, float64(est.Iterations))
		warm = est
	}
	fig.Series = []Series{errSeries, sweepSeries}
	first := sweepSeries.Y[0]
	last := sweepSeries.Y[len(sweepSeries.Y)-1]
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("fit sweeps dropped from %.0f (cold) to %.0f (warm) — the paper's 'ends extremely quickly'", first, last),
	)
	return fig, nil
}
