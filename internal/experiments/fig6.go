package experiments

import (
	"fmt"
	"time"

	"efdedup/internal/agent"
	"efdedup/internal/partition"
)

// Fig6a reproduces the storage/network trade-off curves: with the 20-node
// 10-group testbed model (α=0.1, 5 ms inter-group RTT), storage cost
// rises with more (smaller) rings while network cost rises with fewer
// (larger) rings. Costs are the SNOD2 model terms of equal-size SMART
// partitions at each ring count.
func Fig6a(cfg Config) (*Figure, error) {
	nodes, sites := paperNodes, paperSites
	ringCounts := []int{1, 2, 4, 5, 10, 20}
	if cfg.Quick {
		nodes, sites = 6, 3
		ringCounts = []int{1, 2, 6}
	}
	d := cfg.accelDataset()
	specs := layout(nodes, sites)
	filesPerNode := 1
	cw := float64(d.SegmentsPerFile) * float64(filesPerNode)
	sys := accelSystem(d, specs, cw, interSiteRTT, defaultGamma, defaultAlpha)

	fig := &Figure{
		ID:     "fig6a",
		Title:  "Storage and network cost vs number of rings (model, α=0.1)",
		XLabel: "D2-rings",
		YLabel: "cost (chunks / weighted lookup-seconds)",
	}
	storage := Series{Name: "storage U"}
	network := Series{Name: "network V"}
	for _, m := range ringCounts {
		if m > nodes {
			continue
		}
		rings, err := partition.EqualSize{}.Partition(sys, m)
		if err != nil {
			return nil, fmt.Errorf("fig6a m=%d: %w", m, err)
		}
		c := sys.Cost(rings)
		cfg.logf("fig6a m=%d: U=%.0f V=%.1f", m, c.Storage, c.Network)
		storage.X = append(storage.X, float64(m))
		storage.Y = append(storage.Y, c.Storage)
		network.X = append(network.X, float64(m))
		network.Y = append(network.Y, c.Network)
	}
	fig.Series = []Series{storage, network}
	fig.Notes = append(fig.Notes,
		"storage cost increases with more rings (fewer dedup opportunities); network cost increases with larger rings (paper Fig. 6(a))")
	return fig, nil
}

// Fig6b reproduces the throughput-vs-ring-size crossover: for low
// inter-edge-cloud RTT larger rings win (better dedup beats lookup cost);
// beyond ~15 ms the network cost dominates and throughput falls with ring
// size.
func Fig6b(cfg Config) (*Figure, error) {
	nodes := paperNodes
	ringSizes := []int{1, 2, 4, 5, 10, 20}
	rtts := []time.Duration{5 * time.Millisecond, 15 * time.Millisecond, 25 * time.Millisecond}
	filesPerNode := 1
	if cfg.Quick {
		nodes = 4
		ringSizes = []int{1, 2, 4}
		rtts = []time.Duration{2 * time.Millisecond, 25 * time.Millisecond}
	}
	// Dataset 2 (video): redundancy lives ACROSS cameras filming the same
	// scene, so ring size directly controls how much of it a ring can
	// harvest — the benefit side of the crossover this figure shows.
	// (Dataset 1's redundancy is mostly within each node and shows the
	// cost side only.)
	dc := cfg.datasetCases()[1]
	ds := dc.data(nodes)

	fig := &Figure{
		ID:     "fig6b",
		Title:  "Dedup throughput vs ring size for varying inter-edge-cloud RTT",
		XLabel: "ring size (nodes)",
		YLabel: "aggregate throughput (MB/s)",
	}
	for _, rtt := range rtts {
		s := Series{Name: fmt.Sprintf("RTT %dms", rtt.Milliseconds())}
		for _, size := range ringSizes {
			if size > nodes {
				continue
			}
			m := nodes / size
			pt := testbedPoint{
				nodes: nodes, sites: paperSites, rings: m,
				chunkSize: dc.chunkSize,
				interRTT:  rtt, wanRTT: wanRTT,
				filesPerNode: filesPerNode,
			}
			if cfg.Quick {
				pt.sites = 2
			}
			specs := layout(nodes, pt.sites)
			sys := dc.system(nodes, specs, chunksPerWindow(ds, dc.chunkSize, filesPerNode), rtt, defaultAlpha)
			// Equal-size rings of the requested size.
			rings, err := partition.EqualSize{}.Partition(sys, m)
			if err != nil {
				return nil, err
			}
			res, err := runWith(cfg, pt, ds.File, rings, agent.ModeRing)
			if err != nil {
				return nil, fmt.Errorf("fig6b rtt=%v size=%d: %w", rtt, size, err)
			}
			cfg.logf("fig6b rtt=%v size=%d: %.1f MB/s", rtt, size, mbps(res.AggregateThroughput()))
			s.X = append(s.X, float64(size))
			s.Y = append(s.Y, mbps(res.AggregateThroughput()))
		}
		fig.Series = append(fig.Series, s)
	}
	// Crossover note: compare smallest vs largest ring at each RTT.
	for _, s := range fig.Series {
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		trend := "larger rings win"
		if last < first {
			trend = "larger rings lose"
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s: %.1f → %.1f MB/s (%s)", s.Name, first, last, trend))
	}
	return fig, nil
}

// Fig6c reproduces the aggregate-cost comparison of SMART against the
// Network-only and Dedup-only ablations (paper: 1.26x and 1.31x SMART's
// cost), evaluated on the 20-node model, plus measured storage/throughput
// deltas from testbed runs of the three partitions.
func Fig6c(cfg Config) (*Figure, error) {
	nodes, sites := paperNodes, paperSites
	if cfg.Quick {
		nodes, sites = 6, 3
	}
	d := cfg.accelDataset()
	specs := layout(nodes, sites)
	filesPerNode := 1
	cw := float64(d.SegmentsPerFile) * float64(filesPerNode)
	sys := accelSystem(d, specs, cw, interSiteRTT, defaultGamma, defaultAlpha)

	type entry struct {
		name string
		algo partition.Algorithm
	}
	entries := []entry{
		{"smart", partition.Portfolio{}},
		{"network-only", partition.Refined{
			Base: partition.SmartGreedy{Obj: partition.NetworkOnlyObjective},
			Obj:  partition.NetworkOnlyObjective,
		}},
		{"dedup-only", partition.Refined{
			Base: partition.SmartGreedy{Obj: partition.DedupOnlyObjective},
			Obj:  partition.DedupOnlyObjective,
		}},
	}

	fig := &Figure{
		ID:     "fig6c",
		Title:  "Aggregate SNOD2 cost: SMART vs single-objective ablations (α=0.1)",
		XLabel: "strategy# (0=smart,1=network-only,2=dedup-only)",
		YLabel: "aggregate cost",
	}
	agg := Series{Name: "aggregate cost"}
	thr := Series{Name: "throughput MB/s"}
	upl := Series{Name: "uploaded MB"}
	var smartCost float64
	m := min(paperRings, nodes)
	for i, e := range entries {
		rings, err := e.algo.Partition(sys, m)
		if err != nil {
			return nil, fmt.Errorf("fig6c %s: %w", e.name, err)
		}
		c := sys.Cost(rings)
		if i == 0 {
			smartCost = c.Aggregate
		}
		pt := testbedPoint{
			nodes: nodes, sites: sites, rings: m,
			chunkSize: d.SegmentBytes,
			interRTT:  interSiteRTT, wanRTT: wanRTT,
			filesPerNode: filesPerNode,
		}
		res, err := runWith(cfg, pt, d.File, rings, agent.ModeRing)
		if err != nil {
			return nil, fmt.Errorf("fig6c %s run: %w", e.name, err)
		}
		cfg.logf("fig6c %s: cost=%.0f (%.2fx smart), uploaded=%.1fMB, throughput=%.1fMB/s",
			e.name, c.Aggregate, c.Aggregate/smartCost,
			float64(res.UploadedBytes)/1e6, mbps(res.AggregateThroughput()))
		agg.X = append(agg.X, float64(i))
		agg.Y = append(agg.Y, c.Aggregate)
		thr.X = append(thr.X, float64(i))
		thr.Y = append(thr.Y, mbps(res.AggregateThroughput()))
		upl.X = append(upl.X, float64(i))
		upl.Y = append(upl.Y, float64(res.UploadedBytes)/1e6)
	}
	fig.Series = []Series{agg, thr, upl}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("network-only pays %.2fx, dedup-only %.2fx SMART's aggregate cost (paper: 1.26x / 1.31x)",
			agg.Y[1]/agg.Y[0], agg.Y[2]/agg.Y[0]))
	return fig, nil
}
