package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"efdedup/internal/agent"
	"efdedup/internal/cluster"
	"efdedup/internal/model"
	"efdedup/internal/partition"
	"efdedup/internal/workload"
)

// testbedPoint describes one testbed measurement.
type testbedPoint struct {
	nodes        int
	sites        int
	rings        int
	chunkSize    int
	interRTT     time.Duration
	wanRTT       time.Duration
	filesPerNode int
}

// runTestbed builds a fresh cluster, partitions with the SMART portfolio
// (ring mode) or no partition (cloud modes) and drives the dataset
// through it.
func runTestbed(cfg Config, pt testbedPoint, ds workload.Dataset, sys *model.System, mode agent.Mode) (cluster.RunResult, error) {
	var rings [][]int
	if mode == agent.ModeRing {
		var err error
		rings, err = partition.Portfolio{}.Partition(sys, pt.rings)
		if err != nil {
			return cluster.RunResult{}, err
		}
	}
	return runWith(cfg, pt, ds.File, rings, mode)
}

// runWith measures one testbed point: it builds a fresh cluster per
// repetition (so no dedup state leaks between runs), applies the explicit
// partition, drives files through every agent in parallel, and returns
// the repetition with the median aggregate throughput — robust against
// the scheduling outliers a contended host produces.
func runWith(cfg Config, pt testbedPoint, file cluster.FileFunc, rings [][]int, mode agent.Mode) (cluster.RunResult, error) {
	runs := make([]cluster.RunResult, 0, cfg.repeats())
	for rep := 0; rep < cfg.repeats(); rep++ {
		res, err := runOnce(cfg, pt, file, rings, mode)
		if err != nil {
			return cluster.RunResult{}, err
		}
		runs = append(runs, res)
	}
	sort.Slice(runs, func(i, j int) bool {
		return runs[i].AggregateThroughput() < runs[j].AggregateThroughput()
	})
	return runs[len(runs)/2], nil
}

func runOnce(cfg Config, pt testbedPoint, file cluster.FileFunc, rings [][]int, mode agent.Mode) (cluster.RunResult, error) {
	ccfg := testbedConfig(pt.nodes, pt.sites, pt.chunkSize, pt.interRTT, pt.wanRTT)
	ccfg.HashWorkers = cfg.HashWorkers
	ccfg.LookupInflight = cfg.LookupInflight
	c, err := cluster.New(ccfg)
	if err != nil {
		return cluster.RunResult{}, err
	}
	defer c.Close()
	if err := c.ApplyPartition(rings, mode); err != nil {
		return cluster.RunResult{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	return c.Run(ctx, file, pt.filesPerNode)
}

// mbps converts bytes/s to MB/s.
func mbps(bytesPerSec float64) float64 { return bytesPerSec / 1e6 }

// datasetCase bundles one evaluation dataset with its model derivation.
type datasetCase struct {
	name      string
	chunkSize int
	data      func(nodes int) workload.Dataset
	system    func(nodes int, specs []cluster.NodeSpec, chunksPerWindow float64, interRTT time.Duration, alpha float64) *model.System
}

func (cfg Config) datasetCases() []datasetCase {
	accel := cfg.accelDataset()
	return []datasetCase{
		{
			name:      "accel",
			chunkSize: accel.SegmentBytes,
			data:      func(int) workload.Dataset { return accel },
			system: func(nodes int, specs []cluster.NodeSpec, cw float64, rtt time.Duration, alpha float64) *model.System {
				return accelSystem(accel, specs, cw, rtt, defaultGamma, alpha)
			},
		},
		{
			name:      "video",
			chunkSize: videoChunkSize,
			data:      func(nodes int) workload.Dataset { return cfg.videoDataset(nodes) },
			system: func(nodes int, specs []cluster.NodeSpec, cw float64, rtt time.Duration, alpha float64) *model.System {
				return videoSystem(cfg.videoDataset(nodes), specs, cw, rtt, defaultGamma, alpha)
			},
		},
	}
}

// chunksPerWindow estimates R·T for the model: chunks one node pushes in
// one run.
func chunksPerWindow(ds workload.Dataset, chunkSize, filesPerNode int) float64 {
	return float64(len(ds.File(0, 0))) / float64(chunkSize) * float64(filesPerNode)
}

// Fig5a reproduces the throughput-vs-cluster-size comparison: SMART (5
// D2-rings) vs Cloud-assisted vs Cloud-only for growing numbers of edge
// nodes, on both datasets. The paper reports SMART beating the baselines
// by 38.3-59.8% (dataset 1) and 67.4-118.5% (dataset 2), growing with
// cluster size.
func Fig5a(cfg Config) (*Figure, error) {
	nodeCounts := []int{4, 8, 12, 16, 20}
	filesPerNode := 1
	if cfg.Quick {
		nodeCounts = []int{2, 4}
	}
	fig := &Figure{
		ID:     "fig5a",
		Title:  "Dedup throughput vs number of edge nodes (SMART vs cloud strategies)",
		XLabel: "edge nodes",
		YLabel: "aggregate throughput (MB/s)",
	}
	modes := []agent.Mode{agent.ModeRing, agent.ModeCloudAssisted, agent.ModeCloudOnly}
	modeName := map[agent.Mode]string{
		agent.ModeRing:          "smart",
		agent.ModeCloudAssisted: "cloud-assisted",
		agent.ModeCloudOnly:     "cloud-only",
	}
	for _, dc := range cfg.datasetCases() {
		series := make(map[agent.Mode]*Series)
		for _, m := range modes {
			series[m] = &Series{Name: fmt.Sprintf("%s/%s", modeName[m], dc.name)}
		}
		for _, n := range nodeCounts {
			ds := dc.data(n)
			pt := testbedPoint{
				nodes: n, sites: paperSites, rings: min(paperRings, n),
				chunkSize: dc.chunkSize,
				interRTT:  interSiteRTT, wanRTT: wanRTT,
				filesPerNode: filesPerNode,
			}
			specs := layout(n, pt.sites)
			sys := dc.system(n, specs, chunksPerWindow(ds, dc.chunkSize, filesPerNode), pt.interRTT, defaultAlpha)
			for _, m := range modes {
				res, err := runTestbed(cfg, pt, ds, sys, m)
				if err != nil {
					return nil, fmt.Errorf("fig5a %s/%s n=%d: %w", modeName[m], dc.name, n, err)
				}
				cfg.logf("fig5a %s/%s n=%d: %.1f MB/s (ratio %.2f)",
					modeName[m], dc.name, n, mbps(res.AggregateThroughput()), res.DedupRatio())
				series[m].X = append(series[m].X, float64(n))
				series[m].Y = append(series[m].Y, mbps(res.AggregateThroughput()))
			}
		}
		for _, m := range modes {
			fig.Series = append(fig.Series, *series[m])
		}
		// Headline: improvement at the largest cluster.
		last := len(series[agent.ModeRing].Y) - 1
		smart := series[agent.ModeRing].Y[last]
		assisted := series[agent.ModeCloudAssisted].Y[last]
		only := series[agent.ModeCloudOnly].Y[last]
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"%s @%d nodes: smart +%.1f%% vs cloud-assisted, +%.1f%% vs cloud-only (paper: 38.3-67.4%% / 59.8-118.5%%)",
			dc.name, nodeCounts[len(nodeCounts)-1],
			(smart/assisted-1)*100, (smart/only-1)*100))
	}
	return fig, nil
}

// Fig5b reproduces the latency-sensitivity experiment: WAN RTT between the
// edge and the cloud swept upward; SMART's lead over cloud strategies must
// widen (paper: 24.2% at 30 ms to 67.1% at 100 ms vs cloud-assisted).
func Fig5b(cfg Config) (*Figure, error) {
	latencies := []time.Duration{
		wanRTT, 30 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
	}
	nodes := paperNodes
	filesPerNode := 1
	if cfg.Quick {
		latencies = []time.Duration{5 * time.Millisecond, 40 * time.Millisecond}
		nodes = 4
	}
	cases := cfg.datasetCases()
	if cfg.Quick {
		cases = cases[:1]
	}

	fig := &Figure{
		ID:     "fig5b",
		Title:  "Dedup throughput vs edge-cloud latency",
		XLabel: "WAN RTT (ms)",
		YLabel: "aggregate throughput (MB/s)",
	}
	modes := []agent.Mode{agent.ModeRing, agent.ModeCloudAssisted, agent.ModeCloudOnly}
	names := []string{"smart", "cloud-assisted", "cloud-only"}
	for ci, dc := range cases {
		ds := dc.data(nodes)
		series := make([]Series, len(modes))
		for i, name := range names {
			label := name
			if !cfg.Quick {
				label = fmt.Sprintf("%s/%s", name, dc.name)
			}
			series[i] = Series{Name: label}
		}
		for _, lat := range latencies {
			pt := testbedPoint{
				nodes: nodes, sites: paperSites, rings: min(paperRings, nodes),
				chunkSize: dc.chunkSize,
				interRTT:  interSiteRTT, wanRTT: lat,
				filesPerNode: filesPerNode,
			}
			specs := layout(nodes, pt.sites)
			sys := dc.system(nodes, specs, chunksPerWindow(ds, dc.chunkSize, filesPerNode), pt.interRTT, defaultAlpha)
			for i, m := range modes {
				res, err := runTestbed(cfg, pt, ds, sys, m)
				if err != nil {
					return nil, fmt.Errorf("fig5b %s/%s lat=%v: %w", names[i], dc.name, lat, err)
				}
				cfg.logf("fig5b %s/%s lat=%v: %.1f MB/s", names[i], dc.name, lat, mbps(res.AggregateThroughput()))
				series[i].X = append(series[i].X, float64(lat.Milliseconds()))
				series[i].Y = append(series[i].Y, mbps(res.AggregateThroughput()))
			}
		}
		fig.Series = append(fig.Series, series...)
		firstLead := series[0].Y[0]/series[1].Y[0] - 1
		lastLead := series[0].Y[len(series[0].Y)-1]/series[1].Y[len(series[1].Y)-1] - 1
		paperRef := "24.2%% → 67.1%%"
		if ci == 1 {
			paperRef = "+28.1%% avg (dataset 2)"
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"%s: smart lead over cloud-assisted grows from %.1f%% to %.1f%% as RTT rises (paper: %s)",
			dc.name, firstLead*100, lastLead*100, paperRef))
	}
	return fig, nil
}

// Fig5c reproduces the dedup-ratio experiment: SMART's ratio approaches
// the cloud bound as rings get fewer/larger.
func Fig5c(cfg Config) (*Figure, error) {
	ringCounts := []int{20, 10, 5, 4, 2, 1}
	nodes := paperNodes
	filesPerNode := 1
	if cfg.Quick {
		ringCounts = []int{4, 2, 1}
		nodes = 4
	}
	dc := cfg.datasetCases()[0]
	ds := dc.data(nodes)

	fig := &Figure{
		ID:     "fig5c",
		Title:  "Dedup ratio vs number of D2-rings (cloud bound for reference)",
		XLabel: "D2-rings",
		YLabel: "dedup ratio",
	}
	smart := Series{Name: "smart"}
	bound := Series{Name: "cloud bound"}

	// The cloud bound: global dedup over everything (cloud-only run).
	pt := testbedPoint{
		nodes: nodes, sites: paperSites, rings: 1,
		chunkSize: dc.chunkSize, interRTT: interSiteRTT, wanRTT: wanRTT,
		filesPerNode: filesPerNode,
	}
	specs := layout(nodes, pt.sites)
	sys := dc.system(nodes, specs, chunksPerWindow(ds, dc.chunkSize, filesPerNode), pt.interRTT, defaultAlpha)
	cloudRes, err := runTestbed(cfg, pt, ds, sys, agent.ModeCloudOnly)
	if err != nil {
		return nil, fmt.Errorf("fig5c cloud bound: %w", err)
	}
	cloudRatio := cloudRes.DedupRatio()

	for _, m := range ringCounts {
		if m > nodes {
			continue
		}
		pt.rings = m
		// Force exactly m equal-size rings: SMART left to its own devices
		// reuses few large rings for every budget, which is optimal but
		// hides the ring-count effect this figure isolates.
		rings, err := partition.EqualSize{}.Partition(sys, m)
		if err != nil {
			return nil, err
		}
		res, err := runWith(cfg, pt, ds.File, rings, agent.ModeRing)
		if err != nil {
			return nil, fmt.Errorf("fig5c m=%d: %w", m, err)
		}
		cfg.logf("fig5c m=%d: ratio %.3f (cloud %.3f)", m, res.DedupRatio(), cloudRatio)
		smart.X = append(smart.X, float64(m))
		smart.Y = append(smart.Y, res.DedupRatio())
		bound.X = append(bound.X, float64(m))
		bound.Y = append(bound.Y, cloudRatio)
	}
	fig.Series = []Series{smart, bound}
	lastSmart := smart.Y[len(smart.Y)-1]
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"with 1 ring SMART reaches %.1f%% of the cloud dedup ratio (paper: 'quickly approaches')",
		lastSmart/cloudRatio*100))
	return fig, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
