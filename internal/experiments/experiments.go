package experiments

import "fmt"

// Driver regenerates one figure.
type Driver func(Config) (*Figure, error)

// Registry maps figure IDs to their drivers, in paper order.
func Registry() []struct {
	ID     string
	Driver Driver
} {
	return []struct {
		ID     string
		Driver Driver
	}{
		{"fig2", Fig2},
		{"fig3", Fig3},
		{"fig5a", Fig5a},
		{"fig5b", Fig5b},
		{"fig5c", Fig5c},
		{"fig6a", Fig6a},
		{"fig6b", Fig6b},
		{"fig6c", Fig6c},
		{"fig7a", Fig7a},
		{"fig7b", Fig7b},
		{"ext-cdc", ExtChunking},
		{"ext-erasure", ExtErasure},
		{"ext-ingest", ExtIngest},
	}
}

// Run regenerates one figure by ID.
func Run(id string, cfg Config) (*Figure, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Driver(cfg)
		}
	}
	return nil, fmt.Errorf("experiments: unknown figure %q", id)
}

// All regenerates every figure in paper order.
func All(cfg Config) ([]*Figure, error) {
	var out []*Figure
	for _, e := range Registry() {
		cfg.logf("=== running %s ===", e.ID)
		fig, err := e.Driver(cfg)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		out = append(out, fig)
	}
	return out, nil
}
