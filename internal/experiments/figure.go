// Package experiments regenerates every table and figure of the EF-dedup
// evaluation (Sec. V): estimation accuracy (Fig. 2, 3), testbed throughput
// and dedup-ratio comparisons against cloud-based strategies (Fig. 5),
// the network/storage trade-off (Fig. 6), and large-scale simulations
// (Fig. 7). Each driver returns a Figure holding the same series the paper
// plots; absolute numbers differ from the paper's testbed, but the shapes
// (who wins, by what factor, where crossovers fall) are the reproduction
// target.
package experiments

import (
	"fmt"
	"strings"
)

// Series is one plotted line: Y[i] measured at X[i].
type Series struct {
	// Name labels the line (algorithm/strategy).
	Name string
	// X and Y are the data points, aligned by index.
	X []float64
	// Y holds the measured values.
	Y []float64
}

// Figure is one reproduced evaluation artifact.
type Figure struct {
	// ID matches the paper's numbering, e.g. "fig5a".
	ID string
	// Title describes the experiment.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Series holds the plotted lines.
	Series []Series
	// Notes records headline observations (e.g. measured improvement
	// percentages) for EXPERIMENTS.md.
	Notes []string
}

// Format renders the figure as an aligned text table, one row per X value
// and one column per series.
func (f *Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)

	// Collect the union of X values in first-seen order.
	var xs []float64
	seen := make(map[float64]bool)
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	// Header.
	fmt.Fprintf(&b, "%-16s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %20s", s.Name)
	}
	b.WriteString("\n")
	// Rows.
	for _, x := range xs {
		fmt.Fprintf(&b, "%-16.4g", x)
		for _, s := range f.Series {
			val, ok := s.at(x)
			if !ok {
				fmt.Fprintf(&b, " %20s", "-")
				continue
			}
			fmt.Fprintf(&b, " %20.4g", val)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "(y: %s)\n", f.YLabel)
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// at returns the series value at x.
func (s Series) at(x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Get returns the named series, or nil.
func (f *Figure) Get(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}
