package experiments

import (
	"fmt"

	"efdedup/internal/partition"
	"efdedup/internal/sim"
)

// simAlgorithms are the strategies Fig. 7 compares. All three get the
// same local-search polish under their own objectives so the comparison
// isolates the objective choice, plus a random baseline.
func simAlgorithms() []struct {
	name string
	algo partition.Algorithm
} {
	return []struct {
		name string
		algo partition.Algorithm
	}{
		{"smart", partition.Portfolio{}},
		{"network-only", partition.Refined{
			Base: partition.SmartGreedy{Obj: partition.NetworkOnlyObjective},
			Obj:  partition.NetworkOnlyObjective,
		}},
		{"dedup-only", partition.Refined{
			Base: partition.SmartGreedy{Obj: partition.DedupOnlyObjective},
			Obj:  partition.DedupOnlyObjective,
		}},
		{"random", partition.RandomBalanced{Seed: 7}},
	}
}

// Fig7a reproduces the cost-vs-scale simulation: 100..500 edge nodes with
// uniform 0-100 ms latencies, α=0.001, 20 unbalanced rings. The paper
// reports SMART with 43.35% / 45.49% lower aggregate cost than
// Network-only / Dedup-only at 500 nodes.
func Fig7a(cfg Config) (*Figure, error) {
	nodeCounts := []int{100, 200, 300, 400, 500}
	rings := 20
	alpha := 0.001
	if cfg.Quick {
		nodeCounts = []int{20, 40}
		rings = 5
	}
	fig := &Figure{
		ID:     "fig7a",
		Title:  "Aggregate cost vs number of edge nodes (simulation, α=0.001)",
		XLabel: "edge nodes",
		YLabel: "aggregate SNOD2 cost",
	}
	algos := simAlgorithms()
	series := make([]Series, len(algos))
	for i, a := range algos {
		series[i] = Series{Name: a.name}
	}
	for _, n := range nodeCounts {
		sys, err := sim.Build(sim.DefaultScenario(n, alpha, cfg.seed()))
		if err != nil {
			return nil, err
		}
		for i, a := range algos {
			_, cost, err := partition.Evaluate(a.algo, sys, rings)
			if err != nil {
				return nil, fmt.Errorf("fig7a %s n=%d: %w", a.name, n, err)
			}
			cfg.logf("fig7a %s n=%d: aggregate=%.0f (U=%.0f V=%.1f)",
				a.name, n, cost.Aggregate, cost.Storage, cost.Network)
			series[i].X = append(series[i].X, float64(n))
			series[i].Y = append(series[i].Y, cost.Aggregate)
		}
	}
	fig.Series = series
	last := len(nodeCounts) - 1
	smart := series[0].Y[last]
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"@%d nodes: smart %.1f%% below network-only, %.1f%% below dedup-only (paper: 43.35%% / 45.49%%)",
		nodeCounts[last],
		(1-smart/series[1].Y[last])*100, (1-smart/series[2].Y[last])*100))
	return fig, nil
}

// Fig7b reproduces the α sweep at fixed scale: as α grows the optimizer
// trades network cost for storage. The paper reports SMART 60.2% / 45.1%
// below the baselines at α=0.001.
func Fig7b(cfg Config) (*Figure, error) {
	alphas := []float64{0.0001, 0.001, 0.01, 0.1}
	nodes := 500
	rings := 20
	if cfg.Quick {
		nodes, rings = 40, 5
		alphas = []float64{0.001, 0.1}
	}
	fig := &Figure{
		ID:     "fig7b",
		Title:  fmt.Sprintf("Aggregate cost vs trade-off factor α (simulation, %d nodes)", nodes),
		XLabel: "alpha",
		YLabel: "aggregate SNOD2 cost",
	}
	algos := simAlgorithms()
	series := make([]Series, len(algos))
	for i, a := range algos {
		series[i] = Series{Name: a.name}
	}
	smartStorage := Series{Name: "smart storage U"}
	smartNetwork := Series{Name: "smart network V"}
	for _, alpha := range alphas {
		sys, err := sim.Build(sim.DefaultScenario(nodes, alpha, cfg.seed()))
		if err != nil {
			return nil, err
		}
		for i, a := range algos {
			_, cost, err := partition.Evaluate(a.algo, sys, rings)
			if err != nil {
				return nil, fmt.Errorf("fig7b %s α=%v: %w", a.name, alpha, err)
			}
			cfg.logf("fig7b %s α=%v: aggregate=%.0f (U=%.0f V=%.1f)",
				a.name, alpha, cost.Aggregate, cost.Storage, cost.Network)
			series[i].X = append(series[i].X, alpha)
			series[i].Y = append(series[i].Y, cost.Aggregate)
			if i == 0 {
				smartStorage.X = append(smartStorage.X, alpha)
				smartStorage.Y = append(smartStorage.Y, cost.Storage)
				smartNetwork.X = append(smartNetwork.X, alpha)
				smartNetwork.Y = append(smartNetwork.Y, cost.Network)
			}
		}
	}
	fig.Series = append(series, smartStorage, smartNetwork)
	// The paper's qualitative claim: V falls (and U rises) as α grows.
	firstV, lastV := smartNetwork.Y[0], smartNetwork.Y[len(smartNetwork.Y)-1]
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"smart network cost falls from %.1f to %.1f as α rises (storage takes its place)", firstV, lastV))
	idx := 0
	for i, a := range alphas {
		if a == 0.001 {
			idx = i
		}
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"@α=%.4g: smart %.1f%% below network-only, %.1f%% below dedup-only (paper: 60.2%% / 45.1%%)",
		alphas[idx],
		(1-series[0].Y[idx]/series[1].Y[idx])*100,
		(1-series[0].Y[idx]/series[2].Y[idx])*100))
	return fig, nil
}
