package experiments

import (
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true, Seed: 1} }

func TestFigureFormatAndGet(t *testing.T) {
	fig := &Figure{
		ID: "figX", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Name: "b", X: []float64{2}, Y: []float64{30}},
		},
		Notes: []string{"hello"},
	}
	out := fig.Format()
	for _, want := range []string{"figX", "demo", "a", "b", "hello", "10", "30"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
	// Missing point renders as '-'.
	if !strings.Contains(out, "-") {
		t.Error("missing point not rendered as '-'")
	}
	if fig.Get("a") == nil || fig.Get("nope") != nil {
		t.Error("Get misbehaves")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := Run("fig99", quickCfg()); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig2", "fig3", "fig5a", "fig5b", "fig5c", "fig6a", "fig6b", "fig6c", "fig7a", "fig7b", "ext-cdc", "ext-erasure", "ext-ingest"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, e := range reg {
		if e.ID != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
	}
}

func TestFig2Quick(t *testing.T) {
	fig, err := Fig2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("fig2 has %d series", len(fig.Series))
	}
	if len(fig.Series[0].Y) != 9 { // 3x3 quick grid
		t.Errorf("fig2 measured %d combos, want 9", len(fig.Series[0].Y))
	}
	for _, r := range fig.Series[0].Y {
		if r < 1 {
			t.Errorf("measured ratio %v < 1", r)
		}
	}
}

func TestFig3Quick(t *testing.T) {
	fig, err := Fig3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	sweeps := fig.Get("fit sweeps")
	if sweeps == nil || len(sweeps.Y) != 2 {
		t.Fatalf("fig3 sweeps series missing: %+v", fig.Series)
	}
	if sweeps.Y[1] > sweeps.Y[0] {
		t.Errorf("warm start did not reduce sweeps: %v", sweeps.Y)
	}
}

func TestFig5aQuick(t *testing.T) {
	fig, err := Fig5a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 6 { // 3 modes x 2 datasets
		t.Fatalf("fig5a has %d series, want 6", len(fig.Series))
	}
	smart := fig.Get("smart/accel")
	assisted := fig.Get("cloud-assisted/accel")
	only := fig.Get("cloud-only/accel")
	if smart == nil || assisted == nil || only == nil {
		t.Fatal("missing series")
	}
	last := len(smart.Y) - 1
	if smart.Y[last] <= assisted.Y[last] {
		t.Errorf("smart %.1f MB/s not above cloud-assisted %.1f MB/s", smart.Y[last], assisted.Y[last])
	}
	// At quick scale (tiny files) per-RPC latency blunts smart's edge over
	// cloud-only; the full-size run shows the paper's clear win. Require
	// rough parity here.
	if smart.Y[last] < only.Y[last]*0.7 {
		t.Errorf("smart %.1f MB/s far below cloud-only %.1f MB/s", smart.Y[last], only.Y[last])
	}
}

func TestFig5bQuick(t *testing.T) {
	fig, err := Fig5b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	smart := fig.Get("smart")
	assisted := fig.Get("cloud-assisted")
	if smart == nil || assisted == nil {
		t.Fatal("missing series")
	}
	// The shape: smart's lead over cloud-assisted widens with RTT.
	leadLow := smart.Y[0] / assisted.Y[0]
	leadHigh := smart.Y[len(smart.Y)-1] / assisted.Y[len(assisted.Y)-1]
	if leadHigh <= leadLow {
		t.Errorf("smart lead did not widen with RTT: %.2f -> %.2f", leadLow, leadHigh)
	}
}

func TestFig5cQuick(t *testing.T) {
	fig, err := Fig5c(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	smart := fig.Get("smart")
	bound := fig.Get("cloud bound")
	if smart == nil || bound == nil {
		t.Fatal("missing series")
	}
	for i := range smart.Y {
		if smart.Y[i] > bound.Y[i]*1.05 {
			t.Errorf("SMART ratio %.2f exceeds cloud bound %.2f", smart.Y[i], bound.Y[i])
		}
	}
	// Fewer rings (later X entries are smaller) → ratio must not fall.
	if smart.Y[len(smart.Y)-1] < smart.Y[0]-0.05 {
		t.Errorf("ratio with 1 ring (%.2f) below ratio with many rings (%.2f)",
			smart.Y[len(smart.Y)-1], smart.Y[0])
	}
}

func TestFig6aQuick(t *testing.T) {
	fig, err := Fig6a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	storage := fig.Get("storage U")
	network := fig.Get("network V")
	if storage == nil || network == nil {
		t.Fatal("missing series")
	}
	// Storage rises with ring count; network falls.
	n := len(storage.Y)
	if storage.Y[n-1] < storage.Y[0] {
		t.Errorf("storage cost not increasing with rings: %v", storage.Y)
	}
	if network.Y[n-1] > network.Y[0] {
		t.Errorf("network cost not decreasing with rings: %v", network.Y)
	}
}

func TestFig6bQuick(t *testing.T) {
	fig, err := Fig6b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("fig6b has %d series", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) == 0 {
			t.Fatalf("series %s empty", s.Name)
		}
	}
}

func TestFig6cQuick(t *testing.T) {
	fig, err := Fig6c(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	agg := fig.Get("aggregate cost")
	if agg == nil || len(agg.Y) != 3 {
		t.Fatal("missing aggregate series")
	}
	// SMART (index 0) must not exceed either ablation.
	if agg.Y[0] > agg.Y[1]*1.01 || agg.Y[0] > agg.Y[2]*1.01 {
		t.Errorf("SMART cost %v above ablations %v / %v", agg.Y[0], agg.Y[1], agg.Y[2])
	}
}

func TestFig7aQuick(t *testing.T) {
	fig, err := Fig7a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	smart := fig.Get("smart")
	if smart == nil {
		t.Fatal("missing smart series")
	}
	for _, name := range []string{"network-only", "dedup-only", "random"} {
		s := fig.Get(name)
		if s == nil {
			t.Fatalf("missing %s series", name)
		}
		last := len(smart.Y) - 1
		if smart.Y[last] > s.Y[last]*1.01 {
			t.Errorf("smart cost %v above %s %v", smart.Y[last], name, s.Y[last])
		}
	}
}

func TestFig7bQuick(t *testing.T) {
	fig, err := Fig7b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	v := fig.Get("smart network V")
	if v == nil || len(v.Y) < 2 {
		t.Fatal("missing network series")
	}
	// As α rises the optimizer buys less network.
	if v.Y[len(v.Y)-1] > v.Y[0]*1.05 {
		t.Errorf("network cost did not fall with α: %v", v.Y)
	}
}

func TestAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by individual quick tests")
	}
	figs, err := All(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != len(Registry()) {
		t.Fatalf("All returned %d figures, want %d", len(figs), len(Registry()))
	}
	for _, f := range figs {
		if out := f.Format(); len(out) == 0 {
			t.Errorf("%s formats empty", f.ID)
		}
	}
}

func TestExtChunkingQuick(t *testing.T) {
	fig, err := ExtChunking(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	fixed := fig.Get("fixed")
	gear := fig.Get("gear-cdc")
	if fixed == nil || gear == nil {
		t.Fatal("missing series")
	}
	// At zero shift both find the duplicate copy (≈2x).
	if fixed.Y[0] < 1.9 || gear.Y[0] < 1.9 {
		t.Errorf("zero-shift ratios fixed=%.2f gear=%.2f, want ≈2", fixed.Y[0], gear.Y[0])
	}
	// After a shift, fixed collapses to ≈1 while CDC stays near 2.
	last := len(fixed.Y) - 1
	if fixed.Y[last] > 1.1 {
		t.Errorf("shifted fixed ratio %.2f, want ≈1 (alignment destroyed)", fixed.Y[last])
	}
	if gear.Y[last] < 1.7 {
		t.Errorf("shifted gear ratio %.2f, want ≈2 (boundaries content-defined)", gear.Y[last])
	}
}

func TestExtErasureQuick(t *testing.T) {
	fig, err := ExtErasure(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rs := fig.Get("reed-solomon")
	repl := fig.Get("replication")
	if rs == nil || repl == nil {
		t.Fatal("missing series")
	}
	// RS must beat replication's expansion at the same failure tolerance.
	for i, f := range rs.X {
		if v, ok := repl.at(f); ok && rs.Y[i] >= v {
			t.Errorf("RS at f=%v costs %.2fx, replication %.2fx", f, rs.Y[i], v)
		}
	}
}

func TestExtIngestQuick(t *testing.T) {
	fig, err := ExtIngest(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	agg := fig.Get("aggregate MB/s")
	tail := fig.Get("p99/p50 latency")
	if agg == nil || tail == nil {
		t.Fatal("missing series")
	}
	if len(agg.Y) != 2 {
		t.Fatalf("quick run measured %d stream counts, want 2", len(agg.Y))
	}
	for i, y := range agg.Y {
		if y <= 0 {
			t.Errorf("aggregate throughput at %v streams is %.2f, want > 0", agg.X[i], y)
		}
	}
	// Shared pools must not collapse under fan-out: the highest stream
	// count keeps at least a third of single-stream throughput (a very
	// loose floor — CI machines are noisy, collapse is 10-100x).
	if last := agg.Y[len(agg.Y)-1]; last < agg.Y[0]/3 {
		t.Errorf("aggregate throughput collapsed under concurrency: %.1f -> %.1f MB/s", agg.Y[0], last)
	}
	for i, r := range tail.Y {
		if r < 1 {
			t.Errorf("p99/p50 at %v streams is %.2f, want >= 1", tail.X[i], r)
		}
	}
}
