package experiments

import (
	"fmt"

	"efdedup/internal/chunk"
	"efdedup/internal/cloudstore"
)

// The paper's Sec. VII names variable-size chunking and erasure-coded
// replicas as future work; this file quantifies both as extension
// experiments so the trade-offs the authors conjectured are measurable.

// ExtChunking compares fixed-size and content-defined chunking on data
// whose copies drift by a few bytes (appended headers, trimmed prefixes —
// the realistic IoT re-upload case). Fixed chunking loses all alignment
// after any prefix shift; CDC boundaries move with the content.
func ExtChunking(cfg Config) (*Figure, error) {
	shifts := []int{0, 1, 7, 64, 513, 4097}
	size := 1 << 20
	if cfg.Quick {
		shifts = []int{0, 7, 513}
		size = 1 << 18
	}
	// An incompressible payload (no internal duplicates), so the only
	// dedup opportunity is between the original and its shifted
	// re-upload: the ratio of the pair is 2.0 when every chunk survives
	// the shift and 1.0 when none does. Shifts avoid multiples of the
	// fixed chunk size, which would trivially re-align it.
	state := uint64(cfg.seed())*0x9E3779B97F4A7C15 + 99
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	base := make([]byte, size)
	for i := 0; i+8 <= len(base); i += 8 {
		v := next()
		for b := 0; b < 8; b++ {
			base[i+b] = byte(v >> (8 * b))
		}
	}
	prefix := make([]byte, 8192)
	for i := range prefix {
		prefix[i] = byte(next())
	}

	fixed, err := chunk.NewFixedChunker(chunk.DefaultFixedSize)
	if err != nil {
		return nil, err
	}
	gear := chunk.NewDefaultGearChunker()

	ratioFor := func(c chunk.Chunker, shift int) (float64, error) {
		shifted := append(append([]byte{}, prefix[:shift]...), base...)
		seen := make(map[chunk.ID]bool)
		total := 0
		for _, stream := range [][]byte{base, shifted} {
			chunks, err := chunk.SplitBytes(c, stream)
			if err != nil {
				return 0, err
			}
			for _, ck := range chunks {
				total++
				seen[ck.ID] = true
			}
		}
		return float64(total) / float64(len(seen)), nil
	}

	fig := &Figure{
		ID:     "ext-cdc",
		Title:  "Fixed vs content-defined chunking under prefix shifts (paper future work)",
		XLabel: "shift (bytes)",
		YLabel: "dedup ratio of {original, shifted copy}",
	}
	fixedSeries := Series{Name: "fixed"}
	gearSeries := Series{Name: "gear-cdc"}
	for _, shift := range shifts {
		rf, err := ratioFor(fixed, shift)
		if err != nil {
			return nil, err
		}
		rg, err := ratioFor(gear, shift)
		if err != nil {
			return nil, err
		}
		cfg.logf("ext-cdc shift=%d: fixed=%.2f gear=%.2f", shift, rf, rg)
		fixedSeries.X = append(fixedSeries.X, float64(shift))
		fixedSeries.Y = append(fixedSeries.Y, rf)
		gearSeries.X = append(gearSeries.X, float64(shift))
		gearSeries.Y = append(gearSeries.Y, rg)
	}
	fig.Series = []Series{fixedSeries, gearSeries}
	last := len(shifts) - 1
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"at a %d-byte shift: fixed ratio %.2f (alignment destroyed) vs CDC %.2f",
		shifts[last], fixedSeries.Y[last], gearSeries.Y[last]))
	return fig, nil
}

// ExtErasure quantifies erasure coding against replication for index/chunk
// durability: the storage expansion needed to tolerate a given number of
// node/disk losses, with each RS geometry verified by actually destroying
// that many disks in a ShardedStore and reading everything back.
func ExtErasure(cfg Config) (*Figure, error) {
	type geometry struct {
		name   string
		data   int
		parity int
	}
	geoms := []geometry{
		{"rs(2,1)", 2, 1},
		{"rs(4,2)", 4, 2},
		{"rs(8,3)", 8, 3},
	}
	if cfg.Quick {
		geoms = geoms[:2]
	}

	d := cfg.accelDataset()
	payloadSrc := d.File(0, 0)
	chunkSize := d.SegmentBytes

	fig := &Figure{
		ID:     "ext-erasure",
		Title:  "Durability cost: replication vs Reed-Solomon (paper future work)",
		XLabel: "tolerated failures",
		YLabel: "storage expansion factor",
	}
	repl := Series{Name: "replication"}
	rs := Series{Name: "reed-solomon"}
	// Replication tolerating f failures stores f+1 copies.
	for f := 0; f <= 3; f++ {
		repl.X = append(repl.X, float64(f))
		repl.Y = append(repl.Y, float64(f+1))
	}
	for _, g := range geoms {
		store, err := cloudstore.NewShardedStore(g.data, g.parity)
		if err != nil {
			return nil, err
		}
		// Store a slice of the workload as chunks.
		var ids []chunk.ID
		for off := 0; off+chunkSize <= len(payloadSrc) && len(ids) < 64; off += chunkSize {
			piece := payloadSrc[off : off+chunkSize]
			id := chunk.Sum(piece)
			if err := store.Put(id, piece); err != nil {
				return nil, err
			}
			ids = append(ids, id)
		}
		// Destroy exactly `parity` disks and verify every chunk reads.
		for f := 0; f < g.parity; f++ {
			if err := store.FailDisk(f); err != nil {
				return nil, err
			}
		}
		for _, id := range ids {
			if _, err := store.Get(id); err != nil {
				return nil, fmt.Errorf("ext-erasure %s: chunk unreadable after %d failures: %w",
					g.name, g.parity, err)
			}
		}
		cfg.logf("ext-erasure %s: tolerated %d failures at %.2fx storage (verified on %d chunks)",
			g.name, g.parity, store.Overhead(), len(ids))
		rs.X = append(rs.X, float64(g.parity))
		rs.Y = append(rs.Y, store.Overhead())
	}
	fig.Series = []Series{repl, rs}
	fig.Notes = append(fig.Notes,
		"tolerating 2 failures: replication costs 3.00x, RS(4,2) costs 1.50x (verified by failure injection)")
	return fig, nil
}
