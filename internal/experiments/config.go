package experiments

import (
	"fmt"
	"io"
	"time"

	"efdedup/internal/cluster"
	"efdedup/internal/model"
	"efdedup/internal/netem"
	"efdedup/internal/workload"
)

// Config scales and seeds the experiment drivers.
type Config struct {
	// Quick shrinks every experiment to seconds for CI; the full-size
	// runs follow the paper's dimensions.
	Quick bool
	// Seed decorrelates repeated runs; the default 1 reproduces the
	// committed EXPERIMENTS.md numbers.
	Seed int64
	// Log receives progress lines; nil discards them.
	Log io.Writer
	// HashWorkers/LookupInflight override the agents' pipeline
	// concurrency in every testbed; zero keeps the agent defaults.
	HashWorkers    int
	LookupInflight int
	// MaxStreams/ArenaBudgetBytes bound the agents' multi-stream
	// admission (ext-ingest drives them directly); zero keeps the
	// agent defaults.
	MaxStreams       int
	ArenaBudgetBytes int64
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// repeats is how many times each testbed point is measured and averaged
// (the paper averages 20 runs; 3 keeps the full suite to minutes).
func (c Config) repeats() int {
	if c.Quick {
		return 1
	}
	return 3
}

// Paper testbed geometry (Sec. V-B): 20 edge nodes in 10 geographical
// groups, 0.85 ms within a group, 5 ms between groups (default), 12.2 ms
// to the cloud.
const (
	paperNodes   = 20
	paperSites   = 10
	paperRings   = 5
	intraSiteRTT = 850 * time.Microsecond
	interSiteRTT = 5 * time.Millisecond
	wanRTT       = 12200 * time.Microsecond
	// Bandwidths are scaled down ~20x from the paper's measured values
	// (1.726 Gbps edge, 0.377 Gbps WAN) because the emulated runs push
	// ~100x less data per node than the paper's 80-187 MB files; the
	// scaling keeps the experiments in the same bandwidth-bound regime
	// (WAN uplink is the bottleneck) with wall-clock runs of seconds.
	edgeBandwidth  = 10e6  // bytes/s per site pair
	wanBandwidth   = 2.5e6 // bytes/s per site-cloud uplink
	defaultGamma   = 2
	defaultAlpha   = 0.1
	accelChunkSize = 2048
	videoChunkSize = 4096
)

// layout places n nodes round-robin over sites.
func layout(n, sites int) []cluster.NodeSpec {
	if sites > n {
		sites = n
	}
	specs := make([]cluster.NodeSpec, n)
	for i := range specs {
		specs[i] = cluster.NodeSpec{
			Name: fmt.Sprintf("e%02d", i),
			Site: fmt.Sprintf("site-%d", i%sites),
		}
	}
	return specs
}

// testbedConfig assembles the cluster config for n nodes.
func testbedConfig(n, sites, chunkSize int, interRTT, wanDelay time.Duration) cluster.Config {
	return cluster.Config{
		Nodes:             layout(n, sites),
		ChunkSize:         chunkSize,
		ReplicationFactor: defaultGamma,
		EdgeLink:          netem.Link{Delay: interRTT, Bandwidth: edgeBandwidth},
		WANLink:           netem.Link{Delay: wanDelay, Bandwidth: wanBandwidth},
		IntraSiteLink:     netem.Link{Delay: intraSiteRTT, Bandwidth: edgeBandwidth},
		// Arrival jitter: unsynchronized flows let later nodes hit the
		// hashes earlier ring members already indexed.
		StartStagger: 25 * time.Millisecond,
		// Small lookup batches keep index round trips on the critical
		// path, as in the duperemove-based prototype — this is what makes
		// WAN-latency lookups (cloud-assisted) slower than edge-local
		// ones (the Fig. 5 separation).
		LookupBatch: 8,
	}
}

// datasets returns the two evaluation workloads sized for the config.
// Each node processes filesPerRun files of roughly fileBytes each.
func (c Config) accelDataset() *workload.AccelDataset {
	d := workload.DefaultAccelDataset(c.seed())
	if c.Quick {
		d.SegmentsPerFile = 128 // ~256 KiB files
		d.Participants = 2      // quick 4-node runs still pair correlated nodes
	} else {
		d.SegmentsPerFile = 512 // ~1 MiB files
	}
	d.SegmentBytes = accelChunkSize
	return d
}

func (c Config) videoDataset(nodes int) *workload.VideoDataset {
	d := workload.DefaultVideoDataset(c.seed())
	d.Cameras = nodes
	d.SitesShared = max(2, nodes/4) // several cameras per scene
	d.BlockSize = videoChunkSize
	// Few frames per file: most redundancy then lives ACROSS cameras
	// sharing a scene rather than between frames of one file, which is
	// what makes ring composition matter (Fig. 5(a), 6(b)).
	if c.Quick {
		d.FrameBlocks = 16
		d.FramesPerFile = 2 // ~128 KiB files
	} else {
		d.FrameBlocks = 80
		d.FramesPerFile = 3 // ~1 MiB files
	}
	return d
}

// accelSystem derives the SNOD2 instance matching AccelDataset's
// generative ground truth for n nodes laid out over the given sites.
// Node i plays participant i % Participants. ν_ij is the RTT in seconds
// between the nodes' sites.
func accelSystem(d *workload.AccelDataset, specs []cluster.NodeSpec, chunksPerWindow float64, interRTT time.Duration, gamma, alpha float64) *model.System {
	n := len(specs)
	// Pools: one shared motif pool + one per participant.
	pools := make([]float64, 1+d.Participants)
	pools[0] = float64(d.SharedMotifs)
	for p := 0; p < d.Participants; p++ {
		pools[1+p] = float64(d.GroupMotifs)
	}
	srcs := make([]model.Source, n)
	for i := range srcs {
		probs := make([]float64, len(pools))
		probs[0] = d.SharedProb
		probs[1+i%d.Participants] = 1 - d.SharedProb - d.UniqueProb
		srcs[i] = model.Source{ID: i, Rate: chunksPerWindow, Probs: probs}
	}
	return &model.System{
		PoolSizes: pools,
		Sources:   srcs,
		T:         1,
		Gamma:     gamma,
		Alpha:     alpha,
		NetCost:   rttMatrix(specs, interRTT),
	}
}

// videoSystem derives the SNOD2 instance matching VideoDataset's ground
// truth.
func videoSystem(d *workload.VideoDataset, specs []cluster.NodeSpec, chunksPerWindow float64, interRTT time.Duration, gamma, alpha float64) *model.System {
	n := len(specs)
	pools := make([]float64, d.SitesShared)
	for s := range pools {
		pools[s] = float64(d.FrameBlocks)
	}
	background := float64(d.FrameBlocks-d.MovingBlocks) / float64(d.FrameBlocks)
	srcs := make([]model.Source, n)
	for i := range srcs {
		probs := make([]float64, len(pools))
		probs[i%d.SitesShared] = background
		srcs[i] = model.Source{ID: i, Rate: chunksPerWindow, Probs: probs}
	}
	return &model.System{
		PoolSizes: pools,
		Sources:   srcs,
		T:         1,
		Gamma:     gamma,
		Alpha:     alpha,
		NetCost:   rttMatrix(specs, interRTT),
	}
}

// rttMatrix builds ν_ij from the node layout: intra-site RTT within a
// site, interRTT across sites. Costs are expressed in milliseconds per
// lookup — the unit under which the paper's α values (0.1 on the testbed)
// put the storage and network terms on comparable scales.
func rttMatrix(specs []cluster.NodeSpec, interRTT time.Duration) [][]float64 {
	n := len(specs)
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i == j {
				continue
			}
			if specs[i].Site == specs[j].Site {
				cost[i][j] = float64(intraSiteRTT.Microseconds()) / 1e3
			} else {
				cost[i][j] = float64(interRTT.Microseconds()) / 1e3
			}
		}
	}
	return cost
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
