package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"efdedup/internal/agent"
	"efdedup/internal/chunk"
	"efdedup/internal/cloudstore"
	"efdedup/internal/kvstore"
	"efdedup/internal/transport"
)

// ExtIngest measures what the shared multi-stream scheduler buys an edge
// node fronting many clients (PAPER.md §III says millions; the testbed
// scales that to stream counts): aggregate dedup throughput and the
// p99/p50 per-stream latency ratio as concurrency grows on ONE agent.
// Per-call worker pools would multiply goroutines with streams; the
// shared pools keep CPU at HashWorkers and memory at ArenaBudgetBytes
// no matter the fan-out, so throughput should hold flat (single core)
// or scale (many cores) while the fairness policy keeps p99/p50 small.
func ExtIngest(cfg Config) (*Figure, error) {
	streamCounts := []int{1, 4, 16, 64}
	tasks, taskBytes := 128, 1<<20
	if cfg.Quick {
		streamCounts = []int{1, 8}
		tasks, taskBytes = 16, 256<<10
	}

	nw := transport.NewMemNetwork()
	srv, err := cloudstore.NewServer(cloudstore.Config{})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	l, err := nw.Listen("cloud")
	if err != nil {
		return nil, err
	}
	srv.Serve(l)

	var kvAddrs []string
	for i := 0; i < 3; i++ {
		node, err := kvstore.NewNode(kvstore.NodeConfig{})
		if err != nil {
			return nil, err
		}
		defer node.Close()
		addr := fmt.Sprintf("kv-%d", i)
		lk, err := nw.Listen(addr)
		if err != nil {
			return nil, err
		}
		node.Serve(lk)
		kvAddrs = append(kvAddrs, addr)
	}
	idx, err := kvstore.NewCluster(kvstore.ClusterConfig{
		Members:           kvAddrs,
		ReplicationFactor: 2,
		LocalAddr:         kvAddrs[0],
		Network:           nw,
	})
	if err != nil {
		return nil, err
	}
	defer idx.Close()
	ctx := context.Background()
	cl, err := cloudstore.Dial(ctx, nw, "cloud")
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	a, err := agent.New(agent.Config{
		Name: "ingest", Mode: agent.ModeRing,
		Index: idx, Cloud: cl,
		Chunker:          chunk.NewDefaultGearChunker(),
		HashWorkers:      cfg.HashWorkers,
		LookupInflight:   cfg.LookupInflight,
		MaxStreams:       cfg.MaxStreams,
		ArenaBudgetBytes: cfg.ArenaBudgetBytes,
	})
	if err != nil {
		return nil, err
	}

	// Warm every task's content once so the measured runs are the
	// steady-state dedup workload (no upload traffic in the timings).
	rng := rand.New(rand.NewSource(cfg.seed()))
	inputs := make([][]byte, tasks)
	for i := range inputs {
		inputs[i] = make([]byte, taskBytes)
		rng.Read(inputs[i])
		if _, err := a.ProcessBytes(ctx, fmt.Sprintf("warm-%d", i), inputs[i]); err != nil {
			return nil, err
		}
	}

	agg := Series{Name: "aggregate MB/s"}
	tail := Series{Name: "p99/p50 latency"}
	fig := &Figure{
		ID:     "ext-ingest",
		Title:  "Multi-stream ingest through one agent's shared scheduler",
		XLabel: "concurrent streams",
		YLabel: "aggregate MB/s · p99/p50 per-stream latency",
	}
	for _, streams := range streamCounts {
		lats := make([]time.Duration, 0, tasks)
		var (
			wg sync.WaitGroup
			mu sync.Mutex
		)
		next := make(chan int, tasks)
		for t := 0; t < tasks; t++ {
			next <- t
		}
		close(next)
		start := time.Now()
		var firstErr error
		for w := 0; w < streams; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range next {
					s0 := time.Now()
					_, err := a.ProcessBytes(ctx, fmt.Sprintf("run-%d", t), inputs[t])
					el := time.Since(s0)
					mu.Lock()
					if err != nil && firstErr == nil {
						firstErr = err
					}
					lats = append(lats, el)
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		wall := time.Since(start)
		mbps := float64(tasks*taskBytes) / 1e6 / wall.Seconds()
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p50, p99 := lats[len(lats)/2], lats[len(lats)*99/100]
		ratio := float64(p99) / float64(p50)
		cfg.logf("ext-ingest streams=%d: %.1f MB/s aggregate, p50=%s p99=%s (x%.1f)",
			streams, mbps, p50.Round(time.Microsecond), p99.Round(time.Microsecond), ratio)
		agg.X = append(agg.X, float64(streams))
		agg.Y = append(agg.Y, mbps)
		tail.X = append(tail.X, float64(streams))
		tail.Y = append(tail.Y, ratio)
	}
	fig.Series = []Series{agg, tail}
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"aggregate throughput %.1f MB/s at %d streams vs %.1f MB/s at 1 (shared pools bound CPU and arena memory as fan-out grows)",
		agg.Y[len(agg.Y)-1], streamCounts[len(streamCounts)-1], agg.Y[0]))
	return fig, nil
}
