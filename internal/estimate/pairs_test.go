package estimate

import (
	"testing"

	"efdedup/internal/workload"
)

func TestMeasurePairsValidation(t *testing.T) {
	c := sampleChunker(t, 256)
	if _, err := MeasurePairs(nil, [][]byte{{1}}, c); err == nil {
		t.Error("empty source A accepted")
	}
	if _, err := MeasurePairs([][]byte{{}}, [][]byte{{1}}, c); err == nil {
		t.Error("empty file accepted")
	}
}

func TestMeasurePairsGrid(t *testing.T) {
	c := sampleChunker(t, 4)
	filesA := [][]byte{[]byte("aaaabbbb"), []byte("bbbbcccc")}
	filesB := [][]byte{[]byte("aaaadddd")}
	gt, err := MeasurePairs(filesA, filesB, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(gt.Combos) != 2 {
		t.Fatalf("got %d combos, want 2", len(gt.Combos))
	}
	// Combo (0,0): chunks {aaaa,bbbb} ∪ {aaaa,dddd} = 3 unique of 4.
	if got, want := gt.Combos[0].Ratio, 4.0/3.0; got != want {
		t.Errorf("combo(0,0) ratio = %v, want %v", got, want)
	}
	// Combo (1,0): {bbbb,cccc} ∪ {aaaa,dddd} = 4 unique of 4.
	if got, want := gt.Combos[1].Ratio, 1.0; got != want {
		t.Errorf("combo(1,0) ratio = %v, want %v", got, want)
	}
}

// TestFitPairsOnPoolData reproduces the Fig. 2 criterion on model-true
// data: MSE < 0.3 and mean relative error < 4%.
func TestFitPairsOnPoolData(t *testing.T) {
	sys := twoSourceSystem()
	const chunkSize = 256
	d, err := workload.NewPoolDataset(sys, chunkSize, 400, 77)
	if err != nil {
		t.Fatal(err)
	}
	var filesA, filesB [][]byte
	for f := 0; f < 4; f++ {
		filesA = append(filesA, d.File(0, f))
		filesB = append(filesB, d.File(1, f))
	}
	gt, err := MeasurePairs(filesA, filesB, sampleChunker(t, chunkSize))
	if err != nil {
		t.Fatal(err)
	}
	est, err := FitPairs(gt, Config{K: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.MSE > 0.3 {
		t.Errorf("MSE = %v, paper requires < 0.3", est.MSE)
	}
	if e := est.MeanRelativeError(gt); e > 0.04 {
		t.Errorf("mean relative error %.2f%%, paper requires < 4%%", e*100)
	}
}

// TestFitPairsWarmStart reproduces Fig. 3: later time points converge in
// fewer sweeps when seeded with the previous estimate.
func TestFitPairsWarmStart(t *testing.T) {
	sys := twoSourceSystem()
	const chunkSize = 256
	mkGT := func(seed int64) *PairGroundTruth {
		d, err := workload.NewPoolDataset(sys, chunkSize, 400, seed)
		if err != nil {
			t.Fatal(err)
		}
		var fa, fb [][]byte
		for f := 0; f < 3; f++ {
			fa = append(fa, d.File(0, f))
			fb = append(fb, d.File(1, f))
		}
		gt, err := MeasurePairs(fa, fb, sampleChunker(t, chunkSize))
		if err != nil {
			t.Fatal(err)
		}
		return gt
	}
	cold, err := FitPairs(mkGT(101), Config{K: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := FitPairs(mkGT(102), Config{K: 3, MSEThreshold: cold.MSE * 2}, cold)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations >= cold.Iterations {
		t.Errorf("warm start took %d sweeps, cold %d", warm.Iterations, cold.Iterations)
	}
	if _, err := FitPairs(mkGT(103), Config{K: 2}, cold); err == nil {
		t.Error("warm start with mismatched K accepted")
	}
}

func TestFitPairsValidation(t *testing.T) {
	if _, err := FitPairs(nil, Config{K: 2}, nil); err == nil {
		t.Error("nil ground truth accepted")
	}
	gt := &PairGroundTruth{Combos: []PairCombo{{ChunksA: 10, ChunksB: 10, Ratio: 1.5}}}
	if _, err := FitPairs(gt, Config{K: 0}, nil); err == nil {
		t.Error("K=0 accepted")
	}
}
