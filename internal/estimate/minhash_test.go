package estimate

import (
	"math"
	"math/rand"
	"testing"

	"efdedup/internal/chunk"
	"efdedup/internal/workload"
)

// randomIDs builds n distinct chunk IDs.
func randomIDs(seed int64, n int) []chunk.ID {
	rng := rand.New(rand.NewSource(seed))
	ids := make([]chunk.ID, n)
	for i := range ids {
		var buf [16]byte
		rng.Read(buf[:])
		ids[i] = chunk.Sum(buf[:])
	}
	return ids
}

func TestNewSignatureValidation(t *testing.T) {
	if _, err := NewSignature(randomIDs(1, 5), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewSignature(nil, 8); err == nil {
		t.Error("empty set accepted")
	}
}

func TestJaccardIdenticalSets(t *testing.T) {
	ids := randomIDs(2, 300)
	a, err := NewSignature(ids, 128)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSignature(ids, 128)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := a.Jaccard(b)
	if err != nil {
		t.Fatal(err)
	}
	if sim != 1 {
		t.Fatalf("identical sets estimate %v, want 1", sim)
	}
}

func TestJaccardDisjointSets(t *testing.T) {
	a, _ := NewSignature(randomIDs(3, 300), 128)
	b, _ := NewSignature(randomIDs(4, 300), 128)
	sim, err := a.Jaccard(b)
	if err != nil {
		t.Fatal(err)
	}
	if sim > 0.05 {
		t.Fatalf("disjoint sets estimate %v, want ≈ 0", sim)
	}
}

func TestJaccardSizeMismatch(t *testing.T) {
	a, _ := NewSignature(randomIDs(5, 10), 64)
	b, _ := NewSignature(randomIDs(5, 10), 32)
	if _, err := a.Jaccard(b); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := a.Jaccard(nil); err == nil {
		t.Fatal("nil signature accepted")
	}
}

// TestJaccardAccuracy checks the estimator against exact Jaccard across a
// range of true overlaps, within the ~1/√k standard error.
func TestJaccardAccuracy(t *testing.T) {
	const k = DefaultSignatureSize
	tolerance := 3.5 / math.Sqrt(k) // ≈3.5 sigma
	base := randomIDs(6, 1000)
	fresh := randomIDs(7, 1000)
	for _, overlap := range []int{0, 200, 500, 800, 1000} {
		setA := base
		setB := append(append([]chunk.ID{}, base[:overlap]...), fresh[:1000-overlap]...)
		trueJ := float64(overlap) / float64(2000-overlap)

		a, err := NewSignature(setA, k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewSignature(setB, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.Jaccard(b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-trueJ) > tolerance {
			t.Errorf("overlap %d: estimate %.3f, true %.3f (tolerance %.3f)",
				overlap, got, trueJ, tolerance)
		}
	}
}

func TestSignatureDuplicatesIgnored(t *testing.T) {
	ids := randomIDs(8, 100)
	doubled := append(append([]chunk.ID{}, ids...), ids...)
	a, _ := NewSignature(ids, 64)
	b, _ := NewSignature(doubled, 64)
	sim, err := a.Jaccard(b)
	if err != nil {
		t.Fatal(err)
	}
	if sim != 1 {
		t.Fatalf("multiset duplicates changed the sketch: %v", sim)
	}
}

func TestSketchStream(t *testing.T) {
	chunker, err := chunk.NewFixedChunker(512)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 100000)
	rng.Read(data)
	sig, err := SketchStream(data, chunker, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Size() != 64 {
		t.Fatalf("Size = %d", sig.Size())
	}
	// The same stream sketches identically.
	sig2, err := SketchStream(data, chunker, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sim, _ := sig.Jaccard(sig2); sim != 1 {
		t.Fatal("same stream sketched differently")
	}
}

// TestSimilarityMatrixRecoversStructure: sources drawn from the same pool
// must score far higher than sources from disjoint pools, using the pool
// dataset as ground truth.
func TestSimilarityMatrixRecoversStructure(t *testing.T) {
	sys := twoSourceSystem()
	// Add a third source identical in distribution to source 0.
	sys.Sources = append(sys.Sources, sys.Sources[0])
	sys.Sources[2].ID = 2
	d, err := workload.NewPoolDataset(sys, 512, 400, 31)
	if err != nil {
		t.Fatal(err)
	}
	samples := map[int][][]byte{
		0: {d.File(0, 0), d.File(0, 1)},
		1: {d.File(1, 0), d.File(1, 1)},
		2: {d.File(2, 0), d.File(2, 1)},
	}
	chunker, err := chunk.NewFixedChunker(512)
	if err != nil {
		t.Fatal(err)
	}
	ids, sim, err := SimilarityMatrix(samples, chunker, DefaultSignatureSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 0 || ids[2] != 2 {
		t.Fatalf("ids = %v", ids)
	}
	for i := range sim {
		if sim[i][i] != 1 {
			t.Errorf("diagonal [%d] = %v", i, sim[i][i])
		}
	}
	// Sources 0 and 2 share a distribution; 0 and 1 differ.
	if sim[0][2] <= sim[0][1] {
		t.Errorf("same-distribution similarity %.3f not above cross %.3f", sim[0][2], sim[0][1])
	}
	if sim[0][2] != sim[2][0] {
		t.Error("matrix not symmetric")
	}
}

func TestSimilarityMatrixValidation(t *testing.T) {
	chunker, _ := chunk.NewFixedChunker(512)
	if _, _, err := SimilarityMatrix(nil, chunker, 16); err == nil {
		t.Error("empty samples accepted")
	}
	if _, _, err := SimilarityMatrix(map[int][][]byte{0: {}}, chunker, 16); err == nil {
		t.Error("empty source accepted")
	}
}

// TestMinHashVsExactOnDataset cross-checks the estimator against exact
// Jaccard on accel workload chunk sets.
func TestMinHashVsExactOnDataset(t *testing.T) {
	d := workload.DefaultAccelDataset(17)
	d.SegmentsPerFile = 400
	chunker, err := chunk.NewFixedChunker(d.SegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	idsOf := func(src int) []chunk.ID {
		chunks, err := chunk.SplitBytes(chunker, d.File(src, 0))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]chunk.ID, len(chunks))
		for i, c := range chunks {
			out[i] = c.ID
		}
		return out
	}
	exactJaccard := func(a, b []chunk.ID) float64 {
		set := map[chunk.ID]bool{}
		for _, id := range a {
			set[id] = true
		}
		bset := map[chunk.ID]bool{}
		inter := map[chunk.ID]bool{}
		for _, id := range b {
			bset[id] = true
			if set[id] {
				inter[id] = true
			}
		}
		union := len(bset)
		for id := range set {
			if !bset[id] {
				union++
			}
		}
		return float64(len(inter)) / float64(union)
	}
	a, b := idsOf(0), idsOf(1)
	sa, err := NewSignature(a, DefaultSignatureSize)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewSignature(b, DefaultSignatureSize)
	if err != nil {
		t.Fatal(err)
	}
	est, err := sa.Jaccard(sb)
	if err != nil {
		t.Fatal(err)
	}
	exact := exactJaccard(a, b)
	if math.Abs(est-exact) > 3.5/math.Sqrt(DefaultSignatureSize) {
		t.Fatalf("estimate %.3f vs exact %.3f", est, exact)
	}
}

func BenchmarkMinHashSketch(b *testing.B) {
	ids := randomIDs(1, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSignature(ids, DefaultSignatureSize); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimilarityVsExactAblation contrasts MinHash pairwise similarity
// with the exact subset measurement Algorithm 1 uses — the speedup the
// paper's LSH future work targets.
func BenchmarkSimilarityVsExactAblation(b *testing.B) {
	sys := twoSourceSystem()
	d, err := workload.NewPoolDataset(sys, 512, 400, 3)
	if err != nil {
		b.Fatal(err)
	}
	samples := map[int][][]byte{
		0: {d.File(0, 0)},
		1: {d.File(1, 0)},
	}
	chunker, err := chunk.NewFixedChunker(512)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("minhash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := SimilarityMatrix(samples, chunker, DefaultSignatureSize); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact-subsets", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Measure(samples, chunker); err != nil {
				b.Fatal(err)
			}
		}
	})
}
