package estimate

import (
	"testing"

	"efdedup/internal/chunk"
	"efdedup/internal/model"
	"efdedup/internal/workload"
)

func sampleChunker(t *testing.T, size int) *chunk.FixedChunker {
	t.Helper()
	c, err := chunk.NewFixedChunker(size)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// poolSamples generates sample files from a known chunk-pool system so the
// fit can be checked against ground truth with a known answer.
func poolSamples(t *testing.T, sys *model.System, chunkSize, chunksPerFile, filesPerSource int, seed int64) map[int][][]byte {
	t.Helper()
	d, err := workload.NewPoolDataset(sys, chunkSize, chunksPerFile, seed)
	if err != nil {
		t.Fatal(err)
	}
	samples := make(map[int][][]byte, len(sys.Sources))
	for s := range sys.Sources {
		for f := 0; f < filesPerSource; f++ {
			samples[s] = append(samples[s], d.File(s, f))
		}
	}
	return samples
}

func twoSourceSystem() *model.System {
	return &model.System{
		PoolSizes: []float64{400, 200},
		Sources: []model.Source{
			{ID: 0, Rate: 1, Probs: []float64{0.55, 0.35}},
			{ID: 1, Rate: 1, Probs: []float64{0.25, 0.65}},
		},
		T:     1,
		Gamma: 1,
	}
}

func TestMeasureValidation(t *testing.T) {
	c := sampleChunker(t, 256)
	if _, err := Measure(nil, c); err == nil {
		t.Error("empty samples accepted")
	}
	big := make(map[int][][]byte)
	for i := 0; i < 9; i++ {
		big[i] = [][]byte{{1}}
	}
	if _, err := Measure(big, c); err == nil {
		t.Error("9 sources accepted (subset lattice unbounded)")
	}
	if _, err := Measure(map[int][][]byte{0: {}}, c); err == nil {
		t.Error("source with no chunks accepted")
	}
}

func TestMeasureSubsetLattice(t *testing.T) {
	c := sampleChunker(t, 4)
	samples := map[int][][]byte{
		0: {[]byte("aaaabbbb")},         // chunks: aaaa, bbbb
		1: {[]byte("aaaacccc")},         // chunks: aaaa, cccc
		2: {[]byte("aaaabbbbaaaabbbb")}, // aaaa,bbbb,aaaa,bbbb
	}
	gt, err := Measure(samples, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(gt.Subsets) != 7 {
		t.Fatalf("got %d subsets for 3 sources, want 7", len(gt.Subsets))
	}
	// Find subset {0,1}: 4 chunks, 3 unique → ratio 4/3.
	for j, subset := range gt.Subsets {
		if len(subset) == 2 && gt.Sources[subset[0]] == 0 && gt.Sources[subset[1]] == 1 {
			if want := 4.0 / 3.0; gt.Ratios[j] != want {
				t.Errorf("ratio({0,1}) = %v, want %v", gt.Ratios[j], want)
			}
		}
		if len(subset) == 1 && gt.Sources[subset[0]] == 2 {
			if want := 2.0; gt.Ratios[j] != want {
				t.Errorf("ratio({2}) = %v, want %v", gt.Ratios[j], want)
			}
		}
	}
	if gt.Chunks[2] != 4 {
		t.Errorf("source 2 chunk count = %v, want 4", gt.Chunks[2])
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, Config{K: 2}); err == nil {
		t.Error("nil ground truth accepted")
	}
	gt := &GroundTruth{Sources: []int{0}, Chunks: []float64{5}, Subsets: [][]int{{0}}, Ratios: []float64{1.2}}
	if _, err := Fit(gt, Config{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Fit(gt, Config{K: 2, Warm: &Estimate{PoolSizes: []float64{1}}}); err == nil {
		t.Error("warm-start shape mismatch accepted")
	}
}

// TestFitRecoversPoolModel is the Fig. 2 criterion: fitting data generated
// by the chunk-pool model itself must reach <4% mean relative error.
func TestFitRecoversPoolModel(t *testing.T) {
	sys := twoSourceSystem()
	const chunkSize = 256
	samples := poolSamples(t, sys, chunkSize, 500, 2, 21)
	gt, err := Measure(samples, sampleChunker(t, chunkSize))
	if err != nil {
		t.Fatal(err)
	}
	est, err := Fit(gt, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if e := est.MeanRelativeError(gt); e > 0.04 {
		t.Errorf("mean relative error %.2f%%, paper requires < 4%%", e*100)
	}
}

// TestWarmStartConvergesFaster reproduces the Fig. 3 observation: seeding
// the fit with the previous time step's estimate needs far fewer sweeps.
func TestWarmStartConvergesFaster(t *testing.T) {
	sys := twoSourceSystem()
	const chunkSize = 256
	gt1, err := Measure(poolSamples(t, sys, chunkSize, 500, 2, 31), sampleChunker(t, chunkSize))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Fit(gt1, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}

	// A later sample from the same sources (different files).
	sysLater := twoSourceSystem()
	gt2, err := Measure(poolSamples(t, sysLater, chunkSize, 500, 2, 32), sampleChunker(t, chunkSize))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Fit(gt2, Config{K: 3, Warm: cold, MSEThreshold: cold.MSE * 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations >= cold.Iterations {
		t.Errorf("warm start took %d sweeps, cold took %d — warm start should be faster",
			warm.Iterations, cold.Iterations)
	}
	if e := warm.MeanRelativeError(gt2); e > 0.06 {
		t.Errorf("warm-start error %.2f%% too high", e*100)
	}
}

func TestMSEThresholdStopsEarly(t *testing.T) {
	sys := twoSourceSystem()
	samples := poolSamples(t, sys, 256, 300, 1, 41)
	gt, err := Measure(samples, sampleChunker(t, 256))
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Fit(gt, Config{K: 2, MSEThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Fit(gt, Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Iterations > tight.Iterations {
		t.Errorf("loose threshold took %d sweeps, unlimited took %d", loose.Iterations, tight.Iterations)
	}
}

func TestSystemAssembly(t *testing.T) {
	sys := twoSourceSystem()
	samples := poolSamples(t, sys, 256, 300, 1, 51)
	gt, err := Measure(samples, sampleChunker(t, 256))
	if err != nil {
		t.Fatal(err)
	}
	est, err := Fit(gt, Config{K: 2, MaxSweeps: 5})
	if err != nil {
		t.Fatal(err)
	}
	cost := [][]float64{{0, 1}, {1, 0}}
	full, err := est.System(gt, []float64{10, 20}, 60, 2, 0.1, cost)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Validate(); err != nil {
		t.Fatal(err)
	}
	if full.Sources[1].Rate != 20 || full.Alpha != 0.1 {
		t.Errorf("assembled system lost parameters: %+v", full)
	}
	if _, err := est.System(gt, []float64{1}, 60, 2, 0.1, cost); err == nil {
		t.Error("rate length mismatch accepted")
	}
}

// TestFitOnAccelWorkload: Algorithm 1 applied to the accel dataset (not
// generated by the model) still fits within a usable error.
func TestFitOnAccelWorkload(t *testing.T) {
	d := workload.DefaultAccelDataset(61)
	d.SegmentsPerFile = 600 // keep the test fast
	samples := make(map[int][][]byte)
	for s := 0; s < 2; s++ {
		samples[s] = [][]byte{d.File(s, 0), d.File(s, 1)}
	}
	gt, err := Measure(samples, sampleChunker(t, d.SegmentBytes))
	if err != nil {
		t.Fatal(err)
	}
	est, err := Fit(gt, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The accel generator is not itself a chunk-pool process (motifs are
	// reused within files, violating independence), so a somewhat larger
	// error than the paper's 4% on real data is expected here.
	if e := est.MeanRelativeError(gt); e > 0.10 {
		t.Errorf("accel fit error %.2f%%, want < 10%%", e*100)
	}
}

// TestFitAutoSelectsReasonableOrder: on data generated from a 2-pool
// model, the automatic order search must not pick a wildly larger K, and
// its fit must be at least as good as the K=1 fit.
func TestFitAutoSelectsReasonableOrder(t *testing.T) {
	sys := twoSourceSystem()
	samples := poolSamples(t, sys, 256, 400, 2, 71)
	gt, err := Measure(samples, sampleChunker(t, 256))
	if err != nil {
		t.Fatal(err)
	}
	auto, err := FitAuto(gt, 4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	k := len(auto.PoolSizes)
	if k < 1 || k > 4 {
		t.Fatalf("selected K=%d outside candidate range", k)
	}
	k1, err := Fit(gt, Config{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if auto.MSE > k1.MSE*1.0001 {
		t.Errorf("auto fit MSE %.6f worse than K=1's %.6f", auto.MSE, k1.MSE)
	}
	if e := auto.MeanRelativeError(gt); e > 0.05 {
		t.Errorf("auto fit error %.2f%%, want < 5%%", e*100)
	}
}

func TestFitAutoValidation(t *testing.T) {
	gt := &GroundTruth{Sources: []int{0}, Chunks: []float64{5}, Subsets: [][]int{{0}}, Ratios: []float64{1.2}}
	if _, err := FitAuto(gt, 0, Config{}); err == nil {
		t.Error("maxK=0 accepted")
	}
}
