package estimate

import (
	"errors"
	"math"
)

// FitAuto searches over the model order K as well — Algorithm 1's full
// output is "the number of chunk pools K_t, the size of chunk pools and
// characteristic vectors". Candidate orders 1..maxK are fitted and scored
// by MSE with a small complexity penalty (an AIC-flavoured term), so a
// larger K must buy a real error reduction to win. The winner's K is
// available as len(Estimate.PoolSizes).
func FitAuto(gt *GroundTruth, maxK int, cfg Config) (*Estimate, error) {
	if maxK <= 0 {
		return nil, errors.New("estimate: maxK must be positive")
	}
	var best *Estimate
	bestScore := math.Inf(1)
	n := float64(len(gt.Subsets))
	for k := 1; k <= maxK; k++ {
		c := cfg
		c.K = k
		c.Warm = nil // warm starts cannot cross model orders
		est, err := Fit(gt, c)
		if err != nil {
			return nil, err
		}
		// Parameters: K pool sizes + K probabilities per source.
		params := float64(k * (1 + len(gt.Sources)))
		score := n*math.Log(est.MSE+1e-12) + 2*params
		if score < bestScore {
			bestScore = score
			best = est
		}
	}
	return best, nil
}
