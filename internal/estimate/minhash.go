package estimate

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"efdedup/internal/chunk"
)

// This file implements the paper's future-work direction "improve the
// performance of our source estimation algorithm through techniques like
// locality sensitive hashing" (Sec. VII, ref [27]).
//
// A MinHash signature summarizes a source's chunk set in k machine words;
// the fraction of matching signature slots estimates the Jaccard
// similarity of two sources' chunk sets without comparing the sets
// themselves. Where Algorithm 1's exact ground truth costs a full
// chunk-level dedup of every source subset (exponential in sources),
// MinHash costs one pass per source and O(k) per pair — making
// similarity-driven partitioning feasible for hundreds of edge nodes.

// DefaultSignatureSize is the default number of MinHash slots; the
// standard error of the Jaccard estimate is ~1/√k ≈ 5.6% at k=320.
const DefaultSignatureSize = 320

// Signature is a MinHash sketch of a chunk set.
type Signature struct {
	slots []uint64
}

// slotHash derives the i-th hash of a chunk ID by mixing the ID with the
// slot index (one-permutation-per-slot MinHash).
func slotHash(id chunk.ID, slot int) uint64 {
	x := binary.BigEndian.Uint64(id[:8]) ^ (uint64(slot)*0x9E3779B97F4A7C15 + 0x1234567)
	x ^= binary.BigEndian.Uint64(id[8:16])
	// SplitMix64 finalizer.
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// NewSignature sketches the given chunk IDs with k slots.
func NewSignature(ids []chunk.ID, k int) (*Signature, error) {
	if k <= 0 {
		return nil, fmt.Errorf("estimate: signature size %d must be positive", k)
	}
	if len(ids) == 0 {
		return nil, errors.New("estimate: cannot sketch an empty chunk set")
	}
	// Deduplicate IDs first: MinHash sketches sets, not multisets.
	seen := make(map[chunk.ID]bool, len(ids))
	slots := make([]uint64, k)
	for i := range slots {
		slots[i] = math.MaxUint64
	}
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		for s := 0; s < k; s++ {
			if h := slotHash(id, s); h < slots[s] {
				slots[s] = h
			}
		}
	}
	return &Signature{slots: slots}, nil
}

// SketchStream chunks data and sketches the resulting chunk-ID set.
func SketchStream(data []byte, chunker chunk.Chunker, k int) (*Signature, error) {
	chunks, err := chunk.SplitBytes(chunker, data)
	if err != nil {
		return nil, err
	}
	ids := make([]chunk.ID, len(chunks))
	for i, c := range chunks {
		ids[i] = c.ID
	}
	return NewSignature(ids, k)
}

// Jaccard estimates the Jaccard similarity |A∩B| / |A∪B| from two
// signatures of equal size.
func (s *Signature) Jaccard(other *Signature) (float64, error) {
	if other == nil || len(s.slots) != len(other.slots) {
		return 0, errors.New("estimate: signature size mismatch")
	}
	match := 0
	for i := range s.slots {
		if s.slots[i] == other.slots[i] {
			match++
		}
	}
	return float64(match) / float64(len(s.slots)), nil
}

// Size returns the number of slots.
func (s *Signature) Size() int { return len(s.slots) }

// SimilarityMatrix computes the pairwise estimated Jaccard similarity of
// per-source sample sets in one pass per source. samples maps source ID to
// sample file contents; the result is indexed by the sorted source IDs
// (returned alongside).
func SimilarityMatrix(samples map[int][][]byte, chunker chunk.Chunker, k int) ([]int, [][]float64, error) {
	if len(samples) == 0 {
		return nil, nil, errors.New("estimate: no samples")
	}
	ids := make([]int, 0, len(samples))
	for id := range samples {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	sigs := make([]*Signature, len(ids))
	for i, id := range ids {
		var chunkIDs []chunk.ID
		for _, file := range samples[id] {
			chunks, err := chunk.SplitBytes(chunker, file)
			if err != nil {
				return nil, nil, fmt.Errorf("estimate: sketch source %d: %w", id, err)
			}
			for _, c := range chunks {
				chunkIDs = append(chunkIDs, c.ID)
			}
		}
		sig, err := NewSignature(chunkIDs, k)
		if err != nil {
			return nil, nil, fmt.Errorf("estimate: sketch source %d: %w", id, err)
		}
		sigs[i] = sig
	}

	sim := make([][]float64, len(ids))
	for i := range sim {
		sim[i] = make([]float64, len(ids))
		sim[i][i] = 1
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			v, err := sigs[i].Jaccard(sigs[j])
			if err != nil {
				return nil, nil, err
			}
			sim[i][j], sim[j][i] = v, v
		}
	}
	return ids, sim, nil
}
