package estimate

import (
	"errors"
	"fmt"
	"math"

	"efdedup/internal/chunk"
	"efdedup/internal/model"
)

// PairCombo is one (file from source A, file from source B) measurement of
// Fig. 2: the paper crosses 6 sample files of source 1 with 6 of source 2
// and measures the real dedup ratio of every combination.
type PairCombo struct {
	// FileA and FileB index into the sampled file lists.
	FileA, FileB int
	// ChunksA and ChunksB are the chunk counts of the two files (the
	// model's R·T for this combination).
	ChunksA, ChunksB float64
	// Ratio is the measured dedup ratio of the union of the two files.
	Ratio float64
}

// PairGroundTruth holds the full combination grid for two sources.
type PairGroundTruth struct {
	Combos []PairCombo
}

// MeasurePairs chunk-deduplicates every (fileA, fileB) combination, the
// ground-truth procedure behind Fig. 2.
func MeasurePairs(filesA, filesB [][]byte, chunker chunk.Chunker) (*PairGroundTruth, error) {
	if len(filesA) == 0 || len(filesB) == 0 {
		return nil, errors.New("estimate: both sources need sample files")
	}
	chunkIDs := func(files [][]byte) ([][]chunk.ID, error) {
		out := make([][]chunk.ID, len(files))
		for i, f := range files {
			chunks, err := chunk.SplitBytes(chunker, f)
			if err != nil {
				return nil, err
			}
			if len(chunks) == 0 {
				return nil, fmt.Errorf("estimate: sample file %d has no chunks", i)
			}
			for _, c := range chunks {
				out[i] = append(out[i], c.ID)
			}
		}
		return out, nil
	}
	idsA, err := chunkIDs(filesA)
	if err != nil {
		return nil, err
	}
	idsB, err := chunkIDs(filesB)
	if err != nil {
		return nil, err
	}
	gt := &PairGroundTruth{}
	for a, la := range idsA {
		for b, lb := range idsB {
			seen := make(map[chunk.ID]bool, len(la)+len(lb))
			for _, id := range la {
				seen[id] = true
			}
			for _, id := range lb {
				seen[id] = true
			}
			gt.Combos = append(gt.Combos, PairCombo{
				FileA: a, FileB: b,
				ChunksA: float64(len(la)), ChunksB: float64(len(lb)),
				Ratio: float64(len(la)+len(lb)) / float64(len(seen)),
			})
		}
	}
	return gt, nil
}

// PairEstimate is a fitted two-source chunk-pool model.
type PairEstimate struct {
	// PoolSizes are the fitted s_k.
	PoolSizes []float64
	// ProbsA and ProbsB are the two characteristic vectors.
	ProbsA, ProbsB []float64
	// MSE is the final mean squared error over all combinations.
	MSE float64
	// Iterations counts coordinate-descent sweeps.
	Iterations int
}

// predict returns the model ratio for one combination.
func (e *PairEstimate) predict(c PairCombo) float64 {
	sys := &model.System{
		PoolSizes: e.PoolSizes,
		Sources: []model.Source{
			{ID: 0, Rate: c.ChunksA, Probs: e.ProbsA},
			{ID: 1, Rate: c.ChunksB, Probs: e.ProbsB},
		},
		T:     1,
		Gamma: 1,
	}
	return sys.DedupRatio([]int{0, 1})
}

// PredictRatio returns the fitted model's ratio for a combination.
func (e *PairEstimate) PredictRatio(c PairCombo) float64 { return e.predict(c) }

// MSEAgainst evaluates the fit over a combination grid.
func (e *PairEstimate) MSEAgainst(gt *PairGroundTruth) float64 {
	sum := 0.0
	for _, c := range gt.Combos {
		d := e.predict(c) - c.Ratio
		sum += d * d
	}
	return sum / float64(len(gt.Combos))
}

// MeanRelativeError is Fig. 2's "<4%" metric over the combination grid.
func (e *PairEstimate) MeanRelativeError(gt *PairGroundTruth) float64 {
	sum := 0.0
	for _, c := range gt.Combos {
		sum += math.Abs(e.predict(c)-c.Ratio) / c.Ratio
	}
	return sum / float64(len(gt.Combos))
}

// FitPairs fits a K-pool model to a pair combination grid, optionally warm
// starting from a previous time step's estimate (Fig. 3).
func FitPairs(gt *PairGroundTruth, cfg Config, warm *PairEstimate) (*PairEstimate, error) {
	if gt == nil || len(gt.Combos) == 0 {
		return nil, errors.New("estimate: empty pair ground truth")
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("estimate: pool count K=%d must be positive", cfg.K)
	}
	if cfg.MaxSweeps <= 0 {
		cfg.MaxSweeps = 60
	}
	if len(cfg.SizeFactors) == 0 {
		cfg.SizeFactors = []float64{0.25, 0.5, 0.8, 1.25, 2, 4}
	}
	if len(cfg.ProbSteps) == 0 {
		cfg.ProbSteps = []float64{-0.3, -0.1, -0.03, -0.01, 0.01, 0.03, 0.1, 0.3}
	}

	est := &PairEstimate{}
	if warm != nil {
		if len(warm.PoolSizes) != cfg.K {
			return nil, errors.New("estimate: warm start pool count mismatch")
		}
		est.PoolSizes = append([]float64(nil), warm.PoolSizes...)
		est.ProbsA = append([]float64(nil), warm.ProbsA...)
		est.ProbsB = append([]float64(nil), warm.ProbsB...)
	} else {
		mean := 0.0
		for _, c := range gt.Combos {
			mean += c.ChunksA + c.ChunksB
		}
		mean /= float64(2 * len(gt.Combos))
		est.PoolSizes = make([]float64, cfg.K)
		for k := range est.PoolSizes {
			est.PoolSizes[k] = mean * float64(k+1)
		}
		est.ProbsA = make([]float64, cfg.K)
		est.ProbsB = make([]float64, cfg.K)
		for k := 0; k < cfg.K; k++ {
			est.ProbsA[k] = 0.8 / float64(cfg.K)
			est.ProbsB[k] = 0.8 / float64(cfg.K)
		}
	}

	best := est.MSEAgainst(gt)
	for sweep := 0; sweep < cfg.MaxSweeps; sweep++ {
		est.Iterations = sweep + 1
		improved := false
		for k := range est.PoolSizes {
			orig := est.PoolSizes[k]
			bestSize := orig
			for _, f := range cfg.SizeFactors {
				cand := orig * f
				if cand < 1 {
					cand = 1
				}
				est.PoolSizes[k] = cand
				if m := est.MSEAgainst(gt); m < best-1e-12 {
					best, bestSize, improved = m, cand, true
				}
			}
			est.PoolSizes[k] = bestSize
		}
		for _, probs := range [][]float64{est.ProbsA, est.ProbsB} {
			for k := range probs {
				orig := probs[k]
				bestP := orig
				for _, step := range cfg.ProbSteps {
					cand := orig + step
					if cand < 0 || cand > 1 {
						continue
					}
					sum := cand
					for kk, p := range probs {
						if kk != k {
							sum += p
						}
					}
					if sum > 1 {
						continue
					}
					probs[k] = cand
					if m := est.MSEAgainst(gt); m < best-1e-12 {
						best, bestP, improved = m, cand, true
					}
				}
				probs[k] = bestP
			}
		}
		if cfg.MSEThreshold > 0 && best <= cfg.MSEThreshold {
			break
		}
		if !improved {
			break
		}
	}
	est.MSE = best
	return est, nil
}
