// Package estimate implements Algorithm 1 of EF-dedup (Sec. III-A):
// fitting the chunk-pool model — number of pools K, pool sizes s_k and
// per-source characteristic vectors P_i — to ground-truth deduplication
// ratios measured on sampled files.
//
// The procedure is exactly the paper's: measure the real dedup ratio of
// every subset of the sampled sources with a standard chunk-level
// deduplicator, then search model parameters minimizing the mean squared
// error between Theorem 1's analytic ratio and the measurements, stopping
// when the MSE falls below a threshold. Instead of the paper's full grid
// sweep (which scans pool sizes up to 200,000 in steps of 100), the search
// uses coordinate descent over a multiplicative size grid and an additive
// probability grid, which converges to the same fits orders of magnitude
// faster and supports the paper's warm start across time steps ("begin
// with previous characteristic vectors ... ends extremely quickly").
package estimate

import (
	"errors"
	"fmt"
	"math"

	"efdedup/internal/chunk"
	"efdedup/internal/model"
)

// GroundTruth holds measured dedup statistics for source subsets.
type GroundTruth struct {
	// Sources lists the sampled source identifiers, in the order probs
	// are returned.
	Sources []int
	// Chunks[i] is the total chunk count of source i's samples (the
	// model's R_i·T).
	Chunks []float64
	// Subsets enumerates the measured source subsets, as index lists
	// into Sources.
	Subsets [][]int
	// Ratios[j] is the measured dedup ratio of Subsets[j].
	Ratios []float64
}

// Measure chunk-deduplicates every subset of the given sources' sample
// files and records the real dedup ratios. samples maps a source ID to its
// sampled file contents. The subset lattice is exponential in the number
// of sources; Measure refuses more than 8 sources.
func Measure(samples map[int][][]byte, chunker chunk.Chunker) (*GroundTruth, error) {
	if len(samples) == 0 {
		return nil, errors.New("estimate: no samples")
	}
	if len(samples) > 8 {
		return nil, fmt.Errorf("estimate: %d sources exceed the 8-source subset-lattice limit", len(samples))
	}
	gt := &GroundTruth{}
	for id := range samples {
		gt.Sources = append(gt.Sources, id)
	}
	// Deterministic order.
	for i := 0; i < len(gt.Sources); i++ {
		for j := i + 1; j < len(gt.Sources); j++ {
			if gt.Sources[j] < gt.Sources[i] {
				gt.Sources[i], gt.Sources[j] = gt.Sources[j], gt.Sources[i]
			}
		}
	}

	// Pre-chunk every source once.
	perSource := make([][]chunk.ID, len(gt.Sources))
	gt.Chunks = make([]float64, len(gt.Sources))
	for i, id := range gt.Sources {
		for _, file := range samples[id] {
			chunks, err := chunk.SplitBytes(chunker, file)
			if err != nil {
				return nil, fmt.Errorf("estimate: chunk source %d: %w", id, err)
			}
			for _, c := range chunks {
				perSource[i] = append(perSource[i], c.ID)
			}
		}
		gt.Chunks[i] = float64(len(perSource[i]))
		if len(perSource[i]) == 0 {
			return nil, fmt.Errorf("estimate: source %d has no chunks", id)
		}
	}

	n := len(gt.Sources)
	for mask := 1; mask < 1<<n; mask++ {
		var subset []int
		seen := make(map[chunk.ID]bool)
		total := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			subset = append(subset, i)
			for _, id := range perSource[i] {
				total++
				seen[id] = true
			}
		}
		gt.Subsets = append(gt.Subsets, subset)
		gt.Ratios = append(gt.Ratios, float64(total)/float64(len(seen)))
	}
	return gt, nil
}

// Estimate is a fitted chunk-pool model.
type Estimate struct {
	// PoolSizes are the fitted s_k.
	PoolSizes []float64
	// Probs[i] is the characteristic vector of GroundTruth source i (in
	// GroundTruth.Sources order).
	Probs [][]float64
	// MSE is the final mean squared error against the ground truth
	// ratios.
	MSE float64
	// Iterations counts coordinate-descent sweeps performed.
	Iterations int
}

// Config tunes the fit.
type Config struct {
	// K is the number of chunk pools (the paper validates with K=3).
	K int
	// MSEThreshold stops the search early, per Algorithm 1. Zero means
	// run until convergence or MaxSweeps.
	MSEThreshold float64
	// MaxSweeps bounds coordinate-descent sweeps; defaults to 60.
	MaxSweeps int
	// SizeFactors is the multiplicative search grid for pool sizes;
	// defaults to {0.25, 0.5, 0.8, 1.25, 2, 4}.
	SizeFactors []float64
	// ProbSteps is the additive search grid for probabilities; defaults
	// to {±0.3, ±0.1, ±0.03, ±0.01}.
	ProbSteps []float64
	// Warm optionally seeds the search with a previous fit (the paper's
	// cross-time warm start). Pool count must match K.
	Warm *Estimate
}

// systemFor assembles the model system a candidate parameterization
// implies, with R_i·T equal to the measured chunk counts.
func systemFor(gt *GroundTruth, sizes []float64, probs [][]float64) *model.System {
	srcs := make([]model.Source, len(gt.Sources))
	for i := range srcs {
		srcs[i] = model.Source{ID: i, Rate: gt.Chunks[i], Probs: probs[i]}
	}
	return &model.System{
		PoolSizes: sizes,
		Sources:   srcs,
		T:         1,
		Gamma:     1,
	}
}

// mse evaluates the fit error over all measured subsets.
func mse(gt *GroundTruth, sizes []float64, probs [][]float64) float64 {
	sys := systemFor(gt, sizes, probs)
	sum := 0.0
	for j, subset := range gt.Subsets {
		diff := sys.DedupRatio(subset) - gt.Ratios[j]
		sum += diff * diff
	}
	return sum / float64(len(gt.Subsets))
}

// Fit runs Algorithm 1's parameter search against measured ground truth.
func Fit(gt *GroundTruth, cfg Config) (*Estimate, error) {
	if gt == nil || len(gt.Sources) == 0 || len(gt.Subsets) == 0 {
		return nil, errors.New("estimate: empty ground truth")
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("estimate: pool count K=%d must be positive", cfg.K)
	}
	if cfg.MaxSweeps <= 0 {
		cfg.MaxSweeps = 60
	}
	if len(cfg.SizeFactors) == 0 {
		cfg.SizeFactors = []float64{0.25, 0.5, 0.8, 1.25, 2, 4}
	}
	if len(cfg.ProbSteps) == 0 {
		cfg.ProbSteps = []float64{-0.3, -0.1, -0.03, -0.01, 0.01, 0.03, 0.1, 0.3}
	}

	n := len(gt.Sources)
	sizes := make([]float64, cfg.K)
	probs := make([][]float64, n)
	if cfg.Warm != nil {
		if len(cfg.Warm.PoolSizes) != cfg.K || len(cfg.Warm.Probs) != n {
			return nil, errors.New("estimate: warm start shape mismatch")
		}
		copy(sizes, cfg.Warm.PoolSizes)
		for i := range probs {
			probs[i] = append([]float64(nil), cfg.Warm.Probs[i]...)
		}
	} else {
		// Neutral start: pools sized near the per-source unique counts,
		// staggered per pool; probability mass spread evenly with some
		// head-room left for unique noise.
		meanChunks := 0.0
		for _, c := range gt.Chunks {
			meanChunks += c
		}
		meanChunks /= float64(n)
		for k := range sizes {
			sizes[k] = meanChunks * float64(k+1)
		}
		for i := range probs {
			probs[i] = make([]float64, cfg.K)
			for k := range probs[i] {
				probs[i][k] = 0.8 / float64(cfg.K)
			}
		}
	}

	best := mse(gt, sizes, probs)
	est := &Estimate{}
	for sweep := 0; sweep < cfg.MaxSweeps; sweep++ {
		est.Iterations = sweep + 1
		improved := false

		// Pool sizes: multiplicative moves.
		for k := range sizes {
			orig := sizes[k]
			bestSize := orig
			for _, f := range cfg.SizeFactors {
				cand := orig * f
				if cand < 1 {
					cand = 1
				}
				sizes[k] = cand
				if m := mse(gt, sizes, probs); m < best-1e-12 {
					best, bestSize, improved = m, cand, true
				}
			}
			sizes[k] = bestSize
		}

		// Probabilities: additive moves under the simplex constraint.
		for i := range probs {
			for k := range probs[i] {
				orig := probs[i][k]
				bestP := orig
				for _, step := range cfg.ProbSteps {
					cand := orig + step
					if cand < 0 || cand > 1 {
						continue
					}
					sum := cand
					for kk, p := range probs[i] {
						if kk != k {
							sum += p
						}
					}
					if sum > 1 {
						continue
					}
					probs[i][k] = cand
					if m := mse(gt, sizes, probs); m < best-1e-12 {
						best, bestP, improved = m, cand, true
					}
				}
				probs[i][k] = bestP
			}
		}

		if cfg.MSEThreshold > 0 && best <= cfg.MSEThreshold {
			break
		}
		if !improved {
			break
		}
	}
	est.PoolSizes = sizes
	est.Probs = probs
	est.MSE = best
	return est, nil
}

// PredictRatio returns the fitted model's dedup ratio for a subset of the
// ground-truth sources (indices into GroundTruth.Sources).
func (e *Estimate) PredictRatio(gt *GroundTruth, subset []int) float64 {
	return systemFor(gt, e.PoolSizes, e.Probs).DedupRatio(subset)
}

// MeanRelativeError reports the fit's average |predicted-measured|/measured
// over all ground-truth subsets — the "<4%" metric of Fig. 2/3.
func (e *Estimate) MeanRelativeError(gt *GroundTruth) float64 {
	sum := 0.0
	for j, subset := range gt.Subsets {
		pred := e.PredictRatio(gt, subset)
		sum += math.Abs(pred-gt.Ratios[j]) / gt.Ratios[j]
	}
	return sum / float64(len(gt.Subsets))
}

// System assembles a full SNOD2 system from the fit plus deployment
// parameters: per-source data rates (chunks/s), window, replication
// factor, trade-off and network costs. Source IDs are taken from the
// ground truth.
func (e *Estimate) System(gt *GroundTruth, rates []float64, T, gamma, alpha float64, netCost [][]float64) (*model.System, error) {
	if len(rates) != len(gt.Sources) {
		return nil, fmt.Errorf("estimate: %d rates for %d sources", len(rates), len(gt.Sources))
	}
	srcs := make([]model.Source, len(gt.Sources))
	for i := range srcs {
		srcs[i] = model.Source{ID: gt.Sources[i], Rate: rates[i], Probs: e.Probs[i]}
	}
	sys := &model.System{
		PoolSizes: e.PoolSizes,
		Sources:   srcs,
		T:         T,
		Gamma:     gamma,
		Alpha:     alpha,
		NetCost:   netCost,
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return sys, nil
}
