package kvstore

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"efdedup/internal/transport"
)

// TestConcurrentCoordinators: several coordinators hammer the same ring
// concurrently (the shape of multiple agents sharing D2-ring index nodes);
// every written key must resolve afterwards and the store must agree with
// a sequential oracle.
func TestConcurrentCoordinators(t *testing.T) {
	nw := transport.NewMemNetwork()
	addrs := testRing(t, nw, 4)

	const (
		coordinators  = 4
		keysPerWorker = 60
	)
	var wg sync.WaitGroup
	errCh := make(chan error, coordinators)
	for w := 0; w < coordinators; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := NewCluster(ClusterConfig{
				Members:           addrs,
				ReplicationFactor: 2,
				WriteConsistency:  All,
				LocalAddr:         addrs[w%len(addrs)],
				Network:           nw,
			})
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			ctx := context.Background()
			for i := 0; i < keysPerWorker; i++ {
				key := []byte(fmt.Sprintf("w%d-key-%03d", w, i))
				if err := c.Put(ctx, key, []byte("v")); err != nil {
					errCh <- err
					return
				}
				// Interleave reads and membership probes.
				if _, err := c.Get(ctx, key); err != nil {
					errCh <- fmt.Errorf("read-own-write %s: %w", key, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// A fresh coordinator sees every key.
	c, err := NewCluster(ClusterConfig{Members: addrs, ReplicationFactor: 2, Network: nw})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var keys [][]byte
	for w := 0; w < coordinators; w++ {
		for i := 0; i < keysPerWorker; i++ {
			keys = append(keys, []byte(fmt.Sprintf("w%d-key-%03d", w, i)))
		}
	}
	found, err := c.BatchHas(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range found {
		if !ok {
			t.Errorf("key %s lost under concurrency", keys[i])
		}
	}
}

// TestConcurrentPutIfAbsentSingleWinner: many coordinators race
// PutIfAbsent on one key; exactly one must win on the primary replica.
func TestConcurrentPutIfAbsentSingleWinner(t *testing.T) {
	nw := transport.NewMemNetwork()
	addrs := testRing(t, nw, 3)
	const racers = 8
	wins := make(chan int, racers)
	var wg sync.WaitGroup
	for r := 0; r < racers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := NewCluster(ClusterConfig{Members: addrs, ReplicationFactor: 2, Network: nw})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			existed, err := c.PutIfAbsent(context.Background(), []byte("contended"), []byte(fmt.Sprint(r)))
			if err != nil {
				t.Error(err)
				return
			}
			if !existed {
				wins <- r
			}
		}(r)
	}
	wg.Wait()
	close(wins)
	count := 0
	for range wins {
		count++
	}
	if count != 1 {
		t.Fatalf("%d racers won PutIfAbsent, want exactly 1", count)
	}
}
