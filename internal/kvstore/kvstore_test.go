package kvstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"efdedup/internal/transport"
)

// testRing spins up n storage nodes on a fresh memory network and returns
// their addresses plus a cleanup-registered node list.
func testRing(t *testing.T, nw *transport.MemNetwork, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		node, err := NewNode(NodeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		addr := fmt.Sprintf("kv-%d", i)
		l, err := nw.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		node.Serve(l)
		t.Cleanup(func() { node.Close() })
		addrs[i] = addr
	}
	return addrs
}

func testCluster(t *testing.T, nw *transport.MemNetwork, cfg ClusterConfig) *Cluster {
	t.Helper()
	cfg.Network = nw
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClusterConfigValidation(t *testing.T) {
	nw := transport.NewMemNetwork()
	if _, err := NewCluster(ClusterConfig{Network: nw}); err == nil {
		t.Error("empty member list accepted")
	}
	if _, err := NewCluster(ClusterConfig{Members: []string{"a"}}); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := NewCluster(ClusterConfig{Members: []string{"a", "a"}, Network: nw}); err == nil {
		t.Error("duplicate members accepted")
	}
	if _, err := NewCluster(ClusterConfig{Members: []string{"a"}, LocalAddr: "b", Network: nw}); err == nil {
		t.Error("non-member local address accepted")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	nw := transport.NewMemNetwork()
	addrs := testRing(t, nw, 3)
	c := testCluster(t, nw, ClusterConfig{Members: addrs, ReplicationFactor: 2})

	ctx := context.Background()
	if err := c.Put(ctx, []byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(ctx, []byte("k1"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v1" {
		t.Fatalf("Get = %q, want v1", got)
	}
	if _, err := c.Get(ctx, []byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
}

func TestPutOverwriteLastWriteWins(t *testing.T) {
	nw := transport.NewMemNetwork()
	addrs := testRing(t, nw, 3)
	c := testCluster(t, nw, ClusterConfig{Members: addrs, ReplicationFactor: 3, WriteConsistency: All, ReadConsistency: All})

	ctx := context.Background()
	key := []byte("k")
	if err := c.Put(ctx, key, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(ctx, key, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Fatalf("Get after overwrite = %q, want new", got)
	}
}

func TestReplicationSurvivesNodeLoss(t *testing.T) {
	nw := transport.NewMemNetwork()
	n := 4
	nodes := make([]*Node, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		node, err := NewNode(NodeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		addr := fmt.Sprintf("kv-%d", i)
		l, err := nw.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		node.Serve(l)
		nodes[i], addrs[i] = node, addr
	}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()

	c := testCluster(t, nw, ClusterConfig{Members: addrs, ReplicationFactor: 2, WriteConsistency: All})
	ctx := context.Background()

	keys := make([][]byte, 50)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%03d", i))
		if err := c.Put(ctx, keys[i], []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	// Kill one node: with RF=2 and writes at ALL, every key must still be
	// readable at ONE through its surviving replica.
	nodes[2].Close()
	for _, k := range keys {
		if _, err := c.Get(ctx, k); err != nil {
			t.Fatalf("Get(%s) after node loss: %v", k, err)
		}
	}
}

func TestPutIfAbsent(t *testing.T) {
	nw := transport.NewMemNetwork()
	addrs := testRing(t, nw, 3)
	c := testCluster(t, nw, ClusterConfig{Members: addrs, ReplicationFactor: 2})

	ctx := context.Background()
	existed, err := c.PutIfAbsent(ctx, []byte("k"), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if existed {
		t.Fatal("first PutIfAbsent reported existing key")
	}
	existed, err = c.PutIfAbsent(ctx, []byte("k"), []byte("other"))
	if err != nil {
		t.Fatal(err)
	}
	if !existed {
		t.Fatal("second PutIfAbsent missed existing key")
	}
	got, err := c.Get(ctx, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v" {
		t.Fatalf("PutIfAbsent overwrote value: %q", got)
	}
}

func TestBatchHasAndBatchPut(t *testing.T) {
	nw := transport.NewMemNetwork()
	addrs := testRing(t, nw, 3)
	c := testCluster(t, nw, ClusterConfig{Members: addrs, ReplicationFactor: 2, LocalAddr: addrs[0]})

	ctx := context.Background()
	var keys, values [][]byte
	for i := 0; i < 40; i++ {
		keys = append(keys, []byte(fmt.Sprintf("key-%02d", i)))
		values = append(values, []byte(fmt.Sprintf("val-%02d", i)))
	}
	if err := c.BatchPut(ctx, keys[:20], values[:20]); err != nil {
		t.Fatal(err)
	}
	found, err := c.BatchHas(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range found {
		if want := i < 20; ok != want {
			t.Errorf("key %d presence = %v, want %v", i, ok, want)
		}
	}
	local, remote := c.LookupStats()
	if local+remote != int64(len(keys)) {
		t.Errorf("lookup stats %d+%d, want %d total", local, remote, len(keys))
	}
	if local == 0 {
		t.Error("no lookups went to the local node despite LocalAddr preference")
	}
}

func TestBatchPutLengthMismatch(t *testing.T) {
	nw := transport.NewMemNetwork()
	addrs := testRing(t, nw, 1)
	c := testCluster(t, nw, ClusterConfig{Members: addrs})
	if err := c.BatchPut(context.Background(), [][]byte{[]byte("a")}, nil); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestBatchHasFallbackOnNodeFailure(t *testing.T) {
	nw := transport.NewMemNetwork()
	n := 3
	nodes := make([]*Node, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		node, err := NewNode(NodeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		addr := fmt.Sprintf("kv-%d", i)
		l, err := nw.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		node.Serve(l)
		nodes[i], addrs[i] = node, addr
	}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	c := testCluster(t, nw, ClusterConfig{Members: addrs, ReplicationFactor: 2, WriteConsistency: All})

	ctx := context.Background()
	var keys [][]byte
	for i := 0; i < 30; i++ {
		k := []byte(fmt.Sprintf("key-%02d", i))
		keys = append(keys, k)
		if err := c.Put(ctx, k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	nodes[1].Close()
	found, err := c.BatchHas(ctx, keys)
	if err != nil {
		t.Fatalf("BatchHas with dead node: %v", err)
	}
	for i, ok := range found {
		if !ok {
			t.Errorf("key %d reported missing after failover", i)
		}
	}
}

func TestWriteQuorumFailure(t *testing.T) {
	nw := transport.NewMemNetwork()
	node, err := NewNode(NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := nw.Listen("kv-0")
	if err != nil {
		t.Fatal(err)
	}
	node.Serve(l)

	c := testCluster(t, nw, ClusterConfig{
		Members:           []string{"kv-0", "kv-1"}, // kv-1 never exists
		ReplicationFactor: 2,
		WriteConsistency:  All,
		CallTimeout:       200 * time.Millisecond,
	})
	err = c.Put(context.Background(), []byte("k"), []byte("v"))
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("Put = %v, want ErrNoQuorum", err)
	}
	if hints := c.PendingHints(); hints["kv-1"] == 0 {
		t.Error("no hint queued for the unreachable replica")
	}
	node.Close()
}

func TestHintedHandoffReplaysOnRecovery(t *testing.T) {
	nw := transport.NewMemNetwork()
	// Start both replicas, then take kv-1 down before the write.
	nodeA, err := NewNode(NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	lA, err := nw.Listen("kv-0")
	if err != nil {
		t.Fatal(err)
	}
	nodeA.Serve(lA)
	defer nodeA.Close()

	c := testCluster(t, nw, ClusterConfig{
		Members:           []string{"kv-0", "kv-1"},
		ReplicationFactor: 2,
		WriteConsistency:  One,
		HeartbeatInterval: 30 * time.Millisecond,
		CallTimeout:       200 * time.Millisecond,
	})
	ctx := context.Background()
	if err := c.Put(ctx, []byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put at ONE with one replica down: %v", err)
	}
	if hints := c.PendingHints(); hints["kv-1"] == 0 {
		t.Fatal("no hint stored for the down replica")
	}

	// Bring kv-1 up; the health loop should replay the hint.
	nodeB, err := NewNode(NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	lB, err := nw.Listen("kv-1")
	if err != nil {
		t.Fatal(err)
	}
	nodeB.Serve(lB)
	defer nodeB.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if nodeB.Len() == 1 {
			return // hint delivered
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("hint never replayed to recovered node")
}

func TestReadRepairConvergesReplicas(t *testing.T) {
	nw := transport.NewMemNetwork()
	n := 3
	nodes := make([]*Node, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		node, err := NewNode(NodeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		addr := fmt.Sprintf("kv-%d", i)
		l, err := nw.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		node.Serve(l)
		nodes[i], addrs[i] = node, addr
	}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	c := testCluster(t, nw, ClusterConfig{
		Members: addrs, ReplicationFactor: 3,
		WriteConsistency: One, ReadConsistency: All,
	})
	ctx := context.Background()
	key := []byte("repair-me")

	// Seed divergence: write directly to one node with a newer version.
	if err := c.Put(ctx, key, []byte("stale")); err != nil {
		t.Fatal(err)
	}
	newer := Entry{Value: []byte("fresh"), Version: c.nextVersion()}
	for _, nd := range nodes[:1] {
		nd.applyPut(key, newer)
	}

	got, err := c.Get(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "fresh" {
		t.Fatalf("Get = %q, want fresh (highest version wins)", got)
	}
	// Read repair is async; wait for propagation.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		repaired := 0
		for _, nd := range nodes {
			if e, ok := nd.localGet(key); ok && bytes.Equal(e.Value, []byte("fresh")) {
				repaired++
			}
		}
		if repaired == n {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("read repair did not converge all replicas")
}

func TestNodeStatsCounting(t *testing.T) {
	nw := transport.NewMemNetwork()
	addrs := testRing(t, nw, 1)
	c := testCluster(t, nw, ClusterConfig{Members: addrs, ReplicationFactor: 1})
	ctx := context.Background()

	if err := c.Put(ctx, []byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, []byte("b")); !errors.Is(err, ErrNotFound) {
		t.Fatal(err)
	}
	stats, err := c.MemberStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s := stats[addrs[0]]
	if s.Puts != 1 || s.Gets != 2 || s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestWALPersistence(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "node.wal")

	nw := transport.NewMemNetwork()
	node, err := NewNode(NodeConfig{WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	l, err := nw.Listen("kv-0")
	if err != nil {
		t.Fatal(err)
	}
	node.Serve(l)
	c := testCluster(t, nw, ClusterConfig{Members: []string{"kv-0"}, ReplicationFactor: 1})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if err := c.Put(ctx, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	node.Close()

	// Restart from the WAL.
	node2, err := NewNode(NodeConfig{WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	defer node2.Close()
	if node2.Len() != 10 {
		t.Fatalf("restarted node has %d entries, want 10", node2.Len())
	}
}

func TestWALStopsAtCorruption(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "node.wal")
	w, err := OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append([]byte(fmt.Sprintf("k%d", i)), Entry{Value: []byte("v"), Version: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	// Append garbage: replay must keep the 5 intact records and stop.
	if err := w.Append([]byte("k5"), Entry{Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Truncate the last record to simulate a torn write.
	// (Open the file and chop a few bytes.)
	data, err := readFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFile(walPath, data[:len(data)-3]); err != nil {
		t.Fatal(err)
	}
	count := 0
	stats, err := ReplayWAL(walPath, func([]byte, Entry) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 || stats.Records != 5 {
		t.Fatalf("replayed %d records (stats %+v), want 5", count, stats)
	}
	if stats.TornBytes == 0 {
		t.Fatalf("torn tail not counted: %+v", stats)
	}
	if stats.CorruptBytes != 0 {
		t.Fatalf("torn tail misclassified as corruption: %+v", stats)
	}
}

func TestReplayMissingWAL(t *testing.T) {
	stats, err := ReplayWAL(filepath.Join(t.TempDir(), "nope.wal"), func([]byte, Entry) {
		t.Fatal("callback invoked for missing file")
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats != (ReplayStats{}) {
		t.Fatalf("stats = %+v, want zero", stats)
	}
}

func TestConsistencyRequired(t *testing.T) {
	tests := []struct {
		c    Consistency
		n    int
		want int
	}{
		{One, 3, 1},
		{Quorum, 3, 2},
		{Quorum, 4, 3},
		{Quorum, 1, 1},
		{All, 3, 3},
	}
	for _, tt := range tests {
		if got := tt.c.required(tt.n); got != tt.want {
			t.Errorf("%s.required(%d) = %d, want %d", tt.c, tt.n, got, tt.want)
		}
	}
	if One.String() != "ONE" || Quorum.String() != "QUORUM" || All.String() != "ALL" {
		t.Error("Consistency.String mismatch")
	}
}

// TestPropertyQuorumReadYourWrites: with R+W > N, a read after a write
// always sees the written value, for random key/value pairs.
func TestPropertyQuorumReadYourWrites(t *testing.T) {
	nw := transport.NewMemNetwork()
	addrs := testRing(t, nw, 3)
	c := testCluster(t, nw, ClusterConfig{
		Members: addrs, ReplicationFactor: 3,
		ReadConsistency: Quorum, WriteConsistency: Quorum,
	})
	ctx := context.Background()
	f := func(key, value []byte) bool {
		if len(key) == 0 {
			return true
		}
		if err := c.Put(ctx, key, value); err != nil {
			return false
		}
		got, err := c.Get(ctx, key)
		if err != nil {
			return false
		}
		return bytes.Equal(got, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEntryCodecRoundTrip fuzzes the wire codec.
func TestPropertyEntryCodecRoundTrip(t *testing.T) {
	f := func(key, value []byte, version uint64) bool {
		enc := encodeEntry(nil, key, Entry{Value: value, Version: version})
		k, e, rest, err := decodeEntry(enc)
		if err != nil || len(rest) != 0 {
			return false
		}
		return bytes.Equal(k, key) && bytes.Equal(e.Value, value) && e.Version == version
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyListCodecRoundTrip(t *testing.T) {
	f := func(keys [][]byte) bool {
		dec, err := decodeKeyList(encodeKeyList(keys))
		if err != nil {
			return false
		}
		if len(dec) != len(keys) {
			return false
		}
		for i := range keys {
			if !bytes.Equal(dec[i], keys[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	if _, _, _, err := decodeEntry([]byte{0, 0}); err == nil {
		t.Error("truncated entry decoded")
	}
	if _, err := decodeKeyList([]byte{0}); err == nil {
		t.Error("truncated key list decoded")
	}
	if _, err := decodeStats([]byte{1, 2}); err == nil {
		t.Error("short stats decoded")
	}
}
