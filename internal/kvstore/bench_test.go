package kvstore

import (
	"context"
	"fmt"
	"testing"

	"efdedup/internal/transport"
)

// benchRingCluster spins up n nodes plus a cluster with the given
// replication and consistency.
func benchRingCluster(b *testing.B, n, rf int, read, write Consistency) *Cluster {
	b.Helper()
	nw := transport.NewMemNetwork()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		node, err := NewNode(NodeConfig{})
		if err != nil {
			b.Fatal(err)
		}
		addr := fmt.Sprintf("kv-%d", i)
		l, err := nw.Listen(addr)
		if err != nil {
			b.Fatal(err)
		}
		node.Serve(l)
		b.Cleanup(func() { node.Close() })
		addrs[i] = addr
	}
	c, err := NewCluster(ClusterConfig{
		Members:           addrs,
		ReplicationFactor: rf,
		ReadConsistency:   read,
		WriteConsistency:  write,
		LocalAddr:         addrs[0],
		Network:           nw,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

func benchKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("chunk-hash-%06d", i))
	}
	return keys
}

func BenchmarkBatchHas(b *testing.B) {
	c := benchRingCluster(b, 4, 2, One, One)
	ctx := context.Background()
	keys := benchKeys(64)
	values := make([][]byte, len(keys))
	for i := range values {
		values[i] = []byte("v")
	}
	if err := c.BatchPut(ctx, keys, values); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.BatchHas(ctx, keys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchPut(b *testing.B) {
	c := benchRingCluster(b, 4, 2, One, One)
	ctx := context.Background()
	keys := benchKeys(64)
	values := make([][]byte, len(keys))
	for i := range values {
		values[i] = []byte("v")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.BatchPut(ctx, keys, values); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConsistencyAblation compares read latency at ONE vs QUORUM vs
// ALL — the availability/latency knob the agent leaves at ONE.
func BenchmarkConsistencyAblation(b *testing.B) {
	for _, cons := range []Consistency{One, Quorum, All} {
		b.Run(cons.String(), func(b *testing.B) {
			c := benchRingCluster(b, 3, 3, cons, All)
			ctx := context.Background()
			if err := c.Put(ctx, []byte("k"), []byte("v")); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Get(ctx, []byte("k")); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReplicationFactorAblation sweeps γ — the paper's V(P) term
// depends on 1-γ/|P|, and higher γ also multiplies write fan-out.
func BenchmarkReplicationFactorAblation(b *testing.B) {
	for _, rf := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("rf=%d", rf), func(b *testing.B) {
			c := benchRingCluster(b, 4, rf, One, One)
			ctx := context.Background()
			keys := benchKeys(32)
			values := make([][]byte, len(keys))
			for i := range values {
				values[i] = []byte("v")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.BatchPut(ctx, keys, values); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			local, remote := c.LookupStats()
			_ = local
			_ = remote
		})
	}
}
