package kvstore

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"efdedup/internal/faultnet"
	"efdedup/internal/transport"
)

// TestBatchPutPartialFailureNamesFailedKeys: with one of two RF=1 nodes
// isolated by the chaos fabric, a batch write must (a) apply the live
// node's key subset durably, and (b) return a PartialWriteError naming
// exactly the dead node's keys — not a bare error that makes the caller
// treat the whole batch as lost (the bug behind over-counted
// IndexInsertFailures).
func TestBatchPutPartialFailureNamesFailedKeys(t *testing.T) {
	nw := transport.NewMemNetwork()
	fabric := faultnet.NewFabric(faultnet.Config{Seed: 1})
	defer fabric.Close()
	fnw := fabric.NetworkFor("edge", nw)

	var nodes []*Node
	var addrs []string
	for i := 0; i < 2; i++ {
		node, err := NewNode(NodeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		addr := fmt.Sprintf("kv-%d", i)
		l, err := fnw.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		node.Serve(l)
		t.Cleanup(func() { node.Close() })
		nodes = append(nodes, node)
		addrs = append(addrs, addr)
	}

	c, err := NewCluster(ClusterConfig{
		Members:           addrs,
		ReplicationFactor: 1,
		Network:           fnw,
		DisableRetry:      true,
		CallTimeout:       time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	const n = 64
	keys := make([][]byte, n)
	values := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%03d", i))
		values[i] = []byte("v")
	}

	fabric.Isolate(addrs[1])
	err = c.BatchPut(context.Background(), keys, values)
	if err == nil {
		t.Fatal("batch put succeeded with a replica isolated")
	}
	var partial *PartialWriteError
	if !errors.As(err, &partial) {
		t.Fatalf("error is %T (%v), want *PartialWriteError", err, err)
	}
	if !errors.Is(err, ErrNoQuorum) {
		t.Errorf("PartialWriteError does not unwrap to ErrNoQuorum: %v", err)
	}
	if partial.Total != n {
		t.Errorf("Total = %d, want %d", partial.Total, n)
	}
	if len(partial.FailedKeys) == 0 || len(partial.FailedKeys) == n {
		t.Fatalf("failed keys = %d of %d; the hash ring should split the batch",
			len(partial.FailedKeys), n)
	}

	// The live node's subset is durable: applied count + failed count
	// covers the whole batch.
	if got := nodes[0].Len(); got != n-len(partial.FailedKeys) {
		t.Errorf("live node holds %d keys, want %d (batch %d - failed %d)",
			got, n-len(partial.FailedKeys), n, len(partial.FailedKeys))
	}
	// And the failed keys are exactly the ones the live node does NOT
	// hold.
	for _, k := range partial.FailedKeys {
		if _, ok := nodes[0].localGet(k); ok {
			t.Errorf("key %q reported failed but present on live node", k)
		}
	}
	// Every failed key got a hint queued for the dead replica.
	if hints := c.PendingHints()[addrs[1]]; hints != len(partial.FailedKeys) {
		t.Errorf("pending hints for dead node = %d, want %d", hints, len(partial.FailedKeys))
	}
}
