package kvstore

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"efdedup/internal/retrypolicy"
	"efdedup/internal/transport"
)

// flappyNode is a fake storage node that answers pings but whose batchput
// handler can be programmed to fail, modelling a replica that comes back
// just long enough to accept part of its hint backlog.
type flappyNode struct {
	srv *transport.Server

	calls     atomic.Int64 // batchput RPCs received
	delivered atomic.Int64 // hint records accepted
	failAfter atomic.Int64 // accept this many batchput calls, then error
}

func startFlappyNode(t *testing.T, nw *transport.MemNetwork, addr string, failAfter int64) *flappyNode {
	t.Helper()
	f := &flappyNode{srv: transport.NewServer()}
	f.failAfter.Store(failAfter)
	f.srv.Handle(methodPing, func([]byte) ([]byte, error) { return nil, nil })
	f.srv.Handle(methodBatchPut, func(body []byte) ([]byte, error) {
		if f.calls.Add(1) > f.failAfter.Load() {
			return nil, fmt.Errorf("flap: storage engine down")
		}
		if len(body) >= 4 {
			f.delivered.Add(int64(binary.BigEndian.Uint32(body)))
		}
		return nil, nil
	})
	l, err := nw.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	go f.srv.Serve(l) //nolint:errcheck // returns on Close
	t.Cleanup(func() { f.srv.Close() })
	return f
}

// isDown reads the cluster's failure-detector verdict for addr.
func isDown(c *Cluster, addr string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down[addr]
}

// TestHintedHandoffPartialReplayOnFlap: a replica that recovers for
// exactly one replay batch gets that batch, the remaining hints are
// re-queued, the node is marked down again, and a later clean recovery
// converges to zero pending hints with every record delivered exactly
// once.
func TestHintedHandoffPartialReplayOnFlap(t *testing.T) {
	nw := transport.NewMemNetwork()
	testRing(t, nw, 1) // kv-0 is real; kv-1 starts dead

	c := testCluster(t, nw, ClusterConfig{
		Members:           []string{"kv-0", "kv-1"},
		ReplicationFactor: 2,
		WriteConsistency:  One,
		CallTimeout:       200 * time.Millisecond,
		Retry:             retrypolicy.Policy{MaxAttempts: 2, BaseDelay: 2 * time.Millisecond, Seed: 1},
		Breaker:           retrypolicy.BreakerConfig{FailureThreshold: 2, OpenFor: 10 * time.Minute},
	})

	// Queue more than one replay batch of hints while kv-1 is dead. The
	// breaker opens after the first couple of misses, so the bulk of the
	// writes hint immediately instead of timing out one by one.
	ctx := context.Background()
	total := hintReplayBatch + 22
	for i := 0; i < total; i++ {
		if err := c.Put(ctx, []byte(fmt.Sprintf("key-%03d", i)), []byte("v")); err != nil {
			t.Fatalf("Put %d at ONE with kv-1 down: %v", i, err)
		}
	}
	if got := c.PendingHints()["kv-1"]; got != total {
		t.Fatalf("pending hints = %d, want %d", got, total)
	}

	// kv-1 flaps up: it accepts exactly one batchput, then fails again.
	flap := startFlappyNode(t, nw, "kv-1", 1)
	c.checkMembers()

	if got := flap.calls.Load(); got != 2 {
		t.Fatalf("batchput calls during flap = %d, want 2 (one accepted, one failed)", got)
	}
	if got := flap.delivered.Load(); got != int64(hintReplayBatch) {
		t.Fatalf("records delivered during flap = %d, want %d", got, hintReplayBatch)
	}
	if got := c.PendingHints()["kv-1"]; got != total-hintReplayBatch {
		t.Fatalf("re-queued hints = %d, want %d", got, total-hintReplayBatch)
	}
	if !isDown(c, "kv-1") {
		t.Fatal("mid-replay failure did not mark the node down again")
	}

	// Clean recovery: the next sweep replays the remainder and converges.
	flap.failAfter.Store(1 << 30)
	c.checkMembers()

	if got := c.PendingHints()["kv-1"]; got != 0 {
		t.Fatalf("pending hints after recovery = %d, want 0", got)
	}
	if got := flap.delivered.Load(); got != int64(total) {
		t.Fatalf("total records delivered = %d, want %d (each hint exactly once)", got, total)
	}
	if isDown(c, "kv-1") {
		t.Fatal("recovered node still marked down")
	}
}

// TestCheckMembersConcurrentSweep: one dead member must not serialize the
// health sweep — with many members and a PingTimeout, the sweep finishes
// in roughly one timeout, not members × timeout.
func TestCheckMembersConcurrentSweep(t *testing.T) {
	nw := transport.NewMemNetwork()
	members := []string{"kv-a", "kv-b", "kv-c", "kv-d", "kv-e"} // none exist
	c := testCluster(t, nw, ClusterConfig{
		Members:     members,
		PingTimeout: 100 * time.Millisecond,
	})
	start := time.Now()
	c.checkMembers()
	// Mem-network dials to unknown addresses fail instantly, so even the
	// serial version passes a wall-clock bound; assert the observable
	// contract instead: every member probed and marked down in one sweep.
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("sweep of 5 dead members took %v", d)
	}
	for _, m := range members {
		if !isDown(c, m) {
			t.Fatalf("member %s not marked down after sweep", m)
		}
	}
}
