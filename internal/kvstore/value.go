// Package kvstore implements the distributed key-value store that holds
// each D2-ring's deduplication index — the role Cassandra plays in the
// EF-dedup prototype (paper Sec. IV).
//
// The store is composed of:
//
//   - Node: one storage replica (in-memory table, optional write-ahead
//     log) exposed over the transport RPC protocol;
//   - Cluster: a client-side coordinator that places keys with consistent
//     hashing, replicates writes to γ nodes, reads at a configurable
//     consistency level (ONE / QUORUM / ALL), performs read repair and
//     hinted handoff, and keeps per-peer health with heartbeats.
//
// Conflicts resolve by last-write-wins on a (version, coordinator) pair.
// This matches the needs of a dedup index: values are tiny chunk-metadata
// records, false negatives only cost a redundant upload, and false
// positives cannot happen because chunk IDs are content hashes.
package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrNotFound is returned by reads of missing keys.
var ErrNotFound = errors.New("kvstore: key not found")

// ErrProto marks malformed or truncated wire payloads: the peer sent
// bytes the protocol cannot decode, so the retry layer must not spend
// budget re-sending the same frame.
var ErrProto = errors.New("kvstore: protocol error")

// ErrConfig marks invalid cluster assembly, membership changes or call
// arguments: caller mistakes, never transient.
var ErrConfig = errors.New("kvstore: invalid configuration")

// ErrClosed marks operations against a closed WAL or node: callers raced
// a shutdown, never transient.
var ErrClosed = errors.New("kvstore: closed")

// ErrCorrupt marks durable state (snapshot files) that fails its CRC or
// framing checks. Unlike a torn WAL tail — an expected crash artifact
// that is silently truncated — snapshot corruption means real damage,
// and recovery surfaces it instead of serving a silently shrunken index.
var ErrCorrupt = errors.New("kvstore: corrupt durable state")

// Entry is one stored record.
type Entry struct {
	// Value is the payload.
	Value []byte
	// Version orders concurrent writes (last-write-wins). Coordinators
	// derive it from wall-clock nanoseconds plus a tie-breaking counter.
	Version uint64
}

// --- wire helpers -----------------------------------------------------

// appendBytes appends a u32 length prefix plus the data.
func appendBytes(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// readBytes consumes one length-prefixed blob.
func readBytes(src []byte) (val, rest []byte, err error) {
	if len(src) < 4 {
		return nil, nil, fmt.Errorf("%w: truncated length prefix", ErrProto)
	}
	n := binary.BigEndian.Uint32(src)
	if uint64(len(src)-4) < uint64(n) {
		return nil, nil, fmt.Errorf("%w: blob of %d bytes exceeds remaining %d", ErrProto, n, len(src)-4)
	}
	return src[4 : 4+n], src[4+n:], nil
}

// encodeEntry serializes key+entry for put requests and scan streams.
func encodeEntry(dst []byte, key []byte, e Entry) []byte {
	dst = appendBytes(dst, key)
	dst = binary.BigEndian.AppendUint64(dst, e.Version)
	dst = appendBytes(dst, e.Value)
	return dst
}

// decodeEntry consumes one encoded key+entry.
func decodeEntry(src []byte) (key []byte, e Entry, rest []byte, err error) {
	key, src, err = readBytes(src)
	if err != nil {
		return nil, Entry{}, nil, err
	}
	if len(src) < 8 {
		return nil, Entry{}, nil, fmt.Errorf("%w: truncated version", ErrProto)
	}
	e.Version = binary.BigEndian.Uint64(src)
	e.Value, rest, err = readBytes(src[8:])
	if err != nil {
		return nil, Entry{}, nil, err
	}
	return key, e, rest, nil
}

// encodeKeyList serializes a count-prefixed list of keys.
func encodeKeyList(keys [][]byte) []byte {
	out := binary.BigEndian.AppendUint32(nil, uint32(len(keys)))
	for _, k := range keys {
		out = appendBytes(out, k)
	}
	return out
}

// decodeKeyList parses a count-prefixed list of keys.
func decodeKeyList(src []byte) ([][]byte, error) {
	if len(src) < 4 {
		return nil, fmt.Errorf("%w: truncated key list", ErrProto)
	}
	n := binary.BigEndian.Uint32(src)
	src = src[4:]
	// Each key costs at least a 4-byte length prefix; a count that could
	// not possibly fit the remaining bytes is corrupt (and must not drive
	// the allocation below).
	if uint64(n) > uint64(len(src))/4+1 {
		return nil, fmt.Errorf("%w: key list count %d exceeds payload", ErrProto, n)
	}
	keys := make([][]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		var k []byte
		var err error
		k, src, err = readBytes(src)
		if err != nil {
			return nil, err
		}
		keys = append(keys, k)
	}
	return keys, nil
}
