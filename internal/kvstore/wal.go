package kvstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// WAL is the append-only write-ahead log giving a storage node durability
// across restarts. Each record is
//
//	u32 length | u32 crc32(payload) | payload
//
// where payload is an encoded key+entry. Replay stops at the first torn
// or corrupt record; opening the log for appending truncates the file
// back to the last valid record, so post-crash appends land on a clean
// tail and replay correctly on the next restart.
type WAL struct {
	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	path     string
	policy   SyncPolicy
	size     int64 // bytes of appended (valid) records
	dirty    bool  // buffered or un-fsynced bytes outstanding
	syncErr  error // sticky: a failed fsync leaves disk state unknown
	closed   bool
	closeErr error

	closeOnce sync.Once
	stop      chan struct{} // interval flusher shutdown
	done      chan struct{}
}

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncInterval (the default) groups commits: a background flusher
	// fsyncs every SyncEvery, so an acknowledged put may lose at most
	// one interval of records on power failure.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs before Append returns: an acknowledged put is
	// durable on this replica.
	SyncAlways
	// SyncOff never fsyncs automatically; callers own Sync. This is the
	// pre-durability behaviour and is only safe when replication or an
	// external snapshot covers the loss window.
	SyncOff
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy maps the -wal-sync flag values onto a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval", "":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	default:
		return 0, fmt.Errorf("%w: unknown wal sync policy %q (want always, interval or off)", ErrConfig, s)
	}
}

// DefaultSyncEvery is the group-commit interval when none is configured.
const DefaultSyncEvery = 50 * time.Millisecond

// maxWALRecord bounds a single record (16 MiB). Index entries are tiny
// chunk-metadata blobs; a length prefix beyond this is corruption and
// must not drive a giant allocation during replay.
const maxWALRecord = 16 << 20

// WALOptions configures OpenWALOptions.
type WALOptions struct {
	// Path locates the log file (created if missing).
	Path string
	// Sync is the fsync policy; the zero value is SyncInterval.
	Sync SyncPolicy
	// SyncEvery is the group-commit interval under SyncInterval;
	// defaults to DefaultSyncEvery.
	SyncEvery time.Duration
}

// OpenWAL opens (creating if needed) the log at path for appending with
// the default interval group-commit policy.
func OpenWAL(path string) (*WAL, error) {
	return OpenWALOptions(WALOptions{Path: path})
}

// OpenWALOptions opens the log, scans it for the last valid record and
// truncates any torn or corrupt tail so new appends extend a replayable
// prefix. Under SyncInterval a flusher goroutine is started; it stops on
// Close.
func OpenWALOptions(opts WALOptions) (*WAL, error) {
	stats, err := scanWAL(opts.Path, nil)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(opts.Path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open wal: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("kvstore: open wal: %w", err)
	}
	if fi.Size() > stats.Bytes {
		// Drop the unreplayable tail. Without this, post-crash appends
		// land behind corrupt bytes and are lost to every future replay.
		if err := f.Truncate(stats.Bytes); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("kvstore: truncate wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("kvstore: truncate wal tail: %w", err)
		}
	}
	if _, err := f.Seek(stats.Bytes, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("kvstore: open wal: %w", err)
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	w := &WAL{
		f:      f,
		w:      bufio.NewWriter(f),
		path:   opts.Path,
		policy: opts.Sync,
		size:   stats.Bytes,
	}
	if opts.Sync == SyncInterval {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.flushLoop(opts.SyncEvery)
	}
	return w, nil
}

// Append records one key+entry. Under SyncAlways the record is flushed
// and fsynced before Append returns; under SyncInterval it becomes
// durable at the next group commit; under SyncOff when the caller syncs.
func (w *WAL) Append(key []byte, e Entry) error {
	payload := encodeEntry(nil, key, e)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("%w: wal append after close", ErrClosed)
	}
	if w.syncErr != nil {
		// A failed fsync leaves an unknown on-disk state; acknowledging
		// more writes on top of it would fabricate durability.
		return w.syncErr
	}
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("kvstore: wal append: %w", err)
	}
	if _, err := w.w.Write(payload); err != nil {
		return fmt.Errorf("kvstore: wal append: %w", err)
	}
	w.size += int64(8 + len(payload))
	w.dirty = true
	if w.policy == SyncAlways {
		return w.syncLocked()
	}
	return nil
}

// flushLoop is the SyncInterval group-commit goroutine.
func (w *WAL) flushLoop(every time.Duration) {
	defer close(w.done)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			w.mu.Lock()
			if !w.closed && w.dirty && w.syncErr == nil {
				// The error is sticky in syncErr; the next Append
				// surfaces it to a caller who can act on it.
				//lint:ignore errlost syncLocked records the failure in w.syncErr for the next Append to return
				_ = w.syncLocked()
			}
			w.mu.Unlock()
		case <-w.stop:
			return
		}
	}
}

// syncLocked flushes buffered records and fsyncs. Callers hold w.mu.
// Failures are sticky: the log refuses further appends.
func (w *WAL) syncLocked() error {
	if err := w.w.Flush(); err != nil {
		w.syncErr = fmt.Errorf("kvstore: wal flush: %w", err)
		return w.syncErr
	}
	if err := w.f.Sync(); err != nil {
		w.syncErr = fmt.Errorf("kvstore: wal fsync: %w", err)
		return w.syncErr
	}
	w.dirty = false
	return nil
}

// Sync forces a flush+fsync of everything appended so far.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("%w: wal sync after close", ErrClosed)
	}
	if w.syncErr != nil {
		return w.syncErr
	}
	return w.syncLocked()
}

// Size returns the log's current length in bytes (valid prefix plus
// appends this session) — the snapshot trigger input.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Truncate resets the log to empty after its contents have been made
// durable elsewhere (a snapshot). The caller must exclude concurrent
// appenders, or records between the snapshot copy and the truncation
// would be lost.
func (w *WAL) Truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("%w: wal truncate after close", ErrClosed)
	}
	w.w.Reset(w.f) // discard buffered pre-snapshot records
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("kvstore: wal truncate: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("kvstore: wal truncate: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("kvstore: wal truncate: %w", err)
	}
	w.size = 0
	w.dirty = false
	// The on-disk log is empty and consistent again; a previous fsync
	// failure no longer taints anything still in the file.
	w.syncErr = nil
	return nil
}

// Close stops the flusher, flushes and fsyncs outstanding records, and
// closes the file — exactly once; repeated Closes return the first
// result. A flush failure keeps its context and still closes the file.
func (w *WAL) Close() error {
	w.closeOnce.Do(func() {
		if w.stop != nil {
			close(w.stop)
			<-w.done
		}
		w.mu.Lock()
		ferr := w.syncErr
		if ferr == nil {
			ferr = w.syncLocked()
		}
		cerr := w.f.Close()
		w.closed = true
		switch {
		case ferr != nil && cerr != nil:
			w.closeErr = fmt.Errorf("kvstore: wal close: %w (and close: %v)", ferr, cerr)
		case ferr != nil:
			w.closeErr = fmt.Errorf("kvstore: wal close: %w", ferr)
		case cerr != nil:
			w.closeErr = fmt.Errorf("kvstore: wal close: %w", cerr)
		}
		w.mu.Unlock()
	})
	return w.closeErr
}

// kill simulates ungraceful process death for chaos tests: buffered
// user-space records are dropped and nothing is flushed or fsynced —
// what SIGKILL does to a process with unflushed buffers.
func (w *WAL) kill() {
	w.closeOnce.Do(func() {
		if w.stop != nil {
			close(w.stop)
			<-w.done
		}
		w.mu.Lock()
		//lint:ignore errlost simulated crash: losing the close error is the point
		_ = w.f.Close()
		w.closed = true
		w.mu.Unlock()
	})
}

// ReplayStats describes what a log scan recovered and what it had to
// discard.
type ReplayStats struct {
	// Records is how many intact records the valid prefix holds.
	Records int
	// Bytes is the valid prefix length — the offset appends resume at.
	Bytes int64
	// TornBytes counts trailing bytes discarded because the final record
	// was incomplete: the expected artifact of a crash mid-append.
	TornBytes int64
	// CorruptBytes counts bytes discarded because a fully-present record
	// failed its CRC or decode — bit rot or external damage, not a torn
	// write. Everything after the corrupt record is unreachable and
	// counted here too.
	CorruptBytes int64
}

// Discarded returns the total bytes the scan could not replay.
func (s ReplayStats) Discarded() int64 { return s.TornBytes + s.CorruptBytes }

// ReplayWAL streams every intact record of the log at path into apply
// and reports what was recovered. A missing file is not an error (fresh
// node). Replay is read-only; OpenWAL performs the tail truncation.
func ReplayWAL(path string, apply func(key []byte, e Entry)) (ReplayStats, error) {
	return scanWAL(path, apply)
}

// scanWAL walks the log, calling apply (when non-nil) for each intact
// record, classifying the stop condition and measuring the valid prefix.
func scanWAL(path string, apply func(key []byte, e Entry)) (ReplayStats, error) {
	var stats ReplayStats
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return stats, nil
	}
	if err != nil {
		return stats, fmt.Errorf("kvstore: replay wal: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return stats, fmt.Errorf("kvstore: replay wal: %w", err)
	}
	total := fi.Size()
	r := bufio.NewReader(f)
	for {
		var hdr [8]byte
		if n, err := io.ReadFull(r, hdr[:]); err != nil {
			if n > 0 {
				stats.TornBytes = total - stats.Bytes // torn header
			}
			return stats, nil
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		want := binary.BigEndian.Uint32(hdr[4:])
		if n > maxWALRecord {
			// A length no appender writes: corruption, not a torn tail.
			stats.CorruptBytes = total - stats.Bytes
			return stats, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			stats.TornBytes = total - stats.Bytes // torn record body
			return stats, nil
		}
		if crc32.ChecksumIEEE(payload) != want {
			stats.CorruptBytes = total - stats.Bytes
			return stats, nil
		}
		key, e, rest, err := decodeEntry(payload)
		if err != nil || len(rest) != 0 {
			// CRC-valid bytes that do not decode as exactly one entry:
			// written by something else — corruption.
			stats.CorruptBytes = total - stats.Bytes
			return stats, nil
		}
		if apply != nil {
			apply(key, e)
		}
		stats.Records++
		stats.Bytes += int64(8 + len(payload))
	}
}
