package kvstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// WAL is a minimal append-only write-ahead log giving a storage node
// durability across restarts. Each record is
//
//	u32 length | u32 crc32(payload) | payload
//
// where payload is an encoded key+entry. Replay stops at the first torn or
// corrupt record, which is the correct crash-recovery behaviour for an
// append-only file.
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	path string
}

// OpenWAL opens (creating if needed) the log at path for appending.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open wal: %w", err)
	}
	return &WAL{f: f, w: bufio.NewWriter(f), path: path}, nil
}

// Append durably records one key+entry. It buffers; call Sync for a hard
// flush.
func (w *WAL) Append(key []byte, e Entry) error {
	payload := encodeEntry(nil, key, e)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("kvstore: wal append: %w", err)
	}
	if _, err := w.w.Write(payload); err != nil {
		return fmt.Errorf("kvstore: wal append: %w", err)
	}
	return nil
}

// Sync flushes buffered records to the OS.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close flushes and closes the file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// ReplayWAL streams every intact record of the log at path into apply.
// A missing file is not an error (fresh node).
func ReplayWAL(path string, apply func(key []byte, e Entry)) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("kvstore: replay wal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil // EOF or torn header: stop replay
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		want := binary.BigEndian.Uint32(hdr[4:])
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil // torn record
		}
		if crc32.ChecksumIEEE(payload) != want {
			return nil // corrupt record: stop replay
		}
		key, e, _, err := decodeEntry(payload)
		if err != nil {
			return nil
		}
		apply(key, e)
	}
}
