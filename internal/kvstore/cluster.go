package kvstore

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"efdedup/internal/hashring"
	"efdedup/internal/metrics"
	"efdedup/internal/retrypolicy"
	"efdedup/internal/transport"
)

// Consistency selects how many replica acknowledgements an operation
// needs.
type Consistency int

// Consistency levels, mirroring Cassandra's ONE / QUORUM / ALL.
const (
	One Consistency = iota + 1
	Quorum
	All
)

// required returns the number of acknowledgements needed out of n
// replicas.
func (c Consistency) required(n int) int {
	switch c {
	case One:
		return 1
	case All:
		return n
	default:
		return n/2 + 1
	}
}

// String implements fmt.Stringer.
func (c Consistency) String() string {
	switch c {
	case One:
		return "ONE"
	case Quorum:
		return "QUORUM"
	case All:
		return "ALL"
	default:
		return fmt.Sprintf("Consistency(%d)", int(c))
	}
}

// Dialer is the slice of transport.Network the cluster needs.
type Dialer interface {
	Dial(ctx context.Context, addr string) (net.Conn, error)
}

// ClusterConfig configures a coordinator for one D2-ring's index.
type ClusterConfig struct {
	// Members are the storage node addresses of the ring.
	Members []string
	// ReplicationFactor is γ: how many nodes hold each key. Defaults
	// to 2 (the paper's choice); clamped to len(Members).
	ReplicationFactor int
	// ReadConsistency and WriteConsistency default to One, matching
	// the eventual-consistency deployment in the paper.
	ReadConsistency  Consistency
	WriteConsistency Consistency
	// LocalAddr, when set to one of Members, is preferred for lookups
	// whose replica set contains it — the "consult its local Cassandra
	// node" behaviour.
	LocalAddr string
	// Network provides connectivity (possibly netem-shaped).
	Network Dialer
	// VirtualNodes per member on the hash ring; defaults to
	// hashring.DefaultVirtualNodes.
	VirtualNodes int
	// HeartbeatInterval enables background failure detection when
	// positive.
	HeartbeatInterval time.Duration
	// RepairInterval enables background anti-entropy when positive: the
	// coordinator periodically exchanges Merkle-style digests between
	// replica pairs and streams only the differing entries, reconciling
	// replicas that restarted from stale durable state or missed writes
	// during a partition.
	RepairInterval time.Duration
	// Membership optionally supplies an external liveness view (e.g. a
	// gossip node). When set, a peer judged not-alive is skipped the same
	// way the built-in ping detector's down set is.
	Membership LivenessView
	// CallTimeout bounds each RPC attempt; defaults to 5s.
	CallTimeout time.Duration
	// PingTimeout bounds each health-probe ping; defaults to the smaller
	// of HeartbeatInterval and 1s.
	PingTimeout time.Duration
	// Retry tunes the per-RPC retry/backoff schedule (transient faults
	// are absorbed below the consistency layer instead of surfacing as
	// ErrNoQuorum). Zero fields take retrypolicy defaults; the
	// per-attempt timeout is CallTimeout.
	Retry retrypolicy.Policy
	// Breaker tunes the per-address circuit breaker.
	Breaker retrypolicy.BreakerConfig
	// DisableRetry forces single-attempt RPCs (the pre-resilience
	// behaviour); the circuit breaker still observes outcomes.
	DisableRetry bool
	// RetryBudget caps retry amplification across the whole coordinator;
	// nil gets a default bucket (256 tokens, successes refill 0.5).
	RetryBudget *retrypolicy.Budget
	// Metrics receives the coordinator's instrumentation (per-method RPC
	// latency histograms, breaker-state gauges, lookup/hint counters).
	// Nil records into metrics.Default().
	Metrics *metrics.Registry
}

// LivenessView answers liveness queries for cluster members; the gossip
// package's Node satisfies it.
type LivenessView interface {
	IsAlive(addr string) bool
}

// ErrNoQuorum is returned when too few replicas acknowledged an operation.
var ErrNoQuorum = errors.New("kvstore: not enough replicas responded")

// Cluster is a client-side coordinator over the ring's storage nodes.
// It is safe for concurrent use.
type Cluster struct {
	cfg  ClusterConfig
	ring *hashring.Ring

	retrier  *retrypolicy.Retrier
	breakers *retrypolicy.BreakerSet
	budget   *retrypolicy.Budget

	versionCounter atomic.Uint64

	mu      sync.Mutex
	clients map[string]*transport.Client
	down    map[string]bool
	hints   map[string][]hint

	stopHealth chan struct{}
	healthDone chan struct{}

	stopRepair chan struct{}
	repairDone chan struct{}

	remoteLookups atomic.Int64
	localLookups  atomic.Int64

	met clusterMetrics
}

// clusterMetrics pre-resolves the coordinator's instruments so the hot
// path pays one map lookup at construction time, not per call.
type clusterMetrics struct {
	rpc      map[string]*metrics.Histogram // per-method latency (seconds)
	rpcFails map[string]*metrics.Counter   // per-method failed calls
	local    *metrics.Counter              // lookups answered by the local node
	remote   *metrics.Counter              // lookups that crossed the network
	hints    *metrics.Counter              // hinted writes queued
	replays  *metrics.Counter              // hinted writes replayed

	repairRounds   *metrics.Counter // completed anti-entropy sweeps
	repairMismatch *metrics.Counter // replica pairs whose digests differed
	repairPushed   *metrics.Counter // entries streamed during repair
	repairFails    *metrics.Counter // replica pairs that failed to reconcile
}

// clientMethods are the RPC methods a coordinator issues (kv.ping is
// covered too: health probes ride the same path).
var clientMethods = []string{
	methodGet, methodPut, methodPutNX, methodBatchHas, methodBatchPut,
	methodScan, methodPing, methodStats, methodDigest, methodPull,
}

func newClusterMetrics(reg *metrics.Registry) clusterMetrics {
	m := clusterMetrics{
		rpc:      make(map[string]*metrics.Histogram, len(clientMethods)),
		rpcFails: make(map[string]*metrics.Counter, len(clientMethods)),
		local:    reg.Counter("kvstore_client_lookups_local_total"),
		remote:   reg.Counter("kvstore_client_lookups_remote_total"),
		hints:    reg.Counter("kvstore_client_hints_queued_total"),
		replays:  reg.Counter("kvstore_client_hints_replayed_total"),

		repairRounds:   reg.Counter("kvstore_repair_rounds_total"),
		repairMismatch: reg.Counter("kvstore_repair_mismatches_total"),
		repairPushed:   reg.Counter("kvstore_repair_entries_pushed_total"),
		repairFails:    reg.Counter("kvstore_repair_pair_failures_total"),
	}
	for _, method := range clientMethods {
		m.rpc[method] = reg.DurationHistogram("kvstore_client_rpc_seconds", "method", method)
		m.rpcFails[method] = reg.Counter("kvstore_client_rpc_failures_total", "method", method)
	}
	return m
}

type hint struct {
	key []byte
	e   Entry
}

// NewCluster validates cfg and builds a coordinator.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("%w: cluster needs at least one member", ErrConfig)
	}
	if cfg.Network == nil {
		return nil, fmt.Errorf("%w: cluster needs a network", ErrConfig)
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 2
	}
	if cfg.ReplicationFactor > len(cfg.Members) {
		cfg.ReplicationFactor = len(cfg.Members)
	}
	if cfg.ReadConsistency == 0 {
		cfg.ReadConsistency = One
	}
	if cfg.WriteConsistency == 0 {
		cfg.WriteConsistency = One
	}
	if cfg.VirtualNodes == 0 {
		cfg.VirtualNodes = hashring.DefaultVirtualNodes
	}
	if cfg.CallTimeout == 0 {
		cfg.CallTimeout = 5 * time.Second
	}
	if cfg.PingTimeout == 0 {
		cfg.PingTimeout = time.Second
		if cfg.HeartbeatInterval > 0 && cfg.HeartbeatInterval < cfg.PingTimeout {
			cfg.PingTimeout = cfg.HeartbeatInterval
		}
	}
	if cfg.Retry.AttemptTimeout == 0 {
		cfg.Retry.AttemptTimeout = cfg.CallTimeout
	}
	if cfg.DisableRetry {
		cfg.Retry.MaxAttempts = 1
	}
	if cfg.RetryBudget == nil {
		cfg.RetryBudget = retrypolicy.NewBudget(256, 0.5)
	}
	ring, err := hashring.New(cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(cfg.Members))
	for _, m := range cfg.Members {
		if seen[m] {
			return nil, fmt.Errorf("%w: duplicate member %q", ErrConfig, m)
		}
		seen[m] = true
		ring.Add(m)
	}
	if cfg.LocalAddr != "" && !seen[cfg.LocalAddr] {
		return nil, fmt.Errorf("%w: local address %q is not a member", ErrConfig, cfg.LocalAddr)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default()
	}
	c := &Cluster{
		cfg:      cfg,
		ring:     ring,
		retrier:  retrypolicy.New(cfg.Retry),
		breakers: retrypolicy.NewBreakerSet(cfg.Breaker),
		budget:   cfg.RetryBudget,
		clients:  make(map[string]*transport.Client),
		down:     make(map[string]bool),
		hints:    make(map[string][]hint),
		met:      newClusterMetrics(reg),
	}
	// Per-member live gauges. Registration replaces any previous cluster's
	// callback under the same series, so a recreated coordinator (common
	// in tests; daemons build exactly one) reports its own state.
	for _, addr := range cfg.Members {
		addr := addr
		reg.GaugeFunc("kvstore_breaker_state", func() float64 {
			return float64(c.breakers.For(addr).State())
		}, "addr", addr)
		reg.GaugeFunc("kvstore_pending_hints", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.hints[addr]))
		}, "addr", addr)
	}
	c.versionCounter.Store(uint64(time.Now().UnixNano()))
	if cfg.HeartbeatInterval > 0 {
		c.stopHealth = make(chan struct{})
		c.healthDone = make(chan struct{})
		go c.healthLoop()
	}
	if cfg.RepairInterval > 0 {
		c.stopRepair = make(chan struct{})
		c.repairDone = make(chan struct{})
		go c.repairLoop()
	}
	return c, nil
}

// Close tears down connections and stops the health and repair loops.
func (c *Cluster) Close() error {
	if c.stopHealth != nil {
		close(c.stopHealth)
		<-c.healthDone
	}
	if c.stopRepair != nil {
		close(c.stopRepair)
		<-c.repairDone
	}
	c.mu.Lock()
	clients := c.clients
	c.clients = make(map[string]*transport.Client)
	c.mu.Unlock()
	// Close outside the lock: a Close can block on a stalled peer and
	// must not freeze concurrent RPCs holding up c.mu.
	for _, cl := range clients {
		cl.Close()
	}
	return nil
}

// nextVersion returns a monotonically increasing write version.
func (c *Cluster) nextVersion() uint64 { return c.versionCounter.Add(1) }

// client returns (dialing lazily) the connection to addr.
func (c *Cluster) client(ctx context.Context, addr string) (*transport.Client, error) {
	c.mu.Lock()
	if cl, ok := c.clients[addr]; ok {
		c.mu.Unlock()
		return cl, nil
	}
	c.mu.Unlock()
	conn, err := c.cfg.Network.Dial(ctx, addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: dial %s: %w", addr, err)
	}
	cl := transport.NewClient(conn)
	c.mu.Lock()
	defer c.mu.Unlock()
	if existing, ok := c.clients[addr]; ok {
		// Lost the race; keep the established one.
		go cl.Close()
		return existing, nil
	}
	c.clients[addr] = cl
	return cl, nil
}

// dropClient discards a broken connection so the next call redials.
func (c *Cluster) dropClient(addr string, cl *transport.Client) {
	c.mu.Lock()
	if c.clients[addr] == cl {
		delete(c.clients, addr)
	}
	c.mu.Unlock()
	cl.Close()
}

// call performs one RPC against addr under the retry policy and the
// address's circuit breaker: transient transport failures are retried
// with jittered backoff (within the retry budget) and every attempt is
// bounded by CallTimeout. Remote application errors (like ErrNotFound)
// do not tear down the connection, are never retried and count as
// breaker successes; transport failures drop the connection so the next
// attempt redials.
func (c *Cluster) call(ctx context.Context, addr, method string, body []byte) ([]byte, error) {
	sp := metrics.StartTimer(c.met.rpc[method])
	var resp []byte
	err := c.retrier.Do(ctx, c.breakers.For(addr), c.budget, transport.Retryable,
		func(actx context.Context) error {
			r, err := c.callAttempt(actx, addr, method, body)
			if err != nil {
				return err
			}
			resp = r
			return nil
		})
	sp.End()
	if err != nil && !transport.IsRemoteError(err) {
		c.met.rpcFails[method].Inc()
	}
	return resp, err
}

// callAttempt performs a single un-retried RPC attempt against addr.
// The caller is responsible for bounding ctx.
func (c *Cluster) callAttempt(ctx context.Context, addr, method string, body []byte) ([]byte, error) {
	cl, err := c.client(ctx, addr)
	if err != nil {
		return nil, err
	}
	resp, err := cl.Call(ctx, method, body)
	if err != nil {
		if !transport.IsRemoteError(err) {
			c.dropClient(addr, cl)
		}
		return nil, err
	}
	return resp, nil
}

// BreakerStates snapshots every member's circuit-breaker state (for
// observability and tests).
func (c *Cluster) BreakerStates() map[string]retrypolicy.BreakerState {
	return c.breakers.States()
}

// replicas returns the replica set for key in preference order: the local
// member first when it is in the set.
func (c *Cluster) replicas(key []byte) []string {
	reps := c.ring.Lookup(key, c.cfg.ReplicationFactor)
	c.mu.Lock()
	local := c.cfg.LocalAddr
	c.mu.Unlock()
	if local == "" {
		return reps
	}
	for i, r := range reps {
		if r == local && i != 0 {
			reps[0], reps[i] = reps[i], reps[0]
			break
		}
	}
	return reps
}

// isDown reports the failure detector's opinion of addr, folding in the
// external membership view when configured.
func (c *Cluster) isDown(addr string) bool {
	if c.cfg.Membership != nil && !c.cfg.Membership.IsAlive(addr) {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down[addr]
}

// Put replicates key=value to γ nodes and waits for the configured write
// consistency. Unreachable replicas receive hints replayed when they
// recover.
func (c *Cluster) Put(ctx context.Context, key, value []byte) error {
	e := Entry{Value: value, Version: c.nextVersion()}
	return c.putEntry(ctx, key, e)
}

func (c *Cluster) putEntry(ctx context.Context, key []byte, e Entry) error {
	reps := c.replicas(key)
	need := c.cfg.WriteConsistency.required(len(reps))
	body := encodeEntry(nil, key, e)

	type result struct {
		addr string
		err  error
	}
	results := make(chan result, len(reps))
	for _, addr := range reps {
		go func(addr string) {
			_, err := c.call(ctx, addr, methodPut, body)
			results <- result{addr: addr, err: err}
		}(addr)
	}
	acks := 0
	var firstErr error
	for range reps {
		r := <-results
		if r.err == nil {
			acks++
			continue
		}
		if firstErr == nil {
			firstErr = r.err
		}
		c.storeHint(r.addr, key, e)
	}
	if acks >= need {
		return nil
	}
	return fmt.Errorf("%w: %d/%d acks at %s: %v", ErrNoQuorum, acks, need,
		c.cfg.WriteConsistency, firstErr)
}

// Get reads key at the configured read consistency, resolving conflicts by
// highest version and repairing stale replicas in the background.
func (c *Cluster) Get(ctx context.Context, key []byte) ([]byte, error) {
	reps := c.replicas(key)
	need := c.cfg.ReadConsistency.required(len(reps))

	type reply struct {
		addr  string
		entry Entry
		found bool
		err   error
	}
	replies := make([]reply, 0, len(reps))
	// Contact replicas in preference order until enough answered.
	for _, addr := range reps {
		if c.isDown(addr) && len(reps) > need {
			continue
		}
		resp, err := c.call(ctx, addr, methodGet, key)
		switch {
		case err == nil && len(resp) >= 8:
			replies = append(replies, reply{
				addr:  addr,
				entry: Entry{Version: binary.BigEndian.Uint64(resp), Value: resp[8:]},
				found: true,
			})
		case isNotFound(err):
			replies = append(replies, reply{addr: addr})
		default:
			replies = append(replies, reply{addr: addr, err: err})
		}
		answered := 0
		found := false
		for _, r := range replies {
			if r.err == nil {
				answered++
				if r.found {
					found = true
				}
			}
		}
		// A NotFound from one replica is not authoritative while other
		// replicas remain (it may simply not have received the key yet,
		// e.g. right after a membership change); keep probing until a
		// value turns up or every replica has answered.
		if answered >= need && found {
			break
		}
	}

	answered := 0
	best := reply{}
	for _, r := range replies {
		if r.err != nil {
			continue
		}
		answered++
		if r.found && (!best.found || r.entry.Version > best.entry.Version) {
			best = r
		}
	}
	if answered < need {
		return nil, fmt.Errorf("%w: %d/%d replies at %s", ErrNoQuorum, answered, need, c.cfg.ReadConsistency)
	}
	if !best.found {
		return nil, ErrNotFound
	}
	// Read repair: push the winning entry to replicas that returned an
	// older or missing value.
	for _, r := range replies {
		if r.err != nil || r.addr == best.addr {
			continue
		}
		if !r.found || r.entry.Version < best.entry.Version {
			addr, e := r.addr, best.entry
			go func() {
				body := encodeEntry(nil, key, e)
				if _, err := c.call(context.Background(), addr, methodPut, body); err != nil {
					// A failed repair leaves the replica stale; park the
					// entry as a hint so healthLoop re-delivers it once
					// the replica answers pings again.
					c.storeHint(addr, key, e)
				}
			}()
		}
	}
	return best.entry.Value, nil
}

func isNotFound(err error) bool {
	var remote *transport.RemoteError
	return errors.As(err, &remote) && remote.Msg == ErrNotFound.Error()
}

// PutIfAbsent stores key=value when no replica in preference order already
// has it, returning whether the key existed. The check-and-set is atomic
// on the first reachable replica; remaining replicas are updated
// asynchronously — exactly the semantics a dedup index needs, where a
// rare double-store is harmless.
func (c *Cluster) PutIfAbsent(ctx context.Context, key, value []byte) (existed bool, err error) {
	e := Entry{Value: value, Version: c.nextVersion()}
	body := encodeEntry(nil, key, e)
	reps := c.replicas(key)
	var firstErr error
	for i, addr := range reps {
		resp, callErr := c.call(ctx, addr, methodPutNX, body)
		if callErr != nil {
			if firstErr == nil {
				firstErr = callErr
			}
			continue
		}
		existed = len(resp) == 1 && resp[0] == 1
		// Propagate to the remaining replicas asynchronously.
		for _, other := range append(reps[:i:i], reps[i+1:]...) {
			other := other
			go func() {
				if _, err := c.call(context.Background(), other, methodPut, body); err != nil {
					c.storeHint(other, key, e)
				}
			}()
		}
		return existed, nil
	}
	return false, fmt.Errorf("kvstore: put-if-absent: no replica reachable: %w", firstErr)
}

// Has reports whether key is present on any preferred replica (ONE-style
// membership probe).
func (c *Cluster) Has(ctx context.Context, key []byte) (bool, error) {
	found, err := c.BatchHas(ctx, [][]byte{key})
	if err != nil {
		return false, err
	}
	return found[0], nil
}

// BatchHas answers membership for many keys with one RPC per contacted
// node: the dedup hot path. Keys are grouped by their preferred replica
// (local node when possible, otherwise the primary); failed nodes fall
// back to the next replica.
func (c *Cluster) BatchHas(ctx context.Context, keys [][]byte) ([]bool, error) {
	out := make([]bool, len(keys))
	// Group key indices by target replica, with per-key fallback lists.
	groups := make(map[string][]int)
	fallbacks := make([][]string, len(keys))
	for i, key := range keys {
		reps := c.replicas(key)
		if len(reps) == 0 {
			return nil, fmt.Errorf("%w: empty ring", ErrNoQuorum)
		}
		target := reps[0]
		if c.isDown(target) && len(reps) > 1 {
			target = reps[1]
		}
		groups[target] = append(groups[target], i)
		fallbacks[i] = reps
	}
	// Issue all per-target probes concurrently: a batch's latency is one
	// round trip to the slowest replica, not the sum over replicas.
	var wg sync.WaitGroup
	var (
		errMu    sync.Mutex
		firstErr error
	)
	c.mu.Lock()
	localAddr := c.cfg.LocalAddr
	c.mu.Unlock()
	for addr, idxs := range groups {
		if addr == localAddr {
			c.localLookups.Add(int64(len(idxs)))
			c.met.local.Add(int64(len(idxs)))
		} else {
			c.remoteLookups.Add(int64(len(idxs)))
			c.met.remote.Add(int64(len(idxs)))
		}
		wg.Add(1)
		go func(addr string, idxs []int) {
			defer wg.Done()
			sub := make([][]byte, len(idxs))
			for j, i := range idxs {
				sub[j] = keys[i]
			}
			resp, err := c.call(ctx, addr, methodBatchHas, encodeKeyList(sub))
			if err == nil && len(resp) == len(idxs) {
				for j, i := range idxs {
					out[i] = resp[j] == 1
				}
				return
			}
			// Batched fallback through the remaining replicas.
			if ferr := c.batchHasFallback(ctx, keys, idxs, fallbacks, addr, out); ferr != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = ferr
				}
				errMu.Unlock()
			}
		}(addr, idxs)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// batchHasFallback re-resolves idxs after their preferred replica failed.
// Instead of probing each key's backups one key at a time — one
// single-key RPC per key, O(keys) serial round trips precisely when the
// ring is degraded — the surviving keys are regrouped by their next
// untried replica and probed with one batched RPC per node. Rounds
// repeat on what remains: a round answers every key whose node responds
// and marks the nodes that failed, so the next round regroups only the
// leftovers against nodes not yet known dead. Terminates because every
// round either empties pending or grows the dead set.
func (c *Cluster) batchHasFallback(ctx context.Context, keys [][]byte, idxs []int, fallbacks [][]string, failed string, out []bool) error {
	dead := map[string]bool{failed: true}
	var firstErr error
	pending := idxs
	groups := make(map[string][]int)
	for len(pending) > 0 {
		clear(groups)
		for _, i := range pending {
			next := ""
			for _, addr := range fallbacks[i] {
				if !dead[addr] {
					next = addr
					break
				}
			}
			if next == "" {
				if firstErr == nil {
					firstErr = fmt.Errorf("%w: all replicas unreachable", ErrNoQuorum)
				}
				return firstErr
			}
			groups[next] = append(groups[next], i)
		}
		remaining := make([]int, 0, len(pending))
		for addr, g := range groups {
			sub := make([][]byte, len(g))
			for j, i := range g {
				sub[j] = keys[i]
			}
			resp, err := c.call(ctx, addr, methodBatchHas, encodeKeyList(sub))
			if err == nil && len(resp) == len(g) {
				for j, i := range g {
					out[i] = resp[j] == 1
				}
				continue
			}
			if err == nil {
				err = fmt.Errorf("%w: batch-has response from %s has %d answers, want %d", ErrProto, addr, len(resp), len(g))
			}
			if firstErr == nil {
				firstErr = err
			}
			dead[addr] = true
			remaining = append(remaining, g...)
		}
		pending = remaining
	}
	return nil
}

// PartialWriteError reports a batch write that was only partially
// durable: some keys reached their write-consistency target, others did
// not. Because BatchPut groups records per replica, a single failed
// replica call under-replicates only that replica's key subset — the
// rest of the batch IS applied. Callers that account per key (the
// agent's IndexInsertFailures) must count len(FailedKeys), not the whole
// batch.
//
// It wraps ErrNoQuorum, so errors.Is(err, ErrNoQuorum) keeps working.
type PartialWriteError struct {
	// FailedKeys are the keys that missed their consistency target, in
	// batch order (aliases of the caller's slices, not copies).
	FailedKeys [][]byte
	// Total is the batch size the failed keys came from.
	Total int
	// Cause is the first underlying replica error.
	Cause error
}

// Error implements error.
func (e *PartialWriteError) Error() string {
	return fmt.Sprintf("kvstore: batch put: %d/%d keys under-replicated: %v",
		len(e.FailedKeys), e.Total, e.Cause)
}

// Unwrap exposes both the quorum sentinel and the replica cause.
func (e *PartialWriteError) Unwrap() []error { return []error{ErrNoQuorum, e.Cause} }

// BatchPut stores many key/value pairs, grouping records per replica so a
// ring write costs O(replica nodes) RPCs instead of O(keys). The batch
// succeeds when every key reached at least the configured write
// consistency; replicas that were unreachable receive hints. A failure is
// a *PartialWriteError naming exactly which keys missed their target —
// the others are durably applied, so callers must not treat the whole
// batch as lost.
func (c *Cluster) BatchPut(ctx context.Context, keys, values [][]byte) error {
	if len(keys) != len(values) {
		return fmt.Errorf("%w: %d keys but %d values", ErrConfig, len(keys), len(values))
	}
	type record struct {
		idx int
		key []byte
		e   Entry
	}
	groups := make(map[string][]record)
	needed := make([]int, len(keys))
	acks := make([]int, len(keys))
	for i, key := range keys {
		e := Entry{Value: values[i], Version: c.nextVersion()}
		reps := c.replicas(key)
		needed[i] = c.cfg.WriteConsistency.required(len(reps))
		for _, addr := range reps {
			groups[addr] = append(groups[addr], record{idx: i, key: key, e: e})
		}
	}
	// Replica writes go out concurrently; acks are tallied per key.
	var (
		wg       sync.WaitGroup
		tallyMu  sync.Mutex
		firstErr error
	)
	for addr, recs := range groups {
		wg.Add(1)
		go func(addr string, recs []record) {
			defer wg.Done()
			body := binary.BigEndian.AppendUint32(nil, uint32(len(recs)))
			for _, r := range recs {
				body = encodeEntry(body, r.key, r.e)
			}
			if _, err := c.call(ctx, addr, methodBatchPut, body); err != nil {
				for _, r := range recs {
					c.storeHint(addr, r.key, r.e)
				}
				tallyMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				tallyMu.Unlock()
				return
			}
			tallyMu.Lock()
			for _, r := range recs {
				acks[r.idx]++
			}
			tallyMu.Unlock()
		}(addr, recs)
	}
	wg.Wait()
	var failed [][]byte
	for i, got := range acks {
		if got < needed[i] {
			//lint:ignore hotalloc failure path only: stays nil when every replica acks, so the fast path never allocates
			failed = append(failed, keys[i])
		}
	}
	if len(failed) > 0 {
		return &PartialWriteError{FailedKeys: failed, Total: len(keys), Cause: firstErr}
	}
	return nil
}

// LookupStats reports how many membership probes stayed local vs crossed
// the network — the measurable form of the paper's V(P) remote-lookup
// fraction.
func (c *Cluster) LookupStats() (local, remote int64) {
	return c.localLookups.Load(), c.remoteLookups.Load()
}

// MemberStats fetches operation counters from every member.
func (c *Cluster) MemberStats(ctx context.Context) (map[string]NodeStats, error) {
	members := c.Members()
	out := make(map[string]NodeStats, len(members))
	for _, addr := range members {
		resp, err := c.call(ctx, addr, methodStats, nil)
		if err != nil {
			return nil, err
		}
		s, err := decodeStats(resp)
		if err != nil {
			return nil, err
		}
		out[addr] = s
	}
	return out, nil
}

// Members returns the current member addresses.
func (c *Cluster) Members() []string {
	c.mu.Lock()
	out := make([]string, len(c.cfg.Members))
	copy(out, c.cfg.Members)
	c.mu.Unlock()
	sort.Strings(out)
	return out
}

// --- health & hints ----------------------------------------------------

// storeHint queues an entry for later delivery to an unreachable replica.
func (c *Cluster) storeHint(addr string, key []byte, e Entry) {
	k := make([]byte, len(key))
	copy(k, key)
	c.mu.Lock()
	c.hints[addr] = append(c.hints[addr], hint{key: k, e: e})
	c.down[addr] = true
	c.mu.Unlock()
	c.met.hints.Inc()
}

// healthLoop pings members, updating the down set and replaying hints to
// recovered nodes.
func (c *Cluster) healthLoop() {
	defer close(c.healthDone)
	ticker := time.NewTicker(c.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			c.checkMembers()
		case <-c.stopHealth:
			return
		}
	}
}

// checkMembers probes every member concurrently under PingTimeout — the
// sweep's latency is one probe round trip, not the sum over dead members
// — records breaker outcomes (a successful ping closes an open breaker,
// restoring fast recovery), updates the down set and replays queued
// hints to recovered nodes.
func (c *Cluster) checkMembers() {
	var wg sync.WaitGroup
	for _, addr := range c.Members() {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.PingTimeout)
			_, err := c.callAttempt(ctx, addr, methodPing, nil)
			cancel()
			br := c.breakers.For(addr)
			if err != nil {
				br.Failure()
			} else {
				br.Success()
			}
			c.mu.Lock()
			wasDown := c.down[addr]
			c.down[addr] = err != nil
			var replay []hint
			if err == nil && wasDown && len(c.hints[addr]) > 0 {
				replay = c.hints[addr]
				delete(c.hints, addr)
			}
			c.mu.Unlock()
			if len(replay) > 0 {
				c.replayHints(addr, replay)
			}
		}(addr)
	}
	wg.Wait()
}

// hintReplayBatch is how many queued hints ride in one kv.batchput RPC.
const hintReplayBatch = 128

// replayHints delivers queued hints in kv.batchput batches (one RPC per
// batch instead of one per hint), stopping on the first failure and
// re-queueing everything undelivered — a node that flaps mid-replay
// keeps its remaining hints and the next recovery resumes from there.
// Entries carry versions and nodes apply last-write-wins, so replay
// order and double delivery are both harmless.
func (c *Cluster) replayHints(addr string, hints []hint) {
	for start := 0; start < len(hints); start += hintReplayBatch {
		end := start + hintReplayBatch
		if end > len(hints) {
			end = len(hints)
		}
		batch := hints[start:end]
		body := binary.BigEndian.AppendUint32(nil, uint32(len(batch)))
		for _, h := range batch {
			body = encodeEntry(body, h.key, h.e)
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
		_, err := c.callAttempt(ctx, addr, methodBatchPut, body)
		cancel()
		if err != nil {
			c.mu.Lock()
			c.down[addr] = true
			c.hints[addr] = append(hints[start:], c.hints[addr]...)
			c.mu.Unlock()
			return
		}
		c.met.replays.Add(int64(len(batch)))
	}
}

// PendingHints reports queued hint counts per unreachable member (for
// tests and observability).
func (c *Cluster) PendingHints() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.hints))
	for addr, hs := range c.hints {
		out[addr] = len(hs)
	}
	return out
}
