package kvstore

import (
	"context"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"efdedup/internal/transport"
)

// TestReadRepairFailureParksHint pins the read-repair failure path: when
// the async repair put cannot reach the stale replica, the winning entry
// must be parked as a hint (so healthLoop re-delivers it on recovery)
// rather than silently dropped.
func TestReadRepairFailureParksHint(t *testing.T) {
	nw := transport.NewMemNetwork()

	// Real node holding the fresh value.
	addrs := testRing(t, nw, 1)

	// Fake replica that answers reads with a stale version but refuses
	// every put: the repair attempt fails while the node still looks
	// alive (gets and pings succeed), so only storeHint preserves the
	// repair.
	staleBody := append(binary.BigEndian.AppendUint64(nil, 1), []byte("stale")...)
	srv := transport.NewServer()
	srv.Handle(methodGet, func([]byte) ([]byte, error) { return staleBody, nil })
	srv.Handle(methodPing, func([]byte) ([]byte, error) { return nil, nil })
	srv.Handle(methodPut, func([]byte) ([]byte, error) {
		return nil, errors.New("disk full")
	})
	l, err := nw.Listen("kv-stale")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	c := testCluster(t, nw, ClusterConfig{
		Members:           append(addrs, "kv-stale"),
		ReplicationFactor: 2,
		WriteConsistency:  One,
		ReadConsistency:   All,
	})
	ctx := context.Background()

	key := []byte("repair-hint")
	fresh := Entry{Value: []byte("fresh"), Version: 7}
	if _, err := c.call(ctx, addrs[0], methodPut, encodeEntry(nil, key, fresh)); err != nil {
		t.Fatal(err)
	}

	got, err := c.Get(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "fresh" {
		t.Fatalf("Get = %q, want fresh", got)
	}

	// The repair runs in a background goroutine; wait for its failure
	// to park the hint.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		parked := c.hints["kv-stale"]
		c.mu.Unlock()
		if len(parked) > 0 {
			h := parked[0]
			if string(h.key) != string(key) || string(h.e.Value) != "fresh" {
				t.Fatalf("parked hint = key %q value %q, want %q/%q",
					h.key, h.e.Value, key, "fresh")
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("failed read repair never parked a hint for the stale replica")
}
