package kvstore

import (
	"context"
	"fmt"
	"testing"

	"efdedup/internal/metrics"
	"efdedup/internal/transport"
)

// TestBatchHasFallbackIsBatched kills a batch's preferred replicas and
// checks two things: membership answers survive via the backups, and the
// fallback reaches each backup with batched RPCs, not one single-key RPC
// per failed key (the surviving node's served batch_has count stays far
// below the key count).
func TestBatchHasFallbackIsBatched(t *testing.T) {
	ctx := context.Background()
	nw := transport.NewMemNetwork()

	// Two dying nodes plus one survivor with a private metrics registry
	// so its served-RPC count can be read back.
	var nodes []*Node
	var addrs []string
	survivorReg := metrics.NewRegistry()
	for i := 0; i < 3; i++ {
		cfg := NodeConfig{}
		if i == 2 {
			cfg.Metrics = survivorReg
		}
		node, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		addr := fmt.Sprintf("kv-%d", i)
		l, err := nw.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		node.Serve(l)
		t.Cleanup(func() { node.Close() })
		nodes = append(nodes, node)
		addrs = append(addrs, addr)
	}

	cl := testCluster(t, nw, ClusterConfig{
		Members:           addrs,
		ReplicationFactor: 3,
		DisableRetry:      true,
	})

	const n = 64
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%03d", i))
		vals[i] = []byte("v")
	}
	// With RF=3 every node holds every key; the survivor can answer alone.
	if err := cl.BatchPut(ctx, keys, vals); err != nil {
		t.Fatal(err)
	}

	servedBefore := survivorBatchHasCount(survivorReg)
	nodes[0].Close()
	nodes[1].Close()

	// Probe the stored keys plus some misses.
	probe := append([][]byte{}, keys...)
	probe = append(probe, []byte("missing-a"), []byte("missing-b"))
	got, err := cl.BatchHas(ctx, probe)
	if err != nil {
		t.Fatalf("BatchHas with 2/3 nodes dead: %v", err)
	}
	for i := 0; i < n; i++ {
		if !got[i] {
			t.Fatalf("stored key %q reported missing", probe[i])
		}
	}
	if got[n] || got[n+1] {
		t.Fatal("missing key reported present")
	}

	// The survivor must have been reached by regrouped batches: with 66
	// keys spread over two dead preferred replicas plus its own share, a
	// handful of batch RPCs suffices. The old per-key fallback issued one
	// RPC per failed key, which this bound rejects.
	served := survivorBatchHasCount(survivorReg) - servedBefore
	if served == 0 {
		t.Fatal("survivor served no batch_has RPCs; fault never exercised the fallback")
	}
	if served > 8 {
		t.Fatalf("survivor served %d batch_has RPCs for %d keys: fallback is not batched", served, len(probe))
	}
}

func survivorBatchHasCount(reg *metrics.Registry) int64 {
	return reg.DurationHistogram("kvstore_node_rpc_seconds", "method", methodBatchHas).Snapshot().Count
}
