package kvstore

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"efdedup/internal/hashring"
)

// Anti-entropy: Merkle-style fanout digests between replicas.
//
// A restarted or previously partitioned replica has no way to learn what
// it missed from heartbeats alone — hints cover only failures the
// coordinator observed, and a node that lost disk state looks healthy
// while silently answering "miss" for chunks the ring already paid to
// index. The repair protocol closes that gap:
//
//	kv.digest  →  per-bucket XOR digests over one replica pair's shared
//	              key range (keys whose replica set contains both nodes)
//	kv.pull    →  the full entries of a chosen bucket subset
//
// The coordinator compares the two digests bucket by bucket, pulls only
// the differing buckets from both sides, merges them last-write-wins on
// the entry version (wall-clock-derived — "entry timestamps break
// conflicts"), and pushes what each side is missing through the ordinary
// kv.batchput path, which preserves versions and is idempotent. Equal
// replicas cost two ~3 KB digest RPCs per pair and nothing else.
//
// The scope filter is what makes digests comparable under consistent
// hashing with RF < N: each node holds a different subset of the key
// space, so raw table digests would always differ. The request therefore
// carries the ring parameters (members, RF, virtual nodes) and the pair
// being compared; each node rebuilds the same ring and digests only keys
// whose replica set contains both pair members — an identical key set on
// both sides whenever both are converged.

// digestBuckets is the fanout of the digest tree: wide enough that one
// divergent key re-transfers ~1/256th of the shared range, small enough
// that a full digest is a single 3 KB frame.
const digestBuckets = 256

// digestReq is the wire form of a kv.digest / kv.pull scope.
type digestReq struct {
	rf      int
	vnodes  int
	members [][]byte
	scope   [][]byte // addresses that must all be in a key's replica set
}

// encodeDigestReq serializes the scope filter.
func encodeDigestReq(rf, vnodes int, members, scope []string) []byte {
	out := binary.BigEndian.AppendUint32(nil, uint32(rf))
	out = binary.BigEndian.AppendUint32(out, uint32(vnodes))
	out = binary.BigEndian.AppendUint32(out, uint32(len(members)))
	for _, m := range members {
		out = appendBytes(out, []byte(m))
	}
	out = binary.BigEndian.AppendUint32(out, uint32(len(scope)))
	for _, s := range scope {
		out = appendBytes(out, []byte(s))
	}
	return out
}

// decodeDigestReq parses and validates a scope filter.
func decodeDigestReq(src []byte) (digestReq, []byte, error) {
	var req digestReq
	if len(src) < 12 {
		return req, nil, fmt.Errorf("%w: truncated digest request", ErrProto)
	}
	req.rf = int(binary.BigEndian.Uint32(src))
	req.vnodes = int(binary.BigEndian.Uint32(src[4:]))
	if req.rf <= 0 || req.rf > 1024 || req.vnodes <= 0 || req.vnodes > 4096 {
		return req, nil, fmt.Errorf("%w: digest request rf=%d vnodes=%d out of range", ErrProto, req.rf, req.vnodes)
	}
	var err error
	src = src[8:]
	if req.members, src, err = readBytesList(src); err != nil {
		return req, nil, fmt.Errorf("kvstore: digest request members: %w", err)
	}
	if len(req.members) == 0 {
		return req, nil, fmt.Errorf("%w: digest request without members", ErrProto)
	}
	if req.scope, src, err = readBytesList(src); err != nil {
		return req, nil, fmt.Errorf("kvstore: digest request scope: %w", err)
	}
	if len(req.scope) == 0 {
		return req, nil, fmt.Errorf("%w: digest request without scope", ErrProto)
	}
	return req, src, nil
}

// readBytesList consumes a count-prefixed list of blobs.
func readBytesList(src []byte) ([][]byte, []byte, error) {
	if len(src) < 4 {
		return nil, nil, fmt.Errorf("%w: truncated list", ErrProto)
	}
	n := binary.BigEndian.Uint32(src)
	src = src[4:]
	if uint64(n) > uint64(len(src))/4+1 {
		return nil, nil, fmt.Errorf("%w: list count %d exceeds payload", ErrProto, n)
	}
	out := make([][]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		var b []byte
		var err error
		b, src, err = readBytes(src)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, b)
	}
	return out, src, nil
}

// ring builds the consistent-hash ring the request describes. Both sides
// of a comparison build identical rings, so the scope predicate agrees.
func (req digestReq) ring() (*hashring.Ring, error) {
	r, err := hashring.New(req.vnodes)
	if err != nil {
		return nil, err
	}
	for _, m := range req.members {
		r.Add(string(m))
	}
	return r, nil
}

// inScope reports whether every scope address is in key's replica set.
func (req digestReq) inScope(ring *hashring.Ring, key []byte) bool {
	reps := ring.Lookup(key, req.rf)
	for _, s := range req.scope {
		found := false
		for _, r := range reps {
			if r == string(s) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// fnv64 constants (inlined to keep the per-entry digest allocation-free).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// entryDigest hashes one table entry (key, version, value) and names the
// bucket it lands in. XOR-combining per-entry hashes gives an
// order-independent bucket digest.
func entryDigest(key string, e Entry) (bucket int, hash uint64) {
	kh := fnvMix(fnvOffset, []byte(key))
	bucket = int(kh % digestBuckets)
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], e.Version)
	hash = fnvMix(fnvMix(kh, v[:]), e.Value)
	return bucket, hash
}

// bucketDigest is one bucket's summary.
type bucketDigest struct {
	hash  uint64
	count uint32
}

// digestTable computes the per-bucket digests of table entries in scope.
func digestTable(req digestReq, ring *hashring.Ring, table map[string]Entry) [digestBuckets]bucketDigest {
	var out [digestBuckets]bucketDigest
	for k, e := range table {
		if !req.inScope(ring, []byte(k)) {
			continue
		}
		b, h := entryDigest(k, e)
		out[b].hash ^= h
		out[b].count++
	}
	return out
}

// encodeDigestResp serializes the 256 bucket digests.
func encodeDigestResp(d [digestBuckets]bucketDigest) []byte {
	out := binary.BigEndian.AppendUint32(nil, digestBuckets)
	for _, b := range d {
		out = binary.BigEndian.AppendUint64(out, b.hash)
		out = binary.BigEndian.AppendUint32(out, b.count)
	}
	return out
}

// decodeDigestResp parses a kv.digest response.
func decodeDigestResp(src []byte) ([digestBuckets]bucketDigest, error) {
	var out [digestBuckets]bucketDigest
	if len(src) != 4+digestBuckets*12 {
		return out, fmt.Errorf("%w: digest response of %d bytes", ErrProto, len(src))
	}
	if binary.BigEndian.Uint32(src) != digestBuckets {
		return out, fmt.Errorf("%w: digest fanout mismatch", ErrProto)
	}
	src = src[4:]
	for i := range out {
		out[i].hash = binary.BigEndian.Uint64(src)
		out[i].count = binary.BigEndian.Uint32(src[8:])
		src = src[12:]
	}
	return out, nil
}

// bucketSet is a bitmap over the digest fanout.
type bucketSet [digestBuckets / 8]byte

func (s *bucketSet) add(b int)      { s[b/8] |= 1 << (b % 8) }
func (s *bucketSet) has(b int) bool { return s[b/8]&(1<<(b%8)) != 0 }
func (s *bucketSet) empty() bool    { return *s == bucketSet{} }

// encodePullReq appends the wanted-bucket bitmap to a digest request.
func encodePullReq(rf, vnodes int, members, scope []string, want bucketSet) []byte {
	out := encodeDigestReq(rf, vnodes, members, scope)
	return append(out, want[:]...)
}

// decodePullReq parses a kv.pull request.
func decodePullReq(src []byte) (digestReq, bucketSet, error) {
	var want bucketSet
	req, rest, err := decodeDigestReq(src)
	if err != nil {
		return req, want, err
	}
	if len(rest) != len(want) {
		return req, want, fmt.Errorf("%w: pull bitmap of %d bytes, want %d", ErrProto, len(rest), len(want))
	}
	copy(want[:], rest)
	return req, want, nil
}

// --- node handlers ------------------------------------------------------

// handleDigest computes this replica's bucket digests for the requested
// scope.
func (n *Node) handleDigest(body []byte) ([]byte, error) {
	req, rest, err := decodeDigestReq(body)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after digest request", ErrProto, len(rest))
	}
	ring, err := req.ring()
	if err != nil {
		return nil, err
	}
	n.mu.RLock()
	d := digestTable(req, ring, n.table)
	n.mu.RUnlock()
	return encodeDigestResp(d), nil
}

// handlePull streams the full entries of the requested buckets (scan
// wire format), scope-filtered like the digest they were chosen from.
func (n *Node) handlePull(body []byte) ([]byte, error) {
	req, want, err := decodePullReq(body)
	if err != nil {
		return nil, err
	}
	ring, err := req.ring()
	if err != nil {
		return nil, err
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	count := uint32(0)
	out := make([]byte, 4)
	for k, e := range n.table {
		if !req.inScope(ring, []byte(k)) {
			continue
		}
		if b, _ := entryDigest(k, e); !want.has(b) {
			continue
		}
		out = encodeEntry(out, []byte(k), e)
		count++
	}
	binary.BigEndian.PutUint32(out, count)
	return out, nil
}

// --- coordinator repair -------------------------------------------------

// RepairStats summarizes one anti-entropy round.
type RepairStats struct {
	// Pairs is how many replica pairs were compared.
	Pairs int
	// Mismatched is how many pairs had at least one differing bucket.
	Mismatched int
	// Pushed is how many entries were re-replicated to a stale replica.
	Pushed int
	// Conflicts counts same-version different-value collisions resolved
	// by re-writing the deterministic winner at a bumped version.
	Conflicts int
	// Failed is how many pairs were skipped because a digest or pull RPC
	// failed; they are retried on the next round.
	Failed int
}

// Converged reports whether the round proved every compared pair equal:
// nothing differed and nothing failed.
func (s RepairStats) Converged() bool {
	return s.Mismatched == 0 && s.Failed == 0 && s.Pushed == 0
}

// RepairOnce runs one anti-entropy round over every replica pair,
// reconciling differing buckets last-write-wins. It is safe to run
// concurrently with reads and writes: pushes ride the ordinary batchput
// path and respect entry versions.
func (c *Cluster) RepairOnce(ctx context.Context) (RepairStats, error) {
	var stats RepairStats
	members := c.Members()
	rf := c.cfg.ReplicationFactor
	vnodes := c.cfg.VirtualNodes
	if rf < 2 || len(members) < 2 {
		// Nothing is replicated; there is no second copy to reconcile.
		return stats, nil
	}
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			a, b := members[i], members[j]
			stats.Pairs++
			if err := c.repairPair(ctx, &stats, rf, vnodes, members, a, b); err != nil {
				stats.Failed++
				c.met.repairFails.Inc()
				if ctx.Err() != nil {
					return stats, fmt.Errorf("kvstore: repair: %w", ctx.Err())
				}
			}
		}
	}
	c.met.repairRounds.Inc()
	return stats, nil
}

// repairPair reconciles one replica pair's shared key range.
func (c *Cluster) repairPair(ctx context.Context, stats *RepairStats, rf, vnodes int, members []string, a, b string) error {
	reqBody := encodeDigestReq(rf, vnodes, members, []string{a, b})
	respA, err := c.call(ctx, a, methodDigest, reqBody)
	if err != nil {
		return err
	}
	respB, err := c.call(ctx, b, methodDigest, reqBody)
	if err != nil {
		return err
	}
	da, err := decodeDigestResp(respA)
	if err != nil {
		return err
	}
	db, err := decodeDigestResp(respB)
	if err != nil {
		return err
	}
	var want bucketSet
	for i := 0; i < digestBuckets; i++ {
		if da[i] != db[i] {
			want.add(i)
		}
	}
	if want.empty() {
		return nil
	}
	stats.Mismatched++
	c.met.repairMismatch.Inc()
	pullBody := encodePullReq(rf, vnodes, members, []string{a, b}, want)
	entsA, err := c.pullEntries(ctx, a, pullBody)
	if err != nil {
		return err
	}
	entsB, err := c.pullEntries(ctx, b, pullBody)
	if err != nil {
		return err
	}
	pushA, pushB, conflicts := diffEntries(entsA, entsB)
	stats.Conflicts += conflicts
	if err := c.pushEntries(ctx, a, pushA); err != nil {
		return err
	}
	if err := c.pushEntries(ctx, b, pushB); err != nil {
		return err
	}
	pushed := len(pushA) + len(pushB)
	stats.Pushed += pushed
	c.met.repairPushed.Add(int64(pushed))
	return nil
}

// pullEntries fetches one side's differing buckets as a key→entry map.
func (c *Cluster) pullEntries(ctx context.Context, addr string, body []byte) (map[string]Entry, error) {
	resp, err := c.call(ctx, addr, methodPull, body)
	if err != nil {
		return nil, err
	}
	ents, err := decodeScan(resp)
	if err != nil {
		return nil, fmt.Errorf("kvstore: repair pull %s: %w", addr, err)
	}
	out := make(map[string]Entry, len(ents))
	for _, kv := range ents {
		out[string(kv.key)] = kv.e
	}
	return out, nil
}

// diffEntries merges two replicas' bucket contents last-write-wins and
// returns what each side is missing. A same-version different-value
// collision (possible when two coordinators seed the same wall-clock
// version) cannot be fixed at its own version — applyPut rejects
// version ties — so the deterministic winner (larger value bytes) is
// re-written to both sides at version+1, which converges.
func diffEntries(a, b map[string]Entry) (pushA, pushB []scannedEntry, conflicts int) {
	for k, ea := range a {
		eb, ok := b[k]
		switch {
		case !ok || eb.Version < ea.Version:
			pushB = append(pushB, scannedEntry{key: []byte(k), e: ea})
		case eb.Version == ea.Version && !bytes.Equal(eb.Value, ea.Value):
			conflicts++
			win := ea
			if bytes.Compare(eb.Value, ea.Value) > 0 {
				win = eb
			}
			win.Version++
			se := scannedEntry{key: []byte(k), e: win}
			pushA = append(pushA, se)
			pushB = append(pushB, se)
		}
	}
	for k, eb := range b {
		if ea, ok := a[k]; !ok || ea.Version < eb.Version {
			pushA = append(pushA, scannedEntry{key: []byte(k), e: eb})
		}
	}
	return pushA, pushB, conflicts
}

// pushEntries delivers repair entries to one replica in batchput batches,
// preserving versions so last-write-wins holds.
func (c *Cluster) pushEntries(ctx context.Context, addr string, ents []scannedEntry) error {
	for start := 0; start < len(ents); start += hintReplayBatch {
		end := start + hintReplayBatch
		if end > len(ents) {
			end = len(ents)
		}
		batch := ents[start:end]
		body := binary.BigEndian.AppendUint32(nil, uint32(len(batch)))
		for _, kv := range batch {
			body = encodeEntry(body, kv.key, kv.e)
		}
		if _, err := c.call(ctx, addr, methodBatchPut, body); err != nil {
			return err
		}
	}
	return nil
}

// repairLoop runs anti-entropy rounds every RepairInterval until Close.
func (c *Cluster) repairLoop() {
	defer close(c.repairDone)
	ticker := time.NewTicker(c.cfg.RepairInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			ctx, cancel := context.WithTimeout(context.Background(), c.repairTimeout())
			// Failures are already counted per pair in the stats and
			// metrics; the loop's job is to keep trying.
			//lint:ignore errlost per-pair failures are recorded in kvstore_repair_pair_failures_total and retried next round
			_, _ = c.RepairOnce(ctx)
			cancel()
		case <-c.stopRepair:
			return
		}
	}
}

// repairTimeout bounds one background round: digest+pull+push across all
// pairs, each call already bounded by CallTimeout and the retry policy.
func (c *Cluster) repairTimeout() time.Duration {
	n := len(c.Members())
	d := time.Duration(n*n) * c.cfg.CallTimeout
	if d < c.cfg.CallTimeout {
		d = c.cfg.CallTimeout
	}
	return d
}
