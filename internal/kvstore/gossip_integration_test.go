package kvstore

import (
	"context"
	"fmt"
	"testing"
	"time"

	"efdedup/internal/gossip"
	"efdedup/internal/transport"
)

// TestClusterWithGossipMembership runs KV nodes with companion gossipers
// and a cluster whose liveness view is the gossip node: after a storage
// node (and its gossiper) dies, the coordinator routes lookups away from
// it based on gossip alone.
func TestClusterWithGossipMembership(t *testing.T) {
	nw := transport.NewMemNetwork()
	const n = 3
	nodes := make([]*Node, n)
	gossipers := make([]*gossip.Node, n)
	kvAddrs := make([]string, n)
	for i := 0; i < n; i++ {
		node, err := NewNode(NodeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		kvAddrs[i] = fmt.Sprintf("kv-%d", i)
		l, err := nw.Listen(kvAddrs[i])
		if err != nil {
			t.Fatal(err)
		}
		node.Serve(l)
		nodes[i] = node
		t.Cleanup(func() { node.Close() })
	}
	// Each KV node gets a companion gossiper on a side address (same
	// process, same fate); the adapter maps kv→gossip addresses 1:1.
	for i := 0; i < n; i++ {
		var seeds []string
		if i > 0 {
			seeds = []string{"gossip-kv-0"}
		}
		g, err := gossip.Start(gossip.Config{
			Addr:     "gossip-" + kvAddrs[i],
			Network:  nw,
			Seeds:    seeds,
			Interval: 15 * time.Millisecond,
			Seed:     int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		gossipers[i] = g
		t.Cleanup(g.Stop)
	}

	view := gossipView{node: gossipers[0]}
	c, err := NewCluster(ClusterConfig{
		Members:           kvAddrs,
		ReplicationFactor: 2,
		WriteConsistency:  All,
		Network:           nw,
		LocalAddr:         kvAddrs[0],
		Membership:        view,
		CallTimeout:       300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	// Wait for gossip convergence.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(gossipers[0].Alive()) != n {
		time.Sleep(10 * time.Millisecond)
	}
	if len(gossipers[0].Alive()) != n {
		t.Fatal("gossip never converged")
	}

	ctx := context.Background()
	keys := make([][]byte, 40)
	values := make([][]byte, 40)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%02d", i))
		values[i] = []byte("v")
	}
	if err := c.BatchPut(ctx, keys, values); err != nil {
		t.Fatal(err)
	}

	// Kill node 1 and its gossiper; wait until gossip notices.
	nodes[1].Close()
	gossipers[1].Stop()
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && gossipers[0].IsAlive("gossip-kv-1") {
		time.Sleep(10 * time.Millisecond)
	}
	if gossipers[0].IsAlive("gossip-kv-1") {
		t.Fatal("gossip never detected the failure")
	}

	// Lookups now avoid the dead node via the membership view: all keys
	// must still resolve through surviving replicas.
	found, err := c.BatchHas(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range found {
		if !ok {
			t.Errorf("key %d unresolved after gossip-detected failure", i)
		}
	}
}

// gossipView adapts a gossip node to the cluster's LivenessView, mapping
// kv addresses to their companion gossip addresses.
type gossipView struct {
	node *gossip.Node
}

func (v gossipView) IsAlive(kvAddr string) bool {
	return v.node.IsAlive("gossip-" + kvAddr)
}
