package kvstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeEntry: garbage must never panic; valid decodes must round
// trip.
func FuzzDecodeEntry(f *testing.F) {
	f.Add(encodeEntry(nil, []byte("key"), Entry{Value: []byte("val"), Version: 9}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 200}) // length prefix beyond payload
	f.Fuzz(func(t *testing.T, data []byte) {
		key, e, rest, err := decodeEntry(data)
		if err != nil {
			return
		}
		re := encodeEntry(nil, key, e)
		k2, e2, rest2, err := decodeEntry(re)
		if err != nil || !bytes.Equal(k2, key) || e2.Version != e.Version || !bytes.Equal(e2.Value, e.Value) {
			t.Fatalf("decode/encode not idempotent")
		}
		if len(rest2) != 0 {
			t.Fatalf("re-encoded entry left %d trailing bytes", len(rest2))
		}
		_ = rest
	})
}

// FuzzDecodeKeyList: panic-free and round-trip consistent.
func FuzzDecodeKeyList(f *testing.F) {
	f.Add(encodeKeyList([][]byte{[]byte("a"), []byte("bb")}))
	f.Add([]byte{0, 0, 0, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		keys, err := decodeKeyList(data)
		if err != nil {
			return
		}
		re := encodeKeyList(keys)
		keys2, err := decodeKeyList(re)
		if err != nil || len(keys2) != len(keys) {
			t.Fatalf("round trip failed")
		}
		for i := range keys {
			if !bytes.Equal(keys[i], keys2[i]) {
				t.Fatalf("key %d corrupted", i)
			}
		}
	})
}

// FuzzWALReplay drives the log's crash-recovery invariants:
//
//  1. Replay of arbitrary bytes never panics and never reports a valid
//     prefix longer than the file.
//  2. For a log built from real appends and then mutated like a crash or
//     bit rot would (truncated at any point, or one byte flipped), replay
//     yields a strict prefix of the appended records, in order.
//  3. A node reopening the mutated log can append, and the next replay
//     sees the surviving prefix plus the new record.
//
// The fuzz input doubles as both the append plan and the mutation choice:
// nRecords picks how many records to write, cut where to truncate, flip
// which byte to corrupt (when in range).
func FuzzWALReplay(f *testing.F) {
	f.Add(uint8(3), uint16(0), uint16(0), false)
	f.Add(uint8(5), uint16(40), uint16(0), false)
	f.Add(uint8(5), uint16(0), uint16(33), true)
	f.Add(uint8(0), uint16(9), uint16(9), true)
	f.Fuzz(func(t *testing.T, nRecords uint8, cut, flip uint16, doFlip bool) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wal")
		w, err := OpenWALOptions(WALOptions{Path: path, Sync: SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		n := int(nRecords % 32)
		for i := 0; i < n; i++ {
			e := Entry{Value: []byte(fmt.Sprintf("value-%d", i)), Version: uint64(i + 1)}
			if err := w.Append([]byte(fmt.Sprintf("key-%d", i)), e); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		// Mutate the log the way crashes and bit rot do.
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > 0 {
			data = data[:int(cut)%(len(data)+1)]
		}
		if doFlip && len(data) > 0 {
			data[int(flip)%len(data)] ^= 0x40
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		// Invariant: replay is an in-order prefix of what was appended.
		replayed := 0
		stats, err := ReplayWAL(path, func(key []byte, e Entry) {
			wantKey := fmt.Sprintf("key-%d", replayed)
			if string(key) != wantKey || e.Version != uint64(replayed+1) {
				t.Fatalf("record %d replayed as %q@%d, want %q@%d", replayed, key, e.Version, wantKey, replayed+1)
			}
			replayed++
		})
		if err != nil {
			t.Fatal(err)
		}
		if replayed > n || stats.Records != replayed {
			t.Fatalf("replayed %d records (stats %d) from %d appends", replayed, stats.Records, n)
		}
		if stats.Bytes+stats.Discarded() != int64(len(data)) {
			t.Fatalf("prefix %d + discarded %d != file size %d", stats.Bytes, stats.Discarded(), len(data))
		}

		// Invariant: the log stays appendable after any mutation, and the
		// new record replays right after the surviving prefix.
		w2, err := OpenWALOptions(WALOptions{Path: path, Sync: SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		if err := w2.Append([]byte("post-crash"), Entry{Value: []byte("pc"), Version: 1 << 40}); err != nil {
			t.Fatal(err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		count := 0
		last := ""
		stats2, err := ReplayWAL(path, func(key []byte, e Entry) {
			count++
			last = string(key)
		})
		if err != nil {
			t.Fatal(err)
		}
		if count != replayed+1 || last != "post-crash" {
			t.Fatalf("post-crash replay saw %d records ending %q, want %d ending post-crash", count, last, replayed+1)
		}
		if stats2.Discarded() != 0 {
			t.Fatalf("reopen left unreplayable bytes: %+v", stats2)
		}
	})
}

// FuzzWALReplayRawBytes: scanning a file of entirely arbitrary bytes must
// never panic, never over-count, and never allocate past the record cap.
func FuzzWALReplayRawBytes(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a wal at all"))
	// A record header claiming a giant payload must not drive a giant
	// allocation.
	huge := binary.BigEndian.AppendUint32(nil, 1<<31)
	huge = binary.BigEndian.AppendUint32(huge, 0xabad1dea)
	f.Add(append(huge, 1, 2, 3))
	valid := encodeEntry(nil, []byte("k"), Entry{Value: []byte("v"), Version: 1})
	rec := binary.BigEndian.AppendUint32(nil, uint32(len(valid)))
	rec = binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(valid))
	f.Add(append(rec, valid...))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "raw.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		stats, err := ReplayWAL(path, func([]byte, Entry) {})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Bytes+stats.Discarded() != int64(len(data)) {
			t.Fatalf("prefix %d + discarded %d != file size %d", stats.Bytes, stats.Discarded(), len(data))
		}
	})
}

// protoOrNil fails the fuzz run when a decoder returns an error outside
// the protocol-error taxonomy: hostile bytes must map to ErrProto (or
// ErrCorrupt), never to a panic or an unclassified error.
func protoOrNil(t *testing.T, what string, err error) {
	t.Helper()
	if err != nil && !errors.Is(err, ErrProto) && !errors.Is(err, ErrCorrupt) {
		t.Fatalf("%s returned unclassified error: %v", what, err)
	}
}

// FuzzKVCodecs drives every kv.* body decoder with one arbitrary input:
// each must either decode or return ErrProto — never panic, never size
// an allocation from an unvalidated wire count.
func FuzzKVCodecs(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeEntry(nil, []byte("key"), Entry{Version: 3, Value: []byte("value")}))
	f.Add(encodeKeyList([][]byte{[]byte("a"), []byte("b")}))
	f.Add(encodeScan(map[string]Entry{"k": {Version: 1, Value: []byte("v")}}))
	f.Add(encodeStats(NodeStats{Gets: 1, Puts: 2, Hits: 3, Misses: 4, Entries: 5}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}) // hostile length prefix
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, err := readBytes(data)
		protoOrNil(t, "readBytes", err)
		_, _, _, err = decodeEntry(data)
		protoOrNil(t, "decodeEntry", err)
		_, err = decodeKeyList(data)
		protoOrNil(t, "decodeKeyList", err)
		_, err = decodeScan(data)
		protoOrNil(t, "decodeScan", err)
		_, err = decodeStats(data)
		protoOrNil(t, "decodeStats", err)
	})
}

// FuzzRepairCodecs drives the anti-entropy (kv.digest / kv.pull) body
// decoders with arbitrary bytes.
func FuzzRepairCodecs(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeDigestReq(3, 64, []string{"a:1", "b:1"}, []string{"a:1"}))
	var want bucketSet
	want.add(7)
	want.add(200)
	f.Add(encodePullReq(3, 64, []string{"a:1"}, []string{"a:1"}, want))
	f.Add(encodeDigestResp([digestBuckets]bucketDigest{}))
	f.Add([]byte{0, 0, 0, 4, 0, 0, 0, 4, 0xFF, 0xFF, 0xFF, 0xFF}) // hostile member count
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, err := decodeDigestReq(data)
		protoOrNil(t, "decodeDigestReq", err)
		_, _, err = readBytesList(data)
		protoOrNil(t, "readBytesList", err)
		_, err = decodeDigestResp(data)
		protoOrNil(t, "decodeDigestResp", err)
		_, _, err = decodePullReq(data)
		protoOrNil(t, "decodePullReq", err)
	})
}

// FuzzDecodeScan: the scan-response parser must be panic-free.
func FuzzDecodeScan(f *testing.F) {
	payload := encodeEntry(nil, []byte("k"), Entry{Value: []byte("v"), Version: 1})
	valid := append([]byte{0, 0, 0, 1}, payload...)
	f.Add(valid)
	f.Add([]byte{0, 0, 0, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := decodeScan(data)
		if err != nil {
			return
		}
		for _, e := range entries {
			if e.key == nil && len(e.e.Value) > 0 {
				t.Fatal("entry with nil key but payload")
			}
		}
	})
}
