package kvstore

import (
	"bytes"
	"testing"
)

// FuzzDecodeEntry: garbage must never panic; valid decodes must round
// trip.
func FuzzDecodeEntry(f *testing.F) {
	f.Add(encodeEntry(nil, []byte("key"), Entry{Value: []byte("val"), Version: 9}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 200}) // length prefix beyond payload
	f.Fuzz(func(t *testing.T, data []byte) {
		key, e, rest, err := decodeEntry(data)
		if err != nil {
			return
		}
		re := encodeEntry(nil, key, e)
		k2, e2, rest2, err := decodeEntry(re)
		if err != nil || !bytes.Equal(k2, key) || e2.Version != e.Version || !bytes.Equal(e2.Value, e.Value) {
			t.Fatalf("decode/encode not idempotent")
		}
		if len(rest2) != 0 {
			t.Fatalf("re-encoded entry left %d trailing bytes", len(rest2))
		}
		_ = rest
	})
}

// FuzzDecodeKeyList: panic-free and round-trip consistent.
func FuzzDecodeKeyList(f *testing.F) {
	f.Add(encodeKeyList([][]byte{[]byte("a"), []byte("bb")}))
	f.Add([]byte{0, 0, 0, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		keys, err := decodeKeyList(data)
		if err != nil {
			return
		}
		re := encodeKeyList(keys)
		keys2, err := decodeKeyList(re)
		if err != nil || len(keys2) != len(keys) {
			t.Fatalf("round trip failed")
		}
		for i := range keys {
			if !bytes.Equal(keys[i], keys2[i]) {
				t.Fatalf("key %d corrupted", i)
			}
		}
	})
}

// FuzzDecodeScan: the scan-response parser must be panic-free.
func FuzzDecodeScan(f *testing.F) {
	payload := encodeEntry(nil, []byte("k"), Entry{Value: []byte("v"), Version: 1})
	valid := append([]byte{0, 0, 0, 1}, payload...)
	f.Add(valid)
	f.Add([]byte{0, 0, 0, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := decodeScan(data)
		if err != nil {
			return
		}
		for _, e := range entries {
			if e.key == nil && len(e.e.Value) > 0 {
				t.Fatal("entry with nil key but payload")
			}
		}
	})
}
