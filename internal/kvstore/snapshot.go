package kvstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Snapshot file format: a CRC-framed dump of the in-memory table that,
// together with the WAL suffix written after it, reconstructs a node's
// exact pre-crash state. Layout:
//
//	8 bytes  magic "EFSNAP1\n"
//	u32      record count
//	repeated u32 length | u32 crc32(payload) | payload (encoded key+entry)
//
// A snapshot is written to a temp file, fsynced, then atomically renamed
// over the previous one (and the directory fsynced), so a crash at any
// point leaves either the old snapshot or the new one — never a partial
// file. Corruption in a loaded snapshot is therefore real damage, not a
// torn write, and recovery fails loudly instead of silently dropping the
// index.

// snapshotMagic identifies a snapshot file and its format version.
var snapshotMagic = []byte("EFSNAP1\n")

// writeSnapshot durably writes table to path via write-temp → fsync →
// atomic rename, returning the file size.
func writeSnapshot(path string, table map[string]Entry) (int64, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("kvstore: write snapshot: %w", err)
	}
	cleanup := func(err error) (int64, error) {
		_ = f.Close()
		_ = os.Remove(tmp)
		return 0, err
	}
	w := bufio.NewWriter(f)
	if _, err := w.Write(snapshotMagic); err != nil {
		return cleanup(fmt.Errorf("kvstore: write snapshot: %w", err))
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(table)))
	if _, err := w.Write(hdr[:4]); err != nil {
		return cleanup(fmt.Errorf("kvstore: write snapshot: %w", err))
	}
	size := int64(len(snapshotMagic) + 4)
	var payload []byte
	for k, e := range table {
		payload = encodeEntry(payload[:0], []byte(k), e)
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
		if _, err := w.Write(hdr[:]); err != nil {
			return cleanup(fmt.Errorf("kvstore: write snapshot: %w", err))
		}
		if _, err := w.Write(payload); err != nil {
			return cleanup(fmt.Errorf("kvstore: write snapshot: %w", err))
		}
		size += int64(8 + len(payload))
	}
	if err := w.Flush(); err != nil {
		return cleanup(fmt.Errorf("kvstore: write snapshot: %w", err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("kvstore: sync snapshot: %w", err))
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return 0, fmt.Errorf("kvstore: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return 0, fmt.Errorf("kvstore: install snapshot: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return 0, err
	}
	return size, nil
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("kvstore: sync snapshot dir: %w", err)
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return fmt.Errorf("kvstore: sync snapshot dir: %w", err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("kvstore: sync snapshot dir: %w", err)
	}
	return nil
}

// loadSnapshot reads a snapshot into a fresh table. A missing file means
// a fresh node (nil map, nil error); any framing, CRC or decode failure
// is ErrCorrupt — snapshots are installed atomically, so damage is never
// an expected crash artifact.
func loadSnapshot(path string) (map[string]Entry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("kvstore: load snapshot: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, snapshotMagic) {
		return nil, fmt.Errorf("%w: snapshot %s: bad magic", ErrCorrupt, path)
	}
	var cnt [4]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return nil, fmt.Errorf("%w: snapshot %s: truncated count", ErrCorrupt, path)
	}
	count := binary.BigEndian.Uint32(cnt[:])
	table := make(map[string]Entry, count)
	for i := uint32(0); i < count; i++ {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, fmt.Errorf("%w: snapshot %s: truncated record %d", ErrCorrupt, path, i)
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		want := binary.BigEndian.Uint32(hdr[4:])
		if n > maxWALRecord {
			return nil, fmt.Errorf("%w: snapshot %s: record %d of %d bytes", ErrCorrupt, path, i, n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("%w: snapshot %s: truncated record %d", ErrCorrupt, path, i)
		}
		if crc32.ChecksumIEEE(payload) != want {
			return nil, fmt.Errorf("%w: snapshot %s: record %d crc mismatch", ErrCorrupt, path, i)
		}
		key, e, rest, err := decodeEntry(payload)
		if err != nil || len(rest) != 0 {
			return nil, fmt.Errorf("%w: snapshot %s: record %d undecodable", ErrCorrupt, path, i)
		}
		table[string(key)] = e
	}
	return table, nil
}
