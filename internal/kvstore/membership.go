package kvstore

import (
	"context"
	"encoding/binary"
	"fmt"
)

// Membership changes. The paper highlights that with a Cassandra-style
// ring "adding and removing nodes to the cluster is a seamless
// operation"; this file implements that for the coordinator: membership
// updates adjust the consistent-hash ring, and Rebalance re-replicates
// every key to its current replica set so placement invariants hold again
// after churn.

// AddMember joins a new storage node to the ring. Keys are not moved
// until Rebalance runs; until then reads fall back through the old
// replicas (lookup fallback), so the operation is non-disruptive.
func (c *Cluster) AddMember(addr string) error {
	if addr == "" {
		return fmt.Errorf("%w: empty member address", ErrConfig)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.cfg.Members {
		if m == addr {
			return fmt.Errorf("%w: member %q already present", ErrConfig, addr)
		}
	}
	c.cfg.Members = append(c.cfg.Members, addr)
	c.ring.Add(addr)
	return nil
}

// RemoveMember leaves a node out of the ring (e.g. decommissioning).
// Keys it exclusively held remain reachable only if replication placed
// copies elsewhere; run Rebalance afterwards to restore full replication.
func (c *Cluster) RemoveMember(addr string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	found := -1
	for i, m := range c.cfg.Members {
		if m == addr {
			found = i
			break
		}
	}
	if found < 0 {
		return fmt.Errorf("%w: member %q not found", ErrConfig, addr)
	}
	if len(c.cfg.Members) == 1 {
		return fmt.Errorf("%w: cannot remove the last member", ErrConfig)
	}
	c.cfg.Members = append(c.cfg.Members[:found], c.cfg.Members[found+1:]...)
	c.ring.Remove(addr)
	if cl, ok := c.clients[addr]; ok {
		delete(c.clients, addr)
		go cl.Close()
	}
	delete(c.down, addr)
	if c.cfg.LocalAddr == addr {
		c.cfg.LocalAddr = ""
	}
	return nil
}

// Rebalance scans every reachable member and re-replicates each key to
// its current replica set, restoring placement after membership changes.
// Entries keep their versions, so last-write-wins semantics are
// preserved and re-running Rebalance is idempotent.
func (c *Cluster) Rebalance(ctx context.Context) error {
	members := c.Members()

	seen := make(map[string]uint64) // key -> newest version already pushed
	for _, addr := range members {
		resp, err := c.call(ctx, addr, methodScan, nil)
		if err != nil {
			// An unreachable member's data is covered by its replicas'
			// scans; skip it.
			continue
		}
		entries, err := decodeScan(resp)
		if err != nil {
			return fmt.Errorf("kvstore: rebalance scan %s: %w", addr, err)
		}
		for _, kv := range entries {
			if v, ok := seen[string(kv.key)]; ok && v >= kv.e.Version {
				continue
			}
			seen[string(kv.key)] = kv.e.Version
			if err := c.putEntry(ctx, kv.key, kv.e); err != nil {
				return fmt.Errorf("kvstore: rebalance key: %w", err)
			}
		}
	}
	return nil
}

type scannedEntry struct {
	key []byte
	e   Entry
}

// decodeScan parses a kv.scan response.
func decodeScan(body []byte) ([]scannedEntry, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: truncated scan response", ErrProto)
	}
	count := int(binary.BigEndian.Uint32(body))
	src := body[4:]
	// Each record costs at least 16 bytes (two length prefixes + version);
	// reject counts the payload cannot hold before allocating.
	if count > len(src)/16+1 {
		return nil, fmt.Errorf("%w: scan count %d exceeds payload", ErrProto, count)
	}
	out := make([]scannedEntry, 0, count)
	for i := 0; i < count; i++ {
		key, e, rest, err := decodeEntry(src)
		if err != nil {
			return nil, fmt.Errorf("kvstore: scan record %d: %w", i, err)
		}
		out = append(out, scannedEntry{key: key, e: e})
		src = rest
	}
	return out, nil
}
