package kvstore

import (
	"errors"
	"testing"

	"efdedup/internal/transport"
)

// TestErrorClassification pins the sentinel-wrapping contract the
// errclass analyzer enforces: every error built at a transport boundary
// must answer errors.Is for its class, so retry layers and callers can
// classify without string matching.
func TestErrorClassification(t *testing.T) {
	cases := []struct {
		name     string
		err      error
		sentinel error
	}{
		{"truncated length prefix", func() error {
			_, _, err := readBytes([]byte{0, 0})
			return err
		}(), ErrProto},
		{"truncated key list", func() error {
			_, err := decodeKeyList([]byte{1})
			return err
		}(), ErrProto},
		{"truncated scan response", func() error {
			_, err := decodeScan([]byte{0, 0, 0, 1})
			return err
		}(), ErrProto},
		{"empty cluster config", func() error {
			_, err := NewCluster(ClusterConfig{})
			return err
		}(), ErrConfig},
		{"cluster without network", func() error {
			_, err := NewCluster(ClusterConfig{Members: []string{"a"}})
			return err
		}(), ErrConfig},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Fatalf("%s: expected an error", tc.name)
		}
		if !errors.Is(tc.err, tc.sentinel) {
			t.Errorf("%s: %v does not unwrap to %v", tc.name, tc.err, tc.sentinel)
		}
		// Protocol and configuration failures are terminal: the retry
		// layer must never classify them as worth re-sending.
		if errors.Is(tc.err, transport.ErrRefused) {
			t.Errorf("%s: misclassified as a dial refusal", tc.name)
		}
	}
}
