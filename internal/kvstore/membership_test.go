package kvstore

import (
	"context"
	"fmt"
	"testing"

	"efdedup/internal/transport"
)

// addNode spins one extra storage node on the network.
func addNode(t *testing.T, nw *transport.MemNetwork, addr string) *Node {
	t.Helper()
	node, err := NewNode(NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := nw.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	node.Serve(l)
	t.Cleanup(func() { node.Close() })
	return node
}

func TestAddMemberValidation(t *testing.T) {
	nw := transport.NewMemNetwork()
	addrs := testRing(t, nw, 2)
	c := testCluster(t, nw, ClusterConfig{Members: addrs})
	if err := c.AddMember(""); err == nil {
		t.Error("empty address accepted")
	}
	if err := c.AddMember(addrs[0]); err == nil {
		t.Error("duplicate member accepted")
	}
}

func TestRemoveMemberValidation(t *testing.T) {
	nw := transport.NewMemNetwork()
	addrs := testRing(t, nw, 1)
	c := testCluster(t, nw, ClusterConfig{Members: addrs})
	if err := c.RemoveMember("missing"); err == nil {
		t.Error("unknown member accepted")
	}
	if err := c.RemoveMember(addrs[0]); err == nil {
		t.Error("removing last member accepted")
	}
}

// TestAddMemberAndRebalance grows the ring and verifies the new node ends
// up holding its share of the keys.
func TestAddMemberAndRebalance(t *testing.T) {
	nw := transport.NewMemNetwork()
	addrs := testRing(t, nw, 3)
	c := testCluster(t, nw, ClusterConfig{
		Members: addrs, ReplicationFactor: 2, WriteConsistency: All,
	})
	ctx := context.Background()
	const keys = 200
	for i := 0; i < keys; i++ {
		if err := c.Put(ctx, []byte(fmt.Sprintf("key-%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	newNode := addNode(t, nw, "kv-new")
	if err := c.AddMember("kv-new"); err != nil {
		t.Fatal(err)
	}
	if len(c.Members()) != 4 {
		t.Fatalf("members = %v", c.Members())
	}
	// Reads keep working before any data movement (fallback replicas).
	for i := 0; i < keys; i += 20 {
		if _, err := c.Get(ctx, []byte(fmt.Sprintf("key-%03d", i))); err != nil {
			t.Fatalf("read during membership change: %v", err)
		}
	}
	if err := c.Rebalance(ctx); err != nil {
		t.Fatal(err)
	}
	// With RF=2 over 4 nodes, the new node should own ≈ keys/2 entries.
	if got := newNode.Len(); got < keys/5 {
		t.Errorf("new node holds %d keys after rebalance, want a meaningful share", got)
	}
	// All keys still readable.
	for i := 0; i < keys; i++ {
		if _, err := c.Get(ctx, []byte(fmt.Sprintf("key-%03d", i))); err != nil {
			t.Fatalf("key %d lost after rebalance: %v", i, err)
		}
	}
}

// TestRemoveMemberAndRebalance decommissions a node and verifies
// replication is restored on the survivors.
func TestRemoveMemberAndRebalance(t *testing.T) {
	nw := transport.NewMemNetwork()
	n := 4
	nodes := make([]*Node, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("kv-%d", i)
		nodes[i] = addNode(t, nw, addr)
		addrs[i] = addr
	}
	c := testCluster(t, nw, ClusterConfig{
		Members: addrs, ReplicationFactor: 2, WriteConsistency: All,
	})
	ctx := context.Background()
	const keys = 200
	for i := 0; i < keys; i++ {
		if err := c.Put(ctx, []byte(fmt.Sprintf("key-%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Decommission node 2: remove from ring, rebalance, then kill it.
	if err := c.RemoveMember(addrs[2]); err != nil {
		t.Fatal(err)
	}
	if err := c.Rebalance(ctx); err != nil {
		t.Fatal(err)
	}
	nodes[2].Close()
	for i := 0; i < keys; i++ {
		if _, err := c.Get(ctx, []byte(fmt.Sprintf("key-%03d", i))); err != nil {
			t.Fatalf("key %d unreadable after decommission: %v", i, err)
		}
	}
}

func TestRebalanceIdempotent(t *testing.T) {
	nw := transport.NewMemNetwork()
	addrs := testRing(t, nw, 3)
	c := testCluster(t, nw, ClusterConfig{Members: addrs, ReplicationFactor: 2})
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if err := c.Put(ctx, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Rebalance(ctx); err != nil {
		t.Fatal(err)
	}
	stats1, err := c.MemberStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Rebalance(ctx); err != nil {
		t.Fatal(err)
	}
	stats2, err := c.MemberStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for addr := range stats1 {
		if stats1[addr].Entries != stats2[addr].Entries {
			t.Errorf("%s entry count changed on idempotent rebalance: %d -> %d",
				addr, stats1[addr].Entries, stats2[addr].Entries)
		}
	}
}
