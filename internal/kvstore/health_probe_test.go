package kvstore

import (
	"testing"
	"time"

	"efdedup/internal/faultnet"
	"efdedup/internal/transport"
)

// Failure-detector transition tests under injected network faults: a slow
// node must not be declared dead while its probes still answer inside
// PingTimeout, a node stalled past PingTimeout must be, and recovery must
// flip the detector back.

// probeBed builds one storage node behind a chaos fabric and a
// heartbeating cluster probing it through that fabric.
func probeBed(t *testing.T, cfg faultnet.Config, pingTimeout time.Duration) (*Cluster, *faultnet.Fabric, string) {
	t.Helper()
	mem := transport.NewMemNetwork()
	fab := faultnet.NewFabric(cfg)
	t.Cleanup(fab.Close)
	ringNW := fab.NetworkFor("ring", mem)
	edgeNW := fab.NetworkFor("edge", mem)

	node, err := NewNode(NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	const addr = "kv-0"
	l, err := ringNW.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	node.Serve(l)
	t.Cleanup(func() { node.Close() })

	c, err := NewCluster(ClusterConfig{
		Members:           []string{addr},
		ReplicationFactor: 1,
		Network:           edgeNW,
		HeartbeatInterval: 20 * time.Millisecond,
		PingTimeout:       pingTimeout,
		DisableRetry:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, fab, addr
}

func TestProbeToleratesStallBelowPingTimeout(t *testing.T) {
	// Every probe write stalls 30ms — a slow node, not a dead one. With
	// PingTimeout at 500ms the detector must keep reporting it alive.
	c, _, addr := probeBed(t, faultnet.Config{
		Seed:      1,
		StallProb: 1,
		StallFor:  30 * time.Millisecond,
	}, 500*time.Millisecond)

	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		if c.isDown(addr) {
			t.Fatal("slow node declared dead before PingTimeout elapsed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestProbeDeclaresDeadPastPingTimeout(t *testing.T) {
	// Every probe write stalls 300ms against a 50ms PingTimeout: the node
	// cannot answer a probe in time and must be marked down.
	c, _, addr := probeBed(t, faultnet.Config{
		Seed:      1,
		StallProb: 1,
		StallFor:  300 * time.Millisecond,
	}, 50*time.Millisecond)

	deadline := time.Now().Add(10 * time.Second)
	for !c.isDown(addr) {
		if !time.Now().Before(deadline) {
			t.Fatal("stalled node never declared dead")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestProbeRecoversAfterIsolation(t *testing.T) {
	c, fab, addr := probeBed(t, faultnet.Config{Seed: 1}, 100*time.Millisecond)

	waitDown := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for c.isDown(addr) != want {
			if !time.Now().Before(deadline) {
				t.Fatalf("detector never observed %s", what)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	waitDown(false, "initial liveness")
	fab.Isolate(addr)
	waitDown(true, "the isolation")
	fab.Restore(addr)
	waitDown(false, "the recovery")
}
