package kvstore

import "os"

// Small file helpers for WAL corruption tests.

func readFile(path string) ([]byte, error)     { return os.ReadFile(path) }
func writeFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }
