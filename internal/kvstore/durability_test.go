package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

func TestParseSyncPolicy(t *testing.T) {
	tests := []struct {
		in   string
		want SyncPolicy
		err  bool
	}{
		{"always", SyncAlways, false},
		{"interval", SyncInterval, false},
		{"", SyncInterval, false},
		{"off", SyncOff, false},
		{"sometimes", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseSyncPolicy(tt.in)
		if tt.err {
			if !errors.Is(err, ErrConfig) {
				t.Errorf("ParseSyncPolicy(%q) err = %v, want ErrConfig", tt.in, err)
			}
			continue
		}
		if err != nil || got != tt.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v, want %v", tt.in, got, err, tt.want)
		}
	}
}

// TestWALSyncAlwaysDurableBeforeAck proves the core crash-safety claim:
// under SyncAlways an acknowledged append is on disk even if the process
// dies without flushing (kill drops user-space buffers).
func TestWALSyncAlwaysDurableBeforeAck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.wal")
	w, err := OpenWALOptions(WALOptions{Path: path, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append([]byte(fmt.Sprintf("k%d", i)), Entry{Value: []byte("v"), Version: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	w.kill() // simulated SIGKILL: no flush, no fsync
	stats, err := ReplayWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 3 {
		t.Fatalf("replayed %d records after kill, want 3 (SyncAlways must be durable before ack)", stats.Records)
	}
}

// TestWALSyncOffLosesBufferedOnKill is the counter-claim: without syncing,
// a kill loses the buffered tail — which is why SyncOff is only safe when
// replication covers the loss window.
func TestWALSyncOffLosesBufferedOnKill(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.wal")
	w, err := OpenWALOptions(WALOptions{Path: path, Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("k"), Entry{Value: []byte("v"), Version: 1}); err != nil {
		t.Fatal(err)
	}
	w.kill()
	stats, err := ReplayWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 0 {
		t.Fatalf("replayed %d records, want 0 — kill must drop unflushed buffers", stats.Records)
	}
}

// TestWALIntervalGroupCommit: the background flusher makes appends durable
// within roughly one SyncEvery without any explicit Sync call.
func TestWALIntervalGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.wal")
	w, err := OpenWALOptions(WALOptions{Path: path, Sync: SyncInterval, SyncEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("k"), Entry{Value: []byte("v"), Version: 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		stats, err := ReplayWAL(path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Records == 1 {
			w.kill()
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("group commit never flushed the appended record")
}

// TestWALOpenTruncatesTornTail: a torn tail must be cut off on open so
// post-crash appends extend the valid prefix and replay on the next start.
func TestWALOpenTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := w.Append([]byte(fmt.Sprintf("k%d", i)), Entry{Value: []byte("v"), Version: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record.
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFile(path, data[:len(data)-5]); err != nil {
		t.Fatal(err)
	}
	// Reopen (truncates) and append a post-crash record.
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append([]byte("post"), Entry{Value: []byte("crash"), Version: 9}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	var keys []string
	stats, err := ReplayWAL(path, func(key []byte, e Entry) { keys = append(keys, string(key)) })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 4 || stats.Discarded() != 0 {
		t.Fatalf("post-crash replay: %+v, want 4 clean records", stats)
	}
	if keys[3] != "post" {
		t.Fatalf("post-crash append not replayed: %v", keys)
	}
}

// TestWALReplayClassifiesCorruption: a bit-flip inside a complete record
// counts as corruption, not a torn tail, and stops replay there.
func TestWALReplayClassifiesCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	var offsets []int64
	for i := 0; i < 4; i++ {
		if err := w.Append([]byte(fmt.Sprintf("k%d", i)), Entry{Value: []byte("v"), Version: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, w.Size())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the third record.
	data[offsets[1]+10] ^= 0xff
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	stats, err := ReplayWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 2 {
		t.Fatalf("replayed %d records, want 2 (stop at corruption)", stats.Records)
	}
	if stats.CorruptBytes == 0 || stats.TornBytes != 0 {
		t.Fatalf("bit flip misclassified: %+v, want CorruptBytes > 0", stats)
	}
	// The fourth record is intact but unreachable; it must be counted as
	// discarded, and a node opening this log must truncate it away.
	if stats.Discarded() != int64(len(data))-stats.Bytes {
		t.Fatalf("discarded %d bytes, want %d", stats.Discarded(), int64(len(data))-stats.Bytes)
	}
}

func TestWALClosedOperations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close = %v, want first result (nil)", err)
	}
	if err := w.Append([]byte("k"), Entry{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after close = %v, want ErrClosed", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after close = %v, want ErrClosed", err)
	}
	if err := w.Truncate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Truncate after close = %v, want ErrClosed", err)
	}
}

func TestSnapshotRecoversWithWALSuffix(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "node.wal")

	node, err := NewNode(NodeConfig{WALPath: walPath, WALSync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	put := func(n *Node, k, v string, ver uint64) {
		t.Helper()
		if _, err := n.handlePut(encodeEntry(nil, []byte(k), Entry{Value: []byte(v), Version: ver})); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		put(node, fmt.Sprintf("pre%d", i), "v", uint64(i+1))
	}
	if err := node.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := node.wal.Size(); got != 0 {
		t.Fatalf("WAL size after snapshot = %d, want 0", got)
	}
	// Writes after the snapshot land only in the WAL suffix.
	for i := 0; i < 5; i++ {
		put(node, fmt.Sprintf("post%d", i), "v", uint64(100+i))
	}
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}

	node2, err := NewNode(NodeConfig{WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	defer node2.Close()
	if node2.Len() != 15 {
		t.Fatalf("recovered %d entries, want 15 (10 snapshot + 5 WAL suffix)", node2.Len())
	}
	if rs := node2.RecoveryStats(); rs.Records != 5 || rs.Discarded() != 0 {
		t.Fatalf("recovery stats %+v, want 5 clean WAL-suffix records", rs)
	}
	if e, ok := node2.localGet([]byte("post4")); !ok || !bytes.Equal(e.Value, []byte("v")) {
		t.Fatal("WAL-suffix entry lost across restart")
	}
	if e, ok := node2.localGet([]byte("pre0")); !ok || e.Version != 1 {
		t.Fatal("snapshot entry lost or re-versioned across restart")
	}
}

func TestSnapshotCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "node.wal")
	node, err := NewNode(NodeConfig{WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.handlePut(encodeEntry(nil, []byte("k"), Entry{Value: []byte("v"), Version: 1})); err != nil {
		t.Fatal(err)
	}
	if err := node.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	snapPath := walPath + ".snap"
	data, err := readFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := writeFile(snapPath, data); err != nil {
		t.Fatal(err)
	}
	if _, err := NewNode(NodeConfig{WALPath: walPath}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("NewNode over corrupt snapshot = %v, want ErrCorrupt", err)
	}
}

// TestWALBoundedUnderSustainedIngest: size-triggered snapshots must keep
// the log from growing without bound while writes keep arriving.
func TestWALBoundedUnderSustainedIngest(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "node.wal")
	const threshold = 8 << 10 // 8 KiB: many snapshots over the run
	node, err := NewNode(NodeConfig{
		WALPath:       walPath,
		WALSync:       SyncOff, // bound the test's fsync count; durability is not under test here
		SnapshotBytes: threshold,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	var appended int64
	for i := 0; i < 2000; i++ {
		body := encodeEntry(nil, []byte(fmt.Sprintf("key-%d", i)), Entry{Value: bytes.Repeat([]byte("v"), 64), Version: uint64(i + 1)})
		if _, err := node.handlePut(body); err != nil {
			t.Fatal(err)
		}
		appended += int64(8 + len(body))
	}
	if appended < 4*threshold {
		t.Fatalf("test bug: only %d bytes appended, need >> %d", appended, threshold)
	}
	// Snapshots run in the background; after ingest stops the log must
	// settle below the threshold.
	deadline := time.Now().Add(10 * time.Second)
	for node.wal.Size() >= threshold {
		if !time.Now().Before(deadline) {
			t.Fatalf("WAL still %d bytes (threshold %d) after ingest stopped", node.wal.Size(), threshold)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if node.Len() != 2000 {
		t.Fatalf("table has %d entries, want 2000", node.Len())
	}
	// And the bounded log still recovers the full table.
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	node2, err := NewNode(NodeConfig{WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	defer node2.Close()
	if node2.Len() != 2000 {
		t.Fatalf("recovered %d entries, want 2000", node2.Len())
	}
}

// TestSnapshotTimer: a periodic snapshot loop truncates the WAL without
// any size trigger.
func TestSnapshotTimer(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "node.wal")
	node, err := NewNode(NodeConfig{
		WALPath:       walPath,
		SnapshotBytes: -1, // disable the size trigger; only the timer runs
		SnapshotEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if _, err := node.handlePut(encodeEntry(nil, []byte("k"), Entry{Value: []byte("v"), Version: 1})); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for node.wal.Size() != 0 {
		if !time.Now().Before(deadline) {
			t.Fatal("periodic snapshot never truncated the WAL")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := loadSnapshot(walPath + ".snap"); err != nil {
		t.Fatalf("periodic snapshot unreadable: %v", err)
	}
}
