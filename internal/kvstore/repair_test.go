package kvstore

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"efdedup/internal/transport"
)

// repairRing spins up n storage nodes and returns both the addresses and
// the node handles, so tests can tamper with replica state directly.
func repairRing(t *testing.T, nw *transport.MemNetwork, n int) ([]string, []*Node) {
	t.Helper()
	addrs := make([]string, n)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node, err := NewNode(NodeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		addr := fmt.Sprintf("kv-%d", i)
		l, err := nw.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		node.Serve(l)
		t.Cleanup(func() { node.Close() })
		addrs[i] = addr
		nodes[i] = node
	}
	return addrs, nodes
}

// wipe empties a node's table, simulating a replica restarted from lost
// durable state that still answers RPCs.
func wipe(n *Node) {
	n.mu.Lock()
	n.table = make(map[string]Entry)
	n.mu.Unlock()
}

// assertPlacement checks that every key is present on every replica in
// its current replica set.
func assertPlacement(t *testing.T, c *Cluster, nodes map[string]*Node, keys [][]byte) {
	t.Helper()
	for _, key := range keys {
		for _, addr := range c.replicas(key) {
			if _, ok := nodes[addr].localGet(key); !ok {
				t.Fatalf("replica %s missing key %q after repair", addr, key)
			}
		}
	}
}

func TestRepairConvergesWipedReplica(t *testing.T) {
	nw := transport.NewMemNetwork()
	addrs, nodes := repairRing(t, nw, 3)
	byAddr := map[string]*Node{}
	for i, a := range addrs {
		byAddr[a] = nodes[i]
	}
	c := testCluster(t, nw, ClusterConfig{
		Members:           addrs,
		ReplicationFactor: 2,
		WriteConsistency:  All,
	})
	ctx := context.Background()
	var keys [][]byte
	for i := 0; i < 64; i++ {
		k := []byte(fmt.Sprintf("chunk-%03d", i))
		if err := c.Put(ctx, k, []byte(fmt.Sprintf("meta-%d", i))); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}

	// A converged ring repairs to a no-op.
	stats, err := c.RepairOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged() {
		t.Fatalf("converged ring reported drift: %+v", stats)
	}
	if stats.Pairs != 3 {
		t.Fatalf("compared %d pairs, want 3", stats.Pairs)
	}

	// Wipe one replica — the restarted-with-lost-disk scenario heartbeats
	// cannot detect (the node answers pings, it just lost its table).
	wiped := nodes[1]
	wipe(wiped)
	if wiped.Len() != 0 {
		t.Fatal("wipe failed")
	}

	stats, err = c.RepairOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mismatched == 0 || stats.Pushed == 0 {
		t.Fatalf("repair did not detect the wiped replica: %+v", stats)
	}
	assertPlacement(t, c, byAddr, keys)

	// And the round after proves convergence.
	stats, err = c.RepairOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged() {
		t.Fatalf("ring still divergent after repair: %+v", stats)
	}
}

func TestRepairResolvesVersionTies(t *testing.T) {
	nw := transport.NewMemNetwork()
	addrs, nodes := repairRing(t, nw, 2)
	c := testCluster(t, nw, ClusterConfig{
		Members:           addrs,
		ReplicationFactor: 2,
	})
	ctx := context.Background()

	// Same key, same version, different value on each replica — the
	// collision two coordinators seeding the same wall-clock version can
	// produce. applyPut rejects ties, so only repair can reconcile it.
	key := []byte("tied")
	nodes[0].applyPut(key, Entry{Value: []byte("alpha"), Version: 7})
	nodes[1].applyPut(key, Entry{Value: []byte("bravo"), Version: 7})

	stats, err := c.RepairOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Conflicts != 1 {
		t.Fatalf("conflicts = %d, want 1: %+v", stats.Conflicts, stats)
	}
	e0, ok0 := nodes[0].localGet(key)
	e1, ok1 := nodes[1].localGet(key)
	if !ok0 || !ok1 {
		t.Fatal("key lost during conflict resolution")
	}
	if !bytes.Equal(e0.Value, e1.Value) || e0.Version != e1.Version {
		t.Fatalf("replicas still diverge: %q@%d vs %q@%d", e0.Value, e0.Version, e1.Value, e1.Version)
	}
	// The deterministic winner is the larger value bytes, re-written above
	// the tied version so last-write-wins accepts it everywhere.
	if !bytes.Equal(e0.Value, []byte("bravo")) || e0.Version != 8 {
		t.Fatalf("winner = %q@%d, want bravo@8", e0.Value, e0.Version)
	}

	stats, err = c.RepairOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged() {
		t.Fatalf("ring still divergent after conflict resolution: %+v", stats)
	}
}

func TestRepairSkipsUnreplicatedRing(t *testing.T) {
	nw := transport.NewMemNetwork()
	addrs, _ := repairRing(t, nw, 3)
	c := testCluster(t, nw, ClusterConfig{
		Members:           addrs,
		ReplicationFactor: 1,
	})
	stats, err := c.RepairOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pairs != 0 {
		t.Fatalf("RF=1 ring compared %d pairs, want 0 (no second copy exists)", stats.Pairs)
	}
}

func TestRepairCountsUnreachablePairs(t *testing.T) {
	nw := transport.NewMemNetwork()
	addrs, nodes := repairRing(t, nw, 3)
	c := testCluster(t, nw, ClusterConfig{
		Members:           addrs,
		ReplicationFactor: 2,
		DisableRetry:      true,
		CallTimeout:       200 * time.Millisecond,
	})
	nodes[2].Close()
	stats, err := c.RepairOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 2 {
		t.Fatalf("failed pairs = %d, want 2 (every pair touching the dead node)", stats.Failed)
	}
}

func TestRepairAfterMembershipChange(t *testing.T) {
	nw := transport.NewMemNetwork()
	addrs, nodes := repairRing(t, nw, 3)
	byAddr := map[string]*Node{}
	for i, a := range addrs {
		byAddr[a] = nodes[i]
	}
	c := testCluster(t, nw, ClusterConfig{
		Members:           addrs[:2],
		ReplicationFactor: 2,
		WriteConsistency:  All,
	})
	ctx := context.Background()
	var keys [][]byte
	for i := 0; i < 48; i++ {
		k := []byte(fmt.Sprintf("chunk-%03d", i))
		if err := c.Put(ctx, k, []byte("meta")); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}

	// Join the empty third node: digests now scope over the new ring, so
	// repair (not just Rebalance) must converge placement.
	if err := c.AddMember(addrs[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RepairOnce(ctx); err != nil {
		t.Fatal(err)
	}
	stats, err := c.RepairOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged() {
		t.Fatalf("ring still divergent after join + repair: %+v", stats)
	}
	assertPlacement(t, c, byAddr, keys)
}

func TestDigestWireRoundTrip(t *testing.T) {
	members := []string{"kv-0", "kv-1", "kv-2"}
	body := encodeDigestReq(2, 64, members, members[:2])
	req, rest, err := decodeDigestReq(body)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decodeDigestReq: %v (rest %d)", err, len(rest))
	}
	if req.rf != 2 || req.vnodes != 64 || len(req.members) != 3 || len(req.scope) != 2 {
		t.Fatalf("round trip mangled request: %+v", req)
	}

	var d [digestBuckets]bucketDigest
	d[3] = bucketDigest{hash: 0xdeadbeef, count: 7}
	got, err := decodeDigestResp(encodeDigestResp(d))
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Fatal("digest response round trip mangled buckets")
	}

	var want bucketSet
	want.add(0)
	want.add(255)
	preq := encodePullReq(2, 64, members, members[:2], want)
	_, gotSet, err := decodePullReq(preq)
	if err != nil {
		t.Fatal(err)
	}
	if gotSet != want {
		t.Fatal("pull request round trip mangled bucket set")
	}
	if !gotSet.has(0) || !gotSet.has(255) || gotSet.has(7) {
		t.Fatal("bucketSet membership broken")
	}
}
