package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"efdedup/internal/metrics"
	"efdedup/internal/transport"
)

// RPC method names served by a storage node.
const (
	methodGet      = "kv.get"
	methodPut      = "kv.put"
	methodPutNX    = "kv.putnx"
	methodBatchHas = "kv.batchhas"
	methodBatchPut = "kv.batchput"
	methodScan     = "kv.scan"
	methodPing     = "kv.ping"
	methodStats    = "kv.stats"
)

// NodeStats counts operations served by a storage node.
type NodeStats struct {
	Gets    int64
	Puts    int64
	Hits    int64
	Misses  int64
	Entries int64
}

// NodeConfig configures a storage node.
type NodeConfig struct {
	// WALPath enables the write-ahead log when non-empty. The node
	// replays the log on startup.
	WALPath string
	// Metrics receives per-method serve-latency histograms and the
	// entries gauge. Nil records into metrics.Default().
	Metrics *metrics.Registry
}

// Node is one storage replica of the dedup index. It serves the kv.*
// methods over the transport protocol.
type Node struct {
	mu    sync.RWMutex
	table map[string]Entry

	wal *WAL

	gets, puts, hits, misses atomic.Int64

	reg      *metrics.Registry
	server   *transport.Server
	listener net.Listener
	serveErr chan error
}

// NewNode creates a storage node, replaying the WAL when configured.
func NewNode(cfg NodeConfig) (*Node, error) {
	n := &Node{
		table:    make(map[string]Entry),
		serveErr: make(chan error, 1),
	}
	if cfg.WALPath != "" {
		if err := ReplayWAL(cfg.WALPath, func(key []byte, e Entry) {
			n.applyPut(key, e)
		}); err != nil {
			return nil, err
		}
		wal, err := OpenWAL(cfg.WALPath)
		if err != nil {
			return nil, err
		}
		n.wal = wal
	}
	n.reg = cfg.Metrics
	if n.reg == nil {
		n.reg = metrics.Default()
	}
	n.server = transport.NewServer()
	n.handle(methodGet, n.handleGet)
	n.handle(methodPut, n.handlePut)
	n.handle(methodPutNX, n.handlePutNX)
	n.handle(methodBatchHas, n.handleBatchHas)
	n.handle(methodBatchPut, n.handleBatchPut)
	n.handle(methodScan, n.handleScan)
	n.handle(methodPing, func([]byte) ([]byte, error) { return []byte("pong"), nil })
	n.handle(methodStats, n.handleStats)
	return n, nil
}

// handle registers a handler wrapped with serve-latency and failure
// instrumentation — the server half of the paper's lookup-overhead V(P)
// measurement (Fig. 5b): how long an index RPC spends inside the node,
// as opposed to on the WAN.
func (n *Node) handle(method string, h func([]byte) ([]byte, error)) {
	hist := n.reg.DurationHistogram("kvstore_node_rpc_seconds", "method", method)
	fails := n.reg.Counter("kvstore_node_rpc_failures_total", "method", method)
	n.server.Handle(method, func(body []byte) ([]byte, error) {
		sp := metrics.StartTimer(hist)
		resp, err := h(body)
		sp.End()
		if err != nil && !errors.Is(err, ErrNotFound) {
			fails.Inc()
		}
		return resp, err
	})
}

// Serve starts accepting connections on l in a background goroutine and
// returns immediately.
func (n *Node) Serve(l net.Listener) {
	n.listener = l
	n.reg.GaugeFunc("kvstore_node_entries", func() float64 {
		return float64(n.Len())
	}, "addr", l.Addr().String())
	go func() {
		n.serveErr <- n.server.Serve(l)
	}()
}

// Addr returns the listen address, or "" before Serve.
func (n *Node) Addr() string {
	if n.listener == nil {
		return ""
	}
	return n.listener.Addr().String()
}

// Close stops serving and closes the WAL.
func (n *Node) Close() error {
	err := n.server.Close()
	if n.wal != nil {
		if werr := n.wal.Close(); err == nil {
			err = werr
		}
	}
	return err
}

// Stats returns a snapshot of operation counters.
func (n *Node) Stats() NodeStats {
	n.mu.RLock()
	entries := int64(len(n.table))
	n.mu.RUnlock()
	return NodeStats{
		Gets:    n.gets.Load(),
		Puts:    n.puts.Load(),
		Hits:    n.hits.Load(),
		Misses:  n.misses.Load(),
		Entries: entries,
	}
}

// Len returns the number of stored entries.
func (n *Node) Len() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.table)
}

// applyPut installs an entry under last-write-wins and reports whether it
// replaced the stored version.
func (n *Node) applyPut(key []byte, e Entry) bool {
	k := string(key)
	n.mu.Lock()
	defer n.mu.Unlock()
	if old, ok := n.table[k]; ok && old.Version >= e.Version {
		return false
	}
	n.table[k] = e
	return true
}

// localGet reads an entry from the table.
func (n *Node) localGet(key []byte) (Entry, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	e, ok := n.table[string(key)]
	return e, ok
}

// --- handlers ----------------------------------------------------------

func (n *Node) handleGet(body []byte) ([]byte, error) {
	n.gets.Add(1)
	e, ok := n.localGet(body)
	if !ok {
		n.misses.Add(1)
		return nil, ErrNotFound
	}
	n.hits.Add(1)
	out := binary.BigEndian.AppendUint64(nil, e.Version)
	return append(out, e.Value...), nil
}

func (n *Node) handlePut(body []byte) ([]byte, error) {
	n.puts.Add(1)
	key, e, _, err := decodeEntry(body)
	if err != nil {
		return nil, err
	}
	if n.wal != nil {
		if err := n.wal.Append(key, e); err != nil {
			return nil, err
		}
	}
	n.applyPut(key, e)
	return nil, nil
}

// handlePutNX stores the entry only when the key is absent, returning a
// single byte: 1 when the key already existed, 0 when stored.
func (n *Node) handlePutNX(body []byte) ([]byte, error) {
	n.puts.Add(1)
	key, e, _, err := decodeEntry(body)
	if err != nil {
		return nil, err
	}
	k := string(key)
	n.mu.Lock()
	_, exists := n.table[k]
	if !exists {
		n.table[k] = e
	}
	n.mu.Unlock()
	if exists {
		return []byte{1}, nil
	}
	if n.wal != nil {
		if err := n.wal.Append(key, e); err != nil {
			return nil, err
		}
	}
	return []byte{0}, nil
}

// handleBatchHas answers membership for a key list with one byte per key.
func (n *Node) handleBatchHas(body []byte) ([]byte, error) {
	keys, err := decodeKeyList(body)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(keys))
	n.mu.RLock()
	for i, k := range keys {
		if _, ok := n.table[string(k)]; ok {
			out[i] = 1
		}
	}
	n.mu.RUnlock()
	n.gets.Add(int64(len(keys)))
	for _, b := range out {
		if b == 1 {
			n.hits.Add(1)
		} else {
			n.misses.Add(1)
		}
	}
	return out, nil
}

// handleBatchPut stores a count-prefixed sequence of key+entry records.
func (n *Node) handleBatchPut(body []byte) ([]byte, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: truncated batch", ErrProto)
	}
	count := binary.BigEndian.Uint32(body)
	src := body[4:]
	for i := uint32(0); i < count; i++ {
		key, e, rest, err := decodeEntry(src)
		if err != nil {
			return nil, fmt.Errorf("kvstore: batch record %d: %w", i, err)
		}
		if n.wal != nil {
			if err := n.wal.Append(key, e); err != nil {
				return nil, err
			}
		}
		n.applyPut(key, e)
		src = rest
	}
	n.puts.Add(int64(count))
	return nil, nil
}

// handleScan returns every entry as a count-prefixed record sequence.
// The dedup index is small (hashes only), so a full snapshot is fine; a
// production system would paginate.
func (n *Node) handleScan([]byte) ([]byte, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := binary.BigEndian.AppendUint32(nil, uint32(len(n.table)))
	for k, e := range n.table {
		out = encodeEntry(out, []byte(k), e)
	}
	return out, nil
}

func (n *Node) handleStats([]byte) ([]byte, error) {
	s := n.Stats()
	out := make([]byte, 0, 40)
	out = binary.BigEndian.AppendUint64(out, uint64(s.Gets))
	out = binary.BigEndian.AppendUint64(out, uint64(s.Puts))
	out = binary.BigEndian.AppendUint64(out, uint64(s.Hits))
	out = binary.BigEndian.AppendUint64(out, uint64(s.Misses))
	out = binary.BigEndian.AppendUint64(out, uint64(s.Entries))
	return out, nil
}

func decodeStats(body []byte) (NodeStats, error) {
	if len(body) != 40 {
		return NodeStats{}, fmt.Errorf("%w: stats payload of %d bytes, want 40", ErrProto, len(body))
	}
	return NodeStats{
		Gets:    int64(binary.BigEndian.Uint64(body[0:])),
		Puts:    int64(binary.BigEndian.Uint64(body[8:])),
		Hits:    int64(binary.BigEndian.Uint64(body[16:])),
		Misses:  int64(binary.BigEndian.Uint64(body[24:])),
		Entries: int64(binary.BigEndian.Uint64(body[32:])),
	}, nil
}
