package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"efdedup/internal/metrics"
	"efdedup/internal/transport"
)

// RPC method names served by a storage node.
const (
	methodGet      = "kv.get"
	methodPut      = "kv.put"
	methodPutNX    = "kv.putnx"
	methodBatchHas = "kv.batchhas"
	methodBatchPut = "kv.batchput"
	methodScan     = "kv.scan"
	methodPing     = "kv.ping"
	methodStats    = "kv.stats"
	methodDigest   = "kv.digest"
	methodPull     = "kv.pull"
)

// NodeStats counts operations served by a storage node.
type NodeStats struct {
	Gets    int64
	Puts    int64
	Hits    int64
	Misses  int64
	Entries int64
}

// DefaultSnapshotBytes is the WAL size that triggers a snapshot +
// truncation when NodeConfig.SnapshotBytes is zero.
const DefaultSnapshotBytes = 8 << 20

// NodeConfig configures a storage node.
type NodeConfig struct {
	// WALPath enables durability when non-empty: the node recovers as
	// snapshot-then-WAL-suffix on startup and logs every write.
	WALPath string
	// WALSync selects the log's fsync policy; the zero value is
	// SyncInterval (group commit).
	WALSync SyncPolicy
	// WALSyncEvery is the group-commit interval under SyncInterval;
	// defaults to DefaultSyncEvery.
	WALSyncEvery time.Duration
	// SnapshotPath overrides where table snapshots live. Defaults to
	// WALPath + ".snap".
	SnapshotPath string
	// SnapshotBytes triggers a snapshot (and WAL truncation) whenever
	// the log exceeds this size, keeping both recovery time and log
	// size bounded under sustained ingest. 0 means DefaultSnapshotBytes;
	// negative disables size-triggered snapshots.
	SnapshotBytes int64
	// SnapshotEvery additionally snapshots on a timer when positive.
	SnapshotEvery time.Duration
	// Metrics receives per-method serve-latency histograms and the
	// entries gauge. Nil records into metrics.Default().
	Metrics *metrics.Registry
}

// Node is one storage replica of the dedup index. It serves the kv.*
// methods over the transport protocol.
type Node struct {
	mu    sync.RWMutex
	table map[string]Entry

	// putMu serializes the WAL-append + table-apply pair against
	// snapshots: writers hold it shared, Snapshot holds it exclusively
	// while it copies the table and truncates the log, so no
	// acknowledged record can fall between a snapshot's table copy and
	// the truncation. Lock order: putMu before mu.
	putMu sync.RWMutex

	wal       *WAL
	snapPath  string
	snapBytes int64
	replay    ReplayStats

	snapping atomic.Bool    // single-flight for size-triggered snapshots
	snapWG   sync.WaitGroup // in-flight background snapshots
	snapStop chan struct{}  // periodic snapshot loop shutdown
	snapDone chan struct{}

	gets, puts, hits, misses atomic.Int64

	reg       *metrics.Registry
	snapFails *metrics.Counter
	snaps     *metrics.Counter
	server    *transport.Server
	listener  net.Listener
	serveErr  chan error
	closeOnce sync.Once
	closeErr  error
}

// NewNode creates a storage node. With a WALPath it recovers durable
// state as snapshot first, then the WAL suffix written after it, and
// reports what the replay recovered and discarded via metrics and
// RecoveryStats.
func NewNode(cfg NodeConfig) (*Node, error) {
	n := &Node{
		table:    make(map[string]Entry),
		serveErr: make(chan error, 1),
	}
	n.reg = cfg.Metrics
	if n.reg == nil {
		n.reg = metrics.Default()
	}
	n.snaps = n.reg.Counter("kvstore_node_snapshots_total")
	n.snapFails = n.reg.Counter("kvstore_node_snapshot_failures_total")
	if cfg.WALPath != "" {
		n.snapPath = cfg.SnapshotPath
		if n.snapPath == "" {
			n.snapPath = cfg.WALPath + ".snap"
		}
		n.snapBytes = cfg.SnapshotBytes
		if n.snapBytes == 0 {
			n.snapBytes = DefaultSnapshotBytes
		}
		table, err := loadSnapshot(n.snapPath)
		if err != nil {
			return nil, err
		}
		if table != nil {
			n.table = table
		}
		stats, err := ReplayWAL(cfg.WALPath, func(key []byte, e Entry) {
			n.applyPut(key, e)
		})
		if err != nil {
			return nil, err
		}
		n.replay = stats
		n.reg.Counter("kvstore_wal_replay_records_total").Add(int64(stats.Records))
		n.reg.Counter("kvstore_wal_replay_torn_bytes_total").Add(stats.TornBytes)
		n.reg.Counter("kvstore_wal_replay_corrupt_bytes_total").Add(stats.CorruptBytes)
		wal, err := OpenWALOptions(WALOptions{
			Path:      cfg.WALPath,
			Sync:      cfg.WALSync,
			SyncEvery: cfg.WALSyncEvery,
		})
		if err != nil {
			return nil, err
		}
		n.wal = wal
		if cfg.SnapshotEvery > 0 {
			n.snapStop = make(chan struct{})
			n.snapDone = make(chan struct{})
			go n.snapshotLoop(cfg.SnapshotEvery)
		}
	}
	n.server = transport.NewServer()
	n.handle(methodGet, n.handleGet)
	n.handle(methodPut, n.handlePut)
	n.handle(methodPutNX, n.handlePutNX)
	n.handle(methodBatchHas, n.handleBatchHas)
	n.handle(methodBatchPut, n.handleBatchPut)
	n.handle(methodScan, n.handleScan)
	n.handle(methodPing, func([]byte) ([]byte, error) { return []byte("pong"), nil })
	n.handle(methodStats, n.handleStats)
	n.handle(methodDigest, n.handleDigest)
	n.handle(methodPull, n.handlePull)
	return n, nil
}

// RecoveryStats reports what the startup replay recovered and discarded.
func (n *Node) RecoveryStats() ReplayStats { return n.replay }

// handle registers a handler wrapped with serve-latency and failure
// instrumentation — the server half of the paper's lookup-overhead V(P)
// measurement (Fig. 5b): how long an index RPC spends inside the node,
// as opposed to on the WAN.
func (n *Node) handle(method string, h func([]byte) ([]byte, error)) {
	hist := n.reg.DurationHistogram("kvstore_node_rpc_seconds", "method", method)
	fails := n.reg.Counter("kvstore_node_rpc_failures_total", "method", method)
	n.server.Handle(method, func(body []byte) ([]byte, error) {
		sp := metrics.StartTimer(hist)
		resp, err := h(body)
		sp.End()
		if err != nil && !errors.Is(err, ErrNotFound) {
			fails.Inc()
		}
		return resp, err
	})
}

// Serve starts accepting connections on l in a background goroutine and
// returns immediately.
func (n *Node) Serve(l net.Listener) {
	n.listener = l
	n.reg.GaugeFunc("kvstore_node_entries", func() float64 {
		return float64(n.Len())
	}, "addr", l.Addr().String())
	go func() {
		n.serveErr <- n.server.Serve(l)
	}()
}

// Addr returns the listen address, or "" before Serve.
func (n *Node) Addr() string {
	if n.listener == nil {
		return ""
	}
	return n.listener.Addr().String()
}

// Close stops serving, joins the snapshot loop and any in-flight
// snapshot, then syncs and closes the WAL — exactly once; repeated
// Closes return the first result.
func (n *Node) Close() error {
	n.shutdown(true)
	return n.closeErr
}

// Kill simulates ungraceful process death for chaos tests: the server
// stops, background loops are joined (an in-process test cannot tear a
// goroutine mid-write), and the WAL is abandoned without flush or fsync,
// dropping its user-space buffers exactly as SIGKILL would.
func (n *Node) Kill() {
	n.shutdown(false)
}

func (n *Node) shutdown(graceful bool) {
	n.closeOnce.Do(func() {
		err := n.server.Close()
		if n.snapStop != nil {
			close(n.snapStop)
			<-n.snapDone
		}
		n.snapWG.Wait()
		if n.wal != nil {
			if graceful {
				if werr := n.wal.Close(); err == nil {
					err = werr
				}
			} else {
				n.wal.kill()
			}
		}
		n.closeErr = err
	})
}

// snapshotLoop snapshots on a timer until Close.
func (n *Node) snapshotLoop(every time.Duration) {
	defer close(n.snapDone)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			// Failures are counted; the loop's job is to keep trying.
			//lint:ignore errlost failures recorded in kvstore_node_snapshot_failures_total; next tick retries
			_ = n.Snapshot()
		case <-n.snapStop:
			return
		}
	}
}

// maybeSnapshot triggers one background snapshot when the WAL has grown
// past the configured threshold. Single-flight: the hot path pays one
// atomic load while a snapshot is running.
func (n *Node) maybeSnapshot() {
	if n.wal == nil || n.snapBytes <= 0 || n.wal.Size() < n.snapBytes {
		return
	}
	if !n.snapping.CompareAndSwap(false, true) {
		return
	}
	n.snapWG.Add(1)
	go func() {
		defer n.snapWG.Done()
		defer n.snapping.Store(false)
		//lint:ignore errlost failures recorded in kvstore_node_snapshot_failures_total; the WAL keeps growing and the next put retries
		_ = n.Snapshot()
	}()
}

// Snapshot durably writes the current table and truncates the WAL, so
// recovery replays snapshot + a short suffix instead of the full
// history. Writers are paused for the duration (the table is small —
// hashes, not chunks); reads are only blocked for the in-memory copy.
func (n *Node) Snapshot() error {
	if n.wal == nil {
		return fmt.Errorf("%w: snapshots need a WAL-backed node", ErrConfig)
	}
	n.putMu.Lock()
	defer n.putMu.Unlock()
	n.mu.RLock()
	table := make(map[string]Entry, len(n.table))
	for k, e := range n.table {
		table[k] = e
	}
	n.mu.RUnlock()
	if _, err := writeSnapshot(n.snapPath, table); err != nil {
		n.snapFails.Inc()
		return err
	}
	if err := n.wal.Truncate(); err != nil {
		n.snapFails.Inc()
		return err
	}
	n.snaps.Inc()
	return nil
}

// Stats returns a snapshot of operation counters.
func (n *Node) Stats() NodeStats {
	n.mu.RLock()
	entries := int64(len(n.table))
	n.mu.RUnlock()
	return NodeStats{
		Gets:    n.gets.Load(),
		Puts:    n.puts.Load(),
		Hits:    n.hits.Load(),
		Misses:  n.misses.Load(),
		Entries: entries,
	}
}

// Len returns the number of stored entries.
func (n *Node) Len() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.table)
}

// applyPut installs an entry under last-write-wins and reports whether it
// replaced the stored version.
func (n *Node) applyPut(key []byte, e Entry) bool {
	k := string(key)
	n.mu.Lock()
	defer n.mu.Unlock()
	if old, ok := n.table[k]; ok && old.Version >= e.Version {
		return false
	}
	n.table[k] = e
	return true
}

// localGet reads an entry from the table.
func (n *Node) localGet(key []byte) (Entry, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	e, ok := n.table[string(key)]
	return e, ok
}

// --- handlers ----------------------------------------------------------

func (n *Node) handleGet(body []byte) ([]byte, error) {
	n.gets.Add(1)
	e, ok := n.localGet(body)
	if !ok {
		n.misses.Add(1)
		return nil, ErrNotFound
	}
	n.hits.Add(1)
	out := binary.BigEndian.AppendUint64(nil, e.Version)
	return append(out, e.Value...), nil
}

func (n *Node) handlePut(body []byte) ([]byte, error) {
	n.puts.Add(1)
	key, e, _, err := decodeEntry(body)
	if err != nil {
		return nil, err
	}
	n.putMu.RLock()
	if n.wal != nil {
		if err := n.wal.Append(key, e); err != nil {
			n.putMu.RUnlock()
			return nil, err
		}
	}
	n.applyPut(key, e)
	n.putMu.RUnlock()
	n.maybeSnapshot()
	return nil, nil
}

// handlePutNX stores the entry only when the key is absent, returning a
// single byte: 1 when the key already existed, 0 when stored. The log
// append happens before the table insert — same order as handlePut — so
// a crash between the two can lose an unacknowledged insert but never
// acknowledge an unlogged one.
func (n *Node) handlePutNX(body []byte) ([]byte, error) {
	n.puts.Add(1)
	key, e, _, err := decodeEntry(body)
	if err != nil {
		return nil, err
	}
	if _, exists := n.localGet(key); exists {
		return []byte{1}, nil
	}
	n.putMu.RLock()
	if n.wal != nil {
		if err := n.wal.Append(key, e); err != nil {
			n.putMu.RUnlock()
			return nil, err
		}
	}
	k := string(key)
	n.mu.Lock()
	_, exists := n.table[k]
	if !exists {
		n.table[k] = e
	}
	n.mu.Unlock()
	n.putMu.RUnlock()
	if exists {
		// Lost the race after the existence check: the WAL record is
		// harmless — replay applies last-write-wins, and the stored
		// entry's version beats or equals ours.
		return []byte{1}, nil
	}
	n.maybeSnapshot()
	return []byte{0}, nil
}

// handleBatchHas answers membership for a key list with one byte per key.
func (n *Node) handleBatchHas(body []byte) ([]byte, error) {
	keys, err := decodeKeyList(body)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(keys))
	n.mu.RLock()
	for i, k := range keys {
		if _, ok := n.table[string(k)]; ok {
			out[i] = 1
		}
	}
	n.mu.RUnlock()
	n.gets.Add(int64(len(keys)))
	for _, b := range out {
		if b == 1 {
			n.hits.Add(1)
		} else {
			n.misses.Add(1)
		}
	}
	return out, nil
}

// handleBatchPut stores a count-prefixed sequence of key+entry records.
func (n *Node) handleBatchPut(body []byte) ([]byte, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: truncated batch", ErrProto)
	}
	count := binary.BigEndian.Uint32(body)
	src := body[4:]
	n.putMu.RLock()
	for i := uint32(0); i < count; i++ {
		key, e, rest, err := decodeEntry(src)
		if err != nil {
			n.putMu.RUnlock()
			return nil, fmt.Errorf("kvstore: batch record %d: %w", i, err)
		}
		if n.wal != nil {
			if err := n.wal.Append(key, e); err != nil {
				n.putMu.RUnlock()
				return nil, err
			}
		}
		n.applyPut(key, e)
		src = rest
	}
	n.putMu.RUnlock()
	n.puts.Add(int64(count))
	n.maybeSnapshot()
	return nil, nil
}

// handleScan returns every entry as a count-prefixed record sequence.
// The dedup index is small (hashes only), so a full snapshot is fine; a
// production system would paginate.
func (n *Node) handleScan([]byte) ([]byte, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return encodeScan(n.table), nil
}

// encodeScan serializes a table snapshot as the count-prefixed record
// sequence decodeScan consumes.
func encodeScan(table map[string]Entry) []byte {
	out := binary.BigEndian.AppendUint32(nil, uint32(len(table)))
	for k, e := range table {
		out = encodeEntry(out, []byte(k), e)
	}
	return out
}

func (n *Node) handleStats([]byte) ([]byte, error) {
	return encodeStats(n.Stats()), nil
}

// encodeStats serializes node counters as the five u64 words
// decodeStats reads back.
func encodeStats(s NodeStats) []byte {
	out := make([]byte, 0, 40)
	out = binary.BigEndian.AppendUint64(out, uint64(s.Gets))
	out = binary.BigEndian.AppendUint64(out, uint64(s.Puts))
	out = binary.BigEndian.AppendUint64(out, uint64(s.Hits))
	out = binary.BigEndian.AppendUint64(out, uint64(s.Misses))
	out = binary.BigEndian.AppendUint64(out, uint64(s.Entries))
	return out
}

func decodeStats(body []byte) (NodeStats, error) {
	if len(body) != 40 {
		return NodeStats{}, fmt.Errorf("%w: stats payload of %d bytes, want 40", ErrProto, len(body))
	}
	return NodeStats{
		Gets:    int64(binary.BigEndian.Uint64(body[0:])),
		Puts:    int64(binary.BigEndian.Uint64(body[8:])),
		Hits:    int64(binary.BigEndian.Uint64(body[16:])),
		Misses:  int64(binary.BigEndian.Uint64(body[24:])),
		Entries: int64(binary.BigEndian.Uint64(body[32:])),
	}, nil
}
