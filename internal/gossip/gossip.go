// Package gossip implements heartbeat anti-entropy membership — the role
// Cassandra's gossiper plays for the paper's D2-ring key-value store.
//
// Every node keeps a table mapping peer address → (heartbeat counter,
// local last-update time). Each interval a node increments its own
// heartbeat and exchanges tables with one random live peer (push-pull);
// merged entries keep the highest heartbeat. A peer whose heartbeat has
// not advanced within SuspectAfter is Suspect, within DeadAfter is Dead;
// dead entries are eventually forgotten. The protocol needs no central
// coordinator, spreads membership in O(log N) rounds, and keeps working
// through node failures and partitions — matching the paper's claim that
// ring membership changes are "a seamless operation".
package gossip

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"efdedup/internal/metrics"
	"efdedup/internal/retrypolicy"
	"efdedup/internal/transport"
)

// methodExchange is the push-pull RPC.
const methodExchange = "gossip.exchange"

// ErrConfig marks invalid gossip node assembly: caller mistakes, never
// transient.
var ErrConfig = errors.New("gossip: invalid configuration")

// ErrProto marks malformed exchange payloads: a peer (or the wire)
// produced bytes that do not parse as a heartbeat table.
var ErrProto = errors.New("gossip: protocol error")

// Status of a peer as judged by the local failure detector.
type Status int

// Peer liveness states.
const (
	Alive Status = iota + 1
	Suspect
	Dead
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Member is one row of the membership view.
type Member struct {
	// Addr is the peer's gossip address.
	Addr string
	// Heartbeat is the highest counter seen for the peer.
	Heartbeat uint64
	// Status is the local liveness judgement.
	Status Status
}

// Network is the transport slice gossip needs.
type Network interface {
	Listen(addr string) (net.Listener, error)
	Dial(ctx context.Context, addr string) (net.Conn, error)
}

// Config assembles a gossip node.
type Config struct {
	// Addr is this node's gossip listen address.
	Addr string
	// Network provides connectivity.
	Network Network
	// Seeds are peers contacted on startup (any subset suffices; the
	// rest is learned).
	Seeds []string
	// Interval between gossip rounds; defaults to 200 ms.
	Interval time.Duration
	// SuspectAfter and DeadAfter are how long a peer's heartbeat may
	// stall before it is suspected / declared dead. Defaults: 5 and 15
	// intervals.
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// Seed seeds peer selection (0 = time-based).
	Seed int64
}

type entry struct {
	heartbeat uint64
	updated   time.Time
}

// Node is a running gossiper.
type Node struct {
	cfg Config

	mu    sync.Mutex
	table map[string]entry

	server   *transport.Server
	listener net.Listener
	clients  map[string]*transport.Client
	rng      *rand.Rand
	breakers *retrypolicy.BreakerSet

	rounds        *metrics.Counter
	exchangeFails *metrics.Counter
	merges        *metrics.Counter

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// Start launches a gossip node: it binds the address, merges the seed
// list and begins gossiping.
func Start(cfg Config) (*Node, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("%w: empty address", ErrConfig)
	}
	if cfg.Network == nil {
		return nil, fmt.Errorf("%w: nil network", ErrConfig)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 200 * time.Millisecond
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 5 * cfg.Interval
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 15 * cfg.Interval
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	n := &Node{
		cfg:     cfg,
		table:   map[string]entry{cfg.Addr: {heartbeat: 1, updated: time.Now()}},
		clients: make(map[string]*transport.Client),
		rng:     rand.New(rand.NewSource(seed)),
		// Per-peer breakers keep rounds from burning on a downed peer:
		// while a breaker is open the peer is skipped during target
		// selection, then probed again after a few intervals.
		breakers: retrypolicy.NewBreakerSet(retrypolicy.BreakerConfig{
			FailureThreshold: 3,
			OpenFor:          4 * cfg.Interval,
		}),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	reg := metrics.Default()
	n.rounds = reg.Counter("gossip_rounds_total", "addr", cfg.Addr)
	n.exchangeFails = reg.Counter("gossip_exchange_failures_total", "addr", cfg.Addr)
	n.merges = reg.Counter("gossip_merges_total", "addr", cfg.Addr)
	reg.GaugeFunc("gossip_alive_peers", func() float64 {
		return float64(len(n.Alive()))
	}, "addr", cfg.Addr)
	for _, s := range cfg.Seeds {
		if s != cfg.Addr {
			n.table[s] = entry{heartbeat: 0, updated: time.Now()}
		}
	}
	n.server = transport.NewServer()
	n.server.Handle(methodExchange, n.handleExchange)
	l, err := cfg.Network.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("gossip: listen %s: %w", cfg.Addr, err)
	}
	n.listener = l
	go n.server.Serve(l) //nolint:errcheck // returns on Close
	go n.loop()
	return n, nil
}

// Stop shuts the gossiper down. It is idempotent.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stop)
		<-n.done
		n.server.Close()
		n.mu.Lock()
		clients := n.clients
		n.clients = make(map[string]*transport.Client)
		n.mu.Unlock()
		// Close outside the lock: a stalled peer conn must not block
		// concurrent table reads.
		for _, cl := range clients {
			cl.Close()
		}
	})
}

// Addr returns the node's gossip address.
func (n *Node) Addr() string { return n.cfg.Addr }

// Members returns the current view, sorted by address.
func (n *Node) Members() []Member {
	now := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Member, 0, len(n.table))
	for addr, e := range n.table {
		out = append(out, Member{Addr: addr, Heartbeat: e.heartbeat, Status: n.statusLocked(addr, e, now)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Alive returns the addresses currently judged alive (including self).
func (n *Node) Alive() []string {
	var out []string
	for _, m := range n.Members() {
		if m.Status == Alive {
			out = append(out, m.Addr)
		}
	}
	return out
}

// IsAlive reports the local judgement of one address.
func (n *Node) IsAlive(addr string) bool {
	now := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.table[addr]
	return ok && n.statusLocked(addr, e, now) == Alive
}

func (n *Node) statusLocked(addr string, e entry, now time.Time) Status {
	if addr == n.cfg.Addr {
		return Alive
	}
	age := now.Sub(e.updated)
	switch {
	case e.heartbeat == 0 && age > n.cfg.SuspectAfter:
		// Seed we never heard from.
		return Suspect
	case age > n.cfg.DeadAfter:
		return Dead
	case age > n.cfg.SuspectAfter:
		return Suspect
	default:
		return Alive
	}
}

// loop is the gossip round driver.
func (n *Node) loop() {
	defer close(n.done)
	ticker := time.NewTicker(n.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			n.round()
		case <-n.stop:
			return
		}
	}
}

// round bumps our heartbeat and push-pulls with one random peer.
func (n *Node) round() {
	n.rounds.Inc()
	n.mu.Lock()
	self := n.table[n.cfg.Addr]
	self.heartbeat++
	self.updated = time.Now()
	n.table[n.cfg.Addr] = self

	// Candidate peers: everyone not judged dead, excluding self and
	// peers behind an open breaker (they rejoin the pool once the
	// breaker's cool-down makes it half-open).
	now := time.Now()
	var peers []string
	for addr, e := range n.table {
		if addr == n.cfg.Addr {
			continue
		}
		if n.statusLocked(addr, e, now) != Dead && n.breakers.For(addr).State() != retrypolicy.Open {
			peers = append(peers, addr)
		}
	}
	sort.Strings(peers) // deterministic order under a fixed rng seed
	n.mu.Unlock()
	if len(peers) == 0 {
		return
	}
	target := peers[n.rng.Intn(len(peers))]

	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.Interval)
	defer cancel()
	resp, err := n.call(ctx, target, n.encodeTable())
	br := n.breakers.For(target)
	if err != nil {
		br.Failure()
		n.exchangeFails.Inc()
		return // the failure detector handles persistent silence
	}
	br.Success()
	n.mergeTable(resp)
}

// call sends one exchange RPC, redialing on broken connections.
func (n *Node) call(ctx context.Context, addr string, body []byte) ([]byte, error) {
	n.mu.Lock()
	cl := n.clients[addr]
	n.mu.Unlock()
	if cl == nil {
		conn, err := n.cfg.Network.Dial(ctx, addr)
		if err != nil {
			return nil, err
		}
		cl = transport.NewClient(conn)
		n.mu.Lock()
		if existing := n.clients[addr]; existing != nil {
			go cl.Close()
			cl = existing
		} else {
			n.clients[addr] = cl
		}
		n.mu.Unlock()
	}
	resp, err := cl.Call(ctx, methodExchange, body)
	if err != nil {
		n.mu.Lock()
		if n.clients[addr] == cl {
			delete(n.clients, addr)
		}
		n.mu.Unlock()
		cl.Close()
		return nil, err
	}
	return resp, nil
}

// handleExchange merges the caller's table and answers with ours. A
// malformed table is rejected outright — answering normally would ack
// a payload we dropped on the floor.
func (n *Node) handleExchange(body []byte) ([]byte, error) {
	if err := n.mergeTable(body); err != nil {
		return nil, err
	}
	return n.encodeTable(), nil
}

// encodeTable serializes addr→heartbeat pairs.
func (n *Node) encodeTable() []byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := binary.BigEndian.AppendUint32(nil, uint32(len(n.table)))
	for addr, e := range n.table {
		out = binary.BigEndian.AppendUint32(out, uint32(len(addr)))
		out = append(out, addr...)
		out = binary.BigEndian.AppendUint64(out, e.heartbeat)
	}
	return out
}

// tableEntry is one decoded (address, heartbeat) pair.
type tableEntry struct {
	addr      string
	heartbeat uint64
}

// decodeTable parses a serialized table: u32 count, then per entry a
// u32 address length, the address bytes and a u64 heartbeat. Every
// size is validated in 64-bit arithmetic before use — the old 32-bit
// comparison wrapped for address lengths near 2^32 and panicked on the
// following slice — and truncated or trailing input is a protocol
// error rather than a silently dropped suffix.
func decodeTable(src []byte) ([]tableEntry, error) {
	if len(src) < 4 {
		return nil, fmt.Errorf("%w: table of %d bytes lacks a count", ErrProto, len(src))
	}
	count := binary.BigEndian.Uint32(src)
	src = src[4:]
	if uint64(count) > uint64(len(src))/12 {
		return nil, fmt.Errorf("%w: count %d exceeds what %d bytes can hold", ErrProto, count, len(src))
	}
	entries := make([]tableEntry, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(src) < 4 {
			return nil, fmt.Errorf("%w: entry %d lacks an address length", ErrProto, i)
		}
		al := uint64(binary.BigEndian.Uint32(src))
		if uint64(len(src)) < 4+al+8 {
			return nil, fmt.Errorf("%w: entry %d of %d bytes exceeds remaining %d", ErrProto, i, 12+al, len(src))
		}
		addr := string(src[4 : 4+al])
		hb := binary.BigEndian.Uint64(src[4+al:])
		src = src[4+al+8:]
		entries = append(entries, tableEntry{addr: addr, heartbeat: hb})
	}
	if len(src) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after %d entries", ErrProto, len(src), count)
	}
	return entries, nil
}

// mergeTable folds a received table into ours: higher heartbeats win and
// refresh the local timestamp. Malformed payloads are rejected whole —
// a partial merge would make convergence depend on where the
// corruption sits.
func (n *Node) mergeTable(body []byte) error {
	entries, err := decodeTable(body)
	if err != nil {
		return err
	}
	now := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, te := range entries {
		if te.addr == n.cfg.Addr {
			continue // we are the authority on ourselves
		}
		e, ok := n.table[te.addr]
		if !ok || te.heartbeat > e.heartbeat {
			n.table[te.addr] = entry{heartbeat: te.heartbeat, updated: now}
			n.merges.Inc()
		}
	}
	return nil
}
