package gossip

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"efdedup/internal/transport"
)

// TestDecodeTableRoundTrip checks that a node's own encoded table
// decodes back to the same addr→heartbeat pairs.
func TestDecodeTableRoundTrip(t *testing.T) {
	nw := transport.NewMemNetwork()
	n, err := Start(Config{Addr: "rt", Network: nw, Interval: time.Hour})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer n.Stop()
	n.mu.Lock()
	n.table["peer-a"] = entry{heartbeat: 7, updated: time.Now()}
	n.table["peer-b"] = entry{heartbeat: 42, updated: time.Now()}
	n.mu.Unlock()

	entries, err := decodeTable(n.encodeTable())
	if err != nil {
		t.Fatalf("decode own table: %v", err)
	}
	got := make(map[string]uint64, len(entries))
	for _, e := range entries {
		got[e.addr] = e.heartbeat
	}
	if got["peer-a"] != 7 || got["peer-b"] != 42 || got["rt"] != 1 {
		t.Fatalf("round trip lost entries: %v", got)
	}
}

// TestDecodeTableHostile pins the decoder fixes: the old code compared
// lengths in 32-bit arithmetic (an address length near 2^32 wrapped the
// bound and panicked on the slice) and silently dropped truncated or
// trailing input with a bare return.
func TestDecodeTableHostile(t *testing.T) {
	overflow := binary.BigEndian.AppendUint32(nil, 1)           // count
	overflow = binary.BigEndian.AppendUint32(overflow, 1<<32-4) // addr length that wraps 4+al+8 in 32-bit
	overflow = append(overflow, make([]byte, 8)...)             // enough filler to pass the count sanity check

	valid := binary.BigEndian.AppendUint32(nil, 1)
	valid = binary.BigEndian.AppendUint32(valid, 4)
	valid = append(valid, "peer"...)
	valid = binary.BigEndian.AppendUint64(valid, 9)

	cases := map[string][]byte{
		"empty":           nil,
		"short header":    {0, 0},
		"count too large": binary.BigEndian.AppendUint32(nil, 5),
		"overflow length": overflow,
		"truncated entry": valid[:len(valid)-3],
		"trailing bytes":  append(append([]byte{}, valid...), 0xFF),
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			entries, err := decodeTable(payload)
			if err == nil {
				t.Fatalf("hostile payload decoded to %v", entries)
			}
			if !errors.Is(err, ErrProto) {
				t.Fatalf("error does not wrap ErrProto: %v", err)
			}
		})
	}
	if _, err := decodeTable(valid); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
}

// FuzzGossipTable drives the exchange-table decoder with arbitrary
// bytes: decode or ErrProto, never a panic.
func FuzzGossipTable(f *testing.F) {
	seed := binary.BigEndian.AppendUint32(nil, 1)
	seed = binary.BigEndian.AppendUint32(seed, 4)
	seed = append(seed, "peer"...)
	seed = binary.BigEndian.AppendUint64(seed, 9)
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 2, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := decodeTable(data); err != nil && !errors.Is(err, ErrProto) {
			t.Fatalf("decodeTable returned unclassified error: %v", err)
		}
	})
}

// TestHandleExchangeRejectsMalformed checks the handler propagates a
// decode error instead of acking a payload it dropped (the old
// mergeTable returned nil on malformed input).
func TestHandleExchangeRejectsMalformed(t *testing.T) {
	nw := transport.NewMemNetwork()
	n, err := Start(Config{Addr: "strict", Network: nw, Interval: time.Hour})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer n.Stop()
	if _, err := n.handleExchange([]byte{1, 2}); !errors.Is(err, ErrProto) {
		t.Fatalf("malformed exchange not rejected with ErrProto: %v", err)
	}
}
