package gossip

import (
	"fmt"
	"testing"
	"time"

	"efdedup/internal/transport"
)

// startCluster spins n gossipers on one memory fabric; node 0 is the only
// seed everyone else knows.
func startCluster(t *testing.T, nw *transport.MemNetwork, n int) []*Node {
	t.Helper()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		var seeds []string
		if i > 0 {
			seeds = []string{"g-0"}
		}
		node, err := Start(Config{
			Addr:     fmt.Sprintf("g-%d", i),
			Network:  nw,
			Seeds:    seeds,
			Interval: 20 * time.Millisecond,
			Seed:     int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(node.Stop)
		nodes[i] = node
	}
	return nodes
}

// waitFor polls until cond holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal(msg)
}

func TestStartValidation(t *testing.T) {
	nw := transport.NewMemNetwork()
	if _, err := Start(Config{Network: nw}); err == nil {
		t.Error("empty address accepted")
	}
	if _, err := Start(Config{Addr: "x"}); err == nil {
		t.Error("nil network accepted")
	}
	// Address collision surfaces as a listen error.
	n1, err := Start(Config{Addr: "dup", Network: nw, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Stop()
	if _, err := Start(Config{Addr: "dup", Network: nw, Interval: time.Hour}); err == nil {
		t.Error("duplicate address accepted")
	}
}

// TestMembershipConverges: every node learns every other through a single
// seed.
func TestMembershipConverges(t *testing.T) {
	nw := transport.NewMemNetwork()
	nodes := startCluster(t, nw, 6)
	waitFor(t, 5*time.Second, func() bool {
		for _, n := range nodes {
			if len(n.Alive()) != 6 {
				return false
			}
		}
		return true
	}, "membership did not converge to 6 alive on every node")

	// Views agree on the address set.
	want := fmt.Sprint(nodes[0].Alive())
	for _, n := range nodes[1:] {
		if got := fmt.Sprint(n.Alive()); got != want {
			t.Fatalf("views diverge: %s vs %s", got, want)
		}
	}
}

// TestFailureDetection: a stopped node is suspected and then declared
// dead on the survivors.
func TestFailureDetection(t *testing.T) {
	nw := transport.NewMemNetwork()
	nodes := startCluster(t, nw, 4)
	waitFor(t, 5*time.Second, func() bool {
		return len(nodes[0].Alive()) == 4
	}, "initial convergence failed")

	victim := nodes[3].Addr()
	nodes[3].Stop()

	waitFor(t, 5*time.Second, func() bool {
		return !nodes[0].IsAlive(victim) && !nodes[1].IsAlive(victim)
	}, "stopped node still judged alive")

	// Eventually the victim is Dead (not merely Suspect).
	waitFor(t, 5*time.Second, func() bool {
		for _, m := range nodes[0].Members() {
			if m.Addr == victim {
				return m.Status == Dead
			}
		}
		return false
	}, "stopped node never declared dead")
}

// TestRejoinAfterFailure: a node that comes back (same address, fresh
// heartbeats) is judged alive again.
func TestRejoinAfterFailure(t *testing.T) {
	nw := transport.NewMemNetwork()
	nodes := startCluster(t, nw, 3)
	waitFor(t, 5*time.Second, func() bool {
		return len(nodes[0].Alive()) == 3
	}, "initial convergence failed")

	victim := nodes[2]
	addr := victim.Addr()
	victim.Stop()
	waitFor(t, 5*time.Second, func() bool {
		return !nodes[0].IsAlive(addr)
	}, "failure not detected")

	revived, err := Start(Config{
		Addr:     addr,
		Network:  nw,
		Seeds:    []string{"g-0"},
		Interval: 20 * time.Millisecond,
		Seed:     99,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(revived.Stop)
	waitFor(t, 5*time.Second, func() bool {
		return nodes[0].IsAlive(addr) && nodes[1].IsAlive(addr)
	}, "revived node not re-detected as alive")
}

func TestStatusString(t *testing.T) {
	if Alive.String() != "alive" || Suspect.String() != "suspect" || Dead.String() != "dead" {
		t.Fatal("status strings wrong")
	}
}

func TestMergeTableIgnoresGarbage(t *testing.T) {
	nw := transport.NewMemNetwork()
	n, err := Start(Config{Addr: "solo", Network: nw, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	n.mergeTable(nil)
	n.mergeTable([]byte{0, 0})
	n.mergeTable([]byte{0, 0, 0, 5, 0, 0, 0, 99}) // truncated entry
	if len(n.Members()) != 1 {
		t.Fatalf("garbage mutated the table: %v", n.Members())
	}
}

// BenchmarkConvergence measures how long a fresh cluster takes to reach a
// complete membership view through one seed.
func BenchmarkConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nw := transport.NewMemNetwork()
		const n = 8
		nodes := make([]*Node, n)
		for j := 0; j < n; j++ {
			var seeds []string
			if j > 0 {
				seeds = []string{"g-0"}
			}
			node, err := Start(Config{
				Addr:     fmt.Sprintf("g-%d", j),
				Network:  nw,
				Seeds:    seeds,
				Interval: 5 * time.Millisecond,
				Seed:     int64(j + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			nodes[j] = node
		}
		start := time.Now()
		deadline := start.Add(10 * time.Second)
		for time.Now().Before(deadline) {
			all := true
			for _, node := range nodes {
				if len(node.Alive()) != n {
					all = false
					break
				}
			}
			if all {
				break
			}
			time.Sleep(time.Millisecond)
		}
		b.ReportMetric(float64(time.Since(start).Milliseconds()), "converge-ms")
		for _, node := range nodes {
			node.Stop()
		}
	}
}
