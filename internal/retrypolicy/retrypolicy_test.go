package retrypolicy

import (
	"context"
	"errors"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

// fakeClock is a settable time source for breaker tests.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(0, 0)} }
func breakerWith(c *fakeClock, cfg BreakerConfig) *Breaker {
	cfg.Clock = c.Now
	return NewBreaker(cfg)
}

func TestPolicyDefaults(t *testing.T) {
	p := Policy{}.withDefaults()
	if p.MaxAttempts != 3 || p.BaseDelay != 10*time.Millisecond || p.MaxDelay != time.Second {
		t.Fatalf("unexpected defaults: %+v", p)
	}
	if p.Jitter != 0.2 || p.Multiplier != 2 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
	if j := (Policy{Jitter: -1}).withDefaults().Jitter; j != 0 {
		t.Fatalf("negative jitter resolved to %v, want 0 (disabled)", j)
	}
}

// TestBackoffJitterBounds: every jittered delay stays within
// [d·(1-j), d·(1+j)] of the capped exponential schedule.
func TestBackoffJitterBounds(t *testing.T) {
	base, max := 10*time.Millisecond, 80*time.Millisecond
	r := New(Policy{BaseDelay: base, MaxDelay: max, Multiplier: 2, Jitter: 0.25, Seed: 42, MaxAttempts: 10})
	for retry := 1; retry <= 8; retry++ {
		want := float64(base) * float64(int(1)<<(retry-1))
		if want > float64(max) {
			want = float64(max)
		}
		for i := 0; i < 100; i++ {
			got := float64(r.BackoffFor(retry))
			if got < want*0.75-1 || got > want*1.25+1 {
				t.Fatalf("retry %d: backoff %v outside [%v, %v]",
					retry, time.Duration(got), time.Duration(want*0.75), time.Duration(want*1.25))
			}
		}
	}
}

// TestBackoffDeterministicSeed: identical seeds give identical sequences.
func TestBackoffDeterministicSeed(t *testing.T) {
	mk := func() []time.Duration {
		r := New(Policy{Seed: 7})
		out := make([]time.Duration, 6)
		for i := range out {
			out[i] = r.BackoffFor(i + 1)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded sequences diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBackoffNoJitterIsExact(t *testing.T) {
	r := New(Policy{BaseDelay: 4 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Multiplier: 2, Jitter: -1})
	want := []time.Duration{4, 8, 16, 20, 20}
	for i, w := range want {
		if got := r.BackoffFor(i + 1); got != w*time.Millisecond {
			t.Fatalf("retry %d: backoff = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	r := New(Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, Jitter: -1})
	calls := 0
	err := r.Do(context.Background(), nil, nil, nil, func(context.Context) error {
		calls++
		if calls < 3 {
			return errBoom
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want nil after 3", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	r := New(Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: -1})
	calls := 0
	err := r.Do(context.Background(), nil, nil, nil, func(context.Context) error {
		calls++
		return errBoom
	})
	if !errors.Is(err, errBoom) || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want boom after 3", err, calls)
	}
}

func TestDoNonRetryableReturnsImmediately(t *testing.T) {
	r := New(Policy{MaxAttempts: 5, BaseDelay: time.Millisecond})
	app := errors.New("application says no")
	calls := 0
	err := r.Do(context.Background(), nil, nil,
		func(err error) bool { return !errors.Is(err, app) },
		func(context.Context) error { calls++; return app })
	if !errors.Is(err, app) || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want app error after 1", err, calls)
	}
}

func TestDoRespectsContextCancellation(t *testing.T) {
	r := New(Policy{MaxAttempts: 100, BaseDelay: 50 * time.Millisecond, Jitter: -1})
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	start := time.Now()
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err := r.Do(ctx, nil, nil, nil, func(context.Context) error { calls++; return errBoom })
	if err == nil {
		t.Fatal("Do succeeded under cancellation")
	}
	if calls > 3 || time.Since(start) > 2*time.Second {
		t.Fatalf("cancellation did not stop retries promptly (%d calls)", calls)
	}
}

func TestDoPerAttemptTimeout(t *testing.T) {
	r := New(Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, Jitter: -1, AttemptTimeout: 10 * time.Millisecond})
	deadlines := 0
	err := r.Do(context.Background(), nil, nil, nil, func(ctx context.Context) error {
		<-ctx.Done()
		deadlines++
		return ctx.Err()
	})
	if err == nil || deadlines != 2 {
		t.Fatalf("Do = %v with %d attempt deadlines, want error with 2", err, deadlines)
	}
}

// TestBudgetExhaustion: a capped budget refuses retries once spent and
// refills on successes.
func TestBudgetExhaustion(t *testing.T) {
	r := New(Policy{MaxAttempts: 10, BaseDelay: time.Millisecond, Jitter: -1})
	bud := NewBudget(2, 1)
	calls := 0
	err := r.Do(context.Background(), nil, bud, nil, func(context.Context) error { calls++; return errBoom })
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("Do = %v, want ErrBudgetExhausted", err)
	}
	if calls != 3 { // first attempt + 2 budgeted retries
		t.Fatalf("spent %d calls, want 3", calls)
	}
	if bud.Tokens() != 0 {
		t.Fatalf("tokens = %v, want 0", bud.Tokens())
	}
	// A success refills one token…
	if err := r.Do(context.Background(), nil, bud, nil, func(context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if bud.Tokens() != 1 {
		t.Fatalf("tokens after credit = %v, want 1", bud.Tokens())
	}
	// …allowing exactly one more retry.
	calls = 0
	err = r.Do(context.Background(), nil, bud, nil, func(context.Context) error { calls++; return errBoom })
	if !errors.Is(err, ErrBudgetExhausted) || calls != 2 {
		t.Fatalf("Do = %v after %d calls, want ErrBudgetExhausted after 2", err, calls)
	}
}

func TestBudgetUnlimited(t *testing.T) {
	bud := NewBudget(0, 0)
	for i := 0; i < 100; i++ {
		if !bud.Spend() {
			t.Fatal("unlimited budget refused a retry")
		}
	}
}

// TestBreakerOpensAtThreshold: consecutive failures trip the breaker;
// a success along the way resets the count.
func TestBreakerOpensAtThreshold(t *testing.T) {
	clk := newFakeClock()
	b := breakerWith(clk, BreakerConfig{FailureThreshold: 3, OpenFor: time.Second})
	b.Failure()
	b.Failure()
	b.Success() // resets the streak
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatalf("state = %v before threshold, want closed", b.State())
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state = %v after threshold, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call")
	}
}

// TestBreakerHalfOpenCycle: cool-down admits limited probes; failure
// re-opens, success re-closes.
func TestBreakerHalfOpenCycle(t *testing.T) {
	clk := newFakeClock()
	b := breakerWith(clk, BreakerConfig{FailureThreshold: 1, OpenFor: time.Second, HalfOpenProbes: 1})
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	clk.Advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("breaker admitted a probe before the cool-down elapsed")
	}
	clk.Advance(2 * time.Millisecond)
	if b.State() != HalfOpen {
		t.Fatalf("state = %v after cool-down, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused its probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe fails: back to open, cool-down restarts.
	b.Failure()
	if b.State() != Open || b.Allow() {
		t.Fatal("failed probe did not re-open the breaker")
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("re-opened breaker refused a probe after cool-down")
	}
	// Probe succeeds: closed again, traffic flows.
	b.Success()
	if b.State() != Closed || !b.Allow() || !b.Allow() {
		t.Fatal("successful probe did not re-close the breaker")
	}
}

// TestDoFailsFastWhenBreakerOpen: Do refuses without calling op.
func TestDoFailsFastWhenBreakerOpen(t *testing.T) {
	clk := newFakeClock()
	b := breakerWith(clk, BreakerConfig{FailureThreshold: 1, OpenFor: time.Hour})
	b.Failure()
	r := New(Policy{MaxAttempts: 3, BaseDelay: time.Millisecond})
	calls := 0
	err := r.Do(context.Background(), b, nil, nil, func(context.Context) error { calls++; return nil })
	if !errors.Is(err, ErrBreakerOpen) || calls != 0 {
		t.Fatalf("Do = %v with %d calls, want ErrBreakerOpen with 0", err, calls)
	}
}

// TestDoTripsBreaker: repeated failures through Do open the breaker.
func TestDoTripsBreaker(t *testing.T) {
	clk := newFakeClock()
	b := breakerWith(clk, BreakerConfig{FailureThreshold: 2, OpenFor: time.Hour})
	r := New(Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, Jitter: -1})
	calls := 0
	err := r.Do(context.Background(), b, nil, nil, func(context.Context) error { calls++; return errBoom })
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Do = %v, want ErrBreakerOpen once tripped mid-retry", err)
	}
	if calls != 2 {
		t.Fatalf("op ran %d times, want 2 (threshold)", calls)
	}
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
}

func TestBreakerSet(t *testing.T) {
	s := NewBreakerSet(BreakerConfig{FailureThreshold: 1, OpenFor: time.Hour})
	a, b := s.For("a"), s.For("b")
	if s.For("a") != a {
		t.Fatal("For returned a different breaker for the same address")
	}
	a.Failure()
	if a.State() != Open || b.State() != Closed {
		t.Fatal("breakers are not independent per address")
	}
	states := s.States()
	if states["a"] != Open || states["b"] != Closed {
		t.Fatalf("States() = %v", states)
	}
}

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{Closed: "closed", Open: "open", HalfOpen: "half-open"} {
		if s.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(s), s.String(), want)
		}
	}
}
