// Package retrypolicy provides the resilience primitives shared by every
// RPC path in EF-dedup: capped exponential backoff with jitter,
// per-attempt timeouts, retry budgets, and per-address circuit breakers.
//
// The paper's reliability story (Sec. IV/V) is that a D2-ring keeps
// deduplicating through index-node failures and membership churn. That
// only holds if transient faults — a dropped dial, a reset connection, a
// stalled WAN link — are absorbed below the coordinator instead of
// surfacing as quorum failures. The pieces:
//
//   - Policy: declarative retry schedule (attempts, base/max delay,
//     multiplier, jitter fraction, per-attempt timeout).
//   - Retrier: executes an operation under a Policy, sleeping the
//     jittered backoff between attempts.
//   - Budget: a token bucket bounding the global retry amplification a
//     client may generate (retries spend, successes refill), so a
//     long-lived outage cannot turn every request into MaxAttempts
//     requests forever.
//   - Breaker / BreakerSet: per-address circuit breakers
//     (closed → open → half-open) so a dead peer fails fast after a few
//     attempts and is re-probed at a controlled rate.
//
// All operations retried through this package must be idempotent; every
// EF-dedup RPC is (content-addressed puts, last-write-wins entries,
// read-only probes).
package retrypolicy

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"
)

// Sentinel errors returned by Retrier.Do.
var (
	// ErrBreakerOpen means the per-address circuit breaker refused the
	// attempt; the peer has been failing and its cool-down has not
	// elapsed. Callers should fail over or degrade rather than wait.
	ErrBreakerOpen = errors.New("retrypolicy: circuit breaker open")
	// ErrBudgetExhausted means the retry budget is spent; the operation
	// failed and was not retried.
	ErrBudgetExhausted = errors.New("retrypolicy: retry budget exhausted")
)

// Policy describes how one operation is retried. The zero value is valid
// and resolves to the package defaults; see the field comments.
type Policy struct {
	// MaxAttempts is the total number of attempts, including the first.
	// Defaults to 3. Set to 1 for single-attempt (no retry) semantics.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry. Defaults to 10ms.
	BaseDelay time.Duration
	// MaxDelay caps the (pre-jitter) backoff. Defaults to 1s.
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor. Defaults to 2.
	Multiplier float64
	// Jitter spreads each delay uniformly over
	// [delay·(1-Jitter), delay·(1+Jitter)]. 0 means the default 0.2;
	// a negative value disables jitter.
	Jitter float64
	// AttemptTimeout bounds each individual attempt (a child context of
	// the caller's). Zero means no per-attempt timeout.
	AttemptTimeout time.Duration
	// Seed makes the jitter sequence deterministic when non-zero (tests
	// and reproducible chaos runs).
	Seed int64
}

// withDefaults resolves zero fields.
func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	switch {
	case p.Jitter == 0:
		p.Jitter = 0.2
	case p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter > 1:
		p.Jitter = 1
	}
	return p
}

// Retrier executes operations under a Policy. It is safe for concurrent
// use; one Retrier is meant to be shared by all calls of a client.
type Retrier struct {
	p   Policy
	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a Retrier, resolving policy defaults.
func New(p Policy) *Retrier {
	p = p.withDefaults()
	seed := p.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Retrier{p: p, rng: rand.New(rand.NewSource(seed))}
}

// Policy returns the resolved policy.
func (r *Retrier) Policy() Policy { return r.p }

// BackoffFor returns the jittered delay preceding the given retry
// (retry 1 is the first re-attempt).
func (r *Retrier) BackoffFor(retry int) time.Duration {
	if retry < 1 {
		retry = 1
	}
	d := float64(r.p.BaseDelay) * math.Pow(r.p.Multiplier, float64(retry-1))
	if d > float64(r.p.MaxDelay) {
		d = float64(r.p.MaxDelay)
	}
	if r.p.Jitter > 0 {
		r.mu.Lock()
		f := r.rng.Float64()
		r.mu.Unlock()
		d *= 1 - r.p.Jitter + 2*r.p.Jitter*f
	}
	return time.Duration(d)
}

// Do runs op until it succeeds, exhausts the policy, is refused by the
// breaker or budget, or the parent context ends. br and bud may be nil.
// retryable classifies errors; nil means every error is retryable.
// A non-retryable error (e.g. an application-level RemoteError, which
// proves the transport works) is returned immediately and counts as a
// breaker success.
func (r *Retrier) Do(ctx context.Context, br *Breaker, bud *Budget, retryable func(error) bool, op func(context.Context) error) error {
	var lastErr error
	for attempt := 1; ; attempt++ {
		if br != nil && !br.Allow() {
			if lastErr != nil {
				return fmt.Errorf("%w (last error: %v)", ErrBreakerOpen, lastErr)
			}
			return ErrBreakerOpen
		}
		actx := ctx
		var cancel context.CancelFunc
		if r.p.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, r.p.AttemptTimeout)
		}
		err := op(actx)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			if br != nil {
				br.Success()
			}
			if bud != nil {
				bud.Credit()
			}
			return nil
		}
		if retryable != nil && !retryable(err) {
			if br != nil {
				br.Success()
			}
			return err
		}
		if br != nil {
			br.Failure()
		}
		lastErr = err
		if ctx.Err() != nil {
			return lastErr
		}
		if attempt >= r.p.MaxAttempts {
			return lastErr
		}
		if bud != nil && !bud.Spend() {
			return fmt.Errorf("%w (last error: %v)", ErrBudgetExhausted, lastErr)
		}
		timer := time.NewTimer(r.BackoffFor(attempt))
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return lastErr
		}
	}
}

// Budget is a token bucket bounding retry amplification: each retry
// spends one token, each success credits a fraction back (capped). When
// the bucket is empty, retries are refused until successes refill it —
// under a total outage a client decays to single-attempt calls instead
// of multiplying load by MaxAttempts. Safe for concurrent use.
type Budget struct {
	mu     sync.Mutex
	tokens float64
	cap    float64
	credit float64
}

// NewBudget builds a full bucket holding capacity retry tokens, where
// each recorded success re-credits successCredit tokens (clamped to the
// capacity). capacity <= 0 yields an unlimited budget (Spend always
// succeeds).
func NewBudget(capacity, successCredit float64) *Budget {
	return &Budget{tokens: capacity, cap: capacity, credit: successCredit}
}

// Spend takes one retry token, reporting whether the retry is allowed.
func (b *Budget) Spend() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cap <= 0 {
		return true
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Credit records a success, refilling part of the budget.
func (b *Budget) Credit() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.credit
	if b.tokens > b.cap {
		b.tokens = b.cap
	}
}

// Tokens reports the remaining retry tokens (observability and tests).
func (b *Budget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
