package retrypolicy

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

// Breaker states, in the classic closed → open → half-open cycle.
const (
	// Closed: traffic flows; consecutive failures are counted.
	Closed BreakerState = iota
	// Open: traffic is refused until the cool-down elapses.
	Open
	// HalfOpen: a limited number of trial calls probe the peer; one
	// success re-closes the breaker, one failure re-opens it.
	HalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes a Breaker. The zero value resolves to defaults.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures trip the breaker
	// open. Defaults to 5.
	FailureThreshold int
	// OpenFor is the cool-down before an open breaker admits half-open
	// probes. Defaults to 2s.
	OpenFor time.Duration
	// HalfOpenProbes caps concurrent trial calls while half-open.
	// Defaults to 1.
	HalfOpenProbes int
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 2 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Breaker is one address's circuit breaker. Callers ask Allow before an
// attempt and report the outcome with Success or Failure. Safe for
// concurrent use; state transitions are evaluated lazily (no goroutine).
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probes   int // in-flight half-open trial calls
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// tick applies the time-based open → half-open transition. Callers hold mu.
func (b *Breaker) tick() {
	if b.state == Open && b.cfg.Clock().Sub(b.openedAt) >= b.cfg.OpenFor {
		b.state = HalfOpen
		b.probes = 0
	}
}

// State reports the breaker's position, applying any due cool-down
// transition first.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tick()
	return b.state
}

// Allow reports whether an attempt may proceed now. While half-open it
// admits at most HalfOpenProbes concurrent trial calls; every admitted
// call must be concluded with Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tick()
	switch b.state {
	case Closed:
		return true
	case HalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			return false
		}
		b.probes++
		return true
	default:
		return false
	}
}

// Success records a completed call: it re-closes a half-open (or even
// open — a late success proves the peer reachable) breaker and resets the
// consecutive-failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.failures = 0
	b.probes = 0
}

// Failure records a failed call. Enough consecutive failures trip a
// closed breaker; any failure re-opens a half-open one. Failures
// reported while already open (stragglers from calls admitted earlier)
// do not extend the cool-down.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tick()
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.state = Open
			b.openedAt = b.cfg.Clock()
		}
	case HalfOpen:
		b.state = Open
		b.openedAt = b.cfg.Clock()
		b.probes = 0
	}
}

// BreakerSet lazily maintains one Breaker per address under a shared
// config. Safe for concurrent use.
type BreakerSet struct {
	cfg BreakerConfig
	mu  sync.Mutex
	m   map[string]*Breaker
}

// NewBreakerSet builds an empty set.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg.withDefaults(), m: make(map[string]*Breaker)}
}

// For returns (creating on first use) the breaker for addr.
func (s *BreakerSet) For(addr string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[addr]
	if !ok {
		b = &Breaker{cfg: s.cfg}
		s.m[addr] = b
	}
	return b
}

// States snapshots every tracked address's state (observability).
func (s *BreakerSet) States() map[string]BreakerState {
	s.mu.Lock()
	addrs := make([]string, 0, len(s.m))
	breakers := make([]*Breaker, 0, len(s.m))
	for a, b := range s.m {
		addrs = append(addrs, a)
		breakers = append(breakers, b)
	}
	s.mu.Unlock()
	out := make(map[string]BreakerState, len(addrs))
	for i, a := range addrs {
		out[a] = breakers[i].State()
	}
	return out
}
