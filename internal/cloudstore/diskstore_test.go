package cloudstore

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"efdedup/internal/chunk"
	"efdedup/internal/transport"
)

func TestDiskStoreChunkRoundTrip(t *testing.T) {
	d, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id, data := mkPayload(1, 5000)
	if d.HasChunk(id) {
		t.Fatal("chunk present before put")
	}
	if err := d.PutChunk(id, data); err != nil {
		t.Fatal(err)
	}
	if !d.HasChunk(id) {
		t.Fatal("chunk missing after put")
	}
	got, err := d.GetChunk(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("chunk corrupted")
	}
	// Idempotent put.
	if err := d.PutChunk(id, data); err != nil {
		t.Fatal(err)
	}
}

func TestDiskStoreDetectsOnDiskCorruption(t *testing.T) {
	root := t.TempDir()
	d, err := NewDiskStore(root)
	if err != nil {
		t.Fatal(err)
	}
	id, data := mkPayload(2, 100)
	if err := d.PutChunk(id, data); err != nil {
		t.Fatal(err)
	}
	// Flip a byte on disk.
	path := d.chunkPath(id)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.GetChunk(id); err == nil {
		t.Fatal("corrupt chunk read back without error")
	}
}

func TestDiskStoreManifests(t *testing.T) {
	d, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ids := []chunk.ID{chunk.Sum([]byte("a")), chunk.Sum([]byte("b"))}
	// Names with path separators must be escaped safely.
	name := "edge-0/file:1\\x"
	if err := d.PutManifest(name, ids); err != nil {
		t.Fatal(err)
	}
	got, err := d.GetManifest(name)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != ids[0] || got[1] != ids[1] {
		t.Fatalf("manifest round trip: %v", got)
	}
	names, err := d.ManifestNames()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != name {
		t.Fatalf("ManifestNames = %v", names)
	}
	if _, err := d.GetManifest("missing"); err != ErrNotFound {
		t.Fatalf("GetManifest(missing) = %v", err)
	}
}

func TestDiskStoreLoadIndex(t *testing.T) {
	root := t.TempDir()
	d, err := NewDiskStore(root)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i := 0; i < 5; i++ {
		id, data := mkPayload(int64(10+i), 100+i)
		if err := d.PutChunk(id, data); err != nil {
			t.Fatal(err)
		}
		want += int64(len(data))
	}
	// A stray file must be ignored, not break the walk.
	if err := os.WriteFile(filepath.Join(root, "chunks", "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	idx, err := d.LoadIndex()
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 5 {
		t.Fatalf("LoadIndex found %d chunks, want 5", len(idx))
	}
	var got int64
	for _, size := range idx {
		got += size
	}
	if got != want {
		t.Fatalf("LoadIndex total %d bytes, want %d", got, want)
	}
}

// TestServerDiskPersistenceAcrossRestart uploads through the RPC surface,
// restarts the server on the same directory and verifies the index, the
// stats and the data all survive.
func TestServerDiskPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	nw := transport.NewMemNetwork()

	srv, err := NewServer(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	l, err := nw.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	srv.Serve(l)
	cl, err := Dial(context.Background(), nw, "cloud")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	data := bytes.Repeat([]byte("persist me 0123456789"), 2000)
	if _, err := cl.UploadRaw(ctx, "durable-file", data); err != nil {
		t.Fatal(err)
	}
	statsBefore := srv.Stats()
	cl.Close()
	srv.Close()

	// Restart on the same directory.
	srv2, err := NewServer(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	nw2 := transport.NewMemNetwork()
	l2, err := nw2.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	srv2.Serve(l2)
	defer srv2.Close()
	cl2, err := Dial(context.Background(), nw2, "cloud")
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()

	st := srv2.Stats()
	if st.UniqueChunks != statsBefore.UniqueChunks || st.UniqueBytes != statsBefore.UniqueBytes {
		t.Fatalf("restart lost index: %+v vs %+v", st, statsBefore)
	}
	if st.Manifests != 1 {
		t.Fatalf("restart lost manifests: %+v", st)
	}
	got, err := cl2.Restore(ctx, "durable-file")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("restored data differs after restart")
	}
	// Re-uploading known content stores nothing new.
	stored, err := cl2.UploadRaw(ctx, "durable-file-2", data)
	if err != nil {
		t.Fatal(err)
	}
	if stored != 0 {
		t.Fatalf("re-upload after restart stored %d chunks, want 0", stored)
	}
}

func TestNewDiskStoreValidation(t *testing.T) {
	if _, err := NewDiskStore(""); err == nil {
		t.Fatal("empty root accepted")
	}
}
