package cloudstore

// Wire codecs for the cloud RPC surface. Every body format is a named
// encode/decode pair used by both the client and the server handlers,
// so the codecpair analyzer can check the two sides against each other
// and wire.lock pins the layouts. Decoders never trust input sizes:
// counts are validated against the remaining bytes in 64-bit
// arithmetic before any allocation, truncation is an ErrProto, and
// returned slices alias the request body (callers copy if they retain).

import (
	"encoding/binary"
	"fmt"

	"efdedup/internal/chunk"
)

// encodeChunkFrame builds an upload body: 32-byte ID | payload.
func encodeChunkFrame(ck chunk.Chunk) []byte {
	body := make([]byte, 0, chunk.IDSize+len(ck.Data))
	body = append(body, ck.ID[:]...)
	body = append(body, ck.Data...)
	return body
}

// decodeChunkFrame splits an upload body into ID and payload.
func decodeChunkFrame(body []byte) (chunk.ID, []byte, error) {
	var id chunk.ID
	if len(body) < chunk.IDSize {
		return id, nil, fmt.Errorf("%w: chunk frame of %d bytes lacks an ID", ErrProto, len(body))
	}
	copy(id[:], body)
	return id, body[chunk.IDSize:], nil
}

// encodeChunkList builds a batch upload body:
// u32 count | (32-byte ID | u32 len | payload)*.
func encodeChunkList(chunks []chunk.Chunk) []byte {
	body := binary.BigEndian.AppendUint32(nil, uint32(len(chunks)))
	for _, ck := range chunks {
		body = append(body, ck.ID[:]...)
		body = binary.BigEndian.AppendUint32(body, uint32(len(ck.Data)))
		body = append(body, ck.Data...)
	}
	return body
}

// decodeChunkList parses a batch upload body. Chunk payloads alias the
// input.
func decodeChunkList(body []byte) ([]chunk.Chunk, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: truncated chunk list", ErrProto)
	}
	count := binary.BigEndian.Uint32(body)
	src := body[4:]
	// Each record costs at least a header; reject counts the payload
	// cannot hold before allocating count slots.
	if uint64(count) > uint64(len(src))/(chunk.IDSize+4) {
		return nil, fmt.Errorf("%w: chunk count %d exceeds what %d bytes can hold", ErrProto, count, len(src))
	}
	out := make([]chunk.Chunk, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(src) < chunk.IDSize+4 {
			return nil, fmt.Errorf("%w: truncated chunk record %d", ErrProto, i)
		}
		var ck chunk.Chunk
		copy(ck.ID[:], src[:chunk.IDSize])
		n := binary.BigEndian.Uint32(src[chunk.IDSize:])
		src = src[chunk.IDSize+4:]
		if uint64(len(src)) < uint64(n) {
			return nil, fmt.Errorf("%w: chunk payload %d of %d bytes exceeds remaining %d", ErrProto, i, n, len(src))
		}
		ck.Data = src[:n]
		src = src[n:]
		out = append(out, ck)
	}
	if len(src) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after %d chunk records", ErrProto, len(src), count)
	}
	return out, nil
}

// encodeIDList builds a batchhas/getchunks request:
// u32 count | (32-byte ID)*.
func encodeIDList(ids []chunk.ID) []byte {
	body := binary.BigEndian.AppendUint32(nil, uint32(len(ids)))
	for _, id := range ids {
		body = append(body, id[:]...)
	}
	return body
}

// decodeIDList parses an ID list; the body must hold exactly count IDs.
func decodeIDList(body []byte) ([]chunk.ID, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: truncated ID list", ErrProto)
	}
	count := binary.BigEndian.Uint32(body)
	src := body[4:]
	// 64-bit math: count*IDSize overflows uint32 for hostile counts.
	if uint64(len(src)) != uint64(count)*chunk.IDSize {
		return nil, fmt.Errorf("%w: ID list of %d bytes does not hold %d IDs", ErrProto, len(src), count)
	}
	ids := make([]chunk.ID, count)
	for i := range ids {
		copy(ids[i][:], src[:chunk.IDSize])
		src = src[chunk.IDSize:]
	}
	return ids, nil
}

// encodeNamedBlob builds an uploadraw/putmanifest body:
// u16 name length | name | payload.
func encodeNamedBlob(name string, payload []byte) ([]byte, error) {
	if len(name) > 65535 {
		return nil, fmt.Errorf("%w: name too long", ErrProto)
	}
	body := binary.BigEndian.AppendUint16(nil, uint16(len(name)))
	body = append(body, name...)
	body = append(body, payload...)
	return body, nil
}

// decodeNamedBlob splits a named-blob body into name and payload.
func decodeNamedBlob(body []byte) (string, []byte, error) {
	if len(body) < 2 {
		return "", nil, fmt.Errorf("%w: truncated name header", ErrProto)
	}
	nameLen := int(binary.BigEndian.Uint16(body))
	if len(body) < 2+nameLen {
		return "", nil, fmt.Errorf("%w: name of %d bytes exceeds body", ErrProto, nameLen)
	}
	return string(body[2 : 2+nameLen]), body[2+nameLen:], nil
}

// encodeManifestIDs builds a getmanifest response (and the ID suffix of
// a putmanifest body): a bare 32-byte ID concatenation.
func encodeManifestIDs(ids []chunk.ID) []byte {
	out := make([]byte, 0, len(ids)*chunk.IDSize)
	for _, id := range ids {
		out = append(out, id[:]...)
	}
	return out
}

// decodeManifestIDs parses an ID concatenation.
func decodeManifestIDs(body []byte) ([]chunk.ID, error) {
	if len(body)%chunk.IDSize != 0 {
		return nil, fmt.Errorf("%w: ID list of %d bytes misaligned", ErrProto, len(body))
	}
	ids := make([]chunk.ID, len(body)/chunk.IDSize)
	for i := range ids {
		copy(ids[i][:], body[i*chunk.IDSize:])
	}
	return ids, nil
}

// encodeRecipe builds a getrecipe response: u32 count | per chunk:
// 32-byte ID | u64 container | u32 offset | u32 length.
func encodeRecipe(entries []RecipeEntry) []byte {
	out := make([]byte, 0, 4+len(entries)*(chunk.IDSize+16))
	out = binary.BigEndian.AppendUint32(out, uint32(len(entries)))
	for _, e := range entries {
		out = append(out, e.ID[:]...)
		out = binary.BigEndian.AppendUint64(out, e.Loc.Container)
		out = binary.BigEndian.AppendUint32(out, e.Loc.Offset)
		out = binary.BigEndian.AppendUint32(out, e.Loc.Length)
	}
	return out
}

// decodeRecipe parses a getrecipe response; the body must hold exactly
// count records.
func decodeRecipe(body []byte) ([]RecipeEntry, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: truncated recipe", ErrProto)
	}
	count := binary.BigEndian.Uint32(body)
	src := body[4:]
	const rec = chunk.IDSize + 16
	if uint64(len(src)) != uint64(count)*rec {
		return nil, fmt.Errorf("%w: recipe of %d bytes does not hold %d records", ErrProto, len(src), count)
	}
	out := make([]RecipeEntry, count)
	for i := range out {
		copy(out[i].ID[:], src[:chunk.IDSize])
		out[i].Loc.Container = binary.BigEndian.Uint64(src[chunk.IDSize:])
		out[i].Loc.Offset = binary.BigEndian.Uint32(src[chunk.IDSize+8:])
		out[i].Loc.Length = binary.BigEndian.Uint32(src[chunk.IDSize+12:])
		src = src[rec:]
	}
	return out, nil
}

// encodeChunkData builds a getchunks response: (u32 len | payload)* in
// request order. The count travels in the request, not the response.
func encodeChunkData(payloads [][]byte) []byte {
	var out []byte
	for _, data := range payloads {
		out = binary.BigEndian.AppendUint32(out, uint32(len(data)))
		out = append(out, data...)
	}
	return out
}

// decodeChunkData parses a getchunks response of exactly count
// payloads, which alias the input.
func decodeChunkData(body []byte, count int) ([][]byte, error) {
	out := make([][]byte, 0, count)
	for len(out) < count {
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: truncated chunk data header at record %d", ErrProto, len(out))
		}
		n := binary.BigEndian.Uint32(body)
		body = body[4:]
		if uint64(len(body)) < uint64(n) {
			return nil, fmt.Errorf("%w: chunk data %d of %d bytes exceeds remaining %d", ErrProto, len(out), n, len(body))
		}
		out = append(out, body[:n])
		body = body[n:]
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after %d chunk payloads", ErrProto, len(body), count)
	}
	return out, nil
}

// encodeStats builds a stats response: seven u64 counters in the order
// decodeStats reads them back.
func encodeStats(st Stats) []byte {
	out := make([]byte, 0, 56)
	out = binary.BigEndian.AppendUint64(out, uint64(st.UniqueChunks))
	out = binary.BigEndian.AppendUint64(out, uint64(st.UniqueBytes))
	out = binary.BigEndian.AppendUint64(out, uint64(st.LogicalBytes))
	out = binary.BigEndian.AppendUint64(out, uint64(st.RawUploads))
	out = binary.BigEndian.AppendUint64(out, uint64(st.Manifests))
	out = binary.BigEndian.AppendUint64(out, uint64(st.ContainersSealed))
	out = binary.BigEndian.AppendUint64(out, uint64(st.DuplicatedBytes))
	return out
}

// decodeStats parses a stats response.
func decodeStats(body []byte) (Stats, error) {
	if len(body) != 56 {
		return Stats{}, fmt.Errorf("%w: stats payload of %d bytes, want 56", ErrProto, len(body))
	}
	return Stats{
		UniqueChunks:     int64(binary.BigEndian.Uint64(body[0:])),
		UniqueBytes:      int64(binary.BigEndian.Uint64(body[8:])),
		LogicalBytes:     int64(binary.BigEndian.Uint64(body[16:])),
		RawUploads:       int64(binary.BigEndian.Uint64(body[24:])),
		Manifests:        int64(binary.BigEndian.Uint64(body[32:])),
		ContainersSealed: int64(binary.BigEndian.Uint64(body[40:])),
		DuplicatedBytes:  int64(binary.BigEndian.Uint64(body[48:])),
	}, nil
}
