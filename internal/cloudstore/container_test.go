package cloudstore

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"efdedup/internal/chunk"
)

func TestContainerRecordRoundTrip(t *testing.T) {
	buf := append([]byte(nil), containerMagic...)
	var want []chunk.Chunk
	for _, s := range []string{"alpha", "beta", "a much longer third chunk payload"} {
		c := mkChunk(s)
		want = append(want, c)
		buf, _ = appendContainerRecord(buf, c.ID, c.Data)
	}
	var got []chunk.Chunk
	err := parseContainer(buf, func(id chunk.ID, off uint32, payload []byte) error {
		if !bytes.Equal(buf[off:off+uint32(len(payload))], payload) {
			t.Fatalf("offset %d does not address payload", off)
		}
		got = append(got, chunk.Chunk{ID: id, Data: append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestParseContainerDetectsDamage(t *testing.T) {
	c := mkChunk("payload under test")
	good, _ := appendContainerRecord(append([]byte(nil), containerMagic...), c.ID, c.Data)
	nop := func(chunk.ID, uint32, []byte) error { return nil }

	cases := map[string][]byte{
		"bad magic":         append([]byte("NOTCONT\n"), good[len(containerMagic):]...),
		"flipped payload":   flipByte(good, len(good)-1),
		"flipped crc":       flipByte(good, len(containerMagic)+chunk.IDSize+5),
		"truncated payload": good[:len(good)-3],
		"truncated header":  good[:len(containerMagic)+10],
	}
	for name, data := range cases {
		if err := parseContainer(data, nop); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	if err := parseContainer(good, nop); err != nil {
		t.Fatalf("pristine container rejected: %v", err)
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xFF
	return out
}

// TestContainerSealSupersedesStagedChunks verifies the two-layer
// durability protocol on disk: before a seal the chunk lives as a staged
// flat file; after a seal the flat file is gone and reads come from the
// container.
func TestContainerSealSupersedesStagedChunks(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewServer(Config{Dir: dir, ContainerBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var ids []chunk.ID
	var payloads [][]byte
	for i := 0; i < 8; i++ {
		id, data := mkPayload(int64(100+i), 700) // 3 chunks per 2 KiB container
		ids = append(ids, id)
		payloads = append(payloads, data)
		if !srv.storeChunk(id, data) {
			t.Fatalf("chunk %d not stored", i)
		}
	}
	srv.FlushContainers()

	for i, id := range ids {
		if srv.disk.HasChunk(id) {
			t.Errorf("chunk %d still staged after seal", i)
		}
		loc, ok := srv.containers.locate(id)
		if !ok {
			t.Fatalf("chunk %d has no locator after seal", i)
		}
		if loc.Container == 0 {
			t.Fatalf("chunk %d locator names container 0", i)
		}
		got, err := srv.chunkData(id)
		if err != nil {
			t.Fatalf("chunk %d unreadable after seal: %v", i, err)
		}
		if !bytes.Equal(got, payloads[i]) {
			t.Fatalf("chunk %d payload differs after seal", i)
		}
	}
	if st := srv.Stats(); st.ContainersSealed < 2 {
		t.Fatalf("ContainersSealed = %d, want >= 2", st.ContainersSealed)
	}
}

// TestLoadContainersRecovery restarts a disk-backed server and verifies
// the locator index, stats and data all come back from container files,
// and that container IDs keep growing instead of colliding.
func TestLoadContainersRecovery(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewServer(Config{Dir: dir, ContainerBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	var ids []chunk.ID
	var payloads [][]byte
	for i := 0; i < 6; i++ {
		id, data := mkPayload(int64(200+i), 700)
		ids = append(ids, id)
		payloads = append(payloads, data)
		srv.storeChunk(id, data)
	}
	srv.FlushContainers()
	sealedBefore := srv.Stats().ContainersSealed
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, err := NewServer(Config{Dir: dir, ContainerBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	for i, id := range ids {
		got, err := srv2.chunkData(id)
		if err != nil {
			t.Fatalf("chunk %d unreadable after restart: %v", i, err)
		}
		if !bytes.Equal(got, payloads[i]) {
			t.Fatalf("chunk %d differs after restart", i)
		}
	}
	if st := srv2.Stats(); st.ContainersSealed != sealedBefore {
		t.Fatalf("ContainersSealed after restart = %d, want %d", st.ContainersSealed, sealedBefore)
	}
	// New containers must not collide with recovered ones.
	id, data := mkPayload(999, 1500)
	srv2.storeChunk(id, data)
	srv2.FlushContainers()
	loc, ok := srv2.containers.locate(id)
	if !ok {
		t.Fatal("post-restart chunk has no locator")
	}
	if loc.Container <= uint64(sealedBefore) {
		t.Fatalf("post-restart container ID %d collides with recovered %d", loc.Container, sealedBefore)
	}
}

func TestSelectiveDuplicationBudget(t *testing.T) {
	cs := newContainerStore(nil, 1<<20, 0.10, DefaultSparseRefLimit, 1)
	id, data := mkPayload(1, 1000)
	if !cs.append(id, data, false) {
		t.Fatal("unique append rejected")
	}
	// Budget is 10% of 1000 unique bytes = 100; a 1000-byte dup copy
	// must be refused, a small one admitted.
	if cs.append(id, data, true) {
		t.Fatal("over-budget duplicate admitted")
	}
	small, smallData := mkPayload(2, 80)
	if !cs.append(small, smallData, false) {
		t.Fatal("second unique append rejected")
	}
	if !cs.append(small, smallData, true) {
		t.Fatal("within-budget duplicate refused (budget 108, copy 80)")
	}
	if cs.append(small, smallData, true) {
		t.Fatal("budget spent but another duplicate admitted")
	}
}

// TestRepackSparseDuplicatesHotChunks stores stream A, seals it, then
// stores a later stream that reuses one chunk of A. That lone reference
// marks A's container sparse, so the shared chunk is repacked into the
// new stream's container and the locator moves to the denser copy.
func TestRepackSparseDuplicatesHotChunks(t *testing.T) {
	cl, srv := startCloud(t, Config{ContainerBytes: 1 << 20, DupFraction: 0.5})
	ctx := context.Background()

	var aChunks []chunk.Chunk
	var aIDs []chunk.ID
	for i := 0; i < 10; i++ {
		_, data := mkPayload(int64(300+i), 1000)
		c := chunk.Chunk{ID: chunk.Sum(data), Data: data}
		aChunks = append(aChunks, c)
		aIDs = append(aIDs, c.ID)
	}
	if _, err := cl.BatchUpload(ctx, aChunks); err != nil {
		t.Fatal(err)
	}
	if err := cl.PutManifest(ctx, "backup-1", aIDs); err != nil {
		t.Fatal(err)
	}
	srv.FlushContainers()
	oldLoc, ok := srv.containers.locate(aIDs[0])
	if !ok {
		t.Fatal("stream A chunk has no locator after seal")
	}

	// Stream B: mostly fresh data plus one chunk shared with A.
	var bChunks []chunk.Chunk
	bIDs := []chunk.ID{aIDs[0]}
	for i := 0; i < 6; i++ {
		_, data := mkPayload(int64(400+i), 1000)
		c := chunk.Chunk{ID: chunk.Sum(data), Data: data}
		bChunks = append(bChunks, c)
		bIDs = append(bIDs, c.ID)
	}
	if _, err := cl.BatchUpload(ctx, bChunks); err != nil {
		t.Fatal(err)
	}
	if err := cl.PutManifest(ctx, "backup-2", bIDs); err != nil {
		t.Fatal(err)
	}
	srv.FlushContainers()

	newLoc, ok := srv.containers.locate(aIDs[0])
	if !ok {
		t.Fatal("shared chunk lost its locator")
	}
	if newLoc.Container <= oldLoc.Container {
		t.Fatalf("shared chunk not repacked: container %d -> %d", oldLoc.Container, newLoc.Container)
	}
	if st := srv.Stats(); st.DuplicatedBytes < 1000 {
		t.Fatalf("DuplicatedBytes = %d, want >= 1000", st.DuplicatedBytes)
	}
	// The duplicated copy restores byte-identically.
	got, err := cl.Restore(ctx, "backup-2")
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte(nil), aChunks[0].Data...), flatten(bChunks)...)
	if !bytes.Equal(got, want) {
		t.Fatal("restore after repack differs")
	}
}

func flatten(chunks []chunk.Chunk) []byte {
	var out []byte
	for _, c := range chunks {
		out = append(out, c.Data...)
	}
	return out
}

// TestRestoreNamesCorruptContainer flips one payload byte inside a
// sealed container on disk and asserts the restore fails with ErrCorrupt
// naming the damaged container.
func TestRestoreNamesCorruptContainer(t *testing.T) {
	dir := t.TempDir()
	cl, srv := startCloud(t, Config{Dir: dir, ContainerBytes: 1 << 20})
	ctx := context.Background()

	data := bytes.Repeat([]byte("corrupt-me 0123456789"), 3000)
	if _, err := cl.UploadRaw(ctx, "victim", data); err != nil {
		t.Fatal(err)
	}
	srv.FlushContainers()

	conts, err := filepath.Glob(filepath.Join(dir, "containers", "*.cont"))
	if err != nil || len(conts) == 0 {
		t.Fatalf("no container files (err=%v)", err)
	}
	raw, err := os.ReadFile(conts[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(conts[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = cl.Restore(ctx, "victim")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("restore over corrupt container = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "container 1") {
		t.Fatalf("error does not name the container: %v", err)
	}
}

// TestRestoreNamesCorruptStagedChunk corrupts an unsealed chunk's staged
// flat file; the fallback fetch path must surface ErrCorrupt.
func TestRestoreNamesCorruptStagedChunk(t *testing.T) {
	dir := t.TempDir()
	cl, srv := startCloud(t, Config{Dir: dir})
	ctx := context.Background()

	c := mkChunk("soon to be damaged on disk")
	if _, err := cl.Upload(ctx, c); err != nil {
		t.Fatal(err)
	}
	if err := cl.PutManifest(ctx, "fragile", []chunk.ID{c.ID}); err != nil {
		t.Fatal(err)
	}
	path := srv.disk.chunkPath(c.ID)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Restore(ctx, "fragile"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("restore over corrupt staged chunk = %v, want ErrCorrupt", err)
	}
}
