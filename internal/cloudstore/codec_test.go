package cloudstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"efdedup/internal/chunk"
)

func codecChunk(data string) chunk.Chunk {
	return chunk.Chunk{ID: chunk.Sum([]byte(data)), Data: []byte(data)}
}

func TestChunkFrameRoundTrip(t *testing.T) {
	ck := codecChunk("frame payload")
	id, data, err := decodeChunkFrame(encodeChunkFrame(ck))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if id != ck.ID || !bytes.Equal(data, ck.Data) {
		t.Fatal("round trip mutated the chunk")
	}
	if _, _, err := decodeChunkFrame(make([]byte, chunk.IDSize-1)); !errors.Is(err, ErrProto) {
		t.Fatalf("short frame not rejected: %v", err)
	}
}

func TestChunkListRoundTrip(t *testing.T) {
	in := []chunk.Chunk{codecChunk("a"), codecChunk("bb"), {ID: chunk.Sum(nil)}}
	out, err := decodeChunkList(encodeChunkList(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d chunks, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].ID != in[i].ID || !bytes.Equal(out[i].Data, in[i].Data) {
			t.Fatalf("chunk %d mutated", i)
		}
	}
}

// TestChunkListHostile pins the count/length validation: counts the
// payload cannot hold are rejected before allocation, payload lengths
// are compared in 64-bit arithmetic, and trailing bytes are an error.
func TestChunkListHostile(t *testing.T) {
	valid := encodeChunkList([]chunk.Chunk{codecChunk("x")})

	overflow := binary.BigEndian.AppendUint32(nil, 1)
	overflow = append(overflow, make([]byte, chunk.IDSize)...)
	overflow = binary.BigEndian.AppendUint32(overflow, 1<<32-8) // wraps IDSize+4+n in 32-bit
	overflow = append(overflow, make([]byte, 8)...)

	cases := map[string][]byte{
		"empty":           nil,
		"count too large": binary.BigEndian.AppendUint32(nil, 1<<30),
		"truncated":       valid[:len(valid)-1],
		"overflow length": overflow,
		"trailing":        append(append([]byte{}, valid...), 1),
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := decodeChunkList(payload); !errors.Is(err, ErrProto) {
				t.Fatalf("hostile chunk list not rejected with ErrProto: %v", err)
			}
		})
	}
}

func TestIDListRoundTrip(t *testing.T) {
	in := []chunk.ID{chunk.Sum([]byte("1")), chunk.Sum([]byte("2"))}
	out, err := decodeIDList(encodeIDList(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatal("round trip mutated the IDs")
	}
	// A count of 2^27 would ask for 2^32 bytes: the exact-length check in
	// 64-bit arithmetic must reject it rather than wrap.
	huge := binary.BigEndian.AppendUint32(nil, 1<<27)
	if _, err := decodeIDList(huge); !errors.Is(err, ErrProto) {
		t.Fatalf("hostile count not rejected: %v", err)
	}
	if _, err := decodeIDList(encodeIDList(in)[:10]); !errors.Is(err, ErrProto) {
		t.Fatalf("truncated list not rejected: %v", err)
	}
}

func TestNamedBlobRoundTrip(t *testing.T) {
	body, err := encodeNamedBlob("backup/2026-08.img", []byte("payload"))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	name, payload, err := decodeNamedBlob(body)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if name != "backup/2026-08.img" || string(payload) != "payload" {
		t.Fatalf("round trip gave %q / %q", name, payload)
	}
	if _, err := encodeNamedBlob(string(make([]byte, 70000)), nil); !errors.Is(err, ErrProto) {
		t.Fatalf("oversized name not rejected: %v", err)
	}
	if _, _, err := decodeNamedBlob([]byte{0}); !errors.Is(err, ErrProto) {
		t.Fatalf("short header not rejected: %v", err)
	}
	if _, _, err := decodeNamedBlob([]byte{0xFF, 0xFF, 'x'}); !errors.Is(err, ErrProto) {
		t.Fatalf("truncated name not rejected: %v", err)
	}
}

func TestManifestIDsRoundTrip(t *testing.T) {
	in := []chunk.ID{chunk.Sum([]byte("m1")), chunk.Sum([]byte("m2")), chunk.Sum([]byte("m3"))}
	out, err := decodeManifestIDs(encodeManifestIDs(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != 3 || out[0] != in[0] || out[2] != in[2] {
		t.Fatal("round trip mutated the IDs")
	}
	if _, err := decodeManifestIDs(make([]byte, chunk.IDSize+1)); !errors.Is(err, ErrProto) {
		t.Fatalf("misaligned list not rejected: %v", err)
	}
}

func TestRecipeRoundTrip(t *testing.T) {
	in := []RecipeEntry{
		{ID: chunk.Sum([]byte("r1")), Loc: Locator{Container: 3, Offset: 128, Length: 512}},
		{ID: chunk.Sum([]byte("r2"))}, // zero locator = fallback
	}
	out, err := decodeRecipe(encodeRecipe(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip mutated the recipe: %v", out)
	}
	huge := binary.BigEndian.AppendUint32(nil, 1<<27) // 2^27 * 48 bytes claimed
	if _, err := decodeRecipe(huge); !errors.Is(err, ErrProto) {
		t.Fatalf("hostile count not rejected: %v", err)
	}
	if _, err := decodeRecipe(encodeRecipe(in)[:20]); !errors.Is(err, ErrProto) {
		t.Fatalf("truncated recipe not rejected: %v", err)
	}
}

func TestChunkDataRoundTrip(t *testing.T) {
	in := [][]byte{[]byte("one"), nil, []byte("three")}
	out, err := decodeChunkData(encodeChunkData(in), len(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != 3 || string(out[0]) != "one" || len(out[1]) != 0 || string(out[2]) != "three" {
		t.Fatalf("round trip mutated the payloads: %q", out)
	}
	// The old client-side loop compared uint32(len(resp)) < n: a length
	// near 2^32 wrapped the check and panicked on the reslice.
	overflow := binary.BigEndian.AppendUint32(nil, 1<<32-2)
	overflow = append(overflow, make([]byte, 8)...)
	if _, err := decodeChunkData(overflow, 1); !errors.Is(err, ErrProto) {
		t.Fatalf("overflow length not rejected: %v", err)
	}
	if _, err := decodeChunkData(encodeChunkData(in), 4); !errors.Is(err, ErrProto) {
		t.Fatalf("short response not rejected: %v", err)
	}
	if _, err := decodeChunkData(encodeChunkData(in), 2); !errors.Is(err, ErrProto) {
		t.Fatalf("trailing payload not rejected: %v", err)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	in := Stats{
		UniqueChunks: 1, UniqueBytes: 2, LogicalBytes: 3, RawUploads: 4,
		Manifests: 5, ContainersSealed: 6, DuplicatedBytes: 7,
	}
	out, err := decodeStats(encodeStats(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out != in {
		t.Fatalf("round trip mutated stats: %+v", out)
	}
	if _, err := decodeStats(make([]byte, 55)); !errors.Is(err, ErrProto) {
		t.Fatalf("short stats not rejected: %v", err)
	}
}
