package cloudstore

import (
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"efdedup/internal/chunk"
)

// DiskStore persists chunks, containers and manifests under a directory,
// making the central store durable across restarts:
//
//	<root>/chunks/ab/abcdef....chunk   (content-addressed staging files,
//	                                    fan-out by the first ID byte)
//	<root>/containers/<%016x>.cont     (sealed locality containers)
//	<root>/manifests/<escaped name>    (sequence of 32-byte chunk IDs)
//
// Writes go through a temp file + fsync + rename + parent-dir fsync, so
// a crash never leaves a half-written object visible and a completed
// write survives power loss. The Server uses it when Config.Dir is set;
// payloads stay on disk and only the index (which IDs exist, and where
// their container copies live) is held in memory.
type DiskStore struct {
	root string
	mu   sync.Mutex // serializes manifest writes; chunk/container writes are idempotent
}

// NewDiskStore creates (if needed) the directory layout under root.
func NewDiskStore(root string) (*DiskStore, error) {
	if root == "" {
		return nil, fmt.Errorf("%w: empty disk store root", ErrConfig)
	}
	for _, dir := range []string{root, filepath.Join(root, "chunks"), filepath.Join(root, "containers"), filepath.Join(root, "manifests")} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cloudstore: create %s: %w", dir, err)
		}
	}
	return &DiskStore{root: root}, nil
}

// chunkPath returns the fan-out path of a chunk ID.
func (d *DiskStore) chunkPath(id chunk.ID) string {
	hexID := id.String()
	return filepath.Join(d.root, "chunks", hexID[:2], hexID+".chunk")
}

// containerPath returns the path of a sealed container.
func (d *DiskStore) containerPath(id uint64) string {
	return filepath.Join(d.root, "containers", fmt.Sprintf("%016x.cont", id))
}

// Manifest names are percent-escaped into single filesystem names. The
// escaper must be injective — distinct names must never share a file —
// so '%' itself is escaped (listed first: strings.Replacer is a single
// non-overlapping pass, so "%2F" in a raw name becomes "%252F", not a
// fake separator), and the unescaper decodes longest sequences before
// the bare "%25".
var (
	manifestEscaper   = strings.NewReplacer("%", "%25", "/", "%2F", "\\", "%5C", ":", "%3A")
	manifestUnescaper = strings.NewReplacer("%2F", "/", "%5C", "\\", "%3A", ":", "%25", "%")
)

// escapeName makes a manifest name filesystem-safe; unescapeName inverts
// it exactly (round-trip property-tested).
func escapeName(name string) string   { return manifestEscaper.Replace(name) }
func unescapeName(name string) string { return manifestUnescaper.Replace(name) }

func (d *DiskStore) manifestPath(name string) string {
	return filepath.Join(d.root, "manifests", escapeName(name))
}

// writeAtomic writes data to path via a temp file, fsync, rename and
// parent-directory fsync, so a crash leaves either no file or a complete
// durable one — never a truncated chunk the dedup index already points
// at, and never a rename the directory forgot.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed file survives power loss
// (the missing half of the rename protocol the fsyncrename analyzer
// checks).
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("cloudstore: sync dir %s: %w", dir, err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("cloudstore: sync dir %s: %w", dir, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("cloudstore: sync dir %s: %w", dir, err)
	}
	return nil
}

// PutChunk stores one chunk; storing an existing chunk is a cheap no-op.
func (d *DiskStore) PutChunk(id chunk.ID, data []byte) error {
	path := d.chunkPath(id)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	return writeAtomic(path, data)
}

// GetChunk reads one chunk's staged flat file, verifying its content
// address. Chunks already packed into a container have no flat file; the
// Server falls through to the container copy.
func (d *DiskStore) GetChunk(id chunk.ID) ([]byte, error) {
	data, err := os.ReadFile(d.chunkPath(id))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	if chunk.Sum(data) != id {
		return nil, fmt.Errorf("%w: chunk %s corrupt on disk", ErrCorrupt, id)
	}
	return data, nil
}

// HasChunk reports whether a chunk's staged flat file exists on disk.
func (d *DiskStore) HasChunk(id chunk.ID) bool {
	_, err := os.Stat(d.chunkPath(id))
	return err == nil
}

// RemoveChunk deletes a chunk's staged flat file (called after the chunk
// was durably sealed into a container). Best effort by design.
func (d *DiskStore) RemoveChunk(id chunk.ID) {
	_ = os.Remove(d.chunkPath(id))
}

// PutContainer durably installs one sealed container.
func (d *DiskStore) PutContainer(id uint64, data []byte) error {
	return writeAtomic(d.containerPath(id), data)
}

// GetContainer reads a sealed container's raw bytes.
func (d *DiskStore) GetContainer(id uint64) ([]byte, error) {
	data, err := os.ReadFile(d.containerPath(id))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: container %d", ErrNotFound, id)
	}
	return data, err
}

// ReadContainerRange reads one payload range out of a sealed container
// (a single chunk served without loading the whole container).
func (d *DiskStore) ReadContainerRange(id uint64, off int64, n int) ([]byte, error) {
	f, err := os.Open(d.containerPath(id))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: container %d", ErrNotFound, id)
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, off); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: container %d truncated", ErrCorrupt, id)
		}
		return nil, err
	}
	return buf, nil
}

// PutManifest stores a file's chunk sequence.
func (d *DiskStore) PutManifest(name string, ids []chunk.ID) error {
	buf := make([]byte, 0, len(ids)*chunk.IDSize)
	for _, id := range ids {
		buf = append(buf, id[:]...)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return writeAtomic(d.manifestPath(name), buf)
}

// GetManifest reads a file's chunk sequence.
func (d *DiskStore) GetManifest(name string) ([]chunk.ID, error) {
	data, err := os.ReadFile(d.manifestPath(name))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	if len(data)%chunk.IDSize != 0 {
		return nil, fmt.Errorf("%w: manifest %q corrupt on disk", ErrCorrupt, name)
	}
	ids := make([]chunk.ID, len(data)/chunk.IDSize)
	for i := range ids {
		copy(ids[i][:], data[i*chunk.IDSize:])
	}
	return ids, nil
}

// LoadIndex walks the chunk directory and returns every staged chunk ID
// with its size — used by the Server to rebuild its in-memory index and
// statistics on restart. Chunks that were packed into containers before
// the shutdown are recovered by LoadContainers instead.
func (d *DiskStore) LoadIndex() (map[chunk.ID]int64, error) {
	out := make(map[chunk.ID]int64)
	chunksDir := filepath.Join(d.root, "chunks")
	err := filepath.WalkDir(chunksDir, func(path string, entry os.DirEntry, err error) error {
		if err != nil || entry.IsDir() {
			return err
		}
		base := filepath.Base(path)
		if !strings.HasSuffix(base, ".chunk") {
			return nil
		}
		hexID := strings.TrimSuffix(base, ".chunk")
		raw, err := hex.DecodeString(hexID)
		if err != nil || len(raw) != chunk.IDSize {
			return nil // foreign file; ignore
		}
		info, err := entry.Info()
		if err != nil {
			return err
		}
		var id chunk.ID
		copy(id[:], raw)
		out[id] = info.Size()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LoadContainers scans the sealed containers and rebuilds the locator
// index: every packed chunk with its size and newest copy (the highest
// container ID wins, matching the writer's supersede rule), the
// duplicated-byte total, and the next container ID to seal as. A corrupt
// container fails the load loudly — containers are installed atomically,
// so damage is data loss, not a crash artifact.
func (d *DiskStore) LoadContainers() (loc map[chunk.ID]Locator, sizes map[chunk.ID]int64, dupBytes int64, nextID uint64, err error) {
	loc = make(map[chunk.ID]Locator)
	sizes = make(map[chunk.ID]int64)
	nextID = 1
	entries, err := os.ReadDir(filepath.Join(d.root, "containers"))
	if err != nil {
		return nil, nil, 0, 0, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".cont") || strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		var id uint64
		if _, err := fmt.Sscanf(e.Name(), "%016x.cont", &id); err != nil {
			continue // foreign file; ignore
		}
		data, err := os.ReadFile(filepath.Join(d.root, "containers", e.Name()))
		if err != nil {
			return nil, nil, 0, 0, err
		}
		perr := parseContainer(data, func(cid chunk.ID, off uint32, payload []byte) error {
			if _, dup := sizes[cid]; dup {
				dupBytes += int64(len(payload))
			} else {
				sizes[cid] = int64(len(payload))
			}
			if prev, ok := loc[cid]; !ok || id >= prev.Container {
				loc[cid] = Locator{Container: id, Offset: off, Length: uint32(len(payload))}
			}
			return nil
		})
		if perr != nil {
			return nil, nil, 0, 0, fmt.Errorf("cloudstore: load container %d: %w", id, perr)
		}
		if id >= nextID {
			nextID = id + 1
		}
	}
	return loc, sizes, dupBytes, nextID, nil
}

// ManifestNames lists stored manifest names.
func (d *DiskStore) ManifestNames() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(d.root, "manifests"))
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		names = append(names, unescapeName(e.Name()))
	}
	return names, nil
}
