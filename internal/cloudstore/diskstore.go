package cloudstore

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"efdedup/internal/chunk"
)

// DiskStore persists chunks and manifests under a directory, making the
// central store durable across restarts:
//
//	<root>/chunks/ab/abcdef....chunk   (content-addressed, fan-out by
//	                                    the first ID byte)
//	<root>/manifests/<escaped name>    (sequence of 32-byte chunk IDs)
//
// Writes go through a temp file + rename, so a crash never leaves a
// half-written object visible. The Server uses it when Config.Dir is set;
// chunks stay on disk and only the index (which IDs exist) is held in
// memory.
type DiskStore struct {
	root string
	mu   sync.Mutex // serializes manifest writes; chunk writes are idempotent
}

// NewDiskStore creates (if needed) the directory layout under root.
func NewDiskStore(root string) (*DiskStore, error) {
	if root == "" {
		return nil, fmt.Errorf("%w: empty disk store root", ErrConfig)
	}
	for _, dir := range []string{root, filepath.Join(root, "chunks"), filepath.Join(root, "manifests")} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cloudstore: create %s: %w", dir, err)
		}
	}
	return &DiskStore{root: root}, nil
}

// chunkPath returns the fan-out path of a chunk ID.
func (d *DiskStore) chunkPath(id chunk.ID) string {
	hexID := id.String()
	return filepath.Join(d.root, "chunks", hexID[:2], hexID+".chunk")
}

// escapeName makes a manifest name filesystem-safe.
func escapeName(name string) string {
	return strings.NewReplacer("/", "%2F", "\\", "%5C", ":", "%3A").Replace(name)
}

func (d *DiskStore) manifestPath(name string) string {
	return filepath.Join(d.root, "manifests", escapeName(name))
}

// writeAtomic writes data to path via a temp file, fsync and rename, so
// a crash leaves either no file or a complete one — never a truncated
// chunk the dedup index already points at.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

// PutChunk stores one chunk; storing an existing chunk is a cheap no-op.
func (d *DiskStore) PutChunk(id chunk.ID, data []byte) error {
	path := d.chunkPath(id)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	return writeAtomic(path, data)
}

// GetChunk reads one chunk, verifying its content address.
func (d *DiskStore) GetChunk(id chunk.ID) ([]byte, error) {
	data, err := os.ReadFile(d.chunkPath(id))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	if chunk.Sum(data) != id {
		return nil, fmt.Errorf("%w: chunk %s corrupt on disk", ErrCorrupt, id)
	}
	return data, nil
}

// HasChunk reports whether a chunk exists on disk.
func (d *DiskStore) HasChunk(id chunk.ID) bool {
	_, err := os.Stat(d.chunkPath(id))
	return err == nil
}

// PutManifest stores a file's chunk sequence.
func (d *DiskStore) PutManifest(name string, ids []chunk.ID) error {
	buf := make([]byte, 0, len(ids)*chunk.IDSize)
	for _, id := range ids {
		buf = append(buf, id[:]...)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return writeAtomic(d.manifestPath(name), buf)
}

// GetManifest reads a file's chunk sequence.
func (d *DiskStore) GetManifest(name string) ([]chunk.ID, error) {
	data, err := os.ReadFile(d.manifestPath(name))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	if len(data)%chunk.IDSize != 0 {
		return nil, fmt.Errorf("%w: manifest %q corrupt on disk", ErrCorrupt, name)
	}
	ids := make([]chunk.ID, len(data)/chunk.IDSize)
	for i := range ids {
		copy(ids[i][:], data[i*chunk.IDSize:])
	}
	return ids, nil
}

// LoadIndex walks the chunk directory and returns every stored chunk ID
// with its size — used by the Server to rebuild its in-memory index and
// statistics on restart.
func (d *DiskStore) LoadIndex() (map[chunk.ID]int64, error) {
	out := make(map[chunk.ID]int64)
	chunksDir := filepath.Join(d.root, "chunks")
	err := filepath.WalkDir(chunksDir, func(path string, entry os.DirEntry, err error) error {
		if err != nil || entry.IsDir() {
			return err
		}
		base := filepath.Base(path)
		if !strings.HasSuffix(base, ".chunk") {
			return nil
		}
		hexID := strings.TrimSuffix(base, ".chunk")
		raw, err := hex.DecodeString(hexID)
		if err != nil || len(raw) != chunk.IDSize {
			return nil // foreign file; ignore
		}
		info, err := entry.Info()
		if err != nil {
			return err
		}
		var id chunk.ID
		copy(id[:], raw)
		out[id] = info.Size()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ManifestNames lists stored manifest names.
func (d *DiskStore) ManifestNames() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(d.root, "manifests"))
	if err != nil {
		return nil, err
	}
	unescape := strings.NewReplacer("%2F", "/", "%5C", "\\", "%3A", ":")
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		names = append(names, unescape.Replace(e.Name()))
	}
	return names, nil
}
