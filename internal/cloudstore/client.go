package cloudstore

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"

	"efdedup/internal/chunk"
	"efdedup/internal/metrics"
	"efdedup/internal/retrypolicy"
	"efdedup/internal/transport"
)

// clientMethods are the RPCs a cloud client issues; their latency and
// failure series are pre-resolved per client so the hot path records
// without a registry lookup.
var clientMethods = []string{
	methodUpload, methodBatchUpload, methodBatchHas, methodUploadRaw,
	methodGetChunk, methodGetChunks, methodGetRecipe, methodGetContainer,
	methodPutManifest, methodGetManifest, methodStats,
}

// Dialer is the dial half of a transport network.
type Dialer interface {
	Dial(ctx context.Context, addr string) (net.Conn, error)
}

// Client talks to a cloud store over one multiplexed connection. Transport
// failures are retried under a policy and redial the connection, so a WAN
// blip does not surface to the agent; a circuit breaker fails fast while
// the cloud stays unreachable.
type Client struct {
	addr    string
	dialer  Dialer
	retrier *retrypolicy.Retrier
	breaker *retrypolicy.Breaker

	rpcLat   map[string]*metrics.Histogram
	rpcFails map[string]*metrics.Counter

	mu  sync.Mutex
	rpc *transport.Client // nil after a transport failure until redial
}

// Dial connects to the cloud store at addr with the default retry policy
// and breaker.
func Dial(ctx context.Context, d Dialer, addr string) (*Client, error) {
	return DialWithPolicy(ctx, d, addr, retrypolicy.Policy{}, retrypolicy.BreakerConfig{})
}

// DialWithPolicy connects with an explicit retry policy and breaker
// configuration. The initial dial is eager — callers learn about a
// persistently unreachable cloud immediately — but runs under the same
// retry policy as every later RPC, so a transient refusal at startup is
// absorbed rather than fatal. Later redials happen lazily per attempt.
func DialWithPolicy(ctx context.Context, d Dialer, addr string, p retrypolicy.Policy, b retrypolicy.BreakerConfig) (*Client, error) {
	reg := metrics.Default()
	c := &Client{
		addr:     addr,
		dialer:   d,
		retrier:  retrypolicy.New(p),
		breaker:  retrypolicy.NewBreaker(b),
		rpcLat:   make(map[string]*metrics.Histogram, len(clientMethods)),
		rpcFails: make(map[string]*metrics.Counter, len(clientMethods)),
	}
	for _, m := range clientMethods {
		c.rpcLat[m] = reg.DurationHistogram("cloud_client_rpc_seconds", "method", m)
		c.rpcFails[m] = reg.Counter("cloud_client_rpc_failures_total", "method", m)
	}
	reg.GaugeFunc("cloud_client_breaker_state", func() float64 {
		return float64(c.breaker.State())
	}, "addr", addr)
	err := c.retrier.Do(ctx, c.breaker, nil, transport.Retryable,
		func(actx context.Context) error {
			_, err := c.conn(actx)
			return err
		})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Breaker exposes the client's circuit breaker state (for stats and the
// agent's recovery probing).
func (c *Client) Breaker() *retrypolicy.Breaker { return c.breaker }

// Close releases the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	rpc := c.rpc
	c.rpc = nil
	c.mu.Unlock()
	if rpc == nil {
		return nil
	}
	return rpc.Close()
}

// conn returns the live connection, redialing if the last one was dropped.
func (c *Client) conn(ctx context.Context) (*transport.Client, error) {
	c.mu.Lock()
	rpc := c.rpc
	c.mu.Unlock()
	if rpc != nil {
		return rpc, nil
	}
	raw, err := c.dialer.Dial(ctx, c.addr)
	if err != nil {
		return nil, fmt.Errorf("cloudstore: dial %s: %w", c.addr, err)
	}
	c.mu.Lock()
	if c.rpc != nil { // lost a redial race; keep the winner
		winner := c.rpc
		c.mu.Unlock()
		raw.Close()
		return winner, nil
	}
	rpc = transport.NewClient(raw)
	c.rpc = rpc
	c.mu.Unlock()
	return rpc, nil
}

// drop discards a failed connection so the next attempt redials. Only the
// exact connection that failed is dropped, so a concurrent redial's fresh
// connection survives.
func (c *Client) drop(rpc *transport.Client) {
	c.mu.Lock()
	if c.rpc == rpc {
		c.rpc = nil
	}
	c.mu.Unlock()
	rpc.Close()
}

// call issues one RPC under the retry policy and breaker. Application
// errors (RemoteError) return immediately; transport failures drop the
// connection and retry over a fresh dial.
func (c *Client) call(ctx context.Context, method string, body []byte) ([]byte, error) {
	sp := metrics.StartTimer(c.rpcLat[method])
	var resp []byte
	err := c.retrier.Do(ctx, c.breaker, nil, transport.Retryable,
		func(actx context.Context) error {
			rpc, err := c.conn(actx)
			if err != nil {
				return err
			}
			r, err := rpc.Call(actx, method, body)
			if err != nil {
				if !transport.IsRemoteError(err) {
					c.drop(rpc)
				}
				return err
			}
			resp = r
			return nil
		})
	sp.End()
	if err != nil && !transport.IsRemoteError(err) {
		c.rpcFails[method].Inc()
	}
	return resp, err
}

// Upload stores one chunk, returning whether the cloud had not seen it.
func (c *Client) Upload(ctx context.Context, ck chunk.Chunk) (fresh bool, err error) {
	resp, err := c.call(ctx, methodUpload, encodeChunkFrame(ck))
	if err != nil {
		return false, err
	}
	return len(resp) == 1 && resp[0] == 1, nil
}

// BatchUpload stores many chunks in one RPC and returns how many were new.
func (c *Client) BatchUpload(ctx context.Context, chunks []chunk.Chunk) (stored int, err error) {
	resp, err := c.call(ctx, methodBatchUpload, encodeChunkList(chunks))
	if err != nil {
		return 0, err
	}
	if len(resp) != 4 {
		return 0, fmt.Errorf("%w: malformed batch upload response", ErrProto)
	}
	return int(binary.BigEndian.Uint32(resp)), nil
}

// BatchHas asks the cloud's global index which of the given chunk IDs it
// already stores (the cloud-assisted lookup path).
func (c *Client) BatchHas(ctx context.Context, ids []chunk.ID) ([]bool, error) {
	resp, err := c.call(ctx, methodBatchHas, encodeIDList(ids))
	if err != nil {
		return nil, err
	}
	if len(resp) != len(ids) {
		return nil, fmt.Errorf("%w: malformed has response", ErrProto)
	}
	out := make([]bool, len(ids))
	for i, b := range resp {
		out[i] = b == 1
	}
	return out, nil
}

// UploadRaw ships an entire stream to the cloud (cloud-only mode); the
// server chunks and deduplicates it and records a manifest under name.
func (c *Client) UploadRaw(ctx context.Context, name string, data []byte) (storedChunks int, err error) {
	body, err := encodeNamedBlob(name, data)
	if err != nil {
		return 0, err
	}
	resp, err := c.call(ctx, methodUploadRaw, body)
	if err != nil {
		return 0, classifyRemote(err)
	}
	if len(resp) != 4 {
		return 0, fmt.Errorf("%w: malformed raw upload response", ErrProto)
	}
	return int(binary.BigEndian.Uint32(resp)), nil
}

// GetChunk fetches one chunk's payload.
func (c *Client) GetChunk(ctx context.Context, id chunk.ID) ([]byte, error) {
	resp, err := c.call(ctx, methodGetChunk, id[:])
	if err != nil {
		if isRemoteNotFound(err) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	return resp, nil
}

// PutManifest records the chunk sequence of a named file.
func (c *Client) PutManifest(ctx context.Context, name string, ids []chunk.ID) error {
	body, err := encodeNamedBlob(name, encodeManifestIDs(ids))
	if err != nil {
		return err
	}
	_, err = c.call(ctx, methodPutManifest, body)
	return classifyRemote(err)
}

// GetManifest returns the chunk sequence of a named file.
func (c *Client) GetManifest(ctx context.Context, name string) ([]chunk.ID, error) {
	resp, err := c.call(ctx, methodGetManifest, []byte(name))
	if err != nil {
		if isRemoteNotFound(err) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	ids, err := decodeManifestIDs(resp)
	if err != nil {
		return nil, fmt.Errorf("cloudstore: manifest response: %w", err)
	}
	return ids, nil
}

// FetchStats retrieves the server's counters.
func (c *Client) FetchStats(ctx context.Context) (Stats, error) {
	resp, err := c.call(ctx, methodStats, nil)
	if err != nil {
		return Stats{}, err
	}
	return decodeStats(resp)
}

func isRemoteNotFound(err error) bool {
	var remote *transport.RemoteError
	return errors.As(err, &remote) && remote.Msg == ErrNotFound.Error()
}

// classifyRemote maps a server-side application error back onto the
// package sentinels so callers can errors.Is across the RPC boundary:
// remote not-found becomes ErrNotFound, and remote integrity failures
// (whose messages carry the offending container) wrap ErrCorrupt.
func classifyRemote(err error) error {
	var remote *transport.RemoteError
	if !errors.As(err, &remote) {
		return err
	}
	if remote.Msg == ErrNotFound.Error() || strings.HasSuffix(remote.Msg, ": "+ErrNotFound.Error()) ||
		strings.HasPrefix(remote.Msg, ErrNotFound.Error()+":") {
		return fmt.Errorf("%w: %s", ErrNotFound, remote.Msg)
	}
	if strings.Contains(remote.Msg, ErrCorrupt.Error()) {
		return fmt.Errorf("%w: %s", ErrCorrupt, remote.Msg)
	}
	if strings.Contains(remote.Msg, ErrProto.Error()) {
		return fmt.Errorf("%w: %s", ErrProto, remote.Msg)
	}
	return err
}
