// Package cloudstore implements the central cloud of EF-dedup: a
// content-addressed chunk store with a global deduplication index and a
// file-manifest catalog, served over the transport RPC protocol.
//
// Three client roles use it (paper Sec. V-A):
//
//   - EF-dedup agents upload only the chunks their D2-ring identified as
//     unique (Upload / BatchUpload);
//   - Cloud-assisted agents keep no edge index: they probe the cloud's
//     global index (BatchHas) and upload misses;
//   - Cloud-only agents ship raw data (UploadRaw); the cloud chunks and
//     deduplicates server-side.
//
// Manifests map a file name to its chunk sequence so any stored stream
// can be restored and verified end to end. On the read side, fresh
// chunks are packed in upload order into locality-preserving containers
// (container.go); restores fetch whole containers through a read-ahead
// cache instead of one RPC per chunk.
package cloudstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"

	"efdedup/internal/chunk"
	"efdedup/internal/metrics"
	"efdedup/internal/transport"
)

// RPC method names served by the cloud store.
const (
	methodUpload       = "cloud.upload"
	methodBatchUpload  = "cloud.batchupload"
	methodBatchHas     = "cloud.batchhas"
	methodUploadRaw    = "cloud.uploadraw"
	methodGetChunk     = "cloud.getchunk"
	methodGetChunks    = "cloud.getchunks"
	methodGetRecipe    = "cloud.getrecipe"
	methodGetContainer = "cloud.getcontainer"
	methodPutManifest  = "cloud.putmanifest"
	methodGetManifest  = "cloud.getmanifest"
	methodStats        = "cloud.stats"
)

// ErrNotFound is returned for missing chunks or manifests.
var ErrNotFound = errors.New("cloudstore: not found")

// ErrProto marks malformed or truncated request/response payloads:
// decode failures that re-sending the same bytes cannot fix.
var ErrProto = errors.New("cloudstore: protocol error")

// ErrCorrupt marks integrity failures — stored or transmitted bytes no
// longer hash to their chunk ID. Restore paths treat it as data loss,
// not as a transient fault to retry.
var ErrCorrupt = errors.New("cloudstore: corrupt data")

// ErrConfig marks invalid store construction or disk addressing.
var ErrConfig = errors.New("cloudstore: invalid configuration")

// ErrDegraded marks operations refused because too few erasure-set
// disks are up to guarantee durability.
var ErrDegraded = errors.New("cloudstore: too few disks up")

// Stats summarizes what the cloud has seen and stored.
type Stats struct {
	// UniqueChunks and UniqueBytes describe the deduplicated store.
	UniqueChunks int64
	UniqueBytes  int64
	// LogicalBytes counts all payload bytes clients asked the cloud to
	// store (before deduplication), including raw uploads.
	LogicalBytes int64
	// RawUploads counts UploadRaw calls (cloud-only clients).
	RawUploads int64
	// Manifests counts stored file manifests.
	Manifests int64
	// ContainersSealed counts sealed locality containers.
	ContainersSealed int64
	// DuplicatedBytes counts selective-duplication bytes spent packing
	// hot shared chunks near their new neighbours (capped by
	// Config.DupFraction).
	DuplicatedBytes int64
}

// Server is the central cloud store.
type Server struct {
	chunker chunk.Chunker

	mu        sync.RWMutex
	chunks    map[chunk.ID][]byte // in-memory payloads (nil values when disk-backed)
	manifests map[string][]chunk.ID
	disk      *DiskStore // nil for the in-memory store
	stats     Stats

	containers *containerStore

	rpc      *transport.Server
	listener net.Listener
}

// Config configures the cloud store.
type Config struct {
	// Chunker is used to split raw (cloud-only) uploads. Defaults to an
	// 8 KiB fixed chunker, matching the edge agents.
	Chunker chunk.Chunker
	// Dir, when set, persists chunks, containers and manifests under
	// this directory (content-addressed files with atomic writes); the
	// server rebuilds its index from disk on startup. Empty keeps
	// everything in memory.
	Dir string
	// ContainerBytes is the target sealed-container size. Defaults to
	// DefaultContainerBytes (4 MiB).
	ContainerBytes int
	// DupFraction caps selective-duplication bytes at this fraction of
	// the unique bytes packed into containers. Zero disables
	// duplication entirely; the default is applied only when the field
	// is negative-or-unset via DefaultConfig semantics — pass
	// DefaultDupFraction explicitly to opt in.
	DupFraction float64
	// SparseRefLimit marks a container as fragmenting for a manifest
	// that references it for at most this many chunks. Defaults to
	// DefaultSparseRefLimit.
	SparseRefLimit int
}

// NewServer builds an empty cloud store.
func NewServer(cfg Config) (*Server, error) {
	c := cfg.Chunker
	if c == nil {
		fc, err := chunk.NewFixedChunker(chunk.DefaultFixedSize)
		if err != nil {
			return nil, err
		}
		c = fc
	}
	s := &Server{
		chunker:   c,
		chunks:    make(map[chunk.ID][]byte),
		manifests: make(map[string][]chunk.ID),
		rpc:       transport.NewServer(),
	}
	startID := uint64(1)
	if cfg.Dir != "" {
		disk, err := NewDiskStore(cfg.Dir)
		if err != nil {
			return nil, err
		}
		s.disk = disk
		// Rebuild the index and counters from what is already on disk:
		// staged flat chunk files plus every chunk packed into a sealed
		// container.
		index, err := disk.LoadIndex()
		if err != nil {
			return nil, fmt.Errorf("cloudstore: rebuild index: %w", err)
		}
		loc, packedSizes, dupBytes, nextID, err := disk.LoadContainers()
		if err != nil {
			return nil, fmt.Errorf("cloudstore: rebuild containers: %w", err)
		}
		startID = nextID
		var packedUnique int64
		for id, size := range packedSizes {
			packedUnique += size
			if _, ok := index[id]; !ok {
				index[id] = size
			}
		}
		for id, size := range index {
			s.chunks[id] = nil // presence marker; payload stays on disk
			s.stats.UniqueChunks++
			s.stats.UniqueBytes += size
		}
		s.stats.ContainersSealed = int64(startID - 1)
		s.stats.DuplicatedBytes = dupBytes
		s.containers = newContainerStore(disk, cfg.ContainerBytes, cfg.DupFraction, cfg.SparseRefLimit, startID)
		s.containers.restoreLocators(loc, packedUnique, dupBytes)
		names, err := disk.ManifestNames()
		if err != nil {
			return nil, fmt.Errorf("cloudstore: list manifests: %w", err)
		}
		for _, name := range names {
			ids, err := disk.GetManifest(name)
			if err != nil {
				return nil, err
			}
			s.manifests[name] = ids
			s.stats.Manifests++
		}
	} else {
		s.containers = newContainerStore(nil, cfg.ContainerBytes, cfg.DupFraction, cfg.SparseRefLimit, startID)
	}
	s.handle(methodUpload, s.handleUpload)
	s.handle(methodBatchUpload, s.handleBatchUpload)
	s.handle(methodBatchHas, s.handleBatchHas)
	s.handle(methodUploadRaw, s.handleUploadRaw)
	s.handle(methodGetChunk, s.handleGetChunk)
	s.handle(methodGetChunks, s.handleGetChunks)
	s.handle(methodGetRecipe, s.handleGetRecipe)
	s.handle(methodGetContainer, s.handleGetContainer)
	s.handle(methodPutManifest, s.handlePutManifest)
	s.handle(methodGetManifest, s.handleGetManifest)
	s.handle(methodStats, s.handleStats)
	reg := metrics.Default()
	reg.GaugeFunc("cloud_server_unique_chunks", func() float64 {
		return float64(s.Stats().UniqueChunks)
	})
	reg.GaugeFunc("cloud_server_unique_bytes", func() float64 {
		return float64(s.Stats().UniqueBytes)
	})
	reg.GaugeFunc("cloud_server_manifests", func() float64 {
		return float64(s.Stats().Manifests)
	})
	return s, nil
}

// handle registers a handler wrapped with serve-latency and failure
// instrumentation (the cloud half of the upload path Fig. 5a measures).
func (s *Server) handle(method string, h func([]byte) ([]byte, error)) {
	reg := metrics.Default()
	hist := reg.DurationHistogram("cloud_server_rpc_seconds", "method", method)
	fails := reg.Counter("cloud_server_rpc_failures_total", "method", method)
	s.rpc.Handle(method, func(body []byte) ([]byte, error) {
		sp := metrics.StartTimer(hist)
		resp, err := h(body)
		sp.End()
		if err != nil && !errors.Is(err, ErrNotFound) {
			fails.Inc()
		}
		return resp, err
	})
}

// Serve starts accepting connections on l in the background.
func (s *Server) Serve(l net.Listener) {
	s.listener = l
	go s.rpc.Serve(l) //nolint:errcheck // returns on Close
}

// Addr returns the listen address, or "" before Serve.
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Close stops the server, sealing the open container so restarts serve
// recent chunks with container locality immediately.
func (s *Server) Close() error {
	s.FlushContainers()
	return s.rpc.Close()
}

// FlushContainers seals the open container regardless of fill level
// (tests and benchmarks use it to make packing deterministic; Close
// calls it on shutdown).
func (s *Server) FlushContainers() {
	s.containers.flush()
	sealed, dup := s.containers.statsSnapshot()
	s.mu.Lock()
	s.stats.ContainersSealed = sealed
	s.stats.DuplicatedBytes = dup
	s.mu.Unlock()
}

// Stats returns a snapshot of the store's counters.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	st := s.stats
	s.mu.RUnlock()
	st.ContainersSealed, st.DuplicatedBytes = s.containers.statsSnapshot()
	return st
}

// validManifestName rejects names that cannot be stored or would alias
// filesystem traversal entries. The empty name is rejected here; raw
// uploads treat "" as "no manifest" and skip validation entirely.
func validManifestName(name string) error {
	switch name {
	case "", ".", "..":
		return fmt.Errorf("%w: invalid manifest name %q", ErrProto, name)
	}
	return nil
}

// storeChunk inserts data under its ID, returning whether it was new.
// Durability order: the staged flat file first (the acknowledgement
// hinges on it), then the in-memory index, then the locality container
// (whose sealing supersedes the flat file).
func (s *Server) storeChunk(id chunk.ID, data []byte) bool {
	s.mu.Lock()
	s.stats.LogicalBytes += int64(len(data))
	if _, ok := s.chunks[id]; ok {
		s.mu.Unlock()
		return false
	}
	if s.disk != nil {
		if err := s.disk.PutChunk(id, data); err != nil {
			// Persistence failure: do not record the chunk as stored.
			s.mu.Unlock()
			return false
		}
		s.chunks[id] = nil
	} else {
		cp := make([]byte, len(data))
		copy(cp, data)
		s.chunks[id] = cp
	}
	s.stats.UniqueChunks++
	s.stats.UniqueBytes += int64(len(data))
	s.mu.Unlock()
	s.containers.append(id, data, false)
	return true
}

// chunkData reads one chunk payload from wherever its current copy
// lives: the in-memory map, the staged flat file, or a sealed container.
func (s *Server) chunkData(id chunk.ID) ([]byte, error) {
	s.mu.RLock()
	data, ok := s.chunks[id]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	if data != nil || s.disk == nil {
		if data == nil {
			return nil, fmt.Errorf("%w: chunk %s lost from memory store", ErrCorrupt, id)
		}
		return data, nil
	}
	payload, err := s.disk.GetChunk(id)
	if errors.Is(err, ErrNotFound) {
		// The flat file was superseded by a sealed container copy.
		return s.containers.readChunk(id)
	}
	return payload, err
}

// repackSparse applies bounded selective duplication after a manifest is
// stored: chunks this manifest references in containers it touches only
// sparsely are copied into the open container, so future restores of
// this stream (and its successors) read dense containers instead of a
// few chunks from each of many old ones.
func (s *Server) repackSparse(ids []chunk.ID) {
	if s.containers.dupFraction <= 0 || len(ids) == 0 {
		return
	}
	sparse := s.containers.sparseContainers(ids)
	if len(sparse) == 0 {
		return
	}
	repacked := make(map[chunk.ID]bool)
	for _, id := range ids {
		if repacked[id] {
			continue
		}
		loc, ok := s.containers.locate(id)
		if !ok || !sparse[loc.Container] {
			continue
		}
		data, err := s.chunkData(id)
		if err != nil {
			continue // unreadable copies are a restore-time problem, not a packing one
		}
		if !s.containers.append(id, data, true) {
			return // duplication budget exhausted
		}
		repacked[id] = true
	}
}

// --- handlers ----------------------------------------------------------

// upload body: 32-byte ID | payload. Verifies content addressing.
func (s *Server) handleUpload(body []byte) ([]byte, error) {
	id, data, err := decodeChunkFrame(body)
	if err != nil {
		return nil, err
	}
	if chunk.Sum(data) != id {
		return nil, fmt.Errorf("%w: chunk content does not match its ID", ErrCorrupt)
	}
	fresh := s.storeChunk(id, data)
	if fresh {
		return []byte{1}, nil
	}
	return []byte{0}, nil
}

// batch upload body: u32 count | (32-byte ID | u32 len | payload)*.
func (s *Server) handleBatchUpload(body []byte) ([]byte, error) {
	chunks, err := decodeChunkList(body)
	if err != nil {
		return nil, err
	}
	stored := uint32(0)
	for i, ck := range chunks {
		if chunk.Sum(ck.Data) != ck.ID {
			return nil, fmt.Errorf("%w: batch record %d content mismatch", ErrCorrupt, i)
		}
		if s.storeChunk(ck.ID, ck.Data) {
			stored++
		}
	}
	return binary.BigEndian.AppendUint32(nil, stored), nil
}

// batchhas body: u32 count | (32-byte ID)*; response: one byte per ID.
func (s *Server) handleBatchHas(body []byte) ([]byte, error) {
	ids, err := decodeIDList(body)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(ids))
	s.mu.RLock()
	for i, id := range ids {
		if _, ok := s.chunks[id]; ok {
			out[i] = 1
		}
	}
	s.mu.RUnlock()
	return out, nil
}

// uploadraw body: u16 name length | name | payload. The server chunks and
// deduplicates; the response is u32 unique-chunks-stored.
func (s *Server) handleUploadRaw(body []byte) ([]byte, error) {
	name, payload, err := decodeNamedBlob(body)
	if err != nil {
		return nil, err
	}
	if name != "" {
		if err := validManifestName(name); err != nil {
			return nil, err
		}
	}

	var ids []chunk.ID
	stored := uint32(0)
	chunks, err := chunk.SplitBytes(s.chunker, payload)
	if err != nil {
		return nil, err
	}
	for _, c := range chunks {
		if s.storeChunk(c.ID, c.Data) {
			stored++
		}
		ids = append(ids, c.ID)
	}
	// Durable-first: the manifest must hit disk before the in-memory
	// catalog advertises it, or a failed write leaves the server claiming
	// a manifest a restart will not have. One named block keeps the
	// persist and the catalog update on the same guarded path.
	if name != "" {
		if s.disk != nil {
			if err := s.disk.PutManifest(name, ids); err != nil {
				return nil, fmt.Errorf("cloudstore: persist manifest %q: %w", name, err)
			}
		}
		s.mu.Lock()
		s.stats.RawUploads++
		if _, ok := s.manifests[name]; !ok {
			s.stats.Manifests++
		}
		s.manifests[name] = ids
		s.mu.Unlock()
		s.repackSparse(ids)
	} else {
		s.mu.Lock()
		s.stats.RawUploads++
		s.mu.Unlock()
	}
	return binary.BigEndian.AppendUint32(nil, stored), nil
}

func (s *Server) handleGetChunk(body []byte) ([]byte, error) {
	if len(body) != chunk.IDSize {
		return nil, fmt.Errorf("%w: bad chunk ID length", ErrProto)
	}
	var id chunk.ID
	copy(id[:], body)
	return s.chunkData(id)
}

// getchunks body: u32 count | (32-byte ID)*; response: (u32 len |
// payload)* in request order. The batched fallback for chunks that are
// not (yet) in any sealed container.
func (s *Server) handleGetChunks(body []byte) ([]byte, error) {
	ids, err := decodeIDList(body)
	if err != nil {
		return nil, err
	}
	payloads := make([][]byte, 0, len(ids))
	for _, id := range ids {
		data, err := s.chunkData(id)
		if err != nil {
			return nil, fmt.Errorf("chunk %s: %w", id, err)
		}
		payloads = append(payloads, data)
	}
	return encodeChunkData(payloads), nil
}

// getrecipe body: manifest name; response: u32 count | per chunk:
// 32-byte ID | u64 container | u32 offset | u32 length. Container 0
// means "no sealed copy" — the client falls back to getchunks.
func (s *Server) handleGetRecipe(body []byte) ([]byte, error) {
	s.mu.RLock()
	ids, ok := s.manifests[string(body)]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	entries := make([]RecipeEntry, len(ids))
	for i, id := range ids {
		entries[i].ID = id
		entries[i].Loc, _ = s.containers.locate(id) // zero value = fallback
	}
	return encodeRecipe(entries), nil
}

// getcontainer body: u64 container ID; response: the container's raw
// CRC-framed bytes. One RPC returns every chunk the container packs —
// the batched unit of the restore path.
func (s *Server) handleGetContainer(body []byte) ([]byte, error) {
	if len(body) != 8 {
		return nil, fmt.Errorf("%w: bad container ID length", ErrProto)
	}
	return s.containers.containerBytes(binary.BigEndian.Uint64(body))
}

// putmanifest body: u16 name length | name | (32-byte ID)*.
func (s *Server) handlePutManifest(body []byte) ([]byte, error) {
	name, rest, err := decodeNamedBlob(body)
	if err != nil {
		return nil, err
	}
	if err := validManifestName(name); err != nil {
		return nil, err
	}
	ids, err := decodeManifestIDs(rest)
	if err != nil {
		return nil, fmt.Errorf("manifest %q: %w", name, err)
	}
	// Durable-first, then memory: a manifest the disk refused must never
	// be advertised from the in-memory catalog (the same ordering bug
	// kvstore handlePutNX had — apply, then fail to log — in reverse).
	if s.disk != nil {
		if err := s.disk.PutManifest(name, ids); err != nil {
			return nil, fmt.Errorf("cloudstore: persist manifest %q: %w", name, err)
		}
	}
	s.mu.Lock()
	if _, ok := s.manifests[name]; !ok {
		s.stats.Manifests++
	}
	s.manifests[name] = ids
	s.mu.Unlock()
	s.repackSparse(ids)
	return nil, nil
}

func (s *Server) handleGetManifest(body []byte) ([]byte, error) {
	s.mu.RLock()
	ids, ok := s.manifests[string(body)]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	return encodeManifestIDs(ids), nil
}

func (s *Server) handleStats([]byte) ([]byte, error) {
	return encodeStats(s.Stats()), nil
}
