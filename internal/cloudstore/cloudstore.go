// Package cloudstore implements the central cloud of EF-dedup: a
// content-addressed chunk store with a global deduplication index and a
// file-manifest catalog, served over the transport RPC protocol.
//
// Three client roles use it (paper Sec. V-A):
//
//   - EF-dedup agents upload only the chunks their D2-ring identified as
//     unique (Upload / BatchUpload);
//   - Cloud-assisted agents keep no edge index: they probe the cloud's
//     global index (BatchHas) and upload misses;
//   - Cloud-only agents ship raw data (UploadRaw); the cloud chunks and
//     deduplicates server-side.
//
// Manifests map a file name to its chunk sequence so any stored stream can
// be restored and verified end to end.
package cloudstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"

	"efdedup/internal/chunk"
	"efdedup/internal/metrics"
	"efdedup/internal/transport"
)

// RPC method names served by the cloud store.
const (
	methodUpload      = "cloud.upload"
	methodBatchUpload = "cloud.batchupload"
	methodBatchHas    = "cloud.batchhas"
	methodUploadRaw   = "cloud.uploadraw"
	methodGetChunk    = "cloud.getchunk"
	methodPutManifest = "cloud.putmanifest"
	methodGetManifest = "cloud.getmanifest"
	methodStats       = "cloud.stats"
)

// ErrNotFound is returned for missing chunks or manifests.
var ErrNotFound = errors.New("cloudstore: not found")

// ErrProto marks malformed or truncated request/response payloads:
// decode failures that re-sending the same bytes cannot fix.
var ErrProto = errors.New("cloudstore: protocol error")

// ErrCorrupt marks integrity failures — stored or transmitted bytes no
// longer hash to their chunk ID. Restore paths treat it as data loss,
// not as a transient fault to retry.
var ErrCorrupt = errors.New("cloudstore: corrupt data")

// ErrConfig marks invalid store construction or disk addressing.
var ErrConfig = errors.New("cloudstore: invalid configuration")

// ErrDegraded marks operations refused because too few erasure-set
// disks are up to guarantee durability.
var ErrDegraded = errors.New("cloudstore: too few disks up")

// Stats summarizes what the cloud has seen and stored.
type Stats struct {
	// UniqueChunks and UniqueBytes describe the deduplicated store.
	UniqueChunks int64
	UniqueBytes  int64
	// LogicalBytes counts all payload bytes clients asked the cloud to
	// store (before deduplication), including raw uploads.
	LogicalBytes int64
	// RawUploads counts UploadRaw calls (cloud-only clients).
	RawUploads int64
	// Manifests counts stored file manifests.
	Manifests int64
}

// Server is the central cloud store.
type Server struct {
	chunker chunk.Chunker

	mu        sync.RWMutex
	chunks    map[chunk.ID][]byte // in-memory payloads (nil values when disk-backed)
	manifests map[string][]chunk.ID
	disk      *DiskStore // nil for the in-memory store
	stats     Stats

	rpc      *transport.Server
	listener net.Listener
}

// Config configures the cloud store.
type Config struct {
	// Chunker is used to split raw (cloud-only) uploads. Defaults to an
	// 8 KiB fixed chunker, matching the edge agents.
	Chunker chunk.Chunker
	// Dir, when set, persists chunks and manifests under this directory
	// (content-addressed files with atomic writes); the server rebuilds
	// its index from disk on startup. Empty keeps everything in memory.
	Dir string
}

// NewServer builds an empty cloud store.
func NewServer(cfg Config) (*Server, error) {
	c := cfg.Chunker
	if c == nil {
		fc, err := chunk.NewFixedChunker(chunk.DefaultFixedSize)
		if err != nil {
			return nil, err
		}
		c = fc
	}
	s := &Server{
		chunker:   c,
		chunks:    make(map[chunk.ID][]byte),
		manifests: make(map[string][]chunk.ID),
		rpc:       transport.NewServer(),
	}
	if cfg.Dir != "" {
		disk, err := NewDiskStore(cfg.Dir)
		if err != nil {
			return nil, err
		}
		s.disk = disk
		// Rebuild the index and counters from what is already on disk.
		index, err := disk.LoadIndex()
		if err != nil {
			return nil, fmt.Errorf("cloudstore: rebuild index: %w", err)
		}
		for id, size := range index {
			s.chunks[id] = nil // presence marker; payload stays on disk
			s.stats.UniqueChunks++
			s.stats.UniqueBytes += size
		}
		names, err := disk.ManifestNames()
		if err != nil {
			return nil, fmt.Errorf("cloudstore: list manifests: %w", err)
		}
		for _, name := range names {
			ids, err := disk.GetManifest(name)
			if err != nil {
				return nil, err
			}
			s.manifests[name] = ids
			s.stats.Manifests++
		}
	}
	s.handle(methodUpload, s.handleUpload)
	s.handle(methodBatchUpload, s.handleBatchUpload)
	s.handle(methodBatchHas, s.handleBatchHas)
	s.handle(methodUploadRaw, s.handleUploadRaw)
	s.handle(methodGetChunk, s.handleGetChunk)
	s.handle(methodPutManifest, s.handlePutManifest)
	s.handle(methodGetManifest, s.handleGetManifest)
	s.handle(methodStats, s.handleStats)
	reg := metrics.Default()
	reg.GaugeFunc("cloud_server_unique_chunks", func() float64 {
		return float64(s.Stats().UniqueChunks)
	})
	reg.GaugeFunc("cloud_server_unique_bytes", func() float64 {
		return float64(s.Stats().UniqueBytes)
	})
	reg.GaugeFunc("cloud_server_manifests", func() float64 {
		return float64(s.Stats().Manifests)
	})
	return s, nil
}

// handle registers a handler wrapped with serve-latency and failure
// instrumentation (the cloud half of the upload path Fig. 5a measures).
func (s *Server) handle(method string, h func([]byte) ([]byte, error)) {
	reg := metrics.Default()
	hist := reg.DurationHistogram("cloud_server_rpc_seconds", "method", method)
	fails := reg.Counter("cloud_server_rpc_failures_total", "method", method)
	s.rpc.Handle(method, func(body []byte) ([]byte, error) {
		sp := metrics.StartTimer(hist)
		resp, err := h(body)
		sp.End()
		if err != nil && !errors.Is(err, ErrNotFound) {
			fails.Inc()
		}
		return resp, err
	})
}

// Serve starts accepting connections on l in the background.
func (s *Server) Serve(l net.Listener) {
	s.listener = l
	go s.rpc.Serve(l) //nolint:errcheck // returns on Close
}

// Addr returns the listen address, or "" before Serve.
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Close stops the server.
func (s *Server) Close() error { return s.rpc.Close() }

// Stats returns a snapshot of the store's counters.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// storeChunk inserts data under its ID, returning whether it was new.
func (s *Server) storeChunk(id chunk.ID, data []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.LogicalBytes += int64(len(data))
	if _, ok := s.chunks[id]; ok {
		return false
	}
	if s.disk != nil {
		if err := s.disk.PutChunk(id, data); err != nil {
			// Persistence failure: do not record the chunk as stored.
			return false
		}
		s.chunks[id] = nil
	} else {
		cp := make([]byte, len(data))
		copy(cp, data)
		s.chunks[id] = cp
	}
	s.stats.UniqueChunks++
	s.stats.UniqueBytes += int64(len(data))
	return true
}

// --- handlers ----------------------------------------------------------

// upload body: 32-byte ID | payload. Verifies content addressing.
func (s *Server) handleUpload(body []byte) ([]byte, error) {
	if len(body) < chunk.IDSize {
		return nil, fmt.Errorf("%w: short upload", ErrProto)
	}
	var id chunk.ID
	copy(id[:], body[:chunk.IDSize])
	data := body[chunk.IDSize:]
	if chunk.Sum(data) != id {
		return nil, fmt.Errorf("%w: chunk content does not match its ID", ErrCorrupt)
	}
	fresh := s.storeChunk(id, data)
	if fresh {
		return []byte{1}, nil
	}
	return []byte{0}, nil
}

// batch upload body: u32 count | (32-byte ID | u32 len | payload)*.
func (s *Server) handleBatchUpload(body []byte) ([]byte, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: truncated batch upload", ErrProto)
	}
	count := binary.BigEndian.Uint32(body)
	src := body[4:]
	stored := uint32(0)
	for i := uint32(0); i < count; i++ {
		if len(src) < chunk.IDSize+4 {
			return nil, fmt.Errorf("%w: truncated batch record %d", ErrProto, i)
		}
		var id chunk.ID
		copy(id[:], src[:chunk.IDSize])
		n := binary.BigEndian.Uint32(src[chunk.IDSize:])
		src = src[chunk.IDSize+4:]
		if uint32(len(src)) < n {
			return nil, fmt.Errorf("%w: truncated batch payload %d", ErrProto, i)
		}
		data := src[:n]
		src = src[n:]
		if chunk.Sum(data) != id {
			return nil, fmt.Errorf("%w: batch record %d content mismatch", ErrCorrupt, i)
		}
		if s.storeChunk(id, data) {
			stored++
		}
	}
	return binary.BigEndian.AppendUint32(nil, stored), nil
}

// batchhas body: u32 count | (32-byte ID)*; response: one byte per ID.
func (s *Server) handleBatchHas(body []byte) ([]byte, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: truncated has request", ErrProto)
	}
	count := binary.BigEndian.Uint32(body)
	src := body[4:]
	// 64-bit math: count*IDSize overflows uint32 for hostile counts.
	if uint64(len(src)) < uint64(count)*chunk.IDSize {
		return nil, fmt.Errorf("%w: truncated ID list", ErrProto)
	}
	out := make([]byte, count)
	s.mu.RLock()
	for i := uint32(0); i < count; i++ {
		var id chunk.ID
		copy(id[:], src[i*chunk.IDSize:])
		if _, ok := s.chunks[id]; ok {
			out[i] = 1
		}
	}
	s.mu.RUnlock()
	return out, nil
}

// uploadraw body: u16 name length | name | payload. The server chunks and
// deduplicates; the response is u32 unique-chunks-stored.
func (s *Server) handleUploadRaw(body []byte) ([]byte, error) {
	if len(body) < 2 {
		return nil, fmt.Errorf("%w: truncated raw upload", ErrProto)
	}
	nameLen := int(binary.BigEndian.Uint16(body))
	if len(body) < 2+nameLen {
		return nil, fmt.Errorf("%w: truncated raw upload name", ErrProto)
	}
	name := string(body[2 : 2+nameLen])
	payload := body[2+nameLen:]

	var ids []chunk.ID
	stored := uint32(0)
	chunks, err := chunk.SplitBytes(s.chunker, payload)
	if err != nil {
		return nil, err
	}
	for _, c := range chunks {
		if s.storeChunk(c.ID, c.Data) {
			stored++
		}
		ids = append(ids, c.ID)
	}
	s.mu.Lock()
	s.stats.RawUploads++
	if name != "" {
		if _, ok := s.manifests[name]; !ok {
			s.stats.Manifests++
		}
		s.manifests[name] = ids
	}
	s.mu.Unlock()
	if s.disk != nil && name != "" {
		if err := s.disk.PutManifest(name, ids); err != nil {
			return nil, err
		}
	}
	return binary.BigEndian.AppendUint32(nil, stored), nil
}

func (s *Server) handleGetChunk(body []byte) ([]byte, error) {
	if len(body) != chunk.IDSize {
		return nil, fmt.Errorf("%w: bad chunk ID length", ErrProto)
	}
	var id chunk.ID
	copy(id[:], body)
	s.mu.RLock()
	data, ok := s.chunks[id]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	if data == nil && s.disk != nil {
		return s.disk.GetChunk(id)
	}
	return data, nil
}

// putmanifest body: u16 name length | name | (32-byte ID)*.
func (s *Server) handlePutManifest(body []byte) ([]byte, error) {
	if len(body) < 2 {
		return nil, fmt.Errorf("%w: truncated manifest", ErrProto)
	}
	nameLen := int(binary.BigEndian.Uint16(body))
	if len(body) < 2+nameLen {
		return nil, fmt.Errorf("%w: truncated manifest name", ErrProto)
	}
	name := string(body[2 : 2+nameLen])
	rest := body[2+nameLen:]
	if len(rest)%chunk.IDSize != 0 {
		return nil, fmt.Errorf("%w: manifest ID list misaligned", ErrProto)
	}
	ids := make([]chunk.ID, len(rest)/chunk.IDSize)
	for i := range ids {
		copy(ids[i][:], rest[i*chunk.IDSize:])
	}
	s.mu.Lock()
	if _, ok := s.manifests[name]; !ok {
		s.stats.Manifests++
	}
	s.manifests[name] = ids
	s.mu.Unlock()
	if s.disk != nil {
		if err := s.disk.PutManifest(name, ids); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

func (s *Server) handleGetManifest(body []byte) ([]byte, error) {
	s.mu.RLock()
	ids, ok := s.manifests[string(body)]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, 0, len(ids)*chunk.IDSize)
	for _, id := range ids {
		out = append(out, id[:]...)
	}
	return out, nil
}

func (s *Server) handleStats([]byte) ([]byte, error) {
	st := s.Stats()
	out := make([]byte, 0, 40)
	out = binary.BigEndian.AppendUint64(out, uint64(st.UniqueChunks))
	out = binary.BigEndian.AppendUint64(out, uint64(st.UniqueBytes))
	out = binary.BigEndian.AppendUint64(out, uint64(st.LogicalBytes))
	out = binary.BigEndian.AppendUint64(out, uint64(st.RawUploads))
	out = binary.BigEndian.AppendUint64(out, uint64(st.Manifests))
	return out, nil
}
