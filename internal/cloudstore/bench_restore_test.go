package cloudstore

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"efdedup/internal/chunk"
	"efdedup/internal/faultnet"
	"efdedup/internal/transport"
	"efdedup/internal/workload"
)

// benchRestoreLatency shapes the edge-to-cloud link: every client-side
// frame write pays this one-way delay, so round-trip count — the thing
// containers amortize — shows up in throughput instead of vanishing on
// a free in-memory network.
const benchRestoreLatency = 200 * time.Microsecond

// benchRestoreSetup stands up a memory-mode cloud store behind a
// latency-shaped link, uploads the VM image backup workload (8 nodes x
// 3 backups, heavy cross-node sharing) and seals containers, returning
// the client, the latest-backup manifest names and the total byte size
// one restore pass streams.
func benchRestoreSetup(b *testing.B) (*Client, []string, int64) {
	b.Helper()
	mem := transport.NewMemNetwork()
	fab := faultnet.NewFabric(faultnet.Config{Seed: 1, Latency: benchRestoreLatency})
	b.Cleanup(fab.Close)
	srv, err := NewServer(Config{ContainerBytes: 256 << 10})
	if err != nil {
		b.Fatal(err)
	}
	l, err := fab.NetworkFor("cloud", mem).Listen("cloud")
	if err != nil {
		b.Fatal(err)
	}
	srv.Serve(l)
	b.Cleanup(func() { srv.Close() })
	cl, err := Dial(context.Background(), fab.NetworkFor("edge", mem), "cloud")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })

	ds := workload.DefaultVMImageDataset(42)
	chunker, err := chunk.NewFixedChunker(ds.BlockSize)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	const backups = 3
	var names []string
	var total int64
	for node := 0; node < ds.Nodes; node++ {
		for idx := 0; idx < backups; idx++ {
			data := ds.File(node, idx)
			chunks, err := chunk.SplitBytes(chunker, data)
			if err != nil {
				b.Fatal(err)
			}
			ids := make([]chunk.ID, len(chunks))
			for i, c := range chunks {
				ids[i] = c.ID
			}
			if _, err := cl.BatchUpload(ctx, chunks); err != nil {
				b.Fatal(err)
			}
			name := fmt.Sprintf("node%d/backup%d", node, idx)
			if err := cl.PutManifest(ctx, name, ids); err != nil {
				b.Fatal(err)
			}
			if idx == backups-1 {
				names = append(names, name)
				total += int64(len(data))
			}
		}
	}
	srv.FlushContainers()
	return cl, names, total
}

// BenchmarkCloudRestore streams the latest backup of every node through
// the container restore pipeline (getrecipe + batched getcontainer with
// read-ahead), the path efdedup-restore uses.
func BenchmarkCloudRestore(b *testing.B) {
	cl, names, total := benchRestoreSetup(b)
	ctx := context.Background()
	b.SetBytes(total)
	b.ResetTimer()
	var containers int64
	for i := 0; i < b.N; i++ {
		for _, name := range names {
			st, err := cl.RestoreTo(ctx, name, io.Discard, RestoreOptions{})
			if err != nil {
				b.Fatal(err)
			}
			containers += int64(st.ContainersTouched)
		}
	}
	b.ReportMetric(float64(containers)/float64(b.N*len(names)), "containers/stream")
}

// BenchmarkCloudRestoreSerial is the pre-container baseline: fetch the
// manifest, then one GetChunk round trip per chunk, in order.
func BenchmarkCloudRestoreSerial(b *testing.B) {
	cl, names, total := benchRestoreSetup(b)
	ctx := context.Background()
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range names {
			ids, err := cl.GetManifest(ctx, name)
			if err != nil {
				b.Fatal(err)
			}
			for _, id := range ids {
				data, err := cl.GetChunk(ctx, id)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := io.Discard.Write(data); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}
