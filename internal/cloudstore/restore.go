package cloudstore

// Client-side container restore pipeline.
//
// The old restore path issued one cloud.getchunk RPC per chunk and
// buffered the whole file; restoring a 1 GiB VM image meant ~128k
// serial round trips and 1 GiB of memory. The container path instead:
//
//  1. fetches the manifest's *recipe* (chunk IDs + container locators),
//  2. groups consecutive recipe entries into runs — chunks that live in
//     the same sealed container, or locator-less chunks batched for the
//     getchunks fallback,
//  3. fans the runs out to ReadAhead parallel fetchers that pull whole
//     containers through a shared LRU cache (in-flight entries are
//     pinned and deduplicated, so two runs touching one container cost
//     one RPC),
//  4. reassembles strictly in stream order into the caller's io.Writer,
//     using the PR 5 FIFO + done-token ordered fan-out pattern.
//
// Memory is bounded by (cache capacity + in-flight runs) containers,
// never by file size. Every payload is verified against its chunk ID
// before a byte is written.

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"efdedup/internal/chunk"
	"efdedup/internal/metrics"
)

// Restore pipeline defaults.
const (
	// DefaultRestoreReadAhead is how many container fetches run in
	// parallel ahead of the reassembly cursor.
	DefaultRestoreReadAhead = 4
	// DefaultRestoreCacheContainers is the read-ahead cache capacity in
	// containers (soft: pinned in-flight entries never evict).
	DefaultRestoreCacheContainers = 8
	// DefaultRestoreFallbackBatch caps how many locator-less chunks are
	// fetched per cloud.getchunks fallback RPC.
	DefaultRestoreFallbackBatch = 64
)

// RestoreOptions tunes the streaming restore pipeline. The zero value
// picks the defaults above.
type RestoreOptions struct {
	// ReadAhead is the number of parallel container/fallback fetches.
	ReadAhead int
	// CacheContainers is the container cache capacity.
	CacheContainers int
	// FallbackBatch caps chunks per getchunks fallback RPC.
	FallbackBatch int
}

func (o RestoreOptions) withDefaults() RestoreOptions {
	if o.ReadAhead <= 0 {
		o.ReadAhead = DefaultRestoreReadAhead
	}
	if o.CacheContainers <= 0 {
		o.CacheContainers = DefaultRestoreCacheContainers
	}
	if o.FallbackBatch <= 0 {
		o.FallbackBatch = DefaultRestoreFallbackBatch
	}
	return o
}

// RestoreStats reports what one streaming restore did.
type RestoreStats struct {
	// Bytes and Chunks are the reassembled stream totals.
	Bytes  int64
	Chunks int
	// ContainersTouched is the number of distinct sealed containers the
	// stream's recipe references — the fragmentation measure (a freshly
	// packed stream touches few; a heavily deduplicated one, many).
	ContainersTouched int
	// CacheHits and CacheMisses count container-cache lookups; a miss is
	// one cloud.getcontainer RPC.
	CacheHits   int64
	CacheMisses int64
	// FallbackChunks counts chunks fetched via the batched getchunks
	// path because no sealed container held them yet.
	FallbackChunks int
}

// RecipeEntry is one chunk of a manifest's restore recipe: its content
// address plus the sealed-container copy to read it from. A zero
// Loc.Container means no sealed copy exists and the chunk must be
// fetched individually.
type RecipeEntry struct {
	ID  chunk.ID
	Loc Locator
}

// GetRecipe fetches the restore recipe of a named manifest.
func (c *Client) GetRecipe(ctx context.Context, name string) ([]RecipeEntry, error) {
	resp, err := c.call(ctx, methodGetRecipe, []byte(name))
	if err != nil {
		return nil, classifyRemote(err)
	}
	out, err := decodeRecipe(resp)
	if err != nil {
		return nil, fmt.Errorf("cloudstore: recipe response: %w", err)
	}
	return out, nil
}

// GetContainer fetches a sealed container's raw CRC-framed bytes.
func (c *Client) GetContainer(ctx context.Context, id uint64) ([]byte, error) {
	resp, err := c.call(ctx, methodGetContainer, binary.BigEndian.AppendUint64(nil, id))
	if err != nil {
		return nil, classifyRemote(err)
	}
	return resp, nil
}

// GetChunks fetches many chunk payloads in one RPC, in request order.
func (c *Client) GetChunks(ctx context.Context, ids []chunk.ID) ([][]byte, error) {
	resp, err := c.call(ctx, methodGetChunks, encodeIDList(ids))
	if err != nil {
		return nil, classifyRemote(err)
	}
	out, err := decodeChunkData(resp, len(ids))
	if err != nil {
		return nil, fmt.Errorf("cloudstore: chunks response: %w", err)
	}
	return out, nil
}

// --- read-ahead container cache ---------------------------------------

// cacheEntry is one container in the cache. ready is closed once chunks
// and err are set; refs pins the entry against eviction while fetchers
// and extractors hold it.
type cacheEntry struct {
	id     uint64
	ready  chan struct{}
	chunks map[chunk.ID][]byte
	err    error
	refs   int
}

// containerCache is a per-restore LRU of parsed containers with
// single-flight fetches: concurrent runs needing the same container
// share one cloud.getcontainer RPC, and in-flight or pinned entries are
// never evicted, so the memory bound is cap + in-flight containers.
type containerCache struct {
	client *Client
	cap    int

	mu      sync.Mutex
	entries map[uint64]*cacheEntry
	lru     []uint64 // least recently used first

	hits, misses atomic.Int64
}

func newContainerCache(client *Client, capacity int) *containerCache {
	return &containerCache{
		client:  client,
		cap:     capacity,
		entries: make(map[uint64]*cacheEntry),
	}
}

// touch moves id to the most-recently-used end of the LRU list.
func (cc *containerCache) touch(id uint64) {
	for i, v := range cc.lru {
		if v == id {
			cc.lru = append(append(cc.lru[:i:i], cc.lru[i+1:]...), id)
			return
		}
	}
	cc.lru = append(cc.lru, id)
}

// evictLocked drops ready, unpinned entries (LRU first) until the cache
// is within capacity. Pinned entries make the cap soft by design.
func (cc *containerCache) evictLocked() {
	for len(cc.entries) > cc.cap {
		victim := uint64(0)
		idx := -1
		for i, id := range cc.lru {
			e := cc.entries[id]
			if e == nil {
				continue
			}
			select {
			case <-e.ready:
			default:
				continue // still fetching
			}
			if e.refs == 0 {
				victim, idx = id, i
				break
			}
		}
		if idx < 0 {
			return // everything pinned or in flight
		}
		delete(cc.entries, victim)
		cc.lru = append(cc.lru[:idx], cc.lru[idx+1:]...)
	}
}

// get returns the parsed chunk map of a container, fetching it (once)
// on a miss. The returned entry is pinned; callers must release it.
func (cc *containerCache) get(ctx context.Context, id uint64) (*cacheEntry, error) {
	cc.mu.Lock()
	if e, ok := cc.entries[id]; ok {
		e.refs++
		cc.touch(id)
		cc.mu.Unlock()
		cc.hits.Add(1)
		select {
		case <-e.ready:
		case <-ctx.Done():
			cc.release(e)
			return nil, ctx.Err()
		}
		if e.err != nil {
			cc.release(e)
			return nil, e.err
		}
		return e, nil
	}
	e := &cacheEntry{id: id, ready: make(chan struct{}), refs: 1}
	cc.entries[id] = e
	cc.touch(id)
	cc.evictLocked()
	cc.mu.Unlock()
	cc.misses.Add(1)

	data, err := cc.client.GetContainer(ctx, id)
	if err == nil {
		chunks := make(map[chunk.ID][]byte)
		err = parseContainer(data, func(cid chunk.ID, _ uint32, payload []byte) error {
			chunks[cid] = payload
			return nil
		})
		if err != nil {
			err = fmt.Errorf("container %d: %w", id, err)
		}
		e.chunks = chunks
	}
	e.err = err
	close(e.ready)
	if err != nil {
		// Failed fetches are not cached: a later retry (or a different
		// stream) refetches instead of replaying the error.
		cc.mu.Lock()
		if cc.entries[id] == e {
			delete(cc.entries, id)
			for i, v := range cc.lru {
				if v == id {
					cc.lru = append(cc.lru[:i], cc.lru[i+1:]...)
					break
				}
			}
		}
		cc.mu.Unlock()
		return nil, err
	}
	return e, nil
}

// release unpins an entry obtained from get.
func (cc *containerCache) release(e *cacheEntry) {
	cc.mu.Lock()
	e.refs--
	cc.evictLocked()
	cc.mu.Unlock()
}

// --- ordered restore pipeline -----------------------------------------

// restoreRun is one unit of restore work: a maximal run of consecutive
// recipe entries served by a single container (or one fallback batch).
// done is the ordering token: buffered so a fetcher can finish without a
// rendezvous, closed-over by the assembler which consumes runs in FIFO
// recipe order.
type restoreRun struct {
	entries   []RecipeEntry
	container uint64 // 0 = getchunks fallback batch
	payloads  [][]byte
	err       error
	done      chan struct{}
}

// planRuns groups a recipe into restore runs and counts the distinct
// containers the stream touches.
func planRuns(recipe []RecipeEntry, fallbackBatch int) (runs []*restoreRun, containers int) {
	touched := make(map[uint64]bool)
	for i := 0; i < len(recipe); {
		j := i + 1
		cid := recipe[i].Loc.Container
		if cid == 0 {
			for j < len(recipe) && recipe[j].Loc.Container == 0 && j-i < fallbackBatch {
				j++
			}
		} else {
			touched[cid] = true
			for j < len(recipe) && recipe[j].Loc.Container == cid {
				j++
			}
		}
		runs = append(runs, &restoreRun{
			entries:   recipe[i:j],
			container: cid,
			done:      make(chan struct{}),
		})
		i = j
	}
	return runs, len(touched)
}

// fetchRun materializes one run's payloads, verifying every chunk's
// content address before it can reach the assembler.
func (c *Client) fetchRun(ctx context.Context, cache *containerCache, run *restoreRun) error {
	if run.container == 0 {
		ids := make([]chunk.ID, len(run.entries))
		for i, e := range run.entries {
			ids[i] = e.ID
		}
		payloads, err := c.GetChunks(ctx, ids)
		if err != nil {
			return err
		}
		for i, p := range payloads {
			if chunk.Sum(p) != ids[i] {
				return fmt.Errorf("%w: chunk %s corrupt in transit", ErrCorrupt, ids[i])
			}
		}
		run.payloads = payloads
		return nil
	}
	entry, err := cache.get(ctx, run.container)
	if err != nil {
		return err
	}
	defer cache.release(entry)
	payloads := make([][]byte, len(run.entries))
	for i, e := range run.entries {
		p, ok := entry.chunks[e.ID]
		if !ok {
			return fmt.Errorf("%w: chunk %s missing from container %d", ErrCorrupt, e.ID, run.container)
		}
		if chunk.Sum(p) != e.ID {
			return fmt.Errorf("%w: chunk %s corrupt in container %d", ErrCorrupt, e.ID, run.container)
		}
		payloads[i] = p
	}
	run.payloads = payloads
	return nil
}

// RestoreTo streams a named file into w, verifying every chunk, and
// returns what it moved. Container fetches run ReadAhead-deep in
// parallel through the LRU cache while reassembly stays strictly in
// stream order; memory is bounded by the cache, not the file.
func (c *Client) RestoreTo(ctx context.Context, name string, w io.Writer, opts RestoreOptions) (RestoreStats, error) {
	opts = opts.withDefaults()
	reg := metrics.Default()
	bytesTotal := reg.Counter("cloud_restore_bytes_total")
	chunksTotal := reg.Counter("cloud_restore_chunks_total")
	hitsTotal := reg.Counter("cloud_restore_cache_hits_total")
	missesTotal := reg.Counter("cloud_restore_cache_misses_total")
	fallbackTotal := reg.Counter("cloud_restore_fallback_chunks_total")
	streamLat := reg.DurationHistogram("cloud_restore_stream_seconds")
	fragHist := reg.Histogram("cloud_restore_containers_per_stream")

	sp := metrics.StartTimer(streamLat)
	defer sp.End()

	recipe, err := c.GetRecipe(ctx, name)
	if err != nil {
		return RestoreStats{}, fmt.Errorf("cloudstore: restore %s: %w", name, err)
	}
	runs, containers := planRuns(recipe, opts.FallbackBatch)
	stats := RestoreStats{ContainersTouched: containers}
	fragHist.Observe(int64(containers))
	if len(runs) == 0 {
		return stats, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	cache := newContainerCache(c, opts.CacheContainers)
	order := make(chan *restoreRun, opts.ReadAhead*2)
	work := make(chan *restoreRun, opts.ReadAhead)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // producer: FIFO order first, then the work queue
		defer wg.Done()
		defer close(order)
		defer close(work)
		for _, run := range runs {
			select {
			case order <- run:
			case <-ctx.Done():
				return
			}
			select {
			case work <- run:
			case <-ctx.Done():
				return
			}
		}
	}()
	for i := 0; i < opts.ReadAhead; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for run := range work {
				run.err = c.fetchRun(ctx, cache, run)
				close(run.done)
			}
		}()
	}

	// Assembler: strictly in recipe order. On any failure, cancel and
	// fall through — the deferred wg.Wait tears the pipeline down
	// (producer and fetchers all select on ctx).
	defer wg.Wait()
	for run := range order {
		select {
		case <-run.done:
		case <-ctx.Done():
			return stats, fmt.Errorf("cloudstore: restore %s: %w", name, ctx.Err())
		}
		if run.err != nil {
			cancel()
			return stats, fmt.Errorf("cloudstore: restore %s: %w", name, run.err)
		}
		for _, p := range run.payloads {
			n, werr := w.Write(p)
			if werr != nil {
				cancel()
				return stats, fmt.Errorf("cloudstore: restore %s: write: %w", name, werr)
			}
			stats.Bytes += int64(n)
			stats.Chunks++
		}
		if run.container == 0 {
			stats.FallbackChunks += len(run.entries)
		}
		run.payloads = nil // let the container page age out of memory
	}

	stats.CacheHits = cache.hits.Load()
	stats.CacheMisses = cache.misses.Load()
	bytesTotal.Add(stats.Bytes)
	chunksTotal.Add(int64(stats.Chunks))
	hitsTotal.Add(stats.CacheHits)
	missesTotal.Add(stats.CacheMisses)
	fallbackTotal.Add(int64(stats.FallbackChunks))
	return stats, nil
}

// Restore downloads and reassembles a named file in memory. It is a
// convenience wrapper over RestoreTo; large restores should stream.
func (c *Client) Restore(ctx context.Context, name string) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := c.RestoreTo(ctx, name, &buf, RestoreOptions{}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
