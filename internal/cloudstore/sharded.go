package cloudstore

import (
	"fmt"
	"sync"

	"efdedup/internal/chunk"
	"efdedup/internal/erasure"
)

// ShardedStore is an erasure-coded chunk backend: every chunk is
// Reed-Solomon encoded into k data + m parity shards spread over k+m
// virtual disks, so any m disk failures are survivable at (k+m)/k storage
// overhead — the paper's future-work alternative to keeping γ full
// replicas (Sec. VII).
//
// It is a storage backend, not a network service: the cloud Server can be
// composed with it (see Server's tests), and the failure-injection API
// (FailDisk / ReviveDisk) makes durability measurable.
type ShardedStore struct {
	codec *erasure.Codec

	mu     sync.RWMutex
	disks  []map[chunk.ID][]byte // shard payload per disk
	failed []bool
	length map[chunk.ID]int // original chunk length
}

// NewShardedStore builds a store with k data and m parity shards.
func NewShardedStore(dataShards, parityShards int) (*ShardedStore, error) {
	codec, err := erasure.New(dataShards, parityShards)
	if err != nil {
		return nil, err
	}
	n := dataShards + parityShards
	disks := make([]map[chunk.ID][]byte, n)
	for i := range disks {
		disks[i] = make(map[chunk.ID][]byte)
	}
	return &ShardedStore{
		codec:  codec,
		disks:  disks,
		failed: make([]bool, n),
		length: make(map[chunk.ID]int),
	}, nil
}

// Disks returns the number of virtual disks (k+m).
func (s *ShardedStore) Disks() int { return len(s.disks) }

// Overhead returns the storage expansion factor (k+m)/k.
func (s *ShardedStore) Overhead() float64 { return s.codec.Overhead() }

// Put encodes and stores one chunk. Storing an existing chunk is a no-op
// (content addressing). Shards are written to every non-failed disk; a
// write needs at least the k data-shard-equivalent disks to be durable,
// and Put fails when fewer than k disks are up.
func (s *ShardedStore) Put(id chunk.ID, data []byte) error {
	if chunk.Sum(data) != id {
		return fmt.Errorf("%w: chunk content does not match its ID", ErrCorrupt)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.length[id]; ok {
		return nil
	}
	up := 0
	for _, f := range s.failed {
		if !f {
			up++
		}
	}
	if up < s.codec.DataShards() {
		return fmt.Errorf("%w: only %d/%d, need %d", ErrDegraded, up, len(s.disks), s.codec.DataShards())
	}
	shards, err := s.codec.Split(data)
	if err != nil {
		return err
	}
	for i, shard := range shards {
		if s.failed[i] {
			continue
		}
		s.disks[i][id] = shard
	}
	s.length[id] = len(data)
	return nil
}

// Get reconstructs a chunk from the surviving shards.
func (s *ShardedStore) Get(id chunk.ID) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	length, ok := s.length[id]
	if !ok {
		return nil, ErrNotFound
	}
	shards := make([][]byte, len(s.disks))
	for i := range s.disks {
		if s.failed[i] {
			continue
		}
		if shard, ok := s.disks[i][id]; ok {
			shards[i] = shard
		}
	}
	data, err := s.codec.Join(shards, length)
	if err != nil {
		return nil, fmt.Errorf("cloudstore: reconstruct %s: %w", id, err)
	}
	if chunk.Sum(data) != id {
		return nil, fmt.Errorf("%w: reconstructed chunk %s fails verification", ErrCorrupt, id)
	}
	return data, nil
}

// Has reports whether the chunk is stored (regardless of disk health).
func (s *ShardedStore) Has(id chunk.ID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.length[id]
	return ok
}

// Len returns the number of stored chunks.
func (s *ShardedStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.length)
}

// FailDisk marks a disk failed and drops its contents (failure
// injection).
func (s *ShardedStore) FailDisk(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.disks) {
		return fmt.Errorf("%w: disk %d out of range", ErrConfig, i)
	}
	s.failed[i] = true
	s.disks[i] = make(map[chunk.ID][]byte)
	return nil
}

// ReviveDisk brings a failed disk back empty and rebuilds its shards from
// the surviving ones (background repair, done synchronously here).
func (s *ShardedStore) ReviveDisk(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.disks) {
		return fmt.Errorf("%w: disk %d out of range", ErrConfig, i)
	}
	if !s.failed[i] {
		return nil
	}
	s.failed[i] = false
	// Rebuild every chunk's shard i.
	for id, length := range s.length {
		shards := make([][]byte, len(s.disks))
		for d := range s.disks {
			if d == i || s.failed[d] {
				continue
			}
			if shard, ok := s.disks[d][id]; ok {
				shards[d] = shard
			}
		}
		data, err := s.codec.Join(shards, length)
		if err != nil {
			return fmt.Errorf("cloudstore: rebuild disk %d chunk %s: %w", i, id, err)
		}
		full, err := s.codec.Split(data)
		if err != nil {
			return err
		}
		s.disks[i][id] = full[i]
	}
	return nil
}
