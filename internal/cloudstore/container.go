package cloudstore

// Locality-preserving chunk containers — the read side of the store.
//
// The flat content-addressed chunk files that PutChunk writes are ideal
// for deduplicated *writes* (idempotent, crash-atomic) but terrible for
// *restores*: a stream's chunks end up as thousands of small files, and
// the old restore path paid one RPC and one disk read per chunk. Per the
// container-store designs surveyed in the fragmentation literature
// (partial repetition / container capping), chunks are additionally
// packed — in upload order, which is stream order — into fixed-target
// containers. A restore then fetches whole containers (one RPC, one
// sequential read each) and the number of containers a stream touches
// becomes the fragmentation measure.
//
// Container format (file "<root>/containers/<%016x>.cont", or an
// in-memory byte slice for Dir-less servers):
//
//	8 bytes  magic "EFCONT1\n"
//	repeated 32-byte chunk ID | u32 payload length | u32 crc32(payload) | payload
//
// Records are CRC-framed so a torn or bit-flipped container is detected
// at parse time, and every payload is still content-addressed by its
// chunk ID, so readers can verify end to end. Container files are
// installed with the same write-temp → fsync → rename → dir-fsync
// protocol as kvstore snapshots.
//
// Durability protocol: a chunk is acknowledged once its flat chunk file
// is durable (storeChunk). The open container is memory only; when it
// seals, the container file is installed durably and the flat files of
// the chunks it packed are deleted — they were the staging copies. A
// crash at any point leaves every chunk in at least one of the two
// places, and startup rebuilds the index from both.
//
// Bounded selective duplication: when a manifest's chunks are spread
// thinly over old containers (a later backup referencing a handful of
// mutated blocks per old stream), restoring it would touch many
// containers for a few chunks each. repack copies such sparsely
// referenced hot chunks into the current open container — deliberately
// storing them twice — and points the locator at the new, denser copy.
// The duplicated bytes are capped at DupFraction of the unique bytes
// packed, so dedup ratio degrades by a bounded, configured amount.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"

	"efdedup/internal/chunk"
	"efdedup/internal/metrics"
)

// Container geometry and duplication defaults.
const (
	// DefaultContainerBytes is the target sealed-container payload size.
	DefaultContainerBytes = 4 << 20
	// DefaultDupFraction caps selective-duplication bytes at this
	// fraction of the unique bytes packed into containers.
	DefaultDupFraction = 0.05
	// DefaultSparseRefLimit: a manifest referencing a sealed container
	// for at most this many chunks counts that container as fragmenting,
	// making those chunks repack candidates.
	DefaultSparseRefLimit = 4
)

// containerMagic identifies a container file and its format version.
var containerMagic = []byte("EFCONT1\n")

// containerRecordHeader is the per-record framing overhead.
const containerRecordHeader = chunk.IDSize + 8

// Locator addresses one chunk copy inside a sealed container: the
// container ID plus the payload's byte range within the container.
type Locator struct {
	Container uint64
	Offset    uint32
	Length    uint32
}

// appendContainerRecord frames one chunk into buf and returns the new
// buffer plus the payload's offset.
func appendContainerRecord(buf []byte, id chunk.ID, data []byte) ([]byte, uint32) {
	buf = append(buf, id[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(data)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(data))
	off := uint32(len(buf))
	buf = append(buf, data...)
	return buf, off
}

// parseContainer walks a container's records in order, verifying the
// frame CRCs, and hands each payload (a sub-slice of data) to fn. Any
// framing or CRC damage is ErrCorrupt: containers are installed
// atomically, so damage is real, not a crash artifact.
func parseContainer(data []byte, fn func(id chunk.ID, off uint32, payload []byte) error) error {
	if len(data) < len(containerMagic) || !bytes.Equal(data[:len(containerMagic)], containerMagic) {
		return fmt.Errorf("%w: container missing magic", ErrCorrupt)
	}
	off := len(containerMagic)
	for off < len(data) {
		if len(data)-off < containerRecordHeader {
			return fmt.Errorf("%w: truncated container record header at offset %d", ErrCorrupt, off)
		}
		var id chunk.ID
		copy(id[:], data[off:])
		n := binary.BigEndian.Uint32(data[off+chunk.IDSize:])
		crc := binary.BigEndian.Uint32(data[off+chunk.IDSize+4:])
		off += containerRecordHeader
		if uint64(len(data)-off) < uint64(n) {
			return fmt.Errorf("%w: truncated container payload for chunk %s", ErrCorrupt, id)
		}
		payload := data[off : off+int(n)]
		if crc32.ChecksumIEEE(payload) != crc {
			return fmt.Errorf("%w: container record crc mismatch for chunk %s", ErrCorrupt, id)
		}
		if err := fn(id, uint32(off), payload); err != nil {
			return err
		}
		off += int(n)
	}
	return nil
}

// containerStore is the append-side container writer plus the locator
// index. It packs incoming fresh chunks into an open in-memory
// container, seals containers at targetBytes (durably via the DiskStore
// when one is configured, as retained byte slices otherwise), and maps
// every packed chunk to its newest sealed copy.
type containerStore struct {
	disk           *DiskStore // nil keeps sealed containers in memory
	targetBytes    int
	dupFraction    float64
	sparseRefLimit int

	mu        sync.Mutex
	openID    uint64 // ID the open container will seal as
	open      []byte // encoded records (starts with magic)
	openFresh []chunk.ID
	loc       map[chunk.ID]Locator // sealed copies only
	sealed    map[uint64][]byte    // memory mode: sealed container bytes

	uniqueBytes int64 // first-copy payload bytes packed
	dupBytes    int64 // duplicated payload bytes packed

	sealedTotal  *metrics.Counter
	sealFailures *metrics.Counter
	repackChunks *metrics.Counter
	repackBytes  *metrics.Counter
}

// newContainerStore builds the writer. startID is one past the highest
// container recovered from disk (1 for a fresh store).
func newContainerStore(disk *DiskStore, targetBytes int, dupFraction float64, sparseRefLimit int, startID uint64) *containerStore {
	if targetBytes <= 0 {
		targetBytes = DefaultContainerBytes
	}
	if dupFraction < 0 {
		dupFraction = 0
	}
	if sparseRefLimit <= 0 {
		sparseRefLimit = DefaultSparseRefLimit
	}
	reg := metrics.Default()
	cs := &containerStore{
		disk:           disk,
		targetBytes:    targetBytes,
		dupFraction:    dupFraction,
		sparseRefLimit: sparseRefLimit,
		openID:         startID,
		open:           append([]byte(nil), containerMagic...),
		loc:            make(map[chunk.ID]Locator),
		sealedTotal:    reg.Counter("cloud_server_containers_sealed_total"),
		sealFailures:   reg.Counter("cloud_server_container_seal_failures_total"),
		repackChunks:   reg.Counter("cloud_server_repacked_chunks_total"),
		repackBytes:    reg.Counter("cloud_server_repacked_bytes_total"),
	}
	if disk == nil {
		cs.sealed = make(map[uint64][]byte)
	}
	return cs
}

// restoreLocators installs locators recovered from a disk scan.
func (cs *containerStore) restoreLocators(loc map[chunk.ID]Locator, uniqueBytes, dupBytes int64) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for id, l := range loc {
		cs.loc[id] = l
	}
	cs.uniqueBytes += uniqueBytes
	cs.dupBytes += dupBytes
}

// append packs one chunk into the open container, sealing it when the
// target size is reached. dup marks a selective-duplication copy, which
// is admitted only while the duplication budget has room; the return
// value reports whether the chunk was packed. Seal failures are absorbed
// (the chunk stays readable from its staged flat file) and surfaced via
// cloud_server_container_seal_failures_total.
func (cs *containerStore) append(id chunk.ID, data []byte, dup bool) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if dup {
		if float64(cs.dupBytes+int64(len(data))) > cs.dupFraction*float64(cs.uniqueBytes) {
			return false
		}
		cs.dupBytes += int64(len(data))
		cs.repackChunks.Inc()
		cs.repackBytes.Add(int64(len(data)))
	} else {
		cs.uniqueBytes += int64(len(data))
		cs.openFresh = append(cs.openFresh, id)
	}
	cs.open, _ = appendContainerRecord(cs.open, id, data)
	if len(cs.open)-len(containerMagic) >= cs.targetBytes {
		cs.sealLocked()
	}
	return true
}

// flush seals the open container regardless of fill level.
func (cs *containerStore) flush() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.sealLocked()
}

// sealLocked installs the open container and registers its locators.
// On a disk-install failure the open container is discarded: its fresh
// chunks remain durable (and readable) as staged flat files, so nothing
// is lost — only read locality for those chunks.
func (cs *containerStore) sealLocked() {
	if len(cs.open) <= len(containerMagic) {
		return
	}
	id := cs.openID
	data := cs.open
	fresh := cs.openFresh
	cs.openID++
	cs.open = append([]byte(nil), containerMagic...)
	cs.openFresh = nil
	if cs.disk != nil {
		if err := cs.disk.PutContainer(id, data); err != nil {
			cs.sealFailures.Inc()
			return
		}
	} else {
		cs.sealed[id] = data
	}
	// The container is durable; every record in it supersedes older
	// copies (repacks point restores at the denser, newer container).
	if err := parseContainer(data, func(cid chunk.ID, off uint32, payload []byte) error {
		cs.loc[cid] = Locator{Container: id, Offset: off, Length: uint32(len(payload))}
		return nil
	}); err != nil {
		// Only possible if the buffer this function just encoded is
		// corrupt in memory. Register nothing: the fresh chunks stay
		// readable from their staged flat files.
		cs.sealFailures.Inc()
		return
	}
	cs.sealedTotal.Inc()
	if cs.disk != nil {
		// The staged flat files of the packed fresh chunks were only
		// ever the write-ahead copies; drop them now that the container
		// holds the data. Best effort: a crash in this loop leaves
		// harmless duplicates that the next startup tolerates.
		for _, cid := range fresh {
			cs.disk.RemoveChunk(cid)
		}
	}
}

// statsSnapshot returns the sealed-container count (IDs consumed so
// far) and duplicated payload bytes under the store's lock.
func (cs *containerStore) statsSnapshot() (sealed, dupBytes int64) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return int64(cs.openID - 1), cs.dupBytes
}

// locate returns the sealed-copy locator of a chunk, if any.
func (cs *containerStore) locate(id chunk.ID) (Locator, bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	l, ok := cs.loc[id]
	return l, ok
}

// containerBytes returns a sealed container's raw bytes.
func (cs *containerStore) containerBytes(id uint64) ([]byte, error) {
	if cs.disk != nil {
		return cs.disk.GetContainer(id)
	}
	cs.mu.Lock()
	data, ok := cs.sealed[id]
	cs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: container %d", ErrNotFound, id)
	}
	return data, nil
}

// readChunk serves one chunk payload from its sealed container copy,
// verifying the content address.
func (cs *containerStore) readChunk(id chunk.ID) ([]byte, error) {
	loc, ok := cs.locate(id)
	if !ok {
		return nil, ErrNotFound
	}
	var payload []byte
	if cs.disk != nil {
		data, err := cs.disk.ReadContainerRange(loc.Container, int64(loc.Offset), int(loc.Length))
		if err != nil {
			return nil, err
		}
		payload = data
	} else {
		cs.mu.Lock()
		data, ok := cs.sealed[loc.Container]
		cs.mu.Unlock()
		if !ok || uint64(len(data)) < uint64(loc.Offset)+uint64(loc.Length) {
			return nil, fmt.Errorf("%w: container %d lost", ErrCorrupt, loc.Container)
		}
		payload = data[loc.Offset : loc.Offset+loc.Length]
	}
	if chunk.Sum(payload) != id {
		return nil, fmt.Errorf("%w: chunk %s corrupt in container %d", ErrCorrupt, id, loc.Container)
	}
	return payload, nil
}

// sparseContainers returns, for a manifest's chunk sequence, the set of
// sealed containers the manifest references at or below the sparse
// limit — the containers whose chunks fragment a restore of this stream.
func (cs *containerStore) sparseContainers(ids []chunk.ID) map[uint64]bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	refs := make(map[uint64]int)
	seen := make(map[chunk.ID]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		if l, ok := cs.loc[id]; ok {
			refs[l.Container]++
		}
	}
	sparse := make(map[uint64]bool)
	for c, n := range refs {
		if n <= cs.sparseRefLimit {
			sparse[c] = true
		}
	}
	return sparse
}
