package cloudstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"efdedup/internal/chunk"
)

// uploadStream pushes a chunked stream and its manifest, returning the
// raw bytes for identity checks.
func uploadStream(t *testing.T, cl *Client, name string, seed int64, size int) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, size)
	rng.Read(data)
	chunker, err := chunk.NewFixedChunker(4096)
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := chunk.SplitBytes(chunker, data)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]chunk.ID, len(chunks))
	for i, c := range chunks {
		ids[i] = c.ID
	}
	ctx := context.Background()
	if _, err := cl.BatchUpload(ctx, chunks); err != nil {
		t.Fatal(err)
	}
	if err := cl.PutManifest(ctx, name, ids); err != nil {
		t.Fatal(err)
	}
	return data
}

func TestRestoreToStreamsFromContainers(t *testing.T) {
	cl, srv := startCloud(t, Config{ContainerBytes: 64 << 10})
	data := uploadStream(t, cl, "vm", 7, 500_000)
	srv.FlushContainers()

	var buf bytes.Buffer
	st, err := cl.RestoreTo(context.Background(), "vm", &buf, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("restored stream differs")
	}
	if st.Bytes != int64(len(data)) {
		t.Fatalf("stats.Bytes = %d, want %d", st.Bytes, len(data))
	}
	if st.Chunks != (len(data)+4095)/4096 {
		t.Fatalf("stats.Chunks = %d", st.Chunks)
	}
	// 500 KB over 64 KiB containers: the stream must span several, and
	// every one is fetched exactly once (sequential stream, no re-reads).
	if st.ContainersTouched < 7 {
		t.Fatalf("ContainersTouched = %d, want >= 7", st.ContainersTouched)
	}
	if st.CacheMisses != int64(st.ContainersTouched) {
		t.Fatalf("CacheMisses = %d, want %d (one fetch per container)", st.CacheMisses, st.ContainersTouched)
	}
	if st.FallbackChunks != 0 {
		t.Fatalf("FallbackChunks = %d, want 0", st.FallbackChunks)
	}
}

func TestRestoreFallbackWithoutContainers(t *testing.T) {
	// No flush: every chunk is still staged, the recipe carries no
	// locators, and the whole restore rides the batched fallback.
	cl, _ := startCloud(t, Config{})
	data := uploadStream(t, cl, "unsealed", 11, 100_000)

	var buf bytes.Buffer
	st, err := cl.RestoreTo(context.Background(), "unsealed", &buf, RestoreOptions{FallbackBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("fallback restore differs")
	}
	if st.FallbackChunks != st.Chunks {
		t.Fatalf("FallbackChunks = %d, want %d (all chunks)", st.FallbackChunks, st.Chunks)
	}
	if st.ContainersTouched != 0 || st.CacheMisses != 0 {
		t.Fatalf("unexpected container traffic: %+v", st)
	}
}

// TestRestoreIdenticalAcrossPipelineShapes is the ordering property: any
// read-ahead depth and cache size must produce byte-identical output.
func TestRestoreIdenticalAcrossPipelineShapes(t *testing.T) {
	cl, srv := startCloud(t, Config{ContainerBytes: 32 << 10})
	data := uploadStream(t, cl, "shapes", 13, 300_000)
	srv.FlushContainers()

	for _, ra := range []int{1, 2, 7} {
		for _, cap := range []int{1, 3} {
			var buf bytes.Buffer
			opts := RestoreOptions{ReadAhead: ra, CacheContainers: cap}
			if _, err := cl.RestoreTo(context.Background(), "shapes", &buf, opts); err != nil {
				t.Fatalf("ReadAhead=%d cap=%d: %v", ra, cap, err)
			}
			if !bytes.Equal(buf.Bytes(), data) {
				t.Fatalf("ReadAhead=%d cap=%d: output differs", ra, cap)
			}
		}
	}
}

// TestRestoreCacheEvictionAndHits restores a manifest that revisits a
// container after eviction (cache of 1) and after a hit (cache of 2),
// checking the LRU accounting both ways.
func TestRestoreCacheEvictionAndHits(t *testing.T) {
	cl, srv := startCloud(t, Config{ContainerBytes: 16 << 10})
	ctx := context.Background()

	// Two distinct 16 KiB containers A and B, then a manifest ordered
	// A-chunks, B-chunks, A-chunks again.
	var aIDs, bIDs []chunk.ID
	var aData, bData [][]byte
	for i := 0; i < 4; i++ {
		id, d := mkPayload(int64(500+i), 4096)
		aIDs, aData = append(aIDs, id), append(aData, d)
		id, d = mkPayload(int64(600+i), 4096)
		bIDs, bData = append(bIDs, id), append(bData, d)
	}
	var chunks []chunk.Chunk
	for i := range aIDs {
		chunks = append(chunks, chunk.Chunk{ID: aIDs[i], Data: aData[i]})
	}
	if _, err := cl.BatchUpload(ctx, chunks); err != nil {
		t.Fatal(err)
	}
	chunks = chunks[:0]
	for i := range bIDs {
		chunks = append(chunks, chunk.Chunk{ID: bIDs[i], Data: bData[i]})
	}
	if _, err := cl.BatchUpload(ctx, chunks); err != nil {
		t.Fatal(err)
	}
	srv.FlushContainers()

	manifest := append(append(append([]chunk.ID(nil), aIDs...), bIDs...), aIDs...)
	if err := cl.PutManifest(ctx, "aba", manifest); err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, d := range aData {
		want = append(want, d...)
	}
	for _, d := range bData {
		want = append(want, d...)
	}
	for _, d := range aData {
		want = append(want, d...)
	}

	// Cache of 1, serial fetches: B evicts A, so the second A run is a
	// third miss.
	var buf bytes.Buffer
	st, err := cl.RestoreTo(ctx, "aba", &buf, RestoreOptions{ReadAhead: 1, CacheContainers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("A-B-A restore differs (cache 1)")
	}
	if st.CacheMisses != 3 || st.CacheHits != 0 {
		t.Fatalf("cache=1: misses=%d hits=%d, want 3/0", st.CacheMisses, st.CacheHits)
	}

	// Cache of 2: A survives B, the second A run hits.
	buf.Reset()
	st, err = cl.RestoreTo(ctx, "aba", &buf, RestoreOptions{ReadAhead: 1, CacheContainers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("A-B-A restore differs (cache 2)")
	}
	if st.CacheMisses != 2 || st.CacheHits != 1 {
		t.Fatalf("cache=2: misses=%d hits=%d, want 2/1", st.CacheMisses, st.CacheHits)
	}
	if st.ContainersTouched != 2 {
		t.Fatalf("ContainersTouched = %d, want 2 distinct", st.ContainersTouched)
	}
}

func TestRestoreMissingManifest(t *testing.T) {
	cl, _ := startCloud(t, Config{})
	if _, err := cl.RestoreTo(context.Background(), "ghost", &bytes.Buffer{}, RestoreOptions{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("restore of missing manifest = %v, want ErrNotFound", err)
	}
}

// failAfterWriter fails the restore's output sink mid-stream, proving
// the pipeline tears down cleanly (no goroutine leak, error surfaced).
type failAfterWriter struct {
	n int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.n -= len(p)
	if w.n < 0 {
		return 0, fmt.Errorf("sink full")
	}
	return len(p), nil
}

func TestRestoreWriterFailureTearsDown(t *testing.T) {
	cl, srv := startCloud(t, Config{ContainerBytes: 16 << 10})
	uploadStream(t, cl, "teardown", 17, 200_000)
	srv.FlushContainers()

	_, err := cl.RestoreTo(context.Background(), "teardown", &failAfterWriter{n: 50_000}, RestoreOptions{ReadAhead: 4})
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("sink full")) {
		t.Fatalf("err = %v, want wrapped sink failure", err)
	}
}

// TestRestoreMemoryBoundedByCache restores a stream much larger than the
// cache through a window-counting writer: at no point may the pipeline
// hold more container payloads than cache capacity + in-flight fetches
// allow. We assert the observable proxy — the restore succeeds with a
// 2-container cache on a 30-container stream while every container is
// fetched at most once (sequential access never refetches).
func TestRestoreMemoryBoundedByCache(t *testing.T) {
	cl, srv := startCloud(t, Config{ContainerBytes: 16 << 10})
	data := uploadStream(t, cl, "big", 19, 500_000)
	srv.FlushContainers()

	var buf bytes.Buffer
	st, err := cl.RestoreTo(context.Background(), "big", &buf, RestoreOptions{ReadAhead: 2, CacheContainers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("restored stream differs")
	}
	if st.ContainersTouched < 25 {
		t.Fatalf("ContainersTouched = %d, want a stream much larger than the cache", st.ContainersTouched)
	}
	if st.CacheMisses != int64(st.ContainersTouched) {
		t.Fatalf("CacheMisses = %d, want %d (each container fetched once)", st.CacheMisses, st.ContainersTouched)
	}
}

// TestRestoreLegacyWrapperMatches keeps the old []byte Restore API
// equivalent to the streaming path.
func TestRestoreLegacyWrapperMatches(t *testing.T) {
	cl, srv := startCloud(t, Config{ContainerBytes: 32 << 10})
	data := uploadStream(t, cl, "legacy", 23, 150_000)
	srv.FlushContainers()

	got, err := cl.Restore(context.Background(), "legacy")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("legacy Restore differs")
	}
}
