package cloudstore

import (
	"bytes"
	"math/rand"
	"testing"

	"efdedup/internal/chunk"
)

func mkPayload(seed int64, n int) (chunk.ID, []byte) {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, n)
	rng.Read(data)
	return chunk.Sum(data), data
}

func TestShardedStoreRoundTrip(t *testing.T) {
	s, err := NewShardedStore(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Disks() != 6 || s.Overhead() != 1.5 {
		t.Fatalf("geometry wrong: %d disks, %.2f overhead", s.Disks(), s.Overhead())
	}
	id, data := mkPayload(1, 10000)
	if err := s.Put(id, data); err != nil {
		t.Fatal(err)
	}
	if !s.Has(id) || s.Len() != 1 {
		t.Fatal("chunk not recorded")
	}
	got, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip differs")
	}
	// Idempotent put.
	if err := s.Put(id, data); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatal("duplicate put stored twice")
	}
}

func TestShardedStoreRejectsCorruptPut(t *testing.T) {
	s, _ := NewShardedStore(3, 1)
	id, data := mkPayload(2, 100)
	data[0] ^= 0xFF
	if err := s.Put(id, data); err == nil {
		t.Fatal("corrupt chunk accepted")
	}
}

func TestShardedStoreSurvivesDiskFailures(t *testing.T) {
	s, err := NewShardedStore(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var ids []chunk.ID
	var datas [][]byte
	for i := 0; i < 20; i++ {
		id, data := mkPayload(int64(10+i), 3000+i*7)
		ids = append(ids, id)
		datas = append(datas, data)
		if err := s.Put(id, data); err != nil {
			t.Fatal(err)
		}
	}
	// Lose two disks (= parity count): everything must still read.
	if err := s.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDisk(4); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		got, err := s.Get(id)
		if err != nil {
			t.Fatalf("chunk %d after 2 failures: %v", i, err)
		}
		if !bytes.Equal(got, datas[i]) {
			t.Fatalf("chunk %d corrupted after failures", i)
		}
	}
	// A third failure exceeds parity: reads must fail loudly.
	if err := s.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ids[0]); err == nil {
		t.Fatal("read succeeded with more failures than parity")
	}
}

func TestShardedStoreRepair(t *testing.T) {
	s, err := NewShardedStore(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	id, data := mkPayload(3, 5000)
	if err := s.Put(id, data); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDisk(2); err != nil {
		t.Fatal(err)
	}
	// Repair rebuilds the lost shards from survivors.
	if err := s.ReviveDisk(2); err != nil {
		t.Fatal(err)
	}
	// Now lose two OTHER disks; the repaired disk must carry its weight.
	if err := s.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("repaired shard did not reconstruct correctly")
	}
}

func TestShardedStorePutNeedsQuorumOfDisks(t *testing.T) {
	s, err := NewShardedStore(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.FailDisk(0)
	s.FailDisk(1) // 2 up < k=3
	id, data := mkPayload(4, 100)
	if err := s.Put(id, data); err == nil {
		t.Fatal("put accepted with too few disks")
	}
	if err := s.FailDisk(99); err == nil {
		t.Fatal("out-of-range disk accepted")
	}
	if err := s.ReviveDisk(-1); err == nil {
		t.Fatal("out-of-range revive accepted")
	}
}

func TestShardedStoreGetMissing(t *testing.T) {
	s, _ := NewShardedStore(2, 1)
	id, _ := mkPayload(5, 10)
	if _, err := s.Get(id); err != ErrNotFound {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
}
