package cloudstore

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"efdedup/internal/chunk"
	"efdedup/internal/transport"
)

// startCloud runs a cloud store on a fresh memory network and returns a
// connected client.
func startCloud(t *testing.T, cfg Config) (*Client, *Server) {
	t.Helper()
	nw := transport.NewMemNetwork()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := nw.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(context.Background(), nw, "cloud")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, srv
}

func mkChunk(data string) chunk.Chunk {
	b := []byte(data)
	return chunk.Chunk{ID: chunk.Sum(b), Data: b}
}

func TestUploadDeduplicates(t *testing.T) {
	cl, srv := startCloud(t, Config{})
	ctx := context.Background()

	fresh, err := cl.Upload(ctx, mkChunk("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if !fresh {
		t.Fatal("first upload reported duplicate")
	}
	fresh, err = cl.Upload(ctx, mkChunk("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if fresh {
		t.Fatal("duplicate upload reported fresh")
	}
	st := srv.Stats()
	if st.UniqueChunks != 1 {
		t.Fatalf("UniqueChunks = %d, want 1", st.UniqueChunks)
	}
	if st.LogicalBytes != 10 {
		t.Fatalf("LogicalBytes = %d, want 10 (two 5-byte uploads)", st.LogicalBytes)
	}
	if st.UniqueBytes != 5 {
		t.Fatalf("UniqueBytes = %d, want 5", st.UniqueBytes)
	}
}

func TestUploadRejectsCorruptChunk(t *testing.T) {
	cl, _ := startCloud(t, Config{})
	bad := mkChunk("data")
	bad.Data = []byte("DATA") // ID no longer matches
	if _, err := cl.Upload(context.Background(), bad); err == nil {
		t.Fatal("corrupt chunk accepted")
	}
}

func TestBatchUploadAndHas(t *testing.T) {
	cl, _ := startCloud(t, Config{})
	ctx := context.Background()

	chunks := []chunk.Chunk{mkChunk("a"), mkChunk("b"), mkChunk("a")}
	stored, err := cl.BatchUpload(ctx, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if stored != 2 {
		t.Fatalf("BatchUpload stored %d, want 2 (one in-batch duplicate)", stored)
	}

	has, err := cl.BatchHas(ctx, []chunk.ID{
		chunk.Sum([]byte("a")), chunk.Sum([]byte("c")), chunk.Sum([]byte("b")),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true}
	for i := range want {
		if has[i] != want[i] {
			t.Errorf("BatchHas[%d] = %v, want %v", i, has[i], want[i])
		}
	}
}

func TestUploadRawDeduplicatesServerSide(t *testing.T) {
	cl, srv := startCloud(t, Config{})
	ctx := context.Background()

	// Two copies of the same content: the second raw upload stores 0 new
	// chunks.
	data := bytes.Repeat([]byte("0123456789abcdef"), 4096) // 64 KiB
	n1, err := cl.UploadRaw(ctx, "file1", data)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := cl.UploadRaw(ctx, "file2", data)
	if err != nil {
		t.Fatal(err)
	}
	if n1 == 0 {
		t.Fatal("first raw upload stored nothing")
	}
	if n2 != 0 {
		t.Fatalf("second identical raw upload stored %d chunks, want 0", n2)
	}
	st := srv.Stats()
	if st.RawUploads != 2 {
		t.Fatalf("RawUploads = %d, want 2", st.RawUploads)
	}
	if st.LogicalBytes != int64(2*len(data)) {
		t.Fatalf("LogicalBytes = %d, want %d", st.LogicalBytes, 2*len(data))
	}

	// Both manifests restore to the original content.
	for _, name := range []string{"file1", "file2"} {
		got, err := cl.Restore(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("restore %s differs from original", name)
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	cl, _ := startCloud(t, Config{})
	ctx := context.Background()

	c1, c2 := mkChunk("part one "), mkChunk("part two")
	if _, err := cl.BatchUpload(ctx, []chunk.Chunk{c1, c2}); err != nil {
		t.Fatal(err)
	}
	ids := []chunk.ID{c1.ID, c2.ID, c1.ID}
	if err := cl.PutManifest(ctx, "doc", ids); err != nil {
		t.Fatal(err)
	}
	got, err := cl.GetManifest(ctx, "doc")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != c1.ID || got[1] != c2.ID || got[2] != c1.ID {
		t.Fatalf("GetManifest = %v", got)
	}
	restored, err := cl.Restore(ctx, "doc")
	if err != nil {
		t.Fatal(err)
	}
	if string(restored) != "part one part twopart one " {
		t.Fatalf("Restore = %q", restored)
	}
}

func TestGetMissing(t *testing.T) {
	cl, _ := startCloud(t, Config{})
	ctx := context.Background()
	if _, err := cl.GetChunk(ctx, chunk.Sum([]byte("nope"))); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetChunk(missing) = %v, want ErrNotFound", err)
	}
	if _, err := cl.GetManifest(ctx, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetManifest(missing) = %v, want ErrNotFound", err)
	}
}

func TestFetchStats(t *testing.T) {
	cl, _ := startCloud(t, Config{})
	ctx := context.Background()
	if _, err := cl.Upload(ctx, mkChunk("x")); err != nil {
		t.Fatal(err)
	}
	st, err := cl.FetchStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.UniqueChunks != 1 || st.UniqueBytes != 1 {
		t.Fatalf("FetchStats = %+v", st)
	}
}

// TestEndToEndChunkedFileIdentity uploads a chunked stream the way an
// agent would and verifies bit-exact restore.
func TestEndToEndChunkedFileIdentity(t *testing.T) {
	cl, _ := startCloud(t, Config{})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 300000)
	rng.Read(data)

	chunker, err := chunk.NewFixedChunker(4096)
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := chunk.SplitBytes(chunker, data)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]chunk.ID, len(chunks))
	for i, c := range chunks {
		ids[i] = c.ID
	}
	if _, err := cl.BatchUpload(ctx, chunks); err != nil {
		t.Fatal(err)
	}
	if err := cl.PutManifest(ctx, "blob", ids); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Restore(ctx, "blob")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("restored stream differs")
	}
}
