package cloudstore

import "testing"

// FuzzHandlers throws arbitrary request bodies at every cloud-store RPC
// handler: none may panic, regardless of input.
func FuzzHandlers(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1})
	f.Add(make([]byte, 40))
	id, data := mkPayload(1, 64)
	valid := append(append([]byte{}, id[:]...), data...)
	f.Add(valid)
	f.Fuzz(func(t *testing.T, body []byte) {
		srv, err := NewServer(Config{})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		handlers := []func([]byte) ([]byte, error){
			srv.handleUpload,
			srv.handleBatchUpload,
			srv.handleBatchHas,
			srv.handleUploadRaw,
			srv.handleGetChunk,
			srv.handlePutManifest,
			srv.handleGetManifest,
			srv.handleStats,
		}
		for _, h := range handlers {
			_, _ = h(body) // must not panic
		}
	})
}
