package cloudstore

import (
	"errors"
	"testing"

	"efdedup/internal/chunk"
)

// FuzzHandlers throws arbitrary request bodies at every cloud-store RPC
// handler: none may panic, regardless of input.
func FuzzHandlers(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1})
	f.Add(make([]byte, 40))
	id, data := mkPayload(1, 64)
	valid := append(append([]byte{}, id[:]...), data...)
	f.Add(valid)
	f.Fuzz(func(t *testing.T, body []byte) {
		srv, err := NewServer(Config{})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		handlers := []func([]byte) ([]byte, error){
			srv.handleUpload,
			srv.handleBatchUpload,
			srv.handleBatchHas,
			srv.handleUploadRaw,
			srv.handleGetChunk,
			srv.handleGetChunks,
			srv.handleGetRecipe,
			srv.handleGetContainer,
			srv.handlePutManifest,
			srv.handleGetManifest,
			srv.handleStats,
		}
		for _, h := range handlers {
			_, _ = h(body) // must not panic
		}
	})
}

// FuzzCloudCodecs drives every cloud.* body decoder with arbitrary
// bytes: each must either decode or return ErrProto — never panic, and
// never size an allocation from an unvalidated wire count.
func FuzzCloudCodecs(f *testing.F) {
	ck := chunk.Chunk{ID: chunk.Sum([]byte("seed")), Data: []byte("seed")}
	f.Add([]byte{})
	f.Add(encodeChunkFrame(ck))
	f.Add(encodeChunkList([]chunk.Chunk{ck}))
	f.Add(encodeIDList([]chunk.ID{ck.ID}))
	if blob, err := encodeNamedBlob("name", []byte("payload")); err == nil {
		f.Add(blob)
	}
	f.Add(encodeManifestIDs([]chunk.ID{ck.ID}))
	f.Add(encodeRecipe([]RecipeEntry{{ID: ck.ID, Loc: Locator{Container: 1, Offset: 2, Length: 3}}}))
	f.Add(encodeChunkData([][]byte{[]byte("one"), []byte("two")}))
	f.Add(encodeStats(Stats{UniqueChunks: 1}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}) // hostile count prefix
	f.Fuzz(func(t *testing.T, data []byte) {
		check := func(what string, err error) {
			t.Helper()
			if err != nil && !errors.Is(err, ErrProto) {
				t.Fatalf("%s returned unclassified error: %v", what, err)
			}
		}
		_, _, err := decodeChunkFrame(data)
		check("decodeChunkFrame", err)
		_, err = decodeChunkList(data)
		check("decodeChunkList", err)
		_, err = decodeIDList(data)
		check("decodeIDList", err)
		_, _, err = decodeNamedBlob(data)
		check("decodeNamedBlob", err)
		_, err = decodeManifestIDs(data)
		check("decodeManifestIDs", err)
		_, err = decodeRecipe(data)
		check("decodeRecipe", err)
		_, err = decodeChunkData(data, 3)
		check("decodeChunkData", err)
		_, err = decodeStats(data)
		check("decodeStats", err)
	})
}
